package dejaview

// One testing.B benchmark per table/figure of the paper's evaluation.
// Each benchmark exercises the operation the figure measures; the full
// comparative tables (all scenarios, all configurations) are produced by
// cmd/dvbench, which prints the same rows the paper reports.

import (
	"fmt"
	"testing"

	"dejaview/internal/bench"
	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/index"
	"dejaview/internal/playback"
	"dejaview/internal/policy"
	"dejaview/internal/simclock"
	"dejaview/internal/vexec"
	"dejaview/internal/workload"
)

func benchCfg() core.Config {
	return core.Config{
		Policy: policy.Config{
			MaxRate:            simclock.Second,
			TextRate:           simclock.Second,
			MinDisplayFraction: 1e-9,
		},
	}
}

// BenchmarkTable1Workloads runs one representative scenario end to end
// under full recording (Table 1's web row).
func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := core.NewSession(benchCfg())
		if _, err := workload.Run(s, workload.Web(), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2RecordingOverhead measures the full-recording cost of one
// workload step (Figure 2's per-scenario overhead comes from dvbench).
func BenchmarkFig2RecordingOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  core.Config
	}{
		{"none", func() core.Config {
			c := benchCfg()
			c.DisableDisplayRecording = true
			c.DisableIndexing = true
			c.DisableCheckpoints = true
			return c
		}()},
		{"full", benchCfg()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.NewSession(mode.cfg)
				if _, err := workload.Run(s, workload.Cat(), 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Checkpoint measures one optimized checkpoint of a
// desktop-scale session (Figure 3's capture+quiesce+snapshot path).
func BenchmarkFig3Checkpoint(b *testing.B) {
	s := core.NewSession(benchCfg())
	proc, err := s.Container().Spawn(0, "app")
	if err != nil {
		b.Fatal(err)
	}
	addr, err := proc.Mem().Mmap(4096*vexec.PageSize, vexec.PermRead|vexec.PermWrite)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Dirty a working set, then checkpoint it.
		for j := uint64(0); j < 256; j++ {
			if err := proc.Mem().Write(addr+j*16*vexec.PageSize, []byte{byte(i)}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4StorageAccounting measures the storage-stream accounting
// of a full scenario run (Figure 4's growth rates).
func BenchmarkFig4StorageAccounting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := core.NewSession(benchCfg())
		if _, err := workload.Run(s, workload.Untar(), 1); err != nil {
			b.Fatal(err)
		}
		fsOver := s.FS().Stats().LogBytes - s.FS().VisibleBytes()
		if fsOver <= 0 {
			b.Fatal("untar should leave FS log overhead")
		}
	}
}

// BenchmarkFig5Search measures single queries against a recorded desktop
// index (Figure 5's search latency).
func BenchmarkFig5Search(b *testing.B) {
	s := core.NewSession(benchCfg())
	if _, err := workload.Run(s, workload.Web(), 1); err != nil {
		b.Fatal(err)
	}
	terms := s.Index().RandomTerms(32, 42)
	if len(terms) == 0 {
		b.Fatal("empty vocabulary")
	}
	now := s.Clock().Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := index.Query{All: []string{terms[i%len(terms)]}}
		if _, err := s.Index().Search(q, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Browse measures random seeks into a display record
// (Figure 5's browse latency).
func BenchmarkFig5Browse(b *testing.B) {
	s := core.NewSession(benchCfg())
	if _, err := workload.Run(s, workload.Cat(), 1); err != nil {
		b.Fatal(err)
	}
	s.Recorder().Flush()
	store := s.Recorder().Store()
	dur := store.Duration()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := playback.New(store, 0)
		t := dur * simclock.Time(i%10+1) / 11
		if err := p.SeekTo(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Playback measures fastest-rate replay of a full record
// (Figure 6's playback speedup numerator).
func BenchmarkFig6Playback(b *testing.B) {
	s := core.NewSession(benchCfg())
	if _, err := workload.Run(s, workload.Video(), 1); err != nil {
		b.Fatal(err)
	}
	s.Recorder().Flush()
	store := s.Recorder().Store()
	end := store.Duration()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := playback.New(store, 8)
		if err := p.SeekTo(0); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Play(end+simclock.Second, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Revive measures reviving a session from a checkpoint
// (Figure 7's revive path: chain walk, forest rebuild, memory
// reinstatement).
func BenchmarkFig7Revive(b *testing.B) {
	s := core.NewSession(benchCfg())
	if _, err := workload.Run(s, workload.Gzip(), 1); err != nil {
		b.Fatal(err)
	}
	n := s.Checkpointer().Counter()
	if n == 0 {
		b.Fatal("no checkpoints")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.ReviveCheckpoint(n)
		if err != nil {
			b.Fatal(err)
		}
		s.CloseRevived(r)
	}
}

// BenchmarkPolicyDecide measures the checkpoint policy's per-tick cost
// (the §6 policy-effectiveness experiment's inner loop).
func BenchmarkPolicyDecide(b *testing.B) {
	e := policy.New(policy.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Decide(policy.Input{
			Now:            simclock.Time(i) * simclock.Second,
			DamageFraction: float64(i%10) / 10,
			KeyboardInput:  i%3 == 0,
		})
	}
}

// BenchmarkAblationNaiveCheckpoint measures the unoptimized stop-and-copy
// baseline against BenchmarkFig3Checkpoint.
func BenchmarkAblationNaiveCheckpoint(b *testing.B) {
	a, err := bench.RunAblationCheckpoint()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(a.NaiveDowntime)/1e6, "naive-ms")
	b.ReportMetric(float64(a.OptDowntime)/1e6, "opt-ms")
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationCheckpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMirrorTree measures the accessibility mirror-tree
// advantage (§4.2).
func BenchmarkAblationMirrorTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := bench.RunAblationMirror()
		if err != nil {
			b.Fatal(err)
		}
		if a.DirectQueries <= a.MirrorQueries {
			b.Fatal("mirror tree lost its advantage")
		}
	}
}

// The paper measured — and omitted for space — the overhead of the
// virtual display mechanism and the virtual execution environment
// themselves, reporting both "quite small" (§6). These two
// micro-benchmarks are those measurements.

// BenchmarkVirtualDisplaySubmit measures one drawing command through the
// virtual display driver (submit + merge queue + flush + apply).
func BenchmarkVirtualDisplaySubmit(b *testing.B) {
	s := core.NewSession(core.Config{DisableCheckpoints: true, DisableIndexing: true})
	disp := s.Display()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := display.SolidFill(0,
			display.NewRect((i*16)%900, (i*8)%700, 32, 16), display.Pixel(i))
		if err := disp.Submit(c); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			if _, err := disp.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkVirtualExecutionWrite measures one page-granularity memory
// write through the virtual execution environment (COW copy + dirty
// tracking).
func BenchmarkVirtualExecutionWrite(b *testing.B) {
	s := core.NewSession(core.Config{})
	p, err := s.Container().Spawn(0, "bench")
	if err != nil {
		b.Fatal(err)
	}
	addr, err := p.Mem().Mmap(1024*vexec.PageSize, vexec.PermRead|vexec.PermWrite)
	if err != nil {
		b.Fatal(err)
	}
	buf := []byte("sixteen byte str")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i%1024) * vexec.PageSize
		if err := p.Mem().Write(addr+off, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// Example of generating the full evaluation report programmatically.
func Example() {
	fmt.Println("see cmd/dvbench for the full table/figure reproduction")
	// Output: see cmd/dvbench for the full table/figure reproduction
}
