// Quickstart: record a small desktop session, search what was seen, and
// revive the session at the moment the text was on screen.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dejaview"
)

func main() {
	// A DejaView session: virtual display + text capture + continuous
	// checkpointing over a snapshotting file system, all recording from
	// the first event.
	s := dejaview.NewSession(dejaview.Config{})

	// A tiny "editor" application: it registers with the accessibility
	// registry (so its text is captured) and draws on the virtual
	// display (so its output is recorded).
	editor := s.Registry().Register("Editor", "editor")
	win := editor.AddComponent(nil, dejaview.RoleWindow, "notes.txt - Editor", "")
	para := editor.AddComponent(win, dejaview.RoleParagraph, "", "")
	s.Registry().SetFocus(editor)

	proc, err := s.Container().Spawn(0, "editor")
	if err != nil {
		log.Fatal(err)
	}
	addr, err := proc.Mem().Mmap(64*dejaview.PageSize, dejaview.PermRead|dejaview.PermWrite)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a minute of work: one line of notes per second.
	lines := []string{
		"meeting notes monday",
		"ship the dejaview prototype by friday",
		"remember to benchmark the checkpoint engine",
		"lunch with alice about the recorder paper",
	}
	text := ""
	for i := 0; i < 60; i++ {
		text += lines[i%len(lines)] + "\n"
		editor.SetText(para, text)
		// The keystrokes repaint a strip of the window.
		cmd := dejaview.SolidFill(0,
			dejaview.NewRect(10, 40+(i%40)*16, 800, 16),
			dejaview.RGB(240, 240, 240))
		if err := s.Display().Submit(cmd); err != nil {
			log.Fatal(err)
		}
		if err := proc.Mem().Write(addr+uint64(i%64)*dejaview.PageSize,
			[]byte(lines[i%len(lines)])); err != nil {
			log.Fatal(err)
		}
		s.NoteKeyboardInput()
		// Tick flushes the display and runs the checkpoint policy.
		if _, _, err := s.Tick(); err != nil {
			log.Fatal(err)
		}
		s.Clock().Advance(dejaview.Second)
	}

	// WYSIWYS search: find when "benchmark" was on screen.
	results, err := s.Search(dejaview.Query{All: []string{"benchmark", "checkpoint"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d substream(s) where 'benchmark checkpoint' was visible\n", len(results))
	r := results[0]
	fmt.Printf("  first visible at %v (on screen for %v)\n", r.Time, r.Persistence)
	w, h := r.Screenshot.Size()
	fmt.Printf("  screenshot portal: %dx%d\n", w, h)

	// Take me back: revive the live session at that moment.
	revived, err := s.TakeMeBack(r.Time)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revived session from checkpoint at %v (%d process(es), network disabled: %v)\n",
		revived.At, len(revived.Container.Processes()), !revived.Container.NetworkEnabled())

	// The revived editor's memory is exactly as it was.
	rp, err := revived.Container.Process(proc.PID())
	if err != nil {
		log.Fatal(err)
	}
	mem, err := rp.Mem().Read(addr, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revived editor memory: %q...\n", string(mem))

	// Recording cost summary.
	ck := s.Checkpointer().Stats()
	fmt.Printf("session stats: %d checkpoints, avg downtime %.2fms, %d display commands\n",
		ck.Checkpoints,
		float64(ck.TotalDowntime)/float64(ck.Checkpoints)/1e6,
		s.Recorder().Stats().Commands)
}
