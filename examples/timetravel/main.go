// Timetravel: PVR-style controls over a recorded session — pause/seek,
// fast-forward and rewind through keyframes, rate-scaled playback — plus
// concurrent revived sessions exchanging data through the shared
// clipboard (§2's usage model).
//
//	go run ./examples/timetravel
package main

import (
	"fmt"
	"log"

	"dejaview"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	// Record at full resolution but keyframe every 30 seconds so seeks
	// are cheap, and keep checkpointing at the default policy.
	cfg := dejaview.Config{}
	cfg.Record.ScreenshotInterval = 30 * dejaview.Second
	cfg.Record.ScreenshotMinChange = 0.001
	s := dejaview.NewSession(cfg)

	term := s.Registry().Register("xterm", "terminal")
	win := term.AddComponent(nil, dejaview.RoleWindow, "xterm", "")
	out := term.AddComponent(win, dejaview.RoleTerminal, "", "$")
	s.Registry().SetFocus(term)
	proc, err := s.Container().Spawn(0, "bash")
	must(err)
	_ = proc

	// Five minutes of terminal activity: a colored bar per second makes
	// every moment visually distinct.
	for i := 0; i < 300; i++ {
		c := dejaview.RGB(uint8(i), uint8(255-i%256), uint8(i*3))
		must(s.Display().Submit(dejaview.SolidFill(0,
			dejaview.NewRect(0, (i*2)%760, 1024, 40), c)))
		term.SetText(out, fmt.Sprintf("$ step %d", i))
		s.NoteKeyboardInput()
		_, _, err := s.Tick()
		must(err)
		s.Clock().Advance(dejaview.Second)
	}
	s.Recorder().Flush()
	store := s.Recorder().Store()
	fmt.Printf("recorded %v, %d keyframes, %.2f MB of commands\n",
		store.Duration(), len(store.Timeline()),
		float64(store.CommandBytes())/(1<<20))

	// --- The PVR slider ---
	p := s.Player()

	// Pause at 1m30s.
	must(p.SeekTo(90 * dejaview.Second))
	fmt.Printf("paused at %v (replayed %d commands after the keyframe)\n",
		p.Position(), p.Stats().CommandsApplied)

	// Play 30 seconds at 2x: the viewer sleeps half as long between
	// commands.
	var slept dejaview.Time
	n, err := p.Play(120*dejaview.Second, 2.0, func(d dejaview.Time) { slept += d })
	must(err)
	fmt.Printf("played %d commands covering 30s of record in %v of viewer time (2x)\n", n, slept)

	// Fast-forward to 4m: the viewer flips through keyframes.
	shown, err := p.FastForward(240 * dejaview.Second)
	must(err)
	fmt.Printf("fast-forwarded to %v through %d keyframes\n", p.Position(), shown)

	// Rewind to 45s.
	shown, err = p.Rewind(45 * dejaview.Second)
	must(err)
	fmt.Printf("rewound to %v through %d keyframes\n", p.Position(), shown)

	// Fastest-rate replay of everything (the Figure 6 measurement).
	fast := dejaview.NewPlayer(store, 16)
	must(fast.SeekTo(0))
	n, err = fast.Play(store.Duration(), 1, nil)
	must(err)
	fmt.Printf("full record replays in %d command applications at the fastest rate\n\n", n)

	// --- Time travel with live state ---
	early, err := s.TakeMeBack(60 * dejaview.Second)
	must(err)
	late, err := s.TakeMeBack(240 * dejaview.Second)
	must(err)
	fmt.Printf("revived two sessions side by side: t=%v and t=%v\n", early.At, late.At)

	// Copy from one revived session, paste into the other: the viewer's
	// clipboard spans all active sessions.
	early.SetClipboard("value computed in the past")
	fmt.Printf("clipboard pasted into the later session: %q\n", late.Clipboard())

	// Each revived session has its own display, restored to its moment.
	e, l := early.Display.Screen(), late.Display.Screen()
	fmt.Printf("revived displays differ: %v\n", !e.Equal(l))
}
