// Annotations: the §4.4 explicit-annotation gesture (select text, press
// the combination key), implicit annotation by typing, persistence-ranked
// search, and the revived session's network policy.
//
//	go run ./examples/annotations
package main

import (
	"fmt"
	"log"

	"dejaview"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	s := dejaview.NewSession(dejaview.Config{})

	editor := s.Registry().Register("Editor", "editor")
	win := editor.AddComponent(nil, dejaview.RoleWindow, "journal.txt - Editor", "")
	para := editor.AddComponent(win, dejaview.RoleParagraph, "", "")
	s.Registry().SetFocus(editor)
	mail, err := s.Container().Spawn(0, "mailer")
	must(err)

	step := func() {
		must(s.Display().Submit(dejaview.SolidFill(0,
			dejaview.NewRect(0, int(s.Clock().Now()/dejaview.Second)%700, 900, 60),
			dejaview.RGB(245, 245, 245))))
		s.NoteKeyboardInput()
		_, _, err := s.Tick()
		must(err)
		s.Clock().Advance(dejaview.Second)
	}

	// A long-lived mention: "phoenix" sits in the journal for a minute.
	editor.SetText(para, "journal header project phoenix planning notes")
	for i := 0; i < 60; i++ {
		step()
	}
	editor.SetText(para, "journal header other business")

	// A minute of unrelated work; the mailer connects out meanwhile.
	_, err = s.Container().Connect(mail, dejaview.ProtoTCP, "10.0.0.9:52000", "203.0.113.7:25")
	must(err)
	for i := 0; i < 60; i++ {
		step()
	}

	// A brief, high-interest mention: on screen for just two seconds.
	editor.SetText(para, "urgent call the vendor about phoenix license TODAY")
	step()
	step()
	editor.SetText(para, "journal header other business")

	// Explicit annotation: select the important words, press the key.
	editor.SetText(para, "journal header project phoenix always visible\n"+
		"phoenix launch decision made here")
	editor.SelectText(para, "phoenix launch decision")
	editor.PressAnnotationKey()
	annotatedAt := s.Clock().Now()
	for i := 0; i < 30; i++ {
		step()
	}

	fmt.Printf("recorded %v\n\n", s.Clock().Now())

	// Persistence ranking puts the brief vendor note above the
	// always-visible banner: "a user could be less interested in those
	// parts of the record when certain text was always visible".
	results, err := s.Search(dejaview.Query{
		All:   []string{"phoenix"},
		Order: dejaview.OrderPersistence,
	})
	must(err)
	fmt.Println("search 'phoenix' ranked by persistence (brief first):")
	for i, r := range results {
		fmt.Printf("  %d. visible %-12v at %v  %q\n", i+1, r.Persistence, r.Time, r.Snippets[0])
	}

	// Annotations are a separate, precise channel.
	ann, err := s.Search(dejaview.Query{All: []string{"decision"}, AnnotatedOnly: true})
	must(err)
	fmt.Printf("\nannotated search: %d hit at %v (annotated at %v)\n",
		len(ann), ann[0].Time, annotatedAt)

	// Revive at the annotation. Network starts disabled so the mailer
	// cannot sync away the old state; the user then allows just the
	// browser per-app.
	revived, err := s.TakeMeBack(ann[0].Time)
	must(err)
	rm, err := revived.Container.Process(mail.PID())
	must(err)
	for _, sock := range rm.Sockets() {
		fmt.Printf("\nrevived mailer socket %s -> %s: state %v (external TCP is reset)\n",
			sock.LocalAddr, sock.RemoteAddr, sock.State)
	}
	if _, err := revived.Container.Connect(rm, dejaview.ProtoTCP,
		"10.0.0.9:52001", "203.0.113.7:25"); err != nil {
		fmt.Printf("mailer reconnect blocked: %v\n", err)
	}
	revived.SetAppNetworkPolicy("browser", true)
	browser, err := revived.Container.Spawn(0, "browser")
	must(err)
	if _, err := revived.Container.Connect(browser, dejaview.ProtoTCP,
		"10.0.0.9:53000", "198.51.100.4:443"); err == nil {
		fmt.Println("browser allowed out by per-application policy")
	}
}
