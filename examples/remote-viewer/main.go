// Remote viewer: the §2/§3 client-server split over a real TCP daemon.
// The session (server) runs the desktop and recording; remote clients
// connect through the network access service and multiplex everything
// over one connection each: a live view of the running desktop, index
// searches, and server-driven playback of the recorded history. Input
// sent by a viewer drives the checkpoint policy, while the input itself
// is never recorded (§2's privacy posture).
//
//	go run ./examples/remote-viewer
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"dejaview"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	s := dejaview.NewSession(dejaview.Config{Width: 640, Height: 480})

	// The "desktop": one app painting a moving bar once per second.
	app := s.Registry().Register("demo", "demo")
	win := app.AddComponent(nil, dejaview.RoleWindow, "demo", "")
	status := app.AddComponent(win, dejaview.RoleStatusBar, "", "starting")

	// One daemon serves every remote client.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	srv := dejaview.ServeRemote(ln, dejaview.RemoteOptions{Session: s})
	fmt.Printf("daemon listening on %s\n", srv.Addr())

	// Two viewers connect from "different devices".
	c1, err := dejaview.DialRemote(srv.Addr().String())
	must(err)
	defer c1.Close()
	c2, err := dejaview.DialRemote(srv.Addr().String())
	must(err)
	defer c2.Close()

	v1, err := c1.AttachLive()
	must(err)
	v2, err := c2.AttachLive()
	must(err)
	must(v1.WaitScreen(5 * time.Second))
	must(v2.WaitScreen(5 * time.Second))

	// Viewer 1 types; the input event reaches the server's checkpoint
	// policy over the wire.
	must(c1.SendKey(0, 'h', true))
	must(c1.SendPointerMove(0, 100, 100))

	// Drive ten seconds of desktop activity; both live views follow.
	for i := 0; i < 10; i++ {
		app.SetText(status, fmt.Sprintf("frame %d", i))
		must(s.Display().Submit(dejaview.SolidFill(0,
			dejaview.NewRect(0, (i*48)%420, 640, 120),
			dejaview.RGB(uint8(25*i), 80, 200))))
		_, _, err := s.Tick()
		must(err)
		s.Clock().Advance(dejaview.Second)
	}
	must(v1.WaitApplied(1, 5*time.Second))
	must(v2.WaitApplied(1, 5*time.Second))

	// Both replicas converge on the session's screen.
	want := s.Display().Screen()
	for _, v := range []*dejaview.LiveView{v1, v2} {
		for !v.Screen().Equal(want) {
			time.Sleep(5 * time.Millisecond)
		}
	}
	fmt.Printf("viewer 1 applied %d commands, viewer 2 applied %d\n",
		v1.Applied(), v2.Applied())
	fmt.Printf("both viewers show the same screen: %v\n", v1.Screen().Equal(v2.Screen()))

	// Everything the viewers saw is in the record: viewer 2 searches it
	// and replays the recorded history server-side, over the same
	// connection its live view uses.
	res, err := c2.Search(dejaview.Query{All: []string{"frame"}})
	must(err)
	fmt.Printf("the streamed session is searchable: %d substream(s) for 'frame'\n", len(res))

	ps, err := c2.Playback(dejaview.PlaybackRequest{
		Source: dejaview.SourceSession, Mode: dejaview.PlayCommands,
	})
	must(err)
	must(ps.Wait())
	fmt.Printf("remote playback replayed %d commands to the final screen: %v\n",
		ps.Commands(), ps.Screen().Equal(want))

	st, _, err := c1.ServerStats()
	must(err)
	fmt.Printf("daemon served %d clients, %d frames, %d searches, %d playbacks\n",
		st.TotalClients, st.FramesSent, st.Searches, st.Playbacks)

	ck := s.Checkpointer().Stats()
	fmt.Printf("checkpoints while serving: %d (input-driven policy)\n", ck.Checkpoints)

	must(srv.Close())
}
