// Remote viewer: the §2/§3 client-server split over a real TCP socket.
// The session (server) runs the desktop and recording; a stateless viewer
// connects, receives the screen and the live command stream, and sends
// keyboard/pointer input back — which drives the checkpoint policy, while
// the input itself is never recorded (§2's privacy posture).
//
//	go run ./examples/remote-viewer
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"dejaview"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	s := dejaview.NewSession(dejaview.Config{Width: 640, Height: 480})

	// The "desktop": one app painting a moving bar once per second.
	app := s.Registry().Register("demo", "demo")
	win := app.AddComponent(nil, dejaview.RoleWindow, "demo", "")
	status := app.AddComponent(win, dejaview.RoleStatusBar, "", "starting")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	defer ln.Close()
	fmt.Printf("session listening on %s\n", ln.Addr())

	// Serve any number of viewers.
	var wg sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				_ = dejaview.ServeViewer(s, conn)
			}()
		}
	}()

	// Two viewers connect from "different devices".
	conn1, err := net.Dial("tcp", ln.Addr().String())
	must(err)
	defer conn1.Close()
	v1, err := dejaview.ConnectViewer(conn1)
	must(err)
	conn2, err := net.Dial("tcp", ln.Addr().String())
	must(err)
	defer conn2.Close()
	v2, err := dejaview.ConnectViewer(conn2)
	must(err)

	// Viewer 1 types; the input event reaches the server's checkpoint
	// policy over the wire.
	must(v1.SendKey(0, 'h', true))
	must(v1.SendPointerMove(0, 100, 100))

	// Drive ten seconds of desktop activity while both viewers consume
	// the stream.
	var consume sync.WaitGroup
	for _, v := range []*dejaview.ViewerClient{v1, v2} {
		v := v
		consume.Add(1)
		go func() {
			defer consume.Done()
			for i := 0; i < 10; i++ {
				if err := v.Next(); err != nil {
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		app.SetText(status, fmt.Sprintf("frame %d", i))
		must(s.Display().Submit(dejaview.SolidFill(0,
			dejaview.NewRect(0, (i*48)%420, 640, 120),
			dejaview.RGB(uint8(25*i), 80, 200))))
		_, _, err := s.Tick()
		must(err)
		s.Clock().Advance(dejaview.Second)
	}
	consume.Wait()

	fmt.Printf("viewer 1 applied %d commands, viewer 2 applied %d\n",
		v1.Applied(), v2.Applied())
	same := v1.Screen().Equal(v2.Screen())
	fmt.Printf("both viewers show the same screen: %v\n", same)

	// Everything the viewers saw is in the record and searchable.
	res, err := s.Search(dejaview.Query{All: []string{"frame"}})
	must(err)
	fmt.Printf("the streamed session is searchable: %d substream(s) for 'frame'\n", len(res))

	ck := s.Checkpointer().Stats()
	fmt.Printf("checkpoints while serving: %d (input-driven policy)\n", ck.Checkpoints)
}
