// Research session: the paper's §4.2 motivating example. A user reads a
// PDF paper while a conference web page is open in the browser; weeks of
// activity later she only remembers that the web page was open when she
// started reading. Because DejaView indexes the *full state* of on-screen
// text over time, the temporal conjunction — paper text visible while the
// page text was visible — is a single query, and the hit revives the
// whole desktop.
//
//	go run ./examples/research-session
package main

import (
	"fmt"
	"log"

	"dejaview"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	s := dejaview.NewSession(dejaview.Config{})

	// Applications on the desktop.
	firefox := s.Registry().Register("Firefox", "browser")
	ffWin := firefox.AddComponent(nil, dejaview.RoleWindow, "SOSP 2007 Program - Mozilla Firefox", "")
	acrobat := s.Registry().Register("Acrobat", "pdf")
	acWin := acrobat.AddComponent(nil, dejaview.RoleWindow, "dejaview.pdf - Adobe Reader", "")
	_, err := s.Container().Spawn(0, "firefox")
	must(err)
	_, err = s.Container().Spawn(0, "acroread")
	must(err)

	paint := func(y int, c dejaview.Pixel) {
		must(s.Display().Submit(dejaview.SolidFill(0,
			dejaview.NewRect(0, y%700, 1024, 68), c)))
	}
	tick := func(seconds int) {
		for i := 0; i < seconds; i++ {
			_, _, err := s.Tick()
			must(err)
			s.Clock().Advance(dejaview.Second)
		}
	}

	// t=0..5m: browsing the conference program.
	page := firefox.AddComponent(ffWin, dejaview.RoleDocument, "",
		"sosp 2007 program stevenson washington session on virtualization")
	s.Registry().SetFocus(firefox)
	paint(0, dejaview.RGB(255, 255, 255))
	tick(300)

	// t=5m: she opens the paper; the program page is still on screen.
	pdf := acrobat.AddComponent(acWin, dejaview.RoleDocument, "",
		"dejaview a personal virtual computer recorder abstract introduction")
	s.Registry().SetFocus(acrobat)
	paint(100, dejaview.RGB(250, 250, 240))
	startedReading := s.Clock().Now()
	tick(300)

	// t=10m: the browser moves on to something else.
	firefox.SetText(page, "train schedule seattle portland departures")
	paint(200, dejaview.RGB(230, 240, 255))
	tick(300)

	// t=15m: she keeps reading the paper for a long while.
	acrobat.SetText(pdf, "dejaview evaluation checkpoint latency figure three")
	paint(300, dejaview.RGB(250, 250, 240))
	tick(600)

	fmt.Printf("recorded %v of desktop activity\n\n", s.Clock().Now())

	// Weeks later: "when did I start reading the DejaView paper while
	// the SOSP program was open?" — one temporal conjunction.
	results, err := s.SearchConjunction([]dejaview.Query{
		{All: []string{"dejaview", "abstract"}, App: "Acrobat"},
		{All: []string{"sosp", "program"}, App: "Firefox"},
	})
	must(err)
	if len(results) == 0 {
		log.Fatal("conjunction found nothing")
	}
	r := results[0]
	fmt.Printf("paper+program overlap: %v (the overlap lasted %v)\n", r.Interval, r.Persistence)
	fmt.Printf("ground truth: started reading at %v\n\n", startedReading)

	// Had the index only recorded text when it first appeared, the
	// relationship would be lost: the naive query for both texts
	// appearing at the same *instant* has no hits, but the interval
	// index finds the overlap.
	naive, err := s.Search(dejaview.Query{All: []string{"dejaview", "sosp", "program", "abstract"}})
	must(err)
	fmt.Printf("single-clause query (no context split): %d hit(s) — the interval index still finds the overlap\n", len(naive))

	// Revive the desktop at the overlap and look around.
	revived, err := s.TakeMeBack(r.Time)
	must(err)
	fmt.Printf("\nrevived desktop from %v: %d processes", revived.At, len(revived.Container.Processes()))
	fmt.Printf(" (uncached revive cost %v)\n", revived.Restore.Latency)

	// She can diverge: take different notes in two revived branches.
	branch2, err := s.TakeMeBack(r.Time)
	must(err)
	must(revived.Container.FS().WriteFile("/notes.txt", []byte("follow the checkpoint thread")))
	must(branch2.Container.FS().WriteFile("/notes.txt", []byte("follow the display thread")))
	n1, _ := revived.Container.FS().ReadFile("/notes.txt")
	n2, _ := branch2.Container.FS().ReadFile("/notes.txt")
	fmt.Printf("branch 1 notes: %q\nbranch 2 notes: %q\n", n1, n2)
	fmt.Printf("branches are isolated: %v\n", string(n1) != string(n2))
}
