// Archive: persist a complete session — display record, text index,
// checkpoint chain, file-system history — then reopen it cold and show
// that everything the paper promises (browse, search, playback, revive)
// still works offline, including reviving a live desktop whose file
// edits never made it to "the present".
//
//	go run ./examples/archive
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dejaview"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	dir := filepath.Join(os.TempDir(), "dejaview-example-archive")
	defer os.RemoveAll(dir)

	// ---- Day one: a working session ----
	s := dejaview.NewSession(dejaview.Config{})
	editor := s.Registry().Register("Editor", "editor")
	win := editor.AddComponent(nil, dejaview.RoleWindow, "thesis.txt - Editor", "")
	para := editor.AddComponent(win, dejaview.RoleParagraph, "", "")
	s.Registry().SetFocus(editor)
	proc, err := s.Container().Spawn(0, "editor")
	must(err)

	must(s.FS().MkdirAll("/home/user"))
	for i := 0; i < 30; i++ {
		text := fmt.Sprintf("thesis draft section %d: the quick brown results", i)
		editor.SetText(para, text)
		must(s.FS().WriteFile("/home/user/thesis.txt", []byte(text)))
		must(s.Display().Submit(dejaview.SolidFill(0,
			dejaview.NewRect(0, (i*24)%640, 900, 90), dejaview.RGB(byte(8*i), 200, 100))))
		s.NoteKeyboardInput()
		_, _, err := s.Tick()
		must(err)
		s.Clock().Advance(dejaview.Second)
	}
	// Late in the session the user deletes an early draft...
	must(s.FS().Remove("/home/user/thesis.txt"))
	s.NoteKeyboardInput()
	_, err = s.Checkpoint()
	must(err)

	must(s.SaveArchive(dir))
	fmt.Printf("archived session to %s\n", dir)
	for _, f := range []string{"archive.dv", "index.dv", "images.dv", "fs.dv"} {
		st, err := os.Stat(filepath.Join(dir, f))
		must(err)
		fmt.Printf("  %-10s %7d bytes\n", f, st.Size())
	}

	// ---- Months later: reopen the archive cold ----
	a, err := dejaview.OpenArchive(dir)
	must(err)
	fmt.Printf("\nreopened: %v of history, %d checkpoints, %dx%d desktop\n",
		a.End, a.Checkpoints(), a.Width, a.Height)

	// Search what was seen.
	res, err := a.Search(dejaview.Query{All: []string{"section", "7"}})
	must(err)
	if len(res) == 0 {
		log.Fatal("archived search found nothing")
	}
	fmt.Printf("'section 7' was on screen during %v\n", res[0].Interval)

	// Browse the screen at that moment.
	fb, err := a.Browse(res[0].Time)
	must(err)
	w, h := fb.Size()
	fmt.Printf("browse rendered a %dx%d screenshot\n", w, h)

	// Revive the deleted draft: the file is gone "now", but the archived
	// checkpoint's file-system snapshot still has it.
	rv, err := a.TakeMeBack(res[0].Time)
	must(err)
	fmt.Printf("revived at %v (uncached, %v; %d images read)\n",
		rv.At, rv.Restore.Latency, rv.Restore.ImagesRead)
	draft, err := rv.Container.FS().ReadFile("/home/user/thesis.txt")
	must(err)
	fmt.Printf("recovered deleted draft: %q\n", draft)

	rp, err := rv.Container.Process(proc.PID())
	must(err)
	fmt.Printf("revived process %q lives again (network disabled: %v)\n",
		rp.Name(), !rv.Container.NetworkEnabled())
}
