// Command dvbench regenerates the paper's evaluation tables and figures
// (§6) against the simulated substrates. See DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// results.
//
// Usage:
//
//	dvbench -experiment all
//	dvbench -experiment fig4 -scenarios video,untar
//	dvbench -experiment fig2 -reps 3
//	dvbench -storage -scenarios web,video
//	dvbench -storage -codec raw,flate,lzs,auto   # per-codec ratio + throughput
//	dvbench -storage -remote -e2e -json   # also writes BENCH_<name>.json
//	dvbench -fleet -shapes 8x4 -json      # multi-tenant daemon throughput
//	dvbench -compare old.json new.json    # exit 1 on >20% regressions
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dejaview/internal/bench"
)

func main() {
	exp := flag.String("experiment", "all",
		"experiment to run: table1|fig2|fig3|fig4|fig5|fig6|fig7|policy|ablations|storage|e2e|remote|fleet|compact|browse|all")
	scenarios := flag.String("scenarios", "",
		"comma-separated scenario filter for fig3..fig7, storage, and e2e (empty = all)")
	reps := flag.Int("reps", 2, "repetitions per configuration for fig2 (min kept)")
	storage := flag.Bool("storage", false,
		"report compressed vs raw display-record sizes (combinable with -e2e/-remote)")
	codecs := flag.String("codec", "",
		"comma-separated codec list for -storage: raw|flate|lzs|auto (empty = auto); "+
			"pass several to compare ratio and pack throughput side by side")
	e2eMode := flag.Bool("e2e", false,
		"report wall clock for full record->save->open->search->replay cycles (combinable)")
	remoteMode := flag.Bool("remote", false,
		"report network fan-out throughput and search RPC latency over loopback TCP (combinable)")
	fleetMode := flag.Bool("fleet", false,
		"report multi-tenant daemon throughput: N sessions x M viewers over loopback TCP (combinable)")
	compactMode := flag.Bool("compact", false,
		"report tiered-lifecycle numbers: lazy vs eager archive open and compaction throughput (combinable)")
	browseMode := flag.Bool("browse", false,
		"report visual-history seek latency: cold vs warm block cache over a full thumbnail pass (combinable)")
	shapes := flag.String("shapes", "",
		"comma-separated SESSIONSxVIEWERS shapes for -fleet, e.g. 2x2,8x4 (empty = 2x2,4x2,8x4)")
	clients := flag.String("clients", "",
		"comma-separated client counts for -remote (empty = 1,2,4,8)")
	jsonOut := flag.Bool("json", false,
		"also write each selected experiment as machine-readable BENCH_<name>.json")
	compareMode := flag.Bool("compare", false,
		"compare two BENCH_*.json files (old new); exit 1 if any metric regresses past -threshold")
	threshold := flag.Float64("threshold", 0.20,
		"relative regression threshold for -compare (0.20 = 20%)")
	flag.Parse()

	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "dvbench: -compare needs exactly two report files: old.json new.json")
			os.Exit(2)
		}
		if err := compare(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "dvbench:", err)
			os.Exit(1)
		}
		return
	}

	var names []string
	if *scenarios != "" {
		names = strings.Split(*scenarios, ",")
	}
	var codecList []string
	if *codecs != "" {
		for _, c := range strings.Split(*codecs, ",") {
			codecList = append(codecList, strings.TrimSpace(c))
		}
	}
	var fleetShapes []bench.FleetConfig
	if *shapes != "" {
		for _, f := range strings.Split(*shapes, ",") {
			cfg, err := parseShape(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintln(os.Stderr, "dvbench:", err)
				os.Exit(1)
			}
			fleetShapes = append(fleetShapes, cfg)
		}
	}

	var counts []int
	if *clients != "" {
		for _, f := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "dvbench: bad -clients value %q\n", f)
				os.Exit(1)
			}
			counts = append(counts, n)
		}
	}

	// The shorthand flags are combinable: -storage -remote -e2e runs all
	// three in one invocation (one BENCH_*.json each with -json).
	var selected []string
	if *storage {
		selected = append(selected, "storage")
	}
	if *remoteMode {
		selected = append(selected, "remote")
	}
	if *fleetMode {
		selected = append(selected, "fleet")
	}
	if *compactMode {
		selected = append(selected, "compact")
	}
	if *browseMode {
		selected = append(selected, "browse")
	}
	if *e2eMode {
		selected = append(selected, "e2e")
	}
	if len(selected) == 0 {
		selected = []string{*exp}
	}
	for _, name := range selected {
		if err := run(name, names, *reps, counts, codecList, fleetShapes, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "dvbench:", err)
			os.Exit(1)
		}
	}
}

// compare diffs two machine-readable reports and reports regressions.
func compare(oldPath, newPath string, threshold float64) error {
	oldR, err := bench.LoadReport(oldPath)
	if err != nil {
		return err
	}
	newR, err := bench.LoadReport(newPath)
	if err != nil {
		return err
	}
	if oldR.Name != newR.Name {
		return fmt.Errorf("compare: reports disagree on experiment: %q vs %q", oldR.Name, newR.Name)
	}
	regs := bench.Compare(oldR, newR, threshold)
	if len(regs) == 0 {
		fmt.Printf("compare %s: no regressions beyond %.0f%%\n", newR.Name, threshold*100)
		return nil
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s\n", r)
	}
	return fmt.Errorf("compare: %d metric(s) regressed beyond %.0f%%", len(regs), threshold*100)
}

// emit prints an experiment's table and optionally writes its JSON
// report as BENCH_<name>.json in the working directory.
func emit(rendered string, report *bench.Report, jsonOut bool) error {
	fmt.Println(rendered)
	if !jsonOut {
		return nil
	}
	path := "BENCH_" + report.Name + ".json"
	if err := bench.WriteReport(path, report); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// parseShape parses one SESSIONSxVIEWERS fleet shape like "8x4".
func parseShape(s string) (bench.FleetConfig, error) {
	a, b, ok := strings.Cut(s, "x")
	if !ok {
		return bench.FleetConfig{}, fmt.Errorf("bad -shapes value %q (want SESSIONSxVIEWERS, e.g. 8x4)", s)
	}
	sessions, err1 := strconv.Atoi(a)
	viewers, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || sessions <= 0 || viewers <= 0 {
		return bench.FleetConfig{}, fmt.Errorf("bad -shapes value %q (want SESSIONSxVIEWERS, e.g. 8x4)", s)
	}
	return bench.FleetConfig{Sessions: sessions, Viewers: viewers}, nil
}

func run(exp string, names []string, reps int, clients []int, codecs []string, fleetShapes []bench.FleetConfig, jsonOut bool) error {
	runOne := func(name string) error {
		switch name {
		case "table1":
			fmt.Println(bench.Table1())
		case "fig2":
			f, err := bench.RunFig2(reps)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "fig3":
			f, err := bench.RunFig3(names...)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "fig4":
			f, err := bench.RunFig4(names...)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "fig5":
			f, err := bench.RunFig5(names...)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "fig6":
			f, err := bench.RunFig6(names...)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "fig7":
			f, err := bench.RunFig7(names...)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "policy":
			p, err := bench.RunPolicy()
			if err != nil {
				return err
			}
			fmt.Println(p.Render())
		case "storage":
			st, err := bench.RunStorageCodecs(codecs, names...)
			if err != nil {
				return err
			}
			return emit(st.Render(), st.Report(), jsonOut)
		case "e2e":
			e, err := bench.RunE2E(names...)
			if err != nil {
				return err
			}
			return emit(e.Render(), e.Report(), jsonOut)
		case "remote":
			r, err := bench.RunRemote(clients...)
			if err != nil {
				return err
			}
			return emit(r.Render(), r.Report(), jsonOut)
		case "fleet":
			f, err := bench.RunFleet(fleetShapes...)
			if err != nil {
				return err
			}
			return emit(f.Render(), f.Report(), jsonOut)
		case "compact":
			c, err := bench.RunCompact(names...)
			if err != nil {
				return err
			}
			return emit(c.Render(), c.Report(), jsonOut)
		case "browse":
			b, err := bench.RunBrowse(names...)
			if err != nil {
				return err
			}
			return emit(b.Render(), b.Report(), jsonOut)
		case "ablations":
			a1, err := bench.RunAblationCheckpoint()
			if err != nil {
				return err
			}
			fmt.Println(a1.Render())
			a2, err := bench.RunAblationDisplay()
			if err != nil {
				return err
			}
			fmt.Println(a2.Render())
			a3, err := bench.RunAblationMirror()
			if err != nil {
				return err
			}
			fmt.Println(a3.Render())
			a4, err := bench.RunAblationKeyframe()
			if err != nil {
				return err
			}
			fmt.Println(a4.Render())
			a5, err := bench.RunAblationDemandPaging()
			if err != nil {
				return err
			}
			fmt.Println(a5.Render())
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}
	if exp != "all" {
		return runOne(exp)
	}
	for _, name := range []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "policy", "ablations"} {
		if err := runOne(name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}
