// Command dvbench regenerates the paper's evaluation tables and figures
// (§6) against the simulated substrates. See DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// results.
//
// Usage:
//
//	dvbench -experiment all
//	dvbench -experiment fig4 -scenarios video,untar
//	dvbench -experiment fig2 -reps 3
//	dvbench -storage -scenarios web,video
//	dvbench -e2e
//	dvbench -remote
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dejaview/internal/bench"
)

func main() {
	exp := flag.String("experiment", "all",
		"experiment to run: table1|fig2|fig3|fig4|fig5|fig6|fig7|policy|ablations|storage|e2e|remote|all")
	scenarios := flag.String("scenarios", "",
		"comma-separated scenario filter for fig3..fig7, storage, and e2e (empty = all)")
	reps := flag.Int("reps", 2, "repetitions per configuration for fig2 (min kept)")
	storage := flag.Bool("storage", false,
		"report compressed vs raw display-record sizes (shorthand for -experiment storage)")
	e2eMode := flag.Bool("e2e", false,
		"report wall clock for full record->save->open->search->replay cycles (shorthand for -experiment e2e)")
	remoteMode := flag.Bool("remote", false,
		"report network fan-out throughput and search RPC latency over loopback TCP (shorthand for -experiment remote)")
	clients := flag.String("clients", "",
		"comma-separated client counts for -remote (empty = 1,2,4,8)")
	flag.Parse()

	var names []string
	if *scenarios != "" {
		names = strings.Split(*scenarios, ",")
	}
	if *storage {
		*exp = "storage"
	}
	if *e2eMode {
		*exp = "e2e"
	}
	if *remoteMode {
		*exp = "remote"
	}
	var counts []int
	if *clients != "" {
		for _, f := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "dvbench: bad -clients value %q\n", f)
				os.Exit(1)
			}
			counts = append(counts, n)
		}
	}
	if err := run(*exp, names, *reps, counts); err != nil {
		fmt.Fprintln(os.Stderr, "dvbench:", err)
		os.Exit(1)
	}
}

func run(exp string, names []string, reps int, clients []int) error {
	runOne := func(name string) error {
		switch name {
		case "table1":
			fmt.Println(bench.Table1())
		case "fig2":
			f, err := bench.RunFig2(reps)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "fig3":
			f, err := bench.RunFig3(names...)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "fig4":
			f, err := bench.RunFig4(names...)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "fig5":
			f, err := bench.RunFig5(names...)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "fig6":
			f, err := bench.RunFig6(names...)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "fig7":
			f, err := bench.RunFig7(names...)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "policy":
			p, err := bench.RunPolicy()
			if err != nil {
				return err
			}
			fmt.Println(p.Render())
		case "storage":
			st, err := bench.RunStorage(names...)
			if err != nil {
				return err
			}
			fmt.Println(st.Render())
		case "e2e":
			e, err := bench.RunE2E(names...)
			if err != nil {
				return err
			}
			fmt.Println(e.Render())
		case "remote":
			r, err := bench.RunRemote(clients...)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "ablations":
			a1, err := bench.RunAblationCheckpoint()
			if err != nil {
				return err
			}
			fmt.Println(a1.Render())
			a2, err := bench.RunAblationDisplay()
			if err != nil {
				return err
			}
			fmt.Println(a2.Render())
			a3, err := bench.RunAblationMirror()
			if err != nil {
				return err
			}
			fmt.Println(a3.Render())
			a4, err := bench.RunAblationKeyframe()
			if err != nil {
				return err
			}
			fmt.Println(a4.Render())
			a5, err := bench.RunAblationDemandPaging()
			if err != nil {
				return err
			}
			fmt.Println(a5.Render())
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}
	if exp != "all" {
		return runOne(exp)
	}
	for _, name := range []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "policy", "ablations"} {
		if err := runOne(name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}
