// Command dvplay replays a display record saved by dvserver: it can seek
// to a point in time and render an ASCII thumbnail of the screen, or
// replay the whole record at the fastest rate and report the speedup.
//
// Usage:
//
//	dvplay -record /tmp/desktop.dv -at 2m30s
//	dvplay -record /tmp/desktop.dv -speedtest
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dejaview/internal/display"
	"dejaview/internal/playback"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

func main() {
	recDir := flag.String("record", "", "record directory (from dvserver -save)")
	at := flag.Duration("at", 0, "seek to this offset and render the screen")
	speedtest := flag.Bool("speedtest", false, "replay the entire record at the fastest rate")
	thumbW := flag.Int("thumbw", 72, "ASCII thumbnail width")
	passphrase := flag.String("decrypt", "", "passphrase for a sealed record")
	flag.Parse()

	if *recDir == "" {
		fmt.Fprintln(os.Stderr, "dvplay: -record is required")
		os.Exit(2)
	}
	if err := run(*recDir, *at, *speedtest, *thumbW, *passphrase); err != nil {
		fmt.Fprintln(os.Stderr, "dvplay:", err)
		os.Exit(1)
	}
}

func run(dir string, at time.Duration, speedtest bool, thumbW int, passphrase string) error {
	var store *record.Store
	var err error
	if passphrase != "" {
		store, err = record.OpenEncrypted(dir, record.DeriveKey(passphrase, []byte(dir)))
	} else {
		store, err = record.Open(dir)
	}
	if err != nil {
		return err
	}
	dur := store.Duration()
	fmt.Printf("record: %dx%d, %v long, %d keyframes, %.1f MB commands\n",
		store.Width, store.Height, dur, len(store.Timeline()),
		float64(store.CommandBytes())/(1<<20))

	if speedtest {
		p := playback.New(store, 16)
		if err := p.SeekTo(0); err != nil {
			return err
		}
		t0 := time.Now()
		n, err := p.Play(dur+simclock.Second, 1, nil)
		if err != nil {
			return err
		}
		host := time.Since(t0)
		fmt.Printf("replayed %d commands in %v: %.0fx real time\n",
			n, host, dur.Std().Seconds()/host.Seconds())
		return nil
	}

	p := playback.New(store, 16)
	if err := p.SeekTo(simclock.Duration(at)); err != nil {
		return err
	}
	st := p.Stats()
	fmt.Printf("seek to %v: keyframe + %d commands (%d pruned)\n",
		at, st.CommandsApplied, st.CommandsPruned)
	fmt.Println(thumbnail(p.Screen(), thumbW))
	return nil
}

// thumbnail renders the framebuffer as ASCII luminance art.
func thumbnail(fb *display.Framebuffer, outW int) string {
	w, h := fb.Size()
	if outW <= 0 {
		outW = 72
	}
	outH := outW * h / w / 2 // terminal cells are ~2x taller than wide
	if outH < 1 {
		outH = 1
	}
	ramp := []byte(" .:-=+*#%@")
	buf := make([]byte, 0, (outW+1)*outH)
	for y := 0; y < outH; y++ {
		for x := 0; x < outW; x++ {
			p := fb.At(x*w/outW, y*h/outH)
			r := (p >> 16) & 0xFF
			g := (p >> 8) & 0xFF
			b := p & 0xFF
			lum := (299*int(r) + 587*int(g) + 114*int(b)) / 1000
			buf = append(buf, ramp[lum*(len(ramp)-1)/255])
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}
