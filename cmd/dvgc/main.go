// Command dvgc runs the tiered archive lifecycle by hand: it compacts
// (or, with -dry-run, inspects) saved session archives, applying
// age-tiered checkpoint thinning, retention quotas, and cold-stream
// recompression with the same crash-safe machinery the dvserve daemon
// uses in the background (internal/tier).
//
// Usage:
//
//	dvgc -dry-run /archives/monday
//	dvgc -keep "1h:10,24h:60" -max-bytes 2147483648 /archives/*
//	dvgc -max-age 30d -recompress=false /archives/monday
//
// A dry run prints the plan — per-tier checkpoint counts, reclaimable
// bytes, and each stream's codec block distribution — without touching
// the archive. A real run first completes any compaction a previous
// crash left half-committed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dejaview/internal/compress"
	"dejaview/internal/core"
	"dejaview/internal/simclock"
	"dejaview/internal/tier"
)

func main() {
	dryRun := flag.Bool("dry-run", false, "plan and report without rewriting anything")
	keep := flag.String("keep", "1h:10,24h:60",
		"age-tiered thinning rules, comma-separated <min-age>:<keep-every> (empty = no thinning)")
	maxAge := flag.String("max-age", "", "evict checkpoints older than this (e.g. 30d; empty = no limit)")
	maxBytes := flag.Int64("max-bytes", 0, "evict oldest checkpoints past this logical size (0 = no limit)")
	recompress := flag.Bool("recompress", true, "rewrite streams with the strongest codec")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "dvgc: no archive directories given")
		flag.Usage()
		os.Exit(2)
	}
	p, err := policyFromFlags(*keep, *maxAge, *maxBytes, *recompress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvgc:", err)
		os.Exit(2)
	}

	failed := false
	for _, dir := range flag.Args() {
		if err := one(dir, p, *dryRun); err != nil {
			fmt.Fprintf(os.Stderr, "dvgc: %s: %v\n", dir, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func policyFromFlags(keep, maxAge string, maxBytes int64, recompress bool) (tier.Policy, error) {
	p := tier.Policy{MaxBytes: maxBytes, Recompress: recompress}
	var err error
	if p.Tiers, err = tier.ParseTiers(keep); err != nil {
		return p, err
	}
	if maxAge != "" {
		if p.MaxAge, err = tier.ParseAge(maxAge); err != nil {
			return p, err
		}
	}
	return p, nil
}

func one(dir string, p tier.Policy, dryRun bool) error {
	if dryRun {
		return inspect(dir, p)
	}
	res, err := tier.Compact(dir, p)
	if err != nil {
		return err
	}
	switch {
	case res.Skipped:
		fmt.Printf("%s: nothing to do\n", dir)
	default:
		fmt.Printf("%s: dropped %d checkpoints, %d record entries; %d -> %d bytes (%d reclaimed, recompressed=%v)\n",
			dir, res.Dropped, res.RecordDropped, res.BytesBefore, res.BytesAfter,
			res.Reclaimed(), res.Recompressed)
	}
	return nil
}

func inspect(dir string, p tier.Policy) error {
	a, err := core.OpenArchive(dir)
	if err != nil {
		return err
	}
	defer a.Close()
	infos := a.Checkpointer().ImageInfos()
	pl := p.Plan(infos, a.End)
	fmt.Printf("%s: %d checkpoints, %v of history; plan: %s\n",
		dir, len(infos), a.End, pl.String())
	for _, ts := range pl.PerTier {
		rule := "keep all"
		if ts.KeepEvery > 1 {
			rule = fmt.Sprintf("keep 1/%d", ts.KeepEvery)
		}
		fmt.Printf("  tier age>=%-8s %-10s %3d seen, %3d kept\n",
			fmtAge(ts.MinAge), rule, ts.Seen, ts.Kept)
	}
	if pl.DropRecordBefore > 0 {
		fmt.Printf("  record history before %v would be truncated\n", pl.DropRecordBefore)
	}
	fmt.Println("  codec distribution:")
	streams := []string{core.ArchiveIndexFile, core.ArchiveImagesFile, core.ArchiveFSFile}
	recDir := filepath.Join(dir, core.ArchiveRecordDir)
	if ents, err := os.ReadDir(recDir); err == nil {
		for _, e := range ents {
			streams = append(streams, filepath.Join(core.ArchiveRecordDir, e.Name()))
		}
	}
	for _, name := range streams {
		fmt.Printf("    %-22s %s\n", name, codecLine(filepath.Join(dir, name)))
	}
	return nil
}

func codecLine(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return "unreadable: " + err.Error()
	}
	if !compress.IsFrame(b) {
		return fmt.Sprintf("raw v1 (%d bytes)", len(b))
	}
	st, err := compress.Stats(b)
	if err != nil {
		return "corrupt frame: " + err.Error()
	}
	line := fmt.Sprintf("%d blocks:", st.Blocks)
	for _, name := range []string{"raw", "lzs", "flate"} {
		if n := st.PerCodec[name]; n > 0 {
			line += fmt.Sprintf(" %d %s", n, name)
		}
	}
	if compress.HasBlockTable(b) {
		line += " (seekable)"
	}
	return line
}

func fmtAge(t simclock.Time) string {
	switch {
	case t == 0:
		return "0"
	case t%(24*simclock.Hour) == 0:
		return fmt.Sprintf("%dd", t/(24*simclock.Hour))
	case t%simclock.Hour == 0:
		return fmt.Sprintf("%dh", t/simclock.Hour)
	case t%simclock.Minute == 0:
		return fmt.Sprintf("%dm", t/simclock.Minute)
	default:
		return fmt.Sprintf("%ds", t/simclock.Second)
	}
}
