// Command dvlint runs DejaView's project-specific static analysis
// (package internal/lint) over the module: bounded allocations in
// decoders, no wall-clock reads in replayable paths, obs and failpoint
// naming grammar, and lock discipline. It prints findings compiler
// style (`file:line: [rule] message`) and exits non-zero when any are
// active, so it slots directly into verify.sh and CI.
//
// Usage:
//
//	dvlint ./...                       # whole module
//	dvlint ./internal/record ./cmd/... # specific packages
//	dvlint -rules wallclock,obs-name ./...
//	dvlint -rules -bounded-alloc ./... # everything except one rule
//	dvlint -json ./...                 # machine-readable report
//	dvlint -list                       # show the rule registry
package main

import (
	"flag"
	"fmt"
	"os"

	"dejaview/internal/lint"
)

func main() {
	rulesSpec := flag.String("rules", "",
		"comma-separated rule selection; prefix a name with '-' to exclude it (empty = all rules)")
	jsonOut := flag.Bool("json", false, "emit a JSON report instead of compiler-style lines")
	list := flag.Bool("list", false, "list registered rules and exit")
	flag.Parse()

	if *list {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-16s %s\n", r.Name(), r.Doc())
		}
		return
	}

	rules, err := lint.SelectRules(*rulesSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}
	dirs, err := lint.ExpandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}
	m, err := lint.Load(root, dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}

	res := lint.Run(m, rules)
	if *jsonOut {
		if err := lint.NewReport(res, rules).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dvlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		if len(res.Findings) > 0 || res.Suppressed > 0 {
			fmt.Fprintf(os.Stderr, "dvlint: %d finding(s), %d suppressed\n",
				len(res.Findings), res.Suppressed)
		}
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}
