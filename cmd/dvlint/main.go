// Command dvlint runs DejaView's project-specific static analysis
// (package internal/lint) over the module: bounded allocations in
// decoders (interprocedurally, through the module call graph), no
// wall-clock reads in replayable paths, obs and failpoint naming
// grammar, lock discipline, map-iteration determinism, goroutine
// lifecycles, and error discipline on the save/commit paths. It prints
// findings compiler style (`file:line: [rule] message`) and exits
// non-zero when any are active, so it slots directly into verify.sh
// and CI.
//
// Usage:
//
//	dvlint ./...                       # whole module
//	dvlint ./internal/record ./cmd/... # specific packages
//	dvlint -rules wallclock,obs-name ./...
//	dvlint -rules -bounded-alloc ./... # everything except one rule
//	dvlint -json ./...                 # machine-readable report
//	dvlint -summarize lint.json        # findings + per-rule table from a saved report
//	dvlint -list                       # show the rule registry
package main

import (
	"flag"
	"fmt"
	"os"

	"dejaview/internal/lint"
)

func main() {
	rulesSpec := flag.String("rules", "",
		"comma-separated rule selection; prefix a name with '-' to exclude it (empty = all rules)")
	jsonOut := flag.Bool("json", false, "emit a JSON report instead of compiler-style lines")
	list := flag.Bool("list", false, "list registered rules and exit")
	summarize := flag.String("summarize", "",
		"read a dvlint -json report file and print its findings plus a per-rule findings/time table")
	flag.Parse()

	if *list {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-20s %s\n", r.Name(), r.Doc())
		}
		return
	}

	if *summarize != "" {
		if err := summarizeReport(*summarize); err != nil {
			fmt.Fprintln(os.Stderr, "dvlint:", err)
			os.Exit(2)
		}
		return
	}

	rules, err := lint.SelectRules(*rulesSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}
	dirs, err := lint.ExpandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}
	m, err := lint.Load(root, dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}

	res := lint.Run(m, rules)
	if *jsonOut {
		if err := lint.NewReport(res, rules).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dvlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		if len(res.Findings) > 0 || res.Suppressed > 0 {
			fmt.Fprintf(os.Stderr, "dvlint: %d finding(s), %d suppressed\n",
				len(res.Findings), res.Suppressed)
		}
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

// summarizeReport prints a saved JSON report's findings followed by a
// per-rule findings/time table — verify.sh runs it when the lint gate
// fails, so CI logs show which rule fired and what each rule cost
// without re-running the analysis. Exits 1 when the report holds
// findings, mirroring a live run.
func summarizeReport(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := lint.ParseReport(b)
	if err != nil {
		return err
	}
	for _, f := range rep.Findings {
		fmt.Println(f)
	}
	counts := map[string]int{}
	for _, f := range rep.Findings {
		counts[f.Rule]++
	}
	fmt.Printf("%-20s %9s %9s\n", "rule", "findings", "ms")
	for i, name := range rep.Rules {
		ms := "-"
		if i < len(rep.RuleTimes) {
			ms = fmt.Sprintf("%.2f", rep.RuleTimes[i].Millis)
		}
		fmt.Printf("%-20s %9d %9s\n", name, counts[name], ms)
	}
	// Directive hygiene runs outside the registry loop and is untimed.
	if n := counts[lint.DirectiveRule]; n > 0 {
		fmt.Printf("%-20s %9d %9s\n", lint.DirectiveRule, n, "-")
	}
	fmt.Printf("%d finding(s), %d suppressed\n", len(rep.Findings), rep.Suppressed)
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
	return nil
}
