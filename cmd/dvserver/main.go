// Command dvserver runs a simulated DejaView desktop session: it executes
// one of the Table 1 workload scenarios under full recording, prints the
// recording statistics, and optionally saves the display record to a
// directory that dvplay can replay.
//
// Usage:
//
//	dvserver -scenario desktop -save /tmp/desktop.dv
//	dvserver -scenario web -policy=false
package main

import (
	"flag"
	"fmt"
	"os"

	"dejaview/internal/core"
	"dejaview/internal/policy"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
	"dejaview/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "desktop", "workload scenario (see Table 1)")
	save := flag.String("save", "", "directory to save the display record to")
	usePolicy := flag.Bool("policy", true, "use the checkpoint policy (false = 1/s benchmark mode)")
	seed := flag.Int64("seed", 1, "workload random seed")
	passphrase := flag.String("encrypt", "", "seal the saved record under this passphrase")
	archiveDir := flag.String("archive", "", "directory to save the complete session archive to")
	flag.Parse()

	if err := run(*scenario, *save, *usePolicy, *seed, *passphrase, *archiveDir); err != nil {
		fmt.Fprintln(os.Stderr, "dvserver:", err)
		os.Exit(1)
	}
}

func run(scenario, save string, usePolicy bool, seed int64, passphrase, archiveDir string) error {
	sc, err := workload.ByName(scenario)
	if err != nil {
		return err
	}
	cfg := core.Config{}
	if !usePolicy {
		cfg.Policy = policy.Config{
			MaxRate:            simclock.Second,
			TextRate:           simclock.Second,
			MinDisplayFraction: 1e-9,
		}
	}
	s := core.NewSession(cfg)
	stats, err := workload.Run(s, sc, seed)
	if err != nil {
		return err
	}

	rec := s.Recorder().Stats()
	ck := s.Checkpointer().Stats()
	ix := s.Index().Stats()
	fsStats := s.FS().Stats()
	pol := s.Policy().Stats()

	fmt.Printf("scenario:     %s (%s)\n", sc.Name, sc.Description)
	fmt.Printf("session time: %v (%d steps)\n", stats.VirtualDuration, stats.Steps)
	fmt.Printf("display:      %d commands (%d merged), %.1f MB log, %d keyframes (%.1f MB)\n",
		rec.Commands, rec.MergedCommands,
		float64(rec.CommandBytes)/(1<<20), rec.Screenshots,
		float64(rec.ScreenshotBytes)/(1<<20))
	fmt.Printf("text index:   %d occurrences, %d terms, %.2f MB\n",
		ix.Occurrences, ix.Terms, float64(s.Index().Bytes())/(1<<20))
	fmt.Printf("checkpoints:  %d (%d full), %.1f MB raw / %.1f MB gz, avg downtime %.2f ms, max %.2f ms\n",
		ck.Checkpoints, ck.FullCheckpoints,
		float64(ck.TotalBytes)/(1<<20), float64(ck.CompressedBytes)/(1<<20),
		avgMS(ck.TotalDowntime, ck.Checkpoints), msf(ck.MaxDowntime))
	fmt.Printf("file system:  %d transactions, %.1f MB log\n",
		fsStats.Transactions, float64(fsStats.LogBytes)/(1<<20))
	fmt.Printf("policy:       %d taken / %d skipped\n", pol.Takes(), pol.Skips())

	if archiveDir != "" {
		if err := s.SaveArchive(archiveDir); err != nil {
			return err
		}
		fmt.Printf("session archive saved to %s (record + index + checkpoints + fs)\n", archiveDir)
	}
	if save != "" {
		if passphrase != "" {
			key := record.DeriveKey(passphrase, []byte(save))
			if err := s.Recorder().Store().SaveEncrypted(save, key); err != nil {
				return err
			}
			fmt.Printf("record sealed to %s (AES-256-CTR + HMAC)\n", save)
		} else {
			if err := s.Recorder().Store().Save(save); err != nil {
				return err
			}
			fmt.Printf("record saved to %s\n", save)
		}
	}
	return nil
}

func msf(t simclock.Time) float64 {
	return float64(t) / float64(simclock.Millisecond)
}

func avgMS(total simclock.Time, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return msf(total) / float64(n)
}
