// Command dvserve is the DejaView network access daemon: it serves a
// recorded desktop session — or a saved archive — to any number of
// concurrent viewers over TCP. Clients attach live views, run index
// searches, and stream playback through one multiplexed connection (see
// internal/remote).
//
// Live mode builds a session, replays one of the Table 1 workload
// scenarios into it, then keeps the desktop ticking in real time while
// serving: live viewers see a once-per-second status heartbeat, search
// covers the scenario's text, and playback streams the recorded history.
//
// Usage:
//
//	dvserve -listen 127.0.0.1:7777 -scenario desktop
//	dvserve -listen 127.0.0.1:7777 -archive /tmp/session.arch
//	dvserve -listen 127.0.0.1:7777 -metrics 127.0.0.1:7778
//
// With -metrics the daemon also serves an observability HTTP listener:
// /metrics (JSON registry snapshot), /spans (recent trace spans),
// /debug/pprof/* (live profiling), and /debug/dump (write heap +
// goroutine profiles to the dump directory).
//
// Stop with SIGINT/SIGTERM: the daemon drains client queues under the
// -drain deadline and prints final serving statistics.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/obs"
	"dejaview/internal/remote"
	"dejaview/internal/simclock"
	"dejaview/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "TCP address to serve on")
	scenario := flag.String("scenario", "desktop", "workload scenario to seed the live session with")
	seed := flag.Int64("seed", 1, "workload random seed")
	archiveDir := flag.String("archive", "", "serve this saved archive instead of a live session")
	queue := flag.Int("queue", 256, "per-client send queue bound, in frames")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain deadline")
	metrics := flag.String("metrics", "", "HTTP address for /metrics, /spans, /debug/pprof, /debug/dump (empty = off)")
	flag.Parse()

	if err := run(*listen, *scenario, *seed, *archiveDir, *queue, *drain, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "dvserve:", err)
		os.Exit(1)
	}
}

func run(listen, scenario string, seed int64, archiveDir string, queue int, drain time.Duration, metrics string) error {
	opts := remote.Options{SendQueue: queue, DrainTimeout: drain}
	var sess *core.Session
	switch {
	case archiveDir != "":
		a, err := core.OpenArchive(archiveDir)
		if err != nil {
			return err
		}
		opts.Archive = a
		fmt.Printf("serving archive %s (%dx%d, %v of history)\n",
			archiveDir, a.Width, a.Height, a.End)
	default:
		sc, err := workload.ByName(scenario)
		if err != nil {
			return err
		}
		sess = core.NewSession(core.Config{})
		fmt.Printf("seeding session with scenario %q (%d steps)...\n", sc.Name, sc.Steps)
		if _, err := workload.Run(sess, sc, seed); err != nil {
			return err
		}
		opts.Session = sess
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	srv := remote.Serve(ln, opts)
	fmt.Printf("dvserve listening on %s\n", srv.Addr())

	if metrics != "" {
		// Profile dumps land next to the served archive when there is
		// one, else in the working directory.
		dumpDir := "."
		if archiveDir != "" {
			dumpDir = archiveDir
		}
		mln, err := net.Listen("tcp", metrics)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer mln.Close()
		go func() {
			h := obs.Handler(obs.Default, obs.DefaultTracer, dumpDir)
			if err := http.Serve(mln, h); err != nil && !isClosedErr(err) {
				fmt.Fprintln(os.Stderr, "dvserve: metrics:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", mln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if sess != nil {
		heartbeat(sess, stop)
	} else {
		<-stop
	}

	fmt.Println("shutting down (draining clients)...")
	srv.Close()
	st := srv.Stats()
	fmt.Printf("served %d clients (%d evicted), %d frames / %.1f MB, %d searches, %d playbacks, %d input events\n",
		st.TotalClients, st.Evicted, st.FramesSent,
		float64(st.BytesSent)/(1<<20), st.Searches, st.Playbacks, st.InputEvents)
	return nil
}

// isClosedErr reports the benign accept error after the listener closes
// at shutdown.
func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// heartbeat keeps a served live session moving in real time: once per
// wall-clock second it paints a status bar stripe, ticks the session,
// and advances the virtual clock — so attached live viewers see updates
// and the record keeps growing until the daemon stops.
func heartbeat(s *core.Session, stop <-chan os.Signal) {
	w, h := s.Display().Size()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		bar := display.NewRect(0, h-16, w, 16)
		if err := s.Display().Submit(display.SolidFill(s.Clock().Now(), bar,
			display.RGB(uint8(40*i), 120, 200))); err != nil {
			fmt.Fprintln(os.Stderr, "dvserve: heartbeat:", err)
			return
		}
		if _, _, err := s.Tick(); err != nil {
			fmt.Fprintln(os.Stderr, "dvserve: heartbeat:", err)
			return
		}
		s.Clock().Advance(simclock.Second)
	}
}
