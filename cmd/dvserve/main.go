// Command dvserve is the DejaView network access daemon: it serves
// recorded desktop sessions — or saved archives — to any number of
// concurrent viewers over TCP. Clients attach live views, run index
// searches, and stream playback through one multiplexed connection (see
// internal/remote).
//
// Both -scenario and -archive accept comma-separated lists: each entry
// becomes one session of a multi-tenant fleet behind the single daemon,
// addressable by session ID (the scenario name, or the archive
// directory's base name). The first entry is the default session that
// protocol-1 clients and ID-less hellos reach. Per-session admission
// budgets (-session-clients, -session-bytes, -session-streams) shed
// excess load with a typed busy error instead of degrading neighbors.
//
// Live mode builds each session, replays one of the Table 1 workload
// scenarios into it, then keeps every desktop ticking in real time while
// serving: live viewers see a once-per-second status heartbeat, search
// covers the scenario's text, and playback streams the recorded history.
//
// Usage:
//
//	dvserve -listen 127.0.0.1:7777 -scenario desktop
//	dvserve -listen 127.0.0.1:7777 -scenario desktop,editor,video
//	dvserve -listen 127.0.0.1:7777 -archive /tmp/a.arch,/tmp/b.arch
//	dvserve -listen 127.0.0.1:7777 -metrics 127.0.0.1:7778
//
// With -metrics the daemon also serves an observability HTTP listener:
// /metrics (JSON registry snapshot), /spans (recent trace spans),
// /debug/pprof/* (live profiling), and /debug/dump (write heap +
// goroutine profiles to the dump directory).
//
// Stop with SIGINT/SIGTERM: the daemon drains client queues under the
// -drain deadline and prints final serving statistics.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/obs"
	"dejaview/internal/remote"
	"dejaview/internal/simclock"
	"dejaview/internal/tier"
	"dejaview/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "TCP address to serve on")
	scenario := flag.String("scenario", "desktop",
		"comma-separated workload scenarios to seed live sessions with (one session each)")
	seed := flag.Int64("seed", 1, "workload random seed (consecutive sessions use seed, seed+1, ...)")
	archiveDir := flag.String("archive", "",
		"comma-separated saved archives to serve instead of live sessions")
	queue := flag.Int("queue", 256, "per-client send queue bound, in frames")
	sessClients := flag.Int("session-clients", 0, "max clients admitted per session (0 = unlimited)")
	sessBytes := flag.Int64("session-bytes", 0, "max outstanding queued bytes per session before shedding (0 = unlimited)")
	sessStreams := flag.Int("session-streams", 0, "max concurrent playback streams per session (0 = unlimited)")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain deadline")
	metrics := flag.String("metrics", "", "HTTP address for /metrics, /spans, /debug/pprof, /debug/dump (empty = off)")
	compact := flag.Duration("compact", 0,
		"periodically compact served archive directories (tiered checkpoint thinning + recompression; 0 = off). Already-attached clients keep the view they opened; compaction applies on the next open.")
	compactKeep := flag.String("compact-keep", "1h:10,24h:60",
		"thinning rules for -compact, comma-separated <min-age>:<keep-every>")
	compactMaxBytes := flag.Int64("compact-max-bytes", 0,
		"per-archive logical checkpoint byte quota for -compact (0 = unlimited)")
	cacheBytes := flag.Int64("cache-bytes", 0,
		"per-archive decoded-block cache budget in bytes (0 = default, negative = off); repeated browse seeks over a cold archive decode each block at most once while within budget")
	flag.Parse()

	err := run(serveConfig{
		listen:          *listen,
		scenarios:       *scenario,
		seed:            *seed,
		archives:        *archiveDir,
		queue:           *queue,
		sessClients:     *sessClients,
		sessBytes:       *sessBytes,
		sessStreams:     *sessStreams,
		drain:           *drain,
		metrics:         *metrics,
		compact:         *compact,
		compactKeep:     *compactKeep,
		compactMaxBytes: *compactMaxBytes,
		cacheBytes:      *cacheBytes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvserve:", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	listen          string
	scenarios       string
	seed            int64
	archives        string
	queue           int
	sessClients     int
	sessBytes       int64
	sessStreams     int
	drain           time.Duration
	metrics         string
	compact         time.Duration
	compactKeep     string
	compactMaxBytes int64
	cacheBytes      int64
}

// sessionID derives a valid session ID from a scenario name or archive
// path base: lowercased, with every disallowed rune mapped to '-'.
func sessionID(base string) string {
	id := strings.ToLower(base)
	id = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		}
		return '-'
	}, id)
	if id == "" || !remote.ValidSessionID(id) {
		return ""
	}
	return id
}

func run(cfg serveConfig) error {
	opts := remote.Options{
		SendQueue:            cfg.queue,
		DrainTimeout:         cfg.drain,
		MaxClientsPerSession: cfg.sessClients,
		SessionByteQuota:     cfg.sessBytes,
		MaxStreamsPerSession: cfg.sessStreams,
	}

	// Each -archive / -scenario entry becomes one registered session;
	// duplicate-derived IDs get a numeric suffix. The first registered
	// session is the fleet's default.
	seen := map[string]bool{}
	uniqueID := func(base string) (string, error) {
		id := sessionID(base)
		if id == "" {
			return "", fmt.Errorf("cannot derive a session ID from %q", base)
		}
		if !seen[id] {
			seen[id] = true
			return id, nil
		}
		for n := 2; ; n++ {
			c := fmt.Sprintf("%s-%d", id, n)
			if !seen[c] {
				seen[c] = true
				return c, nil
			}
		}
	}

	var liveSessions []*core.Session
	var archiveDirs []string
	switch {
	case cfg.archives != "":
		for _, dir := range strings.Split(cfg.archives, ",") {
			dir = strings.TrimSpace(dir)
			archiveDirs = append(archiveDirs, dir)
			a, err := core.OpenArchiveWith(dir, core.OpenOptions{CacheBytes: cfg.cacheBytes})
			if err != nil {
				return err
			}
			id, err := uniqueID(filepath.Base(filepath.Clean(dir)))
			if err != nil {
				return err
			}
			opts.Sessions = append(opts.Sessions, remote.SessionConfig{ID: id, Archive: a})
			fmt.Printf("session %q: archive %s (%dx%d, %v of history)\n",
				id, dir, a.Width, a.Height, a.End)
		}
	default:
		for i, name := range strings.Split(cfg.scenarios, ",") {
			name = strings.TrimSpace(name)
			sc, err := workload.ByName(name)
			if err != nil {
				return err
			}
			id, err := uniqueID(sc.Name)
			if err != nil {
				return err
			}
			sess := core.NewSession(core.Config{})
			fmt.Printf("session %q: seeding scenario %q (%d steps)...\n", id, sc.Name, sc.Steps)
			if _, err := workload.Run(sess, sc, cfg.seed+int64(i)); err != nil {
				return err
			}
			opts.Sessions = append(opts.Sessions, remote.SessionConfig{ID: id, Session: sess})
			liveSessions = append(liveSessions, sess)
		}
	}

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	srv := remote.Serve(ln, opts)
	fmt.Printf("dvserve listening on %s (%d sessions, default %q)\n",
		srv.Addr(), len(opts.Sessions), opts.Sessions[0].ID)

	if cfg.compact > 0 && len(archiveDirs) > 0 {
		stopCompact, err := startCompactor(cfg, archiveDirs)
		if err != nil {
			return err
		}
		defer stopCompact()
	}

	if cfg.metrics != "" {
		// Profile dumps land next to the first served archive when there
		// is one, else in the working directory.
		dumpDir := "."
		if cfg.archives != "" {
			dumpDir = strings.TrimSpace(strings.Split(cfg.archives, ",")[0])
		}
		mln, err := net.Listen("tcp", cfg.metrics)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer mln.Close()
		//lint:ignore goroutine-lifecycle metrics server runs until the deferred listener close; http.Serve returns on the closed-listener error
		go func() {
			h := obs.Handler(obs.Default, obs.DefaultTracer, dumpDir)
			if err := http.Serve(mln, h); err != nil && !isClosedErr(err) {
				fmt.Fprintln(os.Stderr, "dvserve: metrics:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", mln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if len(liveSessions) > 0 {
		heartbeat(liveSessions, stop)
	} else {
		<-stop
	}

	fmt.Println("shutting down (draining clients)...")
	srv.Close()
	st := srv.Stats()
	fmt.Printf("served %d sessions to %d clients (%d evicted, %d shed), %d frames / %.1f MB, %d searches, %d playbacks, %d input events\n",
		st.SessionsActive, st.TotalClients, st.Evicted, st.AdmissionRejects, st.FramesSent,
		float64(st.BytesSent)/(1<<20), st.Searches, st.Playbacks, st.InputEvents)
	return nil
}

// startCompactor runs the tiered archive lifecycle over the served
// fleet's archive directories on a wall-clock cadence, feeding
// tier.RunLoop (which is itself clock-free) from a ticker. On-disk
// compaction never disturbs sessions already open in memory; clients
// see the thinned history on the daemon's next start.
func startCompactor(cfg serveConfig, dirs []string) (stop func(), err error) {
	pol := tier.Policy{MaxBytes: cfg.compactMaxBytes, Recompress: true}
	if pol.Tiers, err = tier.ParseTiers(cfg.compactKeep); err != nil {
		return nil, err
	}
	ticks := make(chan struct{}, 1)
	done := make(chan struct{})
	ticker := time.NewTicker(cfg.compact)
	go func() {
		defer close(ticks)
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				select {
				case ticks <- struct{}{}:
				default: // previous sweep still running
				}
			}
		}
	}()
	go tier.RunLoop(ticks, func() []string { return dirs }, pol,
		func(dir string, res tier.Result, err error) {
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "dvserve: compact %s: %v\n", dir, err)
			case !res.Skipped:
				fmt.Printf("compacted %s: dropped %d checkpoints, reclaimed %d bytes\n",
					dir, res.Dropped, res.Reclaimed())
			}
		})
	fmt.Printf("compacting %d archives every %v\n", len(dirs), cfg.compact)
	return func() {
		ticker.Stop()
		close(done)
	}, nil
}

// isClosedErr reports the benign accept error after the listener closes
// at shutdown.
func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// heartbeat keeps every served live session moving in real time: once
// per wall-clock second it paints a status bar stripe, ticks the
// session, and advances its virtual clock — so attached live viewers see
// updates and each record keeps growing until the daemon stops.
func heartbeat(sessions []*core.Session, stop <-chan os.Signal) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		for _, s := range sessions {
			w, h := s.Display().Size()
			bar := display.NewRect(0, h-16, w, 16)
			if err := s.Display().Submit(display.SolidFill(s.Clock().Now(), bar,
				display.RGB(uint8(40*i), 120, 200))); err != nil {
				fmt.Fprintln(os.Stderr, "dvserve: heartbeat:", err)
				return
			}
			if _, _, err := s.Tick(); err != nil {
				fmt.Fprintln(os.Stderr, "dvserve: heartbeat:", err)
				return
			}
			s.Clock().Advance(simclock.Second)
		}
	}
}
