// Command dvsearch demonstrates WYSIWYS search: it runs a workload
// scenario under full recording, then evaluates a query against the text
// captured from the session and prints the matching substreams with
// their context.
//
// Usage:
//
//	dvsearch -scenario desktop -query "analysis section"
//	dvsearch -scenario web -query lorem -app Firefox -order persistence
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dejaview/internal/core"
	"dejaview/internal/index"
	"dejaview/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "desktop", "workload scenario to record")
	archive := flag.String("archive", "", "query a saved session archive instead of recording a scenario")
	query := flag.String("query", "", "space-separated AND terms (required)")
	app := flag.String("app", "", "restrict to an application name")
	window := flag.String("window", "", "restrict to a window-title substring")
	focused := flag.Bool("focused", false, "restrict to focused windows")
	annotated := flag.Bool("annotated", false, "restrict to annotations")
	order := flag.String("order", "time", "result order: time|persistence|frequency")
	limit := flag.Int("limit", 10, "max results")
	seed := flag.Int64("seed", 1, "workload random seed")
	flag.Parse()

	if *query == "" {
		fmt.Fprintln(os.Stderr, "dvsearch: -query is required")
		os.Exit(2)
	}
	if err := run(*scenario, *archive, *query, *app, *window, *focused, *annotated, *order, *limit, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dvsearch:", err)
		os.Exit(1)
	}
}

func run(scenario, archive, query, app, window string, focused, annotated bool, order string, limit int, seed int64) error {
	q := index.Query{
		All:           strings.Fields(query),
		App:           app,
		Window:        window,
		FocusedOnly:   focused,
		AnnotatedOnly: annotated,
		Limit:         limit,
	}
	switch order {
	case "persistence":
		q.Order = index.OrderPersistence
	case "frequency":
		q.Order = index.OrderFrequency
	default:
		q.Order = index.OrderChronological
	}

	var results []core.SearchResult
	var source string
	var recorded interface{ String() string }
	if archive != "" {
		a, err := core.OpenArchive(archive)
		if err != nil {
			return err
		}
		results, err = a.Search(q)
		if err != nil {
			return err
		}
		source, recorded = archive, a.End
	} else {
		sc, err := workload.ByName(scenario)
		if err != nil {
			return err
		}
		s := core.NewSession(core.Config{})
		if _, err := workload.Run(s, sc, seed); err != nil {
			return err
		}
		results, err = s.Search(q)
		if err != nil {
			return err
		}
		source, recorded = scenario+" session", s.Clock().Now()
	}
	fmt.Printf("%d result(s) for %q in %s (%v recorded)\n\n",
		len(results), query, source, recorded)
	for i, r := range results {
		fmt.Printf("%2d. %v  (visible %v, %d match(es))\n",
			i+1, r.Interval, r.Persistence, r.Matches)
		for _, snip := range r.Snippets {
			fmt.Printf("      %q\n", snip)
		}
		if r.Screenshot != nil {
			w, h := r.Screenshot.Size()
			fmt.Printf("      screenshot portal: %dx%d (revive with TakeMeBack(%v))\n",
				w, h, r.Time)
		}
	}
	return nil
}
