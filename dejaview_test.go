package dejaview

import (
	"path/filepath"
	"testing"
	"time"
)

// TestFacadeEndToEnd exercises the full public surface the way a
// downstream user would: record, search, browse, play back, save/reload
// the record, and revive.
func TestFacadeEndToEnd(t *testing.T) {
	s := NewSession(Config{})

	app := s.Registry().Register("Editor", "editor")
	win := app.AddComponent(nil, RoleWindow, "doc.txt - Editor", "")
	para := app.AddComponent(win, RoleParagraph, "", "")
	s.Registry().SetFocus(app)

	proc, err := s.Container().Spawn(0, "editor")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := proc.Mem().Mmap(8*PageSize, PermRead|PermWrite)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ {
		app.SetText(para, "the quarterly budget draft line")
		if err := s.Display().Submit(SolidFill(0, NewRect(0, i*30, 640, 30),
			RGB(byte(i*12), 128, 200))); err != nil {
			t.Fatal(err)
		}
		if err := proc.Mem().Write(addr, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		s.NoteKeyboardInput()
		if _, _, err := s.Tick(); err != nil {
			t.Fatal(err)
		}
		s.Clock().Advance(Second)
	}

	// Search.
	res, err := s.Search(Query{All: []string{"budget"}, App: "Editor"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Screenshot == nil {
		t.Fatal("search returned nothing usable")
	}

	// Browse.
	fb, err := s.Browse(10 * Second)
	if err != nil {
		t.Fatal(err)
	}
	if fb.At(5, 5) == 0 {
		t.Error("browse screenshot looks empty")
	}

	// Playback through the facade's Player.
	p := s.Player()
	if err := p.SeekTo(5 * Second); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Play(15*Second, 2.0, nil); err != nil {
		t.Fatal(err)
	}

	// Save and reopen the record.
	dir := filepath.Join(t.TempDir(), "rec")
	if err := s.Recorder().Store().Save(dir); err != nil {
		t.Fatal(err)
	}
	store, err := OpenRecord(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewPlayer(store, 8)
	if err := p2.SeekTo(10 * Second); err != nil {
		t.Fatal(err)
	}
	if !p2.Screen().Equal(fb) {
		t.Error("reloaded record renders differently")
	}

	// Revive.
	rv, err := s.TakeMeBack(res[0].Time)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := rv.Container.Process(proc.PID())
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "editor" {
		t.Errorf("revived process %q", rp.Name())
	}
}

func TestFacadeTimeHelpers(t *testing.T) {
	if Duration(time.Second) != Second {
		t.Error("Duration conversion wrong")
	}
	if 2*Minute != 120*Second || Hour != 60*Minute {
		t.Error("duration constants inconsistent")
	}
}

func TestFacadeDisplayCommands(t *testing.T) {
	s := NewSession(Config{Width: 64, Height: 64})
	cmds := []Command{
		SolidFill(0, NewRect(0, 0, 32, 32), RGB(1, 2, 3)),
		RawPixels(0, NewRect(32, 0, 2, 2), []Pixel{1, 2, 3, 4}),
		CopyRect(0, NewRect(0, 32, 8, 8), Point{X: 0, Y: 0}),
		GlyphBitmap(0, NewRect(40, 40, 8, 1), []byte{0xAA}, 1, 2),
		VideoFrame(0, NewRect(0, 48, 64, 16), []byte("frame")),
	}
	for _, c := range cmds {
		if err := s.Display().Submit(c); err != nil {
			t.Fatalf("%v: %v", c.Type, err)
		}
	}
	if _, _, err := s.Tick(); err != nil {
		t.Fatal(err)
	}
	if s.Display().Screen().At(1, 1) != RGB(1, 2, 3) {
		t.Error("fill not applied")
	}
}
