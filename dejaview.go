// Package dejaview is a library reproduction of "DejaView: A Personal
// Virtual Computer Recorder" (Laadan, Baratto, Phung, Potter, Nieh —
// SOSP 2007).
//
// DejaView records a desktop computing session — its visual output, the
// text displayed on screen (with application/window context), and the
// full execution and file-system state — and lets the user play back,
// browse, and search everything they have seen, and revive a live session
// from any recorded point in time (What You Search Is What You've Seen).
//
// Because real display drivers and kernel checkpoint modules are not
// available to a portable Go library, every substrate is a faithful
// in-process simulation: a THINC-style virtual display, a Zap-style
// virtual execution environment with copy-on-write incremental
// checkpointing, a log-structured snapshotting file system joined with a
// union layer for branchable revives, an accessibility registry with a
// mirror-tree capture daemon, and a temporal full-text index. See
// DESIGN.md for the substitution map.
//
// Quick start:
//
//	s := dejaview.NewSession(dejaview.Config{})
//	// ... drive the session: register apps, submit display commands,
//	// spawn processes, call s.Tick() as time advances ...
//	results, _ := s.Search(dejaview.Query{All: []string{"budget"}})
//	revived, _ := s.TakeMeBack(results[0].Time)
//
// The examples directory contains complete runnable programs, and the
// internal/workload package reproduces the paper's Table 1 scenarios.
package dejaview

import (
	"dejaview/internal/core"
	"dejaview/internal/index"
	"dejaview/internal/simclock"
)

// Config tunes a Session; the zero value uses the paper's defaults
// (1024×768 desktop, full-fidelity recording, 1/s checkpoint rate limit,
// 5% display threshold, 10 s text-editing cadence).
type Config = core.Config

// Session is one recorded desktop session.
type Session = core.Session

// Revived is a live session recreated from a checkpoint.
type Revived = core.Revived

// SearchResult is one search hit with its screenshot portal.
type SearchResult = core.SearchResult

// Query is a boolean keyword search with contextual constraints.
type Query = index.Query

// Result orderings for queries.
const (
	OrderChronological = index.OrderChronological
	OrderPersistence   = index.OrderPersistence
	OrderFrequency     = index.OrderFrequency
)

// Time is a virtual timestamp (nanoseconds since session start).
type Time = simclock.Time

// Common durations.
const (
	Millisecond = simclock.Millisecond
	Second      = simclock.Second
	Minute      = simclock.Minute
	Hour        = simclock.Hour
)

// NewSession creates a session on a fresh virtual clock.
func NewSession(cfg Config) *Session { return core.NewSession(cfg) }
