module dejaview

go 1.22
