// Package simclock provides the virtual time source shared by every
// DejaView substrate.
//
// The paper's evaluation ran on 2007 hardware and measured wall-clock
// latencies. This reproduction composes latencies from a calibrated cost
// model instead (see package bench), so all subsystems stamp events with a
// virtual clock that can be driven deterministically by workloads and
// advanced by simulated costs. A Clock may also be put in real-time mode,
// in which case it tracks the host monotonic clock; the interactive tools
// use that mode.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Time is a virtual timestamp, measured in nanoseconds since the start of
// the session. It is deliberately a distinct type from time.Time so that
// simulated and host timestamps cannot be confused.
type Time int64

// Common durations re-exported for readability at call sites.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Duration converts a time.Duration into virtual nanoseconds.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Std converts a virtual timestamp into a time.Duration offset from the
// session start.
func (t Time) Std() time.Duration { return time.Duration(t) }

// Seconds reports the timestamp as fractional seconds since session start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the timestamp as a human-readable offset.
func (t Time) String() string {
	if t < 0 {
		return fmt.Sprintf("-%v", (-t).Std())
	}
	return t.Std().String()
}

// Clock is a monotonic virtual clock. The zero value is a valid clock
// positioned at time 0 in virtual mode.
//
// Clock is safe for concurrent use.
type Clock struct {
	mu       sync.Mutex
	now      Time
	realtime bool
	start    time.Time // host epoch, real-time mode only
}

// New returns a virtual-mode clock positioned at time zero.
func New() *Clock { return &Clock{} }

// NewRealtime returns a clock that tracks the host monotonic clock,
// starting from zero at the moment of the call.
func NewRealtime() *Clock {
	return &Clock{realtime: true, start: time.Now()}
}

// Now reports the current virtual time.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.realtime {
		return Time(time.Since(c.start).Nanoseconds())
	}
	return c.now
}

// Advance moves a virtual-mode clock forward by d. It panics if d is
// negative (virtual time is monotonic) and is a no-op in real-time mode,
// where the host clock is authoritative.
func (c *Clock) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: Advance(%v): negative duration", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.realtime {
		c.now += d
	}
}

// Set positions a virtual-mode clock at an absolute time. It panics when
// moving backwards or when the clock is in real-time mode.
func (c *Clock) Set(t Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.realtime {
		panic("simclock: Set on a real-time clock")
	}
	if t < c.now {
		panic(fmt.Sprintf("simclock: Set(%v) before current time %v", t, c.now))
	}
	c.now = t
}

// Realtime reports whether the clock tracks the host clock.
func (c *Clock) Realtime() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.realtime
}
