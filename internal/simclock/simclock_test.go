package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClockAdvance(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v, want 0", c.Now())
	}
	c.Advance(5 * Second)
	if c.Now() != 5*Second {
		t.Errorf("Now = %v, want 5s", c.Now())
	}
	c.Advance(0)
	if c.Now() != 5*Second {
		t.Errorf("Advance(0) moved the clock to %v", c.Now())
	}
}

func TestVirtualClockSet(t *testing.T) {
	c := New()
	c.Set(10 * Minute)
	if c.Now() != 10*Minute {
		t.Errorf("Now = %v, want 10m", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("Set backwards should panic")
		}
	}()
	c.Set(Second)
}

func TestAdvanceNegativePanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Error("negative Advance should panic")
		}
	}()
	c.Advance(-1)
}

func TestRealtimeClock(t *testing.T) {
	c := NewRealtime()
	if !c.Realtime() {
		t.Fatal("NewRealtime not in realtime mode")
	}
	t0 := c.Now()
	time.Sleep(2 * time.Millisecond)
	t1 := c.Now()
	if t1 <= t0 {
		t.Errorf("realtime clock did not move: %v -> %v", t0, t1)
	}
	c.Advance(Hour) // no-op in realtime mode
	if c.Now() > t1+Minute {
		t.Error("Advance affected a realtime clock")
	}
}

func TestRealtimeSetPanics(t *testing.T) {
	c := NewRealtime()
	defer func() {
		if recover() == nil {
			t.Error("Set on realtime clock should panic")
		}
	}()
	c.Set(Second)
}

func TestTimeConversions(t *testing.T) {
	if Duration(time.Second) != Second {
		t.Error("Duration(1s) != Second")
	}
	if (2 * Second).Std() != 2*time.Second {
		t.Error("Std conversion wrong")
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", got)
	}
	if (3 * Second).String() != "3s" {
		t.Errorf("String = %q", (3 * Second).String())
	}
	if Time(-Second).String() != "-1s" {
		t.Errorf("negative String = %q", Time(-Second).String())
	}
}

// Property: Now after a sequence of advances equals their sum.
func TestClockSumProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := New()
		var sum Time
		for _, s := range steps {
			d := Time(s) * Microsecond
			c.Advance(d)
			sum += d
		}
		return c.Now() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockMonotone(t *testing.T) {
	c := New()
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		c.Advance(Time(i % 7))
		now := c.Now()
		if now < prev {
			t.Fatalf("clock went backwards: %v -> %v", prev, now)
		}
		prev = now
	}
}
