package workload

import (
	"fmt"
	"strings"

	"dejaview/internal/access"
	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

// Application simulators: each pairs display output with accessibility
// tree updates the way its real counterpart does.

// glyph metrics for terminal/browser text rendering.
const (
	glyphW     = 8
	glyphH     = 16
	lineHeight = glyphH
)

// lineBitmap renders a text line as a 1bpp bitmap sized to the text.
func lineBitmap(text string, maxW int) (display.Rect, []byte) {
	w := len(text) * glyphW
	if w > maxW {
		w = maxW
	}
	if w == 0 {
		w = glyphW
	}
	rowBytes := (w + 7) / 8
	bits := make([]byte, rowBytes*lineHeight)
	// Cheap deterministic glyph texture derived from the text.
	var h uint32 = 2166136261
	for _, c := range []byte(text) {
		h = (h ^ uint32(c)) * 16777619
	}
	for i := range bits {
		bits[i] = byte(h >> (uint(i) % 24))
	}
	return display.Rect{W: w, H: lineHeight}, bits
}

// Terminal simulates a terminal emulator: printed lines scroll the
// window with a copy command and draw the new line as a glyph bitmap.
// Like real VTE accessibility, each visible line is its own accessible
// component, and scrolling updates one line's text per event.
type Terminal struct {
	ctx      *Ctx
	app      *access.Application
	lineComp []*access.Component
	next     int
	bounds   display.Rect
	maxL     int
}

// NewTerminal opens a terminal occupying bounds on the screen.
func NewTerminal(ctx *Ctx, name string, bounds display.Rect) *Terminal {
	app := ctx.S.Registry().Register(name, "terminal")
	win := app.AddComponent(nil, access.RoleWindow, name, "")
	maxL := bounds.H / lineHeight
	if maxL < 1 {
		maxL = 1
	}
	t := &Terminal{ctx: ctx, app: app, bounds: bounds, maxL: maxL}
	for i := 0; i < maxL; i++ {
		t.lineComp = append(t.lineComp, app.AddComponent(win, access.RoleTerminal, "", ""))
	}
	return t
}

// App exposes the backing application (for focus control).
func (t *Terminal) App() *access.Application { return t.app }

// WriteLine prints one line: scroll + draw + accessibility update.
func (t *Terminal) WriteLine(text string) error {
	d := t.ctx.S.Display()
	// Scroll up one line.
	scroll := display.Copy(0, display.Rect{
		X: t.bounds.X, Y: t.bounds.Y,
		W: t.bounds.W, H: t.bounds.H - lineHeight,
	}, display.Point{X: t.bounds.X, Y: t.bounds.Y + lineHeight})
	if err := d.Submit(scroll); err != nil {
		return err
	}
	// Clear and draw the new bottom line.
	lineY := t.bounds.Y + t.bounds.H - lineHeight
	clear := display.SolidFill(0, display.NewRect(t.bounds.X, lineY, t.bounds.W, lineHeight),
		display.RGB(0, 0, 0))
	if err := d.Submit(clear); err != nil {
		return err
	}
	r, bits := lineBitmap(text, t.bounds.W)
	r.X, r.Y = t.bounds.X, lineY
	if err := d.Submit(display.Bitmap(0, r, bits, display.RGB(220, 220, 220), display.RGB(0, 0, 0))); err != nil {
		return err
	}
	// Accessibility: the oldest line component takes the new text
	// (one line-level event per printed line, as VTE delivers).
	t.app.SetText(t.lineComp[t.next], text)
	t.next = (t.next + 1) % t.maxL
	return nil
}

// Browser simulates a web browser: page loads repaint most of the
// window and rebuild the page's accessible subtree from scratch — the
// on-demand regeneration that makes Firefox's indexing expensive (§6).
type Browser struct {
	ctx    *Ctx
	app    *access.Application
	win    *access.Component
	doc    *access.Component
	bounds display.Rect
}

// NewBrowser opens a browser occupying bounds.
func NewBrowser(ctx *Ctx, bounds display.Rect) *Browser {
	app := ctx.S.Registry().Register("Firefox", "browser")
	win := app.AddComponent(nil, access.RoleWindow, "Mozilla Firefox", "")
	return &Browser{ctx: ctx, app: app, win: win, bounds: bounds}
}

// App exposes the backing application.
func (b *Browser) App() *access.Application { return b.app }

// LoadPage renders a page: a full-window repaint dominated by glyph
// bitmaps (web pages are mostly text) with a couple of raw image strips,
// plus a rebuilt accessible document of paragraphs and links.
func (b *Browser) LoadPage(title string, paragraphs []string, links []string) error {
	d := b.ctx.S.Display()
	// Page background.
	if err := d.Submit(display.SolidFill(0, b.bounds, display.RGB(255, 255, 255))); err != nil {
		return err
	}
	// Text body rendered as glyph bitmaps, one line at a time.
	y := b.bounds.Y + 8
	for _, p := range paragraphs {
		if y+lineHeight > b.bounds.Y+b.bounds.H {
			break
		}
		r, bits := lineBitmap(p, b.bounds.W-16)
		r.X, r.Y = b.bounds.X+8, y
		if err := d.Submit(display.Bitmap(0, r, bits,
			display.RGB(20, 20, 20), display.RGB(255, 255, 255))); err != nil {
			return err
		}
		y += lineHeight + 4
	}
	// Two inline images as raw strips.
	for img := 0; img < 2; img++ {
		strip := display.NewRect(b.bounds.X+16, b.bounds.Y+64+img*200,
			b.bounds.W/3, 48)
		strip = strip.Intersect(b.bounds)
		if strip.Empty() {
			continue
		}
		pix := make([]display.Pixel, strip.Area())
		for i := range pix {
			pix[i] = display.Pixel(0xFF000000 | uint32(b.ctx.Rng.Uint32()&0xF0F0F0))
		}
		if err := d.Submit(display.Raw(0, strip, pix)); err != nil {
			return err
		}
	}
	// Accessibility: drop the old document subtree, build a new one —
	// Firefox creates accessibility information on demand rather than
	// updating in place, and regenerates it as the daemon queries, which
	// is what made web indexing expensive in the paper (§6). The second
	// pass below models that on-demand regeneration.
	if b.doc != nil {
		b.app.RemoveComponent(b.doc)
	}
	b.doc = b.app.AddComponent(b.win, access.RoleDocument, title, title)
	var nodes []*access.Component
	for _, p := range paragraphs {
		nodes = append(nodes, b.app.AddComponent(b.doc, access.RoleParagraph, "", p))
	}
	for _, l := range links {
		nodes = append(nodes, b.app.AddComponent(b.doc, access.RoleLink, l, l))
	}
	// On-demand regeneration: Firefox re-emits the accessible text as
	// the page finishes rendering.
	for _, n := range nodes {
		b.app.SetText(n, n.Text()+" .")
	}
	return nil
}

// Editor simulates a word processor: keystrokes grow a paragraph and
// touch a small screen region.
type Editor struct {
	ctx    *Ctx
	app    *access.Application
	para   *access.Component
	bounds display.Rect
	text   strings.Builder
	line   int
}

// NewEditor opens an editor occupying bounds.
func NewEditor(ctx *Ctx, name string, bounds display.Rect) *Editor {
	app := ctx.S.Registry().Register(name, "office")
	win := app.AddComponent(nil, access.RoleWindow, name+" - OpenOffice", "")
	para := app.AddComponent(win, access.RoleParagraph, "", "")
	return &Editor{ctx: ctx, app: app, para: para, bounds: bounds}
}

// App exposes the backing application.
func (e *Editor) App() *access.Application { return e.app }

// Type appends words: a few glyphs on screen plus a text-change event
// plus a keyboard-input note for the checkpoint policy.
func (e *Editor) Type(words string) error {
	e.text.WriteString(words)
	e.text.WriteByte(' ')
	lineY := e.bounds.Y + (e.line%(e.bounds.H/lineHeight))*lineHeight
	r, bits := lineBitmap(words, e.bounds.W/4)
	r.X, r.Y = e.bounds.X+e.ctx.Rng.Intn(e.bounds.W/2), lineY
	if err := e.ctx.S.Display().Submit(display.Bitmap(0, r, bits,
		display.RGB(0, 0, 0), display.RGB(255, 255, 255))); err != nil {
		return err
	}
	e.line++
	e.app.SetText(e.para, e.text.String())
	e.ctx.S.NoteKeyboardInput()
	return nil
}

// Select highlights text and presses the annotation key (§4.4 gesture).
func (e *Editor) Annotate(selected string) {
	e.app.SelectText(e.para, selected)
	e.app.PressAnnotationKey()
}

// VideoPlayer simulates a full-screen media player: one compressed
// frame command per frame at the movie's frame rate.
type VideoPlayer struct {
	ctx     *Ctx
	app     *access.Application
	bounds  display.Rect
	frameNo int
	base    []byte // one-time incompressible frame template
	// FrameBytes models the compressed frame size (~170 KB at DVD
	// bitrate yields the paper's ~4 MB/s display storage for video).
	FrameBytes int
}

// NewVideoPlayer opens a full-screen player.
func NewVideoPlayer(ctx *Ctx, bounds display.Rect) *VideoPlayer {
	app := ctx.S.Registry().Register("MPlayer", "media")
	app.AddComponent(nil, access.RoleWindow, "Life of David Gale - MPlayer", "")
	ctx.S.SetFullscreenVideo(true)
	v := &VideoPlayer{ctx: ctx, app: app, bounds: bounds, FrameBytes: 170 << 10}
	v.base = make([]byte, v.FrameBytes)
	ctx.Rng.Read(v.base)
	return v
}

// Frame emits one video frame. The payload reuses an incompressible
// template with a per-frame header so every frame is distinct without
// regenerating 170 KB of entropy 24 times a second.
func (v *VideoPlayer) Frame() error {
	v.frameNo++
	frame := make([]byte, v.FrameBytes)
	copy(frame, v.base)
	copy(frame, []byte(fmt.Sprintf("frame-%d", v.frameNo)))
	return v.ctx.S.Display().Submit(display.Video(0, v.bounds, frame))
}

// Stop leaves full-screen mode.
func (v *VideoPlayer) Stop() {
	v.ctx.S.SetFullscreenVideo(false)
}

var _ = simclock.Second
