package workload

// ScreenTrack (arXiv 2001.10898) reproduces the visual-history
// "time-machine" access pattern the related work names: the user works
// through several documents across applications, then scrubs back
// through a thumbnail timeline and re-opens earlier moments to retrieve
// what was on screen. The work phases give the record a sequence of
// visually distinct epochs (one per document); the browse phase then
// walks the session's own thumbnail strip and resolves a thumbnail per
// step — the exact repeated-seek pattern the demand-page block cache
// and keyframe LRU exist for.

import (
	"fmt"

	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

// screenTrackWorkSteps is the length of the document-producing phases;
// the remaining steps browse back through them.
const screenTrackWorkSteps = 36

// ScreenTrack builds the visual-history browsing scenario.
func ScreenTrack() *Scenario {
	return &Scenario{
		Name:         "screentrack",
		Description:  "work across documents, then time-machine browse back (ScreenTrack)",
		Steps:        48,
		StepInterval: simclock.Second,
		Setup: func(ctx *Ctx) error {
			w, h := ctx.S.Display().Size()
			ctx.edit = NewEditor(ctx, "notes.odt", display.NewRect(0, 0, w/2, h))
			ctx.brow = NewBrowser(ctx, display.NewRect(w/2, 0, w/2, h))
			ctx.term = NewTerminal(ctx, "xterm", display.NewRect(0, h/2, w/2, h/2))
			for _, n := range []string{"soffice", "firefox", "xterm"} {
				p, err := ctx.Proc(n)
				if err != nil {
					return err
				}
				if err := ctx.GrowHeap(p, 96, false); err != nil {
					return err
				}
			}
			return ctx.S.FS().MkdirAll("/home/user")
		},
		Step: func(ctx *Ctx, i int) error {
			switch {
			case i < 12: // document 1: writing notes in the editor
				ctx.S.Registry().SetFocus(ctx.edit.App())
				if err := ctx.edit.Type(fmt.Sprintf("meeting notes item %d decisions actions", i)); err != nil {
					return err
				}
				p, err := ctx.Proc("soffice")
				if err != nil {
					return err
				}
				return ctx.DirtyPages(p, 8, false)
			case i < 24: // document 2: reading reference pages
				ctx.S.Registry().SetFocus(ctx.brow.App())
				if i%3 == 0 {
					ctx.S.NotePointerInput()
					paras := []string{
						fmt.Sprintf("reference manual chapter %d configuration details", i),
						"screentrack visual history retrieval discussion",
					}
					if err := ctx.brow.LoadPage(fmt.Sprintf("manual ch%d", i-11), paras,
						[]string{"http://docs.example/next"}); err != nil {
						return err
					}
				}
				return nil
			case i < screenTrackWorkSteps: // document 3: a build log in the terminal
				ctx.S.Registry().SetFocus(ctx.term.App())
				for l := 0; l < 6; l++ {
					if err := ctx.term.WriteLine(fmt.Sprintf("  CC  module_%02d_%d.o", i, l)); err != nil {
						return err
					}
				}
				p, err := ctx.Proc("xterm")
				if err != nil {
					return err
				}
				return ctx.DirtyPages(p, 4, false)
			default:
				// Browse phase: render the thumbnail strip and open one
				// earlier moment per step, cycling through the work epochs.
				thumbs, err := ctx.S.BrowseTimeline(48, 48, 2)
				if err != nil {
					return err
				}
				if len(thumbs) == 0 {
					return fmt.Errorf("screentrack: empty thumbnail strip at step %d", i)
				}
				pick := thumbs[(i-screenTrackWorkSteps)*7%len(thumbs)]
				view, err := ctx.S.ResolveThumb(pick.Index)
				if err != nil {
					return err
				}
				if view.Screen == nil {
					return fmt.Errorf("screentrack: thumbnail %d resolved to no screen", pick.Index)
				}
				if !view.Range.Contains(view.At) && view.Range.Start != view.At {
					return fmt.Errorf("screentrack: thumbnail %d range %v excludes %v",
						pick.Index, view.Range, view.At)
				}
				return nil
			}
		},
	}
}

// Extended returns every scenario addressable by name: Table 1 plus the
// related-work families (ScreenTrack).
func Extended() []*Scenario {
	return append(All(), ScreenTrack())
}
