package workload

import (
	"testing"

	"dejaview/internal/core"
	"dejaview/internal/index"
	"dejaview/internal/policy"
	"dejaview/internal/simclock"
	"dejaview/internal/vexec"
)

// benchSession builds a session in the paper's application-benchmark
// configuration: checkpoint whenever the display changed, at most 1/s.
func benchSession() *core.Session {
	return core.NewSession(core.Config{
		Policy: policy.Config{
			MaxRate:            simclock.Second,
			TextRate:           simclock.Second,
			MinDisplayFraction: 1e-9,
		},
	})
}

func TestAllScenariosRun(t *testing.T) {
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if testing.Short() && (sc.Name == "desktop" || sc.Name == "octave") {
				t.Skip("long scenario")
			}
			s := benchSession()
			stats, err := Run(s, sc, 1)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Steps != sc.Steps {
				t.Errorf("ran %d steps, want %d", stats.Steps, sc.Steps)
			}
			if stats.VirtualDuration < sc.Duration() {
				t.Errorf("virtual duration %v < nominal %v", stats.VirtualDuration, sc.Duration())
			}
			if s.Recorder().Stats().Commands == 0 {
				t.Error("scenario generated no display output")
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("web"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("no-such"); err == nil {
		t.Error("unknown scenario accepted")
	}
	if len(All()) != 8 {
		t.Errorf("scenarios = %d, want Table 1's 8", len(All()))
	}
}

func TestWebScenarioProfile(t *testing.T) {
	s := benchSession()
	if _, err := Run(s, Web(), 2); err != nil {
		t.Fatal(err)
	}
	// Indexing load: the browser's on-demand accessibility regeneration
	// must produce many sink updates.
	if st := s.Index().Stats(); st.Occurrences < 500 {
		t.Errorf("web produced only %d occurrences; regeneration profile wrong", st.Occurrences)
	}
	// Heap growth over the run (revive driver).
	var firefox *vexec.Process
	for _, p := range s.Container().Processes() {
		if p.Name() == "firefox" {
			firefox = p
		}
	}
	if firefox == nil {
		t.Fatal("no firefox process")
	}
	if firefox.Mem().Stats().Mapped < 1000*4096 {
		t.Errorf("firefox heap = %d bytes; expected growth", firefox.Mem().Stats().Mapped)
	}
	// Page text is searchable.
	res, err := s.Search(index.Query{All: []string{"lorem"}, App: "Firefox"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Error("web page text not searchable")
	}
}

func TestVideoScenarioProfile(t *testing.T) {
	s := benchSession()
	if _, err := Run(s, Video(), 3); err != nil {
		t.Fatal(err)
	}
	rec := s.Recorder().Stats()
	// One command per frame: 240 frames, modest command count.
	if rec.Commands < 200 || rec.Commands > 400 {
		t.Errorf("video commands = %d, want ~240 (one per frame)", rec.Commands)
	}
	// Display storage dominates checkpoint storage for video.
	ck := s.Checkpointer().Stats()
	if rec.CommandBytes < ck.TotalBytes {
		t.Errorf("video display bytes (%d) should dominate checkpoint bytes (%d)",
			rec.CommandBytes, ck.TotalBytes)
	}
}

func TestUntarScenarioProfile(t *testing.T) {
	s := benchSession()
	if _, err := Run(s, Untar(), 4); err != nil {
		t.Fatal(err)
	}
	fsStats := s.FS().Stats()
	// FS log growth dominates for untar.
	if fsStats.LogBytes < s.Recorder().Stats().CommandBytes {
		t.Errorf("untar FS bytes (%d) should dominate display bytes (%d)",
			fsStats.LogBytes, s.Recorder().Stats().CommandBytes)
	}
	// The tree exists.
	names, err := s.FS().ReadDir("/usr/src/linux")
	if err != nil || len(names) < 20 {
		t.Errorf("untar created %d dirs, %v", len(names), err)
	}
}

func TestOctaveScenarioProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	s := benchSession()
	if _, err := Run(s, Octave(), 5); err != nil {
		t.Fatal(err)
	}
	ck := s.Checkpointer().Stats()
	// Process state dominates, and compresses well.
	if ck.TotalBytes < s.Recorder().Stats().CommandBytes {
		t.Error("octave checkpoint bytes should dominate display bytes")
	}
	if ck.CompressedBytes*2 > ck.TotalBytes {
		t.Errorf("octave compressed %d vs raw %d: expected good compression",
			ck.CompressedBytes, ck.TotalBytes)
	}
}

func TestDesktopScenarioPolicySkips(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	s := core.NewSession(core.Config{}) // default paper policy
	if _, err := Run(s, Desktop(), 6); err != nil {
		t.Fatal(err)
	}
	st := s.Policy().Stats()
	takes, skips := st.Takes(), st.Skips()
	if takes == 0 || skips == 0 {
		t.Fatalf("takes=%d skips=%d", takes, skips)
	}
	// The paper: checkpoints taken only ~20% of the time.
	frac := float64(takes) / float64(takes+skips)
	if frac > 0.5 {
		t.Errorf("policy took %.0f%% of opportunities; expected a minority", frac*100)
	}
	// All three skip families occur.
	if st.Counts[policy.SkipNoActivity] == 0 {
		t.Error("no-activity skips missing")
	}
	if st.Counts[policy.SkipTextRate] == 0 {
		t.Error("text-rate skips missing")
	}
	if st.Counts[policy.SkipFullscreen] == 0 {
		t.Error("fullscreen skips missing")
	}
	// Desktop text is searchable with context.
	res, err := s.Search(index.Query{All: []string{"analysis"}, App: "report.odt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Error("typed report text not searchable by app")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	run := func() (uint64, int64) {
		s := benchSession()
		if _, err := Run(s, Cat(), 42); err != nil {
			t.Fatal(err)
		}
		return s.Recorder().Stats().Commands, s.Recorder().Stats().CommandBytes
	}
	c1, b1 := run()
	c2, b2 := run()
	if c1 != c2 || b1 != b2 {
		t.Errorf("same seed diverged: %d/%d vs %d/%d", c1, b1, c2, b2)
	}
}
