// Package workload implements synthetic versions of the paper's Table 1
// application scenarios. Each scenario drives a core.Session with the
// display, text, memory, and file-system intensity profile of its
// real-world counterpart, so the evaluation harness can reproduce the
// shape of the paper's results without Firefox, MPlayer, or a kernel
// build.
package workload

import (
	"fmt"
	"math/rand"

	"dejaview/internal/core"
	"dejaview/internal/simclock"
	"dejaview/internal/vexec"
)

// Scenario is one benchmark workload.
type Scenario struct {
	// Name matches Table 1 (web, video, untar, gzip, make, octave,
	// cat, desktop).
	Name string
	// Description matches Table 1's description column.
	Description string
	// Steps is the number of workload steps.
	Steps int
	// StepInterval is the virtual time per step.
	StepInterval simclock.Time
	// Setup prepares the session (spawn processes, create files).
	Setup func(ctx *Ctx) error
	// Step performs one unit of work.
	Step func(ctx *Ctx, i int) error
}

// Duration reports the scenario's nominal virtual run time.
func (sc *Scenario) Duration() simclock.Time {
	return simclock.Time(sc.Steps) * sc.StepInterval
}

// Ctx carries per-run state for a scenario.
type Ctx struct {
	S   *core.Session
	Rng *rand.Rand

	procs map[string]*vexec.Process
	term  *Terminal
	brow  *Browser
	edit  *Editor
	vp    *VideoPlayer
}

// Proc returns (spawning on first use) a named process in the session.
func (ctx *Ctx) Proc(name string) (*vexec.Process, error) {
	if p, ok := ctx.procs[name]; ok {
		return p, nil
	}
	p, err := ctx.S.Container().Spawn(0, name)
	if err != nil {
		return nil, err
	}
	ctx.procs[name] = p
	return p, nil
}

// DirtyPages writes n pages of content into a process's working memory,
// growing the mapping as needed. fill selects the content entropy:
// compressible text-like data versus incompressible random data, which
// drives the compressed-checkpoint results of Figure 4.
func (ctx *Ctx) DirtyPages(p *vexec.Process, n int, random bool) error {
	const region = 1 << 24 // 16 MiB working set per process
	as := p.Mem()
	if as.Stats().Mapped < region {
		if _, err := as.Mmap(region, vexec.PermRead|vexec.PermWrite); err != nil {
			return err
		}
	}
	regs := as.Regions()
	r := regs[len(regs)-1]
	buf := make([]byte, vexec.PageSize)
	for i := 0; i < n; i++ {
		if random {
			ctx.Rng.Read(buf)
		} else {
			fillText(buf, ctx.Rng)
		}
		pageIdx := uint64(ctx.Rng.Intn(int(r.Length() / vexec.PageSize)))
		if err := as.Write(r.Start()+pageIdx*vexec.PageSize, buf); err != nil {
			return err
		}
	}
	return nil
}

// GrowHeap permanently grows a process's memory by n pages of content —
// the Firefox-style growth that drives Figure 7's rising revive times.
func (ctx *Ctx) GrowHeap(p *vexec.Process, n int, random bool) error {
	addr, err := p.Mem().Mmap(uint64(n)*vexec.PageSize, vexec.PermRead|vexec.PermWrite)
	if err != nil {
		return err
	}
	buf := make([]byte, vexec.PageSize)
	for i := 0; i < n; i++ {
		if random {
			ctx.Rng.Read(buf)
		} else {
			fillText(buf, ctx.Rng)
		}
		if err := p.Mem().Write(addr+uint64(i)*vexec.PageSize, buf); err != nil {
			return err
		}
	}
	return nil
}

// fillText fills buf with compressible text-like bytes.
func fillText(buf []byte, rng *rand.Rand) {
	words := []string{"the ", "checkpoint ", "display ", "record ", "desktop ", "a ", "of "}
	i := 0
	for i < len(buf) {
		w := words[rng.Intn(len(words))]
		n := copy(buf[i:], w)
		i += n
	}
}

// RunStats summarizes one scenario run.
type RunStats struct {
	Scenario string
	// VirtualDuration is the simulated run time (including checkpoint
	// downtime the clock absorbed).
	VirtualDuration simclock.Time
	// Steps actually executed.
	Steps int
	// Checkpoints taken.
	Checkpoints uint64
}

// setupBaseline spawns the desktop environment every scenario runs
// inside: the virtual display server, window manager, and panel. Their
// working sets are part of every checkpoint, matching the paper's runs
// "in a full desktop environment".
func setupBaseline(ctx *Ctx) error {
	xs, err := ctx.Proc("Xserver")
	if err != nil {
		return err
	}
	ctx.S.Container().SpawnThreads(xs, 1)
	if err := ctx.GrowHeap(xs, 768, false); err != nil {
		return err
	}
	wm, err := ctx.Proc("window-manager")
	if err != nil {
		return err
	}
	if err := ctx.GrowHeap(wm, 96, false); err != nil {
		return err
	}
	panel, err := ctx.Proc("gnome-panel")
	if err != nil {
		return err
	}
	return ctx.GrowHeap(panel, 128, false)
}

// baselineTick models the desktop environment's steady per-second memory
// churn (the display server composites, the panel clock ticks).
func (ctx *Ctx) baselineTick() error {
	xs, err := ctx.Proc("Xserver")
	if err != nil {
		return err
	}
	if err := ctx.DirtyPages(xs, 48, false); err != nil {
		return err
	}
	panel, err := ctx.Proc("gnome-panel")
	if err != nil {
		return err
	}
	return ctx.DirtyPages(panel, 4, false)
}

// Run executes a scenario against a session, ticking the session once
// per step and advancing the virtual clock by the step interval.
func Run(s *core.Session, sc *Scenario, seed int64) (RunStats, error) {
	ctx := &Ctx{
		S:     s,
		Rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[string]*vexec.Process),
	}
	if err := setupBaseline(ctx); err != nil {
		return RunStats{}, fmt.Errorf("workload %s: baseline: %w", sc.Name, err)
	}
	if sc.Setup != nil {
		if err := sc.Setup(ctx); err != nil {
			return RunStats{}, fmt.Errorf("workload %s: setup: %w", sc.Name, err)
		}
	}
	start := s.Clock().Now()
	var lastBaseline simclock.Time
	for i := 0; i < sc.Steps; i++ {
		if err := sc.Step(ctx, i); err != nil {
			return RunStats{}, fmt.Errorf("workload %s: step %d: %w", sc.Name, i, err)
		}
		if now := s.Clock().Now(); now-lastBaseline >= simclock.Second {
			lastBaseline = now
			if err := ctx.baselineTick(); err != nil {
				return RunStats{}, fmt.Errorf("workload %s: baseline tick: %w", sc.Name, err)
			}
		}
		if _, _, err := s.Tick(); err != nil {
			return RunStats{}, fmt.Errorf("workload %s: tick %d: %w", sc.Name, i, err)
		}
		s.Clock().Advance(sc.StepInterval)
	}
	s.Recorder().Flush()
	return RunStats{
		Scenario:        sc.Name,
		VirtualDuration: s.Clock().Now() - start,
		Steps:           sc.Steps,
		Checkpoints:     s.Checkpointer().Stats().Checkpoints,
	}, nil
}
