package workload

import (
	"testing"

	"dejaview/internal/obs"
)

// TestScreenTrackRuns: the browse phase really exercises the visual
// history — every post-work step renders a timeline and resolves one
// thumbnail, visible on the core.browse_* counters.
func TestScreenTrackRuns(t *testing.T) {
	sc := ScreenTrack()
	base := obs.Default.Snapshot()
	s := benchSession()
	stats, err := Run(s, sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != sc.Steps {
		t.Errorf("ran %d steps, want %d", stats.Steps, sc.Steps)
	}
	if s.Recorder().Stats().Commands == 0 {
		t.Error("scenario generated no display output")
	}
	d := obs.Default.Snapshot().Delta(base)
	browseSteps := uint64(sc.Steps - screenTrackWorkSteps)
	if got := d.Counters["core.browse_timelines"]; got < browseSteps {
		t.Errorf("core.browse_timelines = %d, want >= %d", got, browseSteps)
	}
	if got := d.Counters["core.browse_resolves"]; got < browseSteps {
		t.Errorf("core.browse_resolves = %d, want >= %d", got, browseSteps)
	}
	if got := d.Counters["playback.thumbnails_rendered"]; got == 0 {
		t.Error("no thumbnails rendered")
	}
}

// TestExtendedByName: the related-work scenarios resolve by name without
// joining Table 1's fixed set.
func TestExtendedByName(t *testing.T) {
	sc, err := ByName("screentrack")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Steps <= screenTrackWorkSteps {
		t.Errorf("screentrack has no browse phase: %d steps", sc.Steps)
	}
	if len(Extended()) != len(All())+1 {
		t.Errorf("Extended() = %d scenarios, want %d", len(Extended()), len(All())+1)
	}
}
