package workload

import (
	"fmt"

	"dejaview/internal/display"
	"dejaview/internal/simclock"
	"dejaview/internal/vexec"
)

// The Table 1 application scenarios. Step counts are scaled down from
// the paper's runs to keep the harness fast; rates (per virtual second)
// follow each application's profile.

// Web reproduces "Firefox running the iBench web browsing benchmark to
// download 54 web pages" in rapid-fire succession: large display
// repaints, on-demand accessibility regeneration (the indexing-overhead
// driver), and fast heap growth (the revive-latency driver).
func Web() *Scenario {
	return &Scenario{
		Name:         "web",
		Description:  "Firefox downloading 54 web pages (iBench)",
		Steps:        54,
		StepInterval: 500 * simclock.Millisecond,
		Setup: func(ctx *Ctx) error {
			w, h := ctx.S.Display().Size()
			ctx.brow = NewBrowser(ctx, display.NewRect(0, 0, w, h))
			ctx.S.Registry().SetFocus(ctx.brow.App())
			p, err := ctx.Proc("firefox")
			if err != nil {
				return err
			}
			ctx.S.Container().SpawnThreads(p, 7)
			// Initial heap.
			return ctx.GrowHeap(p, 256, false)
		},
		Step: func(ctx *Ctx, i int) error {
			p, err := ctx.Proc("firefox")
			if err != nil {
				return err
			}
			if _, err := ctx.S.Container().Connect(p, vexec.ProtoTCP,
				"10.0.0.2:40000", fmt.Sprintf("192.0.2.%d:80", i%250+1)); err != nil {
				return err
			}
			paragraphs := make([]string, 36)
			for j := range paragraphs {
				paragraphs[j] = fmt.Sprintf("page %d paragraph %d lorem ipsum research "+
					"benchmark download content section heading article body text "+
					"navigation sidebar footer copyright terms archive index", i, j)
			}
			links := make([]string, 16)
			for j := range links {
				links[j] = fmt.Sprintf("http://ibench.example/page%d/link%d", i, j)
			}
			if err := ctx.brow.LoadPage(fmt.Sprintf("iBench page %d", i), paragraphs, links); err != nil {
				return err
			}
			// Firefox's heap grows by more than 2x over the benchmark,
			// and layout/JS churn rewrites a sizeable working set per
			// page — which is why web storage is checkpoint-dominated.
			if err := ctx.GrowHeap(p, 32, false); err != nil {
				return err
			}
			return ctx.DirtyPages(p, 400, false)
		},
	}
}

// Video reproduces "MPlayer playing a MPEG2 movie trailer at full-screen
// resolution": one compressed frame command per frame, a single process,
// little new state.
func Video() *Scenario {
	const fps = 24
	return &Scenario{
		Name:         "video",
		Description:  "MPlayer full-screen MPEG2 movie playback",
		Steps:        10 * fps, // 10 seconds of footage
		StepInterval: simclock.Second / fps,
		Setup: func(ctx *Ctx) error {
			w, h := ctx.S.Display().Size()
			vp := NewVideoPlayer(ctx, display.NewRect(0, 0, w, h))
			ctx.vp = vp
			p, err := ctx.Proc("mplayer")
			if err != nil {
				return err
			}
			return ctx.GrowHeap(p, 128, true) // decoder buffers
		},
		Step: func(ctx *Ctx, i int) error {
			if err := ctx.vp.Frame(); err != nil {
				return err
			}
			p, err := ctx.Proc("mplayer")
			if err != nil {
				return err
			}
			// Decode buffers churn in place: a handful of pages/frame.
			return ctx.DirtyPages(p, 2, true)
		},
	}
}

// Untar reproduces "verbose untar of the Linux kernel source tree":
// file-system-intensive small-file creation with scrolling output.
func Untar() *Scenario {
	return &Scenario{
		Name:         "untar",
		Description:  "verbose untar of a kernel source tree",
		Steps:        30,
		StepInterval: simclock.Second,
		Setup: func(ctx *Ctx) error {
			w, h := ctx.S.Display().Size()
			ctx.term = NewTerminal(ctx, "untar", display.NewRect(0, 0, w, h))
			ctx.S.Registry().SetFocus(ctx.term.App())
			if _, err := ctx.Proc("tar"); err != nil {
				return err
			}
			return ctx.S.FS().MkdirAll("/usr/src/linux")
		},
		Step: func(ctx *Ctx, i int) error {
			p, err := ctx.Proc("tar")
			if err != nil {
				return err
			}
			dir := fmt.Sprintf("/usr/src/linux/dir%03d", i)
			if err := ctx.S.FS().MkdirAll(dir); err != nil {
				return err
			}
			// ~40 small files per second: lots of creation metadata,
			// which is what makes untar's FS log growth dominant.
			for f := 0; f < 40; f++ {
				size := 2048 + ctx.Rng.Intn(12*1024)
				data := make([]byte, size)
				fillText(data, ctx.Rng)
				path := fmt.Sprintf("%s/file%03d.c", dir, f)
				if err := ctx.S.FS().WriteFile(path, data); err != nil {
					return err
				}
				if f%4 == 0 {
					if err := ctx.term.WriteLine("linux/" + path[len("/usr/src/linux/"):]); err != nil {
						return err
					}
				}
			}
			// tar blocks in disk I/O now and then.
			if i%7 == 3 {
				p.EnterUninterruptible(ctx.S.Clock().Now() + 20*simclock.Millisecond)
			}
			return ctx.DirtyPages(p, 8, false)
		},
	}
}

// Gzip reproduces "compress a 1.8 GB Apache access log file":
// compute-bound with little display output.
func Gzip() *Scenario {
	return &Scenario{
		Name:         "gzip",
		Description:  "compress a large Apache access log",
		Steps:        30,
		StepInterval: simclock.Second,
		Setup: func(ctx *Ctx) error {
			w, h := ctx.S.Display().Size()
			ctx.term = NewTerminal(ctx, "gzip", display.NewRect(0, h-8*lineHeight, w/2, 8*lineHeight))
			ctx.S.Registry().SetFocus(ctx.term.App())
			if _, err := ctx.Proc("gzip"); err != nil {
				return err
			}
			if err := ctx.S.FS().MkdirAll("/var/log"); err != nil {
				return err
			}
			// The input log, written in chunks (scaled down).
			chunk := make([]byte, 256*1024)
			for c := 0; c < 16; c++ {
				fillText(chunk, ctx.Rng)
				if err := ctx.S.FS().WriteAt("/var/log/access.log",
					int64(c)*int64(len(chunk)), chunk); err != nil {
					return err
				}
			}
			ctx.S.FS().Sync()
			return nil
		},
		Step: func(ctx *Ctx, i int) error {
			p, err := ctx.Proc("gzip")
			if err != nil {
				return err
			}
			// Read a chunk, compress (incompressible output), append.
			if _, err := ctx.S.FS().ReadFile("/var/log/access.log"); err != nil {
				return err
			}
			out := make([]byte, 40*1024)
			ctx.Rng.Read(out)
			if err := ctx.S.FS().WriteAt("/var/log/access.log.gz",
				int64(i)*int64(len(out)), out); err != nil {
				return err
			}
			// Compression tables churn in place; a progress line keeps
			// the display minimally alive.
			if err := ctx.DirtyPages(p, 96, true); err != nil {
				return err
			}
			return ctx.term.WriteLine(fmt.Sprintf("access.log: %2d%%", (i+1)*100/30))
		},
	}
}

// Make reproduces "build the Linux kernel": process churn (one compiler
// per file), object-file writes, scrolling output — the scenario with the
// largest checkpoint overhead in the paper.
func Make() *Scenario {
	return &Scenario{
		Name:         "make",
		Description:  "build the Linux kernel",
		Steps:        40,
		StepInterval: simclock.Second,
		Setup: func(ctx *Ctx) error {
			w, h := ctx.S.Display().Size()
			ctx.term = NewTerminal(ctx, "make", display.NewRect(0, 0, w, h))
			ctx.S.Registry().SetFocus(ctx.term.App())
			if _, err := ctx.Proc("make"); err != nil {
				return err
			}
			return ctx.S.FS().MkdirAll("/usr/src/linux/obj")
		},
		Step: func(ctx *Ctx, i int) error {
			mk, err := ctx.Proc("make")
			if err != nil {
				return err
			}
			// Spawn two compiler processes, let them work, reap them.
			for c := 0; c < 2; c++ {
				cc, err := ctx.S.Container().Spawn(mk.PID(), fmt.Sprintf("cc-%d-%d", i, c))
				if err != nil {
					return err
				}
				if err := ctx.GrowHeap(cc, 220, false); err != nil {
					return err
				}
				obj := make([]byte, 48*1024)
				ctx.Rng.Read(obj)
				path := fmt.Sprintf("/usr/src/linux/obj/unit%03d_%d.o", i, c)
				if err := ctx.S.FS().WriteFile(path, obj); err != nil {
					return err
				}
				if err := ctx.term.WriteLine("  CC      " + path); err != nil {
					return err
				}
				cc.Exit(0)
			}
			return ctx.DirtyPages(mk, 48, false)
		},
	}
}

// Octave reproduces "Octave running the Octave 2 numerical benchmark":
// compute-bound with heavy in-place memory churn — the largest
// uncompressed checkpoint growth in the paper, shrinking ~5x compressed.
func Octave() *Scenario {
	return &Scenario{
		Name:         "octave",
		Description:  "Octave 2 numerical benchmark",
		Steps:        30,
		StepInterval: simclock.Second,
		Setup: func(ctx *Ctx) error {
			w, h := ctx.S.Display().Size()
			ctx.term = NewTerminal(ctx, "octave", display.NewRect(0, h-8*lineHeight, w/2, 8*lineHeight))
			ctx.S.Registry().SetFocus(ctx.term.App())
			p, err := ctx.Proc("octave")
			if err != nil {
				return err
			}
			return ctx.GrowHeap(p, 1024, false) // matrices
		},
		Step: func(ctx *Ctx, i int) error {
			p, err := ctx.Proc("octave")
			if err != nil {
				return err
			}
			// Matrix kernels rewrite most of the working set each
			// second; numeric data compresses moderately (text fill).
			if err := ctx.DirtyPages(p, 2400, false); err != nil {
				return err
			}
			return ctx.term.WriteLine(fmt.Sprintf("octave:%d> bench step %d done", i+1, i))
		},
	}
}

// Cat reproduces "cat a 17 MB system log file": the fastest display
// churn of the scenarios — pure scrolling text.
func Cat() *Scenario {
	return &Scenario{
		Name:         "cat",
		Description:  "cat a 17 MB system log file",
		Steps:        10,
		StepInterval: simclock.Second,
		Setup: func(ctx *Ctx) error {
			w, h := ctx.S.Display().Size()
			ctx.term = NewTerminal(ctx, "cat", display.NewRect(0, 0, w, h))
			ctx.S.Registry().SetFocus(ctx.term.App())
			_, err := ctx.Proc("cat")
			return err
		},
		Step: func(ctx *Ctx, i int) error {
			for l := 0; l < 80; l++ {
				line := fmt.Sprintf("kern.log %05d: device event irq=%d status=%x",
					i*80+l, ctx.Rng.Intn(32), ctx.Rng.Uint32())
				if err := ctx.term.WriteLine(line); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// Desktop reproduces the real-usage trace: a mixed session with typing,
// browsing, idle think time, full-screen video, and a screensaver period,
// long enough for the checkpoint policy to matter.
func Desktop() *Scenario {
	return &Scenario{
		Name:         "desktop",
		Description:  "mixed real desktop usage (policy active)",
		Steps:        600, // ten minutes
		StepInterval: simclock.Second,
		Setup: func(ctx *Ctx) error {
			w, h := ctx.S.Display().Size()
			ctx.brow = NewBrowser(ctx, display.NewRect(0, 0, w/2, h))
			ctx.edit = NewEditor(ctx, "report.odt", display.NewRect(w/2, 0, w/2, h))
			ctx.term = NewTerminal(ctx, "xterm", display.NewRect(0, h/2, w/2, h/2))
			for _, n := range []string{"firefox", "soffice", "xterm", "gaim"} {
				p, err := ctx.Proc(n)
				if err != nil {
					return err
				}
				if err := ctx.GrowHeap(p, 192, false); err != nil {
					return err
				}
			}
			return ctx.S.FS().MkdirAll("/home/user")
		},
		Step: func(ctx *Ctx, i int) error {
			// The panel clock repaints most seconds: a trivial display
			// update well under the 5% policy threshold, the signal
			// behind the paper's dominant low-activity skips. The
			// remaining seconds have no display change at all.
			if i%3 != 2 {
				if err := ctx.S.Display().Submit(display.SolidFill(0,
					display.NewRect(960, 0, 60, 16),
					display.Pixel(0xFF000000|uint32(i)))); err != nil {
					return err
				}
			}
			phase := i % 120
			switch {
			case phase < 40: // writing the report: typing bursts
				if i%3 != 0 {
					ctx.S.Registry().SetFocus(ctx.edit.App())
					if err := ctx.edit.Type(fmt.Sprintf("section %d words and analysis", i)); err != nil {
						return err
					}
					p, err := ctx.Proc("soffice")
					if err != nil {
						return err
					}
					if err := ctx.DirtyPages(p, 6, false); err != nil {
						return err
					}
				}
				if phase == 39 {
					doc := []byte(fmt.Sprintf("report draft as of step %d", i))
					return ctx.S.FS().WriteFile("/home/user/report.odt", doc)
				}
			case phase < 85: // browsing with think time
				if phase%10 == 0 {
					ctx.S.Registry().SetFocus(ctx.brow.App())
					ctx.S.NotePointerInput()
					paras := []string{
						fmt.Sprintf("news article %d body text about systems research", i),
						"dejaview desktop recorder paper discussion thread",
					}
					if err := ctx.brow.LoadPage(fmt.Sprintf("news %d", i), paras,
						[]string{"http://example.org/next"}); err != nil {
						return err
					}
					p, err := ctx.Proc("firefox")
					if err != nil {
						return err
					}
					if err := ctx.GrowHeap(p, 8, false); err != nil {
						return err
					}
				}
				// Otherwise: reading — only the clock ticks.
				if phase%10 == 5 {
					return ctx.term.WriteLine("gaim: buddy message received")
				}
			case phase < 105: // idle, screensaver kicks in
				ctx.S.SetScreensaver(true)
				if phase == 104 {
					ctx.S.SetScreensaver(false)
				}
			default: // watching a video clip
				if ctx.vp == nil {
					w, h := ctx.S.Display().Size()
					ctx.vp = NewVideoPlayer(ctx, display.NewRect(0, 0, w, h))
				}
				ctx.S.SetFullscreenVideo(true)
				for f := 0; f < 24; f++ {
					if err := ctx.vp.Frame(); err != nil {
						return err
					}
				}
				if phase == 119 {
					ctx.S.SetFullscreenVideo(false)
				}
			}
			return nil
		},
	}
}

// All returns every Table 1 scenario in the paper's order.
func All() []*Scenario {
	return []*Scenario{Web(), Video(), Untar(), Gzip(), Make(), Octave(), Cat(), Desktop()}
}

// ByName looks a scenario up, searching Table 1 and the extended
// families (screentrack).
func ByName(name string) (*Scenario, error) {
	for _, sc := range Extended() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown scenario %q", name)
}
