package remote

import (
	"net"
	"sync"
	"time"

	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/index"
	"dejaview/internal/obs"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

// Registry instruments for the daemon. The bumping sites are the frame
// writer (every frame), the request dispatcher (per-RPC latency), and the
// live fan-out (queue occupancy, drops, evictions). A Server's Stats()
// subtracts the baseline captured when it started serving, so the
// per-daemon view stays correct against the process-global registry as
// long as servers run one at a time (the bench and test usage).
var (
	obsClientsTotal = obs.Default.Counter("remote.clients_total")
	obsEvictions    = obs.Default.Counter("remote.evictions")
	obsFramesSent   = obs.Default.Counter("remote.frames_sent")
	obsBytesSent    = obs.Default.Counter("remote.bytes_sent")
	obsLiveDropped  = obs.Default.Counter("remote.live_dropped")
	obsSearches     = obs.Default.Counter("remote.searches")
	obsPlaybacks    = obs.Default.Counter("remote.playbacks")
	obsInputEvents  = obs.Default.Counter("remote.input_events")
	obsRPCMS        = obs.Default.Histogram("remote.rpc_ms", obs.LatencyBuckets...)
	obsSendQDepth   = obs.Default.Histogram("remote.sendq_depth", obs.DepthBuckets...)
)

// Options configure a daemon. At least one of Session or Archive must be
// set.
type Options struct {
	// Session is the live desktop session to serve: live viewing, input,
	// search over its index, playback over its record.
	Session *core.Session
	// Archive is a reopened archive to serve: search and playback only.
	Archive *core.Archive
	// SendQueue bounds each client's send queue, in frames (default
	// 256). A live viewer that falls this many frames behind the
	// writer's drain rate is evicted.
	SendQueue int
	// DrainTimeout bounds graceful shutdown: after Close stops accepting
	// and notifies clients, connections have this long to drain their
	// queues before being force-closed (default 5s).
	DrainTimeout time.Duration
	// HandshakeTimeout bounds how long an accepted connection may take
	// to send its hello (default 10s).
	HandshakeTimeout time.Duration
}

func (o *Options) fillDefaults() {
	if o.SendQueue == 0 {
		o.SendQueue = 256
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
}

// Server is the DejaView network access daemon. It accepts viewer
// connections on a listener and serves live viewing, search, and
// playback concurrently. All exported methods are safe for concurrent
// use.
type Server struct {
	opts Options
	ln   net.Listener

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool
	nextID uint64

	wg sync.WaitGroup

	// base holds the registry counter values when this server started, so
	// Stats() reports only activity attributable to it.
	base Stats

	// enc is the per-flush shared command-encode cache: every live sink
	// is invoked under the display server's update lock, so one encode
	// serves every attached client of a flush. Guarded by that lock, not
	// by s.mu.
	enc struct {
		seq  uint64
		last *display.Command
		buf  []byte
	}
}

// Serve starts a daemon on ln and returns immediately; the returned
// Server owns the listener. Callers terminate it with Close.
func Serve(ln net.Listener, opts Options) *Server {
	opts.fillDefaults()
	s := &Server{
		opts:  opts,
		ln:    ln,
		conns: map[*conn]struct{}{},
		base:  statsNow(),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// statsNow reads the registry-backed aggregate counters.
func statsNow() Stats {
	return Stats{
		TotalClients: obsClientsTotal.Value(),
		Evicted:      obsEvictions.Value(),
		FramesSent:   obsFramesSent.Value(),
		BytesSent:    obsBytesSent.Value(),
		LiveDropped:  obsLiveDropped.Value(),
		Searches:     obsSearches.Value(),
		Playbacks:    obsPlaybacks.Value(),
		InputEvents:  obsInputEvents.Value(),
	}
}

// Addr reports the listener address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.nextID++
		c := newConn(s, nc, s.nextID)
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		obsClientsTotal.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.run()
			s.remove(c)
		}()
	}
}

func (s *Server) remove(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Close shuts the daemon down gracefully: it stops accepting, sends every
// client a shutdown notice, lets connections drain their bounded queues
// for up to DrainTimeout, then force-closes whatever remains. It is
// idempotent and never blocks longer than roughly the drain deadline.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.ln.Close()
	for _, c := range conns {
		c.shutdown(NoticeShutdown, "server shutting down")
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	//lint:ignore wallclock the drain grace period times out real client sockets, not virtual time
	case <-time.After(s.opts.DrainTimeout):
		s.mu.Lock()
		remaining := make([]*conn, 0, len(s.conns))
		for c := range s.conns {
			remaining = append(remaining, c)
		}
		s.mu.Unlock()
		for _, c := range remaining {
			c.forceClose()
		}
		<-done
	}
	return nil
}

// Stats returns the aggregate counters attributable to this server:
// the registry-backed instruments minus the baseline captured at Serve.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := uint64(len(s.conns))
	s.mu.Unlock()
	now := statsNow()
	return Stats{
		ActiveClients: active,
		TotalClients:  now.TotalClients - s.base.TotalClients,
		Evicted:       now.Evicted - s.base.Evicted,
		FramesSent:    now.FramesSent - s.base.FramesSent,
		BytesSent:     now.BytesSent - s.base.BytesSent,
		LiveDropped:   now.LiveDropped - s.base.LiveDropped,
		Searches:      now.Searches - s.base.Searches,
		Playbacks:     now.Playbacks - s.base.Playbacks,
		InputEvents:   now.InputEvents - s.base.InputEvents,
	}
}

// StatsSnapshot returns the full process-wide registry snapshot — the
// body of the StatsSnapshot RPC.
func (s *Server) StatsSnapshot() obs.Snapshot {
	return obs.Default.Snapshot()
}

// ClientStats snapshots every connected client's counters.
func (s *Server) ClientStats() []ClientStats {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	out := make([]ClientStats, 0, len(conns))
	for _, c := range conns {
		out = append(out, c.snapshotStats())
	}
	return out
}

// encodeShared encodes one display command once per flush dispatch,
// shared across every attached live sink. It is only called under the
// display server's update lock (from Sink.HandleCommand), which is what
// makes the unsynchronized cache safe. The (pointer, seq) pair guards
// against a recycled command allocation.
func (s *Server) encodeShared(c *display.Command) []byte {
	if s.enc.last == c && s.enc.seq == c.Seq {
		return s.enc.buf
	}
	buf, err := display.EncodeCommand(nil, c)
	if err != nil {
		return nil // undeliverable command: drop rather than stall the flush
	}
	s.enc.last, s.enc.seq, s.enc.buf = c, c.Seq, buf
	return buf
}

// helloFor builds the server hello from whichever source the daemon
// serves; a live session wins when both are present.
func (s *Server) helloFor() serverHello {
	h := serverHello{Version: Version}
	if s.opts.Session != nil {
		h.Flags |= flagHasSession
		w, hh := s.opts.Session.Display().Size()
		h.Width, h.Height = uint32(w), uint32(hh)
		h.Now = s.opts.Session.Clock().Now()
	}
	if s.opts.Archive != nil {
		h.Flags |= flagHasArchive
		if s.opts.Session == nil {
			h.Width = uint32(s.opts.Archive.Width)
			h.Height = uint32(s.opts.Archive.Height)
			h.Now = s.opts.Archive.End
		}
	}
	return h
}

// storeFor resolves a request source to its display record.
func (s *Server) storeFor(src Source) (*record.Store, error) {
	switch src {
	case SourceSession:
		if s.opts.Session == nil {
			return nil, errNoSession
		}
		// Flush so the stream covers everything recorded up to now.
		s.opts.Session.Recorder().Flush()
		return s.opts.Session.Recorder().Store(), nil
	case SourceArchive:
		if s.opts.Archive == nil {
			return nil, errNoArchive
		}
		return s.opts.Archive.Store, nil
	}
	return nil, protoErrf("source %d", src)
}

// searchFor resolves a request source to its index search handle.
func (s *Server) searchFor(src Source) (func(q index.Query) ([]index.Result, error), error) {
	switch src {
	case SourceSession:
		if s.opts.Session == nil {
			return nil, errNoSession
		}
		return s.opts.Session.SearchIndex, nil
	case SourceArchive:
		if s.opts.Archive == nil {
			return nil, errNoArchive
		}
		return s.opts.Archive.SearchIndex, nil
	}
	return nil, protoErrf("source %d", src)
}

// now reports the serving clock, for playback end-of-window defaults.
func (s *Server) now() simclock.Time {
	if s.opts.Session != nil {
		return s.opts.Session.Clock().Now()
	}
	if s.opts.Archive != nil {
		return s.opts.Archive.End
	}
	return 0
}
