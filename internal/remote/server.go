package remote

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dejaview/internal/core"
	"dejaview/internal/obs"
)

// Registry instruments for the daemon. The bumping sites are the frame
// writer (every frame), the request dispatcher (per-RPC latency), and the
// live fan-out (queue occupancy, drops, evictions). A Server's Stats()
// subtracts the baseline captured when it started serving, so the
// per-daemon view stays correct against the process-global registry as
// long as servers run one at a time (the bench and test usage).
// Fleet-wide admission instruments live in manager.go; per-session
// throughput instruments live on each shard (fleet.go).
var (
	obsClientsTotal = obs.Default.Counter("remote.clients_total")
	obsEvictions    = obs.Default.Counter("remote.evictions")
	obsFramesSent   = obs.Default.Counter("remote.frames_sent")
	obsBytesSent    = obs.Default.Counter("remote.bytes_sent")
	obsLiveDropped  = obs.Default.Counter("remote.live_dropped")
	obsSearches     = obs.Default.Counter("remote.searches")
	obsPlaybacks    = obs.Default.Counter("remote.playbacks")
	obsInputEvents  = obs.Default.Counter("remote.input_events")
	obsRPCMS        = obs.Default.Histogram("remote.rpc_ms", obs.LatencyBuckets...)
	obsSendQDepth   = obs.Default.Histogram("remote.sendq_depth", obs.DepthBuckets...)
)

// Options configure a daemon. Sessions (or the legacy single-session
// Session/Archive fields) name what it serves; the budget fields bound
// each session's share of the node.
type Options struct {
	// Sessions registers the served sessions. IDs must satisfy
	// ValidSessionID and be non-empty; duplicates are a configuration
	// error (Serve panics — the slice is program input, not wire input).
	Sessions []SessionConfig
	// DefaultSession names the session an empty-ID (or protocol-1) hello
	// routes to. Empty means the first registered session.
	DefaultSession string

	// Session is the legacy single-session form: a live desktop session
	// to serve. It registers under the ID "default" ahead of Sessions.
	Session *core.Session
	// Archive is the legacy single-session form: a reopened archive to
	// serve (search and playback only). It shares the "default" ID with
	// Session.
	Archive *core.Archive

	// MaxClientsPerSession bounds concurrent connections admitted to one
	// session; further hellos are shed with NoticeBusy. 0 = unlimited.
	MaxClientsPerSession int
	// SessionByteQuota bounds one session's outstanding queued send
	// bytes: while its conns hold this much undelivered data, new hellos
	// are shed with NoticeBusy rather than letting another slow consumer
	// pile onto the display path. 0 = unlimited.
	SessionByteQuota int64
	// MaxStreamsPerSession bounds one session's concurrent playback
	// stream goroutines; further playback requests get a busy error
	// response. 0 = unlimited.
	MaxStreamsPerSession int

	// SendQueue bounds each client's send queue, in frames (default
	// 256). A live viewer that falls this many frames behind the
	// writer's drain rate is evicted.
	SendQueue int
	// DrainTimeout bounds graceful shutdown: after Close stops accepting
	// and notifies clients, connections have this long to drain their
	// queues before being force-closed (default 5s).
	DrainTimeout time.Duration
	// HandshakeTimeout bounds how long an accepted connection may take
	// to send its hello (default 10s).
	HandshakeTimeout time.Duration
}

func (o *Options) fillDefaults() {
	if o.SendQueue == 0 {
		o.SendQueue = 256
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
}

// Server is the DejaView network access daemon. It accepts viewer
// connections on a listener and serves any number of registered sessions
// concurrently — live viewing, search, and playback, routed per
// connection by the hello's session ID. All exported methods are safe
// for concurrent use.
type Server struct {
	opts Options
	ln   net.Listener
	mgr  *manager

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool
	nextID uint64

	wg sync.WaitGroup

	// base holds the registry counter values when this server started, so
	// Stats() reports only activity attributable to it.
	base Stats
}

// Serve starts a daemon on ln and returns immediately; the returned
// Server owns the listener. Callers terminate it with Close. Invalid
// static session configuration (bad or duplicate IDs, a session with no
// source) is programmer error and panics; use AddSession for runtime
// registration with an error return.
func Serve(ln net.Listener, opts Options) *Server {
	opts.fillDefaults()
	s := &Server{
		opts:  opts,
		ln:    ln,
		mgr:   newManager(),
		conns: map[*conn]struct{}{},
		base:  statsNow(),
	}
	if opts.Session != nil || opts.Archive != nil {
		if _, err := s.mgr.add(SessionConfig{ID: "default", Session: opts.Session, Archive: opts.Archive}, &s.opts); err != nil {
			panic(fmt.Sprintf("remote.Serve: %v", err))
		}
	}
	for _, cfg := range opts.Sessions {
		if _, err := s.mgr.add(cfg, &s.opts); err != nil {
			panic(fmt.Sprintf("remote.Serve: %v", err))
		}
	}
	if opts.DefaultSession != "" {
		if err := s.mgr.setDefault(opts.DefaultSession); err != nil {
			panic(fmt.Sprintf("remote.Serve: %v", err))
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// statsNow reads the registry-backed aggregate counters.
func statsNow() Stats {
	return Stats{
		TotalClients:     obsClientsTotal.Value(),
		Evicted:          obsEvictions.Value(),
		FramesSent:       obsFramesSent.Value(),
		BytesSent:        obsBytesSent.Value(),
		LiveDropped:      obsLiveDropped.Value(),
		Searches:         obsSearches.Value(),
		Playbacks:        obsPlaybacks.Value(),
		InputEvents:      obsInputEvents.Value(),
		AdmissionRejects: obsAdmissionRejects.Value(),
	}
}

// Addr reports the listener address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// AddSession registers a session at runtime. It becomes routable by the
// next hello that names its ID (and the default, if none was registered
// yet).
func (s *Server) AddSession(cfg SessionConfig) error {
	_, err := s.mgr.add(cfg, &s.opts)
	return err
}

// RemoveSession deregisters a session: subsequent hellos naming it are
// rejected with NoticeUnknownSession. Connections already routed to it
// are left to drain on their own; it reports whether the ID was
// registered.
func (s *Server) RemoveSession(id string) bool {
	return s.mgr.remove(id)
}

// Sessions lists the registered session IDs, sorted.
func (s *Server) Sessions() []string { return s.mgr.list() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.nextID++
		c := newConn(s, nc, s.nextID)
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		obsClientsTotal.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.run()
			s.remove(c)
		}()
	}
}

func (s *Server) remove(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Close shuts the daemon down gracefully: it stops accepting, sends every
// client a shutdown notice, lets connections drain their bounded queues
// for up to DrainTimeout, then force-closes whatever remains. It is
// idempotent and never blocks longer than roughly the drain deadline.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		//lint:ignore map-order shutdown broadcast over a set; per-conn teardown is order-independent
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.ln.Close()
	for _, c := range conns {
		c.shutdown(NoticeShutdown, "server shutting down")
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	//lint:ignore wallclock the drain grace period times out real client sockets, not virtual time
	case <-time.After(s.opts.DrainTimeout):
		s.mu.Lock()
		remaining := make([]*conn, 0, len(s.conns))
		for c := range s.conns {
			//lint:ignore map-order force-close broadcast; per-conn teardown is order-independent
			remaining = append(remaining, c)
		}
		s.mu.Unlock()
		for _, c := range remaining {
			c.forceClose()
		}
		<-done
	}
	return nil
}

// Stats returns the aggregate counters attributable to this server:
// the registry-backed instruments minus the baseline captured at Serve.
// SessionsActive is this server's current registry size, not a delta.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := uint64(len(s.conns))
	s.mu.Unlock()
	now := statsNow()
	return Stats{
		ActiveClients:    active,
		TotalClients:     now.TotalClients - s.base.TotalClients,
		Evicted:          now.Evicted - s.base.Evicted,
		FramesSent:       now.FramesSent - s.base.FramesSent,
		BytesSent:        now.BytesSent - s.base.BytesSent,
		LiveDropped:      now.LiveDropped - s.base.LiveDropped,
		Searches:         now.Searches - s.base.Searches,
		Playbacks:        now.Playbacks - s.base.Playbacks,
		InputEvents:      now.InputEvents - s.base.InputEvents,
		SessionsActive:   uint64(s.mgr.count()),
		AdmissionRejects: now.AdmissionRejects - s.base.AdmissionRejects,
	}
}

// StatsSnapshot returns the full process-wide registry snapshot — the
// body of the StatsSnapshot RPC.
func (s *Server) StatsSnapshot() obs.Snapshot {
	return obs.Default.Snapshot()
}

// ClientStats snapshots every connected client's counters, sorted by
// connection id so the listing is stable across calls.
func (s *Server) ClientStats() []ClientStats {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	sort.Slice(conns, func(i, j int) bool { return conns[i].id < conns[j].id })
	out := make([]ClientStats, 0, len(conns))
	for _, c := range conns {
		out = append(out, c.snapshotStats())
	}
	return out
}
