// Package remote is DejaView's network access service: a concurrent TCP
// daemon plus client library that turns the paper's client–server split
// (§2, §3) into a real multi-client deployment surface. One daemon
// multiplexes three workloads over an extended version of the viewer
// frame protocol:
//
//   - Live viewing: any number of clients attach to the running desktop
//     session as display.Sink fan-outs. Each connection has a bounded
//     send queue drained by a dedicated writer goroutine; a slow or
//     stalled client overflows its own queue and is evicted, and can
//     never block display.Server.Submit/Flush or delay other clients.
//
//   - Archive search RPC: query → index hits with text context, over a
//     live session's index or a reopened archive's, shared safely by
//     many connections.
//
//   - Playback streaming: the server drives a command (or keyframe)
//     stream from the display record to the client, paced at record
//     speed, a rate multiple, or as fast as the connection drains.
//     Playback applies per-client backpressure (the stream blocks on
//     that client's queue) rather than eviction.
//
// The daemon supports graceful shutdown — stop accepting, notify
// clients, drain bounded queues under a deadline, then force-close — and
// keeps per-client and aggregate statistics. The `remote/conn` failpoint
// makes connection writes and reads fail deterministically in tests
// (fail-Nth, short-write, corruption), mirroring the storage-path fault
// matrix.
//
// cmd/dvserve is the deployable daemon; examples/remote-viewer shows the
// client library end to end.
package remote
