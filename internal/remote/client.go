package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dejaview/internal/display"
	"dejaview/internal/index"
	"dejaview/internal/obs"
	"dejaview/internal/simclock"
	"dejaview/internal/viewer"
)

// Client-visible terminal conditions. Every error a dead connection
// surfaces wraps one of these, so callers can match with errors.Is.
var (
	// ErrConnClosed reports a connection that is gone (closed locally,
	// reset, or dropped by the server without a notice).
	ErrConnClosed = errors.New("remote: connection closed")
	// ErrEvicted reports that the server evicted this client for
	// overflowing its send queue.
	ErrEvicted = errors.New("remote: evicted by server")
	// ErrShutdown reports that the server shut down gracefully.
	ErrShutdown = errors.New("remote: server shut down")
	// ErrUnknownSession reports a rejected handshake: the session ID the
	// client asked for is not in the daemon's registry. Match with
	// errors.Is; the wrapped message carries the offending ID.
	ErrUnknownSession = errors.New("remote: unknown session")
	// ErrBusy reports load shed at admission: the target session is at
	// its client capacity, over its byte quota, or (on a playback
	// request) out of stream budget. The connection attempt can be
	// retried later or pointed at another node. Match with errors.Is.
	ErrBusy = errors.New("remote: session busy")
)

// RemoteError is a request the server answered with an error status.
type RemoteError struct {
	Op  string // the request kind, e.g. "search"
	Msg string // the server's message
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote: %s: server: %s", e.Op, e.Msg)
}

// Client is a connection to a DejaView daemon. One client multiplexes
// any number of live views, playback streams, and RPCs over a single
// connection; all methods are safe for concurrent use.
type Client struct {
	nc    io.ReadWriteCloser
	hello serverHello

	writeMu sync.Mutex // serializes frame writes

	mu        sync.Mutex
	nextID    uint32
	pending   map[uint32]chan respMsg
	liveViews map[uint32]*LiveView
	playbacks map[uint32]*PlaybackStream
	err       error         // first terminal error, set once
	down      chan struct{} // closed when the demux loop exits

	closeOnce sync.Once
}

type respMsg struct {
	status uint8
	body   []byte
}

// Dial connects to a daemon over TCP and performs the handshake against
// its default session.
func Dial(addr string) (*Client, error) {
	return DialSession(addr, "")
}

// DialSession connects to a daemon over TCP and performs the handshake
// against the named session; the empty ID routes to the daemon's
// default. A daemon that does not hold the session answers with
// ErrUnknownSession; one shedding load answers with ErrBusy.
func DialSession(addr, sessionID string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClientSession(nc, sessionID)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the protocol handshake over an established
// connection and starts the demultiplexer. The client owns rw and
// targets the daemon's default session.
func NewClient(rw io.ReadWriteCloser) (*Client, error) {
	return NewClientSession(rw, "")
}

// NewClientSession is NewClient targeting a named session. The
// handshake's rejection paths surface as typed errors: ErrVersion for a
// failed version negotiation, ErrUnknownSession for an unregistered
// session ID, ErrBusy when admission control sheds the connection.
func NewClientSession(rw io.ReadWriteCloser, sessionID string) (*Client, error) {
	if !ValidSessionID(sessionID) {
		return nil, fmt.Errorf("remote: hello: invalid session id %q", sessionID)
	}
	c := &Client{
		nc:        rw,
		pending:   map[uint32]chan respMsg{},
		liveViews: map[uint32]*LiveView{},
		playbacks: map[uint32]*PlaybackStream{},
		down:      make(chan struct{}),
	}
	hello := encodeClientHello(clientHello{MinVersion: 1, MaxVersion: Version, SessionID: sessionID})
	if err := viewer.WriteFrame(rw, FrameClientHello, hello); err != nil {
		return nil, fmt.Errorf("remote: hello: %w", err)
	}
	kind, payload, err := viewer.ReadFrame(rw)
	if err != nil {
		return nil, fmt.Errorf("remote: hello: %w", err)
	}
	switch kind {
	case FrameServerHello:
		if c.hello, err = decodeServerHello(payload); err != nil {
			return nil, err
		}
	case FrameNotice:
		code, msg, err := decodeNotice(payload)
		if err != nil {
			return nil, err
		}
		switch code {
		case NoticeBadVersion:
			return nil, fmt.Errorf("%w: %s", ErrVersion, msg)
		case NoticeUnknownSession:
			return nil, fmt.Errorf("%w: %s", ErrUnknownSession, msg)
		case NoticeBusy:
			return nil, fmt.Errorf("%w: %s", ErrBusy, msg)
		}
		return nil, protoErrf("connection rejected: %s", msg)
	default:
		return nil, protoErrf("expected server hello, got frame %d", kind)
	}
	//lint:ignore goroutine-lifecycle demux exits when the connection closes: ReadFrame errors on EOF and Client.Close tears down the socket
	go c.demux()
	return c, nil
}

// Size reports the served desktop dimensions from the handshake.
func (c *Client) Size() (w, h int) {
	return int(c.hello.Width), int(c.hello.Height)
}

// HasSession reports whether the daemon serves a live session.
func (c *Client) HasSession() bool { return c.hello.Flags&flagHasSession != 0 }

// HasArchive reports whether the daemon serves a reopened archive.
func (c *Client) HasArchive() bool { return c.hello.Flags&flagHasArchive != 0 }

// ServerTime reports the daemon's clock at handshake time.
func (c *Client) ServerTime() simclock.Time { return c.hello.Now }

// SessionID reports the session the connection was routed to, as the
// server confirmed it. Empty against a protocol-1 daemon.
func (c *Client) SessionID() string { return c.hello.SessionID }

// Close tears the connection down. Outstanding requests and streams fail
// with ErrConnClosed.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		c.setErr(ErrConnClosed)
		c.nc.Close()
	})
	return nil
}

// Err reports the connection's terminal error, nil while it is healthy.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// setErr records the first terminal error; later calls are no-ops.
func (c *Client) setErr(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

// fail ends the connection: record err, wake every waiter, mark every
// stream dead.
func (c *Client) fail(err error) {
	c.setErr(err)
	c.mu.Lock()
	views := c.liveViews
	plays := c.playbacks
	c.liveViews = map[uint32]*LiveView{}
	c.playbacks = map[uint32]*PlaybackStream{}
	final := c.err
	c.mu.Unlock()
	close(c.down) // pending waiters select on this
	for _, lv := range views {
		lv.fail(final)
	}
	for _, ps := range plays {
		ps.finish(final)
	}
	c.nc.Close()
}

// demux routes incoming frames: responses to their waiting request,
// stream frames to their live view or playback stream, notices to the
// terminal error.
func (c *Client) demux() {
	for {
		kind, payload, err := viewer.ReadFrame(c.nc)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		switch kind {
		case FrameResponse:
			id, status, body, err := decodeResponse(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			ch := c.pending[id]
			delete(c.pending, id)
			c.mu.Unlock()
			if ch != nil {
				ch <- respMsg{status, append([]byte(nil), body...)}
			}
		case FrameStreamData:
			id, elem, data, err := decodeStreamData(payload)
			if err != nil {
				c.fail(err)
				return
			}
			if err := c.applyStream(id, elem, data); err != nil {
				c.fail(err)
				return
			}
		case FrameStreamEnd:
			id, status, msg, err := decodeStreamEnd(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.endStream(id, status, msg)
		case FrameStatsSnapshot:
			id, _, err := decodeStatsSnapshot(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			ch := c.pending[id]
			delete(c.pending, id)
			c.mu.Unlock()
			if ch != nil {
				ch <- respMsg{statusOK, append([]byte(nil), payload[4:]...)}
			}
		case FrameNotice:
			code, msg, err := decodeNotice(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.fail(noticeError(code, msg))
			return
		default:
			c.fail(protoErrf("unexpected frame kind %d from server", kind))
			return
		}
	}
}

func noticeError(code uint8, msg string) error {
	switch code {
	case NoticeShutdown:
		return fmt.Errorf("%w: %s", ErrShutdown, msg)
	case NoticeEvicted:
		return fmt.Errorf("%w: %s", ErrEvicted, msg)
	case NoticeUnknownSession:
		return fmt.Errorf("%w: %s", ErrUnknownSession, msg)
	case NoticeBusy:
		return fmt.Errorf("%w: %s", ErrBusy, msg)
	default:
		return fmt.Errorf("%w: server notice: %s", ErrConnClosed, msg)
	}
}

func (c *Client) applyStream(id uint32, elem uint8, data []byte) error {
	c.mu.Lock()
	lv := c.liveViews[id]
	ps := c.playbacks[id]
	c.mu.Unlock()
	switch {
	case lv != nil:
		return lv.apply(elem, data)
	case ps != nil:
		return ps.apply(elem, data)
	}
	return nil // late frames for a detached stream: ignore
}

func (c *Client) endStream(id uint32, status uint8, msg string) {
	c.mu.Lock()
	lv := c.liveViews[id]
	ps := c.playbacks[id]
	delete(c.liveViews, id)
	delete(c.playbacks, id)
	c.mu.Unlock()
	var err error
	if status != statusOK {
		err = &RemoteError{Op: "stream", Msg: msg}
	}
	if lv != nil {
		lv.fail(err)
	}
	if ps != nil {
		ps.finish(err)
	}
}

// request sends one request and waits for its response.
func (c *Client) request(op string, opCode uint8, body []byte) (respMsg, error) {
	id, ch, err := c.startRequest()
	if err != nil {
		return respMsg{}, fmt.Errorf("remote: %s: %w", op, err)
	}
	if err := c.writeFrame(FrameRequest, encodeRequest(id, opCode, body)); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return respMsg{}, fmt.Errorf("remote: %s: %w", op, err)
	}
	return c.await(op, ch)
}

func (c *Client) startRequest() (uint32, chan respMsg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, nil, c.err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan respMsg, 1)
	c.pending[id] = ch
	return id, ch, nil
}

func (c *Client) await(op string, ch chan respMsg) (respMsg, error) {
	select {
	case r := <-ch:
		if r.status != statusOK {
			return r, &RemoteError{Op: op, Msg: string(r.body)}
		}
		return r, nil
	case <-c.down:
		return respMsg{}, fmt.Errorf("remote: %s: %w", op, c.Err())
	}
}

func (c *Client) writeFrame(kind byte, payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return viewer.WriteFrame(c.nc, kind, payload)
}

// Search runs a query against the daemon's live session index.
func (c *Client) Search(q index.Query) ([]index.Result, error) {
	return c.searchFrom(SourceSession, q)
}

// SearchArchive runs a query against the daemon's archive index.
func (c *Client) SearchArchive(q index.Query) ([]index.Result, error) {
	return c.searchFrom(SourceArchive, q)
}

func (c *Client) searchFrom(src Source, q index.Query) ([]index.Result, error) {
	r, err := c.request("search", OpSearch, encodeSearchReq(src, index.EncodeQuery(q)))
	if err != nil {
		return nil, err
	}
	res, err := index.DecodeResults(r.body)
	if err != nil {
		return nil, fmt.Errorf("remote: search: %w", err)
	}
	return res, nil
}

// ServerStats fetches the daemon's aggregate counters and this
// connection's own.
func (c *Client) ServerStats() (Stats, ClientStats, error) {
	r, err := c.request("stats", OpStats, nil)
	if err != nil {
		return Stats{}, ClientStats{}, err
	}
	return decodeStatsResp(r.body)
}

// StatsSnapshot fetches the daemon's full observability registry
// snapshot: every counter, gauge, and histogram the serving process has
// registered, not just the remote layer's aggregate view.
func (c *Client) StatsSnapshot() (obs.Snapshot, error) {
	r, err := c.request("stats snapshot", OpStatsSnapshot, nil)
	if err != nil {
		return obs.Snapshot{}, err
	}
	s, err := obs.ParseSnapshot(r.body)
	if err != nil {
		return obs.Snapshot{}, fmt.Errorf("remote: stats snapshot: %w", err)
	}
	return s, nil
}

// SendKey forwards a key event to the served session.
func (c *Client) SendKey(t simclock.Time, key uint32, down bool) error {
	return c.sendInput(&viewer.InputEvent{Kind: viewer.InputKey, Time: t, Key: key, Down: down})
}

// SendPointerMove forwards a pointer motion event.
func (c *Client) SendPointerMove(t simclock.Time, x, y int32) error {
	return c.sendInput(&viewer.InputEvent{Kind: viewer.InputPointerMove, Time: t, X: x, Y: y})
}

func (c *Client) sendInput(e *viewer.InputEvent) error {
	if err := c.Err(); err != nil {
		return err
	}
	return c.writeFrame(viewer.FrameInput, viewer.EncodeInput(e))
}

// LiveView is an attached live session view: a local replica of the
// served desktop, updated as the session's display flushes.
type LiveView struct {
	c  *Client
	id uint32

	mu      sync.Mutex
	fb      *display.Framebuffer
	applied uint64 // display commands applied
	shots   uint64 // screenshots applied (1 after the initial screen)
	err     error
	done    bool
	change  chan struct{} // replaced on every update (broadcast)
}

// AttachLive attaches a live view of the daemon's session. The initial
// screen arrives asynchronously; WaitScreen blocks until it is in place.
func (c *Client) AttachLive() (*LiveView, error) {
	id, ch, err := c.startRequest()
	if err != nil {
		return nil, fmt.Errorf("remote: attach: %w", err)
	}
	lv := &LiveView{c: c, id: id, change: make(chan struct{})}
	c.mu.Lock()
	c.liveViews[id] = lv
	c.mu.Unlock()
	fail := func(err error) (*LiveView, error) {
		c.mu.Lock()
		delete(c.pending, id)
		delete(c.liveViews, id)
		c.mu.Unlock()
		return nil, err
	}
	if err := c.writeFrame(FrameRequest, encodeRequest(id, OpAttach, encodeAttachReq(SourceSession))); err != nil {
		return fail(fmt.Errorf("remote: attach: %w", err))
	}
	r, err := c.await("attach", ch)
	if err != nil {
		return fail(err)
	}
	if _, _, err := decodeAttachResp(r.body); err != nil {
		return fail(err)
	}
	return lv, nil
}

// apply is called from the demux loop, in stream order: the initial
// screenshot always precedes the first command.
func (lv *LiveView) apply(elem uint8, data []byte) error {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	defer lv.broadcast()
	switch elem {
	case StreamScreenshot:
		fb, _, err := display.DecodeScreenshot(data)
		if err != nil {
			return err
		}
		lv.fb = fb
		lv.shots++
	case StreamCommand:
		if lv.fb == nil {
			return protoErrf("live command before initial screen")
		}
		cmd, _, err := display.DecodeCommand(data)
		if err != nil {
			return err
		}
		if err := lv.fb.Apply(&cmd); err != nil {
			return err
		}
		lv.applied++
	}
	return nil
}

// broadcast wakes every waiter; callers hold lv.mu.
func (lv *LiveView) broadcast() {
	close(lv.change)
	lv.change = make(chan struct{})
}

func (lv *LiveView) fail(err error) {
	lv.mu.Lock()
	lv.done = true
	if lv.err == nil {
		lv.err = err
	}
	lv.broadcast()
	lv.mu.Unlock()
}

// Screen snapshots the view's current screen (nil before the initial
// screenshot arrives).
func (lv *LiveView) Screen() *display.Framebuffer {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	if lv.fb == nil {
		return nil
	}
	return lv.fb.Snapshot()
}

// Applied reports the number of display commands applied.
func (lv *LiveView) Applied() uint64 {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.applied
}

// Err reports the view's terminal error: nil while streaming, and after
// a clean detach.
func (lv *LiveView) Err() error {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.err
}

// WaitScreen blocks until the initial screen is in place.
func (lv *LiveView) WaitScreen(timeout time.Duration) error {
	return lv.wait(timeout, func() bool { return lv.shots > 0 })
}

// WaitApplied blocks until at least n commands were applied.
func (lv *LiveView) WaitApplied(n uint64, timeout time.Duration) error {
	return lv.wait(timeout, func() bool { return lv.applied >= n })
}

// wait blocks until cond (evaluated under lv.mu) holds, the view ends,
// or the timeout expires.
func (lv *LiveView) wait(timeout time.Duration, cond func() bool) error {
	//lint:ignore wallclock the caller-supplied timeout bounds a wait on a real network peer, not replayed state
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		lv.mu.Lock()
		if cond() {
			lv.mu.Unlock()
			return nil
		}
		if lv.done {
			err := lv.err
			lv.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("remote: live view detached")
			}
			return err
		}
		ch := lv.change
		lv.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return fmt.Errorf("remote: live view: wait timed out after %v", timeout)
		}
	}
}

// Detach stops the live stream on the server and releases the view.
func (lv *LiveView) Detach() error {
	c := lv.c
	c.mu.Lock()
	delete(c.liveViews, lv.id)
	c.mu.Unlock()
	lv.mu.Lock()
	lv.done = true
	lv.broadcast()
	lv.mu.Unlock()
	_, err := c.request("detach", OpDetach, encodeDetachReq(lv.id))
	return err
}

// PlaybackStream is a server-driven playback: the daemon streams the
// seeked screen and then the window's commands or keyframes into a local
// replica.
type PlaybackStream struct {
	c  *Client
	id uint32

	mu       sync.Mutex
	fb       *display.Framebuffer
	commands uint64
	shots    uint64
	err      error
	done     chan struct{}
}

// Playback starts a server-side playback stream. Wait blocks until the
// stream completes.
func (c *Client) Playback(req PlaybackRequest) (*PlaybackStream, error) {
	id, ch, err := c.startRequest()
	if err != nil {
		return nil, fmt.Errorf("remote: playback: %w", err)
	}
	ps := &PlaybackStream{c: c, id: id, done: make(chan struct{})}
	c.mu.Lock()
	c.playbacks[id] = ps
	c.mu.Unlock()
	fail := func(err error) (*PlaybackStream, error) {
		c.mu.Lock()
		delete(c.pending, id)
		delete(c.playbacks, id)
		c.mu.Unlock()
		return nil, err
	}
	if err := c.writeFrame(FrameRequest, encodeRequest(id, OpPlayback, encodePlaybackReq(req))); err != nil {
		return fail(fmt.Errorf("remote: playback: %w", err))
	}
	if _, err := c.await("playback", ch); err != nil {
		return fail(err)
	}
	return ps, nil
}

func (ps *PlaybackStream) apply(elem uint8, data []byte) error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	switch elem {
	case StreamScreenshot:
		fb, _, err := display.DecodeScreenshot(data)
		if err != nil {
			return err
		}
		ps.fb = fb
		ps.shots++
	case StreamCommand:
		if ps.fb == nil {
			return protoErrf("playback command before seeked screen")
		}
		cmd, _, err := display.DecodeCommand(data)
		if err != nil {
			return err
		}
		if err := ps.fb.Apply(&cmd); err != nil {
			return err
		}
		ps.commands++
	}
	return nil
}

func (ps *PlaybackStream) finish(err error) {
	ps.mu.Lock()
	if ps.err == nil {
		ps.err = err
	}
	ps.mu.Unlock()
	select {
	case <-ps.done:
	default:
		close(ps.done)
	}
}

// Wait blocks until the stream ends and reports its terminal error (nil
// on a complete stream).
func (ps *PlaybackStream) Wait() error {
	<-ps.done
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.err
}

// Screen snapshots the playback screen (nil before the seeked screen
// arrives).
func (ps *PlaybackStream) Screen() *display.Framebuffer {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.fb == nil {
		return nil
	}
	return ps.fb.Snapshot()
}

// Commands reports the number of stream commands applied.
func (ps *PlaybackStream) Commands() uint64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.commands
}

// Screenshots reports the number of screenshots applied (at least 1 for
// a completed stream; more in keyframe mode).
func (ps *PlaybackStream) Screenshots() uint64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.shots
}
