package remote

import (
	"bytes"
	"strings"
	"testing"

	"dejaview/internal/display"
	"dejaview/internal/index"
	"dejaview/internal/obs"
	"dejaview/internal/viewer"
)

// decodeRemoteFrame dispatches one frame through every decoder the kind
// can reach, the same surface a daemon or client exposes to untrusted
// peers. Return values are discarded: the property under test is "no
// panic, no runaway allocation" on arbitrary input.
func decodeRemoteFrame(kind byte, payload []byte) {
	switch kind {
	case FrameClientHello:
		decodeClientHello(payload)
	case FrameServerHello:
		decodeServerHello(payload)
	case FrameRequest:
		_, op, body, err := decodeRequest(payload)
		if err != nil {
			return
		}
		switch op {
		case OpAttach:
			decodeAttachReq(body)
		case OpDetach:
			decodeDetachReq(body)
		case OpSearch:
			if _, qb, err := decodeSearchReq(body); err == nil {
				index.DecodeQuery(qb)
			}
		case OpPlayback:
			decodePlaybackReq(body)
		}
	case FrameStatsSnapshot:
		decodeStatsSnapshot(payload)
	case FrameResponse:
		_, _, body, err := decodeResponse(payload)
		if err != nil {
			return
		}
		// A response body is opaque without its request; try every
		// decoder a client might apply.
		decodeAttachResp(body)
		decodeStatsResp(body)
		index.DecodeResults(body)
	case FrameStreamData:
		_, elem, data, err := decodeStreamData(payload)
		if err != nil {
			return
		}
		switch elem {
		case StreamCommand:
			display.DecodeCommand(data)
		case StreamScreenshot:
			display.DecodeScreenshot(data)
		}
	case FrameStreamEnd:
		decodeStreamEnd(payload)
	case FrameNotice:
		decodeNotice(payload)
	case viewer.FrameInput:
		viewer.DecodeInput(payload)
	}
}

// recordedExchange assembles the byte stream of a realistic session:
// both directions of a handshake + attach + search + playback + stats
// conversation, concatenated. It seeds the fuzzer with every frame shape
// the protocol produces.
func recordedExchange() []byte {
	var buf bytes.Buffer
	w := func(kind byte, payload []byte) {
		viewer.WriteFrame(&buf, kind, payload)
	}
	w(FrameClientHello, encodeClientHello(clientHello{MinVersion: 1, MaxVersion: Version, SessionID: "tenant0"}))
	w(FrameServerHello, encodeServerHello(serverHello{
		Version: Version, Flags: flagHasSession, Width: 1024, Height: 768, Now: 8e9, SessionID: "tenant0",
	}))
	w(FrameRequest, encodeRequest(1, OpAttach, encodeAttachReq(SourceSession)))
	w(FrameResponse, encodeResponse(1, statusOK, encodeAttachResp(1024, 768)))
	fb := display.NewFramebuffer(8, 8)
	w(FrameStreamData, encodeStreamData(1, StreamScreenshot, display.EncodeScreenshot(nil, fb)))
	cmd := display.SolidFill(5e9, display.NewRect(1, 2, 3, 4), display.Pixel(7))
	cbuf, _ := display.EncodeCommand(nil, &cmd)
	w(FrameStreamData, encodeStreamData(1, StreamCommand, cbuf))
	w(FrameRequest, encodeRequest(2, OpSearch, encodeSearchReq(SourceSession,
		index.EncodeQuery(index.Query{All: []string{"remote", "report"}, Limit: 10}))))
	w(FrameResponse, encodeResponse(2, statusOK, index.EncodeResults([]index.Result{
		{Time: 3e9, Persistence: 1e9, Matches: 2, Snippets: []string{"remote access report"}},
	})))
	w(FrameRequest, encodeRequest(3, OpPlayback, encodePlaybackReq(PlaybackRequest{
		Source: SourceSession, Mode: PlayCommands, Start: 0, End: 6e9, Rate: 1,
	})))
	w(FrameResponse, encodeResponse(3, statusOK, nil))
	w(FrameStreamEnd, encodeStreamEnd(3, statusOK, ""))
	w(FrameRequest, encodeRequest(4, OpStats, nil))
	w(FrameResponse, encodeResponse(4, statusOK, encodeStatsResp(
		Stats{ActiveClients: 3, FramesSent: 100, BytesSent: 1 << 20},
		ClientStats{ID: 7, FramesSent: 12},
	)))
	w(FrameRequest, encodeRequest(6, OpStatsSnapshot, nil))
	if snap, err := encodeStatsSnapshot(6, obs.NewRegistry().Snapshot()); err == nil {
		w(FrameStatsSnapshot, snap)
	}
	w(FrameRequest, encodeRequest(5, OpDetach, encodeDetachReq(1)))
	w(FrameStreamEnd, encodeStreamEnd(1, statusOK, "detached"))
	w(FrameResponse, encodeResponse(5, statusOK, nil))
	w(viewer.FrameInput, viewer.EncodeInput(&viewer.InputEvent{Kind: viewer.InputKey, Key: 'x', Down: true}))
	w(FrameNotice, encodeNotice(NoticeShutdown, "server shutting down"))
	return buf.Bytes()
}

// FuzzDecodeRemoteFrame feeds arbitrary byte streams through the frame
// reader and every remote-layer decoder. The frame reader's allocation
// guard (length validated against MaxFrame, chunked reads) plus the
// decoders' caps must hold for any input: no panics, no unbounded
// allocation.
func FuzzDecodeRemoteFrame(f *testing.F) {
	f.Add(recordedExchange())
	// Single-frame seeds so the fuzzer can mutate each shape in
	// isolation.
	exchange := recordedExchange()
	r := bytes.NewReader(exchange)
	for {
		kind, payload, err := viewer.ReadFrame(r)
		if err != nil {
			break
		}
		var one bytes.Buffer
		viewer.WriteFrame(&one, kind, payload)
		f.Add(one.Bytes())
	}
	// Adversarial seeds: oversize length, truncation, bad magic.
	f.Add([]byte{FrameClientHello, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{FrameStreamData, 10, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{FrameNotice, 0, 0, 0, 0})
	// Session-ID hello shapes: a protocol-1 hello with no trailing field,
	// a maximum-length ID, a truncated ID (length byte promises more
	// bytes than the payload holds), and a busy/unknown-session notice.
	frame := func(kind byte, payload []byte) []byte {
		var b bytes.Buffer
		viewer.WriteFrame(&b, kind, payload)
		return b.Bytes()
	}
	f.Add(frame(FrameClientHello, encodeClientHello(clientHello{MinVersion: 1, MaxVersion: 1})[:12]))
	f.Add(frame(FrameClientHello, encodeClientHello(clientHello{
		MinVersion: 1, MaxVersion: Version, SessionID: strings.Repeat("s", MaxSessionID),
	})))
	full := encodeClientHello(clientHello{MinVersion: 1, MaxVersion: Version, SessionID: "tenant0"})
	f.Add(frame(FrameClientHello, full[:len(full)-3]))
	f.Add(frame(FrameServerHello, append(encodeServerHello(serverHello{
		Version: Version, Width: 64, Height: 64,
	}), 0xff)))
	f.Add(frame(FrameNotice, encodeNotice(NoticeUnknownSession, "no such session")))
	f.Add(frame(FrameNotice, encodeNotice(NoticeBusy, "session at client capacity")))
	// Stats snapshot shapes: truncated id, non-JSON body, empty object.
	f.Add([]byte{FrameStatsSnapshot, 2, 0, 0, 0, 6, 0})
	var snapSeed bytes.Buffer
	viewer.WriteFrame(&snapSeed, FrameStatsSnapshot, append([]byte{6, 0, 0, 0}, "{}"...))
	f.Add(snapSeed.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 64; i++ { // bound work per input
			kind, payload, err := viewer.ReadFrame(r)
			if err != nil {
				return
			}
			decodeRemoteFrame(kind, payload)
		}
	})
}

// TestStatsSnapshotOversizedRejected locks in the snapshot decoder's own
// payload cap: a frame that fits the transport's MaxFrame limit but
// exceeds maxStatsSnapshot must be rejected before JSON parsing.
func TestStatsSnapshotOversizedRejected(t *testing.T) {
	huge := append([]byte{1, 0, 0, 0}, bytes.Repeat([]byte{' '}, maxStatsSnapshot+1)...)
	if len(huge) >= viewer.MaxFrame {
		t.Fatalf("test payload must stay within the transport cap")
	}
	if _, _, err := decodeStatsSnapshot(huge); err == nil {
		t.Fatalf("oversized stats snapshot accepted")
	} else if !strings.Contains(err.Error(), "cap") {
		t.Fatalf("unexpected rejection: %v", err)
	}
	// At the cap, valid JSON still decodes.
	pad := strings.Repeat(" ", maxStatsSnapshot-2)
	ok := append([]byte{1, 0, 0, 0}, ("{}" + pad)...)
	if _, _, err := decodeStatsSnapshot(ok); err != nil {
		t.Fatalf("cap-sized snapshot rejected: %v", err)
	}
}
