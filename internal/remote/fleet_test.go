package remote

import (
	"errors"
	"net"
	"testing"
	"time"

	"dejaview/internal/access"
	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/index"
	"dejaview/internal/record"
	"dejaview/internal/viewer"
)

// newTaggedSession builds a session whose indexed text carries tag, so
// routing tests can prove which session answered a search.
func newTaggedSession(t *testing.T, seconds int, tag string) *core.Session {
	t.Helper()
	s := core.NewSession(core.Config{
		Record: record.Options{ScreenshotInterval: 2 * sec, ScreenshotMinChange: 0.01},
	})
	app := s.Registry().Register("Editor", "editor")
	win := app.AddComponent(nil, access.RoleWindow, tag+".txt - Editor", "")
	para := app.AddComponent(win, access.RoleParagraph, "", tag+" report")
	s.Registry().SetFocus(app)
	for i := 0; i < seconds; i++ {
		if err := s.Display().Submit(display.SolidFill(s.Clock().Now(),
			display.NewRect(0, (i*40)%700, 1024, 60), display.Pixel(i+1))); err != nil {
			t.Fatal(err)
		}
		app.SetText(para, tag+" report line "+string(rune('a'+i%26)))
		s.NoteKeyboardInput()
		if _, _, err := s.Tick(); err != nil {
			t.Fatal(err)
		}
		s.Clock().Advance(sec)
	}
	return s
}

func TestValidSessionID(t *testing.T) {
	valid := []string{"", "a", "alpha", "user42", "a.b-c_d", "0x", "9"}
	for _, id := range valid {
		if !ValidSessionID(id) {
			t.Errorf("ValidSessionID(%q) = false, want true", id)
		}
	}
	invalid := []string{".a", "-a", "_a", "A", "has space", "éclair",
		"a/b", string(make([]byte, MaxSessionID+1))}
	for _, id := range invalid {
		if ValidSessionID(id) {
			t.Errorf("ValidSessionID(%q) = true, want false", id)
		}
	}
}

func TestObsSessionSegment(t *testing.T) {
	cases := map[string]string{
		"":        "default",
		"alpha":   "alpha",
		"a.b-c_d": "a_b_c_d",
	}
	for in, want := range cases {
		if got := obsSessionSegment(in); got != want {
			t.Errorf("obsSessionSegment(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSessionRoutingAndIsolation(t *testing.T) {
	alpha := newTaggedSession(t, 4, "alpha")
	beta := newTaggedSession(t, 4, "beta")
	srv := startServer(t, Options{Sessions: []SessionConfig{
		{ID: "alpha", Session: alpha},
		{ID: "beta", Session: beta},
	}})

	ca, err := DialSession(srv.Addr().String(), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := DialSession(srv.Addr().String(), "beta")
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	if ca.SessionID() != "alpha" || cb.SessionID() != "beta" {
		t.Fatalf("routed to %q / %q, want alpha / beta", ca.SessionID(), cb.SessionID())
	}

	// Search routes per session: each client only sees its own text.
	if res, err := ca.Search(index.Query{All: []string{"alpha"}}); err != nil || len(res) == 0 {
		t.Fatalf("alpha search via alpha client: %d results, err %v", len(res), err)
	}
	if res, err := ca.Search(index.Query{All: []string{"beta"}}); err == nil && len(res) != 0 {
		t.Fatalf("beta text leaked into alpha session: %d results", len(res))
	}
	if res, err := cb.Search(index.Query{All: []string{"beta"}}); err != nil || len(res) == 0 {
		t.Fatalf("beta search via beta client: %d results, err %v", len(res), err)
	}

	// Live isolation: flushes on beta never reach an alpha viewer.
	lv, err := ca.AttachLive()
	if err != nil {
		t.Fatal(err)
	}
	if err := lv.WaitScreen(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	before := lv.Screen().Hash()
	for i := 0; i < 10; i++ {
		if err := beta.Display().Submit(display.SolidFill(beta.Clock().Now(),
			display.NewRect(0, 0, 300, 300), display.Pixel(0xDEAD+i))); err != nil {
			t.Fatal(err)
		}
		if _, err := beta.Display().Flush(); err != nil {
			t.Fatal(err)
		}
	}
	lvb, err := cb.AttachLive()
	if err != nil {
		t.Fatal(err)
	}
	if err := lvb.WaitScreen(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := lv.Screen().Hash(); got != before {
		t.Error("beta flushes mutated an alpha live view")
	}
	if lv.Applied() != 0 {
		t.Errorf("alpha viewer applied %d commands from beta flushes", lv.Applied())
	}

	// The default session is the first registered one.
	cd := dialClient(t, srv)
	if cd.SessionID() != "alpha" {
		t.Errorf("default routed to %q, want alpha", cd.SessionID())
	}
	if st := srv.Stats(); st.SessionsActive != 2 {
		t.Errorf("SessionsActive %d, want 2", st.SessionsActive)
	}
}

// TestHelloTypedErrors is the satellite fix's unit test: both handshake
// rejection paths surface documented typed errors, not raw io errors.
func TestHelloTypedErrors(t *testing.T) {
	s := newTaggedSession(t, 2, "solo")
	srv := startServer(t, Options{
		Sessions:             []SessionConfig{{ID: "solo", Session: s}},
		MaxClientsPerSession: 1,
	})

	// Unknown session ID → ErrUnknownSession.
	if _, err := DialSession(srv.Addr().String(), "nope"); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("unknown-session dial error %v, want ErrUnknownSession", err)
	}

	// At client capacity → ErrBusy.
	c1, err := DialSession(srv.Addr().String(), "solo")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := DialSession(srv.Addr().String(), "solo"); !errors.Is(err, ErrBusy) {
		t.Errorf("over-capacity dial error %v, want ErrBusy", err)
	}
	if st := srv.Stats(); st.AdmissionRejects != 1 {
		t.Errorf("AdmissionRejects %d, want 1", st.AdmissionRejects)
	}

	// The slot frees when the admitted client leaves.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err := DialSession(srv.Addr().String(), "solo")
		if err == nil {
			c2.Close()
			break
		}
		if !errors.Is(err, ErrBusy) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("admission slot never released after client close")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A malformed ID never reaches the wire.
	if _, err := NewClientSession(nil, "Not Valid"); err == nil {
		t.Error("invalid local session id did not fail")
	}
}

func TestByteQuotaShedsAdmission(t *testing.T) {
	s := newTaggedSession(t, 2, "quota")
	srv := startServer(t, Options{
		Sessions:         []SessionConfig{{ID: "quota", Session: s}},
		SessionByteQuota: 1 << 20,
	})
	sh, ok := srv.mgr.route("quota")
	if !ok {
		t.Fatal("shard not registered")
	}
	// Simulate a session drowning in undrained send bytes.
	sh.queuedBytes.Store(1 << 20)
	if _, err := DialSession(srv.Addr().String(), "quota"); !errors.Is(err, ErrBusy) {
		t.Errorf("over-quota dial error %v, want ErrBusy", err)
	}
	sh.queuedBytes.Store(0)
	c, err := DialSession(srv.Addr().String(), "quota")
	if err != nil {
		t.Fatalf("under-quota dial failed: %v", err)
	}
	c.Close()
}

func TestQueuedBytesReconcileOnConnDeath(t *testing.T) {
	s := newTaggedSession(t, 2, "acct")
	srv := startServer(t, Options{
		Sessions:     []SessionConfig{{ID: "acct", Session: s}},
		SendQueue:    4,
		DrainTimeout: 200 * time.Millisecond,
	})
	sh, _ := srv.mgr.route("acct")
	c, err := DialSession(srv.Addr().String(), "acct")
	if err != nil {
		t.Fatal(err)
	}
	lv, err := c.AttachLive()
	if err != nil {
		t.Fatal(err)
	}
	if err := lv.WaitScreen(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Display().Submit(display.SolidFill(s.Clock().Now(),
			display.NewRect(i, i, 100, 100), display.Pixel(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Display().Flush(); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	// After the conn dies, every queued byte must be handed back.
	deadline := time.Now().Add(5 * time.Second)
	for sh.queuedBytes.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queuedBytes never reconciled: %d left", sh.queuedBytes.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPlaybackStreamBudget(t *testing.T) {
	s := newTaggedSession(t, 4, "budget")
	srv := startServer(t, Options{
		Sessions:             []SessionConfig{{ID: "budget", Session: s}},
		MaxStreamsPerSession: 1,
	})
	sh, _ := srv.mgr.route("budget")
	// Deterministically saturate the budget, then ask for a stream.
	if !sh.acquireStream() {
		t.Fatal("fresh shard refused its only stream slot")
	}
	if sh.acquireStream() {
		t.Fatal("stream budget not enforced at the shard")
	}
	c, err := DialSession(srv.Addr().String(), "budget")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rejects := srv.Stats().AdmissionRejects
	_, err = c.Playback(PlaybackRequest{Source: SourceSession, Mode: PlayCommands})
	var re *RemoteError
	if err == nil || !errors.As(err, &re) {
		t.Fatalf("over-budget playback error %v, want RemoteError", err)
	}
	if st := srv.Stats(); st.AdmissionRejects != rejects+1 {
		t.Errorf("AdmissionRejects %d, want %d", st.AdmissionRejects, rejects+1)
	}
	sh.releaseStream()
	ps, err := c.Playback(PlaybackRequest{Source: SourceSession, Mode: PlayCommands})
	if err != nil {
		t.Fatalf("playback after budget release: %v", err)
	}
	if err := ps.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestAddRemoveSession(t *testing.T) {
	a := newTaggedSession(t, 2, "alpha")
	srv := startServer(t, Options{Sessions: []SessionConfig{{ID: "alpha", Session: a}}})

	if err := srv.AddSession(SessionConfig{ID: "alpha", Session: a}); !errors.Is(err, ErrDuplicateSession) {
		t.Errorf("duplicate AddSession error %v, want ErrDuplicateSession", err)
	}
	if err := srv.AddSession(SessionConfig{ID: "bad id", Session: a}); err == nil {
		t.Error("invalid ID accepted")
	}
	if err := srv.AddSession(SessionConfig{ID: "empty"}); err == nil {
		t.Error("sourceless session accepted")
	}

	b := newTaggedSession(t, 2, "beta")
	if err := srv.AddSession(SessionConfig{ID: "beta", Session: b}); err != nil {
		t.Fatal(err)
	}
	got := srv.Sessions()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Sessions() = %v", got)
	}
	c, err := DialSession(srv.Addr().String(), "beta")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	if !srv.RemoveSession("beta") {
		t.Error("RemoveSession(beta) = false")
	}
	if srv.RemoveSession("beta") {
		t.Error("second RemoveSession(beta) = true")
	}
	if _, err := DialSession(srv.Addr().String(), "beta"); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("dial of removed session: %v, want ErrUnknownSession", err)
	}
	if st := srv.Stats(); st.SessionsActive != 1 {
		t.Errorf("SessionsActive %d, want 1", st.SessionsActive)
	}
}

// TestV1ClientReachesDefaultSession proves wire compatibility: a bare
// 12-byte protocol-1 hello routes to the default session and gets a
// version-1 answer it can decode.
func TestV1ClientReachesDefaultSession(t *testing.T) {
	s := newTaggedSession(t, 3, "legacy")
	srv := startServer(t, Options{Sessions: []SessionConfig{{ID: "legacy", Session: s}}})
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A v1 hello is exactly 12 bytes — no session-ID field.
	raw := encodeClientHello(clientHello{MinVersion: 1, MaxVersion: 1})[:12]
	if err := viewer.WriteFrame(nc, FrameClientHello, raw); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := viewer.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameServerHello {
		t.Fatalf("got frame %d, want server hello", kind)
	}
	h, err := decodeServerHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 1 {
		t.Errorf("negotiated version %d for a v1 client, want 1", h.Version)
	}
	// A v1 decoder stops at 22 bytes; the trailing field must still name
	// the default session for v2-aware readers.
	if h.SessionID != "legacy" {
		t.Errorf("server hello session %q, want legacy", h.SessionID)
	}
	// The conn is fully functional: run a search on it.
	if err := viewer.WriteFrame(nc, FrameRequest,
		encodeRequest(1, OpSearch, encodeSearchReq(SourceSession,
			index.EncodeQuery(index.Query{All: []string{"legacy"}})))); err != nil {
		t.Fatal(err)
	}
	kind, payload, err = viewer.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameResponse {
		t.Fatalf("got frame %d, want response", kind)
	}
	_, status, body, err := decodeResponse(payload)
	if err != nil || status != statusOK {
		t.Fatalf("search response status %d err %v", status, err)
	}
	res, err := index.DecodeResults(body)
	if err != nil || len(res) == 0 {
		t.Fatalf("v1 search: %d results, err %v", len(res), err)
	}
}

func TestSessionIDRoundTripsInHellos(t *testing.T) {
	ch := clientHello{MinVersion: 1, MaxVersion: 2, SessionID: "user-7.main"}
	got, err := decodeClientHello(encodeClientHello(ch))
	if err != nil {
		t.Fatal(err)
	}
	if got != ch {
		t.Errorf("client hello round trip: %+v != %+v", got, ch)
	}
	sh := serverHello{Version: 2, Width: 1024, Height: 768, Now: 5 * sec, SessionID: "user-7.main"}
	gotS, err := decodeServerHello(encodeServerHello(sh))
	if err != nil {
		t.Fatal(err)
	}
	if gotS != sh {
		t.Errorf("server hello round trip: %+v != %+v", gotS, sh)
	}
	// Malformed trailing fields are rejected, not silently defaulted.
	bad := append(encodeClientHello(clientHello{MinVersion: 1, MaxVersion: 2})[:12], 5, 'a', 'b')
	if _, err := decodeClientHello(bad); err == nil {
		t.Error("truncated session-ID field decoded")
	}
	if _, err := decodeClientHello(append(encodeClientHello(clientHello{MinVersion: 1, MaxVersion: 2})[:12], 2, 'A', 'B')); err == nil {
		t.Error("uppercase session ID decoded")
	}
}

func TestStatsRoundTripsFleetFields(t *testing.T) {
	in := Stats{ActiveClients: 1, TotalClients: 2, FramesSent: 3, BytesSent: 4,
		Searches: 5, SessionsActive: 8, AdmissionRejects: 13}
	cs := ClientStats{ID: 7, FramesSent: 9, Requests: 2, LiveStreams: 1}
	out, outC, err := decodeStatsResp(encodeStatsResp(in, cs))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("stats round trip: %+v != %+v", out, in)
	}
	if outC != cs {
		t.Errorf("client stats round trip: %+v != %+v", outC, cs)
	}
}
