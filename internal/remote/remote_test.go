package remote

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dejaview/internal/access"
	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/failpoint"
	"dejaview/internal/index"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
	"dejaview/internal/viewer"
)

const sec = simclock.Second

// newSession builds a session with a bit of scripted desktop history:
// typed text in the index and display commands in the record.
func newSession(t *testing.T, seconds int) *core.Session {
	t.Helper()
	s := core.NewSession(core.Config{
		// Frequent keyframes so short scripted sessions still exercise
		// seek starting points and keyframe playback.
		Record: record.Options{ScreenshotInterval: 2 * sec, ScreenshotMinChange: 0.01},
	})
	app := s.Registry().Register("Editor", "editor")
	win := app.AddComponent(nil, access.RoleWindow, "notes.txt - Editor", "")
	para := app.AddComponent(win, access.RoleParagraph, "", "remote access report")
	s.Registry().SetFocus(app)
	for i := 0; i < seconds; i++ {
		if err := s.Display().Submit(display.SolidFill(s.Clock().Now(),
			display.NewRect(0, (i*40)%700, 1024, 60), display.Pixel(i+1))); err != nil {
			t.Fatal(err)
		}
		app.SetText(para, "remote access report line "+string(rune('a'+i%26)))
		s.NoteKeyboardInput()
		if _, _, err := s.Tick(); err != nil {
			t.Fatal(err)
		}
		s.Clock().Advance(sec)
	}
	return s
}

// startServer serves a fresh daemon on a loopback listener and cleans it
// up with the test.
func startServer(t *testing.T, opts Options) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if opts.DrainTimeout == 0 {
		opts.DrainTimeout = 2 * time.Second
	}
	srv := Serve(ln, opts)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dialClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestHandshake(t *testing.T) {
	s := newSession(t, 3)
	srv := startServer(t, Options{Session: s})
	c := dialClient(t, srv)
	if w, h := c.Size(); w != 1024 || h != 768 {
		t.Errorf("hello size %dx%d", w, h)
	}
	if !c.HasSession() || c.HasArchive() {
		t.Errorf("hello flags: session %v archive %v", c.HasSession(), c.HasArchive())
	}
	if c.ServerTime() != s.Clock().Now() {
		t.Errorf("hello time %v, clock %v", c.ServerTime(), s.Clock().Now())
	}
}

func TestVersionNegotiationRejectsFutureClient(t *testing.T) {
	s := newSession(t, 1)
	srv := startServer(t, Options{Session: s})
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hello := encodeClientHello(clientHello{MinVersion: 99, MaxVersion: 100})
	if err := viewer.WriteFrame(nc, FrameClientHello, hello); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := viewer.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameNotice {
		t.Fatalf("got frame %d, want notice", kind)
	}
	code, _, err := decodeNotice(payload)
	if err != nil {
		t.Fatal(err)
	}
	if code != NoticeBadVersion {
		t.Errorf("notice code %d, want NoticeBadVersion", code)
	}
}

func TestLiveViewTracksSession(t *testing.T) {
	s := newSession(t, 3)
	srv := startServer(t, Options{Session: s})
	c := dialClient(t, srv)
	lv, err := c.AttachLive()
	if err != nil {
		t.Fatal(err)
	}
	if err := lv.WaitScreen(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The attach snapshot must match the session's screen exactly.
	if lv.Screen().Hash() != s.Display().Screen().Hash() {
		t.Fatal("initial live screen diverges from session screen")
	}
	// Stream a batch of updates and wait for them to apply remotely.
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Display().Submit(display.SolidFill(s.Clock().Now(),
			display.NewRect((i*30)%900, (i*50)%600, 100, 100), display.Pixel(0xBEEF+i))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Display().Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := lv.WaitApplied(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Commands may have merged server-side; converge on the screen hash.
	deadline := time.Now().Add(5 * time.Second)
	want := s.Display().Screen().Hash()
	for lv.Screen().Hash() != want {
		if time.Now().After(deadline) {
			t.Fatal("live view never converged to the session screen")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := lv.Detach(); err != nil {
		t.Fatal(err)
	}
}

func TestManyConcurrentLiveViewers(t *testing.T) {
	s := newSession(t, 2)
	srv := startServer(t, Options{Session: s})
	const clients = 8
	views := make([]*LiveView, clients)
	for i := range views {
		c := dialClient(t, srv)
		lv, err := c.AttachLive()
		if err != nil {
			t.Fatal(err)
		}
		if err := lv.WaitScreen(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		views[i] = lv
	}
	for i := 0; i < 10; i++ {
		if err := s.Display().Submit(display.SolidFill(s.Clock().Now(),
			display.NewRect(i*10, i*10, 200, 200), display.Pixel(i+100))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Display().Flush(); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Display().Screen().Hash()
	for i, lv := range views {
		deadline := time.Now().Add(5 * time.Second)
		for lv.Screen().Hash() != want {
			if time.Now().After(deadline) {
				t.Fatalf("viewer %d never converged", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if st := srv.Stats(); st.ActiveClients != clients {
		t.Errorf("active clients %d, want %d", st.ActiveClients, clients)
	}
}

// TestStalledClientEvicted is the core isolation property: a client that
// stops reading overflows its bounded queue and is evicted, while Submit
// and a healthy viewer proceed unimpeded.
func TestStalledClientEvicted(t *testing.T) {
	s := newSession(t, 1)
	srv := startServer(t, Options{Session: s, SendQueue: 4, DrainTimeout: 300 * time.Millisecond})

	// The stalled client: raw protocol handshake + attach, then never
	// read again.
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := viewer.WriteFrame(nc, FrameClientHello,
		encodeClientHello(clientHello{MinVersion: 1, MaxVersion: Version})); err != nil {
		t.Fatal(err)
	}
	if kind, _, err := viewer.ReadFrame(nc); err != nil || kind != FrameServerHello {
		t.Fatalf("handshake: kind %d err %v", kind, err)
	}
	if err := viewer.WriteFrame(nc, FrameRequest,
		encodeRequest(1, OpAttach, encodeAttachReq(SourceSession))); err != nil {
		t.Fatal(err)
	}
	// Do not read: the response, screenshot, and stream frames pile up.

	// A healthy viewer alongside it.
	healthy := dialClient(t, srv)
	lv, err := healthy.AttachLive()
	if err != nil {
		t.Fatal(err)
	}
	if err := lv.WaitScreen(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Large commands defeat kernel socket buffering: each pattern is
	// ~1 MiB encoded, so a few unread frames fill TCP and the app-level
	// queue (cap 4) overflows deterministically.
	pattern := make([]display.Pixel, 512*512)
	for i := range pattern {
		pattern[i] = display.Pixel(i)
	}
	var maxSubmit time.Duration
	for i := 0; i < 40; i++ {
		start := time.Now()
		if err := s.Display().Submit(display.PatternFill(s.Clock().Now(),
			display.NewRect(0, 0, 1024, 768), pattern, 512, 512)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Display().Flush(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > maxSubmit {
			maxSubmit = d
		}
	}
	// Submit+Flush must never have blocked on the stalled client. The
	// bound is generous: the work is encoding ~1 MiB, not waiting.
	if maxSubmit > 2*time.Second {
		t.Errorf("Submit/Flush stalled for %v behind a dead client", maxSubmit)
	}

	// The stalled client gets evicted...
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Evicted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled client never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ...and the healthy viewer still converges.
	want := s.Display().Screen().Hash()
	deadline = time.Now().Add(10 * time.Second)
	for lv.Screen().Hash() != want {
		if time.Now().After(deadline) {
			t.Fatal("healthy viewer starved by the evicted one")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := srv.Stats(); st.LiveDropped == 0 {
		t.Error("eviction without any dropped live frames counted")
	}
}

func TestSearchRPC(t *testing.T) {
	s := newSession(t, 5)
	srv := startServer(t, Options{Session: s})
	c := dialClient(t, srv)
	q := index.Query{All: []string{"remote"}}
	got, err := c.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.SearchIndex(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("remote search: %d results, direct: %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Time != want[i].Time || got[i].Matches != want[i].Matches {
			t.Errorf("result %d: remote %+v, direct %+v", i, got[i], want[i])
		}
	}
	// Server-side errors come back as RemoteError.
	if _, err := c.Search(index.Query{}); err == nil {
		t.Error("empty query did not fail")
	} else {
		var re *RemoteError
		if !errors.As(err, &re) {
			t.Errorf("empty query error %T: %v", err, err)
		}
	}
	// No archive behind this daemon.
	if _, err := c.SearchArchive(q); err == nil {
		t.Error("archive search on session-only daemon did not fail")
	}
}

func TestPlaybackStream(t *testing.T) {
	s := newSession(t, 8)
	srv := startServer(t, Options{Session: s})
	c := dialClient(t, srv)

	ps, err := c.Playback(PlaybackRequest{Source: SourceSession, Mode: PlayCommands, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Wait(); err != nil {
		t.Fatal(err)
	}
	// Replaying the full record must land on the session's final screen.
	if ps.Screen().Hash() != s.Display().Screen().Hash() {
		t.Error("full playback diverges from the live screen")
	}

	// A bounded window replays to the state as of its end time.
	ps, err = c.Playback(PlaybackRequest{Source: SourceSession, Mode: PlayCommands, Start: 0, End: 4 * sec})
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Wait(); err != nil {
		t.Fatal(err)
	}
	want, err := s.Browse(4 * sec)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Screen().Hash() != want.Hash() {
		t.Error("windowed playback diverges from Browse at the window end")
	}

	// Keyframe mode: fast-forward screenshots only.
	ps, err = c.Playback(PlaybackRequest{Source: SourceSession, Mode: PlayKeyframes, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Wait(); err != nil {
		t.Fatal(err)
	}
	if ps.Screenshots() < 2 {
		t.Errorf("keyframe playback sent %d screenshots", ps.Screenshots())
	}
	if ps.Commands() != 0 {
		t.Errorf("keyframe playback sent %d commands", ps.Commands())
	}
}

func TestPlaybackFromEmptyRecordFails(t *testing.T) {
	s := core.NewSession(core.Config{})
	srv := startServer(t, Options{Session: s})
	c := dialClient(t, srv)
	if _, err := c.Playback(PlaybackRequest{Source: SourceSession}); err == nil {
		t.Error("playback over an empty record did not fail")
	}
}

func TestStatsRPCAndInput(t *testing.T) {
	s := newSession(t, 3)
	srv := startServer(t, Options{Session: s})
	c := dialClient(t, srv)
	if err := c.SendKey(s.Clock().Now(), 'x', true); err != nil {
		t.Fatal(err)
	}
	if err := c.SendPointerMove(s.Clock().Now(), 10, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(index.Query{All: []string{"remote"}}); err != nil {
		t.Fatal(err)
	}
	// Input frames race the stats request; poll until counted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, cs, err := c.ServerStats()
		if err != nil {
			t.Fatal(err)
		}
		if st.InputEvents >= 2 && st.Searches >= 1 && cs.Requests >= 1 && st.ActiveClients == 1 {
			if cs.ID == 0 {
				t.Error("client stats missing connection id")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v %+v", st, cs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestArchiveDaemon(t *testing.T) {
	s := newSession(t, 6)
	dir := t.TempDir()
	if err := s.SaveArchive(dir); err != nil {
		t.Fatal(err)
	}
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, Options{Archive: a})
	c := dialClient(t, srv)
	if c.HasSession() || !c.HasArchive() {
		t.Errorf("hello flags: session %v archive %v", c.HasSession(), c.HasArchive())
	}
	// Live attach must fail cleanly.
	if _, err := c.AttachLive(); err == nil {
		t.Error("live attach on archive-only daemon did not fail")
	}
	res, err := c.SearchArchive(index.Query{All: []string{"remote"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Error("no archive search results")
	}
	ps, err := c.Playback(PlaybackRequest{Source: SourceArchive, Mode: PlayCommands})
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Wait(); err != nil {
		t.Fatal(err)
	}
	if ps.Screen() == nil {
		t.Fatal("archive playback produced no screen")
	}
}

func TestGracefulShutdownNotifiesClients(t *testing.T) {
	s := newSession(t, 2)
	srv := startServer(t, Options{Session: s, DrainTimeout: 2 * time.Second})
	c := dialClient(t, srv)
	lv, err := c.AttachLive()
	if err != nil {
		t.Fatal(err)
	}
	if err := lv.WaitScreen(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The client learns it was a graceful shutdown, not a dropped conn.
	deadline := time.Now().Add(5 * time.Second)
	for !errors.Is(c.Err(), ErrShutdown) {
		if time.Now().After(deadline) {
			t.Fatalf("client error %v, want ErrShutdown", c.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := lv.Err(); !errors.Is(err, ErrShutdown) {
		t.Errorf("live view error %v, want ErrShutdown", err)
	}
	if _, err := c.Search(index.Query{All: []string{"x"}}); !errors.Is(err, ErrShutdown) {
		t.Errorf("post-shutdown search error %v, want ErrShutdown", err)
	}
}

func TestServerCloseIdempotentAndFastWithIdleClients(t *testing.T) {
	s := newSession(t, 1)
	srv := startServer(t, Options{Session: s, DrainTimeout: 5 * time.Second})
	for i := 0; i < 4; i++ {
		dialClient(t, srv)
	}
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("graceful close of idle clients took %v", d)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConnFailpointInjectsClientVisibleErrors(t *testing.T) {
	defer failpoint.Reset()
	s := newSession(t, 3)
	srv := startServer(t, Options{Session: s, DrainTimeout: 300 * time.Millisecond})

	// The failpoint's byte counter spans the conn's reads and writes:
	// the handshake moves well under 256 bytes, so it survives, and the
	// search traffic crosses the boundary within a few requests.
	failpoint.Arm("remote/conn", failpoint.Policy{Mode: failpoint.ModeError, AfterBytes: 256})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("handshake should survive the byte budget: %v", err)
	}
	defer c.Close()
	var opErr error
	for i := 0; i < 10 && opErr == nil; i++ {
		_, opErr = c.Search(index.Query{All: []string{"remote"}})
	}
	if opErr == nil {
		t.Fatal("no error surfaced through an injected conn fault")
	}
	if !errors.Is(opErr, ErrConnClosed) && !errors.Is(opErr, ErrShutdown) {
		t.Errorf("injected fault surfaced as %v, want wrapped ErrConnClosed", opErr)
	}
	failpoint.Reset()

	// The daemon itself survives: a fresh client works.
	c2 := dialClient(t, srv)
	if _, err := c2.Search(index.Query{All: []string{"remote"}}); err != nil {
		t.Fatalf("daemon unhealthy after injected conn fault: %v", err)
	}
}

func TestConcurrentMixedWorkloads(t *testing.T) {
	s := newSession(t, 6)
	srv := startServer(t, Options{Session: s})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			lv, err := c.AttachLive()
			if err != nil {
				errs <- err
				return
			}
			if err := lv.WaitScreen(10 * time.Second); err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 5; j++ {
				if _, err := c.Search(index.Query{All: []string{"remote"}}); err != nil {
					errs <- err
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			ps, err := c.Playback(PlaybackRequest{Source: SourceSession, Mode: PlayCommands})
			if err != nil {
				errs <- err
				return
			}
			if err := ps.Wait(); err != nil {
				errs <- err
			}
		}()
	}
	flushDone := make(chan struct{})
	go func() {
		defer close(flushDone)
		for i := 0; i < 50; i++ {
			s.Display().Submit(display.SolidFill(s.Clock().Now(),
				display.NewRect(i%800, i%600, 50, 50), display.Pixel(i)))
			s.Display().Flush()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-flushDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
