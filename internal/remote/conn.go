package remote

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dejaview/internal/display"
	"dejaview/internal/failpoint"
	"dejaview/internal/index"
	"dejaview/internal/obs"
	"dejaview/internal/playback"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
	"dejaview/internal/viewer"
)

var (
	errConnDown     = errors.New("remote: connection down")
	errNoSession    = errors.New("remote: daemon is not serving a live session")
	errNoArchive    = errors.New("remote: daemon is not serving an archive")
	errStreamBudget = errors.New("remote: busy: session at playback-stream capacity")
)

// outFrame is one queued protocol frame.
type outFrame struct {
	kind    byte
	payload []byte
}

// conn is one served connection. A dedicated writer goroutine drains the
// bounded send queue; the reader goroutine dispatches requests; playback
// streams run on their own goroutines and block on the queue
// (backpressure) while live streams never block (overflow evicts).
type conn struct {
	srv *Server
	nc  net.Conn
	id  uint64
	// sh is the session shard the hello routed to. It is written once
	// during the handshake, before the writer goroutine starts and
	// before any sink attaches, so later reads from those goroutines are
	// ordered by the goroutine spawn / display-lock edges.
	sh *shard
	// r and bw carry the `remote/conn` failpoint, so tests can inject
	// read/write faults on the server side of the wire.
	r  interface{ Read([]byte) (int, error) }
	bw *bufio.Writer

	sendQ chan outFrame
	quit  chan struct{} // closed → writer drains then exits
	dead  chan struct{} // closed when the writer is gone and nc is closed

	quitOnce  sync.Once
	evictOnce sync.Once
	forceOnce sync.Once
	pbWG      sync.WaitGroup // playback stream goroutines

	mu     sync.Mutex
	live   map[uint32]*liveStream
	notice []byte // final frame the writer emits before closing

	// Per-client counters are atomics, not fields under mu: countFrame
	// runs on the writer goroutine for every frame while request handlers
	// and stats snapshots read concurrently, so mutex-free accounting
	// keeps the hot path lock-free and the reads race-clean.
	framesSent, bytesSent, requests atomic.Uint64
	evicted                         atomic.Bool
	// queued tracks this conn's bytes sitting in sendQ (enqueued minus
	// written). Its residue is charged back to the shard's byte quota
	// when the conn dies, so frames the writer never drained don't leak
	// quota.
	queued atomic.Int64
}

func newConn(s *Server, nc net.Conn, id uint64) *conn {
	return &conn{
		srv:   s,
		nc:    nc,
		id:    id,
		r:     failpoint.Reader("remote/conn", nc),
		bw:    bufio.NewWriterSize(failpoint.Writer("remote/conn", nc), 32<<10),
		sendQ: make(chan outFrame, s.opts.SendQueue),
		quit:  make(chan struct{}),
		dead:  make(chan struct{}),
		live:  map[uint32]*liveStream{},
	}
}

func (c *conn) run() {
	defer c.forceClose()
	if err := c.handshake(); err != nil {
		if c.sh != nil {
			c.sh.release() // admitted but the hello write failed
		}
		return
	}
	go c.writeLoop()
	c.readLoop()
	c.shutdown(0, "")
	<-c.dead
	c.pbWG.Wait()
	// Everything that could enqueue is finished (reader done, playback
	// goroutines joined, live sinks detached before quit closed), so the
	// residue in c.queued is exactly the undrained bytes to hand back.
	c.sh.queuedBytes.Add(-c.queued.Swap(0))
	c.sh.release()
}

func (c *conn) handshake() error {
	//lint:ignore wallclock net.Conn deadlines are host wall-clock by contract; the handshake timeout guards a real socket, not replayable state
	c.nc.SetReadDeadline(time.Now().Add(c.srv.opts.HandshakeTimeout))
	kind, payload, err := viewer.ReadFrame(c.r)
	if err != nil {
		return err
	}
	if kind != FrameClientHello {
		return c.rejectHello(NoticeError, fmt.Sprintf("expected client hello, got frame %d", kind))
	}
	h, err := decodeClientHello(payload)
	if err != nil {
		return c.rejectHello(NoticeError, err.Error())
	}
	if h.MinVersion > Version {
		c.rejectHello(NoticeBadVersion,
			fmt.Sprintf("server speaks protocol %d, client requires >= %d", Version, h.MinVersion))
		return ErrVersion
	}
	ver := Version
	if int(h.MaxVersion) < ver {
		ver = int(h.MaxVersion)
	}
	sh, ok := c.srv.mgr.route(h.SessionID)
	if !ok {
		return c.rejectHello(NoticeUnknownSession,
			fmt.Sprintf("unknown session %q", h.SessionID))
	}
	if reason, ok := sh.admit(); !ok {
		obsAdmissionRejects.Inc()
		return c.rejectHello(NoticeBusy,
			fmt.Sprintf("session %q: %s", sh.id, reason))
	}
	// Under c.mu because a server Close racing the handshake reads c.sh
	// from the shutdown goroutine (detachAll); every other reader runs on
	// a goroutine spawned after this write.
	c.mu.Lock()
	c.sh = sh
	c.mu.Unlock()
	c.nc.SetReadDeadline(time.Time{})
	hello := outFrame{FrameServerHello, encodeServerHello(sh.helloFor(uint16(ver)))}
	if err := viewer.WriteFrame(c.bw, hello.kind, hello.payload); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	c.countFrame(hello)
	return nil
}

// rejectHello writes a best-effort notice directly (the writer goroutine
// is not running yet) and reports the failure.
func (c *conn) rejectHello(code uint8, msg string) error {
	//lint:ignore wallclock error-notice write deadline bounds a real socket write
	c.nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
	viewer.WriteFrame(c.bw, FrameNotice, encodeNotice(code, msg))
	c.bw.Flush()
	return protoErrf("%s", msg)
}

func (c *conn) readLoop() {
	for {
		kind, payload, err := viewer.ReadFrame(c.r)
		if err != nil {
			return
		}
		switch kind {
		case viewer.FrameInput:
			e, err := viewer.DecodeInput(payload)
			if err != nil {
				c.shutdown(NoticeError, err.Error())
				return
			}
			obsInputEvents.Inc()
			if s := c.sh.session; s != nil {
				if e.Kind == viewer.InputKey {
					s.NoteKeyboardInput()
				} else {
					s.NotePointerInput()
				}
			}
		case FrameRequest:
			id, op, body, err := decodeRequest(payload)
			if err != nil {
				c.shutdown(NoticeError, err.Error())
				return
			}
			c.requests.Add(1)
			t0 := obs.StartTimer()
			c.handleRequest(id, op, body)
			// Playback streams on their own goroutine; this measures the
			// dispatch (seek + response) latency for those, full handling
			// for everything else.
			t0.Done(obsRPCMS)
		default:
			c.shutdown(NoticeError, fmt.Sprintf("unexpected frame kind %d", kind))
			return
		}
	}
}

// handleRequest dispatches one request on the reader goroutine; only
// playback moves to its own goroutine (its stream is long-lived).
func (c *conn) handleRequest(id uint32, op uint8, body []byte) {
	switch op {
	case OpAttach:
		c.handleAttach(id, body)
	case OpDetach:
		c.handleDetach(id, body)
	case OpSearch:
		c.handleSearch(id, body)
	case OpPlayback:
		req, err := decodePlaybackReq(body)
		if err != nil {
			c.respondErr(id, err)
			return
		}
		store, err := c.sh.storeFor(req.Source)
		if err != nil {
			c.respondErr(id, err)
			return
		}
		// The stream runs on its own goroutine for the life of the
		// playback; charge it against the session's goroutine budget and
		// shed the request if the session is saturated.
		if !c.sh.acquireStream() {
			obsAdmissionRejects.Inc()
			c.respondErr(id, errStreamBudget)
			return
		}
		obsPlaybacks.Inc()
		c.pbWG.Add(1)
		go func() {
			defer c.pbWG.Done()
			defer c.sh.releaseStream()
			c.servePlayback(id, req, store)
		}()
	case OpStats:
		c.send(FrameResponse, encodeResponse(id, statusOK,
			encodeStatsResp(c.srv.Stats(), c.snapshotStats())))
	case OpStatsSnapshot:
		body, err := encodeStatsSnapshot(id, c.srv.StatsSnapshot())
		if err != nil {
			c.respondErr(id, err)
			return
		}
		c.send(FrameStatsSnapshot, body)
	default:
		c.respondErr(id, protoErrf("unknown op %d", op))
	}
}

func (c *conn) handleAttach(id uint32, body []byte) {
	if _, err := decodeAttachReq(body); err != nil {
		c.respondErr(id, err)
		return
	}
	sess := c.sh.session
	if sess == nil {
		c.respondErr(id, errNoSession)
		return
	}
	ls := &liveStream{c: c, sh: c.sh, id: id}
	c.mu.Lock()
	if c.live == nil {
		c.mu.Unlock()
		c.respondErr(id, errConnDown)
		return
	}
	if _, dup := c.live[id]; dup {
		c.mu.Unlock()
		c.respondErr(id, protoErrf("duplicate stream id %d", id))
		return
	}
	c.live[id] = ls
	c.mu.Unlock()

	// Snapshot + attach atomically: every command after the snapshot
	// lands in ls.pre until the stream is primed. Queue order is then
	// response → screenshot → buffered commands → live commands.
	screen := sess.Display().AttachViewerWithScreen(ls)
	w, h := screen.Size()
	if c.send(FrameResponse, encodeResponse(id, statusOK, encodeAttachResp(w, h))) != nil {
		return
	}
	if c.send(FrameStreamData, encodeStreamData(id, StreamScreenshot,
		display.EncodeScreenshot(nil, screen))) != nil {
		return
	}
	ls.prime()
}

func (c *conn) handleDetach(id uint32, body []byte) {
	sid, err := decodeDetachReq(body)
	if err != nil {
		c.respondErr(id, err)
		return
	}
	c.mu.Lock()
	ls := c.live[sid]
	delete(c.live, sid)
	c.mu.Unlock()
	if ls == nil {
		c.respondErr(id, protoErrf("unknown stream id %d", sid))
		return
	}
	if sess := c.sh.session; sess != nil {
		sess.Display().DetachViewer(ls)
	}
	ls.markDead()
	c.send(FrameStreamEnd, encodeStreamEnd(sid, statusOK, "detached"))
	c.send(FrameResponse, encodeResponse(id, statusOK, nil))
}

func (c *conn) handleSearch(id uint32, body []byte) {
	src, qb, err := decodeSearchReq(body)
	if err != nil {
		c.respondErr(id, err)
		return
	}
	search, err := c.sh.searchFor(src)
	if err != nil {
		c.respondErr(id, err)
		return
	}
	q, err := index.DecodeQuery(qb)
	if err != nil {
		c.respondErr(id, err)
		return
	}
	res, err := search(q)
	if err != nil {
		c.respondErr(id, err)
		return
	}
	obsSearches.Inc()
	c.send(FrameResponse, encodeResponse(id, statusOK, index.EncodeResults(res)))
}

// servePlayback drives one playback stream: seek, respond, stream the
// seeked screen, then the window's commands or keyframes. Sends block on
// this client's queue — playback applies backpressure instead of
// evicting.
func (c *conn) servePlayback(id uint32, req PlaybackRequest, store *record.Store) {
	p := playback.New(store, 8)
	if err := p.SeekTo(req.Start); err != nil {
		c.respondErr(id, err)
		return
	}
	if c.send(FrameResponse, encodeResponse(id, statusOK, nil)) != nil {
		return
	}
	if c.send(FrameStreamData, encodeStreamData(id, StreamScreenshot,
		display.EncodeScreenshot(nil, p.Screen()))) != nil {
		return
	}
	var err error
	if req.Mode == PlayKeyframes {
		err = c.streamKeyframes(id, store, p.Position(), req.End, req.Rate)
	} else {
		err = c.streamCommands(id, store, p.Position(), req.End, req.Rate)
	}
	switch {
	case err == nil:
		c.send(FrameStreamEnd, encodeStreamEnd(id, statusOK, ""))
	case errors.Is(err, errConnDown):
	default:
		c.send(FrameStreamEnd, encodeStreamEnd(id, statusError, err.Error()))
	}
}

// streamCommands streams every command in (pos, end]; end 0 means to the
// end of the record.
func (c *conn) streamCommands(id uint32, store *record.Store, pos, end simclock.Time, rate float64) error {
	// Start decoding at the latest keyframe at or before pos instead of
	// walking the whole command log.
	var off int64
	for _, e := range store.Timeline() {
		if e.Time > pos {
			break
		}
		off = e.CmdOff
	}
	last := pos
	for off < store.EndOfCommands() {
		cmd, next, err := store.DecodeCommandAt(off)
		if err != nil {
			return err
		}
		off = next
		if cmd.Time <= pos {
			continue
		}
		if end != 0 && cmd.Time > end {
			return nil
		}
		if rate > 0 && !c.pace(time.Duration(float64(cmd.Time-last)/rate)) {
			return errConnDown
		}
		last = cmd.Time
		buf, err := display.EncodeCommand(nil, &cmd)
		if err != nil {
			return err
		}
		if err := c.send(FrameStreamData, encodeStreamData(id, StreamCommand, buf)); err != nil {
			return err
		}
	}
	return nil
}

// streamKeyframes streams the recorded keyframe screenshots in (pos, end]
// — the fast-forward presentation.
func (c *conn) streamKeyframes(id uint32, store *record.Store, pos, end simclock.Time, rate float64) error {
	last := pos
	for _, e := range store.Timeline() {
		if e.Time <= pos {
			continue
		}
		if end != 0 && e.Time > end {
			return nil
		}
		if rate > 0 && !c.pace(time.Duration(float64(e.Time-last)/rate)) {
			return errConnDown
		}
		last = e.Time
		fb, err := store.ScreenshotAt(e)
		if err != nil {
			return err
		}
		if err := c.send(FrameStreamData, encodeStreamData(id, StreamScreenshot,
			display.EncodeScreenshot(nil, fb))); err != nil {
			return err
		}
	}
	return nil
}

// pace sleeps d, abandoning the wait if the connection goes down.
func (c *conn) pace(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	//lint:ignore wallclock playback pacing delivers frames to live clients in host real time by design
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.quit:
		return false
	}
}

// chargeQueued accounts bytes entering this conn's send queue against
// the session's byte quota; dischargeQueued reverses it at dequeue.
func (c *conn) chargeQueued(n int64) {
	c.queued.Add(n)
	c.sh.queuedBytes.Add(n)
}

func (c *conn) dischargeQueued(n int64) {
	c.queued.Add(-n)
	c.sh.queuedBytes.Add(-n)
}

// send enqueues a frame, blocking while the queue is full: responses and
// playback streams apply backpressure rather than overflow.
func (c *conn) send(kind byte, payload []byte) error {
	select {
	case c.sendQ <- outFrame{kind, payload}:
		c.chargeQueued(int64(5 + len(payload)))
		obsSendQDepth.Observe(float64(len(c.sendQ)))
		return nil
	case <-c.quit:
		return errConnDown
	}
}

// enqueueLive enqueues a live display frame without ever blocking. A
// false return means the bounded queue is full — the caller evicts.
func (c *conn) enqueueLive(kind byte, payload []byte) bool {
	select {
	case c.sendQ <- outFrame{kind, payload}:
		c.chargeQueued(int64(5 + len(payload)))
		obsSendQDepth.Observe(float64(len(c.sendQ)))
		return true
	default:
	}
	obsLiveDropped.Inc()
	select {
	case <-c.quit:
		return true // already going down: a quiet drop, not an eviction
	default:
		return false
	}
}

func (c *conn) respondErr(id uint32, err error) {
	c.send(FrameResponse, encodeResponse(id, statusError, []byte(err.Error())))
}

// evict tears the connection down because its send queue overflowed.
// Callers may hold the display server's update lock, so everything
// blocking happens on the shutdown goroutine.
func (c *conn) evict() {
	c.evictOnce.Do(func() {
		obsEvictions.Inc()
		c.evicted.Store(true)
		c.shutdown(NoticeEvicted, "send queue overflow: client too slow")
	})
}

// shutdown begins connection teardown: detach live sinks, stop the
// writer (which drains the queue, emits the notice, and closes the
// socket). Safe to call from any goroutine, including under the display
// server's update lock — all blocking work runs on a fresh goroutine.
// Code 0 means no notice frame.
func (c *conn) shutdown(code uint8, msg string) {
	c.quitOnce.Do(func() {
		if code != 0 {
			c.mu.Lock()
			c.notice = encodeNotice(code, msg)
			c.mu.Unlock()
		}
		//lint:ignore goroutine-lifecycle bounded one-shot teardown; it runs three non-blocking steps and exits unconditionally
		go func() {
			c.detachAll()
			close(c.quit)
			// Unstick a writer mid-write to a stalled client: give the
			// drain a deadline, after which writes error and the writer
			// force-closes.
			//lint:ignore wallclock drain deadline bounds a real socket write during shutdown
			c.nc.SetWriteDeadline(time.Now().Add(c.srv.opts.DrainTimeout))
		}()
	})
}

// forceClose abandons any drain in progress.
func (c *conn) forceClose() {
	c.forceOnce.Do(func() { c.nc.Close() })
}

func (c *conn) detachAll() {
	c.mu.Lock()
	live := c.live
	c.live = nil
	sh := c.sh // may be nil: Close can race a conn still in handshake
	c.mu.Unlock()
	for _, ls := range live {
		if sh != nil && sh.session != nil {
			sh.session.Display().DetachViewer(ls)
		}
		ls.markDead()
	}
}

func (c *conn) writeLoop() {
	defer close(c.dead)
	defer c.forceClose()
	var werr error
	write := func(f outFrame) {
		if werr != nil {
			return // keep draining after a dead connection
		}
		if err := viewer.WriteFrame(c.bw, f.kind, f.payload); err != nil {
			werr = err
			c.shutdown(0, "")
			return
		}
		c.countFrame(f)
	}
	for {
		select {
		case f := <-c.sendQ:
			c.dischargeQueued(int64(5 + len(f.payload)))
			write(f)
			if werr == nil && len(c.sendQ) == 0 {
				if err := c.bw.Flush(); err != nil {
					werr = err
					c.shutdown(0, "")
				}
			}
		case <-c.quit:
			for drained := false; !drained; {
				select {
				case f := <-c.sendQ:
					c.dischargeQueued(int64(5 + len(f.payload)))
					write(f)
				default:
					drained = true
				}
			}
			c.mu.Lock()
			notice := c.notice
			c.mu.Unlock()
			if werr == nil {
				if notice != nil {
					//lint:ignore wallclock shutdown-notice write deadline bounds a real socket write
					c.nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
					write(outFrame{FrameNotice, notice})
				}
				c.bw.Flush()
			}
			return
		}
	}
}

func (c *conn) countFrame(f outFrame) {
	n := uint64(5 + len(f.payload))
	obsFramesSent.Inc()
	obsBytesSent.Add(n)
	c.framesSent.Add(1)
	c.bytesSent.Add(n)
	c.sh.countFrame(n)
}

func (c *conn) snapshotStats() ClientStats {
	c.mu.Lock()
	live := len(c.live)
	c.mu.Unlock()
	return ClientStats{
		ID:          c.id,
		FramesSent:  c.framesSent.Load(),
		BytesSent:   c.bytesSent.Load(),
		Requests:    c.requests.Load(),
		LiveStreams: live,
		Evicted:     c.evicted.Load(),
	}
}

// liveStream is one attached live view: a display.Sink whose callback
// runs under the display server's update lock, so it must never block.
// Until primed (attach response + initial screenshot are queued), encoded
// commands accumulate in pre to preserve stream order.
type liveStream struct {
	c  *conn
	sh *shard
	id uint32

	mu     sync.Mutex
	primed bool
	dead   bool
	pre    [][]byte
}

// HandleCommand implements display.Sink. It never blocks: the frame is
// either enqueued or the connection is evicted. The submit histogram
// times this whole path — it runs under the display server's update
// lock, so its latency is exactly what admission control protects.
func (ls *liveStream) HandleCommand(cmd *display.Command) {
	t0 := obs.StartTimer()
	defer t0.Done(ls.sh.obsSubmit)
	buf := ls.sh.encodeShared(cmd)
	if buf == nil {
		return
	}
	ls.mu.Lock()
	if ls.dead {
		ls.mu.Unlock()
		return
	}
	if !ls.primed {
		if len(ls.pre) >= ls.c.srv.opts.SendQueue {
			ls.dead = true
			ls.pre = nil
			ls.mu.Unlock()
			ls.c.evict()
			return
		}
		ls.pre = append(ls.pre, buf)
		ls.mu.Unlock()
		return
	}
	ok := ls.c.enqueueLive(FrameStreamData, encodeStreamData(ls.id, StreamCommand, buf))
	ls.mu.Unlock()
	if !ok {
		ls.markDead()
		ls.c.evict()
	}
}

// prime flushes the pre-attach buffer behind the initial screenshot and
// switches the stream to direct enqueue. Runs on the reader goroutine;
// holding ls.mu here is safe because enqueueLive never blocks.
func (ls *liveStream) prime() {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.dead {
		return
	}
	for _, buf := range ls.pre {
		if !ls.c.enqueueLive(FrameStreamData, encodeStreamData(ls.id, StreamCommand, buf)) {
			ls.dead = true
			ls.pre = nil
			ls.c.evict() // non-blocking: teardown happens on its own goroutine
			return
		}
	}
	ls.pre = nil
	ls.primed = true
}

func (ls *liveStream) markDead() {
	ls.mu.Lock()
	ls.dead = true
	ls.pre = nil
	ls.mu.Unlock()
}
