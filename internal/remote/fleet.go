package remote

import (
	"sync/atomic"

	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/index"
	"dejaview/internal/obs"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

// SessionConfig registers one served session with a daemon. At least one
// of Session or Archive must be set; both together serve live viewing
// plus archived search/playback under one ID.
type SessionConfig struct {
	// ID names the session on the wire (see ValidSessionID). Clients
	// route to it via the protocol-2 hello session-ID field.
	ID string
	// Session is a live desktop session: live viewing, input, search,
	// playback over its record.
	Session *core.Session
	// Archive is a reopened archive: search and playback only.
	Archive *core.Archive
}

// shard is one served session's slice of the daemon: its handles, its
// admission-control budgets, its per-session instruments, and its shared
// encode cache. Everything a conn touches per-request routes through its
// shard, so sessions never contend on each other's state.
type shard struct {
	id      string
	session *core.Session
	archive *core.Archive

	// Budgets, copied from Options at registration; 0 means unlimited.
	maxClients int   // concurrent connections admitted to this session
	byteQuota  int64 // outstanding queued send bytes across its conns
	maxStreams int   // concurrent playback-stream goroutines

	// Load accounting. clients and streams are occupancy counts;
	// queuedBytes tracks bytes sitting in send queues (incremented at
	// enqueue, decremented at dequeue), the signal admission control
	// reads to shed load before any queue blocks the display path.
	clients     atomic.Int64
	queuedBytes atomic.Int64
	streams     atomic.Int64

	// Per-session throughput instruments, named
	// remote.session.<id>.{frames_sent,bytes_sent,submit_ms}. The
	// submit histogram times liveStream.HandleCommand — the display
	// Submit fan-out path whose latency admission control protects.
	obsFrames *obs.Counter
	obsBytes  *obs.Counter
	obsSubmit *obs.Histogram

	// enc is the per-flush shared command-encode cache: every live sink
	// of this session is invoked under its display server's update lock,
	// so one encode serves every attached client of a flush. Guarded by
	// that lock, not by any mutex here.
	enc struct {
		seq  uint64
		last *display.Command
		buf  []byte
	}
}

// obsSessionSegment maps a wire session ID onto one obs-name segment:
// '-' and '.' (legal on the wire, meaningful to the obs grammar) become
// '_'. The default session's empty ID becomes "default".
func obsSessionSegment(id string) string {
	if id == "" {
		return "default"
	}
	b := []byte(id)
	for i, c := range b {
		if c == '-' || c == '.' {
			b[i] = '_'
		}
	}
	return string(b)
}

func newShard(cfg SessionConfig, opts *Options) *shard {
	seg := obsSessionSegment(cfg.ID)
	return &shard{
		id:         cfg.ID,
		session:    cfg.Session,
		archive:    cfg.Archive,
		maxClients: opts.MaxClientsPerSession,
		byteQuota:  opts.SessionByteQuota,
		maxStreams: opts.MaxStreamsPerSession,
		obsFrames:  obs.Default.Counter("remote.session." + seg + ".frames_sent"),
		obsBytes:   obs.Default.Counter("remote.session." + seg + ".bytes_sent"),
		obsSubmit:  obs.Default.Histogram("remote.session."+seg+".submit_ms", obs.LatencyBuckets...),
	}
}

// admit runs admission control for one new connection. It must be cheap
// and non-blocking — it runs on the accept/handshake path — and it sheds
// load with a reason before any of this session's queues can block the
// display Submit path. A false return leaves no occupancy behind.
func (sh *shard) admit() (reason string, ok bool) {
	if sh.maxClients > 0 && sh.clients.Add(1) > int64(sh.maxClients) {
		sh.clients.Add(-1)
		return "session at client capacity", false
	}
	if sh.byteQuota > 0 && sh.queuedBytes.Load() >= sh.byteQuota {
		sh.clients.Add(-1)
		return "session over byte quota", false
	}
	return "", true
}

// release returns one connection's admission slot.
func (sh *shard) release() { sh.clients.Add(-1) }

// acquireStream claims one playback-goroutine slot; the caller must
// releaseStream when the stream goroutine exits.
func (sh *shard) acquireStream() bool {
	if sh.maxStreams > 0 && sh.streams.Add(1) > int64(sh.maxStreams) {
		sh.streams.Add(-1)
		return false
	}
	return true
}

func (sh *shard) releaseStream() { sh.streams.Add(-1) }

// countFrame records one written frame against the session.
func (sh *shard) countFrame(n uint64) {
	sh.obsFrames.Inc()
	sh.obsBytes.Add(n)
}

// encodeShared encodes one display command once per flush dispatch,
// shared across every live sink attached to this session. Only called
// under the session's display update lock (from Sink.HandleCommand),
// which is what makes the unsynchronized cache safe. The (pointer, seq)
// pair guards against a recycled command allocation.
func (sh *shard) encodeShared(c *display.Command) []byte {
	if sh.enc.last == c && sh.enc.seq == c.Seq {
		return sh.enc.buf
	}
	buf, err := display.EncodeCommand(nil, c)
	if err != nil {
		return nil // undeliverable command: drop rather than stall the flush
	}
	sh.enc.last, sh.enc.seq, sh.enc.buf = c, c.Seq, buf
	return buf
}

// helloFor builds the server hello for a connection routed here; a live
// session wins when both sources are present. ver is the negotiated
// protocol version.
func (sh *shard) helloFor(ver uint16) serverHello {
	h := serverHello{Version: ver, SessionID: sh.id}
	if sh.session != nil {
		h.Flags |= flagHasSession
		w, hh := sh.session.Display().Size()
		h.Width, h.Height = uint32(w), uint32(hh)
		h.Now = sh.session.Clock().Now()
	}
	if sh.archive != nil {
		h.Flags |= flagHasArchive
		if sh.session == nil {
			h.Width = uint32(sh.archive.Width)
			h.Height = uint32(sh.archive.Height)
			h.Now = sh.archive.End
		}
	}
	return h
}

// storeFor resolves a request source to this session's display record.
func (sh *shard) storeFor(src Source) (*record.Store, error) {
	switch src {
	case SourceSession:
		if sh.session == nil {
			return nil, errNoSession
		}
		// Flush so the stream covers everything recorded up to now.
		sh.session.Recorder().Flush()
		return sh.session.Recorder().Store(), nil
	case SourceArchive:
		if sh.archive == nil {
			return nil, errNoArchive
		}
		return sh.archive.Store, nil
	}
	return nil, protoErrf("source %d", src)
}

// searchFor resolves a request source to this session's index search.
func (sh *shard) searchFor(src Source) (func(q index.Query) ([]index.Result, error), error) {
	switch src {
	case SourceSession:
		if sh.session == nil {
			return nil, errNoSession
		}
		return sh.session.SearchIndex, nil
	case SourceArchive:
		if sh.archive == nil {
			return nil, errNoArchive
		}
		return sh.archive.SearchIndex, nil
	}
	return nil, protoErrf("source %d", src)
}

// now reports this session's serving clock, for playback end-of-window
// defaults.
func (sh *shard) now() simclock.Time {
	if sh.session != nil {
		return sh.session.Clock().Now()
	}
	if sh.archive != nil {
		return sh.archive.End
	}
	return 0
}
