package remote

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dejaview/internal/obs"
)

// Fleet-wide instruments: registry size and connections shed at
// admission. Per-session throughput lives on each shard
// (remote.session.<id>.*).
var (
	obsSessionsActive   = obs.Default.Gauge("remote.sessions_active")
	obsAdmissionRejects = obs.Default.Counter("remote.admission_rejects")
)

// ErrDuplicateSession reports an AddSession for an ID already registered.
var ErrDuplicateSession = errors.New("remote: session id already registered")

// manager is the daemon's session registry: the shard map wire routing
// resolves against. The map is read on every handshake and mutated only
// by Add/RemoveSession, so a plain mutex suffices — admission-control
// hot-path state lives on the shards themselves, not here.
type manager struct {
	mu        sync.Mutex
	shards    map[string]*shard
	defaultID string // shard an empty (or v1) hello routes to
}

func newManager() *manager {
	return &manager{shards: map[string]*shard{}}
}

// route resolves a hello's session ID to its shard. The empty ID names
// the daemon's default session — all a protocol-1 client can ask for.
func (m *manager) route(id string) (*shard, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == "" {
		id = m.defaultID
	}
	sh, ok := m.shards[id]
	return sh, ok
}

// add registers a session. The first session added becomes the default
// unless one was already designated.
func (m *manager) add(cfg SessionConfig, opts *Options) (*shard, error) {
	if !ValidSessionID(cfg.ID) || cfg.ID == "" {
		return nil, fmt.Errorf("remote: invalid session id %q", cfg.ID)
	}
	if cfg.Session == nil && cfg.Archive == nil {
		return nil, fmt.Errorf("remote: session %q has neither live session nor archive", cfg.ID)
	}
	sh := newShard(cfg, opts)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.shards[cfg.ID]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateSession, cfg.ID)
	}
	m.shards[cfg.ID] = sh
	if m.defaultID == "" {
		m.defaultID = cfg.ID
	}
	obsSessionsActive.Set(int64(len(m.shards)))
	return sh, nil
}

// remove deregisters a session; new hellos for it are rejected with
// NoticeUnknownSession. Existing connections keep their shard pointer
// and drain normally.
func (m *manager) remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.shards[id]; !ok {
		return false
	}
	delete(m.shards, id)
	if m.defaultID == id {
		m.defaultID = ""
		for sid := range m.shards {
			if m.defaultID == "" || sid < m.defaultID {
				m.defaultID = sid // deterministic: smallest remaining ID
			}
		}
	}
	obsSessionsActive.Set(int64(len(m.shards)))
	return true
}

// setDefault designates which session empty-ID hellos reach.
func (m *manager) setDefault(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.shards[id]; !ok {
		return fmt.Errorf("remote: default session %q not registered", id)
	}
	m.defaultID = id
	return nil
}

// list snapshots the registered session IDs, sorted.
func (m *manager) list() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.shards))
	for id := range m.shards {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// count reports the registry size.
func (m *manager) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.shards)
}
