package remote

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dejaview/internal/binio"
	"dejaview/internal/obs"
	"dejaview/internal/simclock"
	"dejaview/internal/viewer"
)

// The remote protocol extends the viewer framing (kind(1) length(4)
// payload) with a request/response and stream layer. Viewer kinds 1–4
// keep their meaning where they appear inside streams; the remote layer
// adds:
//
//	kind 16 := client hello  (magic, supported version range, flags, session id)
//	kind 17 := server hello  (negotiated version, capabilities, geometry, session id)
//	kind 18 := request       (id, op, body)
//	kind 19 := response      (id, status, body | error text)
//	kind 20 := stream data   (id, element kind, payload)
//	kind 21 := stream end    (id, status, message)
//	kind 22 := notice        (code, message) — server-initiated
//	kind 23 := stats snapshot (id, JSON obs registry snapshot)
//
// Input events travel as plain viewer FrameInput frames from client to
// server. All integers are little-endian.
//
// Protocol 2 appends a session-ID field to both hellos so one daemon can
// shard many record/serve sessions: the client names the session it
// wants, the server echoes the session it routed to. The field is a
// trailing length-prefixed string, so version 1 peers interoperate
// unchanged: a v1 client sends the bare 12-byte hello (routed to the
// daemon's default session), and a v1 server ignores the trailing bytes
// a v2 client appends.

// Remote frame kinds (viewer kinds 1–4 are reserved below 16).
const (
	FrameClientHello   byte = 16
	FrameServerHello   byte = 17
	FrameRequest       byte = 18
	FrameResponse      byte = 19
	FrameStreamData    byte = 20
	FrameStreamEnd     byte = 21
	FrameNotice        byte = 22
	FrameStatsSnapshot byte = 23
)

// helloMagic opens every client hello ("DVRM").
const helloMagic = 0x4D525644

// Version is the current protocol version. The client advertises a
// [min, max] range; the server picks the highest version both sides
// support, or rejects the connection. Version 2 added the session-ID
// field on both hellos (multi-tenant session routing).
const Version = 2

// Request ops.
const (
	OpAttach        uint8 = 1
	OpDetach        uint8 = 2
	OpSearch        uint8 = 3
	OpPlayback      uint8 = 4
	OpStats         uint8 = 5
	OpStatsSnapshot uint8 = 6
)

// Stream element kinds inside FrameStreamData.
const (
	StreamCommand    uint8 = 1 // display codec command encoding
	StreamScreenshot uint8 = 2 // display screenshot encoding
)

// Response statuses.
const (
	statusOK    uint8 = 0
	statusError uint8 = 1
)

// Notice codes.
const (
	NoticeShutdown   uint8 = 1
	NoticeEvicted    uint8 = 2
	NoticeError      uint8 = 3
	NoticeBadVersion uint8 = 4
	// NoticeUnknownSession rejects a hello naming a session ID the
	// daemon's registry does not hold.
	NoticeUnknownSession uint8 = 5
	// NoticeBusy sheds a connection at admission time: the target session
	// is at its client/goroutine budget or over its byte quota.
	NoticeBusy uint8 = 6
)

// Source selects which record a search or playback request runs over.
type Source uint8

// Request sources.
const (
	// SourceSession targets the live session the daemon is serving.
	SourceSession Source = 0
	// SourceArchive targets the reopened archive the daemon is serving.
	SourceArchive Source = 1
)

// Hello flag bits (server hello).
const (
	flagHasSession uint32 = 1 << 0
	flagHasArchive uint32 = 1 << 1
)

// ErrProtocol reports a malformed remote frame. It wraps the viewer
// protocol error so transport-level and layer-level corruption can be
// matched uniformly.
var ErrProtocol = fmt.Errorf("remote: %w", viewer.ErrProtocol)

// ErrVersion reports a failed version negotiation.
var ErrVersion = errors.New("remote: no mutually supported protocol version")

// protoErrf builds a wrapped protocol error.
func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// MaxSessionID bounds a wire session ID's length.
const MaxSessionID = 64

// ValidSessionID reports whether id is usable on the wire: empty (the
// default session) or 1..MaxSessionID characters of [a-z0-9._-] starting
// with an alphanumeric. The charset keeps IDs safe as obs-name segments
// (after '-'/'.' sanitization) and file-path components.
func ValidSessionID(id string) bool {
	if id == "" {
		return true
	}
	if len(id) > MaxSessionID {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}

// appendSessionID appends the protocol-2 trailing session-ID field:
// len(1) + bytes.
func appendSessionID(buf []byte, id string) []byte {
	buf = append(buf, byte(len(id)))
	return append(buf, id...)
}

// sessionIDAt decodes the trailing session-ID field starting at off. A
// hello shorter than off carries no field (a version-1 peer) and yields
// the empty (default) ID.
func sessionIDAt(b []byte, off int) (string, error) {
	if len(b) <= off {
		return "", nil
	}
	n := int(b[off])
	if n > MaxSessionID {
		return "", protoErrf("session id length %d exceeds cap %d", n, MaxSessionID)
	}
	if len(b) < off+1+n {
		return "", protoErrf("short session id (%d of %d bytes)", len(b)-off-1, n)
	}
	id := string(b[off+1 : off+1+n])
	if !ValidSessionID(id) {
		return "", protoErrf("malformed session id %q", id)
	}
	return id, nil
}

// clientHello is the connection opener.
type clientHello struct {
	MinVersion, MaxVersion uint16
	Flags                  uint32
	// SessionID names the session the client wants; empty routes to the
	// daemon's default session (and is all a v1 client can ask for).
	SessionID string
}

func encodeClientHello(h clientHello) []byte {
	buf := make([]byte, 12, 13+len(h.SessionID))
	binary.LittleEndian.PutUint32(buf[0:], helloMagic)
	binary.LittleEndian.PutUint16(buf[4:], h.MinVersion)
	binary.LittleEndian.PutUint16(buf[6:], h.MaxVersion)
	binary.LittleEndian.PutUint32(buf[8:], h.Flags)
	return appendSessionID(buf, h.SessionID)
}

func decodeClientHello(b []byte) (clientHello, error) {
	if len(b) < 12 {
		return clientHello{}, protoErrf("short client hello (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:]) != helloMagic {
		return clientHello{}, protoErrf("bad hello magic %#x", binary.LittleEndian.Uint32(b[0:]))
	}
	h := clientHello{
		MinVersion: binary.LittleEndian.Uint16(b[4:]),
		MaxVersion: binary.LittleEndian.Uint16(b[6:]),
		Flags:      binary.LittleEndian.Uint32(b[8:]),
	}
	if h.MinVersion == 0 || h.MaxVersion < h.MinVersion {
		return clientHello{}, protoErrf("bad hello version range [%d, %d]", h.MinVersion, h.MaxVersion)
	}
	id, err := sessionIDAt(b, 12)
	if err != nil {
		return clientHello{}, err
	}
	h.SessionID = id
	return h, nil
}

// serverHello answers a client hello.
type serverHello struct {
	Version       uint16
	Flags         uint32
	Width, Height uint32
	Now           simclock.Time
	// SessionID is the session the connection was routed to. A v1 client
	// never sees the field; a v2 client uses it to confirm routing.
	SessionID string
}

func encodeServerHello(h serverHello) []byte {
	buf := make([]byte, 22, 23+len(h.SessionID))
	binary.LittleEndian.PutUint16(buf[0:], h.Version)
	binary.LittleEndian.PutUint32(buf[2:], h.Flags)
	binary.LittleEndian.PutUint32(buf[6:], h.Width)
	binary.LittleEndian.PutUint32(buf[10:], h.Height)
	binary.LittleEndian.PutUint64(buf[14:], uint64(h.Now))
	return appendSessionID(buf, h.SessionID)
}

func decodeServerHello(b []byte) (serverHello, error) {
	if len(b) < 22 {
		return serverHello{}, protoErrf("short server hello (%d bytes)", len(b))
	}
	h := serverHello{
		Version: binary.LittleEndian.Uint16(b[0:]),
		Flags:   binary.LittleEndian.Uint32(b[2:]),
		Width:   binary.LittleEndian.Uint32(b[6:]),
		Height:  binary.LittleEndian.Uint32(b[10:]),
		Now:     simclock.Time(binary.LittleEndian.Uint64(b[14:])),
	}
	if h.Version == 0 {
		return serverHello{}, protoErrf("server hello version 0")
	}
	if h.Width > 1<<14 || h.Height > 1<<14 {
		return serverHello{}, protoErrf("implausible size %dx%d", h.Width, h.Height)
	}
	id, err := sessionIDAt(b, 22)
	if err != nil {
		return serverHello{}, err
	}
	h.SessionID = id
	return h, nil
}

// request is the common request envelope: id(4) op(1) body.
func encodeRequest(id uint32, op uint8, body []byte) []byte {
	buf := make([]byte, 5, 5+len(body))
	binary.LittleEndian.PutUint32(buf[0:], id)
	buf[4] = op
	return append(buf, body...)
}

func decodeRequest(b []byte) (id uint32, op uint8, body []byte, err error) {
	if len(b) < 5 {
		return 0, 0, nil, protoErrf("short request (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint32(b[0:]), b[4], b[5:], nil
}

// response envelope: id(4) status(1) body. An error response carries the
// message text as its body.
func encodeResponse(id uint32, status uint8, body []byte) []byte {
	buf := make([]byte, 5, 5+len(body))
	binary.LittleEndian.PutUint32(buf[0:], id)
	buf[4] = status
	return append(buf, body...)
}

func decodeResponse(b []byte) (id uint32, status uint8, body []byte, err error) {
	if len(b) < 5 {
		return 0, 0, nil, protoErrf("short response (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint32(b[0:]), b[4], b[5:], nil
}

// stream data envelope: id(4) elem(1) payload.
func encodeStreamData(id uint32, elem uint8, payload []byte) []byte {
	buf := make([]byte, 5, 5+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], id)
	buf[4] = elem
	return append(buf, payload...)
}

func decodeStreamData(b []byte) (id uint32, elem uint8, payload []byte, err error) {
	if len(b) < 5 {
		return 0, 0, nil, protoErrf("short stream data (%d bytes)", len(b))
	}
	id, elem, payload = binary.LittleEndian.Uint32(b[0:]), b[4], b[5:]
	if elem != StreamCommand && elem != StreamScreenshot {
		return 0, 0, nil, protoErrf("stream element kind %d", elem)
	}
	return id, elem, payload, nil
}

// stream end envelope: id(4) status(1) message.
func encodeStreamEnd(id uint32, status uint8, msg string) []byte {
	buf := make([]byte, 5, 5+len(msg))
	binary.LittleEndian.PutUint32(buf[0:], id)
	buf[4] = status
	return append(buf, msg...)
}

func decodeStreamEnd(b []byte) (id uint32, status uint8, msg string, err error) {
	if len(b) < 5 {
		return 0, 0, "", protoErrf("short stream end (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint32(b[0:]), b[4], string(b[5:]), nil
}

// notice envelope: code(1) message.
func encodeNotice(code uint8, msg string) []byte {
	return append([]byte{code}, msg...)
}

func decodeNotice(b []byte) (code uint8, msg string, err error) {
	if len(b) < 1 {
		return 0, "", protoErrf("empty notice")
	}
	return b[0], string(b[1:]), nil
}

// attach request body: source(1) flags(1). Response body: width(4)
// height(4).
func encodeAttachReq(src Source) []byte { return []byte{uint8(src), 0} }

func decodeAttachReq(b []byte) (Source, error) {
	if len(b) < 2 {
		return 0, protoErrf("short attach request (%d bytes)", len(b))
	}
	if Source(b[0]) != SourceSession {
		return 0, protoErrf("attach source %d", b[0])
	}
	return Source(b[0]), nil
}

func encodeAttachResp(w, h int) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:], uint32(w))
	binary.LittleEndian.PutUint32(buf[4:], uint32(h))
	return buf
}

func decodeAttachResp(b []byte) (w, h int, err error) {
	if len(b) < 8 {
		return 0, 0, protoErrf("short attach response (%d bytes)", len(b))
	}
	w = int(binary.LittleEndian.Uint32(b[0:]))
	h = int(binary.LittleEndian.Uint32(b[4:]))
	if w <= 0 || h <= 0 || w > 1<<14 || h > 1<<14 {
		return 0, 0, protoErrf("implausible attach size %dx%d", w, h)
	}
	return w, h, nil
}

// detach request body: the stream id to stop.
func encodeDetachReq(streamID uint32) []byte {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, streamID)
	return buf
}

func decodeDetachReq(b []byte) (uint32, error) {
	if len(b) < 4 {
		return 0, protoErrf("short detach request (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint32(b), nil
}

// search request body: source(1) + index wire query.
func encodeSearchReq(src Source, query []byte) []byte {
	return append([]byte{uint8(src)}, query...)
}

func decodeSearchReq(b []byte) (Source, []byte, error) {
	if len(b) < 1 {
		return 0, nil, protoErrf("short search request")
	}
	src := Source(b[0])
	if src != SourceSession && src != SourceArchive {
		return 0, nil, protoErrf("search source %d", b[0])
	}
	return src, b[1:], nil
}

// PlaybackMode selects what a playback stream carries.
type PlaybackMode uint8

// Playback modes.
const (
	// PlayCommands streams the seeked screen then every display command
	// in (start, end], the full-fidelity replay.
	PlayCommands PlaybackMode = 0
	// PlayKeyframes streams only the recorded keyframe screenshots in the
	// window — the fast-forward presentation (§4.3).
	PlayKeyframes PlaybackMode = 1
)

// PlaybackRequest describes a playback stream. Rate 0 streams as fast as
// the connection drains; rate 1 paces at record speed, 2 at double speed,
// and so on.
type PlaybackRequest struct {
	Source     Source
	Mode       PlaybackMode
	Start, End simclock.Time
	Rate       float64
}

func encodePlaybackReq(r PlaybackRequest) []byte {
	buf := make([]byte, 26)
	buf[0] = uint8(r.Source)
	buf[1] = uint8(r.Mode)
	binary.LittleEndian.PutUint64(buf[2:], uint64(r.Start))
	binary.LittleEndian.PutUint64(buf[10:], uint64(r.End))
	binary.LittleEndian.PutUint64(buf[18:], math.Float64bits(r.Rate))
	return buf
}

func decodePlaybackReq(b []byte) (PlaybackRequest, error) {
	if len(b) < 26 {
		return PlaybackRequest{}, protoErrf("short playback request (%d bytes)", len(b))
	}
	r := PlaybackRequest{
		Source: Source(b[0]),
		Mode:   PlaybackMode(b[1]),
		Start:  simclock.Time(binary.LittleEndian.Uint64(b[2:])),
		End:    simclock.Time(binary.LittleEndian.Uint64(b[10:])),
		Rate:   math.Float64frombits(binary.LittleEndian.Uint64(b[18:])),
	}
	if r.Source != SourceSession && r.Source != SourceArchive {
		return PlaybackRequest{}, protoErrf("playback source %d", b[0])
	}
	if r.Mode != PlayCommands && r.Mode != PlayKeyframes {
		return PlaybackRequest{}, protoErrf("playback mode %d", b[1])
	}
	if math.IsNaN(r.Rate) || math.IsInf(r.Rate, 0) || r.Rate < 0 {
		return PlaybackRequest{}, protoErrf("playback rate %v", r.Rate)
	}
	return r, nil
}

// Stats is the daemon's aggregate view of its clients.
type Stats struct {
	// ActiveClients is the number of currently connected clients.
	ActiveClients uint64
	// TotalClients counts every connection ever accepted.
	TotalClients uint64
	// Evicted counts clients disconnected for overflowing their bounded
	// send queue.
	Evicted uint64
	// FramesSent / BytesSent total the protocol frames written to all
	// clients.
	FramesSent, BytesSent uint64
	// LiveDropped counts live display frames dropped on the floor while
	// a conn was being evicted.
	LiveDropped uint64
	// Searches, Playbacks, and InputEvents count served requests.
	Searches, Playbacks, InputEvents uint64
	// SessionsActive is the number of sessions in the daemon's registry.
	SessionsActive uint64
	// AdmissionRejects counts connections shed at admission time (busy
	// or over-quota sessions).
	AdmissionRejects uint64
}

// ClientStats is one connection's view.
type ClientStats struct {
	// ID is the server-assigned connection id.
	ID uint64
	// FramesSent / BytesSent total the frames written to this client.
	FramesSent, BytesSent uint64
	// Requests counts requests served for this client.
	Requests uint64
	// LiveStreams is the number of currently attached live views.
	LiveStreams int
	// Evicted marks a client that overflowed its send queue.
	Evicted bool
}

func encodeStatsResp(s Stats, c ClientStats) []byte {
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	bw.U64(s.ActiveClients)
	bw.U64(s.TotalClients)
	bw.U64(s.Evicted)
	bw.U64(s.FramesSent)
	bw.U64(s.BytesSent)
	bw.U64(s.LiveDropped)
	bw.U64(s.Searches)
	bw.U64(s.Playbacks)
	bw.U64(s.InputEvents)
	bw.U64(c.ID)
	bw.U64(c.FramesSent)
	bw.U64(c.BytesSent)
	bw.U64(c.Requests)
	bw.U32(uint32(c.LiveStreams))
	bw.Bool(c.Evicted)
	// Protocol-2 fleet counters ride at the tail so a v1 decoder simply
	// stops before them.
	bw.U64(s.SessionsActive)
	bw.U64(s.AdmissionRejects)
	bw.Flush()
	return buf.Bytes()
}

// maxStatsSnapshot bounds a stats-snapshot payload: a registry snapshot
// is text describing a bounded instrument set, so anything near the
// 64MiB transport MaxFrame cap is hostile, not just large.
const maxStatsSnapshot = 1 << 20

// stats snapshot frame: id(4) + JSON registry snapshot. It answers an
// OpStatsSnapshot request as its own frame kind so tooling can tap the
// wire for metrics without speaking the response envelope.
func encodeStatsSnapshot(id uint32, s obs.Snapshot) ([]byte, error) {
	js, err := s.MarshalJSON()
	if err != nil {
		return nil, fmt.Errorf("remote: stats snapshot: %w", err)
	}
	if len(js) > maxStatsSnapshot {
		return nil, fmt.Errorf("remote: stats snapshot: %d bytes exceeds cap %d", len(js), maxStatsSnapshot)
	}
	buf := make([]byte, 4, 4+len(js))
	binary.LittleEndian.PutUint32(buf, id)
	return append(buf, js...), nil
}

func decodeStatsSnapshot(b []byte) (id uint32, s obs.Snapshot, err error) {
	if len(b) < 4 {
		return 0, obs.Snapshot{}, protoErrf("short stats snapshot (%d bytes)", len(b))
	}
	if len(b)-4 > maxStatsSnapshot {
		return 0, obs.Snapshot{}, protoErrf("stats snapshot payload %d bytes exceeds cap %d", len(b)-4, maxStatsSnapshot)
	}
	s, perr := obs.ParseSnapshot(b[4:])
	if perr != nil {
		return 0, obs.Snapshot{}, protoErrf("stats snapshot: %v", perr)
	}
	return binary.LittleEndian.Uint32(b), s, nil
}

func decodeStatsResp(b []byte) (Stats, ClientStats, error) {
	br := binio.NewReader(bytes.NewReader(b))
	var s Stats
	var c ClientStats
	s.ActiveClients = br.U64()
	s.TotalClients = br.U64()
	s.Evicted = br.U64()
	s.FramesSent = br.U64()
	s.BytesSent = br.U64()
	s.LiveDropped = br.U64()
	s.Searches = br.U64()
	s.Playbacks = br.U64()
	s.InputEvents = br.U64()
	c.ID = br.U64()
	c.FramesSent = br.U64()
	c.BytesSent = br.U64()
	c.Requests = br.U64()
	c.LiveStreams = int(br.U32())
	c.Evicted = br.Bool()
	// The protocol-2 fleet tail: absent from a version-1 server's
	// response, so only decode it when the payload carries it.
	if len(b) >= statsRespV1Len+16 {
		s.SessionsActive = br.U64()
		s.AdmissionRejects = br.U64()
	}
	if err := br.Err(); err != nil {
		return Stats{}, ClientStats{}, protoErrf("stats response: %v", err)
	}
	return s, c, nil
}

// statsRespV1Len is the byte length of the version-1 stats response: 13
// U64 fields, one U32, one bool.
const statsRespV1Len = 13*8 + 4 + 1
