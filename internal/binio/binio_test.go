package binio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U16(65500)
	w.U32(4000000000)
	w.U64(1 << 62)
	w.String("hello")
	w.Blob([]byte{1, 2, 3})
	w.Bytes([]byte{9, 9})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if r.U8() != 7 || !r.Bool() || r.Bool() {
		t.Error("u8/bool wrong")
	}
	if r.U16() != 65500 || r.U32() != 4000000000 || r.U64() != 1<<62 {
		t.Error("ints wrong")
	}
	if r.String() != "hello" {
		t.Error("string wrong")
	}
	if !bytes.Equal(r.Blob(), []byte{1, 2, 3}) {
		t.Error("blob wrong")
	}
	if !bytes.Equal(r.Bytes(2), []byte{9, 9}) {
		t.Error("bytes wrong")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	// Further reads fail and stick.
	r.U8()
	if r.Err() == nil {
		t.Error("read past end did not error")
	}
}

func TestReaderErrorSticks(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1}))
	if r.U32() != 0 {
		t.Error("short read should return zero")
	}
	if r.Err() == nil {
		t.Fatal("no error recorded")
	}
	first := r.Err()
	r.U64()
	_ = r.String()
	if r.Err() != first {
		t.Error("error was overwritten")
	}
}

func TestReaderAllocationCap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U32(1 << 30) // claims a 1 GiB blob
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	r.Limit = 1024
	if b := r.Blob(); b != nil {
		t.Error("oversized blob allocated")
	}
	if !errors.Is(r.Err(), io.ErrUnexpectedEOF) {
		t.Errorf("err = %v", r.Err())
	}
}

func TestFail(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	sentinel := errors.New("sentinel")
	r.Fail(sentinel)
	r.Fail(errors.New("second"))
	if r.Err() != sentinel {
		t.Error("Fail did not stick the first error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriterErrorSticks(t *testing.T) {
	w := NewWriter(failWriter{})
	for i := 0; i < 10000; i++ {
		w.U64(uint64(i)) // must eventually hit the underlying error
	}
	if err := w.Flush(); err == nil {
		t.Error("flush to failing writer succeeded")
	}
}
