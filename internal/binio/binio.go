// Package binio provides small error-sticky binary readers and writers
// for the archive serialization formats (little-endian throughout). The
// first error sticks; callers check once at the end.
package binio

import (
	"bufio"
	"encoding/binary"
	"io"
)

// Writer is an error-sticky little-endian writer.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Err reports the first error.
func (bw *Writer) Err() error { return bw.err }

// Flush flushes buffered output and returns the first error.
func (bw *Writer) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// Bytes writes raw bytes.
func (bw *Writer) Bytes(b []byte) {
	if bw.err != nil {
		return
	}
	_, bw.err = bw.w.Write(b)
}

// U8 writes one byte.
func (bw *Writer) U8(v uint8) { bw.Bytes([]byte{v}) }

// Bool writes a boolean as one byte.
func (bw *Writer) Bool(v bool) {
	if v {
		bw.U8(1)
	} else {
		bw.U8(0)
	}
}

// U16 writes a little-endian uint16.
func (bw *Writer) U16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	bw.Bytes(b[:])
}

// U32 writes a little-endian uint32.
func (bw *Writer) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	bw.Bytes(b[:])
}

// U64 writes a little-endian uint64.
func (bw *Writer) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	bw.Bytes(b[:])
}

// String writes a 16-bit length-prefixed string.
func (bw *Writer) String(s string) {
	bw.U16(uint16(len(s)))
	bw.Bytes([]byte(s))
}

// Blob writes a 32-bit length-prefixed byte slice.
func (bw *Writer) Blob(b []byte) {
	bw.U32(uint32(len(b)))
	bw.Bytes(b)
}

// Reader is an error-sticky little-endian reader.
type Reader struct {
	r   *bufio.Reader
	err error
	// Limit caps individual Blob/String allocations.
	Limit uint32
}

// NewReader wraps r with a 64 MiB allocation cap.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r), Limit: 64 << 20}
}

// Err reports the first error.
func (br *Reader) Err() error { return br.err }

// Fail records an error if none is recorded yet.
func (br *Reader) Fail(err error) {
	if br.err == nil {
		br.err = err
	}
}

// Bytes reads exactly n bytes.
func (br *Reader) Bytes(n int) []byte {
	if br.err != nil {
		return nil
	}
	if uint32(n) > br.Limit {
		br.err = io.ErrUnexpectedEOF
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br.r, b); err != nil {
		br.err = err
		return nil
	}
	return b
}

// U8 reads one byte.
func (br *Reader) U8() uint8 {
	b := br.Bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean.
func (br *Reader) Bool() bool { return br.U8() != 0 }

// U16 reads a little-endian uint16.
func (br *Reader) U16() uint16 {
	b := br.Bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (br *Reader) U32() uint32 {
	b := br.Bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (br *Reader) U64() uint64 {
	b := br.Bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// String reads a 16-bit length-prefixed string.
func (br *Reader) String() string { return string(br.Bytes(int(br.U16()))) }

// Blob reads a 32-bit length-prefixed byte slice.
func (br *Reader) Blob() []byte { return br.Bytes(int(br.U32())) }
