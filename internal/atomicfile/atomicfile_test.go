package atomicfile

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dejaview/internal/failpoint"
)

func noTemps(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.dv")
	if err := WriteFile(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("perm %v, want 0644", fi.Mode().Perm())
	}
	noTemps(t, dir)
}

func TestWriteFileOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.dv")
	if err := WriteFile(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("read back %q", got)
	}
	noTemps(t, dir)
}

func TestAbortRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	f, err := Create(filepath.Join(dir, "a.dv"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	f.Abort() // idempotent
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("%d entries left after abort", len(entries))
	}
}

func TestFailedWriteLeavesOldVersion(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "a.dv")
	if err := WriteFile(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	failpoint.Arm("atomicfile/write", failpoint.Policy{})
	err := WriteFile(path, []byte("new"))
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("old version damaged: %q", got)
	}
	noTemps(t, dir)
}

func TestFailedRenameCleansTemp(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	failpoint.Arm("atomicfile/rename", failpoint.Policy{})
	err := WriteFile(filepath.Join(dir, "a.dv"), []byte("data"))
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("%d entries left after failed rename", len(entries))
	}
}

func TestCommitAllAbortsRemainder(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	var files []*File
	for _, name := range []string{"a.dv", "b.dv", "c.dv"} {
		f, err := Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(name)); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	// Fail the second rename: a.dv commits, b.dv fails, c.dv aborts.
	failpoint.Arm("atomicfile/rename", failpoint.Policy{Nth: 2})
	err := CommitAll(files...)
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || entries[0].Name() != "a.dv" {
		t.Fatalf("dir entries after partial commit: %v", entries)
	}
}
