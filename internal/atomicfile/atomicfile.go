// Package atomicfile writes files through a unique temporary name in the
// target directory renamed into place, so readers never observe a
// partially written file and a failed save never leaves a stale temp
// behind. It is the single choke point for DejaView's on-disk commits —
// the record store and the session archive both write through it — and
// it carries the failpoints (`atomicfile/create`, `atomicfile/write`,
// `atomicfile/rename`) the fault-injection tests use to prove the
// fail-closed invariant.
package atomicfile

import (
	"io"
	"os"
	"path/filepath"

	"dejaview/internal/failpoint"
)

// File is a staged write: bytes go to a temporary file next to the
// target path until Commit renames it into place. Any failure path must
// call Abort (safe after Commit, and idempotent), which removes the
// temp file.
type File struct {
	f         *os.File
	w         io.Writer
	path, tmp string
	done      bool
}

// Create stages a write to path. The temp file keeps the target's base
// name with a ".tmp" marker so leak checks can spot strays.
func Create(path string) (*File, error) {
	if err := failpoint.Inject("atomicfile/create"); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	a := &File{f: f, w: failpoint.Writer("atomicfile/write", f), path: path, tmp: f.Name()}
	// CreateTemp opens 0600; published record files are world-readable.
	if err := f.Chmod(0o644); err != nil {
		a.Abort()
		return nil, err
	}
	return a, nil
}

// Write implements io.Writer on the staged temp file.
func (a *File) Write(p []byte) (int, error) {
	return a.w.Write(p)
}

// Commit closes the temp file and renames it over the target path,
// removing the temp on any failure.
func (a *File) Commit() error {
	if a.done {
		return os.ErrClosed
	}
	a.done = true
	if err := a.f.Close(); err != nil {
		os.Remove(a.tmp)
		return err
	}
	if err := failpoint.Inject("atomicfile/rename"); err != nil {
		os.Remove(a.tmp)
		return err
	}
	if err := os.Rename(a.tmp, a.path); err != nil {
		os.Remove(a.tmp)
		return err
	}
	return nil
}

// Abort discards the staged write, removing the temp file. Safe to call
// multiple times and after Commit (where it is a no-op).
func (a *File) Abort() {
	if a.done {
		return
	}
	a.done = true
	//lint:ignore dropped-error Abort discards the staged write; the temp file is removed regardless and Abort has no error to return
	a.f.Close()
	os.Remove(a.tmp)
}

// CommitAll commits the staged files in order, aborting every remaining
// file on the first failure. Callers that save a multi-file record stage
// every stream first and commit in one place, so a mid-save failure
// leaves the previous on-disk version fully intact.
func CommitAll(files ...*File) error {
	for i, f := range files {
		if err := f.Commit(); err != nil {
			for _, rest := range files[i+1:] {
				rest.Abort()
			}
			return err
		}
	}
	return nil
}

// AbortAll aborts every staged file (nil entries are skipped, so error
// paths can call it on a partially built slice).
func AbortAll(files ...*File) {
	for _, f := range files {
		if f != nil {
			f.Abort()
		}
	}
}

// WriteFile atomically writes data to path.
func WriteFile(path string, data []byte) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}
