package access

import (
	"sort"
	"sync"

	"dejaview/internal/simclock"
)

// TextItem is one captured piece of on-screen text together with the
// contextual information DejaView indexes: the application that generated
// the text, the window it came from, its role (menu item, link, ...), and
// whether that window had focus (§4.2).
type TextItem struct {
	Component ComponentID
	App       string
	AppKind   string
	Window    string
	Role      Role
	Focused   bool
	Text      string
}

// TextSink receives the daemon's captured text state. The index package
// implements it: each SetItem opens (or replaces) a visibility interval
// for the component's text, RemoveItem closes it, and Annotate attaches
// the annotation attribute to explicitly tagged text.
type TextSink interface {
	SetItem(t simclock.Time, item TextItem)
	RemoveItem(t simclock.Time, id ComponentID)
	Annotate(t simclock.Time, item TextItem)
}

// DaemonStats counts daemon activity.
type DaemonStats struct {
	// Events is the number of accessibility events processed.
	Events uint64
	// MirrorNodes is the current size of the mirror tree.
	MirrorNodes int
	// SinkUpdates counts SetItem/RemoveItem/Annotate calls issued.
	SinkUpdates uint64
	// StartupQueries is the accessibility-interface reads used to build
	// the initial mirror (the one-time full traversal).
	StartupQueries uint64
}

// mirrorNode replicates one accessible component's state locally so the
// daemon can answer "what changed" without querying the application.
type mirrorNode struct {
	id       ComponentID
	role     Role
	name     string
	text     string
	app      *Application
	window   string
	parent   *mirrorNode
	children []*mirrorNode
}

// Daemon is DejaView's text-capture daemon. At startup it traverses every
// application once and builds a mirror tree; afterwards it processes each
// event by hash-table lookup into the mirror, updating only the affected
// node, and forwards the new text state to the sink.
//
// Daemon is safe for concurrent event delivery.
type Daemon struct {
	clock *simclock.Clock
	sink  TextSink

	mu      sync.Mutex
	nodes   map[ComponentID]*mirrorNode
	roots   map[*Application]*mirrorNode
	pending map[*Application]pendingSelection
	stats   DaemonStats
}

type pendingSelection struct {
	item TextItem
	text string
}

// NewDaemon builds the mirror tree for every application currently
// registered and subscribes the daemon for events. The startup traversal
// is the expensive full walk; everything afterwards is incremental.
func NewDaemon(reg *Registry, clock *simclock.Clock, sink TextSink) *Daemon {
	d := &Daemon{
		clock:   clock,
		sink:    sink,
		nodes:   make(map[ComponentID]*mirrorNode),
		roots:   make(map[*Application]*mirrorNode),
		pending: make(map[*Application]pendingSelection),
	}
	q0 := reg.Queries()
	now := clock.Now()
	for _, app := range reg.Applications() {
		d.mirrorSubtree(app.Root(), nil, now)
	}
	d.stats.StartupQueries = reg.Queries() - q0
	reg.Listen(d)
	return d
}

// mirrorSubtree walks the real accessible tree (expensive, metered) and
// builds mirror nodes, emitting initial sink items for text-bearing nodes.
// Caller may hold d.mu only at startup (no concurrent events yet).
func (d *Daemon) mirrorSubtree(c *Component, parent *mirrorNode, now simclock.Time) *mirrorNode {
	n := &mirrorNode{
		id:     c.ID(),
		role:   c.Role(),
		name:   c.Name(),
		text:   c.Text(),
		app:    c.App(),
		parent: parent,
	}
	n.window = windowOf(n)
	d.nodes[n.id] = n
	if parent == nil {
		d.roots[n.app] = n
	} else {
		parent.children = append(parent.children, n)
	}
	if n.text != "" {
		d.emitSet(now, n)
	}
	for _, child := range c.Children() {
		d.mirrorSubtree(child, n, now)
	}
	return n
}

// windowOf finds the nearest enclosing window (or application) name in
// the mirror, without touching the accessibility interface.
func windowOf(n *mirrorNode) string {
	for m := n; m != nil; m = m.parent {
		if m.role == RoleWindow || m.role == RoleApplication {
			return m.name
		}
	}
	return ""
}

func (d *Daemon) item(n *mirrorNode) TextItem {
	return TextItem{
		Component: n.id,
		App:       n.app.Name(),
		AppKind:   n.app.Kind(),
		Window:    n.window,
		Role:      n.role,
		Focused:   n.app.Focused(),
		Text:      n.text,
	}
}

func (d *Daemon) emitSet(t simclock.Time, n *mirrorNode) {
	d.sink.SetItem(t, d.item(n))
	d.stats.SinkUpdates++
}

// Handle implements Listener. It is the synchronous event path, so it
// performs only hash lookups and mirror updates — never a tree traversal.
func (d *Daemon) Handle(e Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clock.Now()
	d.stats.Events++
	switch e.Type {
	case EventAdded:
		c := e.Component
		parent := d.nodes[parentID(c)]
		// A component can arrive for an app we have never mirrored
		// (registered after startup); mirror from its root lazily.
		if parent == nil && c.App() != nil {
			if _, ok := d.roots[c.App()]; !ok {
				d.mirrorSubtree(c.App().Root(), nil, now)
				return
			}
		}
		n := &mirrorNode{
			id:     c.ID(),
			role:   c.Role(),
			name:   c.Name(),
			text:   c.Text(),
			app:    c.App(),
			parent: parent,
		}
		n.window = windowOf(n)
		d.nodes[n.id] = n
		if parent != nil {
			parent.children = append(parent.children, n)
		}
		if n.text != "" {
			d.emitSet(now, n)
		}
	case EventTextChanged:
		n, ok := d.nodes[e.Component.ID()]
		if !ok {
			return
		}
		n.text = e.Component.Text()
		if n.text == "" {
			d.sink.RemoveItem(now, n.id)
			d.stats.SinkUpdates++
		} else {
			d.emitSet(now, n)
		}
	case EventRemoved:
		n, ok := d.nodes[e.Component.ID()]
		if !ok {
			return
		}
		d.removeSubtree(now, n)
		if n.parent != nil {
			sibs := n.parent.children
			for i, s := range sibs {
				if s == n {
					n.parent.children = append(sibs[:i], sibs[i+1:]...)
					break
				}
			}
		} else if n.app != nil {
			delete(d.roots, n.app)
		}
	case EventFocusChanged:
		// Focus is part of each item's indexed context: re-emit items of
		// every app whose focus state flipped, straight from the mirror.
		// The walk order must be stable — the sink assigns occurrence
		// identity in arrival order, so iterating the roots map directly
		// would make the recorded index nondeterministic.
		roots := make([]*mirrorNode, 0, len(d.roots))
		for _, root := range d.roots {
			roots = append(roots, root)
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i].id < roots[j].id })
		for _, root := range roots {
			d.reemitFocus(now, root)
		}
	case EventTextSelected:
		n, ok := d.nodes[e.Component.ID()]
		if !ok {
			return
		}
		d.pending[n.app] = pendingSelection{item: d.item(n), text: e.Selection}
	case EventAnnotateKey:
		if sel, ok := d.pending[e.App]; ok {
			it := sel.item
			it.Text = sel.text
			d.sink.Annotate(now, it)
			d.stats.SinkUpdates++
			delete(d.pending, e.App)
		}
	}
}

// reemitFocus refreshes the Focused context bit of every text-bearing
// mirror node under root. Pure mirror walk: zero accessibility queries.
func (d *Daemon) reemitFocus(t simclock.Time, n *mirrorNode) {
	if n.text != "" {
		d.emitSet(t, n)
	}
	for _, c := range n.children {
		d.reemitFocus(t, c)
	}
}

func (d *Daemon) removeSubtree(t simclock.Time, n *mirrorNode) {
	if n.text != "" {
		d.sink.RemoveItem(t, n.id)
		d.stats.SinkUpdates++
	}
	delete(d.nodes, n.id)
	for _, c := range n.children {
		d.removeSubtree(t, c)
	}
}

// parentID fetches the parent's ID without a metered query (tree identity
// is not application state).
func parentID(c *Component) ComponentID {
	if c.parent == nil {
		return 0
	}
	return c.parent.id
}

// Stats returns a copy of the daemon counters.
func (d *Daemon) Stats() DaemonStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.stats
	st.MirrorNodes = len(d.nodes)
	return st
}

// DirectCapture is the ablation baseline the mirror tree replaces: a
// listener that re-traverses every application's full accessible tree on
// every event, paying the per-component query cost each time.
type DirectCapture struct {
	reg   *Registry
	clock *simclock.Clock
	sink  TextSink
	mu    sync.Mutex
}

// NewDirectCapture subscribes a traversal-per-event capture listener.
func NewDirectCapture(reg *Registry, clock *simclock.Clock, sink TextSink) *DirectCapture {
	d := &DirectCapture{reg: reg, clock: clock, sink: sink}
	reg.Listen(d)
	return d
}

// Handle implements Listener by re-walking every tree.
func (d *DirectCapture) Handle(e Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clock.Now()
	for _, app := range d.reg.Applications() {
		d.walk(now, app, app.Root(), app.Name())
	}
}

func (d *DirectCapture) walk(t simclock.Time, app *Application, c *Component, window string) {
	role := c.Role()
	name := c.Name()
	if role == RoleWindow {
		window = name
	}
	if text := c.Text(); text != "" {
		d.sink.SetItem(t, TextItem{
			Component: c.ID(),
			App:       app.Name(),
			AppKind:   app.Kind(),
			Window:    window,
			Role:      role,
			Focused:   app.Focused(),
			Text:      text,
		})
	}
	for _, child := range c.Children() {
		d.walk(t, app, child, window)
	}
}
