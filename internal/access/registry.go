package access

import (
	"sync"
	"sync/atomic"
)

// EventType enumerates accessibility events the registry can deliver.
type EventType uint8

// Accessibility event types.
const (
	// EventAdded reports a new component on screen.
	EventAdded EventType = iota + 1
	// EventRemoved reports a component leaving the screen.
	EventRemoved
	// EventTextChanged reports existing text changing.
	EventTextChanged
	// EventFocusChanged reports window focus moving to an application.
	EventFocusChanged
	// EventTextSelected reports a mouse text selection (annotation
	// gesture, step one).
	EventTextSelected
	// EventAnnotateKey reports the annotation key combination
	// (annotation gesture, step two).
	EventAnnotateKey
)

// Event is one accessibility notification. Delivery is synchronous:
// applications block until every listener returns.
type Event struct {
	Type      EventType
	Component *Component   // Added/Removed/TextChanged/TextSelected
	App       *Application // FocusChanged/AnnotateKey
	OldText   string       // TextChanged: previous text
	Selection string       // TextSelected: the selected text
}

// Listener receives accessibility events. Handle runs on the application's
// "thread": it must be fast, because the application blocks until it
// returns (§4.2).
type Listener interface {
	Handle(e Event)
}

// Registry is the desktop-wide accessibility registry: applications
// register their trees with it, and listeners (screen readers, the
// DejaView daemon) ask it to deliver events when text is displayed or
// changes.
type Registry struct {
	mu        sync.Mutex
	apps      []*Application
	listeners []Listener
	idSeq     uint64
	focus     *Application

	// queries meters reads through the accessibility interface; each is
	// a simulated round trip into an application.
	queries uint64
	// delivered counts events delivered (per listener).
	delivered uint64
}

// NewRegistry creates an empty desktop registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) nextID() ComponentID {
	return ComponentID(atomic.AddUint64(&r.idSeq, 1))
}

// Register adds a new application with its root component and delivers no
// events (applications present at daemon startup are discovered by the
// initial traversal).
func (r *Registry) Register(name, kind string) *Application {
	a := &Application{name: name, kind: kind, reg: r}
	a.root = &Component{id: r.nextID(), role: RoleApplication, name: name, app: a}
	r.mu.Lock()
	r.apps = append(r.apps, a)
	r.mu.Unlock()
	return a
}

// Unregister removes an application, delivering EventRemoved for its root.
func (r *Registry) Unregister(a *Application) {
	r.mu.Lock()
	for i, x := range r.apps {
		if x == a {
			r.apps = append(r.apps[:i], r.apps[i+1:]...)
			break
		}
	}
	if r.focus == a {
		r.focus = nil
	}
	r.mu.Unlock()
	r.deliver(Event{Type: EventRemoved, Component: a.root})
}

// Applications snapshots the registered applications.
func (r *Registry) Applications() []*Application {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Application(nil), r.apps...)
}

// Listen subscribes a listener for future events.
func (r *Registry) Listen(l Listener) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.listeners = append(r.listeners, l)
}

// SetFocus moves window focus to a and delivers EventFocusChanged.
func (r *Registry) SetFocus(a *Application) {
	r.mu.Lock()
	if r.focus == a {
		r.mu.Unlock()
		return
	}
	if r.focus != nil {
		r.focus.mu.Lock()
		r.focus.focused = false
		r.focus.mu.Unlock()
	}
	r.focus = a
	if a != nil {
		a.mu.Lock()
		a.focused = true
		a.mu.Unlock()
	}
	r.mu.Unlock()
	if a != nil {
		r.deliver(Event{Type: EventFocusChanged, App: a})
	}
}

// Focus reports the currently focused application (nil when none).
func (r *Registry) Focus() *Application {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.focus
}

// deliver synchronously hands e to every listener.
func (r *Registry) deliver(e Event) {
	r.mu.Lock()
	ls := append([]Listener(nil), r.listeners...)
	r.mu.Unlock()
	for _, l := range ls {
		l.Handle(e)
		atomic.AddUint64(&r.delivered, 1)
	}
}

// Queries reports the number of accessibility-interface reads so far —
// the round-trip cost metric the mirror tree minimizes.
func (r *Registry) Queries() uint64 { return atomic.LoadUint64(&r.queries) }

// Delivered reports the number of (event, listener) deliveries so far.
func (r *Registry) Delivered() uint64 { return atomic.LoadUint64(&r.delivered) }
