// Package access implements DejaView's text-capture substrate: a
// simulation of the desktop accessibility infrastructure (GNOME AT-SPI in
// the paper, §4.2) and the DejaView capture daemon built on it.
//
// Applications expose trees of accessible components and deliver events
// synchronously when text appears or changes. Traversing the real
// accessible tree is extremely expensive — each component access context
// switches into the application — so the daemon maintains a *mirror tree*
// kept exactly in sync by events, plus a hash table mapping components to
// mirror nodes so event processing touches only the changed subtree. The
// substrate meters component accesses so the mirror-tree optimization is
// measurable (the paper: a full traversal "can take a couple seconds and
// destroy interactive responsiveness").
package access

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Role classifies an accessible component, part of the contextual
// information DejaView records alongside text.
type Role uint8

// Accessible component roles.
const (
	RoleUnknown Role = iota
	RoleApplication
	RoleWindow
	RoleDocument
	RoleParagraph
	RoleMenuItem
	RoleLink
	RoleButton
	RoleTerminal
	RoleStatusBar
)

var roleNames = [...]string{
	RoleUnknown:     "unknown",
	RoleApplication: "application",
	RoleWindow:      "window",
	RoleDocument:    "document",
	RoleParagraph:   "paragraph",
	RoleMenuItem:    "menu-item",
	RoleLink:        "link",
	RoleButton:      "button",
	RoleTerminal:    "terminal",
	RoleStatusBar:   "status-bar",
}

// String implements fmt.Stringer.
func (r Role) String() string {
	if int(r) < len(roleNames) {
		return roleNames[r]
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// ComponentID uniquely identifies an accessible component on the desktop.
type ComponentID uint64

// Component is one node of an application's accessible tree. Access to a
// component's state through the accessibility interface is metered by its
// application's registry (each read models a round trip into the
// application process).
//
// Components are mutated only through their Application's methods, which
// deliver the corresponding events.
type Component struct {
	id       ComponentID
	role     Role
	name     string // e.g. window title or link target
	text     string // displayed text
	parent   *Component
	children []*Component
	app      *Application
}

// ID returns the component's identifier. (Identity is free: the hash key
// the daemon uses does not require a query round trip.)
func (c *Component) ID() ComponentID { return c.id }

// Role reads the component role through the accessibility interface.
func (c *Component) Role() Role { c.app.meter(); return c.role }

// Name reads the component name through the accessibility interface.
func (c *Component) Name() string { c.app.meter(); return c.name }

// Text reads the component's displayed text through the accessibility
// interface.
func (c *Component) Text() string { c.app.meter(); return c.text }

// Children reads the child list through the accessibility interface.
func (c *Component) Children() []*Component {
	c.app.meter()
	return append([]*Component(nil), c.children...)
}

// App returns the owning application.
func (c *Component) App() *Application { return c.app }

// Application is a simulated desktop application exposing an accessible
// tree. Mutations emit events through the registry; event delivery is
// synchronous: the mutating call does not return until every listener has
// processed the event, exactly the property that forces the daemon to keep
// event handling cheap.
type Application struct {
	name    string
	kind    string // application type, e.g. "browser", "terminal"
	reg     *Registry
	root    *Component
	focused bool

	mu sync.Mutex
}

// Name reports the application name (no round trip; the daemon caches it).
func (a *Application) Name() string { return a.name }

// Kind reports the application type.
func (a *Application) Kind() string { return a.kind }

// Root returns the application's root accessible component.
func (a *Application) Root() *Component { return a.root }

// Focused reports whether the application currently has window focus.
func (a *Application) Focused() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.focused
}

func (a *Application) meter() { atomic.AddUint64(&a.reg.queries, 1) }

// AddComponent creates a child component under parent (or the root when
// parent is nil) and delivers an EventAdded.
func (a *Application) AddComponent(parent *Component, role Role, name, text string) *Component {
	a.mu.Lock()
	if parent == nil {
		parent = a.root
	}
	if parent.app != a {
		a.mu.Unlock()
		panic("access: AddComponent with foreign parent")
	}
	c := &Component{
		id:     a.reg.nextID(),
		role:   role,
		name:   name,
		text:   text,
		parent: parent,
		app:    a,
	}
	parent.children = append(parent.children, c)
	a.mu.Unlock()
	a.reg.deliver(Event{Type: EventAdded, Component: c})
	return c
}

// SetText updates a component's displayed text and delivers an
// EventTextChanged.
func (a *Application) SetText(c *Component, text string) {
	a.mu.Lock()
	if c.app != a {
		a.mu.Unlock()
		panic("access: SetText on foreign component")
	}
	old := c.text
	c.text = text
	a.mu.Unlock()
	if old != text {
		a.reg.deliver(Event{Type: EventTextChanged, Component: c, OldText: old})
	}
}

// RemoveComponent detaches c (and its subtree) from the tree and delivers
// an EventRemoved.
func (a *Application) RemoveComponent(c *Component) {
	a.mu.Lock()
	if c.app != a || c.parent == nil {
		a.mu.Unlock()
		panic("access: RemoveComponent on root or foreign component")
	}
	sibs := c.parent.children
	for i, s := range sibs {
		if s == c {
			c.parent.children = append(sibs[:i], sibs[i+1:]...)
			break
		}
	}
	c.parent = nil
	a.mu.Unlock()
	a.reg.deliver(Event{Type: EventRemoved, Component: c})
}

// SelectText reports a mouse text selection inside c, the first half of
// the explicit-annotation gesture (§4.4).
func (a *Application) SelectText(c *Component, selected string) {
	a.reg.deliver(Event{Type: EventTextSelected, Component: c, Selection: selected})
}

// PressAnnotationKey reports the annotation key combination, the second
// half of the explicit-annotation gesture.
func (a *Application) PressAnnotationKey() {
	a.reg.deliver(Event{Type: EventAnnotateKey, App: a})
}
