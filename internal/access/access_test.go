package access

import (
	"fmt"
	"sync"
	"testing"

	"dejaview/internal/simclock"
)

// recordingSink collects sink calls for assertions.
type recordingSink struct {
	mu      sync.Mutex
	sets    []TextItem
	removes []ComponentID
	annots  []TextItem
	times   []simclock.Time
}

func (s *recordingSink) SetItem(t simclock.Time, item TextItem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sets = append(s.sets, item)
	s.times = append(s.times, t)
}

func (s *recordingSink) RemoveItem(t simclock.Time, id ComponentID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removes = append(s.removes, id)
}

func (s *recordingSink) Annotate(t simclock.Time, item TextItem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.annots = append(s.annots, item)
}

func (s *recordingSink) lastSetFor(id ComponentID) (TextItem, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.sets) - 1; i >= 0; i-- {
		if s.sets[i].Component == id {
			return s.sets[i], true
		}
	}
	return TextItem{}, false
}

func newDesktop() (*Registry, *simclock.Clock) {
	return NewRegistry(), simclock.New()
}

func TestRegistryRegisterAndFocus(t *testing.T) {
	reg, _ := newDesktop()
	ff := reg.Register("Firefox", "browser")
	oo := reg.Register("OpenOffice", "office")
	if len(reg.Applications()) != 2 {
		t.Fatalf("apps = %d, want 2", len(reg.Applications()))
	}
	reg.SetFocus(ff)
	if !ff.Focused() || oo.Focused() {
		t.Error("focus flags wrong after SetFocus(ff)")
	}
	reg.SetFocus(oo)
	if ff.Focused() || !oo.Focused() {
		t.Error("focus flags wrong after SetFocus(oo)")
	}
	if reg.Focus() != oo {
		t.Error("Focus() wrong")
	}
}

func TestComponentTreeMutation(t *testing.T) {
	reg, _ := newDesktop()
	app := reg.Register("Editor", "editor")
	win := app.AddComponent(nil, RoleWindow, "doc.txt - Editor", "")
	para := app.AddComponent(win, RoleParagraph, "", "hello world")
	if para.Text() != "hello world" {
		t.Errorf("Text = %q", para.Text())
	}
	app.SetText(para, "goodbye world")
	if para.Text() != "goodbye world" {
		t.Errorf("Text after SetText = %q", para.Text())
	}
	kids := win.Children()
	if len(kids) != 1 || kids[0] != para {
		t.Error("children wrong")
	}
	app.RemoveComponent(para)
	if len(win.Children()) != 0 {
		t.Error("remove did not detach")
	}
	if reg.Queries() == 0 {
		t.Error("accessibility reads should be metered")
	}
}

func TestDaemonStartupMirror(t *testing.T) {
	reg, clk := newDesktop()
	app := reg.Register("Firefox", "browser")
	win := app.AddComponent(nil, RoleWindow, "SOSP 2007 - Firefox", "")
	app.AddComponent(win, RoleParagraph, "", "deja view recorder")
	app.AddComponent(win, RoleLink, "http://example.org", "example link")

	sink := &recordingSink{}
	d := NewDaemon(reg, clk, sink)
	st := d.Stats()
	if st.MirrorNodes != 4 { // root + window + 2 text nodes
		t.Errorf("MirrorNodes = %d, want 4", st.MirrorNodes)
	}
	if st.StartupQueries == 0 {
		t.Error("startup traversal should cost queries")
	}
	if len(sink.sets) != 2 {
		t.Errorf("initial sink sets = %d, want 2", len(sink.sets))
	}
	item, ok := sink.lastSetFor(0)
	_ = item
	_ = ok
}

func TestDaemonEventCheapness(t *testing.T) {
	reg, clk := newDesktop()
	app := reg.Register("Terminal", "terminal")
	win := app.AddComponent(nil, RoleWindow, "bash", "")
	out := app.AddComponent(win, RoleTerminal, "", "$")
	// Add lots of inert siblings so a traversal would be expensive.
	for i := 0; i < 200; i++ {
		app.AddComponent(win, RoleParagraph, "", fmt.Sprintf("line %d", i))
	}
	sink := &recordingSink{}
	NewDaemon(reg, clk, sink)

	q0 := reg.Queries()
	app.SetText(out, "$ make")
	perEvent := reg.Queries() - q0
	// Mirror update should query only the changed component (1 read),
	// not the 200-node tree.
	if perEvent > 3 {
		t.Errorf("event processing used %d queries, want <= 3", perEvent)
	}
	got, ok := sink.lastSetFor(out.ID())
	if !ok || got.Text != "$ make" {
		t.Errorf("sink item = %+v, ok=%v", got, ok)
	}
}

func TestDaemonCapturesContext(t *testing.T) {
	reg, clk := newDesktop()
	app := reg.Register("Firefox", "browser")
	win := app.AddComponent(nil, RoleWindow, "Papers - Firefox", "")
	link := app.AddComponent(win, RoleLink, "http://sosp.org", "sosp program")
	sink := &recordingSink{}
	NewDaemon(reg, clk, sink)
	reg.SetFocus(app)
	app.SetText(link, "sosp 2007 program")

	got, ok := sink.lastSetFor(link.ID())
	if !ok {
		t.Fatal("no sink item for link")
	}
	if got.App != "Firefox" || got.AppKind != "browser" {
		t.Errorf("app context = %q/%q", got.App, got.AppKind)
	}
	if got.Window != "Papers - Firefox" {
		t.Errorf("window context = %q", got.Window)
	}
	if got.Role != RoleLink {
		t.Errorf("role = %v", got.Role)
	}
	if !got.Focused {
		t.Error("focused bit should be set after SetFocus")
	}
}

func TestDaemonRemoveClosesItems(t *testing.T) {
	reg, clk := newDesktop()
	app := reg.Register("Editor", "editor")
	win := app.AddComponent(nil, RoleWindow, "doc", "")
	para := app.AddComponent(win, RoleParagraph, "", "text body")
	sink := &recordingSink{}
	NewDaemon(reg, clk, sink)
	app.RemoveComponent(para)
	if len(sink.removes) != 1 || sink.removes[0] != para.ID() {
		t.Errorf("removes = %v", sink.removes)
	}
}

func TestDaemonRemoveSubtree(t *testing.T) {
	reg, clk := newDesktop()
	app := reg.Register("Browser", "browser")
	win := app.AddComponent(nil, RoleWindow, "tab", "")
	doc := app.AddComponent(win, RoleDocument, "", "page body")
	app.AddComponent(doc, RoleLink, "", "a link")
	sink := &recordingSink{}
	d := NewDaemon(reg, clk, sink)
	app.RemoveComponent(doc)
	if len(sink.removes) != 2 {
		t.Errorf("removes = %d, want 2 (doc and link)", len(sink.removes))
	}
	if d.Stats().MirrorNodes != 2 { // root + window
		t.Errorf("MirrorNodes = %d, want 2", d.Stats().MirrorNodes)
	}
}

func TestDaemonEmptyTextRemoves(t *testing.T) {
	reg, clk := newDesktop()
	app := reg.Register("Editor", "editor")
	win := app.AddComponent(nil, RoleWindow, "doc", "")
	para := app.AddComponent(win, RoleParagraph, "", "something")
	sink := &recordingSink{}
	NewDaemon(reg, clk, sink)
	app.SetText(para, "")
	if len(sink.removes) != 1 {
		t.Errorf("clearing text should remove the item, removes = %v", sink.removes)
	}
}

func TestDaemonAnnotationGesture(t *testing.T) {
	reg, clk := newDesktop()
	app := reg.Register("Editor", "editor")
	win := app.AddComponent(nil, RoleWindow, "notes", "")
	para := app.AddComponent(win, RoleParagraph, "", "project deadline friday")
	sink := &recordingSink{}
	NewDaemon(reg, clk, sink)

	app.SelectText(para, "deadline friday")
	app.PressAnnotationKey()
	if len(sink.annots) != 1 {
		t.Fatalf("annots = %d, want 1", len(sink.annots))
	}
	if sink.annots[0].Text != "deadline friday" {
		t.Errorf("annotation text = %q", sink.annots[0].Text)
	}
	// A second key press without a fresh selection is a no-op.
	app.PressAnnotationKey()
	if len(sink.annots) != 1 {
		t.Error("stale annotation fired twice")
	}
}

func TestDaemonFocusReindexes(t *testing.T) {
	reg, clk := newDesktop()
	app1 := reg.Register("A", "a")
	w1 := app1.AddComponent(nil, RoleWindow, "w1", "")
	app1.AddComponent(w1, RoleParagraph, "", "alpha")
	app2 := reg.Register("B", "b")
	w2 := app2.AddComponent(nil, RoleWindow, "w2", "")
	p2 := app2.AddComponent(w2, RoleParagraph, "", "beta")
	sink := &recordingSink{}
	NewDaemon(reg, clk, sink)

	reg.SetFocus(app2)
	got, ok := sink.lastSetFor(p2.ID())
	if !ok || !got.Focused {
		t.Errorf("after focus change item = %+v ok=%v, want Focused", got, ok)
	}
}

func TestDaemonLateApplication(t *testing.T) {
	reg, clk := newDesktop()
	sink := &recordingSink{}
	d := NewDaemon(reg, clk, sink)
	// Application started after the daemon.
	app := reg.Register("Late", "late")
	win := app.AddComponent(nil, RoleWindow, "late window", "")
	p := app.AddComponent(win, RoleParagraph, "", "late text")
	if _, ok := sink.lastSetFor(p.ID()); !ok {
		t.Error("late application's text not captured")
	}
	if d.Stats().MirrorNodes < 3 {
		t.Errorf("MirrorNodes = %d", d.Stats().MirrorNodes)
	}
}

func TestDirectCaptureIsExpensive(t *testing.T) {
	// The ablation: per-event full traversal must cost far more queries
	// than the mirror daemon for the same event stream.
	mkDesktop := func() (*Registry, *Application, *Component) {
		reg := NewRegistry()
		app := reg.Register("App", "app")
		win := app.AddComponent(nil, RoleWindow, "w", "")
		target := app.AddComponent(win, RoleTerminal, "", "x")
		for i := 0; i < 100; i++ {
			app.AddComponent(win, RoleParagraph, "", fmt.Sprintf("line %d", i))
		}
		return reg, app, target
	}

	regM, appM, tgtM := mkDesktop()
	clk := simclock.New()
	NewDaemon(regM, clk, &recordingSink{})
	q0 := regM.Queries()
	for i := 0; i < 10; i++ {
		appM.SetText(tgtM, fmt.Sprintf("x%d", i))
	}
	mirrorCost := regM.Queries() - q0

	regD, appD, tgtD := mkDesktop()
	NewDirectCapture(regD, clk, &recordingSink{})
	q0 = regD.Queries()
	for i := 0; i < 10; i++ {
		appD.SetText(tgtD, fmt.Sprintf("x%d", i))
	}
	directCost := regD.Queries() - q0

	if directCost < mirrorCost*20 {
		t.Errorf("direct capture cost %d vs mirror %d; expected >= 20x gap",
			directCost, mirrorCost)
	}
}

func TestUnregisterDeliversRemove(t *testing.T) {
	reg, clk := newDesktop()
	app := reg.Register("Gone", "gone")
	win := app.AddComponent(nil, RoleWindow, "w", "")
	app.AddComponent(win, RoleParagraph, "", "closing text")
	sink := &recordingSink{}
	NewDaemon(reg, clk, sink)
	reg.Unregister(app)
	if len(reg.Applications()) != 0 {
		t.Error("app still registered")
	}
	if len(sink.removes) == 0 {
		t.Error("unregister should close the app's text items")
	}
}
