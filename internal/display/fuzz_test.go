package display

import (
	"reflect"
	"testing"
)

// FuzzDecodeCommand throws arbitrary bytes at the display-command
// decoder, the same code path that replays every recorded session.
// Invariants: DecodeCommand never panics and never allocates from
// unvalidated dimensions; on success it consumes a plausible byte count
// and the decoded command re-encodes and re-decodes to itself (the
// codec is a true round trip for every accepted input).
//
// Run a short smoke locally with:
//
//	go test ./internal/display/ -run=NONE -fuzz=FuzzDecodeCommand -fuzztime=10s
func FuzzDecodeCommand(f *testing.F) {
	// Seeds: one well-formed encoding of each command type.
	seed := func(c Command) {
		b, err := EncodeCommand(nil, &c)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(SolidFill(1, NewRect(0, 0, 8, 8), Pixel(0xFF00FF00)))
	seed(Copy(2, NewRect(4, 4, 16, 16), Point{X: 1, Y: 2}))
	seed(Command{Type: CmdRaw, Time: 3, Dst: NewRect(0, 0, 2, 2), Pixels: make([]Pixel, 4)})
	seed(PatternFill(4, NewRect(0, 0, 4, 4), make([]Pixel, 4), 2, 2))
	seed(Command{Type: CmdBitmap, Time: 5, Dst: NewRect(0, 0, 8, 1),
		Fg: 1, Bg: 2, Bits: []byte{0xAA}})
	seed(Command{Type: CmdVideo, Time: 6, Dst: NewRect(0, 0, 4, 4), Frame: []byte{1, 2, 3}})
	f.Add([]byte{cmdMagic})
	f.Add(make([]byte, 36))

	f.Fuzz(func(t *testing.T, b []byte) {
		c, n, err := DecodeCommand(b)
		if err != nil {
			return
		}
		if n < 36 || n > len(b) {
			t.Fatalf("decoded length %d out of range (input %d)", n, len(b))
		}
		enc, err := EncodeCommand(nil, &c)
		if err != nil {
			t.Fatalf("accepted command does not re-encode: %v", err)
		}
		c2, n2, err := DecodeCommand(enc)
		if err != nil {
			t.Fatalf("re-encoded command does not decode: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("round trip changed the command:\n in:  %+v\n out: %+v", c, c2)
		}
	})
}
