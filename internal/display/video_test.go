package display

import (
	"reflect"
	"testing"
)

func TestVideoCommandApply(t *testing.T) {
	fb := NewFramebuffer(32, 32)
	c := Video(0, NewRect(0, 0, 32, 32), []byte("frame-1-data"))
	if err := fb.Apply(&c); err != nil {
		t.Fatal(err)
	}
	// Every pixel painted, opaque.
	for _, p := range fb.Pixels() {
		if p>>24 != 0xFF {
			t.Fatal("video pixel not opaque")
		}
	}
	// Deterministic decode: the same frame renders identically.
	fb2 := NewFramebuffer(32, 32)
	if err := fb2.Apply(&c); err != nil {
		t.Fatal(err)
	}
	if !fb.Equal(fb2) {
		t.Error("video decode not deterministic")
	}
	// A different frame renders differently.
	c2 := Video(0, NewRect(0, 0, 32, 32), []byte("frame-2-data"))
	if err := fb2.Apply(&c2); err != nil {
		t.Fatal(err)
	}
	if fb.Equal(fb2) {
		t.Error("different frames rendered identically")
	}
}

func TestVideoCommandValidate(t *testing.T) {
	c := Command{Type: CmdVideo, Dst: NewRect(0, 0, 4, 4)}
	if err := c.Validate(); err == nil {
		t.Error("empty frame accepted")
	}
}

func TestVideoCodecRoundTrip(t *testing.T) {
	c := Video(7, NewRect(0, 0, 64, 48), []byte{1, 2, 3, 4, 5})
	c.Seq = 9
	buf, err := EncodeCommand(nil, &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != EncodedSize(&c) {
		t.Errorf("size %d vs %d", len(buf), EncodedSize(&c))
	}
	got, n, err := DecodeCommand(buf)
	if err != nil || n != len(buf) {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestVideoPayloadIsFrameSized(t *testing.T) {
	// The property that makes video recording cheap: command size
	// scales with the compressed frame, not the covered area.
	frame := make([]byte, 4096)
	c := Video(0, NewRect(0, 0, 1024, 768), frame)
	if EncodedSize(&c) > 5000 {
		t.Errorf("video command size %d should be ~frame-sized", EncodedSize(&c))
	}
	raw := Raw(0, NewRect(0, 0, 1024, 768), make([]Pixel, 1024*768))
	if EncodedSize(&c)*100 > EncodedSize(&raw) {
		t.Error("video should be orders of magnitude smaller than raw")
	}
}

func TestVideoCoversForMerging(t *testing.T) {
	q := NewQueue()
	q.Push(Video(0, NewRect(0, 0, 64, 64), []byte("f1")))
	q.Push(Video(1, NewRect(0, 0, 64, 64), []byte("f2")))
	q.Push(Video(2, NewRect(0, 0, 64, 64), []byte("f3")))
	cmds := q.Flush()
	if len(cmds) != 1 || string(cmds[0].Frame) != "f3" {
		t.Errorf("frame merging kept %d commands", len(cmds))
	}
}

func TestVideoScalePreservesFrame(t *testing.T) {
	s := NewScaler(100, 100, 50, 50)
	c := Video(0, NewRect(0, 0, 100, 100), []byte("payload"))
	got := s.ScaleCommand(&c)
	if got.Dst != NewRect(0, 0, 50, 50) {
		t.Errorf("scaled dst = %v", got.Dst)
	}
	if string(got.Frame) != "payload" {
		t.Error("frame payload should be untouched by scaling")
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}
