package display

import (
	"sync"
	"testing"

	"dejaview/internal/simclock"
)

func newTestServer(w, h int) (*Server, *simclock.Clock) {
	clk := simclock.New()
	return NewServer(clk, w, h), clk
}

type collectSink struct {
	mu   sync.Mutex
	cmds []Command
}

func (s *collectSink) HandleCommand(c *Command) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cmds = append(s.cmds, *c)
}

func (s *collectSink) all() []Command {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Command(nil), s.cmds...)
}

func TestServerDuplicatesStreams(t *testing.T) {
	srv, _ := newTestServer(32, 32)
	viewer := &collectSink{}
	rec := &collectSink{}
	srv.AttachViewer(viewer)
	srv.SetRecorder(rec, nil)

	if err := srv.Submit(SolidFill(0, NewRect(0, 0, 8, 8), 1)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(Copy(0, NewRect(8, 8, 8, 8), Point{0, 0})); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(viewer.all()) != 2 || len(rec.all()) != 2 {
		t.Fatalf("viewer got %d, recorder got %d commands, want 2 each",
			len(viewer.all()), len(rec.all()))
	}
}

func TestServerTimestampsAndSeq(t *testing.T) {
	srv, clk := newTestServer(16, 16)
	if err := srv.Submit(SolidFill(0, NewRect(0, 0, 1, 1), 1)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * simclock.Millisecond)
	if err := srv.Submit(SolidFill(0, NewRect(4, 4, 1, 1), 1)); err != nil {
		t.Fatal(err)
	}
	cmds, err := srv.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 2 {
		t.Fatalf("got %d commands", len(cmds))
	}
	if cmds[0].Time != 0 || cmds[1].Time != 5*simclock.Millisecond {
		t.Errorf("timestamps %v, %v", cmds[0].Time, cmds[1].Time)
	}
	if cmds[0].Seq+1 != cmds[1].Seq {
		t.Errorf("seq not monotone: %d, %d", cmds[0].Seq, cmds[1].Seq)
	}
}

func TestServerApplyOnFlushOnly(t *testing.T) {
	srv, _ := newTestServer(8, 8)
	if err := srv.Submit(SolidFill(0, NewRect(0, 0, 8, 8), 3)); err != nil {
		t.Fatal(err)
	}
	if got := srv.Screen().At(0, 0); got != 0 {
		t.Error("submit should not touch the framebuffer before flush")
	}
	if srv.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", srv.Pending())
	}
	if _, err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Screen().At(0, 0); got != 3 {
		t.Errorf("after flush pixel = %v, want 3", got)
	}
}

func TestServerDamageTracking(t *testing.T) {
	srv, _ := newTestServer(32, 32)
	if !srv.Damage().Empty() {
		t.Error("fresh server should have no damage")
	}
	if err := srv.Submit(SolidFill(0, NewRect(2, 2, 4, 4), 1)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(SolidFill(0, NewRect(20, 20, 4, 4), 1)); err != nil {
		t.Fatal(err)
	}
	want := NewRect(2, 2, 22, 22)
	if got := srv.Damage(); got != want {
		t.Errorf("Damage = %v, want %v", got, want)
	}
	if _, err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	if !srv.Damage().Empty() {
		t.Error("damage should clear after flush")
	}
}

func TestServerScaledRecorder(t *testing.T) {
	srv, _ := newTestServer(100, 100)
	rec := &collectSink{}
	srv.SetRecorder(rec, NewScaler(100, 100, 50, 50))
	if err := srv.Submit(SolidFill(0, NewRect(10, 10, 20, 20), 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	got := rec.all()
	if len(got) != 1 {
		t.Fatalf("recorder got %d commands", len(got))
	}
	if got[0].Dst != NewRect(5, 5, 10, 10) {
		t.Errorf("recorded dst = %v, want scaled", got[0].Dst)
	}
	// Screen itself stays full resolution.
	if srv.Screen().At(15, 15) != 1 {
		t.Error("screen should be updated at full resolution")
	}
}

func TestServerDetachViewer(t *testing.T) {
	srv, _ := newTestServer(8, 8)
	v := &collectSink{}
	srv.AttachViewer(v)
	srv.DetachViewer(v)
	if err := srv.Submit(SolidFill(0, NewRect(0, 0, 1, 1), 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(v.all()) != 0 {
		t.Error("detached viewer still received commands")
	}
}

func TestServerStats(t *testing.T) {
	srv, _ := newTestServer(16, 16)
	if err := srv.Submit(SolidFill(0, NewRect(0, 0, 4, 4), 1)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(SolidFill(0, NewRect(0, 0, 16, 16), 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Commands != 2 {
		t.Errorf("Commands = %d, want 2", st.Commands)
	}
	if st.Merged != 1 {
		t.Errorf("Merged = %d, want 1 (first fill covered)", st.Merged)
	}
	if st.Flushes != 1 {
		t.Errorf("Flushes = %d, want 1", st.Flushes)
	}
	if st.EncodedBytes == 0 {
		t.Error("EncodedBytes should be non-zero")
	}
}

func TestServerSubmitInvalid(t *testing.T) {
	srv, _ := newTestServer(8, 8)
	err := srv.Submit(Command{Type: CmdRaw, Dst: NewRect(0, 0, 2, 2)})
	if err == nil {
		t.Error("Submit accepted malformed command")
	}
}

func TestServerRestoreScreen(t *testing.T) {
	srv, _ := newTestServer(8, 8)
	fb := NewFramebuffer(8, 8)
	c := SolidFill(0, NewRect(0, 0, 8, 8), 9)
	if err := fb.Apply(&c); err != nil {
		t.Fatal(err)
	}
	if err := srv.RestoreScreen(fb); err != nil {
		t.Fatal(err)
	}
	if srv.Screen().At(4, 4) != 9 {
		t.Error("RestoreScreen did not take effect")
	}
	if err := srv.RestoreScreen(NewFramebuffer(4, 4)); err == nil {
		t.Error("RestoreScreen accepted mismatched size")
	}
}

func TestServerConcurrentSubmit(t *testing.T) {
	srv, _ := newTestServer(64, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = srv.Submit(SolidFill(0, NewRect(g*8, i%64, 4, 1), Pixel(g)))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if _, err := srv.Flush(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if _, err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Commands != 400 {
		t.Errorf("Commands = %d, want 400", st.Commands)
	}
}
