package display

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dejaview/internal/simclock"
)

func TestCodecRoundTripEachType(t *testing.T) {
	cmds := []Command{
		Raw(5, NewRect(1, 2, 3, 2), []Pixel{1, 2, 3, 4, 5, 6}),
		Copy(6, NewRect(10, 10, 4, 4), Point{2, 3}),
		SolidFill(7, NewRect(0, 0, 8, 8), RGB(9, 9, 9)),
		PatternFill(8, NewRect(2, 2, 6, 6), []Pixel{1, 2, 3, 4}, 2, 2),
		Bitmap(9, NewRect(0, 0, 5, 2), []byte{0xA8, 0x50}, 1, 2),
	}
	for i := range cmds {
		cmds[i].Seq = uint64(100 + i)
		buf, err := EncodeCommand(nil, &cmds[i])
		if err != nil {
			t.Fatalf("encode %v: %v", cmds[i].Type, err)
		}
		if len(buf) != EncodedSize(&cmds[i]) {
			t.Errorf("%v: EncodedSize = %d, encoded %d bytes",
				cmds[i].Type, EncodedSize(&cmds[i]), len(buf))
		}
		got, n, err := DecodeCommand(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", cmds[i].Type, err)
		}
		if n != len(buf) {
			t.Errorf("%v: decode consumed %d of %d bytes", cmds[i].Type, n, len(buf))
		}
		if !reflect.DeepEqual(got, cmds[i]) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", cmds[i].Type, got, cmds[i])
		}
	}
}

func TestCodecStream(t *testing.T) {
	var log []byte
	var want []Command
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		c := randomCommand(rng, 64, 48, simclock.Time(i)*simclock.Millisecond)
		c.Seq = uint64(i)
		var err error
		log, err = EncodeCommand(log, &c)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, c)
	}
	var got []Command
	for off := 0; off < len(log); {
		c, n, err := DecodeCommand(log[off:])
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		got = append(got, c)
		off += n
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream round trip mismatch: %d vs %d commands", len(got), len(want))
	}
}

func TestCodecTruncated(t *testing.T) {
	c := Raw(1, NewRect(0, 0, 4, 4), make([]Pixel, 16))
	buf, err := EncodeCommand(nil, &c)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 10, 35, len(buf) - 1} {
		if _, _, err := DecodeCommand(buf[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("cut %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestCodecBadMagic(t *testing.T) {
	buf := make([]byte, 64)
	buf[0] = 0x00
	if _, _, err := DecodeCommand(buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestCodecBadType(t *testing.T) {
	c := SolidFill(0, NewRect(0, 0, 1, 1), 0)
	buf, err := EncodeCommand(nil, &c)
	if err != nil {
		t.Fatal(err)
	}
	buf[1] = 200 // bogus type
	if _, _, err := DecodeCommand(buf); err == nil {
		t.Error("decode accepted bogus command type")
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	bad := Command{Type: CmdRaw, Dst: NewRect(0, 0, 2, 2), Pixels: make([]Pixel, 1)}
	if _, err := EncodeCommand(nil, &bad); err == nil {
		t.Error("encode accepted malformed command")
	}
}

func TestScreenshotRoundTrip(t *testing.T) {
	fb := NewFramebuffer(13, 7)
	rng := rand.New(rand.NewSource(7))
	for i := range fb.Pixels() {
		fb.Pixels()[i] = Pixel(rng.Uint32())
	}
	buf := EncodeScreenshot(nil, fb)
	if len(buf) != ScreenshotEncodedSize(13, 7) {
		t.Errorf("encoded size %d, want %d", len(buf), ScreenshotEncodedSize(13, 7))
	}
	got, n, err := DecodeScreenshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if !got.Equal(fb) {
		t.Error("screenshot round trip mismatch")
	}
}

func TestScreenshotTruncated(t *testing.T) {
	fb := NewFramebuffer(4, 4)
	buf := EncodeScreenshot(nil, fb)
	if _, _, err := DecodeScreenshot(buf[:len(buf)-3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
	if _, _, err := DecodeScreenshot(buf[:5]); !errors.Is(err, ErrTruncated) {
		t.Errorf("header cut: err = %v, want ErrTruncated", err)
	}
}

func TestWriteCommand(t *testing.T) {
	var b bytes.Buffer
	c := SolidFill(3, NewRect(0, 0, 2, 2), 5)
	n, err := WriteCommand(&b, &c)
	if err != nil {
		t.Fatal(err)
	}
	if n != b.Len() || n != EncodedSize(&c) {
		t.Errorf("wrote %d bytes, buffer %d, want %d", n, b.Len(), EncodedSize(&c))
	}
}

// Property: encode→decode is the identity on arbitrary valid commands, and
// replaying the decoded command produces the same framebuffer effect.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCommand(rng, 40, 30, simclock.Time(rng.Int63()))
		c.Seq = rng.Uint64()
		buf, err := EncodeCommand(nil, &c)
		if err != nil {
			return false
		}
		got, n, err := DecodeCommand(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if !reflect.DeepEqual(got, c) {
			return false
		}
		a, b := NewFramebuffer(40, 30), NewFramebuffer(40, 30)
		if err := a.Apply(&c); err != nil {
			return false
		}
		if err := b.Apply(&got); err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
