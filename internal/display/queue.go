package display

// Queue buffers pending display commands and merges them so that only the
// result of the last update is delivered, implementing THINC's
// queue-and-merge optimization that DejaView uses to limit the frequency
// at which updates are recorded (§4.1).
//
// Merging discards a queued command when a later command completely
// overwrites its destination region (copy commands never overwrite, since
// their output depends on prior contents, and they also pin earlier
// commands that draw their source region). The queue preserves
// chronological order among surviving commands.
//
// Queue is not safe for concurrent use; the Server serializes access.
type Queue struct {
	cmds []Command
	// merged counts commands discarded by overwrite-merging, for the
	// recorder's storage accounting.
	merged int
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Len reports the number of pending commands.
func (q *Queue) Len() int { return len(q.cmds) }

// Merged reports how many commands have been discarded by merging since
// the queue was created.
func (q *Queue) Merged() int { return q.merged }

// Push appends c, first discarding any queued command whose entire output
// is overwritten by c and whose region is not needed as the source of a
// later queued copy.
func (q *Queue) Push(c Command) {
	if c.Type != CmdCopy && !c.Dst.Empty() {
		q.cmds = pruneCovered(q.cmds, &c, &q.merged)
	}
	q.cmds = append(q.cmds, c)
}

// pruneCovered removes commands from cmds that are fully covered by late,
// taking care not to remove a command whose destination overlaps the
// source region of any copy command that queued after it (the copy still
// needs those pixels). merged is incremented per removal.
func pruneCovered(cmds []Command, late *Command, merged *int) []Command {
	out := cmds[:0]
	for i := range cmds {
		c := &cmds[i]
		if late.Covers(c.Dst) && !sourceNeeded(cmds[i+1:], c.Dst) {
			*merged++
			continue
		}
		out = append(out, *c)
	}
	return out
}

// sourceNeeded reports whether any copy command in later reads from region r.
func sourceNeeded(later []Command, r Rect) bool {
	for i := range later {
		if later[i].Type == CmdCopy && later[i].SrcRect().Overlaps(r) {
			return true
		}
	}
	return false
}

// Flush removes and returns all pending commands in order.
func (q *Queue) Flush() []Command {
	out := q.cmds
	q.cmds = nil
	return out
}

// Peek returns the pending commands without removing them.
func (q *Queue) Peek() []Command { return q.cmds }

// PendingArea reports the union rectangle of all pending destinations,
// which the checkpoint policy uses as its display-activity measure.
func (q *Queue) PendingArea() Rect {
	var u Rect
	for i := range q.cmds {
		u = u.Union(q.cmds[i].Dst)
	}
	return u
}
