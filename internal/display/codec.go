package display

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dejaview/internal/simclock"
)

// The wire/log format is deliberately simple and append-friendly:
//
//	command  := header payload
//	header   := magic(1) type(1) flags(2) time(8) seq(8) dst(16) extra
//	screenshot := smagic(4) w(4) h(4) pixels(w*h*4)
//
// All integers are little-endian. The same encoding feeds the viewer
// stream and the record log, which is what makes recording nearly free
// relative to display generation (§4.1).

const (
	cmdMagic        = 0xD7
	screenshotMagic = 0x444A5653 // "DJVS"
	maxDim          = 1 << 15    // sanity bound on decoded dimensions
)

// Codec errors.
var (
	ErrBadMagic  = errors.New("display: bad magic byte")
	ErrTruncated = errors.New("display: truncated encoding")
)

func putRect(b []byte, r Rect) {
	binary.LittleEndian.PutUint32(b[0:], uint32(int32(r.X)))
	binary.LittleEndian.PutUint32(b[4:], uint32(int32(r.Y)))
	binary.LittleEndian.PutUint32(b[8:], uint32(int32(r.W)))
	binary.LittleEndian.PutUint32(b[12:], uint32(int32(r.H)))
}

func getRect(b []byte) Rect {
	return Rect{
		X: int(int32(binary.LittleEndian.Uint32(b[0:]))),
		Y: int(int32(binary.LittleEndian.Uint32(b[4:]))),
		W: int(int32(binary.LittleEndian.Uint32(b[8:]))),
		H: int(int32(binary.LittleEndian.Uint32(b[12:]))),
	}
}

// EncodedSize reports the exact number of bytes EncodeCommand will produce
// for c, letting the recorder maintain file offsets without buffering.
func EncodedSize(c *Command) int {
	n := 1 + 1 + 2 + 8 + 8 + 16 // magic, type, flags, time, seq, dst
	switch c.Type {
	case CmdRaw:
		n += 4 * len(c.Pixels)
	case CmdCopy:
		n += 8 // src point
	case CmdSolidFill:
		n += 4 // color
	case CmdPatternFill:
		n += 4 + 4 + 4*len(c.Pattern) // pw, ph, tile
	case CmdBitmap:
		n += 4 + 4 + 4 + len(c.Bits) // fg, bg, nbytes, bits
	case CmdVideo:
		n += 4 + len(c.Frame) // nbytes, frame
	}
	return n
}

// EncodeCommand appends the wire encoding of c to dst and returns the
// extended slice.
func EncodeCommand(dst []byte, c *Command) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return dst, err
	}
	var hdr [36]byte
	hdr[0] = cmdMagic
	hdr[1] = byte(c.Type)
	// hdr[2:4] flags, reserved
	binary.LittleEndian.PutUint64(hdr[4:], uint64(c.Time))
	binary.LittleEndian.PutUint64(hdr[12:], c.Seq)
	putRect(hdr[20:], c.Dst)
	dst = append(dst, hdr[:]...)

	var tmp [8]byte
	switch c.Type {
	case CmdRaw:
		for _, p := range c.Pixels {
			binary.LittleEndian.PutUint32(tmp[:4], uint32(p))
			dst = append(dst, tmp[:4]...)
		}
	case CmdCopy:
		binary.LittleEndian.PutUint32(tmp[0:], uint32(int32(c.Src.X)))
		binary.LittleEndian.PutUint32(tmp[4:], uint32(int32(c.Src.Y)))
		dst = append(dst, tmp[:8]...)
	case CmdSolidFill:
		binary.LittleEndian.PutUint32(tmp[:4], uint32(c.Fg))
		dst = append(dst, tmp[:4]...)
	case CmdPatternFill:
		binary.LittleEndian.PutUint32(tmp[0:], uint32(int32(c.PW)))
		binary.LittleEndian.PutUint32(tmp[4:], uint32(int32(c.PH)))
		dst = append(dst, tmp[:8]...)
		for _, p := range c.Pattern {
			binary.LittleEndian.PutUint32(tmp[:4], uint32(p))
			dst = append(dst, tmp[:4]...)
		}
	case CmdBitmap:
		binary.LittleEndian.PutUint32(tmp[:4], uint32(c.Fg))
		dst = append(dst, tmp[:4]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(c.Bg))
		dst = append(dst, tmp[:4]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(c.Bits)))
		dst = append(dst, tmp[:4]...)
		dst = append(dst, c.Bits...)
	case CmdVideo:
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(c.Frame)))
		dst = append(dst, tmp[:4]...)
		dst = append(dst, c.Frame...)
	}
	return dst, nil
}

// DecodeCommand decodes one command from b, returning the command and the
// number of bytes consumed.
func DecodeCommand(b []byte) (Command, int, error) {
	if len(b) < 36 {
		return Command{}, 0, ErrTruncatedf("command header", len(b), 36)
	}
	if b[0] != cmdMagic {
		return Command{}, 0, fmt.Errorf("%w: %#02x", ErrBadMagic, b[0])
	}
	c := Command{
		Type: CmdType(b[1]),
		Time: simclock.Time(binary.LittleEndian.Uint64(b[4:])),
		Seq:  binary.LittleEndian.Uint64(b[12:]),
		Dst:  getRect(b[20:]),
	}
	if !c.Type.Valid() {
		return Command{}, 0, fmt.Errorf("display: decode: invalid command type %d", b[1])
	}
	if c.Dst.W < 0 || c.Dst.H < 0 || c.Dst.W > maxDim || c.Dst.H > maxDim {
		return Command{}, 0, fmt.Errorf("display: decode: implausible destination %v", c.Dst)
	}
	n := 36
	rest := b[n:]
	switch c.Type {
	case CmdRaw:
		need := 4 * c.Dst.Area()
		if len(rest) < need {
			return Command{}, 0, ErrTruncatedf("raw payload", len(rest), need)
		}
		c.Pixels = make([]Pixel, c.Dst.Area())
		for i := range c.Pixels {
			c.Pixels[i] = Pixel(binary.LittleEndian.Uint32(rest[4*i:]))
		}
		n += need
	case CmdCopy:
		if len(rest) < 8 {
			return Command{}, 0, ErrTruncatedf("copy payload", len(rest), 8)
		}
		c.Src.X = int(int32(binary.LittleEndian.Uint32(rest[0:])))
		c.Src.Y = int(int32(binary.LittleEndian.Uint32(rest[4:])))
		n += 8
	case CmdSolidFill:
		if len(rest) < 4 {
			return Command{}, 0, ErrTruncatedf("fill payload", len(rest), 4)
		}
		c.Fg = Pixel(binary.LittleEndian.Uint32(rest))
		n += 4
	case CmdPatternFill:
		if len(rest) < 8 {
			return Command{}, 0, ErrTruncatedf("pattern header", len(rest), 8)
		}
		c.PW = int(int32(binary.LittleEndian.Uint32(rest[0:])))
		c.PH = int(int32(binary.LittleEndian.Uint32(rest[4:])))
		if c.PW <= 0 || c.PH <= 0 || c.PW > maxDim || c.PH > maxDim {
			return Command{}, 0, fmt.Errorf("display: decode: implausible pattern %dx%d", c.PW, c.PH)
		}
		need := 4 * c.PW * c.PH
		if len(rest) < 8+need {
			return Command{}, 0, ErrTruncatedf("pattern tile", len(rest)-8, need)
		}
		c.Pattern = make([]Pixel, c.PW*c.PH)
		for i := range c.Pattern {
			c.Pattern[i] = Pixel(binary.LittleEndian.Uint32(rest[8+4*i:]))
		}
		n += 8 + need
	case CmdBitmap:
		if len(rest) < 12 {
			return Command{}, 0, ErrTruncatedf("bitmap header", len(rest), 12)
		}
		c.Fg = Pixel(binary.LittleEndian.Uint32(rest[0:]))
		c.Bg = Pixel(binary.LittleEndian.Uint32(rest[4:]))
		nb := int(binary.LittleEndian.Uint32(rest[8:]))
		if nb < 0 || nb > maxDim*maxDim {
			return Command{}, 0, fmt.Errorf("display: decode: implausible bitmap size %d", nb)
		}
		if len(rest) < 12+nb {
			return Command{}, 0, ErrTruncatedf("bitmap bits", len(rest)-12, nb)
		}
		c.Bits = append([]byte(nil), rest[12:12+nb]...)
		n += 12 + nb
	case CmdVideo:
		if len(rest) < 4 {
			return Command{}, 0, ErrTruncatedf("video header", len(rest), 4)
		}
		nb := int(binary.LittleEndian.Uint32(rest))
		if nb <= 0 || nb > maxDim*maxDim {
			return Command{}, 0, fmt.Errorf("display: decode: implausible frame size %d", nb)
		}
		if len(rest) < 4+nb {
			return Command{}, 0, ErrTruncatedf("video frame", len(rest)-4, nb)
		}
		c.Frame = append([]byte(nil), rest[4:4+nb]...)
		n += 4 + nb
	}
	if err := c.Validate(); err != nil {
		return Command{}, 0, err
	}
	return c, n, nil
}

// ErrTruncatedf wraps ErrTruncated with context.
func ErrTruncatedf(what string, have, want int) error {
	return fmt.Errorf("%w: %s: have %d bytes, want %d", ErrTruncated, what, have, want)
}

// EncodeScreenshot appends the encoding of a full-screen snapshot to dst.
func EncodeScreenshot(dst []byte, f *Framebuffer) []byte {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], screenshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(f.w))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(f.h))
	dst = append(dst, hdr[:]...)
	var tmp [4]byte
	for _, p := range f.pix {
		binary.LittleEndian.PutUint32(tmp[:], uint32(p))
		dst = append(dst, tmp[:]...)
	}
	return dst
}

// ScreenshotEncodedSize reports the byte size of an encoded w×h screenshot.
func ScreenshotEncodedSize(w, h int) int { return 12 + 4*w*h }

// DecodeScreenshot decodes a screenshot from b, returning the framebuffer
// and bytes consumed.
func DecodeScreenshot(b []byte) (*Framebuffer, int, error) {
	if len(b) < 12 {
		return nil, 0, ErrTruncatedf("screenshot header", len(b), 12)
	}
	if binary.LittleEndian.Uint32(b) != screenshotMagic {
		return nil, 0, fmt.Errorf("%w: screenshot magic %#08x", ErrBadMagic, binary.LittleEndian.Uint32(b))
	}
	w := int(binary.LittleEndian.Uint32(b[4:]))
	h := int(binary.LittleEndian.Uint32(b[8:]))
	if w <= 0 || h <= 0 || w > maxDim || h > maxDim {
		return nil, 0, fmt.Errorf("display: decode: implausible screenshot size %dx%d", w, h)
	}
	need := 4 * w * h
	if len(b) < 12+need {
		return nil, 0, ErrTruncatedf("screenshot pixels", len(b)-12, need)
	}
	f := NewFramebuffer(w, h)
	for i := range f.pix {
		f.pix[i] = Pixel(binary.LittleEndian.Uint32(b[12+4*i:]))
	}
	return f, 12 + need, nil
}

// WriteCommand encodes c to w.
func WriteCommand(w io.Writer, c *Command) (int, error) {
	buf, err := EncodeCommand(nil, c)
	if err != nil {
		return 0, err
	}
	return w.Write(buf)
}
