package display

import (
	"fmt"

	"dejaview/internal/simclock"
)

// Pixel is a 32-bit ARGB pixel value.
type Pixel uint32

// ARGB assembles a pixel from its channels.
func ARGB(a, r, g, b uint8) Pixel {
	return Pixel(a)<<24 | Pixel(r)<<16 | Pixel(g)<<8 | Pixel(b)
}

// RGB assembles an opaque pixel.
func RGB(r, g, b uint8) Pixel { return ARGB(0xff, r, g, b) }

// CmdType identifies one of the THINC display command classes.
type CmdType uint8

// The THINC display protocol command classes (§3, §4.1 of the paper).
const (
	CmdInvalid CmdType = iota
	// CmdRaw carries unencoded pixel data for a region. It is the
	// fallback when no semantic command applies (e.g. decoded video
	// frames, photographs).
	CmdRaw
	// CmdCopy copies a screen region to another location; it captures
	// scrolling and window movement with constant-size commands.
	CmdCopy
	// CmdSolidFill fills a region with a single color (e.g. a plain
	// desktop background).
	CmdSolidFill
	// CmdPatternFill tiles a small pattern over a region.
	CmdPatternFill
	// CmdBitmap expands a 1-bit-deep bitmap with foreground/background
	// colors; text glyph rendering reduces to this.
	CmdBitmap
	// CmdVideo carries one compressed video frame for a region, THINC's
	// media-playback path: a full-screen movie needs only one command
	// per frame, sized like the compressed source rather than the raw
	// framebuffer (§6 observes 24 commands/s for full-screen video).
	CmdVideo
)

var cmdTypeNames = [...]string{
	CmdInvalid:     "invalid",
	CmdRaw:         "raw",
	CmdCopy:        "copy",
	CmdSolidFill:   "sfill",
	CmdPatternFill: "pfill",
	CmdBitmap:      "bitmap",
	CmdVideo:       "video",
}

// String implements fmt.Stringer.
func (t CmdType) String() string {
	if int(t) < len(cmdTypeNames) {
		return cmdTypeNames[t]
	}
	return fmt.Sprintf("cmdtype(%d)", uint8(t))
}

// Valid reports whether t is a known command type.
func (t CmdType) Valid() bool { return t > CmdInvalid && t <= CmdVideo }

// Command is a single THINC-style display protocol command. Commands are
// the unit of display generation, client update, and recording: the same
// encoding feeds the viewer stream and the append-only record log.
type Command struct {
	Type CmdType
	// Time stamps when the command was generated; the recorder uses it
	// for playback pacing and the timeline index.
	Time simclock.Time
	// Seq is a server-assigned monotone sequence number.
	Seq uint64
	// Dst is the affected screen region for every command type.
	Dst Rect
	// Src is the copy source origin (CmdCopy only).
	Src Point
	// Fg is the fill color (CmdSolidFill) or bitmap foreground (CmdBitmap).
	Fg Pixel
	// Bg is the bitmap background color (CmdBitmap only).
	Bg Pixel
	// Pattern holds the PW×PH tile for CmdPatternFill, row-major.
	Pattern []Pixel
	// PW, PH are the pattern tile dimensions.
	PW, PH int
	// Bits holds the 1bpp bitmap for CmdBitmap, row-major, each row
	// padded to a whole number of bytes, MSB first.
	Bits []byte
	// Pixels holds the raw region data for CmdRaw, row-major, Dst.W*Dst.H
	// pixels.
	Pixels []Pixel
	// Frame holds the compressed video payload for CmdVideo.
	Frame []byte
}

// Raw builds a raw-pixel command. pixels must contain dst.W*dst.H entries;
// the slice is retained, not copied.
func Raw(t simclock.Time, dst Rect, pixels []Pixel) Command {
	return Command{Type: CmdRaw, Time: t, Dst: dst, Pixels: pixels}
}

// Copy builds a screen-to-screen copy command moving a dst.W×dst.H region
// whose top-left corner is src to dst.
func Copy(t simclock.Time, dst Rect, src Point) Command {
	return Command{Type: CmdCopy, Time: t, Dst: dst, Src: src}
}

// SolidFill builds a solid fill command.
func SolidFill(t simclock.Time, dst Rect, color Pixel) Command {
	return Command{Type: CmdSolidFill, Time: t, Dst: dst, Fg: color}
}

// PatternFill builds a pattern fill command tiling a pw×ph pattern over dst.
func PatternFill(t simclock.Time, dst Rect, pattern []Pixel, pw, ph int) Command {
	return Command{Type: CmdPatternFill, Time: t, Dst: dst, Pattern: pattern, PW: pw, PH: ph}
}

// Bitmap builds a glyph bitmap command. bits is row-major 1bpp data with
// rows padded to byte boundaries, MSB first.
func Bitmap(t simclock.Time, dst Rect, bits []byte, fg, bg Pixel) Command {
	return Command{Type: CmdBitmap, Time: t, Dst: dst, Bits: bits, Fg: fg, Bg: bg}
}

// Video builds a compressed-video-frame command covering dst.
func Video(t simclock.Time, dst Rect, frame []byte) Command {
	return Command{Type: CmdVideo, Time: t, Dst: dst, Frame: frame}
}

// Validate checks internal consistency of the command (payload sizes match
// the destination region).
func (c *Command) Validate() error {
	if !c.Type.Valid() {
		return fmt.Errorf("display: invalid command type %v", c.Type)
	}
	if c.Dst.Empty() {
		return fmt.Errorf("display: %v command with empty destination %v", c.Type, c.Dst)
	}
	switch c.Type {
	case CmdRaw:
		if len(c.Pixels) != c.Dst.Area() {
			return fmt.Errorf("display: raw command %v has %d pixels, want %d",
				c.Dst, len(c.Pixels), c.Dst.Area())
		}
	case CmdPatternFill:
		if c.PW <= 0 || c.PH <= 0 {
			return fmt.Errorf("display: pattern fill with %dx%d tile", c.PW, c.PH)
		}
		if len(c.Pattern) != c.PW*c.PH {
			return fmt.Errorf("display: pattern fill has %d tile pixels, want %d",
				len(c.Pattern), c.PW*c.PH)
		}
	case CmdBitmap:
		rowBytes := (c.Dst.W + 7) / 8
		if len(c.Bits) != rowBytes*c.Dst.H {
			return fmt.Errorf("display: bitmap command %v has %d bytes, want %d",
				c.Dst, len(c.Bits), rowBytes*c.Dst.H)
		}
	case CmdVideo:
		if len(c.Frame) == 0 {
			return fmt.Errorf("display: video command %v with empty frame", c.Dst)
		}
	}
	return nil
}

// Covers reports whether applying c completely overwrites every pixel of
// region r. Copy commands never report covering (their effect depends on
// prior screen contents).
func (c *Command) Covers(r Rect) bool {
	if c.Type == CmdCopy {
		return false
	}
	return c.Dst.Contains(r)
}

// SrcRect returns the source region read by a copy command, or an empty
// rectangle for other types.
func (c *Command) SrcRect() Rect {
	if c.Type != CmdCopy {
		return Rect{}
	}
	return Rect{X: c.Src.X, Y: c.Src.Y, W: c.Dst.W, H: c.Dst.H}
}

// PayloadBytes reports the size of the command's variable-length payload,
// which dominates storage for raw commands.
func (c *Command) PayloadBytes() int {
	return 4*len(c.Pixels) + 4*len(c.Pattern) + len(c.Bits) + len(c.Frame)
}

// String implements fmt.Stringer.
func (c *Command) String() string {
	switch c.Type {
	case CmdCopy:
		return fmt.Sprintf("@%v %v %v from (%d,%d)", c.Time, c.Type, c.Dst, c.Src.X, c.Src.Y)
	case CmdSolidFill:
		return fmt.Sprintf("@%v %v %v color %#08x", c.Time, c.Type, c.Dst, uint32(c.Fg))
	default:
		return fmt.Sprintf("@%v %v %v", c.Time, c.Type, c.Dst)
	}
}
