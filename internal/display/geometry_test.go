package display

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectEmpty(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{Rect{}, true},
		{Rect{W: 1, H: 0}, true},
		{Rect{W: 0, H: 1}, true},
		{Rect{W: -3, H: 5}, true},
		{Rect{W: 1, H: 1}, false},
		{Rect{X: -10, Y: -10, W: 1, H: 1}, false},
	}
	for _, c := range cases {
		if got := c.r.Empty(); got != c.want {
			t.Errorf("%v.Empty() = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestRectArea(t *testing.T) {
	if got := (Rect{W: 4, H: 5}).Area(); got != 20 {
		t.Errorf("Area = %d, want 20", got)
	}
	if got := (Rect{W: -4, H: 5}).Area(); got != 0 {
		t.Errorf("empty Area = %d, want 0", got)
	}
}

func TestRectContains(t *testing.T) {
	outer := NewRect(10, 10, 100, 100)
	cases := []struct {
		inner Rect
		want  bool
	}{
		{NewRect(10, 10, 100, 100), true},
		{NewRect(20, 20, 10, 10), true},
		{NewRect(10, 10, 101, 100), false},
		{NewRect(9, 10, 10, 10), false},
		{NewRect(105, 105, 10, 10), false},
		{Rect{}, true}, // empty is contained everywhere
	}
	for _, c := range cases {
		if got := outer.Contains(c.inner); got != c.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", outer, c.inner, got, c.want)
		}
	}
	if (Rect{}).Contains(NewRect(0, 0, 1, 1)) {
		t.Error("empty rect should not contain a non-empty rect")
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 10, 10)
	got := a.Intersect(b)
	want := NewRect(5, 5, 5, 5)
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("Overlaps should be true both ways")
	}
	c := NewRect(20, 20, 5, 5)
	if !a.Intersect(c).Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", a.Intersect(c))
	}
	if a.Overlaps(c) {
		t.Error("disjoint rects should not overlap")
	}
	// Touching edges do not overlap.
	d := NewRect(10, 0, 5, 10)
	if a.Overlaps(d) {
		t.Error("edge-adjacent rects should not overlap")
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(20, 20, 5, 5)
	got := a.Union(b)
	want := NewRect(0, 0, 25, 25)
	if got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty.Union(a) = %v, want %v", got, a)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("a.Union(empty) = %v, want %v", got, a)
	}
}

func TestRectClip(t *testing.T) {
	r := NewRect(-5, -5, 20, 20)
	got := r.Clip(10, 10)
	want := NewRect(0, 0, 10, 10)
	if got != want {
		t.Errorf("Clip = %v, want %v", got, want)
	}
}

func TestRectContainsPoint(t *testing.T) {
	r := NewRect(2, 3, 4, 5)
	if !r.ContainsPoint(Point{2, 3}) {
		t.Error("top-left corner should be inside")
	}
	if r.ContainsPoint(Point{6, 8}) {
		t.Error("bottom-right limit should be outside (exclusive)")
	}
	if !r.ContainsPoint(Point{5, 7}) {
		t.Error("last pixel should be inside")
	}
}

func randRect(r *rand.Rand) Rect {
	return Rect{
		X: r.Intn(64) - 16,
		Y: r.Intn(64) - 16,
		W: r.Intn(48),
		H: r.Intn(48),
	}
}

// Property: intersection is contained in both operands and is the largest
// rect with that property for point membership.
func TestRectIntersectProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randRect(r), randRect(r)
		i := a.Intersect(b)
		if i.Empty() {
			return true
		}
		return a.Contains(i) && b.Contains(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: union contains both operands.
func TestRectUnionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randRect(r), randRect(r)
		u := a.Union(b)
		okA := a.Empty() || u.Contains(a)
		okB := b.Empty() || u.Contains(b)
		return okA && okB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: point membership in the intersection equals membership in both.
func TestRectIntersectPointwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		i := a.Intersect(b)
		for n := 0; n < 32; n++ {
			p := Point{rng.Intn(96) - 24, rng.Intn(96) - 24}
			inBoth := a.ContainsPoint(p) && b.ContainsPoint(p)
			if i.ContainsPoint(p) != inBoth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
