package display

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dejaview/internal/simclock"
)

func TestFramebufferSolidFill(t *testing.T) {
	fb := NewFramebuffer(16, 16)
	c := SolidFill(0, NewRect(4, 4, 8, 8), RGB(255, 0, 0))
	if err := fb.Apply(&c); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			want := Pixel(0)
			if x >= 4 && x < 12 && y >= 4 && y < 12 {
				want = RGB(255, 0, 0)
			}
			if got := fb.At(x, y); got != want {
				t.Fatalf("pixel (%d,%d) = %#x, want %#x", x, y, got, want)
			}
		}
	}
}

func TestFramebufferRaw(t *testing.T) {
	fb := NewFramebuffer(8, 8)
	pix := make([]Pixel, 4)
	for i := range pix {
		pix[i] = Pixel(i + 1)
	}
	c := Raw(0, NewRect(2, 3, 2, 2), pix)
	if err := fb.Apply(&c); err != nil {
		t.Fatal(err)
	}
	if fb.At(2, 3) != 1 || fb.At(3, 3) != 2 || fb.At(2, 4) != 3 || fb.At(3, 4) != 4 {
		t.Errorf("raw apply wrong: %v %v %v %v",
			fb.At(2, 3), fb.At(3, 3), fb.At(2, 4), fb.At(3, 4))
	}
}

func TestFramebufferRawClipped(t *testing.T) {
	fb := NewFramebuffer(4, 4)
	pix := make([]Pixel, 9)
	for i := range pix {
		pix[i] = Pixel(i + 10)
	}
	// Destination hangs off the bottom-right corner.
	c := Raw(0, NewRect(2, 2, 3, 3), pix)
	if err := fb.Apply(&c); err != nil {
		t.Fatal(err)
	}
	if fb.At(2, 2) != 10 || fb.At(3, 2) != 11 {
		t.Errorf("clipped raw top row wrong: %v %v", fb.At(2, 2), fb.At(3, 2))
	}
	if fb.At(2, 3) != 13 || fb.At(3, 3) != 14 {
		t.Errorf("clipped raw second row wrong: %v %v", fb.At(2, 3), fb.At(3, 3))
	}
}

func TestFramebufferCopyNonOverlapping(t *testing.T) {
	fb := NewFramebuffer(16, 16)
	fill := SolidFill(0, NewRect(0, 0, 4, 4), RGB(0, 255, 0))
	if err := fb.Apply(&fill); err != nil {
		t.Fatal(err)
	}
	cp := Copy(0, NewRect(8, 8, 4, 4), Point{0, 0})
	if err := fb.Apply(&cp); err != nil {
		t.Fatal(err)
	}
	if fb.At(8, 8) != RGB(0, 255, 0) || fb.At(11, 11) != RGB(0, 255, 0) {
		t.Error("copy did not duplicate source region")
	}
	if fb.At(0, 0) != RGB(0, 255, 0) {
		t.Error("copy should not disturb source")
	}
}

// TestFramebufferCopyOverlapping exercises the scroll case: moving a
// region up by one row within itself must behave like memmove.
func TestFramebufferCopyOverlapping(t *testing.T) {
	fb := NewFramebuffer(4, 8)
	// Paint row y with value y+1.
	for y := 0; y < 8; y++ {
		c := SolidFill(0, NewRect(0, y, 4, 1), Pixel(y+1))
		if err := fb.Apply(&c); err != nil {
			t.Fatal(err)
		}
	}
	// Scroll up: copy rows 1..7 to rows 0..6.
	cp := Copy(0, NewRect(0, 0, 4, 7), Point{0, 1})
	if err := fb.Apply(&cp); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 7; y++ {
		if got := fb.At(0, y); got != Pixel(y+2) {
			t.Fatalf("after scroll row %d = %v, want %v", y, got, y+2)
		}
	}
	// Scroll down: copy rows 0..6 to rows 1..7 (overlap in the other
	// direction).
	cp2 := Copy(0, NewRect(0, 1, 4, 7), Point{0, 0})
	if err := fb.Apply(&cp2); err != nil {
		t.Fatal(err)
	}
	for y := 1; y < 8; y++ {
		if got := fb.At(0, y); got != Pixel(y+1) {
			t.Fatalf("after scroll-down row %d = %v, want %v", y, got, y+1)
		}
	}
}

func TestFramebufferPattern(t *testing.T) {
	fb := NewFramebuffer(8, 8)
	tile := []Pixel{1, 2, 3, 4} // 2x2
	c := PatternFill(0, NewRect(0, 0, 4, 4), tile, 2, 2)
	if err := fb.Apply(&c); err != nil {
		t.Fatal(err)
	}
	want := [][]Pixel{
		{1, 2, 1, 2},
		{3, 4, 3, 4},
		{1, 2, 1, 2},
		{3, 4, 3, 4},
	}
	for y := range want {
		for x := range want[y] {
			if got := fb.At(x, y); got != want[y][x] {
				t.Fatalf("pattern (%d,%d) = %v, want %v", x, y, got, want[y][x])
			}
		}
	}
}

func TestFramebufferBitmap(t *testing.T) {
	fb := NewFramebuffer(8, 8)
	// A 5-wide, 2-high glyph: 10101 / 01010, each row one byte.
	bits := []byte{0b10101000, 0b01010000}
	fg, bg := RGB(255, 255, 255), RGB(1, 1, 1)
	c := Bitmap(0, NewRect(1, 1, 5, 2), bits, fg, bg)
	if err := fb.Apply(&c); err != nil {
		t.Fatal(err)
	}
	wantRow0 := []Pixel{fg, bg, fg, bg, fg}
	wantRow1 := []Pixel{bg, fg, bg, fg, bg}
	for x := 0; x < 5; x++ {
		if got := fb.At(1+x, 1); got != wantRow0[x] {
			t.Errorf("bitmap row0 x=%d: %v want %v", x, got, wantRow0[x])
		}
		if got := fb.At(1+x, 2); got != wantRow1[x] {
			t.Errorf("bitmap row1 x=%d: %v want %v", x, got, wantRow1[x])
		}
	}
}

func TestFramebufferValidateErrors(t *testing.T) {
	fb := NewFramebuffer(8, 8)
	bad := []Command{
		{Type: CmdRaw, Dst: NewRect(0, 0, 2, 2), Pixels: make([]Pixel, 3)},
		{Type: CmdInvalid, Dst: NewRect(0, 0, 1, 1)},
		{Type: CmdSolidFill, Dst: Rect{}},
		{Type: CmdPatternFill, Dst: NewRect(0, 0, 2, 2), Pattern: []Pixel{1}, PW: 2, PH: 2},
		{Type: CmdBitmap, Dst: NewRect(0, 0, 9, 1), Bits: []byte{0}},
	}
	for i, c := range bad {
		if err := fb.Apply(&c); err == nil {
			t.Errorf("case %d: Apply accepted malformed command %+v", i, c)
		}
	}
}

func TestFramebufferSnapshotIsolation(t *testing.T) {
	fb := NewFramebuffer(4, 4)
	snap := fb.Snapshot()
	c := SolidFill(0, NewRect(0, 0, 4, 4), 7)
	if err := fb.Apply(&c); err != nil {
		t.Fatal(err)
	}
	if snap.At(0, 0) != 0 {
		t.Error("snapshot mutated by later apply")
	}
	if fb.Equal(snap) {
		t.Error("framebuffer should differ from old snapshot")
	}
	if err := fb.CopyFrom(snap); err != nil {
		t.Fatal(err)
	}
	if !fb.Equal(snap) {
		t.Error("CopyFrom should restore equality")
	}
}

func TestFramebufferCopyFromSizeMismatch(t *testing.T) {
	a := NewFramebuffer(4, 4)
	b := NewFramebuffer(5, 4)
	if err := a.CopyFrom(b); err == nil {
		t.Error("CopyFrom with size mismatch should error")
	}
}

func TestFramebufferDiffFraction(t *testing.T) {
	a := NewFramebuffer(10, 10)
	b := NewFramebuffer(10, 10)
	if d := a.DiffFraction(b); d != 0 {
		t.Errorf("identical diff = %v, want 0", d)
	}
	c := SolidFill(0, NewRect(0, 0, 5, 10), 9)
	if err := b.Apply(&c); err != nil {
		t.Fatal(err)
	}
	if d := a.DiffFraction(b); d != 0.5 {
		t.Errorf("half diff = %v, want 0.5", d)
	}
	if d := a.DiffFraction(NewFramebuffer(3, 3)); d != 1 {
		t.Errorf("size mismatch diff = %v, want 1", d)
	}
}

func TestFramebufferHashChanges(t *testing.T) {
	a := NewFramebuffer(8, 8)
	h0 := a.Hash()
	c := SolidFill(0, NewRect(3, 3, 1, 1), 1)
	if err := a.Apply(&c); err != nil {
		t.Fatal(err)
	}
	if a.Hash() == h0 {
		t.Error("hash should change when a pixel changes")
	}
}

func TestFramebufferOutOfBoundsAccess(t *testing.T) {
	fb := NewFramebuffer(4, 4)
	if fb.At(-1, 0) != 0 || fb.At(0, -1) != 0 || fb.At(4, 0) != 0 || fb.At(0, 4) != 0 {
		t.Error("out-of-bounds At should return 0")
	}
	fb.Set(-1, -1, 5) // must not panic
	fb.Set(100, 100, 5)
}

// randomCommand builds an arbitrary valid command for property tests.
func randomCommand(rng *rand.Rand, w, h int, t simclock.Time) Command {
	dst := Rect{X: rng.Intn(w), Y: rng.Intn(h), W: 1 + rng.Intn(w/2), H: 1 + rng.Intn(h/2)}
	switch rng.Intn(5) {
	case 0:
		pix := make([]Pixel, dst.Area())
		for i := range pix {
			pix[i] = Pixel(rng.Uint32())
		}
		return Raw(t, dst, pix)
	case 1:
		return Copy(t, dst, Point{rng.Intn(w), rng.Intn(h)})
	case 2:
		return SolidFill(t, dst, Pixel(rng.Uint32()))
	case 3:
		pw, ph := 1+rng.Intn(4), 1+rng.Intn(4)
		tile := make([]Pixel, pw*ph)
		for i := range tile {
			tile[i] = Pixel(rng.Uint32())
		}
		return PatternFill(t, dst, tile, pw, ph)
	default:
		rowBytes := (dst.W + 7) / 8
		bits := make([]byte, rowBytes*dst.H)
		rng.Read(bits)
		return Bitmap(t, dst, bits, Pixel(rng.Uint32()), Pixel(rng.Uint32()))
	}
}

// Property: applying the same command sequence to two framebuffers yields
// identical contents (Apply is deterministic) — the foundation of
// command-log playback.
func TestFramebufferApplyDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewFramebuffer(32, 24)
		b := NewFramebuffer(32, 24)
		for i := 0; i < 20; i++ {
			c := randomCommand(rng, 32, 24, simclock.Time(i))
			if err := a.Apply(&c); err != nil {
				return false
			}
			if err := b.Apply(&c); err != nil {
				return false
			}
		}
		return a.Equal(b) && a.Hash() == b.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a non-copy command that covers the whole screen makes prior
// history irrelevant.
func TestFramebufferFullCoverResets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewFramebuffer(16, 16)
		b := NewFramebuffer(16, 16)
		// Divergent history on a only.
		for i := 0; i < 10; i++ {
			c := randomCommand(rng, 16, 16, 0)
			if err := a.Apply(&c); err != nil {
				return false
			}
		}
		fill := SolidFill(0, NewRect(0, 0, 16, 16), Pixel(rng.Uint32()))
		if err := a.Apply(&fill); err != nil {
			return false
		}
		if err := b.Apply(&fill); err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
