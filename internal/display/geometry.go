package display

import "fmt"

// Point is a pixel coordinate on the virtual screen.
type Point struct {
	X, Y int
}

// Rect is an axis-aligned screen region. W and H are in pixels; a Rect with
// W <= 0 or H <= 0 is empty.
type Rect struct {
	X, Y, W, H int
}

// NewRect is a convenience constructor.
func NewRect(x, y, w, h int) Rect { return Rect{X: x, Y: y, W: w, H: h} }

// Empty reports whether the rectangle contains no pixels.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Area reports the number of pixels covered by r.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	if s.Empty() {
		return true
	}
	if r.Empty() {
		return false
	}
	return s.X >= r.X && s.Y >= r.Y &&
		s.X+s.W <= r.X+r.W && s.Y+s.H <= r.Y+r.H
}

// ContainsPoint reports whether the pixel at p lies inside r.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.X && p.X < r.X+r.W && p.Y >= r.Y && p.Y < r.Y+r.H
}

// Intersect returns the overlap of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	x1 := max(r.X, s.X)
	y1 := max(r.Y, s.Y)
	x2 := min(r.X+r.W, s.X+s.W)
	y2 := min(r.Y+r.H, s.Y+s.H)
	if x2 <= x1 || y2 <= y1 {
		return Rect{}
	}
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// Overlaps reports whether r and s share at least one pixel.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Union returns the smallest rectangle containing both r and s. The union
// of an empty rectangle with s is s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	x1 := min(r.X, s.X)
	y1 := min(r.Y, s.Y)
	x2 := max(r.X+r.W, s.X+s.W)
	y2 := max(r.Y+r.H, s.Y+s.H)
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// Clip returns r clipped to the bounds of a w×h screen.
func (r Rect) Clip(w, h int) Rect {
	return r.Intersect(Rect{W: w, H: h})
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("%dx%d+%d+%d", r.W, r.H, r.X, r.Y)
}
