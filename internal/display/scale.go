package display

// Screen scaling (§4.1): THINC can resize the display to accommodate a wide
// range of resolutions, and DejaView rescales *recorded* commands
// independently of the viewed resolution — e.g. record at full desktop
// resolution while viewing on a PDA, or record reduced-resolution output to
// save storage.
//
// Scaling uses nearest-neighbor resampling, which matches the synthetic
// content of desktop screens (the paper's argument against video codecs).

// Scaler rescales commands from a source resolution to a target resolution.
type Scaler struct {
	srcW, srcH int
	dstW, dstH int
}

// NewScaler builds a scaler mapping srcW×srcH coordinates onto dstW×dstH.
func NewScaler(srcW, srcH, dstW, dstH int) *Scaler {
	if srcW <= 0 || srcH <= 0 || dstW <= 0 || dstH <= 0 {
		panic("display: NewScaler: non-positive dimension")
	}
	return &Scaler{srcW: srcW, srcH: srcH, dstW: dstW, dstH: dstH}
}

// Identity reports whether the scaler is a no-op.
func (s *Scaler) Identity() bool { return s.srcW == s.dstW && s.srcH == s.dstH }

func (s *Scaler) mapX(x int) int { return x * s.dstW / s.srcW }
func (s *Scaler) mapY(y int) int { return y * s.dstH / s.srcH }

// ScaleRect maps a source-space rectangle to target space. Non-empty
// rectangles stay non-empty (at least one pixel survives) so that no
// drawing is silently lost.
func (s *Scaler) ScaleRect(r Rect) Rect {
	if r.Empty() {
		return Rect{}
	}
	x1, y1 := s.mapX(r.X), s.mapY(r.Y)
	x2, y2 := s.mapX(r.X+r.W), s.mapY(r.Y+r.H)
	if x2 <= x1 {
		x2 = x1 + 1
	}
	if y2 <= y1 {
		y2 = y1 + 1
	}
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// ScaleCommand returns a copy of c rescaled to the target resolution.
// Copy commands whose source and destination no longer align exactly are
// preserved (both rects are scaled with the same mapping, so relative
// motion is kept). Raw and bitmap payloads are resampled; bitmap commands
// whose glyph bits cannot be meaningfully resampled at very small scales
// degrade to raw commands rendered through resampling.
func (s *Scaler) ScaleCommand(c *Command) Command {
	if s.Identity() {
		return *c
	}
	out := *c
	out.Dst = s.ScaleRect(c.Dst)
	switch c.Type {
	case CmdCopy:
		out.Src = Point{X: s.mapX(c.Src.X), Y: s.mapY(c.Src.Y)}
	case CmdRaw:
		out.Pixels = resamplePixels(c.Pixels, c.Dst.W, c.Dst.H, out.Dst.W, out.Dst.H)
	case CmdBitmap:
		// Expand to pixels, resample, and emit as raw: glyph bitmaps do
		// not survive sub-pixel scaling as 1bpp data.
		expanded := make([]Pixel, c.Dst.Area())
		rowBytes := (c.Dst.W + 7) / 8
		for y := 0; y < c.Dst.H; y++ {
			for x := 0; x < c.Dst.W; x++ {
				bit := c.Bits[y*rowBytes+x/8] >> (7 - uint(x%8)) & 1
				if bit != 0 {
					expanded[y*c.Dst.W+x] = c.Fg
				} else {
					expanded[y*c.Dst.W+x] = c.Bg
				}
			}
		}
		out.Type = CmdRaw
		out.Bits = nil
		out.Pixels = resamplePixels(expanded, c.Dst.W, c.Dst.H, out.Dst.W, out.Dst.H)
	case CmdPatternFill:
		// The tile itself is kept at native size; pattern fills are
		// resolution-independent by construction.
	case CmdVideo:
		// The compressed frame is resolution-independent: the decoder
		// renders into whatever destination rectangle it is given.
	}
	return out
}

// ScaleFramebuffer resamples an entire framebuffer to the target size,
// used when a playback client views a record made at another resolution.
func (s *Scaler) ScaleFramebuffer(f *Framebuffer) *Framebuffer {
	if s.Identity() {
		return f.Snapshot()
	}
	out := NewFramebuffer(s.dstW, s.dstH)
	for y := 0; y < s.dstH; y++ {
		sy := y * s.srcH / s.dstH
		for x := 0; x < s.dstW; x++ {
			sx := x * s.srcW / s.dstW
			out.pix[y*s.dstW+x] = f.pix[sy*f.w+sx]
		}
	}
	return out
}

func resamplePixels(src []Pixel, sw, sh, dw, dh int) []Pixel {
	out := make([]Pixel, dw*dh)
	for y := 0; y < dh; y++ {
		sy := y * sh / dh
		for x := 0; x < dw; x++ {
			sx := x * sw / dw
			out[y*dw+x] = src[sy*sw+sx]
		}
	}
	return out
}
