package display

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScalerIdentity(t *testing.T) {
	s := NewScaler(100, 100, 100, 100)
	if !s.Identity() {
		t.Error("same-size scaler should be identity")
	}
	c := SolidFill(0, NewRect(5, 5, 10, 10), 1)
	got := s.ScaleCommand(&c)
	if got.Dst != c.Dst || got.Type != c.Type {
		t.Errorf("identity scale changed command: %v", got)
	}
}

func TestScalerHalvesRect(t *testing.T) {
	s := NewScaler(1024, 768, 512, 384)
	got := s.ScaleRect(NewRect(100, 100, 200, 200))
	want := NewRect(50, 50, 100, 100)
	if got != want {
		t.Errorf("ScaleRect = %v, want %v", got, want)
	}
}

func TestScalerNeverEmptiesRect(t *testing.T) {
	s := NewScaler(1024, 768, 16, 12) // aggressive downscale (PDA case)
	got := s.ScaleRect(NewRect(500, 500, 3, 3))
	if got.Empty() {
		t.Errorf("downscaled tiny rect became empty: %v", got)
	}
}

func TestScalerRawPayloadSize(t *testing.T) {
	s := NewScaler(100, 100, 50, 50)
	pix := make([]Pixel, 10*10)
	for i := range pix {
		pix[i] = Pixel(i)
	}
	c := Raw(0, NewRect(0, 0, 10, 10), pix)
	got := s.ScaleCommand(&c)
	if err := got.Validate(); err != nil {
		t.Fatalf("scaled raw command invalid: %v", err)
	}
	if got.Dst.Area() >= c.Dst.Area() {
		t.Errorf("downscale did not shrink payload: %v -> %v", c.Dst, got.Dst)
	}
}

func TestScalerBitmapBecomesRaw(t *testing.T) {
	s := NewScaler(100, 100, 37, 41)
	bits := []byte{0xF0}
	c := Bitmap(0, NewRect(0, 0, 4, 1), bits, 1, 2)
	got := s.ScaleCommand(&c)
	if got.Type != CmdRaw {
		t.Errorf("scaled bitmap type = %v, want raw", got.Type)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("scaled bitmap invalid: %v", err)
	}
}

func TestScalerCopyPreservesRelativeMotion(t *testing.T) {
	s := NewScaler(200, 200, 100, 100)
	c := Copy(0, NewRect(20, 20, 10, 10), Point{40, 40})
	got := s.ScaleCommand(&c)
	if got.Dst != NewRect(10, 10, 5, 5) {
		t.Errorf("scaled copy dst = %v", got.Dst)
	}
	if got.Src != (Point{20, 20}) {
		t.Errorf("scaled copy src = %v", got.Src)
	}
}

func TestScaleFramebuffer(t *testing.T) {
	fb := NewFramebuffer(8, 8)
	c := SolidFill(0, NewRect(0, 0, 4, 8), 7)
	if err := fb.Apply(&c); err != nil {
		t.Fatal(err)
	}
	s := NewScaler(8, 8, 4, 4)
	out := s.ScaleFramebuffer(fb)
	w, h := out.Size()
	if w != 4 || h != 4 {
		t.Fatalf("scaled size %dx%d, want 4x4", w, h)
	}
	if out.At(0, 0) != 7 || out.At(1, 0) != 7 {
		t.Error("left half should remain filled after downscale")
	}
	if out.At(2, 0) != 0 || out.At(3, 0) != 0 {
		t.Error("right half should remain empty after downscale")
	}
}

// Property: every scaled command validates, and its destination lies inside
// the scaled screen when the original lay inside the source screen.
func TestScalerCommandsStayValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		srcW, srcH := 64, 48
		dstW, dstH := 1+rng.Intn(128), 1+rng.Intn(128)
		s := NewScaler(srcW, srcH, dstW, dstH)
		for i := 0; i < 10; i++ {
			c := randomCommand(rng, srcW/2, srcH/2, 0)
			got := s.ScaleCommand(&c)
			if err := got.Validate(); err != nil {
				return false
			}
			if c.Dst.X >= 0 && c.Dst.Y >= 0 &&
				(Rect{W: srcW, H: srcH}).Contains(c.Dst) {
				screen := Rect{W: dstW, H: dstH}
				// Allow the +1 minimum-size guarantee to spill at most
				// one pixel past the edge.
				slack := Rect{W: dstW + 1, H: dstH + 1}
				if !screen.Contains(got.Dst) && !slack.Contains(got.Dst) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: downscaling then applying approximates applying then
// downscaling for solid fills (exact for aligned fills).
func TestScalerFillCommutes(t *testing.T) {
	s := NewScaler(16, 16, 8, 8)
	full := NewFramebuffer(16, 16)
	c := SolidFill(0, NewRect(4, 4, 8, 8), 9)
	if err := full.Apply(&c); err != nil {
		t.Fatal(err)
	}
	scaledAfter := s.ScaleFramebuffer(full)

	small := NewFramebuffer(8, 8)
	sc := s.ScaleCommand(&c)
	if err := small.Apply(&sc); err != nil {
		t.Fatal(err)
	}
	if !scaledAfter.Equal(small) {
		t.Error("aligned solid fill should commute with 2x downscale")
	}
}
