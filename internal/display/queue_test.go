package display

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQueueMergeCovered(t *testing.T) {
	q := NewQueue()
	q.Push(SolidFill(0, NewRect(0, 0, 10, 10), 1))
	q.Push(SolidFill(1, NewRect(2, 2, 2, 2), 2))
	// Full overwrite of both.
	q.Push(SolidFill(2, NewRect(0, 0, 20, 20), 3))
	cmds := q.Flush()
	if len(cmds) != 1 {
		t.Fatalf("flush returned %d commands, want 1", len(cmds))
	}
	if cmds[0].Fg != 3 {
		t.Errorf("surviving command = %v", cmds[0])
	}
	if q.Merged() != 2 {
		t.Errorf("Merged = %d, want 2", q.Merged())
	}
}

func TestQueuePartialOverlapKept(t *testing.T) {
	q := NewQueue()
	q.Push(SolidFill(0, NewRect(0, 0, 10, 10), 1))
	q.Push(SolidFill(1, NewRect(5, 5, 10, 10), 2)) // partial overlap
	if got := q.Len(); got != 2 {
		t.Errorf("Len = %d, want 2 (partial overlap must not merge)", got)
	}
}

func TestQueueCopyNeverCovers(t *testing.T) {
	q := NewQueue()
	q.Push(SolidFill(0, NewRect(0, 0, 4, 4), 1))
	q.Push(Copy(1, NewRect(0, 0, 10, 10), Point{20, 20}))
	if got := q.Len(); got != 2 {
		t.Errorf("Len = %d, want 2 (copy must not merge away prior commands)", got)
	}
}

func TestQueueCopySourcePinsCommand(t *testing.T) {
	q := NewQueue()
	// Draw region A, copy A elsewhere, then overwrite A. The original
	// draw must survive because the queued copy still reads it.
	q.Push(SolidFill(0, NewRect(0, 0, 4, 4), 1))
	q.Push(Copy(1, NewRect(10, 10, 4, 4), Point{0, 0}))
	q.Push(SolidFill(2, NewRect(0, 0, 4, 4), 2))
	cmds := q.Flush()
	if len(cmds) != 3 {
		t.Fatalf("flush returned %d commands, want 3", len(cmds))
	}
}

func TestQueueMergePreservesOrder(t *testing.T) {
	q := NewQueue()
	q.Push(SolidFill(0, NewRect(0, 0, 2, 2), 1))
	q.Push(SolidFill(1, NewRect(10, 0, 2, 2), 2))
	q.Push(SolidFill(2, NewRect(0, 0, 2, 2), 3)) // overwrites first
	cmds := q.Flush()
	if len(cmds) != 2 {
		t.Fatalf("len = %d, want 2", len(cmds))
	}
	if cmds[0].Fg != 2 || cmds[1].Fg != 3 {
		t.Errorf("order wrong: %v then %v", cmds[0], cmds[1])
	}
}

func TestQueuePendingArea(t *testing.T) {
	q := NewQueue()
	if !q.PendingArea().Empty() {
		t.Error("empty queue should have empty pending area")
	}
	q.Push(SolidFill(0, NewRect(0, 0, 2, 2), 1))
	q.Push(SolidFill(0, NewRect(8, 8, 2, 2), 1))
	want := NewRect(0, 0, 10, 10)
	if got := q.PendingArea(); got != want {
		t.Errorf("PendingArea = %v, want %v", got, want)
	}
}

func TestQueueFlushEmpties(t *testing.T) {
	q := NewQueue()
	q.Push(SolidFill(0, NewRect(0, 0, 1, 1), 1))
	q.Flush()
	if q.Len() != 0 {
		t.Error("queue not empty after flush")
	}
	if cmds := q.Flush(); cmds != nil {
		t.Errorf("second flush = %v, want nil", cmds)
	}
}

// Property: merging never changes the final framebuffer contents. This is
// the correctness condition for THINC's queue-and-merge optimization.
func TestQueueMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const w, h = 24, 24
		q := NewQueue()
		direct := NewFramebuffer(w, h)
		var all []Command
		for i := 0; i < 30; i++ {
			c := randomCommand(rng, w, h, 0)
			all = append(all, c)
			q.Push(c)
		}
		for i := range all {
			if err := direct.Apply(&all[i]); err != nil {
				return false
			}
		}
		merged := NewFramebuffer(w, h)
		for _, c := range q.Flush() {
			if err := merged.Apply(&c); err != nil {
				return false
			}
		}
		return direct.Equal(merged)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
