// Package display implements DejaView's virtual display substrate, modeled
// on the THINC virtual display architecture (Baratto et al., SOSP 2005)
// that the paper builds on.
//
// Instead of a device driver for real video hardware, the package exposes a
// virtual display driver that accepts low-level drawing commands — the
// translation of the video-driver interface the paper intercepts. The five
// command classes mirror THINC's protocol:
//
//   - Raw: unencoded pixel data for a region
//   - Copy: screen-to-screen copy (scrolling, window moves)
//   - SolidFill: fill a region with a single color
//   - PatternFill: tile a small pattern over a region
//   - Bitmap: 1-bit-deep bitmap expanded with foreground/background colors
//     (text glyphs)
//
// A Framebuffer applies commands to produce the screen contents; a Codec
// serializes commands to the append-only record log and the client wire
// format; a Queue merges and overwrites pending commands so that only the
// result of the last update need be delivered or logged; and a Server
// duplicates generated output into a stream for viewing clients and a
// stream for the recorder, exactly as §4.1 of the paper describes.
//
// Commands can be rescaled independently of the viewing resolution
// (Server.SetRecordScale), so a session viewed on a small device can still
// be recorded at full resolution and vice versa.
package display
