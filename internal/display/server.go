package display

import (
	"fmt"
	"sync"

	"dejaview/internal/obs"
	"dejaview/internal/simclock"
)

// Registry instruments for the display hot path: Submit and Flush run
// for every drawing command the desktop generates.
var (
	obsSubmits = obs.Default.Counter("display.submit")
	obsMerged  = obs.Default.Counter("display.merged")
	obsFlushes = obs.Default.Counter("display.flush")
	obsFlushMS = obs.Default.Histogram("display.flush_ms", obs.LatencyBuckets...)
)

// Sink receives the display command stream. The viewer client and the
// recorder are both sinks: the server duplicates generated visual output
// into a stream for display and a stream for logging (§4.1).
type Sink interface {
	// HandleCommand is invoked under the server's update lock; sinks
	// must not call back into the server.
	HandleCommand(c *Command)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(c *Command)

// HandleCommand implements Sink.
func (f SinkFunc) HandleCommand(c *Command) { f(c) }

// ScreenAwareSink is an optional recorder interface: the server hands it
// each command *before* applying it, together with the live framebuffer
// holding the pre-command screen contents. A recorder can then take
// keyframe screenshots directly from the display server's own state — the
// paper's virtual display driver records from the framebuffer it already
// maintains — instead of replaying every command into a shadow copy.
//
// The framebuffer reference is only valid for the duration of the call
// and must not be mutated; take a Snapshot to keep it.
type ScreenAwareSink interface {
	HandleCommandWithScreen(c *Command, screenBefore *Framebuffer)
}

// Server is the DejaView virtual display server. It plays the role of the
// X server plus THINC virtual display driver: applications submit drawing
// commands, the server maintains all persistent display state in its
// framebuffer, and stateless clients (viewers) and the recorder subscribe
// to the duplicated command stream.
//
// Running the virtual display server inside the virtual execution
// environment is what lets checkpoints capture all display state (§3);
// the core package registers the server's state with vexec for that
// purpose.
//
// Server is safe for concurrent use.
type Server struct {
	clock *simclock.Clock

	mu      sync.Mutex
	fb      *Framebuffer
	queue   *Queue
	seq     uint64
	sinks   []Sink
	rec     Sink // recorder stream, scaled independently
	scaler  *Scaler
	stats   ServerStats
	damaged Rect // union of regions updated since last Flush
}

// ServerStats aggregates display activity counters.
type ServerStats struct {
	// Commands is the number of commands submitted.
	Commands uint64
	// Merged is the number of commands eliminated by queue merging.
	Merged uint64
	// Flushes is the number of queue flushes delivered to sinks.
	Flushes uint64
	// PayloadBytes is the total command payload submitted.
	PayloadBytes uint64
	// EncodedBytes is the total encoded size of delivered commands.
	EncodedBytes uint64
}

// NewServer creates a display server with a w×h screen.
func NewServer(clock *simclock.Clock, w, h int) *Server {
	return &Server{
		clock: clock,
		fb:    NewFramebuffer(w, h),
		queue: NewQueue(),
	}
}

// Size reports the screen dimensions.
func (s *Server) Size() (w, h int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fb.Size()
}

// AttachViewer subscribes a viewer sink to the post-flush command stream.
func (s *Server) AttachViewer(v Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sinks = append(s.sinks, v)
}

// AttachViewerWithScreen atomically snapshots the current screen and
// subscribes the sink: every command not in the snapshot is guaranteed
// to be delivered to the sink, with no gap and no overlap. Network
// viewers use it to hand a late-joining client a consistent initial
// state (§3: clients are stateless; the server is authoritative).
func (s *Server) AttachViewerWithScreen(v Sink) *Framebuffer {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.fb.Snapshot()
	s.sinks = append(s.sinks, v)
	return snap
}

// DetachViewer removes a previously attached viewer.
func (s *Server) DetachViewer(v Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, x := range s.sinks {
		if x == v {
			s.sinks = append(s.sinks[:i], s.sinks[i+1:]...)
			return
		}
	}
}

// SetRecorder attaches the recording sink. If scale is non-nil the
// recorded stream is rescaled independently of the viewer stream,
// implementing the record-at-different-resolution feature of §4.1.
func (s *Server) SetRecorder(rec Sink, scale *Scaler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec = rec
	s.scaler = scale
}

// Submit queues one drawing command from an application. The command is
// stamped with the current time and a sequence number. Commands accumulate
// in the merge queue until Flush, mirroring the driver's command queue.
func (s *Server) Submit(c Command) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Time = s.clock.Now()
	s.seq++
	c.Seq = s.seq
	if err := c.Validate(); err != nil {
		return fmt.Errorf("display: submit: %w", err)
	}
	s.stats.Commands++
	s.stats.PayloadBytes += uint64(c.PayloadBytes())
	obsSubmits.Inc()
	before := s.queue.Merged()
	s.queue.Push(c)
	merged := uint64(s.queue.Merged() - before)
	s.stats.Merged += merged
	obsMerged.Add(merged)
	s.damaged = s.damaged.Union(c.Dst)
	return nil
}

// Flush applies all pending commands to the framebuffer and delivers them
// to the viewer sinks and the recorder. It returns the flushed commands.
func (s *Server) Flush() ([]Command, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cmds := s.queue.Flush()
	if len(cmds) == 0 {
		return nil, nil
	}
	t0 := obs.StartTimer()
	defer t0.Done(obsFlushMS)
	s.stats.Flushes++
	obsFlushes.Inc()
	// A screen-aware recorder is fed before each apply so the screen it
	// sees matches exactly the commands logged so far; it only works at
	// the native resolution (a rescaled record keeps its own shadow).
	screenAware, _ := s.rec.(ScreenAwareSink)
	if s.scaler != nil && !s.scaler.Identity() {
		screenAware = nil
	}
	for i := range cmds {
		c := &cmds[i]
		if screenAware != nil {
			screenAware.HandleCommandWithScreen(c, s.fb)
		}
		if err := s.fb.Apply(c); err != nil {
			return nil, fmt.Errorf("display: flush: %w", err)
		}
		s.stats.EncodedBytes += uint64(EncodedSize(c))
		for _, v := range s.sinks {
			v.HandleCommand(c)
		}
		if s.rec != nil && screenAware == nil {
			if s.scaler != nil && !s.scaler.Identity() {
				scaled := s.scaler.ScaleCommand(c)
				s.rec.HandleCommand(&scaled)
			} else {
				s.rec.HandleCommand(c)
			}
		}
	}
	s.damaged = Rect{}
	return cmds, nil
}

// Damage reports the union of regions touched by commands submitted since
// the last flush; the checkpoint policy uses it as its display-activity
// signal.
func (s *Server) Damage() Rect {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.damaged
}

// Screen returns a snapshot of the current screen contents.
func (s *Server) Screen() *Framebuffer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fb.Snapshot()
}

// Stats returns a copy of the activity counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Pending reports the number of queued, unflushed commands.
func (s *Server) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// RestoreScreen overwrites the framebuffer, used when a revived session's
// display state is reinstated from a checkpoint.
func (s *Server) RestoreScreen(fb *Framebuffer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fb.CopyFrom(fb)
}
