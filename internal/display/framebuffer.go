package display

import (
	"fmt"
	"hash/fnv"
)

// Framebuffer is a software frame buffer holding the current screen
// contents. The display server, the playback engine, and the offscreen
// search renderer all apply the same command stream to a Framebuffer.
//
// Framebuffer is not safe for concurrent use; callers serialize access
// (the Server owns one under its lock, playback owns one per player).
type Framebuffer struct {
	w, h int
	pix  []Pixel
}

// NewFramebuffer allocates a w×h framebuffer cleared to zero (opaque black
// is RGB(0,0,0) with alpha 0xff; zero is transparent black, which is fine
// for an initial state).
func NewFramebuffer(w, h int) *Framebuffer {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("display: NewFramebuffer(%d, %d): non-positive size", w, h))
	}
	return &Framebuffer{w: w, h: h, pix: make([]Pixel, w*h)}
}

// Size reports the framebuffer dimensions.
func (f *Framebuffer) Size() (w, h int) { return f.w, f.h }

// Bounds returns the full-screen rectangle.
func (f *Framebuffer) Bounds() Rect { return Rect{W: f.w, H: f.h} }

// At returns the pixel at (x, y); out-of-bounds reads return zero.
func (f *Framebuffer) At(x, y int) Pixel {
	if x < 0 || y < 0 || x >= f.w || y >= f.h {
		return 0
	}
	return f.pix[y*f.w+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (f *Framebuffer) Set(x, y int, p Pixel) {
	if x < 0 || y < 0 || x >= f.w || y >= f.h {
		return
	}
	f.pix[y*f.w+x] = p
}

// Apply executes one display command against the framebuffer. Regions are
// clipped to the screen. It returns an error only for malformed commands.
func (f *Framebuffer) Apply(c *Command) error {
	if err := c.Validate(); err != nil {
		return err
	}
	dst := c.Dst.Clip(f.w, f.h)
	switch c.Type {
	case CmdRaw:
		f.applyRaw(c, dst)
	case CmdCopy:
		f.applyCopy(c)
	case CmdSolidFill:
		f.fill(dst, c.Fg)
	case CmdPatternFill:
		f.applyPattern(c, dst)
	case CmdBitmap:
		f.applyBitmap(c, dst)
	case CmdVideo:
		f.applyVideo(c, dst)
	}
	return nil
}

// applyVideo "decodes" a compressed frame deterministically: the payload
// hash seeds a gradient so identical frames render identically anywhere,
// which is all playback fidelity requires of the simulation.
func (f *Framebuffer) applyVideo(c *Command, dst Rect) {
	h := fnv.New64a()
	h.Write(c.Frame)
	seed := h.Sum64()
	for y := dst.Y; y < dst.Y+dst.H; y++ {
		row := y * f.w
		ry := uint64(y - c.Dst.Y)
		for x := dst.X; x < dst.X+dst.W; x++ {
			rx := uint64(x - c.Dst.X)
			v := seed ^ (ry*2654435761+rx)*0x9E3779B97F4A7C15
			f.pix[row+x] = Pixel(0xFF000000 | uint32(v&0xFFFFFF))
		}
	}
}

func (f *Framebuffer) applyRaw(c *Command, dst Rect) {
	for y := dst.Y; y < dst.Y+dst.H; y++ {
		srcRow := (y-c.Dst.Y)*c.Dst.W + (dst.X - c.Dst.X)
		dstRow := y*f.w + dst.X
		copy(f.pix[dstRow:dstRow+dst.W], c.Pixels[srcRow:srcRow+dst.W])
	}
}

// applyCopy performs an overlapping-safe screen-to-screen copy, matching
// the memmove semantics of a blitter. Fully in-bounds rows use slice
// copies through a staging line; partially out-of-bounds rows fall back
// to per-pixel handling.
func (f *Framebuffer) applyCopy(c *Command) {
	w, h := c.Dst.W, c.Dst.H
	// Choose row order so an overlapping vertical move never reads
	// already-written lines.
	y0, y1, step := 0, h, 1
	if c.Dst.Y > c.Src.Y {
		y0, y1, step = h-1, -1, -1
	}
	line := make([]Pixel, w)
	fastSrc := c.Src.X >= 0 && c.Src.X+w <= f.w
	fastDst := c.Dst.X >= 0 && c.Dst.X+w <= f.w
	for dy := y0; dy != y1; dy += step {
		sy := c.Src.Y + dy
		ty := c.Dst.Y + dy
		if ty < 0 || ty >= f.h {
			continue
		}
		// Stage the source row (zeros where out of bounds).
		if sy < 0 || sy >= f.h {
			clear(line)
		} else if fastSrc {
			copy(line, f.pix[sy*f.w+c.Src.X:sy*f.w+c.Src.X+w])
		} else {
			for x := 0; x < w; x++ {
				sx := c.Src.X + x
				if sx < 0 || sx >= f.w {
					line[x] = 0
				} else {
					line[x] = f.pix[sy*f.w+sx]
				}
			}
		}
		if fastDst {
			copy(f.pix[ty*f.w+c.Dst.X:ty*f.w+c.Dst.X+w], line)
		} else {
			for x := 0; x < w; x++ {
				tx := c.Dst.X + x
				if tx < 0 || tx >= f.w {
					continue
				}
				f.pix[ty*f.w+tx] = line[x]
			}
		}
	}
}

func (f *Framebuffer) fill(dst Rect, p Pixel) {
	for y := dst.Y; y < dst.Y+dst.H; y++ {
		row := y * f.w
		for x := dst.X; x < dst.X+dst.W; x++ {
			f.pix[row+x] = p
		}
	}
}

func (f *Framebuffer) applyPattern(c *Command, dst Rect) {
	for y := dst.Y; y < dst.Y+dst.H; y++ {
		py := ((y - c.Dst.Y) % c.PH) * c.PW
		row := y * f.w
		for x := dst.X; x < dst.X+dst.W; x++ {
			f.pix[row+x] = c.Pattern[py+(x-c.Dst.X)%c.PW]
		}
	}
}

func (f *Framebuffer) applyBitmap(c *Command, dst Rect) {
	rowBytes := (c.Dst.W + 7) / 8
	for y := dst.Y; y < dst.Y+dst.H; y++ {
		bitRow := (y - c.Dst.Y) * rowBytes
		row := y * f.w
		for x := dst.X; x < dst.X+dst.W; x++ {
			bx := x - c.Dst.X
			bit := c.Bits[bitRow+bx/8] >> (7 - uint(bx%8)) & 1
			if bit != 0 {
				f.pix[row+x] = c.Fg
			} else {
				f.pix[row+x] = c.Bg
			}
		}
	}
}

// Snapshot returns a deep copy of the framebuffer; screenshots in the
// record log are snapshots.
func (f *Framebuffer) Snapshot() *Framebuffer {
	pix := make([]Pixel, len(f.pix))
	copy(pix, f.pix)
	return &Framebuffer{w: f.w, h: f.h, pix: pix}
}

// CopyFrom overwrites the framebuffer contents from src, which must have
// the same dimensions.
func (f *Framebuffer) CopyFrom(src *Framebuffer) error {
	if src.w != f.w || src.h != f.h {
		return fmt.Errorf("display: CopyFrom size mismatch: %dx%d vs %dx%d",
			src.w, src.h, f.w, f.h)
	}
	copy(f.pix, src.pix)
	return nil
}

// Pixels exposes the raw backing slice (row-major) for encoding; callers
// must not resize it.
func (f *Framebuffer) Pixels() []Pixel { return f.pix }

// Equal reports whether two framebuffers have identical size and contents.
func (f *Framebuffer) Equal(g *Framebuffer) bool {
	if f.w != g.w || f.h != g.h {
		return false
	}
	for i, p := range f.pix {
		if g.pix[i] != p {
			return false
		}
	}
	return true
}

// Hash returns a 64-bit content hash, used by tests and by the recorder's
// changed-enough screenshot gate.
func (f *Framebuffer) Hash() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, p := range f.pix {
		buf[0] = byte(p)
		buf[1] = byte(p >> 8)
		buf[2] = byte(p >> 16)
		buf[3] = byte(p >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// DiffFraction reports the fraction of pixels (0..1) that differ between
// f and g; mismatched sizes count as fully different. The recorder's
// screenshot gate and the checkpoint policy's display-activity threshold
// both consume this.
func (f *Framebuffer) DiffFraction(g *Framebuffer) float64 {
	if f.w != g.w || f.h != g.h {
		return 1
	}
	diff := 0
	for i, p := range f.pix {
		if g.pix[i] != p {
			diff++
		}
	}
	return float64(diff) / float64(len(f.pix))
}
