package core

import (
	"errors"
	"fmt"

	"dejaview/internal/display"
	"dejaview/internal/failpoint"
	"dejaview/internal/simclock"
	"dejaview/internal/unionfs"
	"dejaview/internal/vexec"
)

// Revive errors.
var ErrNothingToRevive = errors.New("core: no checkpoint at or before the requested time")

// Revived is one revived session: a live desktop state recreated from a
// checkpoint, running in its own container over its own branchable file
// system, with its own display server, viewed in a new viewer window
// (§2, §5.2).
type Revived struct {
	parent *Session
	// Container is the revived virtual execution environment.
	Container *vexec.Container
	// Union is the branch joining the checkpoint's read-only snapshot
	// with the session's writable layer.
	Union *unionfs.Union
	// Display is the revived session's own display server, restored to
	// the checkpointed screen contents.
	Display *display.Server
	// Restore reports the revive operation's cost.
	Restore *vexec.RestoreResult
	// Checkpointer lets the revived session be continuously
	// checkpointed and later revived again (§5.2).
	Checkpointer *vexec.Checkpointer
	// At is the checkpoint time the session was revived from.
	At simclock.Time
}

// TakeMeBack revives the session as of display-record time t: it finds
// the last checkpoint at or before t, restores the file-system view bound
// to it, recreates the process forest, and hands back a live session.
// The revived desktop may differ slightly from the static display record
// since checkpoints trail the display by up to the checkpoint interval
// (§5.2).
func (s *Session) TakeMeBack(t simclock.Time) (*Revived, error) {
	img, err := s.ckpt.LatestBefore(t)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNothingToRevive, err)
	}
	return s.ReviveCheckpoint(img.Counter)
}

// ReviveCheckpoint revives a specific checkpoint counter.
func (s *Session) ReviveCheckpoint(counter uint64) (*Revived, error) {
	return s.ReviveCheckpointOpts(counter, vexec.RestoreOptions{})
}

// ReviveCheckpointOpts revives a checkpoint with restore options, e.g.
// demand paging for faster uncached revives.
func (s *Session) ReviveCheckpointOpts(counter uint64, opts vexec.RestoreOptions) (*Revived, error) {
	if err := failpoint.Inject("core/revive"); err != nil {
		return nil, fmt.Errorf("core: revive: %w", err)
	}
	img, err := s.ckpt.Image(counter)
	if err != nil {
		return nil, err
	}
	// File system state first: a writable branch over the snapshot the
	// checkpoint counter is bound to.
	view, err := s.fs.At(img.FSEpoch)
	if err != nil {
		return nil, fmt.Errorf("core: revive: snapshot %d: %w", img.FSEpoch, err)
	}
	union := unionfs.New(view)

	res, err := s.ckpt.RestoreOpts(img.Counter, union, opts)
	if err != nil {
		return nil, err
	}

	// The revived session gets its own virtual display, restored to the
	// checkpointed screen; concurrent sessions never conflict over
	// display resources (§3).
	w, h := s.disp.Size()
	disp := display.NewServer(s.clock, w, h)
	s.mu.Lock()
	if screen, ok := s.displayState[img.Counter]; ok {
		if err := disp.RestoreScreen(screen); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	s.mu.Unlock()

	rs := &Revived{
		parent:       s,
		Container:    res.Container,
		Union:        union,
		Display:      disp,
		Restore:      res,
		Checkpointer: vexec.NewCheckpointer(res.Container, union.Upper(), union.Upper(), s.cfg.Costs, s.cfg.FullCheckpointEvery),
		At:           img.Time,
	}
	s.mu.Lock()
	s.revived = append(s.revived, rs)
	s.mu.Unlock()
	return rs, nil
}

// Revived lists the currently revived sessions.
func (s *Session) Revived() []*Revived {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Revived(nil), s.revived...)
}

// CloseRevived tears a revived session down.
func (s *Session) CloseRevived(rs *Revived) {
	s.mu.Lock()
	for i, x := range s.revived {
		if x == rs {
			s.revived = append(s.revived[:i], s.revived[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	s.kernel.RemoveContainer(rs.Container)
}

// EnableNetwork re-enables network access for the whole revived session
// (§5.2: initially disabled to prevent applications from synchronizing
// with outside servers and losing data).
func (rs *Revived) EnableNetwork() {
	rs.Container.SetNetworkEnabled(true)
}

// SetAppNetworkPolicy overrides network access per application.
func (rs *Revived) SetAppNetworkPolicy(app string, allowed bool) {
	rs.Container.SetAppNetworkPolicy(app, allowed)
}

// Clipboard accesses the clipboard shared with the main session and all
// other revived sessions.
func (rs *Revived) Clipboard() string { return rs.parent.Clipboard() }

// SetClipboard writes the shared clipboard.
func (rs *Revived) SetClipboard(content string) { rs.parent.SetClipboard(content) }

// Checkpoint checkpoints the revived session (its writable layer is a
// log-structured FS, so the combination stays revivable).
func (rs *Revived) Checkpoint() (*vexec.CheckpointResult, error) {
	return rs.Checkpointer.Checkpoint()
}
