package core

import (
	"testing"

	"dejaview/internal/index"
	"dejaview/internal/vexec"
)

func TestSubstreamPlayerBounded(t *testing.T) {
	s := NewSession(Config{})
	driveDesktop(t, s, 10)
	res, err := s.Search(index.Query{All: []string{"initial"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	p := s.SubstreamPlayer(res[0])
	lo, hi := p.Bounds()
	if lo != res[0].Interval.Start || hi != res[0].Interval.End {
		t.Errorf("bounds = [%v, %v), want result interval %v", lo, hi, res[0].Interval)
	}
	// Seeking far outside lands inside the substream.
	if err := p.SeekTo(0); err != nil {
		t.Fatal(err)
	}
	if p.Position() < lo {
		t.Errorf("position %v below substream start %v", p.Position(), lo)
	}
}

func TestReviveWithDemandPaging(t *testing.T) {
	s := NewSession(Config{})
	proc, _ := driveDesktop(t, s, 6)
	counter := s.Checkpointer().Counter()
	s.Checkpointer().DropCaches()
	rv, err := s.ReviveCheckpointOpts(counter, vexec.RestoreOptions{DemandPaging: true})
	if err != nil {
		t.Fatal(err)
	}
	if rv.Restore.LazyPages == 0 {
		t.Error("demand-paged revive left no lazy pages")
	}
	if rv.Restore.PagesRestored != 0 {
		t.Error("demand-paged revive restored pages eagerly")
	}
	// State is still fully accessible.
	rp, err := rv.Container.Process(proc.PID())
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "editor" {
		t.Errorf("revived process %q", rp.Name())
	}
	regs := rp.Mem().Regions()
	if len(regs) == 0 {
		t.Fatal("no memory regions revived")
	}
	if _, err := rp.Mem().Read(regs[0].Start(), 8); err != nil {
		t.Errorf("lazy memory unreadable: %v", err)
	}
}
