package core

import (
	"errors"
	"path/filepath"
	"testing"

	"dejaview/internal/index"
)

func TestArchiveRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	s := NewSession(Config{})
	proc, _ := driveDesktop(t, s, 10)
	if err := s.FS().WriteFile("/note.txt", []byte("archived note")); err != nil {
		t.Fatal(err)
	}
	// One more checkpoint so the FS write is captured.
	s.NoteKeyboardInput()
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	end := s.Clock().Now()
	if err := s.SaveArchive(dir); err != nil {
		t.Fatal(err)
	}

	a, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.End != end {
		t.Errorf("End = %v, want %v", a.End, end)
	}
	if a.Width != 1024 || a.Height != 768 {
		t.Errorf("dimensions %dx%d", a.Width, a.Height)
	}
	if a.Checkpoints() == 0 {
		t.Fatal("no archived checkpoints")
	}

	// Search works with screenshots.
	res, err := a.Search(index.Query{All: []string{"initial"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Screenshot == nil {
		t.Fatal("archived search broken")
	}

	// Browse matches the original record.
	fb, err := a.Browse(5 * sec)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := s.Browse(5 * sec)
	if err != nil {
		t.Fatal(err)
	}
	if !fb.Equal(orig) {
		t.Error("archived browse differs from live browse")
	}

	// Playback works.
	p := a.Player()
	if err := p.SeekTo(3 * sec); err != nil {
		t.Fatal(err)
	}

	// Revive from the archive: process state and FS state are intact.
	rv, err := a.TakeMeBack(res[0].Time)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := rv.Container.Process(proc.PID())
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "editor" {
		t.Errorf("revived process %q", rp.Name())
	}
	if rv.Screen == nil {
		t.Error("no archived screen for the revived moment")
	}
	// Archived images start uncached.
	if rv.Restore.Cached {
		t.Error("first archive revive should be uncached")
	}
	// The note written before the last checkpoint is in the revived FS
	// when reviving at the end.
	last, err := a.ReviveCheckpoint(a.Checkpoints())
	if err != nil {
		t.Fatal(err)
	}
	data, err := last.Container.FS().ReadFile("/note.txt")
	if err != nil || string(data) != "archived note" {
		t.Errorf("archived FS read = %q, %v", data, err)
	}
	// Revived branches over the archive are writable and isolated.
	if err := last.Container.FS().WriteFile("/branch.txt", []byte("new work")); err != nil {
		t.Fatal(err)
	}
	if a.FS.Exists("/branch.txt") {
		t.Error("branch write leaked into archived FS")
	}
}

func TestOpenArchiveMissing(t *testing.T) {
	if _, err := OpenArchive(filepath.Join(t.TempDir(), "none")); err == nil {
		t.Error("missing archive accepted")
	}
}

func TestOpenArchiveCorruptMeta(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	s := NewSession(Config{})
	driveDesktop(t, s, 3)
	if err := s.SaveArchive(dir); err != nil {
		t.Fatal(err)
	}
	if err := corruptFile(filepath.Join(dir, "archive.dv")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenArchive(dir); !errors.Is(err, ErrCorruptArchive) {
		t.Errorf("err = %v, want ErrCorruptArchive", err)
	}
}

func TestArchiveTakeMeBackTooEarly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	s := NewSession(Config{})
	driveDesktop(t, s, 3)
	if err := s.SaveArchive(dir); err != nil {
		t.Fatal(err)
	}
	a, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.TakeMeBack(-1); !errors.Is(err, ErrNothingToRevive) {
		t.Errorf("err = %v", err)
	}
}
