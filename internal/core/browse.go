package core

// Visual-history time-machine browsing (ScreenTrack, arXiv 2001.10898,
// over DejaView's record): the screenshot timeline becomes a thumbnail
// strip, and a chosen thumbnail resolves to everything needed to "go
// back" there — the full-resolution screen, the documents and apps that
// were visible (from the index's visibility intervals), the display
// range the thumbnail stands for, and the nearest archived checkpoint
// to revive from. Both live sessions and archives expose the same API.

import (
	"fmt"

	"dejaview/internal/display"
	"dejaview/internal/index"
	"dejaview/internal/lru"
	"dejaview/internal/obs"
	"dejaview/internal/playback"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

var (
	obsBrowseTimelines = obs.Default.Counter("core.browse_timelines")
	obsBrowseResolves  = obs.Default.Counter("core.browse_resolves")
)

// DefaultThumbSize is the thumbnail edge used when a caller passes no
// explicit size.
const DefaultThumbSize = 64

// BrowseView is one resolved thumbnail: the state of the desktop at a
// chosen point of the visual history.
type BrowseView struct {
	// At is the resolved instant (the thumbnail keyframe's capture time);
	// Range is the display span the thumbnail stands for.
	At    simclock.Time
	Range index.Interval
	// Screen is the full-resolution render at At — byte-identical to
	// what the recorder captured.
	Screen *display.Framebuffer
	// Visible lists the text items on screen at At, focused first; the
	// browser's answer to "which document/app was this?".
	Visible []index.VisibleItem
	// Checkpoint is the counter of the latest checkpoint at or before At
	// (pass it to ReviveCheckpoint to make the moment live again);
	// HasCheckpoint is false when the moment precedes every checkpoint.
	Checkpoint    uint64
	CheckpointAt  simclock.Time
	HasCheckpoint bool
}

// browser bundles the pieces both Session and Archive browse over.
type browser struct {
	store *record.Store
	idx   *index.Index
	end   simclock.Time
	cache *lru.Cache[int64, *display.Framebuffer]
	// latest maps t to the newest checkpoint at or before it.
	latest func(t simclock.Time) (counter uint64, at simclock.Time, ok bool)
}

// timeline renders the thumbnail strip.
func (b browser) timeline(thumbW, thumbH, stride int) ([]playback.Thumb, error) {
	if thumbW <= 0 || thumbH <= 0 {
		thumbW, thumbH = DefaultThumbSize, DefaultThumbSize
	}
	obsBrowseTimelines.Inc()
	return playback.NewBrowser(b.store, b.end, thumbW, thumbH, b.cache).Thumbs(stride)
}

// resolve opens thumbnail i fully.
func (b browser) resolve(i int) (*BrowseView, error) {
	tl := b.store.Timeline()
	if i < 0 || i >= len(tl) {
		return nil, fmt.Errorf("core: browse: thumbnail %d of %d", i, len(tl))
	}
	pb := playback.NewBrowser(b.store, b.end, b.store.Width, b.store.Height, b.cache)
	screen, err := pb.Resolve(i)
	if err != nil {
		return nil, err
	}
	at := tl[i].Time
	until := b.end
	if i+1 < len(tl) {
		until = tl[i+1].Time
	}
	if until < at {
		until = at
	}
	v := &BrowseView{
		At:      at,
		Range:   index.Interval{Start: at, End: until},
		Screen:  screen,
		Visible: b.idx.VisibleAt(at),
	}
	if b.latest != nil {
		v.Checkpoint, v.CheckpointAt, v.HasCheckpoint = b.latest(at)
	}
	obsBrowseResolves.Inc()
	return v, nil
}

// BrowseTimeline renders the archive's visual history as thumbnails of
// thumbW×thumbH (0 picks DefaultThumbSize), one per stride keyframes
// (the last keyframe always included).
func (a *Archive) BrowseTimeline(thumbW, thumbH, stride int) ([]playback.Thumb, error) {
	return a.browser().timeline(thumbW, thumbH, stride)
}

// ResolveThumb resolves thumbnail i (a Thumb.Index from BrowseTimeline)
// to the full screen, visible documents, display range, and revival
// checkpoint.
func (a *Archive) ResolveThumb(i int) (*BrowseView, error) {
	return a.browser().resolve(i)
}

func (a *Archive) browser() browser {
	return browser{
		store: a.Store,
		idx:   a.Index,
		end:   a.End,
		cache: a.cache,
		latest: func(t simclock.Time) (uint64, simclock.Time, bool) {
			img, err := a.ckpt.LatestBefore(t)
			if err != nil {
				return 0, 0, false
			}
			return img.Counter, img.Time, true
		},
	}
}

// BrowseTimeline renders the live session's visual history as
// thumbnails; see Archive.BrowseTimeline.
func (s *Session) BrowseTimeline(thumbW, thumbH, stride int) ([]playback.Thumb, error) {
	return s.browser().timeline(thumbW, thumbH, stride)
}

// ResolveThumb resolves thumbnail i of the live session's history; see
// Archive.ResolveThumb.
func (s *Session) ResolveThumb(i int) (*BrowseView, error) {
	return s.browser().resolve(i)
}

func (s *Session) browser() browser {
	s.recorder.Flush()
	s.mu.Lock()
	cache := s.searchCache
	s.mu.Unlock()
	return browser{
		store: s.recorder.Store(),
		idx:   s.idx,
		end:   s.clock.Now(),
		cache: cache,
		latest: func(t simclock.Time) (uint64, simclock.Time, bool) {
			img, err := s.ckpt.LatestBefore(t)
			if err != nil {
				return 0, 0, false
			}
			return img.Counter, img.Time, true
		},
	}
}
