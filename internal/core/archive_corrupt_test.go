package core

import (
	"path/filepath"
	"testing"
)

// TestOpenArchiveCorruptComponents flips a byte in each archived store
// and checks that OpenArchive fails cleanly rather than loading garbage.
func TestOpenArchiveCorruptComponents(t *testing.T) {
	build := func(t *testing.T) string {
		dir := filepath.Join(t.TempDir(), "arch")
		s := NewSession(Config{})
		driveDesktop(t, s, 4)
		if err := s.SaveArchive(dir); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	for _, file := range []string{"index.dv", "images.dv", "fs.dv"} {
		file := file
		t.Run(file, func(t *testing.T) {
			dir := build(t)
			if err := corruptFile(filepath.Join(dir, file)); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenArchive(dir); err == nil {
				t.Errorf("OpenArchive accepted corrupted %s", file)
			}
		})
	}
	// Corrupting the record's metadata breaks the record store load.
	t.Run("record-meta", func(t *testing.T) {
		dir := build(t)
		if err := corruptFile(filepath.Join(dir, "record", "meta.dv")); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenArchive(dir); err == nil {
			t.Error("OpenArchive accepted corrupted record metadata")
		}
	})
}
