// Package core wires DejaView's substrates into a Session: the virtual
// display server and recorder, the accessibility capture daemon and text
// index, the virtual execution environment with continuous checkpointing
// under the checkpoint policy, the snapshotting file system, and the
// browse/search/playback/revive operations of §2.
//
// The exported facade for library users is the root dejaview package,
// which re-exports this one.
package core

import (
	"errors"
	"fmt"
	"sync"

	"dejaview/internal/access"
	"dejaview/internal/display"
	"dejaview/internal/index"
	"dejaview/internal/lfs"
	"dejaview/internal/lru"
	"dejaview/internal/playback"
	"dejaview/internal/policy"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
	"dejaview/internal/vexec"
)

// Config tunes a Session. Zero-value fields take the paper's defaults.
type Config struct {
	// Width, Height set the desktop resolution (default 1024×768, the
	// paper's application-benchmark resolution).
	Width, Height int
	// Record tunes display recording quality.
	Record record.Options
	// RecordScale optionally records at a different resolution than
	// displayed (w, h); zero means record at full resolution.
	RecordScaleW, RecordScaleH int
	// Policy tunes the checkpoint policy.
	Policy policy.Config
	// Costs calibrates the checkpoint/restore cost model.
	Costs vexec.CostModel
	// FullCheckpointEvery bounds incremental chains (default 100).
	FullCheckpointEvery int
	// SearchCacheSize bounds the search-result screenshot LRU cache
	// (default 32; tunable, §4.4).
	SearchCacheSize int
	// DisablePolicy checkpoints on every tick regardless of policy
	// (the paper's once-per-second benchmark configuration).
	DisablePolicy bool

	// The remaining switches turn individual recording components off,
	// for the Figure 2 overhead decomposition: display recording only,
	// checkpoint recording only, index recording only, full, or none.
	DisableDisplayRecording bool
	DisableIndexing         bool
	DisableCheckpoints      bool
}

func (c *Config) fillDefaults() {
	if c.Width == 0 {
		c.Width = 1024
	}
	if c.Height == 0 {
		c.Height = 768
	}
	if c.Record == (record.Options{}) {
		c.Record = record.DefaultOptions()
	}
	if c.Policy == (policy.Config{}) {
		c.Policy = policy.DefaultConfig()
	}
	if c.Costs == (vexec.CostModel{}) {
		c.Costs = vexec.DefaultCostModel()
	}
	if c.FullCheckpointEvery == 0 {
		c.FullCheckpointEvery = 100
	}
	if c.SearchCacheSize == 0 {
		c.SearchCacheSize = 32
	}
}

// SearchResult is one search hit: the index result plus the offscreen
// screenshots rendered at its boundaries. The Screenshot is the portal
// through which the user can glance at the match or revive the session
// there; when the query held over a contiguous period, the pair
// (Screenshot, LastScreenshot) is the paper's "first-last screenshot"
// presentation of a substream (§4.4).
type SearchResult struct {
	index.Result
	Screenshot *display.Framebuffer
	// LastScreenshot is the screen at the end of the substream; nil for
	// instantaneous results (e.g. annotations).
	LastScreenshot *display.Framebuffer
}

// Session is one DejaView desktop session: the server side of the §3
// architecture.
//
// Session is safe for concurrent use, though workloads typically drive it
// from one goroutine.
type Session struct {
	clock    *simclock.Clock
	kernel   *vexec.Kernel
	fs       *lfs.FS
	cont     *vexec.Container
	disp     *display.Server
	recorder *record.Recorder
	registry *access.Registry
	daemon   *access.Daemon
	idx      *index.Index
	ckpt     *vexec.Checkpointer
	pol      *policy.Engine
	cfg      Config

	mu          sync.Mutex
	searchCache *lru.Cache[int64, *display.Framebuffer]
	// displayState saves the display server's screen at each
	// checkpoint, standing in for the virtual display server's process
	// state being inside the checkpointed session (§3).
	displayState map[uint64]*display.Framebuffer
	revived      []*Revived
	clipboard    string
	// input flags accumulated since the last policy decision
	kbInput, anyInput bool
	fullscreenVideo   bool
	screensaver       bool
}

// NewSession creates a session on a fresh virtual clock.
func NewSession(cfg Config) *Session {
	cfg.fillDefaults()
	clock := simclock.New()
	return newSessionWithClock(cfg, clock)
}

func newSessionWithClock(cfg Config, clock *simclock.Clock) *Session {
	kernel := vexec.NewKernel(clock)
	fs := lfs.New()
	cont := kernel.NewContainer(fs)
	cont.SetNetworkEnabled(true)

	disp := display.NewServer(clock, cfg.Width, cfg.Height)
	recW, recH := cfg.Width, cfg.Height
	var scaler *display.Scaler
	if cfg.RecordScaleW > 0 && cfg.RecordScaleH > 0 {
		recW, recH = cfg.RecordScaleW, cfg.RecordScaleH
		scaler = display.NewScaler(cfg.Width, cfg.Height, recW, recH)
	}
	rec := record.New(clock, recW, recH, cfg.Record)
	if !cfg.DisableDisplayRecording {
		disp.SetRecorder(rec, scaler)
	}

	idx := index.New()
	registry := access.NewRegistry()
	var daemon *access.Daemon
	if !cfg.DisableIndexing {
		daemon = access.NewDaemon(registry, clock, idx)
	}

	s := &Session{
		clock:        clock,
		kernel:       kernel,
		fs:           fs,
		cont:         cont,
		disp:         disp,
		recorder:     rec,
		registry:     registry,
		daemon:       daemon,
		idx:          idx,
		ckpt:         vexec.NewCheckpointer(cont, fs, fs, cfg.Costs, cfg.FullCheckpointEvery),
		pol:          policy.New(cfg.Policy),
		cfg:          cfg,
		searchCache:  lru.New[int64, *display.Framebuffer](cfg.SearchCacheSize),
		displayState: make(map[uint64]*display.Framebuffer),
	}
	return s
}

// Clock returns the session's time source.
func (s *Session) Clock() *simclock.Clock { return s.clock }

// Display returns the virtual display server.
func (s *Session) Display() *display.Server { return s.disp }

// Registry returns the accessibility registry applications register with.
func (s *Session) Registry() *access.Registry { return s.registry }

// Container returns the session's virtual execution environment.
func (s *Session) Container() *vexec.Container { return s.cont }

// FS returns the session's log-structured file system.
func (s *Session) FS() *lfs.FS { return s.fs }

// Index returns the text index (read-side; the daemon writes to it).
func (s *Session) Index() *index.Index { return s.idx }

// Recorder returns the display recorder.
func (s *Session) Recorder() *record.Recorder { return s.recorder }

// Checkpointer returns the checkpoint engine.
func (s *Session) Checkpointer() *vexec.Checkpointer { return s.ckpt }

// Policy returns the checkpoint policy engine.
func (s *Session) Policy() *policy.Engine { return s.pol }

// Daemon returns the text-capture daemon.
func (s *Session) Daemon() *access.Daemon { return s.daemon }

// NoteKeyboardInput records keystrokes for the policy (user input itself
// is never recorded — only its effect on the display, §2).
func (s *Session) NoteKeyboardInput() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kbInput = true
	s.anyInput = true
}

// NotePointerInput records mouse activity for the policy.
func (s *Session) NotePointerInput() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.anyInput = true
}

// SetFullscreenVideo flags a full-screen video player for the policy.
func (s *Session) SetFullscreenVideo(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fullscreenVideo = on
}

// SetScreensaver flags the screensaver for the policy.
func (s *Session) SetScreensaver(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.screensaver = on
}

// Tick flushes pending display output to the viewer and recorder, runs
// the checkpoint policy on the accumulated signals, and checkpoints when
// the policy says to. Workloads call it after each burst of activity.
func (s *Session) Tick() (policy.Reason, *vexec.CheckpointResult, error) {
	cmds, err := s.disp.Flush()
	if err != nil {
		return 0, nil, err
	}
	s.cont.Tick()

	// The display-activity signal is the union of the regions the flush
	// actually delivered, so no concurrent submission is miscounted.
	var damage display.Rect
	for i := range cmds {
		damage = damage.Union(cmds[i].Dst)
	}
	w, h := s.disp.Size()
	fraction := float64(damage.Intersect(display.NewRect(0, 0, w, h)).Area()) / float64(w*h)

	s.mu.Lock()
	in := policy.Input{
		Now:               s.clock.Now(),
		DamageFraction:    fraction,
		KeyboardInput:     s.kbInput,
		UserInput:         s.anyInput,
		FullscreenVideo:   s.fullscreenVideo,
		ScreensaverActive: s.screensaver,
	}
	s.kbInput, s.anyInput = false, false
	s.mu.Unlock()

	reason := s.pol.Decide(in)
	if s.cfg.DisableCheckpoints {
		return reason, nil, nil
	}
	if !s.cfg.DisablePolicy && !reason.Take() {
		return reason, nil, nil
	}
	res, err := s.Checkpoint()
	return reason, res, err
}

// Checkpoint forces a checkpoint now, regardless of policy.
func (s *Session) Checkpoint() (*vexec.CheckpointResult, error) {
	res, err := s.ckpt.Checkpoint()
	if err != nil {
		return nil, err
	}
	// The virtual display server runs inside the session, so its state
	// is saved with every checkpoint (§3).
	s.mu.Lock()
	s.displayState[res.Image.Counter] = s.disp.Screen()
	s.mu.Unlock()
	return res, nil
}

// Player opens a playback engine over the session's display record.
func (s *Session) Player() *playback.Player {
	return playback.New(s.recorder.Store(), s.cfg.SearchCacheSize)
}

// SubstreamPlayer opens a player restricted to a search result's
// substream: all PVR functionality, but bounded to the portion of the
// record over which the query was satisfied (§4.4).
func (s *Session) SubstreamPlayer(r SearchResult) *playback.Player {
	s.recorder.Flush()
	p := playback.New(s.recorder.Store(), s.cfg.SearchCacheSize)
	p.SetBounds(r.Interval.Start, r.Interval.End)
	return p
}

// Browse renders the screen as of time t (the slider operation), using
// the shared screenshot cache.
func (s *Session) Browse(t simclock.Time) (*display.Framebuffer, error) {
	s.recorder.Flush()
	s.mu.Lock()
	cache := s.searchCache
	s.mu.Unlock()
	return playback.RenderAt(s.recorder.Store(), t, cache)
}

// Search runs a query over everything the user has seen and attaches a
// rendered screenshot to each result (§4.4).
func (s *Session) Search(q index.Query) ([]SearchResult, error) {
	res, err := s.idx.Search(q, s.clock.Now())
	if err != nil {
		return nil, err
	}
	return s.attachScreenshots(res)
}

// SearchIndex runs a query and returns the raw index hits — interval,
// timing, and snippet context — without rendering result screenshots.
// This is the variant the remote access service exposes as its search
// RPC: many concurrent connections can share one session handle, and
// skipping the screenshot render keeps the RPC cheap (remote clients
// fetch visuals through playback streaming instead).
func (s *Session) SearchIndex(q index.Query) ([]index.Result, error) {
	return s.idx.Search(q, s.clock.Now())
}

// SearchConjunction runs a multi-clause contextual query (§4.4).
func (s *Session) SearchConjunction(clauses []index.Query) ([]SearchResult, error) {
	res, err := s.idx.SearchConjunction(clauses, s.clock.Now())
	if err != nil {
		return nil, err
	}
	return s.attachScreenshots(res)
}

func (s *Session) attachScreenshots(res []index.Result) ([]SearchResult, error) {
	s.recorder.Flush()
	store := s.recorder.Store()
	s.mu.Lock()
	cache := s.searchCache
	s.mu.Unlock()
	out := make([]SearchResult, 0, len(res))
	for _, r := range res {
		shot, err := playback.RenderAt(store, r.Time, cache)
		if err != nil && !errors.Is(err, playback.ErrEmptyRecord) {
			return nil, fmt.Errorf("core: render result at %v: %w", r.Time, err)
		}
		sr := SearchResult{Result: r, Screenshot: shot}
		// A substream longer than an instant gets its closing frame too.
		if end := r.Interval.End - 1; end > r.Interval.Start {
			last, err := playback.RenderAt(store, end, cache)
			if err != nil && !errors.Is(err, playback.ErrEmptyRecord) {
				return nil, fmt.Errorf("core: render result end at %v: %w", end, err)
			}
			sr.LastScreenshot = last
		}
		out = append(out, sr)
	}
	return out, nil
}

// SetClipboard stores content shared among the main and revived sessions
// (§2: "the user can copy and paste content amongst her active sessions").
func (s *Session) SetClipboard(content string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clipboard = content
}

// Clipboard reads the shared clipboard.
func (s *Session) Clipboard() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clipboard
}
