package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dejaview/internal/atomicfile"
	"dejaview/internal/compress"
	"dejaview/internal/failpoint"
	"dejaview/internal/display"
	"dejaview/internal/index"
	"dejaview/internal/lfs"
	"dejaview/internal/lru"
	"dejaview/internal/obs"
	"dejaview/internal/playback"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
	"dejaview/internal/unionfs"
	"dejaview/internal/vexec"
)

// Registry instruments for whole-archive persistence.
var (
	obsArchiveSaves  = obs.Default.Counter("core.archive_saves")
	obsArchiveOpens  = obs.Default.Counter("core.archive_opens")
	obsArchiveSaveMS = obs.Default.Histogram("core.save_archive_ms", obs.LatencyBuckets...)
	obsArchiveOpenMS = obs.Default.Histogram("core.open_archive_ms", obs.LatencyBuckets...)
	// Lazy-open instrumentation: blocks demand-decoded after a lazy
	// open, and the latency of the lazy open itself (metadata + index
	// only; the e2e suite asserts it decodes strictly fewer blocks than
	// an eager open).
	obsLazyBlockLoads    = obs.Default.Counter("core.lazy_block_loads")
	obsArchiveOpenLazyMS = obs.Default.Histogram("core.open_archive_lazy_ms", obs.LatencyBuckets...)
	// Shared decoded-block cache outcomes across all open archives: a
	// hit is a demand read served without decoding, a miss is a block
	// decoded and inserted, and evicted_bytes counts decoded bytes pushed
	// out by budget pressure. The browse e2e suite holds these to exact
	// accounting (misses ≤ distinct blocks touched while within budget).
	obsBlockCacheHits         = obs.Default.Counter("core.block_cache_hits")
	obsBlockCacheMisses       = obs.Default.Counter("core.block_cache_misses")
	obsBlockCacheEvictedBytes = obs.Default.Counter("core.block_cache_evicted_bytes")
)

// A session archive persists everything DejaView recorded — the display
// record, the text index, the checkpoint image chain, and the snapshotting
// file system with its full history — so the WYSIWYS operations (browse,
// search, playback, revive) keep working long after the live session
// ended. This is the repository a paper-described deployment accumulates
// on its terabyte disk.

// Archive file names inside an archive directory.
const (
	archiveMetaFile   = "archive.dv"
	archiveIndexFile  = "index.dv"
	archiveImagesFile = "images.dv"
	archiveFSFile     = "fs.dv"
	archiveRecordDir  = "record"
)

// Exported archive layout names for lifecycle tooling (the tier
// compactor and dvgc stage sibling rewrites of these entries).
const (
	ArchiveMetaFile   = archiveMetaFile
	ArchiveIndexFile  = archiveIndexFile
	ArchiveImagesFile = archiveImagesFile
	ArchiveFSFile     = archiveFSFile
	ArchiveRecordDir  = archiveRecordDir
)

const archiveMagic = 0x31484352564A4544 // "DEJVRCH1"

// ErrCorruptArchive reports a structurally invalid archive.
var ErrCorruptArchive = errors.New("core: corrupt archive")

// SaveArchive writes the complete session state to a directory. Every
// stream is staged to a temporary file and the set is renamed into place
// only after all of them were written (metadata last: its presence marks
// the archive complete), so a failure mid-save leaves no partial archive
// behind and an existing archive at dir survives a failed re-save.
func (s *Session) SaveArchive(dir string) error {
	if err := failpoint.Inject("core/archive.save"); err != nil {
		return fmt.Errorf("core: archive save: %w", err)
	}
	sp := obs.DefaultTracer.Start("core.save_archive")
	defer sp.Finish()
	t0 := obs.StartTimer()
	defer t0.Done(obsArchiveSaveMS)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.recorder.Flush()
	if err := s.recorder.Store().Save(filepath.Join(dir, archiveRecordDir)); err != nil {
		return fmt.Errorf("core: archive record: %w", err)
	}
	meta := make([]byte, 24)
	binary.LittleEndian.PutUint64(meta[0:], archiveMagic)
	binary.LittleEndian.PutUint64(meta[8:], uint64(s.clock.Now()))
	w, h := s.disp.Size()
	binary.LittleEndian.PutUint32(meta[16:], uint32(w))
	binary.LittleEndian.PutUint32(meta[20:], uint32(h))

	var staged []*atomicfile.File
	for _, st := range []struct {
		name       string
		compressed bool
		save       func(w io.Writer) error
	}{
		{archiveIndexFile, true, s.idx.Save},
		// Checkpoint images compress inside SaveImages itself (pages are
		// the bulk of an archive); wrapping them in another compressor
		// would just re-deflate opaque data.
		{archiveImagesFile, false, s.ckpt.SaveImages},
		{archiveFSFile, true, s.fs.Save},
		{archiveMetaFile, false, func(w io.Writer) error {
			_, err := w.Write(meta)
			return err
		}},
	} {
		f, err := stageTo(filepath.Join(dir, st.name), st.name, st.compressed, st.save)
		if err != nil {
			atomicfile.AbortAll(staged...)
			return fmt.Errorf("core: archive %s: %w", st.name, err)
		}
		staged = append(staged, f)
	}
	if err := atomicfile.CommitAll(staged...); err != nil {
		return fmt.Errorf("core: archive save: %w", err)
	}
	obsArchiveSaves.Inc()
	return nil
}

// stageTo writes one archive stream to a staged temp file, optionally
// through the parallel block compressor (storage format v2); loadFrom
// transparently reads both compressed and v1 raw streams. Each stream
// carries a `core/archive.save:<name>` failpoint.
func stageTo(path, name string, compressed bool, save func(w io.Writer) error) (*atomicfile.File, error) {
	if err := failpoint.Inject("core/archive.save:" + name); err != nil {
		return nil, err
	}
	f, err := atomicfile.Create(path)
	if err != nil {
		return nil, err
	}
	if !compressed {
		if err := save(f); err != nil {
			f.Abort()
			return nil, err
		}
		return f, nil
	}
	zw, err := compress.NewWriter(f, compress.Options{})
	if err != nil {
		f.Abort()
		return nil, err
	}
	if err := save(zw); err != nil {
		//lint:ignore dropped-error error path: the save error is the root cause; this Close only releases the codec
		zw.Close()
		f.Abort()
		return nil, err
	}
	if err := zw.Close(); err != nil {
		f.Abort()
		return nil, err
	}
	return f, nil
}

// Archive is a reopened session archive: read-only history with full
// WYSIWYS access, including reviving live sessions from any archived
// checkpoint.
type Archive struct {
	// Store is the display record.
	Store *record.Store
	// Index is the text index.
	Index *index.Index
	// FS is the archived file system with its snapshot history.
	FS *lfs.FS
	// End is the archived session's final timestamp.
	End simclock.Time
	// Width, Height are the archived desktop dimensions.
	Width, Height int

	clock *simclock.Clock
	ckpt  *vexec.Checkpointer
	cache *lru.Cache[int64, *display.Framebuffer]

	// blocks is the archive's shared decoded-block cache: every lazily
	// opened stream (screenshot log, checkpoint images) draws on one
	// byte budget, so repeated time-machine seeks decode each block at
	// most once while within it.
	blocks *compress.BlockCache

	// imagesFile backs demand-loaded checkpoint pages after a lazy
	// open; nil when the archive was opened eagerly.
	imagesFile *os.File
}

// OpenOptions tunes OpenArchiveWith.
type OpenOptions struct {
	// CacheBytes budgets the archive's shared decoded-block cache: 0
	// picks compress.DefaultBlockCacheBytes, negative disables caching
	// across streams (each stream keeps only its small private cache).
	CacheBytes int64
}

// OpenArchive loads an archive directory written by SaveArchive. The
// open is lazy wherever the on-disk streams allow it: record metadata,
// index, and file system load up front, while checkpoint page payloads
// and screenshot blocks demand-decode through the frames' block tables.
// Archives saved before the block table existed open exactly as before,
// just eagerly. Call Close when done to release the backing file.
func OpenArchive(dir string) (*Archive, error) {
	return openArchive(dir, true, OpenOptions{})
}

// OpenArchiveWith is OpenArchive with explicit options (block-cache
// budget; dvserve's -cache-bytes flag lands here).
func OpenArchiveWith(dir string, opts OpenOptions) (*Archive, error) {
	return openArchive(dir, true, opts)
}

// OpenArchiveEager is OpenArchive with all streams decoded up front —
// the right choice when every checkpoint will be touched anyway (the
// tier compactor's rewrite path, bulk verification).
func OpenArchiveEager(dir string) (*Archive, error) {
	return openArchive(dir, false, OpenOptions{})
}

func openArchive(dir string, lazy bool, opts OpenOptions) (*Archive, error) {
	if err := failpoint.Inject("core/archive.open"); err != nil {
		return nil, fmt.Errorf("core: archive open: %w", err)
	}
	sp := obs.DefaultTracer.Start("core.open_archive")
	defer sp.Finish()
	t0 := obs.StartTimer()
	defer t0.Done(obsArchiveOpenMS)
	if lazy {
		defer t0.Done(obsArchiveOpenLazyMS)
	}
	meta, err := os.ReadFile(filepath.Join(dir, archiveMetaFile))
	if err != nil {
		return nil, err
	}
	if len(meta) < 24 || binary.LittleEndian.Uint64(meta) != archiveMagic {
		return nil, fmt.Errorf("%w: bad metadata", ErrCorruptArchive)
	}
	a := &Archive{
		End:    simclock.Time(binary.LittleEndian.Uint64(meta[8:])),
		Width:  int(binary.LittleEndian.Uint32(meta[16:])),
		Height: int(binary.LittleEndian.Uint32(meta[20:])),
		cache:  lru.New[int64, *display.Framebuffer](32),
	}
	if lazy {
		budget := opts.CacheBytes
		if budget == 0 {
			budget = compress.DefaultBlockCacheBytes
		}
		if budget > 0 {
			a.blocks = compress.NewBlockCache(budget)
			a.blocks.SetHooks(
				func(n int) { obsBlockCacheHits.Add(uint64(n)) },
				func(n int) { obsBlockCacheMisses.Add(uint64(n)) },
				func(b int64) { obsBlockCacheEvictedBytes.Add(uint64(b)) },
			)
		}
		a.Store, err = record.OpenLazy(filepath.Join(dir, archiveRecordDir),
			func(n int) { obsLazyBlockLoads.Add(uint64(n)) }, a.blocks)
	} else {
		a.Store, err = record.Open(filepath.Join(dir, archiveRecordDir))
	}
	if err != nil {
		return nil, fmt.Errorf("core: archive record: %w", err)
	}
	if err := loadFrom(filepath.Join(dir, archiveIndexFile), func(f io.Reader) error {
		a.Index, err = index.Load(f)
		return err
	}); err != nil {
		return nil, fmt.Errorf("core: archive index: %w", err)
	}
	if err := loadFrom(filepath.Join(dir, archiveFSFile), func(f io.Reader) error {
		a.FS, err = lfs.Load(f)
		return err
	}); err != nil {
		return nil, fmt.Errorf("core: archive fs: %w", err)
	}

	// A minimal execution substrate to revive into: a clock positioned
	// at the archive's end, a kernel, and a checkpointer carrying the
	// loaded image chain. Archived images start cold (nothing is in any
	// page cache after a reload).
	a.clock = simclock.New()
	a.clock.Set(a.End)
	kernel := vexec.NewKernel(a.clock)
	cont := kernel.NewContainer(a.FS)
	a.ckpt = vexec.NewCheckpointer(cont, a.FS, a.FS, vexec.DefaultCostModel(), 100)
	loaded := false
	if lazy {
		loaded, err = a.openImagesLazy(filepath.Join(dir, archiveImagesFile))
		if err != nil {
			return nil, fmt.Errorf("core: archive images: %w", err)
		}
	}
	if !loaded {
		if err := loadFrom(filepath.Join(dir, archiveImagesFile), a.ckpt.LoadImages); err != nil {
			return nil, fmt.Errorf("core: archive images: %w", err)
		}
	}
	a.ckpt.DropCaches()
	obsArchiveOpens.Inc()
	return a, nil
}

// openImagesLazy tries the demand-loaded image path: a block table on
// the images frame plus the metadata-first DEJVIMG2 layout. It reports
// false (and no error) when the archive predates either, in which case
// the caller falls back to the eager loader.
func (a *Archive) openImagesLazy(path string) (bool, error) {
	if err := failpoint.Inject("core/archive.open:" + filepath.Base(path)); err != nil {
		return false, err
	}
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	st, err := f.Stat()
	if err != nil {
		//lint:ignore dropped-error error path: the Stat error is reported; Close only releases a read-only handle
		f.Close()
		return false, err
	}
	ff, err := compress.OpenFrameAt(f, st.Size())
	if err != nil {
		//lint:ignore dropped-error error path: the frame-open error is reported; Close only releases a read-only handle
		f.Close()
		if errors.Is(err, compress.ErrNoBlockTable) {
			return false, nil // table-less archive: eager fallback
		}
		return false, err
	}
	ff.SetLoadHook(func(n int) { obsLazyBlockLoads.Add(uint64(n)) })
	if a.blocks != nil {
		ff.SetBlockCache(a.blocks)
	}
	fetch := func(off int64, dst []byte) error {
		_, err := ff.ReadAt(dst, off)
		return err
	}
	if err := a.ckpt.LoadImagesLazy(ff.SequentialReader(), ff.RawSize(), fetch); err != nil {
		//lint:ignore dropped-error error path: the load error decides the outcome; Close only releases a read-only handle
		f.Close()
		if errors.Is(err, vexec.ErrCorruptImages) {
			// Usually a v1 (inline-payload) image stream inside a framed
			// file; the eager loader handles those.
			return false, nil
		}
		return false, err
	}
	a.imagesFile = f
	return true, nil
}

// Close releases the archive's backing file handle (held only after a
// lazy open). The archive must not be used afterwards if any checkpoint
// pages are still unmaterialized.
func (a *Archive) Close() error {
	if a.imagesFile == nil {
		return nil
	}
	f := a.imagesFile
	a.imagesFile = nil
	return f.Close()
}

func loadFrom(path string, load func(r io.Reader) error) error {
	if err := failpoint.Inject("core/archive.open:" + filepath.Base(path)); err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	//lint:ignore dropped-error read-only open; a Close error here cannot lose data
	defer f.Close()
	zr, err := compress.MaybeReader(f)
	if err != nil {
		return err
	}
	//lint:ignore dropped-error read path; decode errors surface through load, not Close
	defer zr.Close()
	return load(zr)
}

// Checkpoints reports the number of archived checkpoints.
func (a *Archive) Checkpoints() uint64 { return a.ckpt.Counter() }

// BlockCacheStats snapshots the archive's shared decoded-block cache
// accounting (zero value when the archive was opened eagerly or with
// caching disabled).
func (a *Archive) BlockCacheStats() compress.BlockCacheStats {
	if a.blocks == nil {
		return compress.BlockCacheStats{}
	}
	return a.blocks.Stats()
}

// Checkpointer exposes the archived image chain for offline lifecycle
// management: the tier compactor thins it with Retain and re-saves it
// with SaveImagesOptions. Mutating it invalidates none of the archive's
// read paths (they go through the same checkpointer).
func (a *Archive) Checkpointer() *vexec.Checkpointer { return a.ckpt }

// Player opens a playback engine over the archived display record.
func (a *Archive) Player() *playback.Player {
	return playback.New(a.Store, 32)
}

// Browse renders the archived screen as of time t.
func (a *Archive) Browse(t simclock.Time) (*display.Framebuffer, error) {
	return playback.RenderAt(a.Store, t, a.cache)
}

// Search queries the archived text with result screenshots, exactly like
// a live session.
func (a *Archive) Search(q index.Query) ([]SearchResult, error) {
	res, err := a.Index.Search(q, a.End)
	if err != nil {
		return nil, err
	}
	out := make([]SearchResult, 0, len(res))
	for _, r := range res {
		shot, err := playback.RenderAt(a.Store, r.Time, a.cache)
		if err != nil && !errors.Is(err, playback.ErrEmptyRecord) {
			return nil, err
		}
		out = append(out, SearchResult{Result: r, Screenshot: shot})
	}
	return out, nil
}

// SearchIndex runs a query and returns the raw index hits without
// rendering result screenshots — the archive side of the remote search
// RPC. An Archive's read operations (Search, SearchIndex, Browse,
// opening Players over Store) are safe for concurrent use by many
// connections: the index, record store, and screenshot cache are all
// internally locked.
func (a *Archive) SearchIndex(q index.Query) ([]index.Result, error) {
	return a.Index.Search(q, a.End)
}

// ArchiveRevived is a live session revived from an archived checkpoint.
type ArchiveRevived struct {
	Container *vexec.Container
	Union     *unionfs.Union
	Restore   *vexec.RestoreResult
	// Screen is the display state at the revived moment, rendered from
	// the archived display record.
	Screen *display.Framebuffer
	At     simclock.Time
}

// TakeMeBack revives the archived session at or before time t.
func (a *Archive) TakeMeBack(t simclock.Time) (*ArchiveRevived, error) {
	img, err := a.ckpt.LatestBefore(t)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNothingToRevive, err)
	}
	return a.ReviveCheckpoint(img.Counter)
}

// ReviveCheckpoint revives a specific archived checkpoint.
func (a *Archive) ReviveCheckpoint(counter uint64) (*ArchiveRevived, error) {
	if err := failpoint.Inject("core/revive"); err != nil {
		return nil, fmt.Errorf("core: archive revive: %w", err)
	}
	img, err := a.ckpt.Image(counter)
	if err != nil {
		return nil, err
	}
	view, err := a.FS.At(img.FSEpoch)
	if err != nil {
		return nil, fmt.Errorf("core: archive revive: snapshot %d: %w", img.FSEpoch, err)
	}
	union := unionfs.New(view)
	res, err := a.ckpt.Restore(img.Counter, union)
	if err != nil {
		return nil, err
	}
	screen, err := playback.RenderAt(a.Store, img.Time, a.cache)
	if err != nil && !errors.Is(err, playback.ErrEmptyRecord) {
		return nil, err
	}
	return &ArchiveRevived{
		Container: res.Container,
		Union:     union,
		Restore:   res,
		Screen:    screen,
		At:        img.Time,
	}, nil
}
