package core

import (
	"errors"
	"testing"

	"dejaview/internal/access"
	"dejaview/internal/display"
	"dejaview/internal/index"
	"dejaview/internal/policy"
	"dejaview/internal/simclock"
	"dejaview/internal/vexec"
)

const sec = simclock.Second

// driveDesktop runs a tiny scripted desktop: an editor typing words
// every second for n seconds, ticking the session each second.
func driveDesktop(t *testing.T, s *Session, n int) (*vexec.Process, *access.Component) {
	t.Helper()
	app := s.Registry().Register("Editor", "editor")
	win := app.AddComponent(nil, access.RoleWindow, "notes.txt - Editor", "")
	para := app.AddComponent(win, access.RoleParagraph, "", "initial text")
	s.Registry().SetFocus(app)

	proc, err := s.Container().Spawn(0, "editor")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := proc.Mem().Mmap(16*vexec.PageSize, vexec.PermRead|vexec.PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// Display: big enough change to clear the 5% policy threshold.
		err := s.Display().Submit(display.SolidFill(0,
			display.NewRect(0, (i*40)%700, 1024, 60), display.Pixel(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		app.SetText(para, "initial text plus line "+string(rune('a'+i%26)))
		if err := proc.Mem().Write(addr+uint64(i%16)*vexec.PageSize, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		s.NoteKeyboardInput()
		if _, _, err := s.Tick(); err != nil {
			t.Fatal(err)
		}
		s.Clock().Advance(sec)
	}
	return proc, para
}

func TestSessionDefaults(t *testing.T) {
	s := NewSession(Config{})
	w, h := s.Display().Size()
	if w != 1024 || h != 768 {
		t.Errorf("default size %dx%d", w, h)
	}
	if s.Clock().Now() != 0 {
		t.Error("fresh session clock not at 0")
	}
}

func TestSessionRecordsDisplayAndCheckpoints(t *testing.T) {
	s := NewSession(Config{})
	driveDesktop(t, s, 10)
	if got := s.Recorder().Stats().Commands; got == 0 {
		t.Error("no display commands recorded")
	}
	if got := s.Checkpointer().Stats().Checkpoints; got < 8 {
		t.Errorf("checkpoints = %d, want ~10 (1/s with activity)", got)
	}
}

func TestSessionPolicySkipsIdle(t *testing.T) {
	s := NewSession(Config{})
	for i := 0; i < 10; i++ {
		if _, _, err := s.Tick(); err != nil {
			t.Fatal(err)
		}
		s.Clock().Advance(sec)
	}
	if got := s.Checkpointer().Stats().Checkpoints; got != 0 {
		t.Errorf("idle session took %d checkpoints", got)
	}
	st := s.Policy().Stats()
	if st.Counts[policy.SkipNoActivity] != 10 {
		t.Errorf("SkipNoActivity = %d", st.Counts[policy.SkipNoActivity])
	}
}

func TestSessionBrowse(t *testing.T) {
	s := NewSession(Config{})
	driveDesktop(t, s, 5)
	fb, err := s.Browse(2 * sec)
	if err != nil {
		t.Fatal(err)
	}
	if fb == nil {
		t.Fatal("nil browse screenshot")
	}
	w, h := fb.Size()
	if w != 1024 || h != 768 {
		t.Errorf("browse screenshot %dx%d", w, h)
	}
}

func TestSessionSearchFindsTypedText(t *testing.T) {
	s := NewSession(Config{})
	driveDesktop(t, s, 5)
	res, err := s.Search(index.Query{All: []string{"initial"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results for typed text")
	}
	if res[0].Screenshot == nil {
		t.Error("result missing screenshot portal")
	}
}

func TestSessionSearchEmptyQuery(t *testing.T) {
	s := NewSession(Config{})
	if _, err := s.Search(index.Query{}); !errors.Is(err, index.ErrEmptyQuery) {
		t.Errorf("err = %v", err)
	}
}

func TestTakeMeBackRevivesState(t *testing.T) {
	s := NewSession(Config{})
	proc, _ := driveDesktop(t, s, 8)
	rs, err := s.TakeMeBack(4 * sec)
	if err != nil {
		t.Fatal(err)
	}
	if rs.At > 4*sec {
		t.Errorf("revived at %v, after the requested time", rs.At)
	}
	// Same virtual PID resolves in the revived namespace.
	rp, err := rs.Container.Process(proc.PID())
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "editor" {
		t.Errorf("revived process %q", rp.Name())
	}
	// Network disabled by default.
	if rs.Container.NetworkEnabled() {
		t.Error("revived session has network enabled")
	}
	rs.EnableNetwork()
	if !rs.Container.NetworkEnabled() {
		t.Error("EnableNetwork failed")
	}
	if len(s.Revived()) != 1 {
		t.Errorf("revived list = %d", len(s.Revived()))
	}
}

func TestTakeMeBackBeforeAnyCheckpoint(t *testing.T) {
	s := NewSession(Config{})
	if _, err := s.TakeMeBack(0); !errors.Is(err, ErrNothingToRevive) {
		t.Errorf("err = %v", err)
	}
}

func TestRevivedDisplayRestored(t *testing.T) {
	s := NewSession(Config{})
	// Paint a distinctive screen, then checkpoint.
	if err := s.Display().Submit(display.SolidFill(0,
		display.NewRect(0, 0, 1024, 768), display.RGB(1, 2, 3))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Container().Spawn(0, "app"); err != nil {
		t.Fatal(err)
	}
	s.NoteKeyboardInput()
	if _, _, err := s.Tick(); err != nil {
		t.Fatal(err)
	}
	// Change the screen afterwards.
	s.Clock().Advance(2 * sec)
	if err := s.Display().Submit(display.SolidFill(0,
		display.NewRect(0, 0, 1024, 768), display.RGB(9, 9, 9))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Display().Flush(); err != nil {
		t.Fatal(err)
	}
	rs, err := s.TakeMeBack(sec)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Display.Screen().At(10, 10); got != display.RGB(1, 2, 3) {
		t.Errorf("revived screen pixel = %#x, want checkpointed contents", got)
	}
	// Main display unaffected.
	if got := s.Display().Screen().At(10, 10); got != display.RGB(9, 9, 9) {
		t.Errorf("main screen pixel = %#x", got)
	}
}

func TestMultipleRevivedSessionsSideBySide(t *testing.T) {
	s := NewSession(Config{})
	driveDesktop(t, s, 6)
	r1, err := s.TakeMeBack(2 * sec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.TakeMeBack(5 * sec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Container.ID() == r2.Container.ID() {
		t.Error("revived sessions share a container")
	}
	// Diverge on disk independently.
	if err := r1.Container.FS().WriteFile("/branch", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := r2.Container.FS().WriteFile("/branch", []byte("two")); err != nil {
		t.Fatal(err)
	}
	d1, _ := r1.Container.FS().ReadFile("/branch")
	d2, _ := r2.Container.FS().ReadFile("/branch")
	if string(d1) != "one" || string(d2) != "two" {
		t.Errorf("branches = %q, %q", d1, d2)
	}
	if s.FS().Exists("/branch") {
		t.Error("branch write leaked into main FS")
	}
	s.CloseRevived(r1)
	if len(s.Revived()) != 1 {
		t.Errorf("revived after close = %d", len(s.Revived()))
	}
}

func TestClipboardSharedAcrossSessions(t *testing.T) {
	s := NewSession(Config{})
	driveDesktop(t, s, 3)
	rs, err := s.TakeMeBack(2 * sec)
	if err != nil {
		t.Fatal(err)
	}
	rs.SetClipboard("copied in revived")
	if s.Clipboard() != "copied in revived" {
		t.Error("clipboard not shared to main")
	}
	s.SetClipboard("copied in main")
	if rs.Clipboard() != "copied in main" {
		t.Error("clipboard not shared to revived")
	}
}

func TestRevivedSessionRecheckpointable(t *testing.T) {
	s := NewSession(Config{})
	proc, _ := driveDesktop(t, s, 4)
	rs, err := s.TakeMeBack(3 * sec)
	if err != nil {
		t.Fatal(err)
	}
	// Work in the revived session, checkpoint it, revive the revival.
	rp, _ := rs.Container.Process(proc.PID())
	addr, err := rp.Mem().Mmap(vexec.PageSize, vexec.PermRead|vexec.PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Mem().Write(addr, []byte("revived work")); err != nil {
		t.Fatal(err)
	}
	if err := rs.Container.FS().WriteFile("/revived.txt", []byte("branch file")); err != nil {
		t.Fatal(err)
	}
	cres, err := rs.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	view, err := rs.Union.Upper().At(cres.Image.FSEpoch)
	if err != nil {
		t.Fatal(err)
	}
	data, err := view.ReadFile("/revived.txt")
	if err != nil || string(data) != "branch file" {
		t.Errorf("revived checkpoint FS = %q, %v", data, err)
	}
}

func TestDisablePolicyCheckpointsEveryTick(t *testing.T) {
	s := NewSession(Config{DisablePolicy: true})
	if _, err := s.Container().Spawn(0, "app"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := s.Tick(); err != nil {
			t.Fatal(err)
		}
		s.Clock().Advance(sec)
	}
	if got := s.Checkpointer().Stats().Checkpoints; got != 5 {
		t.Errorf("checkpoints = %d, want 5 with policy disabled", got)
	}
}

func TestRecordAtReducedResolution(t *testing.T) {
	s := NewSession(Config{RecordScaleW: 512, RecordScaleH: 384})
	driveDesktop(t, s, 3)
	store := s.Recorder().Store()
	if store.Width != 512 || store.Height != 384 {
		t.Errorf("record resolution %dx%d", store.Width, store.Height)
	}
	fb, err := s.Browse(2 * sec)
	if err != nil {
		t.Fatal(err)
	}
	w, h := fb.Size()
	if w != 512 || h != 384 {
		t.Errorf("browse at %dx%d", w, h)
	}
}

func TestAnnotationSearchEndToEnd(t *testing.T) {
	s := NewSession(Config{})
	app := s.Registry().Register("Editor", "editor")
	win := app.AddComponent(nil, access.RoleWindow, "notes", "")
	para := app.AddComponent(win, access.RoleParagraph, "", "remember project zanzibar deadline")
	if err := s.Display().Submit(display.SolidFill(0,
		display.NewRect(0, 0, 600, 600), 5)); err != nil {
		t.Fatal(err)
	}
	s.NoteKeyboardInput()
	if _, _, err := s.Tick(); err != nil {
		t.Fatal(err)
	}
	s.Clock().Advance(sec)
	app.SelectText(para, "project zanzibar")
	app.PressAnnotationKey()

	res, err := s.Search(index.Query{All: []string{"zanzibar"}, AnnotatedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("annotated results = %d, want 1", len(res))
	}
}
