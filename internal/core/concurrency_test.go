package core

import (
	"sync"
	"testing"

	"dejaview/internal/display"
	"dejaview/internal/index"
)

// TestSessionConcurrentUse hammers a session from several goroutines the
// way a deployment would: one driving the desktop, others searching,
// browsing, reviving, and using the clipboard. Its value doubles under
// the race detector.
func TestSessionConcurrentUse(t *testing.T) {
	s := NewSession(Config{})
	driveDesktop(t, s, 5) // seed some history and checkpoints

	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Display().Submit(display.SolidFill(0,
				display.NewRect(0, (i*40)%700, 1024, 60), display.Pixel(i)))
			s.NoteKeyboardInput()
			if _, _, err := s.Tick(); err != nil {
				t.Error(err)
				return
			}
			s.Clock().Advance(sec)
		}
	}()

	var workers sync.WaitGroup
	workers.Add(4)
	go func() {
		defer workers.Done()
		for i := 0; i < 30; i++ {
			if _, err := s.Search(index.Query{All: []string{"initial"}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer workers.Done()
		for i := 0; i < 30; i++ {
			if _, err := s.Browse(sec * 2); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer workers.Done()
		for i := 0; i < 10; i++ {
			rv, err := s.TakeMeBack(3 * sec)
			if err != nil {
				t.Error(err)
				return
			}
			s.CloseRevived(rv)
		}
	}()
	go func() {
		defer workers.Done()
		for i := 0; i < 100; i++ {
			s.SetClipboard("x")
			_ = s.Clipboard()
		}
	}()

	workers.Wait()
	close(stop)
	driver.Wait()
}
