package core

import "os"

// corruptFile flips the first byte of a file.
func corruptFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) > 0 {
		data[0] ^= 0xFF
	}
	return os.WriteFile(path, data, 0o644)
}
