package record

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

func testKey() []byte {
	return DeriveKey("correct horse battery staple", []byte("salt"))
}

func sampleStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(16, 16)
	fb := display.NewFramebuffer(16, 16)
	s.AppendScreenshot(0, fb)
	for i := 0; i < 10; i++ {
		c := display.SolidFill(simclock.Time(i)*simclock.Second,
			display.NewRect(i, 0, 2, 2), display.Pixel(i))
		if _, err := s.AppendCommand(&c); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestDeriveKeyProperties(t *testing.T) {
	k1 := DeriveKey("pass", []byte("a"))
	k2 := DeriveKey("pass", []byte("a"))
	k3 := DeriveKey("pass", []byte("b"))
	k4 := DeriveKey("other", []byte("a"))
	if len(k1) != KeySize {
		t.Fatalf("key size %d", len(k1))
	}
	if !bytes.Equal(k1, k2) {
		t.Error("derivation not deterministic")
	}
	if bytes.Equal(k1, k3) || bytes.Equal(k1, k4) {
		t.Error("salt/passphrase not separating keys")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := testKey()
	data := []byte("the secret history of the desktop")
	sealed, err := seal(key, data)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, data[:16]) {
		t.Error("plaintext visible in sealed output")
	}
	got, err := open(key, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	sealed, err := seal(testKey(), []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	wrong := DeriveKey("wrong", []byte("salt"))
	if _, err := open(wrong, sealed); !errors.Is(err, ErrBadKey) {
		t.Errorf("err = %v, want ErrBadKey", err)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	key := testKey()
	sealed, err := seal(key, []byte("untampered content"))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{len(sealMagic) + 2, len(sealed) / 2, len(sealed) - 1} {
		mod := append([]byte(nil), sealed...)
		mod[i] ^= 0x01
		if _, err := open(key, mod); !errors.Is(err, ErrBadKey) {
			t.Errorf("flip at %d: err = %v, want ErrBadKey", i, err)
		}
	}
	if _, err := open(key, sealed[:10]); !errors.Is(err, ErrBadKey) {
		t.Errorf("truncated: err = %v", err)
	}
}

func TestSealBadKeySize(t *testing.T) {
	if _, err := seal([]byte("short"), []byte("x")); !errors.Is(err, ErrBadKeySize) {
		t.Errorf("err = %v", err)
	}
	if _, err := open([]byte("short"), []byte("x")); !errors.Is(err, ErrBadKeySize) {
		t.Errorf("err = %v", err)
	}
}

func TestSaveOpenEncrypted(t *testing.T) {
	key := testKey()
	dir := filepath.Join(t.TempDir(), "sealed")
	s := sampleStore(t)
	if err := s.SaveEncrypted(dir, key); err != nil {
		t.Fatal(err)
	}
	// The on-disk files must not be readable as a plain record.
	if _, err := Open(dir); err == nil {
		t.Error("plain Open succeeded on sealed record")
	}
	got, err := OpenEncrypted(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	if got.CommandBytes() != s.CommandBytes() || len(got.Timeline()) != len(s.Timeline()) {
		t.Error("sealed round trip lost data")
	}
	// Wrong key fails cleanly.
	if _, err := OpenEncrypted(dir, DeriveKey("nope", []byte("salt"))); !errors.Is(err, ErrBadKey) {
		t.Errorf("wrong key err = %v", err)
	}
}

func TestSealedFilesLookEncrypted(t *testing.T) {
	key := testKey()
	dir := filepath.Join(t.TempDir(), "sealed")
	s := sampleStore(t)
	if err := s.SaveEncrypted(dir, key); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, commandsFile))
	if err != nil {
		t.Fatal(err)
	}
	// The plaintext command log starts with the 0xD7 magic on every
	// command; sealed bytes must not.
	if len(data) > 8 && data[8+16] == 0xD7 && data[8+16+36] == 0xD7 {
		t.Error("command log looks unencrypted")
	}
}
