package record

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dejaview/internal/compress"
)

// The v2 golden fixture locks the on-disk storage format: testdata/v2record
// was written by TestGenV2Fixture (CodecRaw, so the byte stream is fully
// determined by the container framing, not by any codec's bitstream) and
// is committed to the repository. These tests fail if either direction of
// the format drifts — the reader must keep opening archived bytes, and
// the writer must keep producing exactly them.

var recordFiles = []string{commandsFile, screenshotsFile, timelineFile, metaFile}

// TestV2GoldenOpens locks the read side: the committed v2 fixture must
// open and decode to the same logical record the generator scripted.
func TestV2GoldenOpens(t *testing.T) {
	got, err := Open("testdata/v2record")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	assertStoresEqual(t, got, fixtureStore())
}

// TestV2GoldenBytes locks the write side: re-saving the scripted fixture
// store must reproduce the committed files byte for byte. A mismatch
// means the v2 container framing changed — that is a format break and
// needs a version bump, not a fixture regeneration. The fixture predates
// the seekable block table, so the comparison strips the table that
// current saves append past the frame terminator: everything a
// sequential reader consumes must still match exactly.
func TestV2GoldenBytes(t *testing.T) {
	s := fixtureStore()
	s.SetCompression(compress.Options{}.WithCodec(compress.CodecRaw))
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	for _, name := range recordFiles {
		want, err := os.ReadFile(filepath.Join("testdata/v2record", name))
		if err != nil {
			t.Fatalf("golden %s: %v", name, err)
		}
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("saved %s: %v", name, err)
		}
		if !bytes.Equal(compress.TrimTable(got), want) {
			t.Errorf("%s: saved bytes differ from golden fixture (len %d vs %d)",
				name, len(got), len(want))
		}
	}
}

// TestV2GoldenIsV2 guards the fixture itself: every stream except the
// raw metadata header must carry the v2 frame magic, so the fixture
// really exercises the compressed container path.
func TestV2GoldenIsV2(t *testing.T) {
	for _, name := range []string{commandsFile, screenshotsFile, timelineFile} {
		b, err := os.ReadFile(filepath.Join("testdata/v2record", name))
		if err != nil {
			t.Fatalf("golden %s: %v", name, err)
		}
		if !compress.IsFrame(b) {
			t.Errorf("%s: fixture stream is not a v2 frame", name)
		}
	}
}
