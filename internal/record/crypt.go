package record

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// §2: recording a user's computer activity raises privacy concerns;
// beyond not recording input, "standard encryption techniques can also be
// used to provide an additional layer of protection". This file seals the
// record's on-disk files with AES-256-CTR plus an HMAC-SHA256 tag
// (encrypt-then-MAC), so a stolen disk does not yield the desktop's
// history.

// KeySize is the record encryption key size (AES-256).
const KeySize = 32

// Encryption errors.
var (
	ErrBadKey     = errors.New("record: wrong key or corrupted sealed record")
	ErrBadKeySize = errors.New("record: key must be 32 bytes")
)

// sealMagic marks a sealed file.
var sealMagic = []byte("DJVSEAL1")

// DeriveKey stretches a passphrase into a KeySize key with an iterated
// salted SHA-256 (a self-contained stand-in for a real KDF; swap in
// scrypt/argon2 where available).
func DeriveKey(passphrase string, salt []byte) []byte {
	h := sha256.Sum256(append([]byte(passphrase), salt...))
	for i := 0; i < 1<<14; i++ {
		h = sha256.Sum256(h[:])
	}
	return h[:]
}

// seal encrypts data: magic || iv(16) || ciphertext || hmac(32).
func seal(key, data []byte) ([]byte, error) {
	if len(key) != KeySize {
		return nil, ErrBadKeySize
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(sealMagic)+aes.BlockSize+len(data)+sha256.Size)
	out = append(out, sealMagic...)
	iv := make([]byte, aes.BlockSize)
	if _, err := rand.Read(iv); err != nil {
		return nil, err
	}
	out = append(out, iv...)
	ct := make([]byte, len(data))
	cipher.NewCTR(block, iv).XORKeyStream(ct, data)
	out = append(out, ct...)
	mac := hmac.New(sha256.New, key)
	//lint:ignore dropped-error hash.Hash.Write is documented to never return an error
	mac.Write(out)
	return mac.Sum(out), nil
}

// open decrypts a sealed buffer, verifying the tag first.
func open(key, sealed []byte) ([]byte, error) {
	if len(key) != KeySize {
		return nil, ErrBadKeySize
	}
	minLen := len(sealMagic) + aes.BlockSize + sha256.Size
	if len(sealed) < minLen {
		return nil, fmt.Errorf("%w: truncated", ErrBadKey)
	}
	if string(sealed[:len(sealMagic)]) != string(sealMagic) {
		return nil, fmt.Errorf("%w: not a sealed record", ErrBadKey)
	}
	body := sealed[:len(sealed)-sha256.Size]
	tag := sealed[len(sealed)-sha256.Size:]
	mac := hmac.New(sha256.New, key)
	//lint:ignore dropped-error hash.Hash.Write is documented to never return an error
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, ErrBadKey
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	iv := body[len(sealMagic) : len(sealMagic)+aes.BlockSize]
	ct := body[len(sealMagic)+aes.BlockSize:]
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, iv).XORKeyStream(pt, ct)
	return pt, nil
}

// SaveEncrypted writes the record to dir with every file sealed under key.
func (s *Store) SaveEncrypted(dir string, key []byte) error {
	if len(key) != KeySize {
		return ErrBadKeySize
	}
	// Write plaintext into a scratch layout first via Save, then seal
	// in place. Using a temp dir keeps Save's logic single-sourced.
	tmp, err := os.MkdirTemp("", "dvseal")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	if err := s.Save(tmp); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		return err
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(tmp, e.Name()))
		if err != nil {
			return err
		}
		sealed, err := seal(key, data)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), sealed, 0o600); err != nil {
			return err
		}
	}
	return nil
}

// OpenEncrypted loads a record written by SaveEncrypted.
func OpenEncrypted(dir string, key []byte) (*Store, error) {
	if len(key) != KeySize {
		return nil, ErrBadKeySize
	}
	tmp, err := os.MkdirTemp("", "dvunseal")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		sealed, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		data, err := open(key, sealed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if err := os.WriteFile(filepath.Join(tmp, e.Name()), data, 0o600); err != nil {
			return nil, err
		}
	}
	return Open(tmp)
}
