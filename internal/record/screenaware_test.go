package record

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

// TestScreenAwareReplayInvariant checks the driver-level recording path:
// with the recorder attached as a ScreenAwareSink (no shadow), replaying
// the logged record from its first keyframe must reproduce the server's
// screen exactly.
func TestScreenAwareReplayInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := simclock.New()
		srv := display.NewServer(clk, 32, 32)
		rec := New(clk, 32, 32, Options{
			ScreenshotInterval:  5 * simclock.Second,
			ScreenshotMinChange: 0.001,
		})
		srv.SetRecorder(rec, nil)
		for i := 0; i < 50; i++ {
			c := randomCommand(rng, 32, 32, 0)
			if err := srv.Submit(c); err != nil {
				return false
			}
			if rng.Intn(3) == 0 {
				if _, err := srv.Flush(); err != nil {
					return false
				}
			}
			clk.Advance(simclock.Second)
		}
		if _, err := srv.Flush(); err != nil {
			return false
		}
		store := rec.Store()
		tl := store.Timeline()
		if len(tl) == 0 {
			return false
		}
		// Replay from every keyframe to the end; each must match the
		// server's final screen.
		for _, e := range tl {
			fb, err := store.ScreenshotAt(e)
			if err != nil {
				return false
			}
			for off := e.CmdOff; off < store.EndOfCommands(); {
				c, next, err := store.DecodeCommandAt(off)
				if err != nil {
					return false
				}
				if err := fb.Apply(&c); err != nil {
					return false
				}
				off = next
			}
			if !fb.Equal(srv.Screen()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestScreenAwareTakesMultipleKeyframes verifies keyframe cadence in the
// screen-aware path.
func TestScreenAwareTakesMultipleKeyframes(t *testing.T) {
	clk := simclock.New()
	srv := display.NewServer(clk, 16, 16)
	rec := New(clk, 16, 16, Options{
		ScreenshotInterval:  simclock.Second,
		ScreenshotMinChange: 0.001,
	})
	srv.SetRecorder(rec, nil)
	for i := 0; i < 10; i++ {
		if err := srv.Submit(display.SolidFill(0,
			display.NewRect(0, 0, 16, 16), display.Pixel(i+1))); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Flush(); err != nil {
			t.Fatal(err)
		}
		clk.Advance(simclock.Second)
	}
	st := rec.Stats()
	if st.Screenshots < 8 {
		t.Errorf("Screenshots = %d, want ~10 at 1/s with full-screen changes", st.Screenshots)
	}
	if st.Commands != 10 {
		t.Errorf("Commands = %d", st.Commands)
	}
}

// TestScreenAwareScaledFallsBack verifies that a rescaled record keeps
// using the shadow path (the screen-aware screen is at native resolution).
func TestScreenAwareScaledFallsBack(t *testing.T) {
	clk := simclock.New()
	srv := display.NewServer(clk, 32, 32)
	rec := New(clk, 16, 16, DefaultOptions())
	srv.SetRecorder(rec, display.NewScaler(32, 32, 16, 16))
	if err := srv.Submit(display.SolidFill(0, display.NewRect(0, 0, 32, 32), 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	store := rec.Store()
	if store.Width != 16 {
		t.Fatalf("record width %d", store.Width)
	}
	tl := store.Timeline()
	if len(tl) == 0 {
		t.Fatal("no keyframe")
	}
	fb, err := store.ScreenshotAt(tl[0])
	if err != nil {
		t.Fatal(err)
	}
	w, h := fb.Size()
	if w != 16 || h != 16 {
		t.Errorf("keyframe at %dx%d, want record resolution", w, h)
	}
}
