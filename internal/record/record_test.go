package record

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

func fill(t simclock.Time, r display.Rect, p display.Pixel) display.Command {
	return display.SolidFill(t, r, p)
}

func TestStoreAppendAndDecode(t *testing.T) {
	s := NewStore(16, 16)
	c1 := fill(1, display.NewRect(0, 0, 4, 4), 1)
	c2 := fill(2, display.NewRect(4, 4, 4, 4), 2)
	off1, err := s.AppendCommand(&c1)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := s.AppendCommand(&c2)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != 0 || off2 <= off1 {
		t.Errorf("offsets %d, %d", off1, off2)
	}
	got1, next, err := s.DecodeCommandAt(off1)
	if err != nil {
		t.Fatal(err)
	}
	if next != off2 {
		t.Errorf("next = %d, want %d", next, off2)
	}
	if got1.Fg != 1 {
		t.Errorf("decoded first command %v", got1)
	}
	got2, end, err := s.DecodeCommandAt(off2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Fg != 2 || end != s.EndOfCommands() {
		t.Errorf("decoded second command %v end %d", got2, end)
	}
	if _, _, err := s.DecodeCommandAt(end); err == nil {
		t.Error("decode past end should fail")
	}
}

func TestStoreScreenshotTimelineBinding(t *testing.T) {
	s := NewStore(8, 8)
	fb := display.NewFramebuffer(8, 8)
	c := fill(0, display.NewRect(0, 0, 8, 8), 5)
	if err := fb.Apply(&c); err != nil {
		t.Fatal(err)
	}
	e := s.AppendScreenshot(3*simclock.Second, fb)
	if e.CmdOff != 0 {
		t.Errorf("CmdOff = %d, want 0 (no commands yet)", e.CmdOff)
	}
	cc := fill(4*simclock.Second, display.NewRect(0, 0, 1, 1), 7)
	if _, err := s.AppendCommand(&cc); err != nil {
		t.Fatal(err)
	}
	e2 := s.AppendScreenshot(5*simclock.Second, fb)
	if e2.CmdOff != s.EndOfCommands() {
		t.Errorf("second entry CmdOff = %d, want %d", e2.CmdOff, s.EndOfCommands())
	}
	got, err := s.ScreenshotAt(e)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(fb) {
		t.Error("screenshot round trip mismatch")
	}
	if len(s.Timeline()) != 2 {
		t.Errorf("timeline has %d entries", len(s.Timeline()))
	}
}

func TestStoreSaveOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rec")
	s := NewStore(12, 10)
	fb := display.NewFramebuffer(12, 10)
	s.AppendScreenshot(0, fb)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 25; i++ {
		c := fill(simclock.Time(i)*simclock.Millisecond,
			display.NewRect(rng.Intn(8), rng.Intn(8), 1+rng.Intn(4), 1+rng.Intn(4)),
			display.Pixel(rng.Uint32()))
		if _, err := s.AppendCommand(&c); err != nil {
			t.Fatal(err)
		}
	}
	s.AppendScreenshot(30*simclock.Millisecond, fb)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 12 || got.Height != 10 {
		t.Errorf("size %dx%d", got.Width, got.Height)
	}
	if got.CommandBytes() != s.CommandBytes() || got.ScreenshotBytes() != s.ScreenshotBytes() {
		t.Error("stream sizes differ after reload")
	}
	if len(got.Timeline()) != 2 {
		t.Errorf("timeline %d entries", len(got.Timeline()))
	}
	if got.Timeline()[1] != s.Timeline()[1] {
		t.Errorf("timeline entry mismatch: %+v vs %+v", got.Timeline()[1], s.Timeline()[1])
	}
}

func TestStoreOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("Open of missing dir should fail")
	}
}

func TestStoreOpenCorruptTimeline(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rec")
	s := NewStore(4, 4)
	s.AppendScreenshot(0, display.NewFramebuffer(4, 4))
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Truncate the timeline file to a non-multiple of the entry size.
	tl := filepath.Join(dir, "timeline.dv")
	if err := truncateFile(tl, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorruptRecord) {
		t.Errorf("err = %v, want ErrCorruptRecord", err)
	}
}

func TestStoreDuration(t *testing.T) {
	s := NewStore(8, 8)
	if s.Duration() != 0 {
		t.Error("empty store duration should be 0")
	}
	s.AppendScreenshot(simclock.Second, display.NewFramebuffer(8, 8))
	c := fill(3*simclock.Second, display.NewRect(0, 0, 1, 1), 1)
	if _, err := s.AppendCommand(&c); err != nil {
		t.Fatal(err)
	}
	if got := s.Duration(); got != 3*simclock.Second {
		t.Errorf("Duration = %v, want 3s", got)
	}
}

func TestRecorderFirstCommandTakesKeyframe(t *testing.T) {
	clk := simclock.New()
	r := New(clk, 16, 16, DefaultOptions())
	c := fill(0, display.NewRect(0, 0, 4, 4), 1)
	r.HandleCommand(&c)
	st := r.Stats()
	if st.Screenshots != 1 {
		t.Errorf("Screenshots = %d, want 1 (initial state)", st.Screenshots)
	}
	if st.Commands != 1 {
		t.Errorf("Commands = %d, want 1", st.Commands)
	}
	tl := r.Store().Timeline()
	if len(tl) != 1 || tl[0].CmdOff != 0 {
		t.Errorf("timeline %+v", tl)
	}
}

func TestRecorderShadowTracksCommands(t *testing.T) {
	clk := simclock.New()
	r := New(clk, 8, 8, DefaultOptions())
	c := fill(0, display.NewRect(0, 0, 8, 8), 9)
	r.HandleCommand(&c)
	if got := r.Screen().At(4, 4); got != 9 {
		t.Errorf("shadow pixel = %v, want 9", got)
	}
}

func TestRecorderKeyframeInterval(t *testing.T) {
	clk := simclock.New()
	opts := Options{ScreenshotInterval: simclock.Second, ScreenshotMinChange: 0.001}
	r := New(clk, 16, 16, opts)
	// Command at t=0 takes the initial keyframe; commands every 400ms
	// after that should produce a keyframe roughly every second when the
	// screen changes.
	for i := 0; i < 10; i++ {
		t0 := simclock.Time(i) * 400 * simclock.Millisecond
		c := fill(t0, display.NewRect(i, i, 3, 3), display.Pixel(i+1))
		r.HandleCommand(&c)
	}
	st := r.Stats()
	if st.Screenshots < 3 || st.Screenshots > 5 {
		t.Errorf("Screenshots = %d, want ~4 over 3.6s at 1s interval", st.Screenshots)
	}
}

func TestRecorderKeyframeChangeGate(t *testing.T) {
	clk := simclock.New()
	opts := Options{ScreenshotInterval: simclock.Second, ScreenshotMinChange: 0.5}
	r := New(clk, 16, 16, opts)
	// Tiny changes never hit the 50% gate, so only the initial keyframe
	// should exist.
	for i := 0; i < 10; i++ {
		t0 := simclock.Time(i) * simclock.Second
		c := fill(t0, display.NewRect(0, 0, 1, 1), display.Pixel(i+1))
		r.HandleCommand(&c)
	}
	st := r.Stats()
	if st.Screenshots != 1 {
		t.Errorf("Screenshots = %d, want 1", st.Screenshots)
	}
	if st.SkippedScreenshots == 0 {
		t.Error("change gate never skipped")
	}
}

func TestRecorderFrequencyLimiting(t *testing.T) {
	clk := simclock.New()
	opts := Options{MinLogInterval: 100 * simclock.Millisecond}
	r := New(clk, 16, 16, opts)
	// 20 overwrites of the same region within one interval: merging
	// should eliminate most of them.
	for i := 0; i < 20; i++ {
		c := fill(simclock.Time(i)*simclock.Millisecond,
			display.NewRect(0, 0, 8, 8), display.Pixel(i))
		r.HandleCommand(&c)
	}
	clk.Advance(simclock.Second)
	r.Flush()
	st := r.Stats()
	if st.Commands != 1 {
		t.Errorf("Commands = %d, want 1 after merging", st.Commands)
	}
	if st.MergedCommands != 19 {
		t.Errorf("MergedCommands = %d, want 19", st.MergedCommands)
	}
	// The surviving command must be the final overwrite.
	store := r.Store()
	var last display.Command
	for off := int64(0); off < store.EndOfCommands(); {
		c, next, err := store.DecodeCommandAt(off)
		if err != nil {
			t.Fatal(err)
		}
		last = c
		off = next
	}
	if last.Fg != 19 {
		t.Errorf("surviving command color = %v, want 19", last.Fg)
	}
}

func TestRecorderForceScreenshot(t *testing.T) {
	clk := simclock.New()
	r := New(clk, 8, 8, DefaultOptions())
	r.ForceScreenshot()
	r.ForceScreenshot()
	if got := r.Stats().Screenshots; got != 2 {
		t.Errorf("Screenshots = %d, want 2", got)
	}
}

// Property: replaying the recorded command log from the initial keyframe
// reproduces the recorder's shadow screen exactly — the invariant playback
// relies on.
func TestRecorderReplayInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := simclock.New()
		r := New(clk, 24, 24, DefaultOptions())
		for i := 0; i < 40; i++ {
			c := randomCommand(rng, 24, 24, simclock.Time(i)*simclock.Millisecond)
			r.HandleCommand(&c)
		}
		store := r.Store()
		tl := store.Timeline()
		if len(tl) == 0 {
			return false
		}
		fb, err := store.ScreenshotAt(tl[0])
		if err != nil {
			return false
		}
		for off := tl[0].CmdOff; off < store.EndOfCommands(); {
			c, next, err := store.DecodeCommandAt(off)
			if err != nil {
				return false
			}
			if err := fb.Apply(&c); err != nil {
				return false
			}
			off = next
		}
		return fb.Equal(r.Screen())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomCommand(rng *rand.Rand, w, h int, t simclock.Time) display.Command {
	dst := display.NewRect(rng.Intn(w-2), rng.Intn(h-2), 1+rng.Intn(w/2), 1+rng.Intn(h/2))
	switch rng.Intn(4) {
	case 0:
		pix := make([]display.Pixel, dst.Area())
		for i := range pix {
			pix[i] = display.Pixel(rng.Uint32())
		}
		return display.Raw(t, dst, pix)
	case 1:
		return display.Copy(t, dst, display.Point{X: rng.Intn(w), Y: rng.Intn(h)})
	case 2:
		return display.SolidFill(t, dst, display.Pixel(rng.Uint32()))
	default:
		tile := []display.Pixel{display.Pixel(rng.Uint32()), display.Pixel(rng.Uint32())}
		return display.PatternFill(t, dst, tile, 2, 1)
	}
}
