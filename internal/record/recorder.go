package record

import (
	"sync"

	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

// Options configure the recorder's quality/storage trade-offs (§2, §4.1).
type Options struct {
	// ScreenshotInterval is how often a keyframe screenshot is
	// considered (the paper suggests long intervals, e.g. every 10
	// minutes, since screenshots exist only as playback starting points).
	ScreenshotInterval simclock.Time
	// ScreenshotMinChange gates keyframes: a screenshot is only taken
	// if at least this fraction of pixels changed since the previous
	// one ("only if the screen has changed enough").
	ScreenshotMinChange float64
	// MinLogInterval limits the frequency at which updates are logged:
	// commands arriving faster than this are queued and merged so only
	// the result of the last update is recorded. Zero records every
	// command.
	MinLogInterval simclock.Time
}

// DefaultOptions mirror the paper's defaults: full fidelity, keyframes
// every 10 minutes gated on a 1% change, no frequency limiting.
func DefaultOptions() Options {
	return Options{
		ScreenshotInterval:  10 * simclock.Minute,
		ScreenshotMinChange: 0.01,
	}
}

// Stats aggregates recording activity for storage accounting (Figure 4).
type Stats struct {
	// Commands is the number of commands logged.
	Commands uint64
	// MergedCommands counts commands eliminated by frequency limiting.
	MergedCommands uint64
	// Screenshots is the number of keyframes taken.
	Screenshots uint64
	// SkippedScreenshots counts keyframes skipped by the change gate.
	SkippedScreenshots uint64
	// CommandBytes and ScreenshotBytes are the stream sizes.
	CommandBytes    int64
	ScreenshotBytes int64
}

// Recorder consumes the display server's recording stream and maintains
// the Store. It implements display.Sink.
//
// The recorder keeps a shadow framebuffer: applying every logged command
// keeps it equal to the recorded screen, which is what the keyframe
// change gate and the initial-state screenshot need.
type Recorder struct {
	clock *simclock.Clock
	opts  Options

	mu         sync.Mutex
	store      *Store
	shadow     *display.Framebuffer
	lastShot   *display.Framebuffer
	lastShotAt simclock.Time
	tookFirst  bool
	queue      *display.Queue
	lastLog    simclock.Time
	stats      Stats
}

// New creates a recorder for a w×h recorded resolution.
func New(clock *simclock.Clock, w, h int, opts Options) *Recorder {
	r := &Recorder{
		clock:  clock,
		opts:   opts,
		store:  NewStore(w, h),
		shadow: display.NewFramebuffer(w, h),
		queue:  display.NewQueue(),
	}
	return r
}

// HandleCommandWithScreen implements display.ScreenAwareSink: the server
// delivers each command *before* applying it, with its live framebuffer.
// Keyframes are then snapshots of the server's own screen — no shadow
// framebuffer and no double application of every command, matching the
// paper's driver-level recording. The pre-command screen equals the
// replay of all previously logged commands, so a keyframe taken here
// (with CmdOff pointing at the current command) is a consistent playback
// starting point.
//
// Frequency-limited recording (MinLogInterval > 0) defers logging, which
// would break that equality, so it falls back to the shadow path.
func (r *Recorder) HandleCommandWithScreen(c *display.Command, screen *display.Framebuffer) {
	if r.opts.MinLogInterval > 0 {
		r.HandleCommand(c)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.tookFirst {
		r.takeScreenshotFromLocked(c.Time, screen)
		r.tookFirst = true
	} else {
		r.maybeScreenshotFromLocked(c.Time, screen)
	}
	r.logCommandLocked(c, false)
}

func (r *Recorder) maybeScreenshotFromLocked(t simclock.Time, screen *display.Framebuffer) {
	if r.opts.ScreenshotInterval <= 0 || t-r.lastShotAt < r.opts.ScreenshotInterval {
		return
	}
	if r.lastShot != nil &&
		screen.DiffFraction(r.lastShot) < r.opts.ScreenshotMinChange {
		r.stats.SkippedScreenshots++
		obsScreensSkipped.Inc()
		r.lastShotAt = t
		return
	}
	r.takeScreenshotFromLocked(t, screen)
}

func (r *Recorder) takeScreenshotFromLocked(t simclock.Time, screen *display.Framebuffer) {
	shot := screen.Snapshot()
	r.store.AppendScreenshot(t, shot)
	r.lastShot = shot
	r.lastShotAt = t
	r.stats.Screenshots++
	obsScreens.Inc()
	r.stats.ScreenshotBytes = r.store.ScreenshotBytes()
}

// HandleCommand implements display.Sink: it receives each display command
// from the server's recording stream.
func (r *Recorder) HandleCommand(c *display.Command) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensureFirstShot(c.Time)
	if r.opts.MinLogInterval > 0 {
		before := r.queue.Merged()
		r.queue.Push(*c)
		r.stats.MergedCommands += uint64(r.queue.Merged() - before)
		if c.Time-r.lastLog < r.opts.MinLogInterval {
			return
		}
		r.flushQueueLocked(c.Time)
		return
	}
	r.logCommandLocked(c)
	r.maybeScreenshotLocked(c.Time)
}

// ensureFirstShot records the initial display state: the first timeline
// entry provides the starting point that subsequent commands modify.
func (r *Recorder) ensureFirstShot(t simclock.Time) {
	if r.tookFirst {
		return
	}
	r.takeScreenshotLocked(t)
	r.tookFirst = true
}

func (r *Recorder) flushQueueLocked(t simclock.Time) {
	cmds := r.queue.Flush()
	for i := range cmds {
		r.logCommandLocked(&cmds[i])
	}
	r.lastLog = t
	r.maybeScreenshotLocked(t)
}

func (r *Recorder) logCommandLocked(c *display.Command, applyShadow ...bool) {
	if _, err := r.store.AppendCommand(c); err != nil {
		// Malformed commands cannot come from the server (it validates
		// on submit); drop defensively.
		return
	}
	if len(applyShadow) == 0 || applyShadow[0] {
		_ = r.shadow.Apply(c)
	}
	r.stats.Commands++
	obsCommands.Inc()
	r.stats.CommandBytes = r.store.CommandBytes()
}

func (r *Recorder) maybeScreenshotLocked(t simclock.Time) {
	if r.opts.ScreenshotInterval <= 0 {
		return
	}
	if t-r.lastShotAt < r.opts.ScreenshotInterval {
		return
	}
	if r.lastShot != nil &&
		r.shadow.DiffFraction(r.lastShot) < r.opts.ScreenshotMinChange {
		r.stats.SkippedScreenshots++
		obsScreensSkipped.Inc()
		// Re-arm the interval: an unchanged screen should not trigger a
		// keyframe check on every subsequent command.
		r.lastShotAt = t
		return
	}
	r.takeScreenshotLocked(t)
}

func (r *Recorder) takeScreenshotLocked(t simclock.Time) {
	shot := r.shadow.Snapshot()
	r.store.AppendScreenshot(t, shot)
	r.lastShot = shot
	r.lastShotAt = t
	r.stats.Screenshots++
	obsScreens.Inc()
	r.stats.ScreenshotBytes = r.store.ScreenshotBytes()
}

// Flush forces any frequency-limited pending commands into the log, e.g.
// at session shutdown.
func (r *Recorder) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.queue.Len() > 0 {
		r.flushQueueLocked(r.clock.Now())
	}
}

// ForceScreenshot takes a keyframe now regardless of interval or change
// gating; the checkpoint engine uses it so every checkpoint has a nearby
// playback starting point.
func (r *Recorder) ForceScreenshot() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.takeScreenshotLocked(r.clock.Now())
	r.tookFirst = true
}

// Store returns the underlying record store. The recorder must not be
// handed further commands while the caller reads the store.
func (r *Recorder) Store() *Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store
}

// Screen returns a snapshot of the recorder's shadow framebuffer (the
// recorded screen contents as of the last logged command).
func (r *Recorder) Screen() *display.Framebuffer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shadow.Snapshot()
}

// Stats returns a copy of the recording counters.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
