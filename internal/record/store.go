// Package record implements DejaView's display recorder (§4.1): an
// append-only log of THINC display commands, periodic full screenshots
// that act as self-contained keyframes, and a timeline index file of
// fixed-size entries used to locate the screenshot and first command for
// any point in time.
//
// The analogy in the paper is an MPEG movie: screenshots are independent
// frames from which playback can start; logged commands are dependent
// frames encoding a change relative to the current display state.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dejaview/internal/atomicfile"
	"dejaview/internal/compress"
	"dejaview/internal/display"
	"dejaview/internal/failpoint"
	"dejaview/internal/obs"
	"dejaview/internal/simclock"
)

// Registry instruments for the record store and recorder.
var (
	obsSaves          = obs.Default.Counter("record.save")
	obsOpens          = obs.Default.Counter("record.open")
	obsSaveMS         = obs.Default.Histogram("record.save_ms", obs.LatencyBuckets...)
	obsOpenMS         = obs.Default.Histogram("record.open_ms", obs.LatencyBuckets...)
	obsCommands       = obs.Default.Counter("record.commands")
	obsScreens        = obs.Default.Counter("record.screenshots")
	obsScreensSkipped = obs.Default.Counter("record.screenshots_skipped")
	obsDurHits        = obs.Default.Counter("record.duration_cache_hits")
	obsDurMisses      = obs.Default.Counter("record.duration_cache_misses")
)

// TimelineEntry is one fixed-size record in the timeline index file: the
// time at which a screenshot was taken, the location of its data in the
// screenshot file, and the location of the first display command that
// follows it in the command file (§4.1).
type TimelineEntry struct {
	Time      simclock.Time
	ScreenOff int64 // offset of the screenshot in the screenshot log
	ScreenLen int64 // encoded length of the screenshot
	CmdOff    int64 // offset of the first command at or after Time
}

// timelineEntrySize is the fixed on-disk entry size (4 × int64).
const timelineEntrySize = 32

// Store holds one display record: the three append-only streams the paper
// keeps as files. The in-memory representation is the system of record;
// Save/Open move it to and from a directory for the CLI tools.
//
// Store is safe for concurrent use: playback, browsing, and search read
// the record while the recorder keeps appending to it.
type Store struct {
	// Width, Height are the recorded resolution (after any record-side
	// rescaling).
	Width, Height int

	mu          sync.RWMutex
	commands    []byte
	screenshots []byte
	timeline    []TimelineEntry

	// lazy holds the demand-load state of a store created by OpenLazy;
	// nil once the screenshot log is fully materialized (see lazy.go).
	lazy *lazyScreens

	// comp configures Save's block compression (zero value = defaults).
	comp compress.Options

	// durCache memoizes Duration; appends keep it current incrementally,
	// Open leaves it invalid for lazy recomputation.
	durCache simclock.Time
	durValid bool
}

// NewStore creates an empty record for a w×h recorded resolution.
func NewStore(w, h int) *Store {
	return &Store{Width: w, Height: h, durValid: true}
}

// SetCompression overrides the block-compression options Save uses
// (codec, flate level, block size, worker count). The zero Options
// selects flate at the default level with GOMAXPROCS workers.
func (s *Store) SetCompression(o compress.Options) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.comp = o
}

// AppendCommand encodes c onto the command log and returns its starting
// offset.
func (s *Store) AppendCommand(c *display.Command) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	off := int64(len(s.commands))
	var err error
	s.commands, err = display.EncodeCommand(s.commands, c)
	if err != nil {
		return 0, err
	}
	if s.durValid && c.Time > s.durCache {
		s.durCache = c.Time
	}
	return off, nil
}

// AppendScreenshot encodes fb onto the screenshot log and records a
// timeline entry binding it to time t and to the current end of the
// command log (the first command that follows the screenshot).
func (s *Store) AppendScreenshot(t simclock.Time, fb *display.Framebuffer) TimelineEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Appends need the whole log in memory (offsets are absolute). If a
	// lazily opened store's backing bytes fail here, the short log makes
	// the mismatch surface at the next decode or validate.
	_ = s.ensureAllLocked()
	off := int64(len(s.screenshots))
	s.screenshots = display.EncodeScreenshot(s.screenshots, fb)
	e := TimelineEntry{
		Time:      t,
		ScreenOff: off,
		ScreenLen: int64(len(s.screenshots)) - off,
		CmdOff:    int64(len(s.commands)),
	}
	s.timeline = append(s.timeline, e)
	if s.durValid && t > s.durCache {
		s.durCache = t
	}
	return e
}

// Timeline returns a snapshot of the index entries in chronological
// order.
func (s *Store) Timeline() []TimelineEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]TimelineEntry(nil), s.timeline...)
}

// CommandBytes reports the size of the command log.
func (s *Store) CommandBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.commands))
}

// ScreenshotBytes reports the size of the screenshot log.
func (s *Store) ScreenshotBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.screensLenLocked()
}

// ScreenshotAt decodes the screenshot referenced by a timeline entry.
// On a lazily opened store this faults in (and block-decodes) only the
// log prefix up to the entry's end.
func (s *Store) ScreenshotAt(e TimelineEntry) (*display.Framebuffer, error) {
	s.mu.RLock()
	if s.lazy == nil {
		defer s.mu.RUnlock()
		if e.ScreenOff < 0 || e.ScreenOff+e.ScreenLen > int64(len(s.screenshots)) {
			return nil, fmt.Errorf("record: screenshot entry out of range: %+v", e)
		}
		fb, _, err := display.DecodeScreenshot(s.screenshots[e.ScreenOff : e.ScreenOff+e.ScreenLen])
		return fb, err
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.screenshotSliceLocked(e)
	if err != nil {
		return nil, err
	}
	fb, _, err := display.DecodeScreenshot(b)
	return fb, err
}

// DecodeCommandAt decodes one command at offset off in the command log,
// returning the command and the offset of the next command.
func (s *Store) DecodeCommandAt(off int64) (display.Command, int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.decodeCommandAtLocked(off)
}

func (s *Store) decodeCommandAtLocked(off int64) (display.Command, int64, error) {
	if off < 0 || off >= int64(len(s.commands)) {
		return display.Command{}, 0, fmt.Errorf("record: command offset %d out of range [0,%d)", off, len(s.commands))
	}
	c, n, err := display.DecodeCommand(s.commands[off:])
	if err != nil {
		return display.Command{}, 0, err
	}
	return c, off + int64(n), nil
}

// EndOfCommands reports the offset one past the last command.
func (s *Store) EndOfCommands() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.commands))
}

// Duration reports the time of the last logged command or screenshot.
// The value is cached: appends maintain it incrementally, and a store
// loaded by Open computes it once on first use instead of re-decoding
// the command-log tail under the lock on every call.
func (s *Store) Duration() simclock.Time {
	s.mu.RLock()
	if s.durValid {
		d := s.durCache
		s.mu.RUnlock()
		obsDurHits.Inc()
		return d
	}
	s.mu.RUnlock()
	obsDurMisses.Inc()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.durValid {
		return s.durCache
	}
	var last simclock.Time
	if n := len(s.timeline); n > 0 {
		last = s.timeline[n-1].Time
	}
	// Scan the tail of the command log cheaply: walk from the last
	// timeline entry's command offset.
	off := int64(0)
	if n := len(s.timeline); n > 0 {
		off = s.timeline[n-1].CmdOff
	}
	for off < int64(len(s.commands)) {
		c, next, err := s.decodeCommandAtLocked(off)
		if err != nil {
			break
		}
		if c.Time > last {
			last = c.Time
		}
		off = next
	}
	s.durCache = last
	s.durValid = true
	return last
}

// Record file names inside a saved directory.
const (
	commandsFile    = "commands.dv"
	screenshotsFile = "screens.dv"
	timelineFile    = "timeline.dv"
	metaFile        = "meta.dv"
)

// ErrCorruptRecord reports a structurally invalid saved record.
var ErrCorruptRecord = errors.New("record: corrupt record")

// Save writes the record to a directory (creating it if needed) as the
// paper's three files plus a small metadata header.
//
// Since format v2 each stream file is a compressed block frame (see
// internal/compress): commands and timeline are packed directly, and
// the screenshot log is first run through the keyframe delta prefilter
// (consecutive keyframes are nearly identical, so XORing each against
// its predecessor turns them into mostly-zero blocks that DEFLATE
// collapses). Every stream is staged to a temporary name in the target
// directory and the whole set is renamed into place only after every
// stream has been written, so a crash or I/O failure mid-save never
// leaves a partial file masquerading as a valid record — an existing
// record at dir survives a failed re-save intact.
func (s *Store) Save(dir string) error {
	t0 := obs.StartTimer()
	sp := obs.DefaultTracer.Start("record.save")
	defer sp.Finish()
	defer t0.Done(obsSaveMS)
	// A lazily opened store must fault in the whole screenshot log
	// before it can be re-filtered and re-packed.
	if err := s.Materialize(); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("record: save: %w", err)
	}
	meta := make([]byte, 16)
	binary.LittleEndian.PutUint32(meta[0:], uint32(s.Width))
	binary.LittleEndian.PutUint32(meta[4:], uint32(s.Height))
	binary.LittleEndian.PutUint64(meta[8:], uint64(len(s.timeline)))

	// Every save appends the seekable block table so the archive can be
	// reopened lazily; sequential readers never see it.
	comp := s.comp
	comp.BlockTable = true
	pack := func(stream string, data []byte) ([]byte, error) {
		child := sp.Child("record.save." + stream)
		defer child.Finish()
		return compress.Pack(data, comp)
	}
	cmds, err := pack("commands", s.commands)
	if err != nil {
		return fmt.Errorf("record: save commands: %w", err)
	}
	shots, err := pack("screenshots", filterScreens(s.screenshots, s.timeline))
	if err != nil {
		return fmt.Errorf("record: save screenshots: %w", err)
	}
	tl, err := pack("timeline", encodeTimeline(s.timeline))
	if err != nil {
		return fmt.Errorf("record: save timeline: %w", err)
	}
	var staged []*atomicfile.File
	for _, f := range []struct {
		name string
		data []byte
	}{
		{commandsFile, cmds},
		{screenshotsFile, shots},
		{timelineFile, tl},
		// Metadata last: its presence marks the record complete.
		{metaFile, meta},
	} {
		af, err := stageFile(filepath.Join(dir, f.name), f.name, f.data)
		if err != nil {
			atomicfile.AbortAll(staged...)
			return fmt.Errorf("record: save %s: %w", f.name, err)
		}
		staged = append(staged, af)
	}
	if err := atomicfile.CommitAll(staged...); err != nil {
		return fmt.Errorf("record: save: %w", err)
	}
	obsSaves.Inc()
	return nil
}

// stageFile writes one record stream to a staged temp file, with a
// per-stream failpoint (`record/save:<name>`) for fault-injection tests.
func stageFile(path, name string, data []byte) (*atomicfile.File, error) {
	if err := failpoint.Inject("record/save:" + name); err != nil {
		return nil, err
	}
	f, err := atomicfile.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(data); err != nil {
		f.Abort()
		return nil, err
	}
	return f, nil
}

func encodeTimeline(timeline []TimelineEntry) []byte {
	tl := make([]byte, 0, len(timeline)*timelineEntrySize)
	var buf [timelineEntrySize]byte
	for _, e := range timeline {
		binary.LittleEndian.PutUint64(buf[0:], uint64(e.Time))
		binary.LittleEndian.PutUint64(buf[8:], uint64(e.ScreenOff))
		binary.LittleEndian.PutUint64(buf[16:], uint64(e.ScreenLen))
		binary.LittleEndian.PutUint64(buf[24:], uint64(e.CmdOff))
		tl = append(tl, buf[:]...)
	}
	return tl
}

// readStream loads one record file, transparently unpacking the v2
// compressed container and passing v1 raw streams through unchanged.
func readStream(dir, name string) ([]byte, error) {
	if err := failpoint.Inject("record/open:" + name); err != nil {
		return nil, fmt.Errorf("record: open %s: %w", name, err)
	}
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	if !compress.IsFrame(b) {
		return b, nil // v1 raw stream
	}
	out, err := compress.Unpack(b)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptRecord, name, err)
	}
	return out, nil
}

// openBase loads the metadata header, command log, and timeline — the
// parts both the eager and lazy open paths need up front.
func openBase(dir string) (*Store, error) {
	if err := failpoint.Inject("record/open:" + metaFile); err != nil {
		return nil, fmt.Errorf("record: open: %w", err)
	}
	meta, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("record: open: %w", err)
	}
	if len(meta) < 16 {
		return nil, fmt.Errorf("%w: short metadata", ErrCorruptRecord)
	}
	s := &Store{
		Width:  int(binary.LittleEndian.Uint32(meta[0:])),
		Height: int(binary.LittleEndian.Uint32(meta[4:])),
	}
	n := int(binary.LittleEndian.Uint64(meta[8:]))
	if s.Width <= 0 || s.Height <= 0 || n < 0 {
		return nil, fmt.Errorf("%w: bad metadata %dx%d n=%d", ErrCorruptRecord, s.Width, s.Height, n)
	}
	if s.commands, err = readStream(dir, commandsFile); err != nil {
		return nil, err
	}
	tl, err := readStream(dir, timelineFile)
	if err != nil {
		return nil, err
	}
	if len(tl) != n*timelineEntrySize {
		return nil, fmt.Errorf("%w: timeline is %d bytes, want %d", ErrCorruptRecord, len(tl), n*timelineEntrySize)
	}
	s.timeline = make([]TimelineEntry, n)
	for i := range s.timeline {
		b := tl[i*timelineEntrySize:]
		s.timeline[i] = TimelineEntry{
			Time:      simclock.Time(binary.LittleEndian.Uint64(b[0:])),
			ScreenOff: int64(binary.LittleEndian.Uint64(b[8:])),
			ScreenLen: int64(binary.LittleEndian.Uint64(b[16:])),
			CmdOff:    int64(binary.LittleEndian.Uint64(b[24:])),
		}
	}
	return s, nil
}

// Open loads a record previously written by Save, accepting both the v2
// compressed container and v1 raw streams from older saves.
func Open(dir string) (*Store, error) {
	t0 := obs.StartTimer()
	sp := obs.DefaultTracer.Start("record.open")
	defer sp.Finish()
	defer t0.Done(obsOpenMS)
	s, err := openBase(dir)
	if err != nil {
		return nil, err
	}
	// Screenshots last: undoing the keyframe prefilter needs the decoded
	// timeline to locate keyframe boundaries.
	if err := failpoint.Inject("record/open:" + screenshotsFile); err != nil {
		return nil, fmt.Errorf("record: open %s: %w", screenshotsFile, err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, screenshotsFile))
	if err != nil {
		return nil, err
	}
	if compress.IsFrame(raw) {
		payload, err := compress.Unpack(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrCorruptRecord, screenshotsFile, err)
		}
		s.screenshots, err = unfilterScreens(payload, s.timeline)
		if err != nil {
			return nil, err
		}
	} else {
		s.screenshots = raw // v1 raw stream
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	obsOpens.Inc()
	return s, nil
}

func (s *Store) validate() error {
	var prev simclock.Time
	for i, e := range s.timeline {
		if e.Time < prev {
			return fmt.Errorf("%w: timeline entry %d out of order", ErrCorruptRecord, i)
		}
		prev = e.Time
		if e.ScreenOff < 0 || e.ScreenLen <= 0 || e.ScreenOff+e.ScreenLen > s.screensLenLocked() {
			return fmt.Errorf("%w: timeline entry %d references bad screenshot range", ErrCorruptRecord, i)
		}
		if e.CmdOff < 0 || e.CmdOff > int64(len(s.commands)) {
			return fmt.Errorf("%w: timeline entry %d references bad command offset", ErrCorruptRecord, i)
		}
	}
	// The first keyframe's dimensions must agree with the metadata
	// header; a mismatch means the record (or its header) is damaged.
	if len(s.timeline) > 0 {
		e := s.timeline[0]
		// On a lazy store this decodes only the first keyframe's blocks.
		b, err := s.screenshotSliceLocked(e)
		if err != nil {
			return err
		}
		fb, _, err := display.DecodeScreenshot(b)
		if err != nil {
			return fmt.Errorf("%w: first keyframe: %v", ErrCorruptRecord, err)
		}
		w, h := fb.Size()
		if w != s.Width || h != s.Height {
			return fmt.Errorf("%w: keyframe %dx%d disagrees with header %dx%d",
				ErrCorruptRecord, w, h, s.Width, s.Height)
		}
	}
	return nil
}
