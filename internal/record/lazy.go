package record

// Lazy streaming open: the screenshot log dominates a saved record, so
// OpenLazy defers its decompression. Commands and timeline load eagerly
// (search and seeking need them whole), while screenshot bytes decode
// on demand through the frame's seekable block table — a prefix at a
// time, because the keyframe XOR prefilter chains each keyframe to its
// predecessor, so reconstructing keyframe k needs keyframes 0..k-1.
// Reviving or rendering near the start of a long record therefore
// decodes strictly fewer blocks than an eager open.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dejaview/internal/compress"
	"dejaview/internal/failpoint"
	"dejaview/internal/obs"
	"dejaview/internal/simclock"
)

// lazyScreens is the demand-load state for the screenshot log of a
// store created by OpenLazy. body grows as a prefix of the unfiltered
// log; once complete, the store graduates to the eager representation.
type lazyScreens struct {
	ff         *compress.FrameFile
	total      int64  // unfiltered log length (payload minus filter byte)
	body       []byte // materialized, unfiltered prefix
	filter     byte
	haveFilter bool
	next       int // first timeline entry not yet unfiltered
}

// OpenLazy is Open with demand-loaded screenshots. hook, when non-nil,
// is invoked with the number of compressed blocks decoded by each
// demand read (the core uses it to count lazy block loads). bc, when
// non-nil, replaces the screenshot frame's private decoded-block cache
// with a shared one, so every stream of an archive draws on a single
// byte budget. Records saved without a block table (or in the v1 raw
// format) fall back to the eager path, so every archive remains
// openable.
func OpenLazy(dir string, hook func(blocks int), bc *compress.BlockCache) (*Store, error) {
	t0 := obs.StartTimer()
	sp := obs.DefaultTracer.Start("record.open")
	defer sp.Finish()
	defer t0.Done(obsOpenMS)
	s, err := openBase(dir)
	if err != nil {
		return nil, err
	}
	if err := failpoint.Inject("record/open:" + screenshotsFile); err != nil {
		return nil, fmt.Errorf("record: open %s: %w", screenshotsFile, err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, screenshotsFile))
	if err != nil {
		return nil, err
	}
	switch {
	case !compress.IsFrame(raw):
		s.screenshots = raw // v1 raw stream
	default:
		ff, err := compress.OpenFrameBytes(raw)
		switch {
		case err == nil:
			if hook != nil {
				ff.SetLoadHook(hook)
			}
			if bc != nil {
				ff.SetBlockCache(bc)
			}
			total := ff.RawSize() - 1 // minus the filter-id byte
			if total < 0 {
				total = 0
			}
			s.lazy = &lazyScreens{ff: ff, total: total}
		case errors.Is(err, compress.ErrNoBlockTable):
			// Older table-less archive: decode everything now.
			payload, err := compress.Unpack(raw)
			if err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrCorruptRecord, screenshotsFile, err)
			}
			if s.screenshots, err = unfilterScreens(payload, s.timeline); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: %s: %v", ErrCorruptRecord, screenshotsFile, err)
		}
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	obsOpens.Inc()
	return s, nil
}

// screensLenLocked reports the logical screenshot-log length without
// forcing materialization.
func (s *Store) screensLenLocked() int64 {
	if s.lazy != nil {
		return s.lazy.total
	}
	return int64(len(s.screenshots))
}

// screenshotSliceLocked returns the unfiltered bytes of one timeline
// entry, faulting in the log prefix up to its end if needed.
func (s *Store) screenshotSliceLocked(e TimelineEntry) ([]byte, error) {
	if e.ScreenOff < 0 || e.ScreenLen < 0 || e.ScreenOff+e.ScreenLen > s.screensLenLocked() {
		return nil, fmt.Errorf("record: screenshot entry out of range: %+v", e)
	}
	if err := s.ensureScreensLocked(e.ScreenOff + e.ScreenLen); err != nil {
		return nil, err
	}
	if s.lazy != nil {
		return s.lazy.body[e.ScreenOff : e.ScreenOff+e.ScreenLen], nil
	}
	return s.screenshots[e.ScreenOff : e.ScreenOff+e.ScreenLen], nil
}

// ensureScreensLocked materializes the unfiltered screenshot log up to
// byte n, decoding only the compressed blocks that cover the missing
// prefix and undoing the XOR prefilter for every entry that became
// fully available. A no-op on eager stores.
func (s *Store) ensureScreensLocked(n int64) error {
	lz := s.lazy
	if lz == nil {
		return nil
	}
	if lz.total == 0 {
		s.screenshots = nil
		s.lazy = nil
		return nil
	}
	if !lz.haveFilter {
		var fb [1]byte
		if _, err := lz.ff.ReadAt(fb[:], 0); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrCorruptRecord, screenshotsFile, err)
		}
		if fb[0] != filterNone && fb[0] != filterXorPrev {
			return fmt.Errorf("%w: unknown screenshot filter %d", ErrCorruptRecord, fb[0])
		}
		lz.filter = fb[0]
		lz.haveFilter = true
		lz.body = make([]byte, 0, lz.total)
	}
	if n > lz.total {
		n = lz.total
	}
	if got := int64(len(lz.body)); got < n {
		lz.body = lz.body[:n]
		if _, err := lz.ff.ReadAt(lz.body[got:n], got+1); err != nil {
			lz.body = lz.body[:got]
			return fmt.Errorf("%w: %s: %v", ErrCorruptRecord, screenshotsFile, err)
		}
		if lz.filter == filterXorPrev {
			// Forward order keeps the invariant that entry next-1 is
			// already reconstructed when entry next XORs against it.
			for lz.next < len(s.timeline) {
				e := s.timeline[lz.next]
				if e.ScreenOff+e.ScreenLen > n {
					break
				}
				if lz.next > 0 && filterable(s.timeline, lz.next, int(lz.total)) {
					cur, prev := s.timeline[lz.next], s.timeline[lz.next-1]
					dst := lz.body[cur.ScreenOff+screenshotHeaderSize : cur.ScreenOff+cur.ScreenLen]
					src := lz.body[prev.ScreenOff+screenshotHeaderSize : prev.ScreenOff+prev.ScreenLen]
					for j := range dst {
						dst[j] ^= src[j]
					}
				}
				lz.next++
			}
		}
	}
	if int64(len(lz.body)) == lz.total {
		// Fully materialized: graduate to the eager representation.
		s.screenshots = lz.body
		s.lazy = nil
	}
	return nil
}

func (s *Store) ensureAllLocked() error {
	if s.lazy == nil {
		return nil
	}
	return s.ensureScreensLocked(s.lazy.total)
}

// Materialize forces a lazily opened store to decode its entire
// screenshot log; afterwards the store behaves exactly like one loaded
// by Open. A no-op on eager stores.
func (s *Store) Materialize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ensureAllLocked()
}

// TruncateBefore drops record history strictly older than the newest
// timeline entry at or before t: that entry becomes the record's first
// keyframe and all offsets are rebased to it. Playback of any time at
// or after the cut behaves exactly as before; the tier compactor uses
// this to discard display history older than every retained checkpoint.
// It returns the number of timeline entries dropped.
func (s *Store) TruncateBefore(t simclock.Time) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureAllLocked(); err != nil {
		return 0, err
	}
	idx := sort.Search(len(s.timeline), func(i int) bool { return s.timeline[i].Time > t }) - 1
	if idx <= 0 {
		return 0, nil
	}
	base := s.timeline[idx]
	s.commands = append([]byte(nil), s.commands[base.CmdOff:]...)
	s.screenshots = append([]byte(nil), s.screenshots[base.ScreenOff:]...)
	tl := make([]TimelineEntry, len(s.timeline)-idx)
	for i, e := range s.timeline[idx:] {
		e.ScreenOff -= base.ScreenOff
		e.CmdOff -= base.CmdOff
		tl[i] = e
	}
	s.timeline = tl
	return idx, nil
}
