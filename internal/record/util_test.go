package record

import "os"

// truncateFile shortens a file to n bytes.
func truncateFile(path string, n int64) error {
	return os.Truncate(path, n)
}
