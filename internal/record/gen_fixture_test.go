package record

import (
	"os"
	"testing"

	"dejaview/internal/compress"
	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

// TestGenV1Fixture regenerates the v1 (raw, seed-format) record fixture.
// Run manually with DV_GEN_FIXTURE=1 while the raw encoder is current.
func TestGenV1Fixture(t *testing.T) {
	if os.Getenv("DV_GEN_FIXTURE") == "" {
		t.Skip("set DV_GEN_FIXTURE=1 to regenerate")
	}
	s := fixtureStore()
	if err := s.Save("testdata/v1record"); err != nil {
		t.Fatal(err)
	}
}

// TestGenV2Fixture regenerates the v2 golden record fixture. The fixture
// is saved with CodecRaw: the v2 container framing (magic, version,
// block headers, CRCs) is byte-stable by design, while a compressed
// codec's bitstream is an implementation detail that may legally drift
// between Go releases. Run manually with DV_GEN_FIXTURE=1.
func TestGenV2Fixture(t *testing.T) {
	if os.Getenv("DV_GEN_FIXTURE") == "" {
		t.Skip("set DV_GEN_FIXTURE=1 to regenerate")
	}
	s := fixtureStore()
	s.SetCompression(compress.Options{}.WithCodec(compress.CodecRaw))
	if err := s.Save("testdata/v2record"); err != nil {
		t.Fatal(err)
	}
}

// TestGenLZSFixture regenerates the adaptive-codec golden fixture. It is
// saved with CodecAuto, and the fixture content is shaped so the
// selector never picks flate: flate's bitstream is stdlib-owned and may
// legally drift between Go releases, while raw blocks and our own LZS
// token stream are deterministic, so the fixture can be byte-locked.
// TestLZSGoldenStats enforces that shaping. Run manually with
// DV_GEN_FIXTURE=1.
func TestGenLZSFixture(t *testing.T) {
	if os.Getenv("DV_GEN_FIXTURE") == "" {
		t.Skip("set DV_GEN_FIXTURE=1 to regenerate")
	}
	s := lzsFixtureStore()
	s.SetCompression(compress.Options{}.WithCodec(compress.CodecAuto))
	if err := s.Save("testdata/lzsrecord"); err != nil {
		t.Fatal(err)
	}
}

// TestGenTableFixture regenerates the block-table golden fixture: the
// same scripted content as the v2 fixture, saved by a current Save
// (which appends the seekable block table past the frame terminator).
// CodecRaw keeps the bytes deterministic. Run manually with
// DV_GEN_FIXTURE=1.
func TestGenTableFixture(t *testing.T) {
	if os.Getenv("DV_GEN_FIXTURE") == "" {
		t.Skip("set DV_GEN_FIXTURE=1 to regenerate")
	}
	s := fixtureStore()
	s.SetCompression(compress.Options{}.WithCodec(compress.CodecRaw))
	if err := s.Save("testdata/tablerecord"); err != nil {
		t.Fatal(err)
	}
}

// lzsFixtureStore scripts a session with heavy command repetition — the
// same small palette of fills cycling over the screen — so every stream
// (commands, XOR-delta'd screenshots, timeline) samples as repeat-dense
// and the adaptive selector routes it to LZS, never flate.
func lzsFixtureStore() *Store {
	s := NewStore(64, 48)
	fb := display.NewFramebuffer(64, 48)
	s.AppendScreenshot(0, fb)
	for i := 0; i < 400; i++ {
		c := display.SolidFill(simclock.Time(i+1)*simclock.Second,
			display.Rect{X: i % 8, Y: i % 6, W: 8, H: 8},
			display.RGB(uint8(i%4*60), 10, 200))
		if _, err := s.AppendCommand(&c); err != nil {
			panic(err)
		}
		_ = fb.Apply(&c)
		if i%100 == 99 {
			s.AppendScreenshot(simclock.Time(i+1)*simclock.Second, fb)
		}
	}
	return s
}

func fixtureStore() *Store {
	s := NewStore(64, 48)
	fb := display.NewFramebuffer(64, 48)
	s.AppendScreenshot(0, fb)
	for i := 0; i < 20; i++ {
		c := display.SolidFill(simclock.Time(i+1)*simclock.Second,
			display.Rect{X: i, Y: i, W: 8, H: 8}, display.RGB(uint8(i*9), 10, 200))
		if _, err := s.AppendCommand(&c); err != nil {
			panic(err)
		}
		_ = fb.Apply(&c)
	}
	s.AppendScreenshot(21*simclock.Second, fb)
	c := display.Copy(22*simclock.Second, display.Rect{X: 0, Y: 0, W: 16, H: 16}, display.Point{X: 4, Y: 4})
	if _, err := s.AppendCommand(&c); err != nil {
		panic(err)
	}
	return s
}
