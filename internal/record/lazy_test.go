package record

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dejaview/internal/compress"
	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

// The tablerecord golden fixture locks the table-bearing on-disk format
// written by current saves: the v2 frame (identical to the v2record
// fixture) followed by the seekable block table. Byte-locking the whole
// file pins the table serialization itself.

// TestTableGoldenBytes locks the write side including the table.
func TestTableGoldenBytes(t *testing.T) {
	s := fixtureStore()
	s.SetCompression(compress.Options{}.WithCodec(compress.CodecRaw))
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	for _, name := range recordFiles {
		want, err := os.ReadFile(filepath.Join("testdata/tablerecord", name))
		if err != nil {
			t.Fatalf("golden %s: %v", name, err)
		}
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("saved %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: saved bytes differ from golden fixture (len %d vs %d)",
				name, len(got), len(want))
		}
	}
}

// TestTableGoldenOpens locks the read side, eagerly and lazily.
func TestTableGoldenOpens(t *testing.T) {
	eager, err := Open("testdata/tablerecord")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	assertStoresEqual(t, eager, fixtureStore())

	lazy, err := OpenLazy("testdata/tablerecord", nil, nil)
	if err != nil {
		t.Fatalf("OpenLazy: %v", err)
	}
	if err := lazy.Materialize(); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	assertStoresEqual(t, lazy, fixtureStore())
}

// TestTableGoldenHasTable guards the fixture's reason to exist.
func TestTableGoldenHasTable(t *testing.T) {
	for _, name := range []string{commandsFile, screenshotsFile, timelineFile} {
		b, err := os.ReadFile(filepath.Join("testdata/tablerecord", name))
		if err != nil {
			t.Fatalf("golden %s: %v", name, err)
		}
		if !compress.HasBlockTable(b) {
			t.Errorf("%s: fixture stream carries no block table", name)
		}
	}
}

// TestOpenLazyBackwardCompat: lazy open must still accept the committed
// table-less fixtures (v2 and adaptive) and the raw v1 fixture, falling
// back to eager decode.
func TestOpenLazyBackwardCompat(t *testing.T) {
	for _, tc := range []struct {
		dir     string
		scripts func() *Store
	}{
		{"testdata/v1record", fixtureStore},
		{"testdata/v2record", fixtureStore},
		{"testdata/lzsrecord", lzsFixtureStore},
	} {
		s, err := OpenLazy(tc.dir, nil, nil)
		if err != nil {
			t.Errorf("OpenLazy(%s): %v", tc.dir, err)
			continue
		}
		assertStoresEqual(t, s, tc.scripts())
	}
}

// TestOpenLazyPartialDecode proves laziness: rendering the first
// keyframe of a freshly opened record decodes strictly fewer screenshot
// blocks than the stream holds, and later access converges to the same
// logical record as an eager open.
func TestOpenLazyPartialDecode(t *testing.T) {
	src := lzsFixtureStore()
	// Small blocks so the screenshot log spans many of them.
	src.SetCompression(compress.Options{BlockSize: 2048})
	dir := t.TempDir()
	if err := src.Save(dir); err != nil {
		t.Fatal(err)
	}
	var loads int
	s, err := OpenLazy(dir, func(n int) { loads += n }, nil)
	if err != nil {
		t.Fatal(err)
	}
	afterOpen := loads // validate() decodes the first keyframe only
	shots, err := os.ReadFile(filepath.Join(dir, "screens.dv"))
	if err != nil {
		t.Fatal(err)
	}
	ff, err := compress.OpenFrameBytes(shots)
	if err != nil {
		t.Fatal(err)
	}
	if total := ff.NumBlocks(); afterOpen >= total {
		t.Fatalf("lazy open decoded %d of %d screenshot blocks", afterOpen, total)
	}
	tl := s.Timeline()
	if _, err := s.ScreenshotAt(tl[0]); err != nil {
		t.Fatal(err)
	}
	if loads != afterOpen {
		t.Errorf("first keyframe re-decode: %d extra blocks (cache miss)", loads-afterOpen)
	}
	// Later keyframes fault in more of the prefix.
	if _, err := s.ScreenshotAt(tl[len(tl)-1]); err != nil {
		t.Fatal(err)
	}
	if loads <= afterOpen {
		t.Error("last keyframe decoded no further blocks")
	}
	if err := s.Materialize(); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, s, lzsFixtureStore())
}

// fbBytes fingerprints a framebuffer via its canonical encoding.
func fbBytes(fb *display.Framebuffer) []byte {
	return display.EncodeScreenshot(nil, fb)
}

// TestOpenLazyMatchesEager: full materialization equals the eager open
// bit for bit, and a re-save round-trips.
func TestOpenLazyMatchesEager(t *testing.T) {
	src := lzsFixtureStore()
	dir := t.TempDir()
	if err := src.Save(dir); err != nil {
		t.Fatal(err)
	}
	lazy, err := OpenLazy(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := lazy.Save(dir2); err != nil { // forces materialization
		t.Fatal(err)
	}
	again, err := Open(dir2)
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, again, lzsFixtureStore())
}

func TestTruncateBefore(t *testing.T) {
	src := lzsFixtureStore() // keyframes at 0s, 100s, 200s, 300s, 400s
	tl := src.Timeline()
	if len(tl) < 3 {
		t.Fatalf("fixture has %d keyframes", len(tl))
	}
	cut := tl[2].Time
	wantShots := make([][]byte, 0, len(tl)-2)
	for _, e := range tl[2:] {
		fb, err := src.ScreenshotAt(e)
		if err != nil {
			t.Fatal(err)
		}
		wantShots = append(wantShots, fbBytes(fb))
	}
	wantDur := src.Duration()

	dropped, err := src.TruncateBefore(cut + simclock.Second/2)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("dropped %d entries, want 2", dropped)
	}
	got := src.Timeline()
	if len(got) != len(tl)-2 {
		t.Fatalf("%d entries left, want %d", len(got), len(tl)-2)
	}
	if got[0].Time != cut {
		t.Errorf("new base keyframe at %v, want %v", got[0].Time, cut)
	}
	for i, e := range got {
		fb, err := src.ScreenshotAt(e)
		if err != nil {
			t.Fatalf("entry %d after truncate: %v", i, err)
		}
		if !bytes.Equal(fbBytes(fb), wantShots[i]) {
			t.Errorf("keyframe %d changed after truncation", i)
		}
		// The entry's first command still decodes.
		if e.CmdOff < src.EndOfCommands() {
			if _, _, err := src.DecodeCommandAt(e.CmdOff); err != nil {
				t.Errorf("entry %d command: %v", i, err)
			}
		}
	}
	if src.Duration() != wantDur {
		t.Errorf("duration %v after truncation, want %v", src.Duration(), wantDur)
	}
	// A truncated record survives a save/open cycle.
	dir := t.TempDir()
	if err := src.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatalf("reopen truncated record: %v", err)
	}
	// Truncating before the first keyframe is a no-op.
	n, err := src.TruncateBefore(0)
	if err != nil || n != 0 {
		t.Fatalf("TruncateBefore(0) = (%d, %v)", n, err)
	}
}
