package record

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dejaview/internal/compress"
)

// The lzsrecord golden fixture locks the adaptive-codec container:
// testdata/lzsrecord was written by TestGenLZSFixture with CodecAuto on
// repeat-dense content, so every coded block is LZS or stored raw — both
// byte-deterministic formats we own — and the fixture can be locked byte
// for byte like the CodecRaw one (flate blocks could not be: their
// bitstream belongs to the stdlib and may drift between Go releases).

// TestLZSGoldenOpens locks the read side: the committed adaptive fixture
// must open and decode to the scripted logical record.
func TestLZSGoldenOpens(t *testing.T) {
	got, err := Open("testdata/lzsrecord")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	assertStoresEqual(t, got, lzsFixtureStore())
}

// TestLZSGoldenBytes locks the write side: re-saving the scripted store
// with CodecAuto must reproduce the committed files byte for byte. A
// mismatch means the LZS token format, the adaptive selector, or the
// per-block codec-bit encoding changed — all format breaks, not fixture
// drift.
func TestLZSGoldenBytes(t *testing.T) {
	s := lzsFixtureStore()
	s.SetCompression(compress.Options{}.WithCodec(compress.CodecAuto))
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	for _, name := range recordFiles {
		want, err := os.ReadFile(filepath.Join("testdata/lzsrecord", name))
		if err != nil {
			t.Fatalf("golden %s: %v", name, err)
		}
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("saved %s: %v", name, err)
		}
		// The fixture predates the block table; compare the sequential
		// frame only (the table sits past the terminator).
		if !bytes.Equal(compress.TrimTable(got), want) {
			t.Errorf("%s: saved bytes differ from golden fixture (len %d vs %d)",
				name, len(got), len(want))
		}
	}
}

// TestLZSGoldenStats guards the fixture's reason to exist: every frame
// is an adaptive frame, no block is flate-coded (the fixture would stop
// being byte-lockable), and at least one block actually took the LZS
// path.
func TestLZSGoldenStats(t *testing.T) {
	lzsBlocks := 0
	for _, name := range []string{commandsFile, screenshotsFile, timelineFile} {
		b, err := os.ReadFile(filepath.Join("testdata/lzsrecord", name))
		if err != nil {
			t.Fatalf("golden %s: %v", name, err)
		}
		st, err := compress.Stats(b)
		if err != nil {
			t.Fatalf("%s: Stats: %v", name, err)
		}
		if st.Codec != compress.CodecAuto {
			t.Errorf("%s: frame codec %d, want CodecAuto", name, st.Codec)
		}
		if n := st.PerCodec["flate"]; n != 0 {
			t.Errorf("%s: %d flate blocks in the byte-locked fixture", name, n)
		}
		lzsBlocks += st.PerCodec["lzs"]
	}
	if lzsBlocks == 0 {
		t.Error("fixture has no lzs-coded blocks; it does not exercise the codec")
	}
}
