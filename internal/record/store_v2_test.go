package record

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dejaview/internal/compress"
	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

// sessionStore synthesizes a desktop-like session: keyframes that share
// most content (windows on a wallpaper) plus a steady command stream —
// the workload shape the v2 container is built for.
func sessionStore(t *testing.T) *Store {
	t.Helper()
	const w, h = 320, 240
	s := NewStore(w, h)
	fb := display.NewFramebuffer(w, h)
	wallpaper := display.SolidFill(0, display.Rect{X: 0, Y: 0, W: w, H: h}, display.RGB(30, 60, 90))
	if _, err := s.AppendCommand(&wallpaper); err != nil {
		t.Fatal(err)
	}
	_ = fb.Apply(&wallpaper)
	now := simclock.Time(0)
	for shot := 0; shot < 8; shot++ {
		s.AppendScreenshot(now, fb)
		for i := 0; i < 50; i++ {
			now += simclock.Second
			c := display.SolidFill(now,
				display.Rect{X: (i * 7) % (w - 40), Y: (i * 13) % (h - 30), W: 40, H: 30},
				display.RGB(uint8(i*11), uint8(shot*29), 77))
			if _, err := s.AppendCommand(&c); err != nil {
				t.Fatal(err)
			}
			_ = fb.Apply(&c)
		}
	}
	return s
}

func rawV1Size(s *Store) int {
	return len(s.commands) + len(s.screenshots) + len(s.timeline)*timelineEntrySize + 16
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

func assertStoresEqual(t *testing.T, got, want *Store) {
	t.Helper()
	if got.Width != want.Width || got.Height != want.Height {
		t.Fatalf("dimensions %dx%d, want %dx%d", got.Width, got.Height, want.Width, want.Height)
	}
	if !bytes.Equal(got.commands, want.commands) {
		t.Fatalf("command log differs after roundtrip")
	}
	if !bytes.Equal(got.screenshots, want.screenshots) {
		t.Fatalf("screenshot log differs after roundtrip")
	}
	if len(got.timeline) != len(want.timeline) {
		t.Fatalf("timeline has %d entries, want %d", len(got.timeline), len(want.timeline))
	}
	for i := range got.timeline {
		if got.timeline[i] != want.timeline[i] {
			t.Fatalf("timeline entry %d differs: %+v vs %+v", i, got.timeline[i], want.timeline[i])
		}
	}
}

// TestSaveOpenV2Roundtrip checks the acceptance criteria directly: the
// v2 container round-trips byte-identically and is ≥40% smaller than
// the raw v1 encoding for a session-shaped workload.
func TestSaveOpenV2Roundtrip(t *testing.T) {
	s := sessionStore(t)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, got, s)

	raw := int64(rawV1Size(s))
	saved := dirSize(t, dir)
	if saved > raw*60/100 {
		t.Fatalf("v2 save is %d bytes, raw v1 is %d: want ≥40%% reduction", saved, raw)
	}
	t.Logf("v2 save: %d bytes vs %d raw (%.1f%% of raw)", saved, raw, 100*float64(saved)/float64(raw))
}

// TestOpenV1Fixture opens a raw record saved by the seed code (the
// testdata fixture predates the v2 container) and checks it decodes to
// the same store the fixture generator builds.
func TestOpenV1Fixture(t *testing.T) {
	got, err := Open("testdata/v1record")
	if err != nil {
		t.Fatalf("v1 record no longer opens: %v", err)
	}
	assertStoresEqual(t, got, fixtureStore())
	// And it re-saves into v2 that still matches.
	dir := t.TempDir()
	if err := got.Save(dir); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, again, got)
}

// TestOpenCorruptV2 checks that damaged compressed streams surface as
// ErrCorruptRecord-wrapped errors, never panics.
func TestOpenCorruptV2(t *testing.T) {
	cases := map[string]func(t *testing.T, dir, file string){
		"truncated-frame": func(t *testing.T, dir, file string) {
			b := readFileT(t, dir, file)
			writeFileT(t, dir, file, b[:len(b)/2])
		},
		"bad-codec": func(t *testing.T, dir, file string) {
			b := readFileT(t, dir, file)
			b[5] = 0x7e // unknown codec id → corrupt container
			writeFileT(t, dir, file, b)
		},
		"crc-mismatch": func(t *testing.T, dir, file string) {
			b := readFileT(t, dir, file)
			// Flip a payload byte just before the terminator, measured
			// against the logical frame end (the block table follows it).
			logical := len(compress.TrimTable(b))
			b[logical-13] ^= 0xff
			writeFileT(t, dir, file, b)
		},
		"block-length-overflow": func(t *testing.T, dir, file string) {
			b := readFileT(t, dir, file)
			// Rewrite the first block's rawLen to an implausible size.
			b[12] = 0xff
			b[13] = 0xff
			b[14] = 0xff
			b[15] = 0x7f
			writeFileT(t, dir, file, b)
		},
	}
	for _, file := range []string{commandsFile, screenshotsFile, timelineFile} {
		for name, mutate := range cases {
			t.Run(file+"/"+name, func(t *testing.T) {
				s := sessionStore(t)
				dir := t.TempDir()
				if err := s.Save(dir); err != nil {
					t.Fatal(err)
				}
				mutate(t, dir, file)
				_, err := Open(dir)
				if err == nil {
					t.Fatal("corrupt record opened without error")
				}
				if !errors.Is(err, ErrCorruptRecord) {
					t.Fatalf("got %v, want ErrCorruptRecord", err)
				}
			})
		}
	}
}

func readFileT(t *testing.T, dir, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func writeFileT(t *testing.T, dir, name string, b []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSaveAtomic checks that saving leaves no temporary files behind and
// that overwriting an existing record in place works.
func TestSaveAtomic(t *testing.T) {
	s := sessionStore(t)
	dir := t.TempDir()
	for i := 0; i < 2; i++ { // save twice: second overwrites in place
		if err := s.Save(dir); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temporary file %s left behind", e.Name())
		}
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
}

// TestSaveRawCodec checks the CodecRaw knob: still a valid v2 container
// (framed, checksummed), just not entropy-coded.
func TestSaveRawCodec(t *testing.T) {
	s := sessionStore(t)
	s.SetCompression(compress.Options{}.WithCodec(compress.CodecRaw))
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, got, s)
}

// TestDurationCached checks the memoized Duration: correct on a fresh
// store, kept current across appends, and recomputed lazily after Open.
func TestDurationCached(t *testing.T) {
	s := NewStore(32, 32)
	if s.Duration() != 0 {
		t.Fatalf("empty store duration = %v", s.Duration())
	}
	fb := display.NewFramebuffer(32, 32)
	s.AppendScreenshot(5*simclock.Second, fb)
	c := display.SolidFill(9*simclock.Second, display.Rect{X: 0, Y: 0, W: 4, H: 4}, display.RGB(1, 2, 3))
	if _, err := s.AppendCommand(&c); err != nil {
		t.Fatal(err)
	}
	if got := s.Duration(); got != 9*simclock.Second {
		t.Fatalf("duration = %v, want 9s", got)
	}
	// An out-of-order (older) command must not move duration backwards.
	old := display.SolidFill(2*simclock.Second, display.Rect{X: 1, Y: 1, W: 2, H: 2}, display.RGB(4, 5, 6))
	if _, err := s.AppendCommand(&old); err != nil {
		t.Fatal(err)
	}
	if got := s.Duration(); got != 9*simclock.Second {
		t.Fatalf("duration after stale append = %v, want 9s", got)
	}
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // second call hits the cache
		if got := reopened.Duration(); got != 9*simclock.Second {
			t.Fatalf("reopened duration = %v, want 9s", got)
		}
	}
}
