package record

import "fmt"

// Keyframe delta prefilter (storage format v2): the paper observes that
// periodic screenshots are highly redundant — a desktop rarely changes
// wholesale between keyframes — so before entropy coding, Save XORs each
// keyframe's rows against the previous keyframe's. Unchanged rows become
// runs of zero bytes that DEFLATE collapses to almost nothing; Open
// inverts the transform exactly, so the round trip is byte-identical.
//
// The filtered screenshot payload is one filter-id byte followed by the
// (possibly transformed) screenshot log. The 12-byte per-screenshot
// header (magic + dimensions) is never filtered, and a keyframe is only
// delta-coded against a predecessor of identical encoded length — both
// sides derive that decision from the timeline alone, so filter and
// unfilter always agree.
const (
	filterNone    = 0 // log stored verbatim
	filterXorPrev = 1 // pixels XORed with the previous keyframe's
)

// screenshotHeaderSize is the encoded screenshot's fixed prefix (magic,
// width, height) that the filter leaves untouched.
const screenshotHeaderSize = 12

// filterable reports whether timeline entry i can be delta-coded against
// entry i-1: identical encoded length and both ranges inside the log.
func filterable(tl []TimelineEntry, i int, logLen int) bool {
	cur, prev := tl[i], tl[i-1]
	return cur.ScreenLen == prev.ScreenLen &&
		cur.ScreenLen > screenshotHeaderSize &&
		cur.ScreenOff >= 0 && prev.ScreenOff >= 0 &&
		cur.ScreenOff+cur.ScreenLen <= int64(logLen) &&
		prev.ScreenOff+prev.ScreenLen <= int64(logLen)
}

// filterScreens returns the v2 screenshot payload: a filter-id byte
// followed by the delta-coded log. The input log is not modified.
func filterScreens(screens []byte, tl []TimelineEntry) []byte {
	out := make([]byte, 1, 1+len(screens))
	out[0] = filterXorPrev
	out = append(out, screens...)
	body := out[1:]
	// Each keyframe XORs against the *original* predecessor, which stays
	// intact in `screens` while we overwrite the copy.
	for i := 1; i < len(tl); i++ {
		if !filterable(tl, i, len(screens)) {
			continue
		}
		cur, prev := tl[i], tl[i-1]
		dst := body[cur.ScreenOff+screenshotHeaderSize : cur.ScreenOff+cur.ScreenLen]
		src := screens[prev.ScreenOff+screenshotHeaderSize : prev.ScreenOff+prev.ScreenLen]
		for j := range dst {
			dst[j] ^= src[j]
		}
	}
	return out
}

// unfilterScreens inverts filterScreens, reconstructing the raw
// screenshot log from a v2 payload in place.
func unfilterScreens(payload []byte, tl []TimelineEntry) ([]byte, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: empty screenshot payload", ErrCorruptRecord)
	}
	id, body := payload[0], payload[1:]
	switch id {
	case filterNone:
		return body, nil
	case filterXorPrev:
	default:
		return nil, fmt.Errorf("%w: unknown screenshot filter %d", ErrCorruptRecord, id)
	}
	// Forward order: entry i-1 is already reconstructed when entry i
	// XORs against it.
	for i := 1; i < len(tl); i++ {
		if !filterable(tl, i, len(body)) {
			continue
		}
		cur, prev := tl[i], tl[i-1]
		dst := body[cur.ScreenOff+screenshotHeaderSize : cur.ScreenOff+cur.ScreenLen]
		src := body[prev.ScreenOff+screenshotHeaderSize : prev.ScreenOff+prev.ScreenLen]
		for j := range dst {
			dst[j] ^= src[j]
		}
	}
	return body, nil
}
