package compress

import (
	"bytes"
	"io"
	"testing"
)

// FuzzUnpackFrame throws arbitrary bytes at the two frame decoders.
// Invariants: neither Unpack nor the streaming Reader may panic or
// allocate unboundedly on hostile input (the block-header plausibility
// checks run before any allocation), and whenever Unpack accepts a
// frame, the streaming Reader must accept it too and produce identical
// bytes.
//
// Run a short smoke locally with:
//
//	go test ./internal/compress/ -run=NONE -fuzz=FuzzUnpackFrame -fuzztime=10s
func FuzzUnpackFrame(f *testing.F) {
	// Seeds: well-formed frames across codecs and shapes, plus a
	// classic hostile header claiming a huge expansion.
	for _, data := range [][]byte{
		nil,
		[]byte("hello frame"),
		bytes.Repeat([]byte("abcdefgh"), 1024),
		make([]byte, 4096), // all-zero: compresses hard
	} {
		for _, codec := range []uint8{CodecRaw, CodecFlate} {
			frame, err := Pack(data, Options{}.WithCodec(codec))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(frame)
		}
	}
	// Multi-block frame.
	big, err := Pack(bytes.Repeat([]byte{1, 2, 3}, 10000), Options{BlockSize: 1024})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(big)
	// Header-only, truncated, and bomb-shaped inputs.
	f.Add(appendHeader(nil, CodecFlate))
	f.Add(appendBlockHeader(appendHeader(nil, CodecFlate), 0, 64<<20, 0))
	f.Add([]byte("DVZB"))

	f.Fuzz(func(t *testing.T, frame []byte) {
		out, err := Unpack(frame)
		if err != nil {
			// Rejected input must also be rejected (or at least not
			// crash) on the streaming path.
			if zr, rerr := NewReader(bytes.NewReader(frame), 2); rerr == nil {
				_, _ = io.Copy(io.Discard, zr)
				zr.Close()
			}
			return
		}
		// Accepted frames must stream-decode to the same bytes.
		zr, err := NewReader(bytes.NewReader(frame), 2)
		if err != nil {
			t.Fatalf("Unpack accepted but NewReader rejected: %v", err)
		}
		defer zr.Close()
		streamed, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("Unpack accepted but Reader failed: %v", err)
		}
		if !bytes.Equal(out, streamed) {
			t.Fatalf("Unpack and Reader disagree: %d vs %d bytes", len(out), len(streamed))
		}
		// And the decoded payload must re-pack/unpack cleanly.
		refr, err := Pack(out, Options{})
		if err != nil {
			t.Fatalf("re-Pack: %v", err)
		}
		back, err := Unpack(refr)
		if err != nil {
			t.Fatalf("re-Unpack: %v", err)
		}
		if !bytes.Equal(out, back) {
			t.Fatal("re-packed payload does not round-trip")
		}
	})
}
