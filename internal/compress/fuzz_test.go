package compress

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// seededNoise returns n deterministic pseudo-random bytes (fuzz seeds
// must be reproducible across runs).
func seededNoise(n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(42)).Read(b)
	return b
}

// FuzzUnpackFrame throws arbitrary bytes at the two frame decoders.
// Invariants: neither Unpack nor the streaming Reader may panic or
// allocate unboundedly on hostile input (the block-header plausibility
// checks run before any allocation), and whenever Unpack accepts a
// frame, the streaming Reader must accept it too and produce identical
// bytes.
//
// Run a short smoke locally with:
//
//	go test ./internal/compress/ -run=NONE -fuzz=FuzzUnpackFrame -fuzztime=10s
func FuzzUnpackFrame(f *testing.F) {
	// Seeds: well-formed frames across codecs and shapes, plus a
	// classic hostile header claiming a huge expansion.
	for _, data := range [][]byte{
		nil,
		[]byte("hello frame"),
		bytes.Repeat([]byte("abcdefgh"), 1024),
		make([]byte, 4096), // all-zero: compresses hard
	} {
		for _, codec := range []uint8{CodecRaw, CodecFlate, CodecLZS, CodecAuto} {
			frame, err := Pack(data, Options{}.WithCodec(codec))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(frame)
		}
	}
	// Multi-block frames: default codec and an adaptive frame with mixed
	// per-block codec bits (lzs + raw blocks in one frame).
	big, err := Pack(bytes.Repeat([]byte{1, 2, 3}, 10000), Options{BlockSize: 1024})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(big)
	mixed := append(bytes.Repeat([]byte("pane line "), 512), seededNoise(4096)...)
	autoFrame, err := Pack(mixed, Options{BlockSize: 4096, Codec: CodecAuto})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(autoFrame)
	// Header-only, truncated, and bomb-shaped inputs.
	f.Add(appendHeader(nil, CodecFlate))
	f.Add(appendBlockHeader(appendHeader(nil, CodecFlate), 0, 64<<20, 0))
	f.Add([]byte("DVZB"))

	f.Fuzz(func(t *testing.T, frame []byte) {
		out, err := Unpack(frame)
		if err != nil {
			// Rejected input must also be rejected (or at least not
			// crash) on the streaming path.
			if zr, rerr := NewReader(bytes.NewReader(frame), 2); rerr == nil {
				_, _ = io.Copy(io.Discard, zr)
				zr.Close()
			}
			return
		}
		// Accepted frames must stream-decode to the same bytes.
		zr, err := NewReader(bytes.NewReader(frame), 2)
		if err != nil {
			t.Fatalf("Unpack accepted but NewReader rejected: %v", err)
		}
		defer zr.Close()
		streamed, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("Unpack accepted but Reader failed: %v", err)
		}
		if !bytes.Equal(out, streamed) {
			t.Fatalf("Unpack and Reader disagree: %d vs %d bytes", len(out), len(streamed))
		}
		// And the decoded payload must re-pack/unpack cleanly.
		refr, err := Pack(out, Options{})
		if err != nil {
			t.Fatalf("re-Pack: %v", err)
		}
		back, err := Unpack(refr)
		if err != nil {
			t.Fatalf("re-Unpack: %v", err)
		}
		if !bytes.Equal(out, back) {
			t.Fatal("re-packed payload does not round-trip")
		}
	})
}

// FuzzLZSDecode drives the raw LZS token decoder with hostile streams
// against a fuzzer-chosen output size. Invariants: no panic, no write
// outside dst, errors are ErrCorrupt-classified, and any accepted
// (stream, size) pair re-encodes to a stream that decodes to the same
// bytes (encoder and decoder agree on the format).
//
// Run a short smoke locally with:
//
//	go test ./internal/compress/ -run=NONE -fuzz=FuzzLZSDecode -fuzztime=10s
func FuzzLZSDecode(f *testing.F) {
	var c lzsCodec
	for _, data := range [][]byte{
		[]byte("abcdabcdabcdabcd"),
		bytes.Repeat([]byte{0}, 4096),
		bytes.Repeat([]byte("display line "), 200),
		seededNoise(512),
	} {
		coded, err := c.Compress(nil, data, 0)
		if err != nil {
			f.Fatal(err)
		}
		if len(coded) < len(data) {
			f.Add(coded, len(data))
		}
	}
	// Hand-built hostile streams: forward offset, zero offset + overrun.
	f.Add([]byte{0b00000001, 0, 0, 0}, 8)
	f.Add([]byte{0b00010000, 'a', 'b', 'c', 'd', 9, 0, 255}, 300)

	f.Fuzz(func(t *testing.T, stream []byte, rawLen int) {
		if rawLen < 0 || rawLen > 1<<20 {
			return // the frame layer caps rawLen before sizing dst
		}
		dst := make([]byte, rawLen)
		if err := c.Decompress(dst, stream); err != nil {
			return
		}
		// Accepted: the stream fully determined dst. Re-encoding it must
		// produce a stream that decodes back to the same bytes.
		reEnc, err := c.Compress(nil, dst, 0)
		if err != nil {
			t.Fatalf("re-encode of decoded output: %v", err)
		}
		if len(reEnc) >= len(dst) && len(dst) > 0 {
			return // encoder bailed (incompressible); stored-raw path
		}
		back := make([]byte, len(dst))
		if err := c.Decompress(back, reEnc); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !bytes.Equal(dst, back) {
			t.Fatal("lzs re-encode does not round-trip")
		}
	})
}
