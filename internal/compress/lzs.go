package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"dejaview/internal/obs"
)

// Native LZSS codec for display streams. DejaView's hot save path feeds
// the compressor data with strong short-range repetition — display
// commands repeat opcodes and coordinates, XOR-delta'd keyframes are
// mostly zero runs — where a sliding-window matcher recovers most of
// DEFLATE's ratio at a fraction of its cost (no Huffman stage, no
// bit-level output). The token format is byte-aligned for decode speed:
//
//	stream  := group*
//	group   := control(1 byte) item{1..8}
//	item    := literal(1 byte)            when the control bit is 0
//	         | offset(2 LE) length(1)     when the control bit is 1
//
// Control bits are consumed LSB first. A match copies length+4 bytes
// (lzsMinMatch..lzsMaxMatch) from offset bytes back (1..lzsMaxOffset) in
// the already-decoded output; matches may self-overlap (offset < length
// replicates runs, the RLE case). There is no end-of-stream token: the
// block header's uncompressed length is authoritative, and a block must
// decode to exactly that many bytes consuming exactly the coded bytes.
// The worst case is all literals, 9/8 of the input; expansion on decode
// is inherently bounded by the caller-sized output buffer, so the
// frame-level 2048:1 decompression-bomb cap is never reachable from a
// well-formed LZS block.
//
// The matcher uses hash-chain candidate lookup over a 64 KiB window.
// Per-worker state (head table, chain table) comes from a sync.Pool so
// the parallel Pack/Unpack pools stay allocation-flat, and the head
// table is lazily initialized through a validity bitmap: a fresh block
// clears 4 KiB of bitmap instead of the 128 KiB head table (short blocks
// — timeline streams, command tails — would otherwise pay the full
// clear). Chain entries are never cleared at all: a candidate loaded
// from the chain is trusted only if it moves strictly backwards and the
// match bytes verify, so stale links from an earlier block can waste a
// probe but never corrupt output.
const (
	lzsMinMatch  = 4
	lzsMaxMatch  = 259 // lzsMinMatch + 255, length byte stores len-4
	lzsMaxOffset = 1<<16 - 1

	lzsHashBits = 15
	lzsHashSize = 1 << lzsHashBits
	lzsWindow   = 64 << 10 // chain table size; must be ≥ lzsMaxOffset+1

	// lzsMaxChain caps candidates probed per position: deeper chains buy
	// marginal ratio on pathological inputs at a steep throughput cost.
	lzsMaxChain = 32

	// lzsSkipTrigger: after this many consecutive literal misses the
	// matcher starts striding, so incompressible regions are crossed at
	// amortized sub-linear probe cost instead of one failed chain walk
	// per byte.
	lzsSkipTrigger = 64
)

// Selection counters: CodecAuto's per-block decision distribution, and
// the total LZS-coded block count across auto and pure-LZS frames.
var (
	obsLZSBlocks = obs.Default.Counter("compress.lzs_blocks")
	obsAutoRaw   = obs.Default.Counter("compress.auto_raw")
	obsAutoLZS   = obs.Default.Counter("compress.auto_lzs")
	obsAutoFlate = obs.Default.Counter("compress.auto_flate")
)

// lzsTable is the pooled per-worker matcher state: head maps a 4-byte
// hash to the most recent position that carried it, chain links each
// inserted position (indexed modulo the window) to the previous position
// with the same hash. valid is the lazy-init bitmap over head.
type lzsTable struct {
	head  [lzsHashSize]int32
	chain [lzsWindow]int32
	valid [lzsHashSize / 64]uint64
}

var lzsTablePool = sync.Pool{New: func() any { return new(lzsTable) }}

// reset invalidates the head table for a new block. Only the bitmap is
// cleared; head and chain keep stale values that the lookup guards
// against.
func (t *lzsTable) reset() {
	for i := range t.valid {
		t.valid[i] = 0
	}
}

func (t *lzsTable) headAt(h uint32) (int32, bool) {
	if t.valid[h>>6]&(1<<(h&63)) == 0 {
		return 0, false
	}
	return t.head[h], true
}

func (t *lzsTable) insert(h uint32, pos int32) {
	if prev, ok := t.headAt(h); ok {
		t.chain[pos&(lzsWindow-1)] = prev
	} else {
		t.chain[pos&(lzsWindow-1)] = -1
		t.valid[h>>6] |= 1 << (h & 63)
	}
	t.head[h] = pos
}

// hash4 mixes the 4 bytes at b into lzsHashBits.
func hash4(b []byte) uint32 {
	return (binary.LittleEndian.Uint32(b) * 2654435761) >> (32 - lzsHashBits)
}

// lzsCodec implements the Codec interface over the token format above.
type lzsCodec struct{}

func (lzsCodec) ID() uint8    { return CodecLZS }
func (lzsCodec) Name() string { return "lzs" }

// Compress appends the LZS token stream for src to dst. If at any point
// the coded form reaches the size of src the encoder bails out and
// returns a result at least len(src) bytes long whose tail is
// unspecified: every caller (Pack, the stream Writer) stores such blocks
// verbatim under storedRawBit, so the bytes are never decoded.
func (lzsCodec) Compress(dst, src []byte, _ int) ([]byte, error) {
	if len(src) < lzsMinMatch {
		// Too short to ever match; emit literals directly.
		for pos := 0; pos < len(src); pos += 8 {
			dst = append(dst, 0)
			dst = append(dst, src[pos:min(pos+8, len(src))]...)
		}
		return dst, nil
	}
	t := lzsTablePool.Get().(*lzsTable)
	defer lzsTablePool.Put(t)
	t.reset()

	base := len(dst)
	ctrl := -1      // index of the open control byte in dst
	items := 8      // items used in the open control group (8 = none open)
	misses := 0     // consecutive literal emissions, drives skip stride
	limit := len(src) - lzsMinMatch

	pos := 0
	for pos < len(src) {
		if len(dst)-base >= len(src) {
			// Expanding: not worth coding. Signal "store raw" by length.
			return append(dst[:base], src...), nil
		}
		bestLen, bestOff := 0, 0
		if pos <= limit {
			h := hash4(src[pos:])
			if cand, ok := t.headAt(h); ok {
				bestLen, bestOff = t.findMatch(src, pos, cand)
			}
			t.insert(h, int32(pos))
			// Lazy step: a short match here may shadow a longer one a
			// byte later (deflate's lazy matching, one level deep). Probe
			// pos+1 without inserting; if it wins, demote this position
			// to a literal — the next iteration re-finds that match.
			if bestLen >= lzsMinMatch && bestLen < 32 && pos+1 <= limit {
				if cand, ok := t.headAt(hash4(src[pos+1:])); ok {
					if l, _ := t.findMatch(src, pos+1, cand); l > bestLen {
						bestLen = 0
					}
				}
			}
		}
		if items == 8 {
			dst = append(dst, 0)
			ctrl = len(dst) - 1
			items = 0
		}
		if bestLen >= lzsMinMatch {
			dst[ctrl] |= 1 << items
			dst = append(dst, byte(bestOff), byte(bestOff>>8), byte(bestLen-lzsMinMatch))
			items++
			misses = 0
			// Index positions inside the match so later data can point
			// into it; long matches (runs) insert a sparse sample — the
			// run's interior hashes are all identical anyway.
			end := pos + bestLen
			if bestLen <= 16 {
				for p := pos + 1; p < end && p <= limit; p++ {
					t.insert(hash4(src[p:]), int32(p))
				}
			} else {
				for p := pos + 1; p < pos+4 && p <= limit; p++ {
					t.insert(hash4(src[p:]), int32(p))
				}
				for p := max(pos+4, end-2); p < end && p <= limit; p++ {
					t.insert(hash4(src[p:]), int32(p))
				}
			}
			pos = end
		} else {
			dst = append(dst, src[pos])
			items++
			misses++
			pos++
			// Incompressible stretch: stride over it, still inserting the
			// skipped positions' hashes cheaply.
			if misses > lzsSkipTrigger {
				skip := misses >> 6
				for s := 0; s < skip && pos < len(src); s++ {
					if items == 8 {
						dst = append(dst, 0)
						ctrl = len(dst) - 1
						items = 0
					}
					if pos <= limit {
						t.insert(hash4(src[pos:]), int32(pos))
					}
					dst = append(dst, src[pos])
					items++
					pos++
				}
			}
		}
	}
	return dst, nil
}

// findMatch walks the hash chain from cand looking for the longest match
// against src[pos:]. Candidates must move strictly backwards; stale
// chain entries (previous block, window aliasing) break that ordering
// and end the walk, and every candidate's bytes are verified before use,
// so the table never has to be cleared between blocks.
func (t *lzsTable) findMatch(src []byte, pos int, cand int32) (bestLen, bestOff int) {
	maxLen := min(lzsMaxMatch, len(src)-pos)
	for probes := 0; probes < lzsMaxChain; probes++ {
		c := int(cand)
		if c < 0 || c >= pos {
			break
		}
		if off := pos - c; off <= lzsMaxOffset {
			if l := matchLen(src, c, pos, maxLen); l > bestLen {
				bestLen, bestOff = l, off
				if l >= maxLen {
					break
				}
			}
		} else {
			break // older candidates are even further out of the window
		}
		next := t.chain[c&(lzsWindow-1)]
		if next >= int32(c) {
			break
		}
		cand = next
	}
	return bestLen, bestOff
}

// matchLen counts matching bytes between src[a:] and src[b:], capped at
// maxLen, comparing 8 bytes at a time.
func matchLen(src []byte, a, b, maxLen int) int {
	n := 0
	for n+8 <= maxLen && b+n+8 <= len(src) {
		x := binary.LittleEndian.Uint64(src[a+n:])
		y := binary.LittleEndian.Uint64(src[b+n:])
		if x != y {
			diff := x ^ y
			// Count the matching low-order bytes of the mismatching word.
			for diff&0xff == 0 {
				n++
				diff >>= 8
			}
			return n
		}
		n += 8
	}
	for n < maxLen && b+n < len(src) && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// Decompress fills dst (sized by the caller to the block's declared
// uncompressed length, which the frame layer has already bounded) from
// the token stream in src. It allocates nothing and writes only into
// dst, so a hostile stream can at most fill the buffer the caller chose.
func (lzsCodec) Decompress(dst, src []byte) error {
	out, i := 0, 0
	for out < len(dst) {
		if i >= len(src) {
			return fmt.Errorf("%w: lzs stream ends %d bytes short", ErrCorrupt, len(dst)-out)
		}
		ctrl := src[i]
		i++
		for bit := 0; bit < 8 && out < len(dst); bit++ {
			if ctrl&(1<<bit) == 0 {
				if i >= len(src) {
					return fmt.Errorf("%w: lzs literal past end of stream", ErrCorrupt)
				}
				dst[out] = src[i]
				out++
				i++
				continue
			}
			if i+3 > len(src) {
				return fmt.Errorf("%w: lzs match token truncated", ErrCorrupt)
			}
			off := int(src[i]) | int(src[i+1])<<8
			l := int(src[i+2]) + lzsMinMatch
			i += 3
			if off == 0 || off > out {
				return fmt.Errorf("%w: lzs match offset %d at output %d", ErrCorrupt, off, out)
			}
			if out+l > len(dst) {
				return fmt.Errorf("%w: lzs match overruns declared length", ErrCorrupt)
			}
			if off >= l {
				copy(dst[out:out+l], dst[out-off:])
				out += l
			} else {
				// Self-overlapping run: byte-by-byte replication.
				for k := 0; k < l; k++ {
					dst[out] = dst[out-off]
					out++
				}
			}
		}
	}
	if i != len(src) {
		return fmt.Errorf("%w: %d trailing bytes after lzs stream", ErrCorrupt, len(src)-i)
	}
	return nil
}

// Adaptive per-block codec selection (CodecAuto). The sampler reads at
// most ~16 KiB of the block and scores two cheap signals:
//
//   - byte entropy over a strided histogram: near 8 bits/byte means the
//     block is incompressible (screenshot noise, already-coded media) and
//     any codec work is wasted — store it raw;
//   - 4-gram repeat density via a small fingerprint table: high repeat
//     density is exactly what the LZSS matcher converts into matches, so
//     those blocks take the fast path;
//   - everything else is literal-heavy but skewed (structured fields,
//     counters) where DEFLATE's entropy coding still earns its cost.
const (
	autoSampleBytes = 16 << 10
	// autoRawEntropy: blocks sampling above this many bits/byte are
	// stored verbatim.
	autoRawEntropy = 7.4
	// autoLZSRepeat: minimum sampled 4-gram repeat fraction for LZS.
	autoLZSRepeat = 0.22
)

// selectCodecID picks the codec for one block of a CodecAuto frame. The
// repeat-density signal is consulted first: high byte entropy does NOT
// imply incompressible (a noisy screenshot region repeated across
// keyframes has near-uniform byte histogram but huge 4-gram repetition),
// so raw is chosen only when the block shows neither repetition nor
// histogram skew.
func selectCodecID(raw []byte) uint8 {
	if len(raw) < 2*lzsMinMatch {
		return CodecRaw // too small for any codec to beat the header bit
	}
	stride := 1
	if len(raw) > autoSampleBytes {
		// Odd stride: an even one aliases against power-of-two and
		// pixel-row periods and can sample the same phase of a
		// repeating pattern forever, hiding its repetition.
		stride = (len(raw) / autoSampleBytes) | 1
	}

	// Repeat density: fingerprint sampled 4-grams into a direct-mapped
	// table; a hit with a matching fingerprint is (almost certainly) a
	// 4-gram seen before, i.e. LZSS match fuel.
	var seen [512]uint32
	repeats, probes := 0, 0
	for i := 0; i+lzsMinMatch <= len(raw); i += stride {
		h := binary.LittleEndian.Uint32(raw[i:]) * 2654435761
		fp := h | 1 // never zero, so the zero slot means "empty"
		slot := (h >> 16) & 511
		if seen[slot] == fp {
			repeats++
		} else {
			seen[slot] = fp
		}
		probes++
	}
	if probes > 0 && float64(repeats)/float64(probes) >= autoLZSRepeat {
		return CodecLZS
	}

	var hist [256]int
	n := 0
	for i := 0; i < len(raw); i += stride {
		hist[raw[i]]++
		n++
	}
	entropy := 0.0
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		entropy -= p * math.Log2(p)
	}
	if entropy > autoRawEntropy {
		return CodecRaw
	}
	return CodecFlate
}

// countAuto bumps the selection-distribution counter for id.
func countAuto(id uint8) {
	switch id {
	case CodecRaw:
		obsAutoRaw.Inc()
	case CodecLZS:
		obsAutoLZS.Inc()
	default:
		obsAutoFlate.Inc()
	}
}
