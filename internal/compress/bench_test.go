package compress

import (
	"fmt"
	"testing"
)

// The bench corpus approximates a display record: large, structured,
// moderately compressible. Sized well past BlockSize×8 so every worker
// count has enough independent blocks to stay busy.
var benchData = corpus(16<<20, 42)

// BenchmarkCompressParallel measures Pack throughput at increasing
// worker counts; on a multi-core host throughput should scale near
// linearly until workers exceed cores (≥2x single-worker at 4 workers).
func BenchmarkCompressParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := Options{Workers: workers}
			b.SetBytes(int64(len(benchData)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Pack(benchData, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecompressParallel measures Unpack throughput at increasing
// worker counts over the same corpus.
func BenchmarkDecompressParallel(b *testing.B) {
	frame, err := Pack(benchData, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(benchData)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := UnpackWorkers(frame, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCodecs compares pack/unpack throughput and ratio per codec on
// the same corpus; this is the microbench behind the LZS acceptance bar
// (LZS and auto must beat flate on pack throughput at comparable ratio).
func BenchmarkCodecs(b *testing.B) {
	for _, tc := range []struct {
		name string
		id   uint8
	}{{"raw", CodecRaw}, {"flate", CodecFlate}, {"lzs", CodecLZS}, {"auto", CodecAuto}} {
		o := Options{}.WithCodec(tc.id)
		frame, err := Pack(benchData, o)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("pack/"+tc.name, func(b *testing.B) {
			b.SetBytes(int64(len(benchData)))
			b.ReportAllocs()
			b.ReportMetric(float64(len(frame))/float64(len(benchData)), "ratio")
			for i := 0; i < b.N; i++ {
				if _, err := Pack(benchData, o); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("unpack/"+tc.name, func(b *testing.B) {
			b.SetBytes(int64(len(benchData)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Unpack(frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamWriter measures the pigz-style streaming writer.
func BenchmarkStreamWriter(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(benchData)))
			for i := 0; i < b.N; i++ {
				zw, err := NewWriter(discard{}, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := zw.Write(benchData); err != nil {
					b.Fatal(err)
				}
				if err := zw.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
