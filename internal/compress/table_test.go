package compress

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"dejaview/internal/failpoint"
)

// tableTestData builds a deterministic mixed-entropy payload that spans
// several blocks.
func tableTestData(n int) []byte {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, n)
	for i := range data {
		switch (i / 512) % 3 {
		case 0:
			data[i] = byte(i % 7) // repetitive: compresses
		case 1:
			data[i] = byte(rng.Intn(256)) // noise: stored raw
		default:
			data[i] = 'a' + byte(i%13)
		}
	}
	return data
}

func TestBlockTableRoundTrip(t *testing.T) {
	data := tableTestData(10000)
	for _, codec := range []uint8{CodecRaw, CodecFlate, CodecLZS, CodecAuto} {
		o := Options{BlockSize: 1024, BlockTable: true}.WithCodec(codec)
		frame, err := Pack(data, o)
		if err != nil {
			t.Fatalf("codec %d: Pack: %v", codec, err)
		}
		if !HasBlockTable(frame) {
			t.Fatalf("codec %d: no table footer", codec)
		}
		// Sequential readers must be oblivious to the table.
		got, err := Unpack(frame)
		if err != nil {
			t.Fatalf("codec %d: Unpack: %v", codec, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("codec %d: Unpack mismatch", codec)
		}
		// TrimTable recovers the table-less frame byte for byte.
		plain, err := Pack(data, Options{BlockSize: 1024}.WithCodec(codec))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(TrimTable(frame), plain) {
			t.Fatalf("codec %d: TrimTable != table-less Pack", codec)
		}
		// Random access decodes the same bytes.
		ff, err := OpenFrameBytes(frame)
		if err != nil {
			t.Fatalf("codec %d: OpenFrameBytes: %v", codec, err)
		}
		if ff.RawSize() != int64(len(data)) {
			t.Fatalf("codec %d: RawSize %d, want %d", codec, ff.RawSize(), len(data))
		}
		for _, span := range [][2]int{{0, 100}, {1000, 3000}, {9990, 10}, {5000, 1}, {0, len(data)}} {
			buf := make([]byte, span[1])
			if _, err := ff.ReadAt(buf, int64(span[0])); err != nil {
				t.Fatalf("codec %d: ReadAt(%d,%d): %v", codec, span[0], span[1], err)
			}
			if !bytes.Equal(buf, data[span[0]:span[0]+span[1]]) {
				t.Fatalf("codec %d: ReadAt(%d,%d) mismatch", codec, span[0], span[1])
			}
		}
		// Past-the-end reads follow io.ReaderAt semantics.
		buf := make([]byte, 32)
		if n, err := ff.ReadAt(buf, int64(len(data))-16); n != 16 || !errors.Is(err, io.EOF) {
			t.Fatalf("codec %d: tail ReadAt = (%d, %v), want (16, EOF)", codec, n, err)
		}
	}
}

// TestBlockTableStreamWriter locks Writer's table against Pack's: the
// two write paths must emit identical frames for identical input.
func TestBlockTableStreamWriter(t *testing.T) {
	data := tableTestData(5000)
	o := Options{BlockSize: 512, BlockTable: true}.WithCodec(CodecLZS)
	packed, err := Pack(data, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw, err := NewWriter(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), packed) {
		t.Fatalf("Writer frame (%d bytes) differs from Pack frame (%d bytes)", buf.Len(), len(packed))
	}
}

func TestBlockTableLazyDecode(t *testing.T) {
	data := tableTestData(64 << 10)
	frame, err := Pack(data, Options{BlockSize: 4096, BlockTable: true})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := OpenFrameBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	var loads int
	ff.SetLoadHook(func(n int) { loads += n })
	buf := make([]byte, 100)
	if _, err := ff.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("one-block read decoded %d blocks", loads)
	}
	// Re-reading the same block hits the cache.
	if _, err := ff.ReadAt(buf, 50); err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("cached re-read decoded %d extra blocks", loads-1)
	}
	if ff.NumBlocks() != 16 {
		t.Fatalf("NumBlocks = %d, want 16", ff.NumBlocks())
	}
}

func TestBlockTableSequentialReader(t *testing.T) {
	data := tableTestData(20000)
	frame, err := Pack(data, Options{BlockSize: 1000, BlockTable: true})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := OpenFrameBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(ff.SequentialReader())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("SequentialReader mismatch")
	}
}

func TestBlockTableMissing(t *testing.T) {
	frame, err := Pack(tableTestData(1000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if HasBlockTable(frame) {
		t.Fatal("table-less frame claims a table")
	}
	if _, err := OpenFrameBytes(frame); !errors.Is(err, ErrNoBlockTable) {
		t.Fatalf("OpenFrameBytes = %v, want ErrNoBlockTable", err)
	}
	// Empty-input frame with a table still opens.
	empty, err := Pack(nil, Options{BlockTable: true})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := OpenFrameBytes(empty)
	if err != nil {
		t.Fatal(err)
	}
	if ff.RawSize() != 0 || ff.NumBlocks() != 0 {
		t.Fatalf("empty frame: size %d blocks %d", ff.RawSize(), ff.NumBlocks())
	}
}

func TestBlockTableCorrupt(t *testing.T) {
	data := tableTestData(8192)
	frame, err := Pack(data, Options{BlockSize: 1024, BlockTable: true})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), frame...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"table crc":    mutate(func(b []byte) { b[len(b)-40] ^= 0xff }),
		"footer off":   mutate(func(b []byte) { b[len(b)-20] ^= 0x01 }),
		"footer count": mutate(func(b []byte) { b[len(b)-12] ^= 0x01 }),
		"truncated":    frame[:len(frame)-1],
	}
	for name, b := range cases {
		if _, err := OpenFrameBytes(b); err == nil {
			t.Errorf("%s: corrupt table opened", name)
		}
	}
	// Payload corruption surfaces at decode time through the CRC.
	b := append([]byte(nil), frame...)
	b[headerSize+blockHeaderSize+3] ^= 0xff
	ff, err := OpenFrameBytes(b)
	if err != nil {
		t.Fatalf("open with corrupt payload: %v", err)
	}
	if _, err := ff.ReadAt(make([]byte, 10), 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt payload ReadAt = %v, want ErrCorrupt", err)
	}
}

// TestBlockTableReadFailpoint proves the compress/readat failpoint is
// live on the demand-decode path: injected read errors and corruption
// surface as errors, never as silently wrong bytes.
func TestBlockTableReadFailpoint(t *testing.T) {
	defer failpoint.Reset()
	data := tableTestData(8192)
	frame, err := Pack(data, Options{BlockSize: 1024, BlockTable: true})
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Arm("compress/readat", failpoint.Policy{Mode: failpoint.ModeError})
	ff, err := OpenFrameBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ff.ReadAt(make([]byte, 10), 0); err == nil {
		t.Fatal("armed readat failpoint: ReadAt succeeded")
	}
	failpoint.Reset()
	failpoint.Arm("compress/readat", failpoint.Policy{Mode: failpoint.ModeCorrupt})
	ff2, err := OpenFrameBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ff2.ReadAt(make([]byte, 10), 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped block ReadAt = %v, want ErrCorrupt", err)
	}
}

func FuzzBlockTable(f *testing.F) {
	data := tableTestData(4096)
	for _, o := range []Options{
		{BlockSize: 512, BlockTable: true},
		{BlockSize: 1024, BlockTable: true, Codec: CodecLZS},
	} {
		frame, err := Pack(data, o)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-7])  // truncated footer
		f.Add(frame[:len(frame)-40]) // truncated table
		mut := append([]byte(nil), frame...)
		mut[len(mut)-16] ^= 0x40 // corrupt count
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		ff, err := OpenFrameBytes(b)
		if err != nil {
			return
		}
		// A structurally valid table must never promise more raw bytes
		// than the block-expansion bound allows (decompression-bomb
		// guard: same 2048:1 cap as Unpack).
		if ff.RawSize() > int64(len(b))*maxBlockRatio+64*int64(ff.NumBlocks()+1) {
			t.Fatalf("table promises %d raw bytes from a %d-byte frame", ff.RawSize(), len(b))
		}
		buf := make([]byte, 256)
		for off := int64(0); off < ff.RawSize(); off += 1777 {
			if _, err := ff.ReadAt(buf, off); err != nil {
				return // corrupt payloads must error, not crash
			}
		}
	})
}
