package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// corpus builds n bytes of mixed content: compressible structured runs
// interleaved with incompressible noise, exercising both block paths.
func corpus(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, 0, n)
	for len(b) < n {
		switch rng.Intn(3) {
		case 0: // run
			c := byte(rng.Intn(256))
			for i := 0; i < 4096 && len(b) < n; i++ {
				b = append(b, c)
			}
		case 1: // structured counters
			for i := 0; i < 1024 && len(b) < n; i++ {
				var w [8]byte
				binary.LittleEndian.PutUint64(w[:], uint64(i)*0x9E3779B9)
				b = append(b, w[:]...)
			}
		default: // noise
			for i := 0; i < 512 && len(b) < n; i++ {
				b = append(b, byte(rng.Intn(256)))
			}
		}
	}
	return b[:n]
}

func roundtrip(t *testing.T, data []byte, o Options) []byte {
	t.Helper()
	frame, err := Pack(data, o)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(frame)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("roundtrip mismatch: %d bytes in, %d out", len(data), len(got))
	}
	return frame
}

func TestPackRoundtrip(t *testing.T) {
	inputs := map[string][]byte{
		"empty":        {},
		"one":          {0x42},
		"block-exact":  corpus(DefaultBlockSize, 1),
		"block-plus-1": corpus(DefaultBlockSize+1, 2),
		"multi-block":  corpus(3*DefaultBlockSize+777, 3),
		"zeros":        make([]byte, 100_000),
	}
	for name, data := range inputs {
		t.Run(name, func(t *testing.T) {
			roundtrip(t, data, Options{})
		})
	}
}

func TestPackWorkerCounts(t *testing.T) {
	data := corpus(1<<20, 4)
	var frames [][]byte
	for _, w := range []int{1, 2, 4, 8} {
		frames = append(frames, roundtrip(t, data, Options{Workers: w, BlockSize: 64 << 10}))
	}
	// The frame bytes must be deterministic regardless of parallelism.
	for i := 1; i < len(frames); i++ {
		if !bytes.Equal(frames[0], frames[i]) {
			t.Fatalf("frame differs between worker counts")
		}
	}
}

func TestPackCompresses(t *testing.T) {
	data := bytes.Repeat([]byte("the same desktop line over and over "), 20_000)
	frame := roundtrip(t, data, Options{})
	if len(frame) > len(data)/4 {
		t.Fatalf("redundant input compressed to %d of %d bytes", len(frame), len(data))
	}
}

func TestPackIncompressibleOverhead(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 1<<20)
	rng.Read(data)
	frame := roundtrip(t, data, Options{})
	overhead := len(frame) - len(data)
	blocks := (len(data) + DefaultBlockSize - 1) / DefaultBlockSize
	maxOverhead := headerSize + (blocks+1)*blockHeaderSize
	if overhead > maxOverhead {
		t.Fatalf("incompressible input grew by %d bytes, framing bound is %d", overhead, maxOverhead)
	}
}

func TestRawCodec(t *testing.T) {
	data := corpus(300_000, 5)
	frame, err := Pack(data, Options{}.WithCodec(CodecRaw))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(frame)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("raw roundtrip failed: %v", err)
	}
}

func TestUnknownCodec(t *testing.T) {
	frame, _ := Pack([]byte("x"), Options{})
	frame[5] = 0x7f
	if _, err := Unpack(frame); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("got %v, want ErrUnknownCodec", err)
	}
}

// Corruption table: every structural violation must surface as
// ErrCorrupt, never a panic or silent bad data.
func TestUnpackCorrupt(t *testing.T) {
	data := corpus(DefaultBlockSize+500, 6)
	frame, err := Pack(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"empty":          func(f []byte) []byte { return nil },
		"bad-magic":      func(f []byte) []byte { f[0] = 'X'; return f },
		"bad-version":    func(f []byte) []byte { f[4] = 99; return f },
		"short-header":   func(f []byte) []byte { return f[:5] },
		"truncated-mid":  func(f []byte) []byte { return f[:len(f)/2] },
		"no-terminator":  func(f []byte) []byte { return f[:len(f)-blockHeaderSize] },
		"crc-flip":       func(f []byte) []byte { f[len(f)-blockHeaderSize-1] ^= 0xff; return f },
		"bad-terminator": func(f []byte) []byte { f[len(f)-1] = 1; return f },
		"rawlen-overflow": func(f []byte) []byte {
			binary.LittleEndian.PutUint32(f[headerSize+4:], MaxBlockSize+1)
			return f
		},
		"complen-overflow": func(f []byte) []byte {
			binary.LittleEndian.PutUint32(f[headerSize:], uint32(len(f)+100))
			return f
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			mutated := mutate(append([]byte(nil), frame...))
			_, err := Unpack(mutated)
			if err == nil {
				t.Fatal("corrupt frame decoded without error")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestStreamRoundtrip(t *testing.T) {
	data := corpus(2*DefaultBlockSize+123, 7)
	for _, chunk := range []int{1, 7, 4096, len(data)} {
		var buf bytes.Buffer
		zw, err := NewWriter(&buf, Options{BlockSize: 64 << 10, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(data); off += chunk {
			if _, err := zw.Write(data[off:min(off+chunk, len(data))]); err != nil {
				t.Fatal(err)
			}
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		// A streamed frame is also a valid Pack frame.
		got, err := Unpack(buf.Bytes())
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("chunk=%d: Unpack of streamed frame failed: %v", chunk, err)
		}
		zr, err := NewReader(bytes.NewReader(buf.Bytes()), 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err = io.ReadAll(zr)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("chunk=%d: streamed read failed: %v", chunk, err)
		}
		zr.Close()
	}
}

func TestStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	zw, err := NewWriter(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(buf.Bytes())
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: got %d bytes, err %v", len(got), err)
	}
}

func TestReaderEarlyClose(t *testing.T) {
	data := corpus(8*64<<10, 8)
	var buf bytes.Buffer
	zw, _ := NewWriter(&buf, Options{BlockSize: 64 << 10})
	zw.Write(data)
	zw.Close()
	zr, err := NewReader(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	var one [10]byte
	if _, err := zr.Read(one[:]); err != nil {
		t.Fatal(err)
	}
	if err := zr.Close(); err != nil { // abandon mid-stream; must not hang or leak
		t.Fatal(err)
	}
}

func TestReaderTruncated(t *testing.T) {
	data := corpus(300_000, 10)
	frame, _ := Pack(data, Options{BlockSize: 64 << 10})
	zr, err := NewReader(bytes.NewReader(frame[:len(frame)/2]), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	if _, err := io.ReadAll(zr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestMaybeReader(t *testing.T) {
	data := corpus(200_000, 11)
	frame, _ := Pack(data, Options{})
	for name, in := range map[string][]byte{"compressed": frame, "raw": data, "short": {1, 2}} {
		t.Run(name, func(t *testing.T) {
			want := data
			if name == "short" {
				want = in
			}
			r, err := MaybeReader(bytes.NewReader(in))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("MaybeReader mismatch: %d bytes, want %d", len(got), len(want))
			}
		})
	}
}
