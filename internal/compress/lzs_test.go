package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// lzsRoundtrip compresses data with the raw codec entry points (no frame
// layer) and decodes it back, failing on any mismatch. It returns the
// coded stream for callers that want to inspect or corrupt it.
func lzsRoundtrip(t *testing.T, data []byte) []byte {
	t.Helper()
	var c lzsCodec
	coded, err := c.Compress(nil, data, 0)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if len(coded) >= len(data) && len(data) > 0 {
		// Encoder bailed out (incompressible); callers store such blocks
		// raw, so there is nothing to decode.
		return nil
	}
	got := make([]byte, len(data))
	if err := c.Decompress(got, coded); err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("lzs roundtrip mismatch: %d bytes", len(data))
	}
	return coded
}

func TestLZSRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	noise := make([]byte, 100_000)
	rng.Read(noise)
	inputs := map[string][]byte{
		"empty":        {},
		"one":          {0x42},
		"three":        {1, 2, 3}, // below lzsMinMatch: literal-only path
		"min-match":    []byte("abababab"),
		"run":          bytes.Repeat([]byte{7}, 50_000), // RLE via overlap
		"text":         bytes.Repeat([]byte("the same desktop line over and over "), 10_000),
		"counters":     corpus(200_000, 22),
		"noise":        noise, // must bail out, not expand the frame
		"window-reach": append(append(bytes.Repeat([]byte("UNIQ-PREFIX-0123"), 64), make([]byte, 60_000)...), bytes.Repeat([]byte("UNIQ-PREFIX-0123"), 64)...),
		"max-match":    bytes.Repeat([]byte{9}, lzsMaxMatch*3+5),
	}
	for name, data := range inputs {
		t.Run(name, func(t *testing.T) {
			lzsRoundtrip(t, data)
		})
	}
}

// TestLZSCompressesRuns locks the ratio floor on the codec's home turf:
// XOR-delta'd keyframes and repeated display commands are run- and
// phrase-heavy, and the matcher must convert that into real shrinkage.
func TestLZSCompressesRuns(t *testing.T) {
	data := bytes.Repeat([]byte("MOVE 12,34 DRAW rect 640x480 FILL #ffffff "), 20_000)
	coded := lzsRoundtrip(t, data)
	if coded == nil || len(coded) > len(data)/20 {
		t.Fatalf("phrase-heavy input coded to %d of %d bytes", len(coded), len(data))
	}
	// Pure runs floor out at ~3.4 bytes per lzsMaxMatch-byte match
	// (3-byte token plus amortized control bits), ≈1.3% of raw.
	zeros := lzsRoundtrip(t, make([]byte, 1<<20))
	if zeros == nil || len(zeros) > (1<<20)/64 {
		t.Fatalf("1 MiB of zeros coded to %d bytes", len(zeros))
	}
}

// TestLZSPooledStateReuse runs many compressions of different shapes on
// the same goroutine so pooled tables are reused across blocks with
// stale head/chain contents, which the validity bitmap and backwards
// walk must neutralize.
func TestLZSPooledStateReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(1<<16)
		data := corpus(n, int64(i))
		lzsRoundtrip(t, data)
	}
}

// TestLZSDecompressCorrupt: every malformed token stream must surface
// ErrCorrupt — never a panic, never out-of-bounds writes.
func TestLZSDecompressCorrupt(t *testing.T) {
	var c lzsCodec
	// A valid stream to mutate: one control byte, match bit 1 set after a
	// 4-literal prefix would be position-dependent, so build by hand.
	// ctrl 0b00010000: items 0-3 literal "abcd", item 4 match off=4 len=4.
	valid := []byte{0b00010000, 'a', 'b', 'c', 'd', 4, 0, 0}
	out := make([]byte, 8)
	if err := c.Decompress(out, valid); err != nil || string(out) != "abcdabcd" {
		t.Fatalf("hand-built stream: %q, %v", out, err)
	}
	cases := map[string]struct {
		dstLen int
		src    []byte
	}{
		"empty-src-nonempty-dst": {4, nil},
		"stream-ends-short":      {8, []byte{0, 'a', 'b'}},
		"literal-past-end":       {2, []byte{0, 'a'}},
		"match-token-truncated":  {8, []byte{0b00010000, 'a', 'b', 'c', 'd', 4, 0}},
		"zero-offset":            {8, []byte{0b00010000, 'a', 'b', 'c', 'd', 0, 0, 0}},
		"offset-before-start":    {8, []byte{0b00010000, 'a', 'b', 'c', 'd', 9, 0, 0}},
		"match-overruns-dst":     {6, []byte{0b00010000, 'a', 'b', 'c', 'd', 4, 0, 200}},
		"trailing-bytes":         {8, []byte{0b00010000, 'a', 'b', 'c', 'd', 4, 0, 0, 0xee}},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			err := c.Decompress(make([]byte, tc.dstLen), tc.src)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestLZSFrameCodec exercises CodecLZS through the full frame layer, and
// TestAutoFrame the adaptive path, including cross-format agreement with
// the streaming writer (same invariant TestPackWorkerCounts locks for
// flate).
func TestLZSFrameCodec(t *testing.T) {
	data := corpus(3*DefaultBlockSize+999, 24)
	frame := roundtrip(t, data, Options{}.WithCodec(CodecLZS))
	st, err := Stats(frame)
	if err != nil {
		t.Fatal(err)
	}
	if st.Codec != CodecLZS || st.Blocks == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PerCodec["lzs"] == 0 {
		t.Fatalf("no lzs-coded blocks in an lzs frame: %+v", st.PerCodec)
	}
}

func TestAutoFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	noise := make([]byte, 256<<10)
	rng.Read(noise)
	// Three-personality payload: phrase-heavy (lzs), noise (raw), and
	// skewed-but-unrepetitive (flate) blocks, one block each.
	skew := make([]byte, 256<<10)
	for i := range skew {
		skew[i] = byte(rng.Intn(16)) // low entropy, few 4-gram repeats
	}
	data := append(append(bytes.Repeat([]byte("scroll line 42 "), 256<<10/15+1)[:256<<10], noise...), skew...)
	frame := roundtrip(t, data, Options{BlockSize: 256 << 10, Codec: CodecAuto})
	st, err := Stats(frame)
	if err != nil {
		t.Fatal(err)
	}
	if st.Codec != CodecAuto {
		t.Fatalf("frame codec = %d, want CodecAuto", st.Codec)
	}
	if st.PerCodec["lzs"] == 0 || st.PerCodec["raw"] == 0 {
		t.Fatalf("auto selection missed a personality: %+v", st.PerCodec)
	}
	// Deterministic regardless of worker count, like every other codec.
	for _, w := range []int{1, 2, 8} {
		f2 := roundtrip(t, data, Options{BlockSize: 256 << 10, Codec: CodecAuto, Workers: w})
		if !bytes.Equal(frame, f2) {
			t.Fatalf("auto frame differs at %d workers", w)
		}
	}
}

// TestSelectCodecID pins the heuristic's behavior on each block
// personality so a tuning change that flips a class shows up here, not
// as a silent ratio regression in dvbench.
func TestSelectCodecID(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	noise := make([]byte, 128<<10)
	rng.Read(noise)
	skew := make([]byte, 128<<10)
	for i := range skew {
		skew[i] = byte(rng.Intn(16))
	}
	repeats := bytes.Repeat([]byte("DRAW 640x480 rect at 12,34 "), 5000)
	cases := map[string]struct {
		data []byte
		want uint8
	}{
		"tiny":     {[]byte{1, 2, 3}, CodecRaw},
		"noise":    {noise, CodecRaw},
		"skewed":   {skew, CodecFlate},
		"repeats":  {repeats, CodecLZS},
		"zeros":    {make([]byte, 64 << 10), CodecLZS},
		"sampled":  {bytes.Repeat(repeats, 20), CodecLZS}, // > autoSampleBytes, strided
		"xordelta": {append(make([]byte, 100<<10), repeats...), CodecLZS},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			if got := selectCodecID(tc.data); got != tc.want {
				t.Fatalf("selectCodecID = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestMatchLen covers the 8-at-a-time comparison's boundary behavior.
func TestMatchLen(t *testing.T) {
	src := []byte("abcdefgh-abcdefgh-abcdefgX")
	if got := matchLen(src, 0, 9, 17); got != 8+1+7 {
		t.Fatalf("matchLen = %d, want 16", got)
	}
	if got := matchLen(src, 0, 9, 4); got != 4 {
		t.Fatalf("capped matchLen = %d, want 4", got)
	}
	same := bytes.Repeat([]byte{5}, 64)
	if got := matchLen(same, 0, 32, 32); got != 32 {
		t.Fatalf("tail matchLen = %d, want 32", got)
	}
}

// TestStatsRejectsCorrupt: the stats walker validates structure like the
// decoders do.
func TestStatsRejectsCorrupt(t *testing.T) {
	frame := roundtrip(t, corpus(100_000, 27), Options{})
	if _, err := Stats(frame[:len(frame)-3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: %v", err)
	}
	// Nonzero codec bits in a single-codec frame are structural corruption.
	f2 := roundtrip(t, corpus(100_000, 28), Options{}.WithCodec(CodecFlate))
	bad := append([]byte(nil), f2...)
	compLen := binary.LittleEndian.Uint32(bad[headerSize:])
	binary.LittleEndian.PutUint32(bad[headerSize:], compLen|uint32(CodecLZS)<<blockCodecShift)
	if _, err := Stats(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("codec bits in flate frame: %v", err)
	}
	if _, err := Unpack(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Unpack codec bits in flate frame: %v", err)
	}
}
