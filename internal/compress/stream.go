package compress

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"dejaview/internal/failpoint"
)

// Writer streams a frame to an underlying io.Writer, compressing blocks
// on a worker pool as they fill (pigz-style): Write slices input into
// blocks, hands each block to a worker, and a bounded in-order queue
// keeps at most ~2×Workers blocks in flight, so throughput scales with
// cores while memory stays bounded. Close flushes the final partial
// block and writes the terminator; the frame is not readable until
// Close returns.
type Writer struct {
	w       io.Writer
	o       Options
	codec   Codec // nil when the frame is CodecAuto
	buf     []byte
	jobs    chan wjob
	pending []chan wres // FIFO of in-flight blocks, oldest first
	err     error
	closed  bool

	// off counts bytes written so far; table accumulates per-block
	// offsets when o.BlockTable is set (appended after the terminator
	// by Close).
	off   int64
	table []tableEntry
}

type wjob struct {
	raw []byte
	res chan wres
}

type wres struct {
	framed []byte // block header + payload, ready to write
	err    error
}

// NewWriter starts a streaming compressor over w.
func NewWriter(w io.Writer, o Options) (*Writer, error) {
	w = failpoint.Writer("compress/writer", w)
	o = o.withDefaults()
	c, err := frameDecoder(o.Codec)
	if err != nil {
		return nil, err
	}
	zw := &Writer{
		w:     w,
		o:     o,
		codec: c,
		buf:   make([]byte, 0, o.BlockSize),
		jobs:  make(chan wjob),
	}
	for i := 0; i < o.Workers; i++ {
		go zw.worker()
	}
	if _, err := w.Write(appendHeader(nil, o.Codec)); err != nil {
		zw.fail(err)
		return nil, err
	}
	zw.off = headerSize
	return zw, nil
}

func (zw *Writer) worker() {
	for j := range zw.jobs {
		j.res <- encodeBlock(zw.codec, zw.o.Level, j.raw)
	}
}

// encodeBlock produces a fully framed block (header + payload) for raw.
// A nil codec means the frame is CodecAuto: the worker selects a codec
// per block and records the choice in the block header's codec bits.
func encodeBlock(c Codec, level int, raw []byte) wres {
	crc := crc32.ChecksumIEEE(raw)
	auto := c == nil
	id := uint8(0)
	if auto {
		id = selectCodecID(raw)
		countAuto(id)
		if id == CodecRaw {
			return storedBlock(raw, crc)
		}
		var err error
		if c, err = codecByID(id); err != nil {
			return wres{err: err}
		}
	}
	enc, err := c.Compress(make([]byte, 0, len(raw)/2+64), raw, level)
	if err != nil {
		return wres{err: err}
	}
	if len(enc) >= len(raw) {
		return storedBlock(raw, crc)
	}
	compLen := uint32(len(enc))
	if auto {
		compLen |= uint32(id) << blockCodecShift
	}
	if (auto && id == CodecLZS) || (!auto && c.ID() == CodecLZS) {
		obsLZSBlocks.Inc()
	}
	framed := appendBlockHeader(make([]byte, 0, blockHeaderSize+len(enc)), compLen, uint32(len(raw)), crc)
	return wres{framed: append(framed, enc...)}
}

// storedBlock frames raw verbatim under storedRawBit.
func storedBlock(raw []byte, crc uint32) wres {
	framed := appendBlockHeader(make([]byte, 0, blockHeaderSize+len(raw)), uint32(len(raw))|storedRawBit, uint32(len(raw)), crc)
	return wres{framed: append(framed, raw...)}
}

func (zw *Writer) fail(err error) {
	if zw.err == nil {
		zw.err = err
	}
}

// Write implements io.Writer.
func (zw *Writer) Write(p []byte) (int, error) {
	if zw.closed {
		return 0, fmt.Errorf("compress: write after Close")
	}
	if zw.err != nil {
		return 0, zw.err
	}
	written := len(p)
	for len(p) > 0 {
		n := copy(zw.buf[len(zw.buf):zw.o.BlockSize], p)
		zw.buf = zw.buf[:len(zw.buf)+n]
		p = p[n:]
		if len(zw.buf) == zw.o.BlockSize {
			if err := zw.dispatch(); err != nil {
				return 0, err
			}
		}
	}
	return written, nil
}

// dispatch hands the current block to the pool and drains completed
// blocks once enough are in flight to keep every worker busy.
func (zw *Writer) dispatch() error {
	res := make(chan wres, 1)
	zw.jobs <- wjob{raw: zw.buf, res: res}
	zw.pending = append(zw.pending, res)
	obsPoolInflight.Add(1)
	obsPoolDepth.Observe(float64(len(zw.pending)))
	zw.buf = make([]byte, 0, zw.o.BlockSize)
	for len(zw.pending) > 2*zw.o.Workers {
		if err := zw.drainOne(); err != nil {
			return err
		}
	}
	return nil
}

func (zw *Writer) drainOne() error {
	r := <-zw.pending[0]
	zw.pending = zw.pending[1:]
	obsPoolInflight.Add(-1)
	if r.err != nil {
		zw.fail(r.err)
		return zw.err
	}
	if _, err := zw.w.Write(r.framed); err != nil {
		zw.fail(err)
		return zw.err
	}
	if zw.o.BlockTable {
		zw.table = append(zw.table, tableEntry{
			off:     zw.off,
			compLen: binary.LittleEndian.Uint32(r.framed[0:]),
			rawLen:  binary.LittleEndian.Uint32(r.framed[4:]),
		})
	}
	zw.off += int64(len(r.framed))
	obsBlocksPacked.Inc()
	return zw.err
}

// Close flushes all in-flight blocks, writes the frame terminator, and
// stops the worker pool. It does not close the underlying writer.
func (zw *Writer) Close() error {
	if zw.closed {
		return zw.err
	}
	zw.closed = true
	if len(zw.buf) > 0 && zw.err == nil {
		res := make(chan wres, 1)
		zw.jobs <- wjob{raw: zw.buf, res: res}
		zw.pending = append(zw.pending, res)
		obsPoolInflight.Add(1)
		zw.buf = nil
	}
	for len(zw.pending) > 0 {
		if err := zw.drainOne(); err != nil {
			// Keep draining so workers do not block on res sends.
			for _, res := range zw.pending {
				<-res
			}
			obsPoolInflight.Add(-int64(len(zw.pending)))
			zw.pending = nil
		}
	}
	close(zw.jobs)
	if zw.err == nil {
		if _, err := zw.w.Write(appendBlockHeader(nil, 0, 0, 0)); err != nil {
			zw.fail(err)
		}
		zw.off += blockHeaderSize
	}
	if zw.err == nil && zw.o.BlockTable {
		if _, err := zw.w.Write(appendBlockTable(nil, zw.table, zw.off)); err != nil {
			zw.fail(err)
		}
	}
	return zw.err
}

// Reader streams a frame from an underlying io.Reader, decompressing
// blocks ahead of the consumer on a worker pool. A dispatcher goroutine
// reads framed blocks sequentially (I/O-bound), fans them out to
// workers, and delivers results in order through a bounded channel of
// per-block result channels, so decode keeps up with reads on
// multi-core hosts. Callers should Close the reader to release the pool
// if they stop before EOF.
type Reader struct {
	out  chan chan wres // in-order stream of in-flight blocks
	stop chan struct{}
	cur  []byte
	err  error
}

// NewReader starts a streaming decompressor over r. It fails immediately
// if r does not begin with a compress frame header.
func NewReader(r io.Reader, workers int) (*Reader, error) {
	r = failpoint.Reader("compress/reader", r)
	if workers <= 0 {
		workers = Options{}.withDefaults().Workers
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short frame header: %v", ErrCorrupt, err)
	}
	codecID, _, err := parseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	frameC, err := frameDecoder(codecID)
	if err != nil {
		return nil, err
	}
	zr := &Reader{
		out:  make(chan chan wres, 2*workers),
		stop: make(chan struct{}),
	}
	jobs := make(chan rjob)
	for i := 0; i < workers; i++ {
		go decodeWorker(jobs)
	}
	//lint:ignore goroutine-lifecycle Reader.dispatch parks on zr.stop and exits when Close signals it; the shared dispatch method name defeats call-graph resolution
	go zr.dispatch(r, codecID, frameC, jobs)
	return zr, nil
}

type rjob struct {
	comp   []byte
	rawLen int
	crc    uint32
	codec  Codec // nil for stored blocks
	res    chan wres
}

func decodeWorker(jobs <-chan rjob) {
	for j := range jobs {
		raw := make([]byte, j.rawLen)
		var err error
		if j.codec == nil {
			copy(raw, j.comp)
		} else {
			err = j.codec.Decompress(raw, j.comp)
		}
		if err == nil {
			if got := crc32.ChecksumIEEE(raw); got != j.crc {
				err = fmt.Errorf("%w: block CRC mismatch: %#08x != %#08x", ErrCorrupt, got, j.crc)
			}
		}
		if err != nil {
			j.res <- wres{err: err}
		} else {
			obsBlocksUnpacked.Inc()
			j.res <- wres{framed: raw}
		}
	}
}

// dispatch reads framed blocks and fans them out until the terminator,
// a read error, or Close.
func (zr *Reader) dispatch(r io.Reader, codecID uint8, frameC Codec, jobs chan<- rjob) {
	defer close(jobs)
	var hdr [blockHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			zr.deliverErr(fmt.Errorf("%w: truncated frame: %w", ErrCorrupt, err))
			return
		}
		compLen, rawLen, crc, _, err := parseBlockHeader(hdr[:])
		if err != nil {
			zr.deliverErr(err)
			return
		}
		if rawLen == 0 {
			if compLen != 0 || crc != 0 {
				zr.deliverErr(fmt.Errorf("%w: malformed terminator", ErrCorrupt))
				return
			}
			close(zr.out) // clean EOF
			return
		}
		// All plausibility checks (length bounds, flag-bit validity,
		// codec resolution) run before the coded bytes are allocated.
		n, dec, err := resolveBlock(codecID, frameC, compLen, rawLen)
		if err != nil {
			zr.deliverErr(err)
			return
		}
		comp := make([]byte, n)
		if _, err := io.ReadFull(r, comp); err != nil {
			zr.deliverErr(fmt.Errorf("%w: truncated block: %w", ErrCorrupt, err))
			return
		}
		res := make(chan wres, 1)
		select {
		case zr.out <- res:
		case <-zr.stop:
			return
		}
		select {
		case jobs <- rjob{comp: comp, rawLen: int(rawLen), crc: crc, codec: dec, res: res}:
		case <-zr.stop:
			return
		}
	}
}

func (zr *Reader) deliverErr(err error) {
	res := make(chan wres, 1)
	res <- wres{err: err}
	select {
	case zr.out <- res:
		close(zr.out)
	case <-zr.stop:
	}
}

// Read implements io.Reader, returning io.EOF after the terminator.
func (zr *Reader) Read(p []byte) (int, error) {
	for zr.err == nil && len(zr.cur) == 0 {
		res, ok := <-zr.out
		if !ok {
			zr.err = io.EOF
			break
		}
		r := <-res
		if r.err != nil {
			zr.err = r.err
			break
		}
		zr.cur = r.framed
	}
	if len(zr.cur) == 0 {
		return 0, zr.err
	}
	n := copy(p, zr.cur)
	zr.cur = zr.cur[n:]
	return n, nil
}

// Close releases the dispatcher and worker pool. Safe to call more than
// once; returns nil.
func (zr *Reader) Close() error {
	select {
	case <-zr.stop:
	default:
		close(zr.stop)
	}
	// Drain any delivered blocks so workers never block on res sends.
	for {
		select {
		case res, ok := <-zr.out:
			if !ok {
				return nil
			}
			select {
			case <-res:
			default:
			}
		default:
			return nil
		}
	}
}

// MaybeReader sniffs r: if it begins with a compress frame, it returns a
// parallel decompressing reader; otherwise it returns a reader that
// replays r unchanged (v1 raw-stream fallback). The returned ReadCloser
// must be Closed to release the worker pool in the compressed case.
func MaybeReader(r io.Reader) (io.ReadCloser, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(frameMagic))
	if err != nil || !hasMagic(head) {
		// Short or raw stream: hand back the buffered reader untouched.
		return io.NopCloser(br), nil
	}
	zr, err := NewReader(br, 0)
	if err != nil {
		return nil, err
	}
	return zr, nil
}
