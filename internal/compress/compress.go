// Package compress implements DejaView's block-based storage compression
// (§4.1): the paper keeps a full day of display, checkpoint, and file
// system history in a few GB by compressing everything it logs. Streams
// are split into independent fixed-size blocks wrapped in a
// self-describing frame — magic, codec id, per-block uncompressed length
// and CRC32 — and a worker pool compresses or decompresses blocks in
// parallel (pigz-style), so Save/Open throughput scales with GOMAXPROCS
// while any single corrupt block is detected rather than silently
// decoded.
//
// Two entry points cover the two storage shapes: Pack/Unpack for
// in-memory streams (the display record's command, screenshot, and
// timeline logs) and Writer/Reader for io-streamed archives (checkpoint
// image chains, the text index, the file system log).
package compress

import (
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Codec ids recorded in the frame header. Ids are part of the on-disk
// format; never renumber them.
const (
	// CodecRaw stores blocks verbatim (still framed and checksummed).
	CodecRaw uint8 = 0
	// CodecFlate entropy-codes blocks with stdlib DEFLATE.
	CodecFlate uint8 = 1
	// CodecLZS codes blocks with the project-native byte-aligned LZSS
	// sliding-window codec (see lzs.go): much faster than DEFLATE on the
	// repetition-heavy display streams at comparable ratio.
	CodecLZS uint8 = 2
	// CodecAuto is a frame-level strategy, not a block codec: the packer
	// samples each block's byte entropy and 4-gram repeat density and
	// codes it raw, lzs, or flate independently; the choice is recorded
	// per block in the block header's codec bits. This is the default.
	CodecAuto uint8 = 3
)

// CodecIDByName resolves a CLI-facing codec name ("raw", "flate",
// "lzs", "auto") to its frame id.
func CodecIDByName(name string) (uint8, bool) {
	switch name {
	case "raw":
		return CodecRaw, true
	case "flate":
		return CodecFlate, true
	case "lzs":
		return CodecLZS, true
	case "auto":
		return CodecAuto, true
	}
	return 0, false
}

// ErrCorrupt reports a structurally invalid or checksum-failing frame.
var ErrCorrupt = errors.New("compress: corrupt frame")

// ErrUnknownCodec reports a frame whose codec id is not registered.
var ErrUnknownCodec = errors.New("compress: unknown codec")

// Frame layout constants.
const (
	frameVersion = 2 // the "v2 container" of the record store

	headerSize      = 8  // magic(4) version(1) codec(1) reserved(2)
	blockHeaderSize = 12 // compLen(4) rawLen(4) crc32(4)

	// storedRawBit in a block's compLen marks a block kept verbatim
	// because entropy coding did not shrink it (incompressible data).
	storedRawBit = 1 << 31

	// blockCodecShift/blockCodecMask carve bits 27-29 of a block's
	// compLen for the block's codec id in CodecAuto frames (compLen
	// proper is bounded by MaxBlockSize = 2^26, so the bits were always
	// zero in earlier v2 frames). In single-codec frames the bits must
	// be zero; in auto frames every coded block carries the id it was
	// coded with, and stored blocks keep using storedRawBit.
	blockCodecShift = 27
	blockCodecMask  = uint32(7) << blockCodecShift

	// MaxBlockSize bounds a single block's uncompressed length; a frame
	// claiming more is corrupt (guards allocation on hostile input).
	MaxBlockSize = 64 << 20

	// maxBlockRatio bounds how much a coded block may claim to expand.
	// DEFLATE tops out near 1032:1; anything past 2048:1 (plus a little
	// slack for tiny blocks) cannot have come from our Pack and is
	// rejected before the claimed bytes are allocated, so a few hundred
	// hostile header bytes cannot demand gigabytes of output.
	maxBlockRatio = 2048

	// DefaultBlockSize balances parallelism against per-block codec
	// state and dictionary-reset cost.
	DefaultBlockSize = 256 << 10
)

var frameMagic = [4]byte{'D', 'V', 'Z', 'B'}

// hasMagic reports whether b begins with the frame magic bytes.
func hasMagic(b []byte) bool {
	return len(b) >= len(frameMagic) &&
		b[0] == frameMagic[0] && b[1] == frameMagic[1] &&
		b[2] == frameMagic[2] && b[3] == frameMagic[3]
}

// IsFrame reports whether b begins with a compress frame header, i.e.
// was written by Pack or Writer rather than being a raw v1 stream.
func IsFrame(b []byte) bool {
	return len(b) >= headerSize && hasMagic(b)
}

// FrameCodec reports the frame-level codec id recorded in a frame
// header (CodecAuto for adaptive frames). It reads only the header, so
// callers can cheaply decide whether a stream already uses the codec
// they would rewrite it with.
func FrameCodec(b []byte) (uint8, error) {
	if !IsFrame(b) {
		return 0, fmt.Errorf("%w: not a frame", ErrCorrupt)
	}
	if b[4] != frameVersion {
		return 0, fmt.Errorf("%w: frame version %d", ErrCorrupt, b[4])
	}
	return b[5], nil
}

// Options configure packing. The zero value selects CodecAuto (adaptive
// per-block raw/lzs/flate selection) with DefaultBlockSize blocks and
// GOMAXPROCS workers.
type Options struct {
	// Codec is the codec id (CodecAuto unless set).
	Codec uint8
	// Level is the flate compression level (flate.DefaultCompression
	// when zero; ignored by CodecRaw).
	Level int
	// BlockSize is the uncompressed bytes per block.
	BlockSize int
	// Workers caps the compression/decompression worker pool.
	Workers int

	// BlockTable appends a seekable block-offset table after the frame
	// terminator (see table.go): sequential readers never see it, while
	// FrameFile uses it to demand-decode individual blocks for lazy
	// archive opens. All current savers enable it; older table-less
	// frames keep opening via the sequential path.
	BlockTable bool

	// codecSet distinguishes an explicit CodecRaw from the zero value.
	codecSet bool
}

// WithCodec returns o with an explicit codec id (required to select
// CodecRaw, whose id collides with the zero value).
func (o Options) WithCodec(id uint8) Options {
	o.Codec = id
	o.codecSet = true
	return o
}

func (o Options) withDefaults() Options {
	if !o.codecSet && o.Codec == 0 {
		o.Codec = CodecAuto
	}
	if o.Level == 0 {
		o.Level = flate.DefaultCompression
	}
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.BlockSize > MaxBlockSize {
		o.BlockSize = MaxBlockSize
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// A Codec turns one block of bytes into its coded form and back. Codecs
// must be safe for concurrent use: the worker pool calls them from many
// goroutines.
type Codec interface {
	// ID is the codec's frame id.
	ID() uint8
	// Name is a human-readable codec name for diagnostics.
	Name() string
	// Compress appends the coded form of src to dst.
	Compress(dst, src []byte, level int) ([]byte, error)
	// Decompress fills dst (sized to the block's uncompressed length)
	// from the coded bytes in src.
	Decompress(dst, src []byte) error
}

var (
	codecMu  sync.RWMutex
	codecsByID = map[uint8]Codec{}
)

// Register installs a codec by id; later registrations replace earlier
// ones. The stdlib codecs are pre-registered.
func Register(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	codecsByID[c.ID()] = c
}

func codecByID(id uint8) (Codec, error) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecsByID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownCodec, id)
	}
	return c, nil
}

func init() {
	Register(rawCodec{})
	Register(flateCodec{})
	Register(lzsCodec{})
}

// rawCodec stores blocks verbatim.
type rawCodec struct{}

func (rawCodec) ID() uint8    { return CodecRaw }
func (rawCodec) Name() string { return "raw" }

func (rawCodec) Compress(dst, src []byte, _ int) ([]byte, error) {
	return append(dst, src...), nil
}

func (rawCodec) Decompress(dst, src []byte) error {
	if len(src) != len(dst) {
		return fmt.Errorf("%w: raw block is %d bytes, want %d", ErrCorrupt, len(src), len(dst))
	}
	copy(dst, src)
	return nil
}

// flateCodec entropy-codes blocks with stdlib DEFLATE, pooling writer
// and reader state per level (flate writers are expensive to allocate).
type flateCodec struct{}

func (flateCodec) ID() uint8    { return CodecFlate }
func (flateCodec) Name() string { return "flate" }

// appendWriter lets a flate.Writer emit directly into an append-grown
// slice without an intermediate buffer copy.
type appendWriter struct{ b []byte }

func (aw *appendWriter) Write(p []byte) (int, error) {
	aw.b = append(aw.b, p...)
	return len(p), nil
}

var flateWriterPools sync.Map // level -> *sync.Pool of *flate.Writer

func getFlateWriter(w io.Writer, level int) (*flate.Writer, *sync.Pool, error) {
	pi, ok := flateWriterPools.Load(level)
	if !ok {
		pi, _ = flateWriterPools.LoadOrStore(level, &sync.Pool{})
	}
	pool := pi.(*sync.Pool)
	if zw, ok := pool.Get().(*flate.Writer); ok {
		zw.Reset(w)
		return zw, pool, nil
	}
	zw, err := flate.NewWriter(w, level)
	if err != nil {
		return nil, nil, err
	}
	return zw, pool, nil
}

func (flateCodec) Compress(dst, src []byte, level int) ([]byte, error) {
	aw := &appendWriter{b: dst}
	zw, pool, err := getFlateWriter(aw, level)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(src); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	pool.Put(zw)
	return aw.b, nil
}

var flateReaderPool = sync.Pool{}

func (flateCodec) Decompress(dst, src []byte) error {
	var zr io.ReadCloser
	if pooled, ok := flateReaderPool.Get().(io.ReadCloser); ok {
		if err := pooled.(flate.Resetter).Reset(&byteReader{b: src}, nil); err != nil {
			return err
		}
		zr = pooled
	} else {
		zr = flate.NewReader(&byteReader{b: src})
	}
	if _, err := io.ReadFull(zr, dst); err != nil {
		return fmt.Errorf("%w: flate block: %v", ErrCorrupt, err)
	}
	// The block must decode to exactly the declared length.
	var one [1]byte
	if n, _ := zr.Read(one[:]); n != 0 {
		return fmt.Errorf("%w: flate block longer than declared", ErrCorrupt)
	}
	if err := zr.Close(); err != nil {
		return fmt.Errorf("%w: flate block: %v", ErrCorrupt, err)
	}
	flateReaderPool.Put(zr)
	return nil
}

// byteReader is a minimal allocation-free bytes reader for pooled flate
// readers (bytes.Reader would also work; this avoids retaining large
// backing arrays in the pool via Reset).
type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	c := r.b[r.i]
	r.i++
	return c, nil
}
