package compress

// Seekable block table: lazy archive open needs random access into a
// frame without decoding it front to back. Writers that enable
// Options.BlockTable append, AFTER the frame terminator, a table of
// per-block file offsets plus a fixed-size footer at the very end of
// the stream:
//
//	entry[i] (16 bytes):  blockOff u64 | compLen u32 | rawLen u32
//	footer  (20 bytes):   tableOff u64 | count u32 | crc32(table) u32 | "DVBT"
//
// blockOff is the file offset of block i's header; compLen is the raw
// header field including the storedRawBit and codec bits, so a reader
// can resolve the block codec without touching the block itself.
// Because the table sits past the terminator, sequential readers
// (Unpack, Reader) never see it — a table-bearing frame is fully
// backward compatible, and table-less frames from older saves simply
// fall back to a full sequential decode (ErrNoBlockTable).
//
// FrameFile is the random-access reader: it validates the table against
// the same per-block plausibility rules as Unpack (strict offset
// chaining, bounded lengths) before any payload allocation, then
// demand-decodes only the blocks covering each ReadAt, keeping a small
// decoded-block cache.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"dejaview/internal/failpoint"
)

const (
	tableEntrySize  = 16
	tableFooterSize = 20

	// frameFileCacheBlocks sizes the private decoded-block cache a
	// FrameFile falls back to when no shared BlockCache is installed:
	// enough that a sequential scan through a block re-reads nothing,
	// small enough that a lazy archive stays lazy. The byte budget is
	// this many default-sized blocks.
	frameFileCacheBlocks = 8
)

var tableMagic = [4]byte{'D', 'V', 'B', 'T'}

// ErrNoBlockTable reports a frame without a trailing block table (an
// older save); callers fall back to a sequential full decode.
var ErrNoBlockTable = errors.New("compress: frame has no block table")

// tableEntry is one block's table record on the write side.
type tableEntry struct {
	off     int64  // file offset of the block header
	compLen uint32 // raw header field, flag bits included
	rawLen  uint32
}

// appendBlockTable appends the serialized table and footer to dst;
// tableOff is the file offset at which the table begins (one past the
// terminator).
func appendBlockTable(dst []byte, entries []tableEntry, tableOff int64) []byte {
	tbl := make([]byte, 0, len(entries)*tableEntrySize)
	var b [tableEntrySize]byte
	for _, e := range entries {
		binary.LittleEndian.PutUint64(b[0:], uint64(e.off))
		binary.LittleEndian.PutUint32(b[8:], e.compLen)
		binary.LittleEndian.PutUint32(b[12:], e.rawLen)
		tbl = append(tbl, b[:]...)
	}
	dst = append(dst, tbl...)
	var f [tableFooterSize]byte
	binary.LittleEndian.PutUint64(f[0:], uint64(tableOff))
	binary.LittleEndian.PutUint32(f[8:], uint32(len(entries)))
	binary.LittleEndian.PutUint32(f[12:], crc32.ChecksumIEEE(tbl))
	copy(f[16:], tableMagic[:])
	return append(dst, f[:]...)
}

// HasBlockTable sniffs a frame's tail for the block-table footer.
func HasBlockTable(frame []byte) bool {
	return len(frame) >= tableFooterSize &&
		bytes.Equal(frame[len(frame)-4:], tableMagic[:])
}

// TrimTable returns the sequential portion of frame — header, blocks,
// terminator — without any trailing block table. Frames it cannot walk
// are returned unchanged. Golden-format tests use it to compare a
// table-bearing save against table-less fixture bytes.
func TrimTable(frame []byte) []byte {
	codecID, body, err := parseHeader(frame)
	if err != nil {
		return frame
	}
	frameC, err := frameDecoder(codecID)
	if err != nil {
		return frame
	}
	off := headerSize
	for {
		compLen, rawLen, crc, rest, err := parseBlockHeader(body)
		if err != nil {
			return frame
		}
		body = rest
		off += blockHeaderSize
		if rawLen == 0 {
			if compLen != 0 || crc != 0 {
				return frame
			}
			return frame[:off]
		}
		n, _, err := resolveBlock(codecID, frameC, compLen, rawLen)
		if err != nil || uint64(n) > uint64(len(body)) {
			return frame
		}
		body = body[n:]
		off += int(n)
	}
}

// fentry is one validated block on the read side.
type fentry struct {
	off    int64
	n      uint32 // coded payload length (flag bits stripped)
	rawLen uint32
	dec    Codec // nil for stored blocks
}

// FrameFile reads a table-bearing frame with random access: ReadAt
// decodes only the blocks covering the requested raw range. It is safe
// for concurrent use.
type FrameFile struct {
	r       io.ReaderAt
	size    int64
	codecID uint8
	entries []fentry
	rawOffs []int64 // cumulative raw offsets, len(entries)+1

	// loadHook, when set (before concurrent use), observes every block
	// decoded on demand — core counts lazy block loads through it.
	loadHook func(blocks int)

	// id namespaces this frame's blocks inside bcache, which is either
	// the private per-file cache installed at open or a shared archive
	// cache swapped in with SetBlockCache.
	id     uint64
	bcache *BlockCache

	// mu serializes demand decoding, so concurrent readers of one frame
	// never decode the same block twice.
	mu sync.Mutex
}

// OpenFrameAt opens a frame of the given size over r. It returns
// ErrNoBlockTable when the frame carries no table (older saves), and
// ErrCorrupt for structurally invalid tables.
func OpenFrameAt(r io.ReaderAt, size int64) (*FrameFile, error) {
	var hdr [headerSize]byte
	if size < headerSize {
		return nil, fmt.Errorf("%w: %d-byte frame is shorter than the header", ErrCorrupt, size)
	}
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("%w: frame header: %v", ErrCorrupt, err)
	}
	codecID, _, err := parseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	frameC, err := frameDecoder(codecID)
	if err != nil {
		return nil, err
	}
	// Minimal table-bearing frame: header + terminator + footer.
	if size < headerSize+blockHeaderSize+tableFooterSize {
		return nil, ErrNoBlockTable
	}
	var foot [tableFooterSize]byte
	if _, err := r.ReadAt(foot[:], size-tableFooterSize); err != nil {
		return nil, fmt.Errorf("%w: table footer: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(foot[16:20], tableMagic[:]) {
		return nil, ErrNoBlockTable
	}
	tableOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	count := binary.LittleEndian.Uint32(foot[8:])
	wantCRC := binary.LittleEndian.Uint32(foot[12:])
	// Geometry first: the table must exactly fill [tableOff, footer), and
	// count is bounded by that span before the table bytes are allocated.
	if tableOff < headerSize+blockHeaderSize ||
		int64(count) > (size-tableFooterSize-tableOff)/tableEntrySize ||
		tableOff+int64(count)*tableEntrySize+tableFooterSize != size {
		return nil, fmt.Errorf("%w: bad block-table geometry (off %d count %d size %d)",
			ErrCorrupt, tableOff, count, size)
	}
	tbl := make([]byte, int64(count)*tableEntrySize)
	if _, err := r.ReadAt(tbl, tableOff); err != nil {
		return nil, fmt.Errorf("%w: block table: %v", ErrCorrupt, err)
	}
	if got := crc32.ChecksumIEEE(tbl); got != wantCRC {
		return nil, fmt.Errorf("%w: block table CRC mismatch: %#08x != %#08x", ErrCorrupt, got, wantCRC)
	}

	f := &FrameFile{
		r:       r,
		size:    size,
		codecID: codecID,
		entries: make([]fentry, count),
		rawOffs: make([]int64, count+1),
		id:      frameFileIDs.Add(1),
		bcache:  NewBlockCache(frameFileCacheBlocks * DefaultBlockSize),
	}
	// Entries must chain exactly: block i+1's header starts where block
	// i's payload ends, and the terminator sits between the last block
	// and the table. Anything else is a forged or stale table.
	expect := int64(headerSize)
	for i := range f.entries {
		e := tbl[i*tableEntrySize:]
		off := int64(binary.LittleEndian.Uint64(e[0:]))
		compLen := binary.LittleEndian.Uint32(e[8:])
		rawLen := binary.LittleEndian.Uint32(e[12:])
		if rawLen == 0 {
			return nil, fmt.Errorf("%w: block table lists a terminator", ErrCorrupt)
		}
		n, dec, err := resolveBlock(codecID, frameC, compLen, rawLen)
		if err != nil {
			return nil, err
		}
		if off != expect {
			return nil, fmt.Errorf("%w: table entry %d at offset %d, want %d", ErrCorrupt, i, off, expect)
		}
		expect = off + blockHeaderSize + int64(n)
		f.entries[i] = fentry{off: off, n: n, rawLen: rawLen, dec: dec}
		f.rawOffs[i+1] = f.rawOffs[i] + int64(rawLen)
	}
	if expect+blockHeaderSize != tableOff {
		return nil, fmt.Errorf("%w: table ends at %d, terminator expected at %d", ErrCorrupt, tableOff, expect)
	}
	return f, nil
}

// OpenFrameBytes is OpenFrameAt over an in-memory frame.
func OpenFrameBytes(frame []byte) (*FrameFile, error) {
	return OpenFrameAt(bytes.NewReader(frame), int64(len(frame)))
}

// SetLoadHook installs a callback observing every demand-decoded block.
// Call before the FrameFile is used concurrently.
func (f *FrameFile) SetLoadHook(hook func(blocks int)) { f.loadHook = hook }

// SetBlockCache swaps the private per-file cache for a shared one, so
// every stream of an archive draws on a single byte budget. Call before
// the FrameFile is used concurrently; a nil cache restores a fresh
// private cache.
func (f *FrameFile) SetBlockCache(bc *BlockCache) {
	if bc == nil {
		bc = NewBlockCache(frameFileCacheBlocks * DefaultBlockSize)
	}
	f.bcache = bc
}

// NumBlocks reports the block count.
func (f *FrameFile) NumBlocks() int { return len(f.entries) }

// RawSize reports the frame's total uncompressed length.
func (f *FrameFile) RawSize() int64 { return f.rawOffs[len(f.rawOffs)-1] }

// blockFor locates the block containing raw offset off.
func (f *FrameFile) blockFor(off int64) int {
	return sort.Search(len(f.entries), func(i int) bool { return f.rawOffs[i+1] > off })
}

// block returns block i's decoded bytes, reading and decoding it on
// first touch. The returned slice is shared with the cache: it must not
// escape this package unmodified and uncopied — ReadAt copies out of it
// and Block returns a defensive copy, so external callers can never
// corrupt a resident block (the ownership contract is pinned by
// TestBlockOwnership).
func (f *FrameFile) block(i int) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if blk, ok := f.bcache.get(f.id, i); ok {
		return blk, nil
	}
	e := f.entries[i]
	comp := make([]byte, e.n) // bounded: resolveBlock validated e.n at open
	sec := io.NewSectionReader(f.r, e.off+blockHeaderSize, int64(e.n))
	if _, err := io.ReadFull(failpoint.Reader("compress/readat", sec), comp); err != nil {
		return nil, fmt.Errorf("%w: block %d read: %v", ErrCorrupt, i, err)
	}
	var hdr [blockHeaderSize]byte
	if _, err := io.ReadFull(failpoint.Reader("compress/readat", io.NewSectionReader(f.r, e.off, blockHeaderSize)), hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: block %d header read: %v", ErrCorrupt, i, err)
	}
	crc := binary.LittleEndian.Uint32(hdr[8:])
	raw := make([]byte, e.rawLen)
	if e.dec == nil {
		copy(raw, comp)
	} else if err := e.dec.Decompress(raw, comp); err != nil {
		return nil, fmt.Errorf("block %d: %w", i, err)
	}
	if got := crc32.ChecksumIEEE(raw); got != crc {
		return nil, fmt.Errorf("%w: block %d CRC mismatch: %#08x != %#08x", ErrCorrupt, i, got, crc)
	}
	obsBlocksUnpacked.Inc()
	if f.loadHook != nil {
		f.loadHook(1)
	}
	f.bcache.put(f.id, i, raw)
	return raw, nil
}

// Block returns a copy of block i's decoded bytes. The copy is the
// caller's to keep and mutate; the cache-resident block is never handed
// out directly.
func (f *FrameFile) Block(i int) ([]byte, error) {
	if i < 0 || i >= len(f.entries) {
		return nil, fmt.Errorf("%w: block %d of %d", ErrCorrupt, i, len(f.entries))
	}
	blk, err := f.block(i)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), blk...), nil
}

// ReadAt implements io.ReaderAt over the frame's uncompressed bytes,
// decoding only the covering blocks.
func (f *FrameFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset %d", ErrCorrupt, off)
	}
	total := f.RawSize()
	n := 0
	for n < len(p) && off < total {
		bi := f.blockFor(off)
		blk, err := f.block(bi)
		if err != nil {
			return n, err
		}
		c := copy(p[n:], blk[off-f.rawOffs[bi]:])
		n += c
		off += int64(c)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// SequentialReader returns an io.Reader over the uncompressed bytes,
// decoding blocks as the cursor reaches them (lazy metadata reads).
func (f *FrameFile) SequentialReader() io.Reader { return &frameCursor{f: f} }

type frameCursor struct {
	f   *FrameFile
	off int64
}

func (c *frameCursor) Read(p []byte) (int, error) {
	if c.off >= c.f.RawSize() {
		return 0, io.EOF
	}
	n, err := c.f.ReadAt(p, c.off)
	c.off += int64(n)
	if n > 0 && errors.Is(err, io.EOF) {
		err = nil // partial fill at the tail: EOF on the next call
	}
	return n, err
}
