package compress

// BlockCache: a byte-bounded LRU of decoded blocks, shared across all of
// an archive's streams (checkpoint images, commands, screenshots,
// timeline). PR 8's lazy open made cold archives cheap to open but
// re-decoded a block on every demand load; the cache makes repeated
// time-machine seeks decode each block at most once while within budget
// (ROADMAP item (c), DejaView §4.4's LRU screenshot caching generalized
// to the storage layer).
//
// Each FrameFile gets a process-unique id at open, so one cache serves
// many frames without key collisions. Cached slices are shared: the only
// readers are FrameFile.ReadAt (which copies out into the caller's
// buffer) and FrameFile.Block (which returns a defensive copy), so a
// mutating caller can never corrupt a resident block.

import (
	"sync/atomic"

	"dejaview/internal/lru"
)

// DefaultBlockCacheBytes is the decoded-block budget used when a caller
// opens an archive without choosing one: 128 default-sized blocks.
const DefaultBlockCacheBytes = int64(128) * DefaultBlockSize

// frameFileIDs hands each opened FrameFile a unique cache-key namespace.
var frameFileIDs atomic.Uint64

// blockKey identifies one decoded block of one open frame.
type blockKey struct {
	file uint64
	idx  int
}

// BlockCache is a byte-bounded LRU of decoded blocks, safe for
// concurrent use. Install hooks with SetHooks before sharing it across
// goroutines.
type BlockCache struct {
	c *lru.Cache[blockKey, []byte]

	// Hit/miss hooks observe cache outcomes from FrameFile.block so the
	// owning layer (core) can expose its own instruments; the obs-name
	// rule pins core.* counters to package core, so compress only offers
	// the hook points.
	onHit, onMiss func(blocks int)
}

// NewBlockCache creates a cache holding at most budget decoded bytes;
// budget <= 0 disables caching (every lookup misses and nothing is
// retained).
func NewBlockCache(budget int64) *BlockCache {
	return &BlockCache{c: lru.NewBytes[blockKey, []byte](budget)}
}

// SetHooks installs observers for hits, misses, and evictions (evicted
// decoded bytes). Any hook may be nil. Call before the cache is shared
// across goroutines.
func (bc *BlockCache) SetHooks(onHit, onMiss func(blocks int), onEvict func(bytes int64)) {
	bc.onHit, bc.onMiss = onHit, onMiss
	if onEvict == nil {
		bc.c.OnEvict(nil)
	} else {
		bc.c.OnEvict(func(_ blockKey, _ []byte, cost int64) { onEvict(cost) })
	}
}

// Stats reports cache accounting: outcome counts, eviction totals, and
// residency against the budget.
func (bc *BlockCache) Stats() BlockCacheStats {
	hits, misses := bc.c.Stats()
	evictions, evictedBytes := bc.c.EvictStats()
	return BlockCacheStats{
		Hits:         hits,
		Misses:       misses,
		Evictions:    evictions,
		EvictedBytes: evictedBytes,
		UsedBytes:    bc.c.Used(),
		BudgetBytes:  bc.c.Budget(),
		Blocks:       bc.c.Len(),
	}
}

// BlockCacheStats is a point-in-time snapshot of a BlockCache.
type BlockCacheStats struct {
	Hits, Misses            uint64
	Evictions, EvictedBytes uint64
	UsedBytes, BudgetBytes  int64
	Blocks                  int
}

// get returns the resident decoded block, bumping the hit hook.
func (bc *BlockCache) get(file uint64, idx int) ([]byte, bool) {
	blk, ok := bc.c.Get(blockKey{file, idx})
	if ok && bc.onHit != nil {
		bc.onHit(1)
	}
	return blk, ok
}

// put inserts a freshly decoded block at its byte cost, bumping the miss
// hook. Blocks larger than the whole budget are simply not retained.
func (bc *BlockCache) put(file uint64, idx int, blk []byte) {
	if bc.onMiss != nil {
		bc.onMiss(1)
	}
	bc.c.PutCost(blockKey{file, idx}, blk, int64(len(blk)))
}
