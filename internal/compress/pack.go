package compress

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"dejaview/internal/obs"
)

// Registry instruments for the block pipeline. Every block that goes
// through Pack/Writer bumps blocks_packed, every block through
// Unpack/Reader bumps blocks_unpacked — so for any saved-then-reopened
// artifact the two deltas must agree, which the e2e metrics-regression
// test locks in.
var (
	obsBlocksPacked   = obs.Default.Counter("compress.blocks_packed")
	obsBlocksUnpacked = obs.Default.Counter("compress.blocks_unpacked")
	obsPackMS         = obs.Default.Histogram("compress.pack_ms", obs.LatencyBuckets...)
	obsUnpackMS       = obs.Default.Histogram("compress.unpack_ms", obs.LatencyBuckets...)
	obsPoolDepth      = obs.Default.Histogram("compress.pool_depth", obs.DepthBuckets...)
	obsPoolInflight   = obs.Default.Gauge("compress.pool_inflight")
)

// Pack compresses data into a self-contained frame: a header followed by
// independently coded blocks, each carrying its uncompressed length and
// a CRC32 of its uncompressed bytes. Blocks are compressed in parallel
// by o.Workers goroutines; a block that entropy coding fails to shrink
// is stored verbatim (with the storedRawBit marker) so Pack never
// expands incompressible data by more than the fixed framing overhead.
func Pack(data []byte, o Options) ([]byte, error) {
	t0 := obs.StartTimer()
	defer t0.Done(obsPackMS)
	o = o.withDefaults()
	c, err := codecByID(o.Codec)
	if err != nil {
		return nil, err
	}
	nBlocks := (len(data) + o.BlockSize - 1) / o.BlockSize

	blocks := make([][]byte, nBlocks)
	crcs := make([]uint32, nBlocks)
	compressBlock := func(i int) error {
		raw := data[i*o.BlockSize : min((i+1)*o.BlockSize, len(data))]
		crcs[i] = crc32.ChecksumIEEE(raw)
		enc, err := c.Compress(make([]byte, 0, len(raw)/2+64), raw, o.Level)
		if err != nil {
			return err
		}
		blocks[i] = enc
		return nil
	}
	if err := runBlocks(nBlocks, o.Workers, compressBlock); err != nil {
		return nil, err
	}
	obsBlocksPacked.Add(uint64(nBlocks))

	// Assemble sequentially: header, coded blocks, terminator.
	total := headerSize + blockHeaderSize // terminator
	for i, enc := range blocks {
		raw := blockLen(i, o.BlockSize, len(data))
		total += blockHeaderSize + min(len(enc), raw)
	}
	out := make([]byte, 0, total)
	out = appendHeader(out, o.Codec)
	for i, enc := range blocks {
		rawLen := blockLen(i, o.BlockSize, len(data))
		if len(enc) >= rawLen {
			// Incompressible: store the original bytes.
			out = appendBlockHeader(out, uint32(rawLen)|storedRawBit, uint32(rawLen), crcs[i])
			out = append(out, data[i*o.BlockSize:i*o.BlockSize+rawLen]...)
		} else {
			out = appendBlockHeader(out, uint32(len(enc)), uint32(rawLen), crcs[i])
			out = append(out, enc...)
		}
	}
	out = appendBlockHeader(out, 0, 0, 0) // terminator
	return out, nil
}

// Unpack decodes a frame produced by Pack (or Writer), decompressing
// blocks in parallel and verifying every block's CRC32. It returns
// ErrCorrupt (possibly wrapped) for truncated frames, bad magic, CRC
// mismatches, and implausible block lengths.
func Unpack(frame []byte) ([]byte, error) {
	return UnpackWorkers(frame, 0)
}

// UnpackWorkers is Unpack with an explicit worker count (0 = GOMAXPROCS).
func UnpackWorkers(frame []byte, workers int) ([]byte, error) {
	t0 := obs.StartTimer()
	defer t0.Done(obsUnpackMS)
	codecID, body, err := parseHeader(frame)
	if err != nil {
		return nil, err
	}
	c, err := codecByID(codecID)
	if err != nil {
		return nil, err
	}

	// First pass: walk the block headers to find the coded extents and
	// output offsets, validating lengths before any allocation.
	type extent struct {
		comp     []byte
		rawOff   int
		rawLen   int
		crc      uint32
		isStored bool
	}
	var extents []extent
	rawTotal := 0
	for {
		compLen, rawLen, crc, rest, err := parseBlockHeader(body)
		if err != nil {
			return nil, err
		}
		body = rest
		if rawLen == 0 {
			if compLen != 0 || crc != 0 {
				return nil, fmt.Errorf("%w: malformed terminator", ErrCorrupt)
			}
			break
		}
		isStored := compLen&storedRawBit != 0
		compLen &^= storedRawBit
		if rawLen > MaxBlockSize {
			return nil, fmt.Errorf("%w: block claims %d uncompressed bytes (max %d)", ErrCorrupt, rawLen, MaxBlockSize)
		}
		if isStored && compLen != rawLen {
			return nil, fmt.Errorf("%w: stored block lengths disagree (%d vs %d)", ErrCorrupt, compLen, rawLen)
		}
		if !isStored && (compLen >= rawLen || uint64(rawLen) > uint64(compLen)*maxBlockRatio+64) {
			return nil, fmt.Errorf("%w: implausible block expansion (%d coded to %d raw bytes)", ErrCorrupt, compLen, rawLen)
		}
		if uint64(compLen) > uint64(len(body)) {
			return nil, fmt.Errorf("%w: truncated block: %d coded bytes, %d remain", ErrCorrupt, compLen, len(body))
		}
		extents = append(extents, extent{
			comp:     body[:compLen],
			rawOff:   rawTotal,
			rawLen:   int(rawLen),
			crc:      crc,
			isStored: isStored,
		})
		rawTotal += int(rawLen)
		body = body[compLen:]
	}

	// Second pass: decompress blocks in parallel into disjoint ranges of
	// one output allocation.
	out := make([]byte, rawTotal)
	if workers <= 0 {
		workers = Options{}.withDefaults().Workers
	}
	decodeBlock := func(i int) error {
		e := extents[i]
		dst := out[e.rawOff : e.rawOff+e.rawLen]
		if e.isStored {
			copy(dst, e.comp)
		} else if err := c.Decompress(dst, e.comp); err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
		if got := crc32.ChecksumIEEE(dst); got != e.crc {
			return fmt.Errorf("%w: block %d CRC mismatch: %#08x != %#08x", ErrCorrupt, i, got, e.crc)
		}
		return nil
	}
	if err := runBlocks(len(extents), workers, decodeBlock); err != nil {
		return nil, err
	}
	obsBlocksUnpacked.Add(uint64(len(extents)))
	return out, nil
}

// runBlocks runs fn(0..n-1) across up to workers goroutines and returns
// the first error.
func runBlocks(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

func blockLen(i, blockSize, total int) int {
	return min((i+1)*blockSize, total) - i*blockSize
}

func appendHeader(dst []byte, codec uint8) []byte {
	dst = append(dst, frameMagic[:]...)
	return append(dst, frameVersion, codec, 0, 0)
}

func parseHeader(frame []byte) (codec uint8, body []byte, err error) {
	if len(frame) < headerSize {
		return 0, nil, fmt.Errorf("%w: %d-byte frame is shorter than the header", ErrCorrupt, len(frame))
	}
	if !IsFrame(frame) {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, frame[:4])
	}
	if frame[4] != frameVersion {
		return 0, nil, fmt.Errorf("%w: unsupported frame version %d", ErrCorrupt, frame[4])
	}
	return frame[5], frame[headerSize:], nil
}

func appendBlockHeader(dst []byte, compLen, rawLen, crc uint32) []byte {
	var h [blockHeaderSize]byte
	binary.LittleEndian.PutUint32(h[0:], compLen)
	binary.LittleEndian.PutUint32(h[4:], rawLen)
	binary.LittleEndian.PutUint32(h[8:], crc)
	return append(dst, h[:]...)
}

func parseBlockHeader(b []byte) (compLen, rawLen, crc uint32, rest []byte, err error) {
	if len(b) < blockHeaderSize {
		return 0, 0, 0, nil, fmt.Errorf("%w: truncated block header (%d bytes)", ErrCorrupt, len(b))
	}
	return binary.LittleEndian.Uint32(b[0:]),
		binary.LittleEndian.Uint32(b[4:]),
		binary.LittleEndian.Uint32(b[8:]),
		b[blockHeaderSize:], nil
}
