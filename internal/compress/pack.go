package compress

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"dejaview/internal/obs"
)

// Registry instruments for the block pipeline. Every block that goes
// through Pack/Writer bumps blocks_packed, every block through
// Unpack/Reader bumps blocks_unpacked — so for any saved-then-reopened
// artifact the two deltas must agree, which the e2e metrics-regression
// test locks in.
var (
	obsBlocksPacked   = obs.Default.Counter("compress.blocks_packed")
	obsBlocksUnpacked = obs.Default.Counter("compress.blocks_unpacked")
	obsPackMS         = obs.Default.Histogram("compress.pack_ms", obs.LatencyBuckets...)
	obsUnpackMS       = obs.Default.Histogram("compress.unpack_ms", obs.LatencyBuckets...)
	obsPoolDepth      = obs.Default.Histogram("compress.pool_depth", obs.DepthBuckets...)
	obsPoolInflight   = obs.Default.Gauge("compress.pool_inflight")
)

// Pack compresses data into a self-contained frame: a header followed by
// independently coded blocks, each carrying its uncompressed length and
// a CRC32 of its uncompressed bytes. Blocks are compressed in parallel
// by o.Workers goroutines; a block that entropy coding fails to shrink
// is stored verbatim (with the storedRawBit marker) so Pack never
// expands incompressible data by more than the fixed framing overhead.
func Pack(data []byte, o Options) ([]byte, error) {
	t0 := obs.StartTimer()
	defer t0.Done(obsPackMS)
	o = o.withDefaults()
	auto := o.Codec == CodecAuto
	var c Codec
	if !auto {
		var err error
		if c, err = codecByID(o.Codec); err != nil {
			return nil, err
		}
	}
	nBlocks := (len(data) + o.BlockSize - 1) / o.BlockSize

	blocks := make([][]byte, nBlocks)
	blockIDs := make([]uint8, nBlocks)
	crcs := make([]uint32, nBlocks)
	compressBlock := func(i int) error {
		raw := data[i*o.BlockSize : min((i+1)*o.BlockSize, len(data))]
		crcs[i] = crc32.ChecksumIEEE(raw)
		bc, id := c, o.Codec
		if auto {
			id = selectCodecID(raw)
			countAuto(id)
			if id == CodecRaw {
				blockIDs[i] = CodecRaw // store verbatim, skip coding
				return nil
			}
			var err error
			if bc, err = codecByID(id); err != nil {
				return err
			}
		}
		enc, err := bc.Compress(make([]byte, 0, len(raw)/2+64), raw, o.Level)
		if err != nil {
			return err
		}
		blocks[i] = enc
		blockIDs[i] = id
		return nil
	}
	if err := runBlocks(nBlocks, o.Workers, compressBlock); err != nil {
		return nil, err
	}
	obsBlocksPacked.Add(uint64(nBlocks))

	// Assemble sequentially: header, coded blocks, terminator.
	total := headerSize + blockHeaderSize // terminator
	for i, enc := range blocks {
		raw := blockLen(i, o.BlockSize, len(data))
		if enc == nil {
			total += blockHeaderSize + raw
		} else {
			total += blockHeaderSize + min(len(enc), raw)
		}
	}
	out := make([]byte, 0, total)
	out = appendHeader(out, o.Codec)
	var table []tableEntry
	for i, enc := range blocks {
		rawLen := blockLen(i, o.BlockSize, len(data))
		off := int64(len(out))
		var compLen uint32
		if enc == nil || len(enc) >= rawLen {
			// Selected raw, or coding failed to shrink: store the
			// original bytes.
			compLen = uint32(rawLen) | storedRawBit
			out = appendBlockHeader(out, compLen, uint32(rawLen), crcs[i])
			out = append(out, data[i*o.BlockSize:i*o.BlockSize+rawLen]...)
		} else {
			compLen = uint32(len(enc))
			if auto {
				compLen |= uint32(blockIDs[i]) << blockCodecShift
			}
			if blockIDs[i] == CodecLZS {
				obsLZSBlocks.Inc()
			}
			out = appendBlockHeader(out, compLen, uint32(rawLen), crcs[i])
			out = append(out, enc...)
		}
		if o.BlockTable {
			table = append(table, tableEntry{off: off, compLen: compLen, rawLen: uint32(rawLen)})
		}
	}
	out = appendBlockHeader(out, 0, 0, 0) // terminator
	if o.BlockTable {
		out = appendBlockTable(out, table, int64(len(out)))
	}
	return out, nil
}

// Unpack decodes a frame produced by Pack (or Writer), decompressing
// blocks in parallel and verifying every block's CRC32. It returns
// ErrCorrupt (possibly wrapped) for truncated frames, bad magic, CRC
// mismatches, and implausible block lengths.
func Unpack(frame []byte) ([]byte, error) {
	return UnpackWorkers(frame, 0)
}

// UnpackWorkers is Unpack with an explicit worker count (0 = GOMAXPROCS).
func UnpackWorkers(frame []byte, workers int) ([]byte, error) {
	t0 := obs.StartTimer()
	defer t0.Done(obsUnpackMS)
	codecID, body, err := parseHeader(frame)
	if err != nil {
		return nil, err
	}
	frameC, err := frameDecoder(codecID)
	if err != nil {
		return nil, err
	}

	// First pass: walk the block headers to find the coded extents and
	// output offsets, validating lengths before any allocation.
	type extent struct {
		comp   []byte
		rawOff int
		rawLen int
		crc    uint32
		codec  Codec // nil for stored blocks
	}
	var extents []extent
	rawTotal := 0
	for {
		compLen, rawLen, crc, rest, err := parseBlockHeader(body)
		if err != nil {
			return nil, err
		}
		body = rest
		if rawLen == 0 {
			if compLen != 0 || crc != 0 {
				return nil, fmt.Errorf("%w: malformed terminator", ErrCorrupt)
			}
			break
		}
		n, dec, err := resolveBlock(codecID, frameC, compLen, rawLen)
		if err != nil {
			return nil, err
		}
		if uint64(n) > uint64(len(body)) {
			return nil, fmt.Errorf("%w: truncated block: %d coded bytes, %d remain", ErrCorrupt, n, len(body))
		}
		extents = append(extents, extent{
			comp:   body[:n],
			rawOff: rawTotal,
			rawLen: int(rawLen),
			crc:    crc,
			codec:  dec,
		})
		rawTotal += int(rawLen)
		body = body[n:]
	}

	// Second pass: decompress blocks in parallel into disjoint ranges of
	// one output allocation.
	out := make([]byte, rawTotal)
	if workers <= 0 {
		workers = Options{}.withDefaults().Workers
	}
	decodeBlock := func(i int) error {
		e := extents[i]
		dst := out[e.rawOff : e.rawOff+e.rawLen]
		if e.codec == nil {
			copy(dst, e.comp)
		} else if err := e.codec.Decompress(dst, e.comp); err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
		if got := crc32.ChecksumIEEE(dst); got != e.crc {
			return fmt.Errorf("%w: block %d CRC mismatch: %#08x != %#08x", ErrCorrupt, i, got, e.crc)
		}
		return nil
	}
	if err := runBlocks(len(extents), workers, decodeBlock); err != nil {
		return nil, err
	}
	obsBlocksUnpacked.Add(uint64(len(extents)))
	return out, nil
}

// frameDecoder resolves a frame-header codec id to the codec decoding
// every block, or nil for CodecAuto frames (each block names its own).
func frameDecoder(id uint8) (Codec, error) {
	if id == CodecAuto {
		return nil, nil
	}
	return codecByID(id)
}

// resolveBlock validates one block header's flag bits against the frame
// codec and returns the coded payload length and the codec that decodes
// the block (nil for stored blocks). All length-plausibility checks run
// here, before any caller allocates for the block.
func resolveBlock(frameID uint8, frameC Codec, compLen, rawLen uint32) (n uint32, dec Codec, err error) {
	isStored := compLen&storedRawBit != 0
	blockID := uint8((compLen & blockCodecMask) >> blockCodecShift)
	n = compLen &^ (storedRawBit | blockCodecMask)
	if rawLen > MaxBlockSize {
		return 0, nil, fmt.Errorf("%w: block claims %d uncompressed bytes (max %d)", ErrCorrupt, rawLen, MaxBlockSize)
	}
	if frameID != CodecAuto && blockID != 0 {
		return 0, nil, fmt.Errorf("%w: block codec bits %d in single-codec frame", ErrCorrupt, blockID)
	}
	if isStored {
		if blockID != 0 {
			return 0, nil, fmt.Errorf("%w: stored block carries codec bits %d", ErrCorrupt, blockID)
		}
		if n != rawLen {
			return 0, nil, fmt.Errorf("%w: stored block lengths disagree (%d vs %d)", ErrCorrupt, n, rawLen)
		}
		return n, nil, nil
	}
	if n >= rawLen || uint64(rawLen) > uint64(n)*maxBlockRatio+64 {
		return 0, nil, fmt.Errorf("%w: implausible block expansion (%d coded to %d raw bytes)", ErrCorrupt, n, rawLen)
	}
	if frameID == CodecAuto {
		if blockID == 0 {
			return 0, nil, fmt.Errorf("%w: auto-frame coded block missing codec id", ErrCorrupt)
		}
		if dec, err = codecByID(blockID); err != nil {
			return 0, nil, err
		}
		return n, dec, nil
	}
	return n, frameC, nil
}

// FrameStats summarizes a frame without decoding any payload: the header
// codec id and how many blocks each codec actually coded. Stored blocks
// (verbatim bytes) count under "raw". Golden-format tests and dvbench
// use it to see what an adaptive frame actually chose.
type FrameStats struct {
	// Codec is the frame-header codec id (CodecAuto for adaptive frames).
	Codec uint8
	// Blocks is the total block count.
	Blocks int
	// PerCodec maps codec name ("raw", "lzs", "flate") to blocks coded
	// with it.
	PerCodec map[string]int
}

// Stats walks frame's block headers and reports the per-codec block
// distribution, validating structure as it goes.
func Stats(frame []byte) (*FrameStats, error) {
	codecID, body, err := parseHeader(frame)
	if err != nil {
		return nil, err
	}
	frameC, err := frameDecoder(codecID)
	if err != nil {
		return nil, err
	}
	st := &FrameStats{Codec: codecID, PerCodec: map[string]int{}}
	for {
		compLen, rawLen, crc, rest, err := parseBlockHeader(body)
		if err != nil {
			return nil, err
		}
		body = rest
		if rawLen == 0 {
			if compLen != 0 || crc != 0 {
				return nil, fmt.Errorf("%w: malformed terminator", ErrCorrupt)
			}
			return st, nil
		}
		n, dec, err := resolveBlock(codecID, frameC, compLen, rawLen)
		if err != nil {
			return nil, err
		}
		if uint64(n) > uint64(len(body)) {
			return nil, fmt.Errorf("%w: truncated block: %d coded bytes, %d remain", ErrCorrupt, n, len(body))
		}
		name := "raw"
		if dec != nil {
			name = dec.Name()
		}
		st.PerCodec[name]++
		st.Blocks++
		body = body[n:]
	}
}

// runBlocks runs fn(0..n-1) across up to workers goroutines and returns
// the first error.
func runBlocks(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

func blockLen(i, blockSize, total int) int {
	return min((i+1)*blockSize, total) - i*blockSize
}

func appendHeader(dst []byte, codec uint8) []byte {
	dst = append(dst, frameMagic[:]...)
	return append(dst, frameVersion, codec, 0, 0)
}

func parseHeader(frame []byte) (codec uint8, body []byte, err error) {
	if len(frame) < headerSize {
		return 0, nil, fmt.Errorf("%w: %d-byte frame is shorter than the header", ErrCorrupt, len(frame))
	}
	if !IsFrame(frame) {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, frame[:4])
	}
	if frame[4] != frameVersion {
		return 0, nil, fmt.Errorf("%w: unsupported frame version %d", ErrCorrupt, frame[4])
	}
	return frame[5], frame[headerSize:], nil
}

func appendBlockHeader(dst []byte, compLen, rawLen, crc uint32) []byte {
	var h [blockHeaderSize]byte
	binary.LittleEndian.PutUint32(h[0:], compLen)
	binary.LittleEndian.PutUint32(h[4:], rawLen)
	binary.LittleEndian.PutUint32(h[8:], crc)
	return append(dst, h[:]...)
}

func parseBlockHeader(b []byte) (compLen, rawLen, crc uint32, rest []byte, err error) {
	if len(b) < blockHeaderSize {
		return 0, 0, 0, nil, fmt.Errorf("%w: truncated block header (%d bytes)", ErrCorrupt, len(b))
	}
	return binary.LittleEndian.Uint32(b[0:]),
		binary.LittleEndian.Uint32(b[4:]),
		binary.LittleEndian.Uint32(b[8:]),
		b[blockHeaderSize:], nil
}
