package compress

import (
	"bytes"
	"testing"
)

// TestBlockOwnership pins the decoded-block ownership contract: the
// bytes handed to callers (Block's defensive copy, ReadAt's fill of the
// caller's buffer) are theirs to mutate, and no amount of scribbling on
// them can corrupt what subsequent reads observe. Runs against both the
// private per-file cache and a shared archive BlockCache, since the
// shared cache raises the stakes — a corrupted resident block would
// poison every stream drawing on it.
func TestBlockOwnership(t *testing.T) {
	data := tableTestData(32 << 10)
	frame, err := Pack(data, Options{BlockSize: 4096, BlockTable: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		shared *BlockCache
	}{
		{"private-cache", nil},
		{"shared-cache", NewBlockCache(1 << 20)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ff, err := OpenFrameBytes(frame)
			if err != nil {
				t.Fatal(err)
			}
			if tc.shared != nil {
				ff.SetBlockCache(tc.shared)
			}

			// A caller mutating Block's result must not corrupt the cache.
			blk, err := ff.Block(0)
			if err != nil {
				t.Fatal(err)
			}
			want := append([]byte(nil), blk...)
			if !bytes.Equal(want, data[:len(want)]) {
				t.Fatal("Block(0) returned wrong bytes")
			}
			for i := range blk {
				blk[i] = ^blk[i]
			}
			again, err := ff.Block(0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, want) {
				t.Error("mutating Block's result corrupted a subsequent Block read")
			}

			// A caller mutating a ReadAt destination must not either.
			p := make([]byte, 6000) // spans blocks 0 and 1
			if _, err := ff.ReadAt(p, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(p, data[:len(p)]) {
				t.Fatal("ReadAt returned wrong bytes")
			}
			for i := range p {
				p[i] = 0xAA
			}
			q := make([]byte, len(p))
			if _, err := ff.ReadAt(q, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(q, data[:len(q)]) {
				t.Error("mutating a ReadAt destination corrupted a subsequent ReadAt")
			}

			// Out-of-range blocks error instead of panicking.
			if _, err := ff.Block(ff.NumBlocks()); err == nil {
				t.Error("Block past the end did not error")
			}
			if _, err := ff.Block(-1); err == nil {
				t.Error("Block(-1) did not error")
			}
		})
	}
}

// TestSharedBlockCacheAccounting: two frames sharing one cache decode
// each block at most once within budget, and the cache accounts every
// outcome — the storage-layer half of the e2e browse-loop proof.
func TestSharedBlockCacheAccounting(t *testing.T) {
	data := tableTestData(16 << 10)
	frame, err := Pack(data, Options{BlockSize: 4096, BlockTable: true})
	if err != nil {
		t.Fatal(err)
	}
	bc := NewBlockCache(1 << 20)
	var hits, misses int
	bc.SetHooks(func(n int) { hits += n }, func(n int) { misses += n }, nil)

	var ffs []*FrameFile
	for i := 0; i < 2; i++ {
		ff, err := OpenFrameBytes(frame)
		if err != nil {
			t.Fatal(err)
		}
		ff.SetBlockCache(bc)
		ffs = append(ffs, ff)
	}
	p := make([]byte, len(data))
	for pass := 0; pass < 3; pass++ {
		for _, ff := range ffs {
			if _, err := ff.ReadAt(p, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	blocks := ffs[0].NumBlocks()
	if misses != 2*blocks {
		t.Errorf("misses = %d, want one decode per block per frame = %d", misses, 2*blocks)
	}
	if wantHits := 2 * blocks * 2; hits != wantHits {
		t.Errorf("hits = %d, want %d (two warm passes over both frames)", hits, wantHits)
	}
	st := bc.Stats()
	if st.Hits != uint64(hits) || st.Misses != uint64(misses) {
		t.Errorf("Stats{hits %d misses %d} disagrees with hooks {%d %d}",
			st.Hits, st.Misses, hits, misses)
	}
	if st.UsedBytes != int64(len(data)*2) || st.Evictions != 0 {
		t.Errorf("residency: used %d bytes (want %d), %d evictions (want 0)",
			st.UsedBytes, len(data)*2, st.Evictions)
	}

	// A budget below one block still reads correctly — every access just
	// re-decodes (counted as misses), and nothing stays resident.
	tiny := NewBlockCache(1024)
	ff, err := OpenFrameBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	ff.SetBlockCache(tiny)
	for pass := 0; pass < 2; pass++ {
		if _, err := ff.ReadAt(p, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, data) {
			t.Fatal("tiny-budget read corrupted data")
		}
	}
	st = tiny.Stats()
	if st.Hits != 0 || st.Misses != uint64(2*ff.NumBlocks()) || st.Blocks != 0 {
		t.Errorf("tiny budget: %+v, want 0 hits, %d misses, 0 resident", st, 2*ff.NumBlocks())
	}
}
