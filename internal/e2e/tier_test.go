package e2e

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dejaview/internal/compress"
	"dejaview/internal/core"
	"dejaview/internal/obs"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
	"dejaview/internal/tier"
)

// Tiered-lifecycle end-to-end proofs: compaction preserves the WYSIWYS
// fingerprint, lazy archive opens decode measurably less than eager
// ones, and archives that predate the seekable block table still open.

// TestCompactPreservesFingerprint: record → archive → compact → the
// archive's full WYSIWYS fingerprint (browse, search with screenshots,
// playback, revive at end) is unchanged, even though the compaction
// dropped checkpoints and recompressed every stream.
func TestCompactPreservesFingerprint(t *testing.T) {
	sc := Scenarios()[1] // desktop: two apps, annotation, 16 steps
	s, err := Build(sc, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "arch")
	if err := s.SaveArchive(dir); err != nil {
		t.Fatal(err)
	}
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Snapshot(Archived(a), sc.Queries)
	if err != nil {
		t.Fatal(err)
	}
	infos := a.Checkpointer().ImageInfos()
	if len(infos) < 4 {
		t.Fatalf("only %d checkpoints", len(infos))
	}
	mid := a.End - infos[len(infos)/2].Time
	a.Close()

	res, err := tier.Compact(dir, tier.Policy{
		Tiers:      []tier.Tier{{MinAge: mid, KeepEvery: 2}},
		Recompress: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("compaction dropped nothing; proof is vacuous")
	}

	a2, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Snapshot(Archived(a2), sc.Queries)
	if err != nil {
		t.Fatal(err)
	}
	// Compaction drops old checkpoints on purpose, so the thumbnail →
	// revival-checkpoint mapping coarsens; everything else must hold.
	before.ViewRevivals, after.ViewRevivals = nil, nil
	if !reflect.DeepEqual(before, after) {
		t.Errorf("fingerprint changed across compaction:\n before: %+v\n after:  %+v", before, after)
	}
}

// TestLazyOpenDecodesFewerBlocks: the lazy-by-default OpenArchive plus a
// revive of the oldest checkpoint must unpack strictly fewer compressed
// blocks than an eager open does by itself, with the demand loads
// visible on core.lazy_block_loads — the acceptance measurement for the
// streaming open.
func TestLazyOpenDecodesFewerBlocks(t *testing.T) {
	sc := Scenarios()[1]
	// Frequent keyframes: the default (one every 10 minutes) gives a
	// 16-second session a single keyframe, and opening any record
	// validates its first keyframe — with one keyframe that IS the whole
	// screenshot stream, so laziness would have nothing to skip.
	s, err := Build(sc, core.Config{Record: record.Options{
		ScreenshotInterval:  2 * simclock.Second,
		ScreenshotMinChange: 0.00001,
	}})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "arch")
	if err := s.SaveArchive(dir); err != nil {
		t.Fatal(err)
	}

	base := obs.Default.Snapshot()
	if _, err := core.OpenArchiveEager(dir); err != nil {
		t.Fatal(err)
	}
	eager := obs.Default.Snapshot().Delta(base).Counters["compress.blocks_unpacked"]
	if eager == 0 {
		t.Fatal("eager open unpacked nothing; instrumentation dead")
	}

	base = obs.Default.Snapshot()
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := a.Checkpointer().ImageInfos()[0]
	if _, err := a.ReviveCheckpoint(first.Counter); err != nil {
		t.Fatal(err)
	}
	d := obs.Default.Snapshot().Delta(base)
	lazy := d.Counters["compress.blocks_unpacked"]
	if lazy >= eager {
		t.Errorf("lazy open+revive unpacked %d blocks, eager open alone %d: open is not lazy", lazy, eager)
	}
	if d.Counters["core.lazy_block_loads"] == 0 {
		t.Error("no demand loads recorded on core.lazy_block_loads")
	}
	if d.Histograms["core.open_archive_lazy_ms"].Count == 0 {
		t.Error("core.open_archive_lazy_ms observed nothing")
	}
	a.Close()
}

// TestTableLessArchiveStillOpens: stripping the block tables (the
// on-disk shape of every archive saved before the table existed) makes
// OpenArchive fall back to the eager path with the same fingerprint and
// zero demand loads.
func TestTableLessArchiveStillOpens(t *testing.T) {
	sc := Scenarios()[0]
	s, err := Build(sc, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "arch")
	if err := s.SaveArchive(dir); err != nil {
		t.Fatal(err)
	}
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Snapshot(Archived(a), sc.Queries)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()

	for _, name := range []string{
		core.ArchiveImagesFile,
		filepath.Join(core.ArchiveRecordDir, "commands.dv"),
		filepath.Join(core.ArchiveRecordDir, "screens.dv"),
		filepath.Join(core.ArchiveRecordDir, "timeline.dv"),
	} {
		path := filepath.Join(dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !compress.HasBlockTable(b) {
			t.Fatalf("%s: saved without a block table?", name)
		}
		if err := os.WriteFile(path, compress.TrimTable(b), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	base := obs.Default.Snapshot()
	a2, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatalf("table-less archive no longer opens: %v", err)
	}
	got, err := Snapshot(Archived(a2), sc.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("table-less fallback fingerprint diverges:\n want: %+v\n got:  %+v", want, got)
	}
	if n := obs.Default.Snapshot().Delta(base).Counters["core.lazy_block_loads"]; n != 0 {
		t.Errorf("eager fallback recorded %d demand loads", n)
	}
}

// TestCompactMetrics: the tier counters move exactly once per effective
// compaction.
func TestCompactMetrics(t *testing.T) {
	sc := Scenarios()[0]
	s, err := Build(sc, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "arch")
	if err := s.SaveArchive(dir); err != nil {
		t.Fatal(err)
	}
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	infos := a.Checkpointer().ImageInfos()
	mid := a.End - infos[len(infos)/2].Time
	a.Close()
	p := tier.Policy{Tiers: []tier.Tier{{MinAge: mid, KeepEvery: 2}}, Recompress: true}

	base := obs.Default.Snapshot()
	res, err := tier.Compact(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	d := obs.Default.Snapshot().Delta(base)
	if d.Counters["tier.compactions"] != 1 {
		t.Errorf("tier.compactions = %d, want 1", d.Counters["tier.compactions"])
	}
	if got := d.Counters["tier.checkpoints_dropped"]; got != uint64(res.Dropped) {
		t.Errorf("tier.checkpoints_dropped = %d, want %d", got, res.Dropped)
	}
	if got := d.Counters["tier.bytes_reclaimed"]; got != uint64(res.Reclaimed()) {
		t.Errorf("tier.bytes_reclaimed = %d, want %d", got, res.Reclaimed())
	}

	// A no-op compaction moves nothing.
	base = obs.Default.Snapshot()
	if _, err := tier.Compact(dir, p); err != nil {
		t.Fatal(err)
	}
	if n := obs.Default.Snapshot().Delta(base).Counters["tier.compactions"]; n != 0 {
		t.Errorf("skipped compaction still counted: %d", n)
	}
}
