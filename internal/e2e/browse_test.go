package e2e

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dejaview/internal/compress"
	"dejaview/internal/core"
	"dejaview/internal/obs"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

// Visual-history browsing proofs over the ScreenTrack scenario: the
// thumbnail strip and resolved views are identical live, archived, and
// on pre-block-table archives; and the archive's shared decoded-block
// cache holds exact accounting — repeated seeks over a cold archive
// decode each block at most once while within budget, and a starved
// budget degrades to extra decodes, never to errors or different pixels.

// buildScreenTrack runs the scripted ScreenTrack scenario with frequent
// keyframes so the strip has real length (the default one-keyframe-per-
// 10-minutes policy would give an 18 s session a single thumbnail).
func buildScreenTrack(t *testing.T) (*core.Session, *Scenario) {
	t.Helper()
	sc, err := ScenarioByName("screentrack")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(sc, core.Config{Record: record.Options{
		ScreenshotInterval:  2 * simclock.Second,
		ScreenshotMinChange: 0.00001,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return s, sc
}

// browseSeek is one time-machine pass: render the full strip, resolve
// every thumbnail, and revive each distinct checkpoint the views point
// at (revives are what demand-page checkpoint images through the block
// cache). The returned hashes pin every pixel the pass produced.
func browseSeek(a *core.Archive) ([]uint64, error) {
	thumbs, err := a.BrowseTimeline(16, 16, 1)
	if err != nil {
		return nil, err
	}
	var hashes []uint64
	revived := map[uint64]bool{}
	for _, th := range thumbs {
		hashes = append(hashes, th.Image.Hash())
		v, err := a.ResolveThumb(th.Index)
		if err != nil {
			return nil, err
		}
		hashes = append(hashes, v.Screen.Hash())
		if v.HasCheckpoint && !revived[v.Checkpoint] {
			revived[v.Checkpoint] = true
			if _, err := a.ReviveCheckpoint(v.Checkpoint); err != nil {
				return nil, err
			}
		}
	}
	return hashes, nil
}

// archiveBlocks counts the distinct compressed blocks across every
// stream the shared cache serves — the hard ceiling on cache misses.
func archiveBlocks(t *testing.T, dir string) uint64 {
	t.Helper()
	var total uint64
	for _, name := range []string{
		core.ArchiveImagesFile,
		filepath.Join(core.ArchiveRecordDir, "commands.dv"),
		filepath.Join(core.ArchiveRecordDir, "screens.dv"),
		filepath.Join(core.ArchiveRecordDir, "timeline.dv"),
	} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		ff, err := compress.OpenFrameBytes(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total += uint64(ff.NumBlocks())
	}
	return total
}

// TestBrowseStripShape: the strip over a ScreenTrack run has one thumb
// per keyframe at the requested size, and every resolved view carries a
// screen, the visible documents, and (past the first checkpoint) a
// revival target.
func TestBrowseStripShape(t *testing.T) {
	s, _ := buildScreenTrack(t)
	thumbs, err := s.BrowseTimeline(16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(thumbs) < 5 {
		t.Fatalf("strip has %d thumbs; keyframe policy gave nothing to browse", len(thumbs))
	}
	for _, th := range thumbs {
		if w, h := th.Image.Size(); w != 16 || h != 16 {
			t.Fatalf("thumb %d is %dx%d, want 16x16", th.Index, w, h)
		}
		if th.Until < th.Time {
			t.Fatalf("thumb %d range [%d,%d) is negative", th.Index, th.Time, th.Until)
		}
	}
	last, err := s.ResolveThumb(thumbs[len(thumbs)-1].Index)
	if err != nil {
		t.Fatal(err)
	}
	if last.Screen == nil {
		t.Fatal("resolved view has no screen")
	}
	if len(last.Visible) == 0 {
		t.Error("resolved view lists no visible documents")
	}
	if !last.HasCheckpoint {
		t.Error("late view has no revival checkpoint")
	}
}

// TestTableLessBrowseParity (v1-on-disk compatibility): stripping the
// block tables — the exact shape of archives saved before the table
// existed — forces the eager open path, and ScreenTrack browsing over it
// yields a byte-identical fingerprint with zero demand loads and an
// untouched block cache.
func TestTableLessBrowseParity(t *testing.T) {
	s, sc := buildScreenTrack(t)
	dir := filepath.Join(t.TempDir(), "arch")
	if err := s.SaveArchive(dir); err != nil {
		t.Fatal(err)
	}
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Snapshot(Archived(a), sc.Queries)
	if err != nil {
		t.Fatal(err)
	}
	wantSeek, err := browseSeek(a)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()

	for _, name := range []string{
		core.ArchiveImagesFile,
		filepath.Join(core.ArchiveRecordDir, "commands.dv"),
		filepath.Join(core.ArchiveRecordDir, "screens.dv"),
		filepath.Join(core.ArchiveRecordDir, "timeline.dv"),
	} {
		path := filepath.Join(dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, compress.TrimTable(b), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	base := obs.Default.Snapshot()
	a2, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatalf("table-less archive no longer opens: %v", err)
	}
	got, err := Snapshot(Archived(a2), sc.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("table-less browse fingerprint diverges:\n want: %+v\n got:  %+v", want, got)
	}
	gotSeek, err := browseSeek(a2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSeek, wantSeek) {
		t.Error("table-less browse pass renders different pixels")
	}
	d := obs.Default.Snapshot().Delta(base)
	if n := d.Counters["core.lazy_block_loads"]; n != 0 {
		t.Errorf("eager fallback recorded %d demand loads", n)
	}
	if h, m := d.Counters["core.block_cache_hits"], d.Counters["core.block_cache_misses"]; h != 0 || m != 0 {
		t.Errorf("eager fallback touched the block cache: %d hits %d misses", h, m)
	}
	if st := a2.BlockCacheStats(); st.Blocks != 0 || st.Misses != 0 {
		t.Errorf("eager fallback populated the cache: %+v", st)
	}
}

// TestBrowseBlockCacheMetrics is the metrics-regression proof for the
// demand-page block cache: over a cold archive, an open plus a full
// browse pass decodes at most one miss per distinct on-disk block and
// serves page-granular rereads as hits; repeated passes add zero misses;
// a budget below one seek's working set degrades to more misses with the
// same pixels and no errors; and disabling the cache leaves the shared
// counters untouched.
func TestBrowseBlockCacheMetrics(t *testing.T) {
	s, _ := buildScreenTrack(t)
	dir := filepath.Join(t.TempDir(), "arch")
	if err := s.SaveArchive(dir); err != nil {
		t.Fatal(err)
	}
	distinct := archiveBlocks(t, dir)

	// Cold pass under the default budget.
	base := obs.Default.Snapshot()
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := browseSeek(a)
	if err != nil {
		t.Fatal(err)
	}
	d1 := obs.Default.Snapshot().Delta(base)
	misses1 := d1.Counters["core.block_cache_misses"]
	hits1 := d1.Counters["core.block_cache_hits"]
	if misses1 == 0 || hits1 == 0 {
		t.Fatalf("cold pass: %d misses %d hits; cache instrumentation dead", misses1, hits1)
	}
	if misses1 > distinct {
		t.Errorf("cold pass took %d misses over %d distinct blocks: some block decoded twice within budget",
			misses1, distinct)
	}
	// Every demand decode must route through the shared cache: a miss
	// and a lazy load are the same event, so the counters move together.
	if lazy := d1.Counters["core.lazy_block_loads"]; lazy != misses1 {
		t.Errorf("%d lazy loads but %d cache misses: a stream bypasses the shared cache", lazy, misses1)
	}
	if ev := d1.Counters["core.block_cache_evicted_bytes"]; ev != 0 {
		t.Errorf("default budget evicted %d bytes on a small archive", ev)
	}

	// Warm passes: every block is already decoded, so N more full seek
	// passes add no misses and render identical pixels.
	const warmPasses = 3
	for i := 0; i < warmPasses; i++ {
		warm, err := browseSeek(a)
		if err != nil {
			t.Fatalf("warm pass %d: %v", i, err)
		}
		if !reflect.DeepEqual(warm, cold) {
			t.Fatalf("warm pass %d renders different pixels", i)
		}
	}
	dN := obs.Default.Snapshot().Delta(base)
	if got := dN.Counters["core.block_cache_misses"]; got != misses1 {
		t.Errorf("%d warm passes grew misses %d -> %d: blocks re-decoded while within budget",
			warmPasses, misses1, got)
	}

	// The archive's local stats must agree with the global counters.
	st := a.BlockCacheStats()
	if st.Misses != misses1 {
		t.Errorf("BlockCacheStats.Misses = %d, counters saw %d", st.Misses, misses1)
	}
	if st.UsedBytes > st.BudgetBytes {
		t.Errorf("cache over budget: %d > %d", st.UsedBytes, st.BudgetBytes)
	}
	a.Close()

	// Starved budget, below even one decoded block: every access
	// re-decodes (strictly more misses), but the pass still renders the
	// exact same pixels and returns no errors.
	base = obs.Default.Snapshot()
	a2, err := core.OpenArchiveWith(dir, core.OpenOptions{CacheBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := browseSeek(a2)
	if err != nil {
		t.Fatalf("starved-budget pass failed: %v", err)
	}
	if !reflect.DeepEqual(tiny, cold) {
		t.Error("starved-budget pass renders different pixels")
	}
	d2 := obs.Default.Snapshot().Delta(base)
	if got := d2.Counters["core.block_cache_misses"]; got <= misses1 {
		t.Errorf("starved budget took %d misses, default budget %d: degradation invisible", got, misses1)
	}
	if st := a2.BlockCacheStats(); st.UsedBytes > 4096 {
		t.Errorf("starved cache holds %d bytes over its 4096 budget", st.UsedBytes)
	}
	a2.Close()

	// Caching disabled: reads stay correct, the shared counters stay
	// still, and the stats report an absent cache.
	base = obs.Default.Snapshot()
	a3, err := core.OpenArchiveWith(dir, core.OpenOptions{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	off, err := browseSeek(a3)
	if err != nil {
		t.Fatalf("cache-disabled pass failed: %v", err)
	}
	if !reflect.DeepEqual(off, cold) {
		t.Error("cache-disabled pass renders different pixels")
	}
	d3 := obs.Default.Snapshot().Delta(base)
	if h, m := d3.Counters["core.block_cache_hits"], d3.Counters["core.block_cache_misses"]; h != 0 || m != 0 {
		t.Errorf("disabled cache still counted %d hits %d misses", h, m)
	}
	if st := a3.BlockCacheStats(); st.BudgetBytes != 0 {
		t.Errorf("disabled cache reports budget %d", st.BudgetBytes)
	}
	a3.Close()
}
