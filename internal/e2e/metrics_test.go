package e2e

import (
	"path/filepath"
	"testing"

	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/obs"
	"dejaview/internal/record"
	"dejaview/internal/remote"
	"dejaview/internal/simclock"
)

// Metrics-regression tests: the observability layer's counters are part
// of the system's contract, not decoration. These tests measure one
// window of activity against the shared registry (obs.Snapshot deltas)
// and lock in cross-subsystem invariants that would silently break if an
// instrumentation point were dropped or double-counted.

// TestMetricsStorageSymmetry: every block packed while saving a record is
// unpacked exactly once when the record is reopened — the delta of
// compress.blocks_packed over a Save must equal the delta of
// compress.blocks_unpacked over the matching Open. Asserted on a bare
// record store, where Pack and Unpack are exactly symmetric.
func TestMetricsStorageSymmetry(t *testing.T) {
	st := record.NewStore(96, 96)
	fb := display.NewFramebuffer(96, 96)
	st.AppendScreenshot(simclock.Second, fb)
	for i := 0; i < 64; i++ {
		cmd := display.SolidFill(simclock.Time(i+2)*simclock.Second,
			display.NewRect(i%64, (i*7)%64, 24, 24), display.Pixel(uint32(i*2654435761+7)))
		if _, err := st.AppendCommand(&cmd); err != nil {
			t.Fatal(err)
		}
	}
	st.AppendScreenshot(70*simclock.Second, fb)

	dir := filepath.Join(t.TempDir(), "rec")
	before := obs.Default.Snapshot()
	if err := st.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	mid := obs.Default.Snapshot().Delta(before)
	if _, err := record.Open(dir); err != nil {
		t.Fatalf("Open: %v", err)
	}
	d := obs.Default.Snapshot().Delta(before)

	packed := d.Counters["compress.blocks_packed"]
	unpacked := d.Counters["compress.blocks_unpacked"]
	if packed == 0 {
		t.Fatal("save packed no blocks; the compression instrumentation is dead")
	}
	if packed != unpacked {
		t.Errorf("blocks packed (%d) != blocks unpacked (%d) across save/open", packed, unpacked)
	}
	// The open itself unpacked blocks (none were unpacked at mid-point).
	if mid.Counters["compress.blocks_unpacked"] != 0 {
		t.Errorf("save alone unpacked %d blocks", mid.Counters["compress.blocks_unpacked"])
	}
	if d.Counters["record.save"] != 1 || d.Counters["record.open"] != 1 {
		t.Errorf("save/open counters = %d/%d, want 1/1",
			d.Counters["record.save"], d.Counters["record.open"])
	}
	// The latency histograms observed exactly the operations that ran.
	if got := d.Histograms["record.save_ms"].Count; got != 1 {
		t.Errorf("record.save_ms observed %d times, want 1", got)
	}
	if got := d.Histograms["record.open_ms"].Count; got != 1 {
		t.Errorf("record.open_ms observed %d times, want 1", got)
	}
}

// TestMetricsRemoteWellBehaved: with well-behaved clients (every response
// read, queues drained) the server never evicts, and remote.searches
// counts exactly the search RPCs issued. Also exercises the StatsSnapshot
// RPC end to end: the snapshot a client pulls over the wire is a valid
// registry snapshot reflecting the same window.
func TestMetricsRemoteWellBehaved(t *testing.T) {
	sc, err := ScenarioByName("desktop")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(sc, core.Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	before := obs.Default.Snapshot()
	srv := serveSession(t, s, remote.Options{})
	addr := srv.Addr().String()

	const clients = 3
	conns := make([]*remote.Client, clients)
	for i := range conns {
		c, err := remote.Dial(addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		t.Cleanup(func() { c.Close() })
		conns[i] = c
	}
	// Each client runs exactly one search and reads its results.
	for i, c := range conns {
		res, err := c.Search(sc.Queries[i%len(sc.Queries)])
		if err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
		if len(res) == 0 {
			t.Fatalf("search %d found nothing", i)
		}
	}

	// The StatsSnapshot RPC returns the daemon's registry over the wire.
	snap, err := conns[0].StatsSnapshot()
	if err != nil {
		t.Fatalf("StatsSnapshot: %v", err)
	}
	if got := snap.Counters["remote.searches"] - before.Counters["remote.searches"]; got != clients {
		t.Errorf("wire snapshot shows %d searches this window, want %d", got, clients)
	}
	if snap.Counters["remote.clients_total"]-before.Counters["remote.clients_total"] != clients {
		t.Errorf("wire snapshot shows %d clients this window, want %d",
			snap.Counters["remote.clients_total"]-before.Counters["remote.clients_total"], clients)
	}
	// Schema invariant holds on the wire format too: bucket counts sum to
	// the histogram count.
	for name, h := range snap.Histograms {
		var sum uint64
		for _, n := range h.Counts {
			sum += n
		}
		if sum != h.Count {
			t.Errorf("wire histogram %q: buckets sum to %d, count says %d", name, sum, h.Count)
		}
	}

	d := obs.Default.Snapshot().Delta(before)
	if got := d.Counters["remote.evictions"]; got != 0 {
		t.Errorf("well-behaved clients were evicted %d times", got)
	}
	if got := d.Counters["remote.searches"]; got != clients {
		t.Errorf("remote.searches delta = %d, want %d", got, clients)
	}
	if got := d.Counters["remote.clients_total"]; got != clients {
		t.Errorf("remote.clients_total delta = %d, want %d", got, clients)
	}
	// The server's legacy Stats view and the registry agree on the
	// searches served (both are fed by the same instruments).
	if st := srv.Stats(); st.Searches != clients {
		t.Errorf("srv.Stats().Searches = %d, want %d", st.Searches, clients)
	}
}
