// Package e2e drives the full DejaView pipeline end to end: a scripted
// synthetic desktop generates display commands, accessibility text
// events, memory churn, and file-system writes through a live
// core.Session; the session is archived, reopened, searched, played
// back, and revived; and a Fingerprint captures the externally visible
// end state (framebuffer hashes, index hit sets, process-forest shape)
// so tests can assert that the whole chain is equivalence-preserving —
// both on the clean path and under injected faults (internal/failpoint).
//
// The harness is a plain library (no testing dependency) so
// `dvbench -e2e` reuses the same scripted cycle as the scenario tests.
package e2e

import (
	"errors"
	"fmt"
	"sort"

	"dejaview/internal/access"
	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/index"
	"dejaview/internal/lfs"
	"dejaview/internal/playback"
	"dejaview/internal/simclock"
	"dejaview/internal/vexec"
)

// vocab is the deterministic word stream the scripted applications type;
// queries probe for these terms.
var vocab = []string{
	"alpha", "bravo", "charlie", "delta", "echo",
	"foxtrot", "golf", "hotel", "india", "juliet",
}

// Scenario is one scripted end-to-end workload.
type Scenario struct {
	// Name identifies the scenario in test names and bench output.
	Name string
	// Steps is the number of one-second script steps.
	Steps int
	// Queries are the index probes; each must produce at least one hit
	// in a completed run.
	Queries []index.Query

	setup func(d *driver) error
	step  func(d *driver, i int) error
}

// driver holds the scripted session plus the handles the script drives.
type driver struct {
	s     *core.Session
	apps  map[string]*access.Application
	text  map[string]*access.Component
	procs map[string]*vexec.Process
	mem   map[string]uint64
}

func word(i int) string { return vocab[i%len(vocab)] }

// app registers (once) a synthetic application with a window and an
// editable paragraph, spawning a matching process.
func (d *driver) app(name, kind string) error {
	if _, ok := d.apps[name]; ok {
		return nil
	}
	a := d.s.Registry().Register(name, kind)
	win := a.AddComponent(nil, access.RoleWindow, name+" - window", "")
	para := a.AddComponent(win, access.RoleParagraph, "", "ready")
	d.apps[name] = a
	d.text[name] = para
	p, err := d.s.Container().Spawn(0, name)
	if err != nil {
		return err
	}
	addr, err := p.Mem().Mmap(32*vexec.PageSize, vexec.PermRead|vexec.PermWrite)
	if err != nil {
		return err
	}
	d.procs[name] = p
	d.mem[name] = addr
	return nil
}

// act performs one scripted second for an application: a visible display
// change large enough to clear the 5% checkpoint-policy threshold, a
// text edit the capture daemon indexes, and a dirtied page.
func (d *driver) act(name string, i int) error {
	d.s.Registry().SetFocus(d.apps[name])
	if err := d.s.Display().Submit(display.SolidFill(0,
		display.NewRect((i*31)%512, (i*47)%640, 512, 128), display.Pixel(i*2654435761))); err != nil {
		return err
	}
	d.apps[name].SetText(d.text[name], fmt.Sprintf("%s note %s line %d", name, word(i), i))
	p := d.procs[name]
	if err := p.Mem().Write(d.mem[name]+uint64(i%32)*vexec.PageSize, []byte(word(i))); err != nil {
		return err
	}
	d.s.NoteKeyboardInput()
	return nil
}

// writeFile creates (if needed) and writes a file in the session's
// snapshotting file system.
func (d *driver) writeFile(path string, data []byte) error {
	fs := d.s.FS()
	if err := fs.MkdirAll(filepathDir(path)); err != nil {
		return err
	}
	if err := fs.Create(path); err != nil && !errors.Is(err, lfs.ErrExist) {
		return err
	}
	return fs.WriteFile(path, data)
}

// filepathDir is path.Dir for the lfs's always-slash paths.
func filepathDir(p string) string {
	for i := len(p) - 1; i > 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return "/"
}

// tick runs the checkpoint policy and advances virtual time one second.
func (d *driver) tick() error {
	if _, _, err := d.s.Tick(); err != nil {
		return err
	}
	d.s.Clock().Advance(simclock.Second)
	return nil
}

// Scenarios returns the scripted end-to-end workloads.
func Scenarios() []*Scenario {
	return []*Scenario{
		{
			Name:  "editor",
			Steps: 12,
			Queries: []index.Query{
				{All: []string{"alpha"}},
				{All: []string{"note"}, App: "editor"},
			},
			setup: func(d *driver) error { return d.app("editor", "editor") },
			step: func(d *driver, i int) error {
				if err := d.act("editor", i); err != nil {
					return err
				}
				if i%4 == 1 {
					if err := d.writeFile(fmt.Sprintf("/home/notes-%d.txt", i),
						[]byte(word(i))); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Name:  "desktop",
			Steps: 16,
			Queries: []index.Query{
				{All: []string{"bravo"}},
				{Any: []string{"delta", "echo"}, AppKind: "browser"},
				{AnnotatedOnly: true},
			},
			setup: func(d *driver) error {
				if err := d.app("editor", "editor"); err != nil {
					return err
				}
				return d.app("browser", "browser")
			},
			step: func(d *driver, i int) error {
				// Alternate focus between the two applications; annotate
				// one browser moment mid-run.
				name := "editor"
				if i%2 == 1 {
					name = "browser"
				}
				if err := d.act(name, i); err != nil {
					return err
				}
				if i == 7 {
					d.apps["browser"].SelectText(d.text["browser"], word(i))
					d.apps["browser"].PressAnnotationKey()
				}
				return nil
			},
		},
		{
			// ScreenTrack (arXiv 2001.10898): three visually distinct work
			// epochs across applications, then live time-machine browsing —
			// the script itself renders the thumbnail strip and re-opens
			// earlier moments, so fault matrices and round-trip tests
			// exercise the browse path, not just record/save/open.
			Name:  "screentrack",
			Steps: 18,
			Queries: []index.Query{
				{All: []string{"alpha"}},
				{All: []string{"note"}, App: "browser"},
				{AnnotatedOnly: true},
			},
			setup: func(d *driver) error {
				for _, app := range [][2]string{
					{"editor", "editor"}, {"browser", "browser"}, {"terminal", "terminal"},
				} {
					if err := d.app(app[0], app[1]); err != nil {
						return err
					}
				}
				return nil
			},
			step: func(d *driver, i int) error {
				switch {
				case i < 6: // epoch 1: writing in the editor
					if err := d.act("editor", i); err != nil {
						return err
					}
					if i%3 == 1 {
						return d.writeFile(fmt.Sprintf("/home/draft-%d.txt", i), []byte(word(i)))
					}
					return nil
				case i < 12: // epoch 2: reading in the browser
					if err := d.act("browser", i); err != nil {
						return err
					}
					if i == 8 {
						d.apps["browser"].SelectText(d.text["browser"], word(i))
						d.apps["browser"].PressAnnotationKey()
					}
					return nil
				case i < 15: // epoch 3: a build in the terminal
					return d.act("terminal", i)
				default:
					// Browse phase: scrub the session's own visual history
					// and re-open one earlier moment per step.
					thumbs, err := d.s.BrowseTimeline(16, 16, 2)
					if err != nil {
						return err
					}
					if len(thumbs) == 0 {
						return fmt.Errorf("screentrack: empty thumbnail strip at step %d", i)
					}
					view, err := d.s.ResolveThumb(thumbs[(i*5)%len(thumbs)].Index)
					if err != nil {
						return err
					}
					if view.Screen == nil {
						return fmt.Errorf("screentrack: step %d resolved to no screen", i)
					}
					return nil
				}
			},
		},
		{
			Name:  "terminal",
			Steps: 10,
			Queries: []index.Query{
				{All: []string{"charlie"}},
			},
			setup: func(d *driver) error {
				if err := d.app("terminal", "terminal"); err != nil {
					return err
				}
				// A small process tree under the shell, so the forest
				// fingerprint has real shape to preserve.
				shell := d.procs["terminal"]
				for _, child := range []string{"make", "cc"} {
					p, err := d.s.Container().Spawn(shell.PID(), child)
					if err != nil {
						return err
					}
					if _, err := p.Mem().Mmap(8*vexec.PageSize, vexec.PermRead|vexec.PermWrite); err != nil {
						return err
					}
				}
				d.s.Container().SpawnThreads(shell, 2)
				return nil
			},
			step: func(d *driver, i int) error {
				if err := d.act("terminal", i); err != nil {
					return err
				}
				return d.writeFile("/tmp/build.log", []byte(word(i)))
			},
		},
	}
}

// ScenarioByName finds a scripted scenario.
func ScenarioByName(name string) (*Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("e2e: unknown scenario %q", name)
}

// Build runs a scenario's script against a fresh session and returns the
// session with its record, index, and checkpoint chain populated. The
// script is fully deterministic: two Build calls produce identical
// records.
func Build(sc *Scenario, cfg core.Config) (*core.Session, error) {
	d := &driver{
		s:     core.NewSession(cfg),
		apps:  map[string]*access.Application{},
		text:  map[string]*access.Component{},
		procs: map[string]*vexec.Process{},
		mem:   map[string]uint64{},
	}
	if sc.setup != nil {
		if err := sc.setup(d); err != nil {
			return nil, fmt.Errorf("e2e %s: setup: %w", sc.Name, err)
		}
	}
	for i := 0; i < sc.Steps; i++ {
		if err := sc.step(d, i); err != nil {
			return nil, fmt.Errorf("e2e %s: step %d: %w", sc.Name, i, err)
		}
		if err := d.tick(); err != nil {
			return nil, fmt.Errorf("e2e %s: tick %d: %w", sc.Name, i, err)
		}
	}
	d.s.Recorder().Flush()
	return d.s, nil
}

// System is the uniform WYSIWYS surface a fingerprint is taken over —
// the live session and the reopened archive both provide it, which is
// what lets tests assert end-state equivalence across the save/open
// boundary.
type System struct {
	Browse      func(t simclock.Time) (*display.Framebuffer, error)
	Search      func(q index.Query) ([]core.SearchResult, error)
	Player      func() *playback.Player
	Revive      func(t simclock.Time) (*vexec.Container, error)
	End         func() simclock.Time
	Size        func() (int, int)
	Checkpoints func() uint64
	// Timeline and View are the visual-history browser: the thumbnail
	// strip over the screenshot keyframes, and one thumbnail resolved to
	// its full screen, visible documents, and revival checkpoint.
	Timeline func(thumbW, thumbH, stride int) ([]playback.Thumb, error)
	View     func(i int) (*core.BrowseView, error)
}

// Live adapts a session.
func Live(s *core.Session) System {
	return System{
		Browse:   s.Browse,
		Search:   s.Search,
		Player:   s.Player,
		Timeline: s.BrowseTimeline,
		View:     s.ResolveThumb,
		Revive: func(t simclock.Time) (*vexec.Container, error) {
			rv, err := s.TakeMeBack(t)
			if err != nil {
				return nil, err
			}
			return rv.Container, nil
		},
		End:         func() simclock.Time { return s.Clock().Now() },
		Size:        s.Display().Size,
		Checkpoints: s.Checkpointer().Counter,
	}
}

// Archived adapts a reopened archive.
func Archived(a *core.Archive) System {
	return System{
		Browse:   a.Browse,
		Search:   a.Search,
		Player:   a.Player,
		Timeline: a.BrowseTimeline,
		View:     a.ResolveThumb,
		Revive: func(t simclock.Time) (*vexec.Container, error) {
			rv, err := a.TakeMeBack(t)
			if err != nil {
				return nil, err
			}
			return rv.Container, nil
		},
		End:         func() simclock.Time { return a.End },
		Size:        func() (int, int) { return a.Width, a.Height },
		Checkpoints: a.Checkpoints,
	}
}

// Fingerprint is the externally visible end state of a recorded session:
// what the user would see browsing, searching, replaying, and reviving.
// Two systems with equal fingerprints are indistinguishable through the
// WYSIWYS operations the probes exercise.
type Fingerprint struct {
	Width, Height int
	End           simclock.Time
	Checkpoints   uint64
	// ScreenHashes are framebuffer hashes browsed at fixed fractions of
	// the session duration.
	ScreenHashes []uint64
	// PlaybackHash is the frame at the end of replaying the first
	// query's first result substream.
	PlaybackHash uint64
	// Hits maps each probe query (by position) to its ordered result
	// set.
	Hits map[int][]string
	// Forest is the revived process forest at session end, sorted.
	Forest []string
	// Thumbs is the stride-2 thumbnail strip of the visual history
	// (index, display range, image hash per thumbnail).
	Thumbs []string
	// Views are the first, middle, and last thumbnails fully resolved:
	// screen hash and the visible documents.
	Views []string
	// ViewRevivals maps those thumbnails to their revival checkpoints.
	// Kept separate from Views because tier compaction drops checkpoints
	// by design, coarsening this mapping while leaving every other probe
	// bit-identical.
	ViewRevivals []string
}

// Snapshot probes sys and assembles its fingerprint.
func Snapshot(sys System, queries []index.Query) (*Fingerprint, error) {
	fp := &Fingerprint{Hits: map[int][]string{}}
	fp.Width, fp.Height = sys.Size()
	fp.End = sys.End()
	fp.Checkpoints = sys.Checkpoints()

	end := fp.End
	for _, num := range []simclock.Time{1, 2, 3} {
		fb, err := sys.Browse(end * num / 4)
		if err != nil {
			return nil, fmt.Errorf("e2e: browse %d/4: %w", num, err)
		}
		fp.ScreenHashes = append(fp.ScreenHashes, fb.Hash())
	}

	// Visual-history probes: the thumbnail strip, plus three thumbnails
	// resolved end to end (screen, visible documents, checkpoint).
	thumbs, err := sys.Timeline(16, 16, 2)
	if err != nil {
		return nil, fmt.Errorf("e2e: browse timeline: %w", err)
	}
	for _, th := range thumbs {
		fp.Thumbs = append(fp.Thumbs, fmt.Sprintf("%d@[%d,%d)#%x",
			th.Index, th.Time, th.Until, th.Image.Hash()))
	}
	for _, pick := range []int{0, len(thumbs) / 2, len(thumbs) - 1} {
		v, err := sys.View(thumbs[pick].Index)
		if err != nil {
			return nil, fmt.Errorf("e2e: resolve thumb %d: %w", thumbs[pick].Index, err)
		}
		var vis []string
		for _, it := range v.Visible {
			vis = append(vis, fmt.Sprintf("%s/%s f=%v a=%v",
				it.Item.App, it.Item.Window, it.Item.Focused, it.Annotation))
		}
		fp.Views = append(fp.Views, fmt.Sprintf("t=%d [%d,%d) #%x vis=%v",
			v.At, v.Range.Start, v.Range.End, v.Screen.Hash(), vis))
		fp.ViewRevivals = append(fp.ViewRevivals, fmt.Sprintf("t=%d ckpt=%d@%d has=%v",
			v.At, v.Checkpoint, v.CheckpointAt, v.HasCheckpoint))
	}

	var firstHit *index.Result
	for qi, q := range queries {
		res, err := sys.Search(q)
		if err != nil {
			return nil, fmt.Errorf("e2e: query %d: %w", qi, err)
		}
		for _, r := range res {
			fp.Hits[qi] = append(fp.Hits[qi], fmt.Sprintf("[%d,%d) t=%d n=%d %v",
				r.Interval.Start, r.Interval.End, r.Time, r.Matches, r.Snippets))
			if r.Screenshot == nil {
				return nil, fmt.Errorf("e2e: query %d: hit without screenshot portal", qi)
			}
		}
		if firstHit == nil && len(res) > 0 {
			firstHit = &res[0].Result
		}
	}

	if firstHit != nil {
		p := sys.Player()
		p.SetBounds(firstHit.Interval.Start, firstHit.Interval.End)
		if err := p.SeekTo(firstHit.Interval.Start); err != nil {
			return nil, fmt.Errorf("e2e: playback seek: %w", err)
		}
		if _, err := p.FastForward(firstHit.Interval.End); err != nil {
			return nil, fmt.Errorf("e2e: playback fast-forward: %w", err)
		}
		fp.PlaybackHash = p.Screen().Hash()
	}

	cont, err := sys.Revive(end)
	if err != nil {
		return nil, fmt.Errorf("e2e: revive: %w", err)
	}
	procs := cont.Processes()
	for _, p := range procs {
		fp.Forest = append(fp.Forest, fmt.Sprintf("%d/%d %s threads=%d state=%v",
			p.PID(), p.PPID(), p.Name(), p.Threads(), p.State()))
	}
	sort.Strings(fp.Forest)
	return fp, nil
}
