package e2e

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"dejaview/internal/core"
)

// Replay-divergence harness in the rr tradition: the whole point of a
// deterministic record pipeline is that recording the same workload
// twice yields the same bits. Each scenario is built twice from scratch
// and the two runs are compared at every persisted layer — the vexec
// checkpoint-image event stream, every archive file byte for byte, and
// the WYSIWYS fingerprint. Any nondeterminism smuggled into the record
// path (map iteration, wall-clock reads, unseeded randomness) shows up
// here as a first-divergence offset instead of as an unreproducible
// flake somewhere downstream.

// firstDiff returns the offset of the first differing byte, or -1.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// archiveFiles maps each file in the archive tree (relative path) to its
// contents.
func archiveFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files[rel] = b
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", dir, err)
	}
	return files
}

func TestReplayDivergence(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			s1, err := Build(sc, core.Config{})
			if err != nil {
				t.Fatalf("first build: %v", err)
			}
			s2, err := Build(sc, core.Config{})
			if err != nil {
				t.Fatalf("second build: %v", err)
			}

			// The vexec event streams — every checkpoint image the two
			// runs took, serialized — must be bit-identical.
			var ev1, ev2 bytes.Buffer
			if err := s1.Checkpointer().SaveImages(&ev1); err != nil {
				t.Fatalf("first image stream: %v", err)
			}
			if err := s2.Checkpointer().SaveImages(&ev2); err != nil {
				t.Fatalf("second image stream: %v", err)
			}
			if off := firstDiff(ev1.Bytes(), ev2.Bytes()); off >= 0 {
				t.Errorf("vexec event streams diverge at byte %d (lengths %d vs %d)",
					off, ev1.Len(), ev2.Len())
			}

			// Every persisted archive file must be bit-identical too: the
			// record command log, the search index, the checkpoint images,
			// the file system, and the metadata.
			d1 := filepath.Join(t.TempDir(), "run1")
			d2 := filepath.Join(t.TempDir(), "run2")
			if err := s1.SaveArchive(d1); err != nil {
				t.Fatalf("first archive: %v", err)
			}
			if err := s2.SaveArchive(d2); err != nil {
				t.Fatalf("second archive: %v", err)
			}
			f1 := archiveFiles(t, d1)
			f2 := archiveFiles(t, d2)
			var names []string
			for name := range f1 {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				b2, ok := f2[name]
				if !ok {
					t.Errorf("%s: present in run 1 only", name)
					continue
				}
				if off := firstDiff(f1[name], b2); off >= 0 {
					t.Errorf("%s diverges at byte %d (lengths %d vs %d)",
						name, off, len(f1[name]), len(b2))
				}
			}
			for name := range f2 {
				if _, ok := f1[name]; !ok {
					t.Errorf("%s: present in run 2 only", name)
				}
			}

			// And the observable end state agrees, query results included.
			fp1, err := Snapshot(Live(s1), sc.Queries)
			if err != nil {
				t.Fatalf("first snapshot: %v", err)
			}
			fp2, err := Snapshot(Live(s2), sc.Queries)
			if err != nil {
				t.Fatalf("second snapshot: %v", err)
			}
			if !reflect.DeepEqual(fp1, fp2) {
				t.Errorf("fingerprints diverge:\n run1: %+v\n run2: %+v", fp1, fp2)
			}
		})
	}
}
