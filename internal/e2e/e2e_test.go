package e2e

import (
	"path/filepath"
	"reflect"
	"testing"

	"dejaview/internal/core"
)

// TestScenarioRoundTrip runs each scripted scenario through the full
// pipeline — record, save, reopen, search, play back, revive — and
// asserts the reopened archive is WYSIWYS-equivalent to the live
// session: same browsed frames, same index hits, same playback end
// frame, same revived process forest.
func TestScenarioRoundTrip(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			s, err := Build(sc, core.Config{})
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			// Save before probing: reviving inside Snapshot advances the
			// virtual clock (restore cost), and the archive must capture
			// the session exactly as recorded.
			dir := filepath.Join(t.TempDir(), "archive")
			if err := s.SaveArchive(dir); err != nil {
				t.Fatalf("SaveArchive: %v", err)
			}
			live, err := Snapshot(Live(s), sc.Queries)
			if err != nil {
				t.Fatalf("live snapshot: %v", err)
			}
			if live.Checkpoints == 0 {
				t.Fatal("scenario produced no checkpoints")
			}
			for qi := range sc.Queries {
				if len(live.Hits[qi]) == 0 {
					t.Errorf("query %d produced no hits", qi)
				}
			}
			if live.PlaybackHash == 0 {
				t.Error("playback probe did not run")
			}
			if len(live.Forest) == 0 {
				t.Error("revived forest is empty")
			}

			a, err := core.OpenArchive(dir)
			if err != nil {
				t.Fatalf("OpenArchive: %v", err)
			}
			archived, err := Snapshot(Archived(a), sc.Queries)
			if err != nil {
				t.Fatalf("archive snapshot: %v", err)
			}
			if !reflect.DeepEqual(live, archived) {
				t.Errorf("archive fingerprint diverges from live session:\n live: %+v\n arch: %+v", live, archived)
			}
		})
	}
}

// TestBuildDeterministic asserts the scripted workload itself is
// reproducible: two independent builds of the same scenario yield
// identical fingerprints, which is what makes the golden fixture and
// fault-injection comparisons meaningful.
func TestBuildDeterministic(t *testing.T) {
	sc := Scenarios()[0]
	var fps []*Fingerprint
	for i := 0; i < 2; i++ {
		s, err := Build(sc, core.Config{})
		if err != nil {
			t.Fatalf("Build #%d: %v", i, err)
		}
		fp, err := Snapshot(Live(s), sc.Queries)
		if err != nil {
			t.Fatalf("snapshot #%d: %v", i, err)
		}
		fps = append(fps, fp)
	}
	if !reflect.DeepEqual(fps[0], fps[1]) {
		t.Errorf("two builds diverge:\n a: %+v\n b: %+v", fps[0], fps[1])
	}
}
