package e2e

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/failpoint"
	"dejaview/internal/remote"
)

// The fleet end-to-end layer: one daemon shards many scripted sessions
// (internal/remote's session manager) and serves them to concurrent
// clients per tenant. The invariants are the multi-tenant versions of
// remote_test.go's: every client reaches exactly the session it asked
// for, no frame or search result leaks across tenants, and serving a
// fleet — on the clean path and under the armed remote/conn fault
// matrix — never perturbs any tenant's recorded state.

const (
	fleetSessions     = 8
	fleetClients      = 4 // per session: 2 live viewers, 1 searcher, 1 playback
	fleetLiveViewers  = 2
	fleetSessionIDFmt = "tenant%d"
)

// buildFleet builds fleetSessions scripted sessions, cycling the
// scenario families, and gives each a distinguishing final flush so live
// screens differ across tenants even when the scenario is shared.
func buildFleet(t *testing.T) ([]*core.Session, []*Scenario) {
	t.Helper()
	scs := Scenarios()
	sessions := make([]*core.Session, fleetSessions)
	used := make([]*Scenario, fleetSessions)
	for i := range sessions {
		sc := scs[i%len(scs)]
		s, err := Build(sc, core.Config{})
		if err != nil {
			t.Fatalf("Build %s #%d: %v", sc.Name, i, err)
		}
		if err := s.Display().Submit(display.SolidFill(s.Clock().Now(),
			display.NewRect(0, 0, 640, 480), display.Pixel(0x5E55+i))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Display().Flush(); err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
		used[i] = sc
	}
	return sessions, used
}

// serveFleet exposes the sessions as one multi-tenant daemon on a
// loopback listener.
func serveFleet(t *testing.T, sessions []*core.Session, opts remote.Options) *remote.Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sessions {
		opts.Sessions = append(opts.Sessions,
			remote.SessionConfig{ID: fmt.Sprintf(fleetSessionIDFmt, i), Session: s})
	}
	if opts.DrainTimeout == 0 {
		opts.DrainTimeout = 2 * time.Second
	}
	srv := remote.Serve(ln, opts)
	t.Cleanup(func() { srv.Close() })
	return srv
}

// fleetFingerprints snapshots every session through a saved archive —
// the perturbation-free probe (reviving a live session mid-test is what
// the archive indirection avoids).
func fleetFingerprints(t *testing.T, dir string, sessions []*core.Session, used []*Scenario) []*Fingerprint {
	t.Helper()
	fps := make([]*Fingerprint, len(sessions))
	for i, s := range sessions {
		d := filepath.Join(dir, fmt.Sprintf("t%d", i))
		if err := s.SaveArchive(d); err != nil {
			t.Fatalf("SaveArchive %d: %v", i, err)
		}
		a, err := core.OpenArchive(d)
		if err != nil {
			t.Fatalf("OpenArchive %d: %v", i, err)
		}
		fp, err := Snapshot(Archived(a), used[i].Queries)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		fps[i] = fp
	}
	return fps
}

// TestFleetScenario serves 8 scripted sessions behind one daemon to 4
// clients each (32 connections over loopback) mixing live viewing,
// search, and playback, while every session's desktop keeps running. It
// asserts routing (each client lands on its named tenant), isolation (a
// tenant's live replica converges on its own screen and never on a
// neighbor's), search agreement per tenant, zero admission rejects at
// this load, and — via before/after archive fingerprints — that fleet
// serving perturbed no tenant.
func TestFleetScenario(t *testing.T) {
	sessions, used := buildFleet(t)
	before := fleetFingerprints(t, filepath.Join(t.TempDir(), "before"), sessions, used)

	srv := serveFleet(t, sessions, remote.Options{
		MaxClientsPerSession: fleetClients,
	})
	addr := srv.Addr().String()

	type tenant struct {
		conns []*remote.Client
		views []*remote.LiveView
	}
	tenants := make([]tenant, fleetSessions)
	for i := range tenants {
		id := fmt.Sprintf(fleetSessionIDFmt, i)
		for j := 0; j < fleetClients; j++ {
			c, err := remote.DialSession(addr, id)
			if err != nil {
				t.Fatalf("dial %s client %d: %v", id, j, err)
			}
			t.Cleanup(func() { c.Close() })
			if c.SessionID() != id {
				t.Fatalf("client routed to %q, want %q", c.SessionID(), id)
			}
			tenants[i].conns = append(tenants[i].conns, c)
		}
		for j := 0; j < fleetLiveViewers; j++ {
			lv, err := tenants[i].conns[j].AttachLive()
			if err != nil {
				t.Fatalf("attach %s viewer %d: %v", id, j, err)
			}
			if err := lv.WaitScreen(10 * time.Second); err != nil {
				t.Fatalf("initial screen %s viewer %d: %v", id, j, err)
			}
			tenants[i].views = append(tenants[i].views, lv)
		}
	}

	// Searchers and playback streamers per tenant run concurrently with
	// every desktop.
	var wg sync.WaitGroup
	errs := make(chan error, fleetSessions*fleetClients)
	driveDone := make(chan struct{})
	for i := range tenants {
		i := i
		q := used[i].Queries[0]
		search := tenants[i].conns[fleetLiveViewers]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				res, err := search.Search(q)
				if err != nil {
					errs <- fmt.Errorf("tenant %d search: %w", i, err)
					return
				}
				if len(res) == 0 {
					errs <- fmt.Errorf("tenant %d search: no hits for %+v", i, q)
					return
				}
				select {
				case <-driveDone:
					return
				default:
					time.Sleep(2 * time.Millisecond)
				}
			}
		}()
		play := tenants[i].conns[fleetLiveViewers+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ps, err := play.Playback(remote.PlaybackRequest{
					Source: remote.SourceSession, Mode: remote.PlayCommands})
				if err != nil {
					errs <- fmt.Errorf("tenant %d playback: %w", i, err)
					return
				}
				if err := ps.Wait(); err != nil {
					errs <- fmt.Errorf("tenant %d playback: %w", i, err)
					return
				}
				select {
				case <-driveDone:
					return
				default:
				}
			}
		}()
	}

	// Every desktop keeps running, each with tenant-distinct content.
	var driveWG sync.WaitGroup
	for i, s := range sessions {
		i, s := i, s
		driveWG.Add(1)
		go func() {
			defer driveWG.Done()
			for k := 0; k < 10; k++ {
				if err := s.Display().Submit(display.SolidFill(s.Clock().Now(),
					display.NewRect((k*37)%512, (k*53)%600, 256, 96),
					display.Pixel(i*1000+k*2654435761))); err != nil {
					errs <- fmt.Errorf("tenant %d submit: %w", i, err)
					return
				}
				if _, err := s.Display().Flush(); err != nil {
					errs <- fmt.Errorf("tenant %d flush: %w", i, err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	driveWG.Wait()
	close(driveDone)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Isolation: every live replica converges on its own session's
	// screen — which differs from every other tenant's by construction.
	hashes := make([]uint64, fleetSessions)
	for i, s := range sessions {
		hashes[i] = s.Display().Screen().Hash()
	}
	for i := range hashes {
		for j := i + 1; j < len(hashes); j++ {
			if hashes[i] == hashes[j] {
				t.Fatalf("tenants %d and %d converged to identical screens; the leak probe is vacuous", i, j)
			}
		}
	}
	for i, tn := range tenants {
		for j, lv := range tn.views {
			deadline := time.Now().Add(10 * time.Second)
			for lv.Screen().Hash() != hashes[i] {
				if time.Now().After(deadline) {
					t.Fatalf("tenant %d viewer %d never converged on its session", i, j)
				}
				time.Sleep(5 * time.Millisecond)
			}
			got := lv.Screen().Hash()
			for k := range hashes {
				if k != i && got == hashes[k] {
					t.Errorf("tenant %d viewer %d shows tenant %d's screen", i, j, k)
				}
			}
		}
	}

	// Search agreement per tenant, over connections that also stream.
	for i, s := range sessions {
		for qi, q := range used[i].Queries {
			got, err := tenants[i].conns[0].Search(q)
			if err != nil {
				t.Fatalf("tenant %d query %d: %v", i, qi, err)
			}
			direct, err := s.SearchIndex(q)
			if err != nil {
				t.Fatalf("tenant %d direct query %d: %v", i, qi, err)
			}
			if len(got) == 0 || len(got) != len(direct) {
				t.Fatalf("tenant %d query %d: remote %d hits, direct %d", i, qi, len(got), len(direct))
			}
		}
	}

	// Fleet stats: all 32 clients admitted at quota, none shed, no
	// evictions, registry size right.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if st.ActiveClients == fleetSessions*fleetClients {
			if st.SessionsActive != fleetSessions {
				t.Errorf("SessionsActive %d, want %d", st.SessionsActive, fleetSessions)
			}
			if st.AdmissionRejects != 0 {
				t.Errorf("AdmissionRejects %d at exactly-quota load, want 0", st.AdmissionRejects)
			}
			if st.Evicted != 0 {
				t.Errorf("Evicted %d, want 0", st.Evicted)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Serving the fleet perturbed no tenant: identical archive
	// fingerprints before and after.
	after := fleetFingerprints(t, filepath.Join(t.TempDir(), "after"), sessions, used)
	for i := range before {
		if !reflect.DeepEqual(before[i], after[i]) {
			t.Errorf("tenant %d perturbed by fleet serving:\n before: %+v\n after:  %+v", i, before[i], after[i])
		}
	}
}

// TestFleetFailureMatrix re-runs fleet traffic under the armed
// remote/conn fault matrix. The failpoint's byte budget spans every
// tenant's connections, so faults land across the fleet; the contract is
// that they surface only as wrapped per-client errors, the daemon keeps
// admitting fresh clients to every tenant, and no tenant's recorded
// state is perturbed by any of it.
func TestFleetFailureMatrix(t *testing.T) {
	defer failpoint.Reset()
	sessions, used := buildFleet(t)
	before := fleetFingerprints(t, filepath.Join(t.TempDir(), "before"), sessions, used)

	srv := serveFleet(t, sessions, remote.Options{DrainTimeout: 500 * time.Millisecond})
	addr := srv.Addr().String()

	points := []struct {
		pol     failpoint.Policy
		wantErr bool // a flipped bit may be absorbed silently
	}{
		{failpoint.Policy{Mode: failpoint.ModeError, AfterBytes: 2048}, true},
		{failpoint.Policy{Mode: failpoint.ModeShortWrite, AfterBytes: 4096}, true},
		{failpoint.Policy{Mode: failpoint.ModeCorrupt, AfterBytes: 16384}, false},
	}
	for _, fp := range points {
		t.Run("remote-conn/"+fp.pol.String(), func(t *testing.T) {
			defer failpoint.Reset()
			failpoint.Arm("remote/conn", fp.pol)

			// One mixed-workload client per tenant, all concurrent.
			errsSeen := make([]error, fleetSessions)
			var wg sync.WaitGroup
			for i := 0; i < fleetSessions; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					id := fmt.Sprintf(fleetSessionIDFmt, i)
					c, err := remote.DialSession(addr, id)
					if err != nil {
						errsSeen[i] = err
						return
					}
					defer c.Close()
					// Watchdog: a corrupted length field could leave an op
					// blocked; force the conn down rather than hang.
					watchdog := time.AfterFunc(20*time.Second, func() { c.Close() })
					defer watchdog.Stop()
					if _, err := c.AttachLive(); err != nil {
						errsSeen[i] = err
						return
					}
					deadline := time.Now().Add(15 * time.Second)
					for time.Now().Before(deadline) {
						if _, err := c.Search(used[i].Queries[0]); err != nil {
							errsSeen[i] = err
							return
						}
						ps, err := c.Playback(remote.PlaybackRequest{
							Source: remote.SourceSession, Mode: remote.PlayCommands})
						if err != nil {
							errsSeen[i] = err
							return
						}
						if err := ps.Wait(); err != nil {
							errsSeen[i] = err
							return
						}
						if !fp.wantErr && failpoint.Fired("remote/conn") > 0 {
							return
						}
					}
				}(i)
			}
			wg.Wait()

			if failpoint.Fired("remote/conn") == 0 {
				t.Fatal("remote/conn failpoint never fired")
			}
			for i, err := range errsSeen {
				if err == nil {
					continue
				}
				if !errors.Is(err, remote.ErrConnClosed) && !errors.Is(err, remote.ErrShutdown) {
					t.Errorf("tenant %d: fault surfaced unwrapped: %v", i, err)
				}
			}
			failpoint.Reset()

			// One tenant's faulted clients never take the daemon down for
			// its neighbors: a fresh client to every tenant gets full
			// service immediately.
			for i := 0; i < fleetSessions; i++ {
				id := fmt.Sprintf(fleetSessionIDFmt, i)
				c, err := remote.DialSession(addr, id)
				if err != nil {
					t.Fatalf("tenant %d unreachable after fault: %v", i, err)
				}
				res, err := c.Search(used[i].Queries[0])
				if err != nil || len(res) == 0 {
					t.Fatalf("tenant %d unhealthy after fault: %d hits, err %v", i, len(res), err)
				}
				c.Close()
			}
		})
	}

	// No tenant's record was perturbed by the whole matrix.
	after := fleetFingerprints(t, filepath.Join(t.TempDir(), "after"), sessions, used)
	for i := range before {
		if !reflect.DeepEqual(before[i], after[i]) {
			t.Errorf("tenant %d perturbed by the fault matrix:\n before: %+v\n after:  %+v", i, before[i], after[i])
		}
	}
}
