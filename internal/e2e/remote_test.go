package e2e

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/failpoint"
	"dejaview/internal/index"
	"dejaview/internal/record"
	"dejaview/internal/remote"
	"dejaview/internal/simclock"
)

// The networked end-to-end layer: the scripted scenarios from e2e.go are
// served through the network access service (internal/remote) over real
// loopback sockets, with many concurrent clients mixing live viewing,
// search RPCs, and playback streaming — on the clean path and under
// injected connection faults. The invariants mirror the storage-side
// matrix in failure_test.go: clients fail closed with wrapped errors,
// and the served session's WYSIWYS fingerprint is never perturbed.

// serveSession exposes a session through the network access service on a
// loopback listener, cleaned up with the test.
func serveSession(t *testing.T, s *core.Session, opts remote.Options) *remote.Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opts.Session = s
	if opts.DrainTimeout == 0 {
		opts.DrainTimeout = 2 * time.Second
	}
	srv := remote.Serve(ln, opts)
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestRemoteNetworkedScenario runs the client-server split end to end
// over real TCP: a scripted desktop session is served to nine concurrent
// clients — live viewers, searchers, and playback streamers — while the
// desktop keeps running. Every live replica converges on the session's
// screen, remote search agrees with the session's own index, a
// server-driven replay reproduces the final frame, shutdown reaches
// every client as a wrapped ErrShutdown, and the served session still
// archives to a WYSIWYS-equivalent fingerprint.
func TestRemoteNetworkedScenario(t *testing.T) {
	sc, err := ScenarioByName("desktop")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(sc, core.Config{
		// Frequent keyframes so keyframe-mode playback streams real
		// content over a short scripted session.
		Record: record.Options{ScreenshotInterval: 4 * simclock.Second, ScreenshotMinChange: 0.01},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	srv := serveSession(t, s, remote.Options{})
	addr := srv.Addr().String()

	const (
		liveClients   = 3
		searchClients = 3
		playClients   = 3
		clients       = liveClients + searchClients + playClients
	)
	conns := make([]*remote.Client, clients)
	for i := range conns {
		c, err := remote.Dial(addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		t.Cleanup(func() { c.Close() })
		conns[i] = c
	}

	// Live viewers attach and type over the wire; the input events drive
	// the checkpoint policy but are never part of the record.
	views := make([]*remote.LiveView, liveClients)
	for i := 0; i < liveClients; i++ {
		lv, err := conns[i].AttachLive()
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		if err := lv.WaitScreen(10 * time.Second); err != nil {
			t.Fatalf("initial screen %d: %v", i, err)
		}
		if err := conns[i].SendKey(s.Clock().Now(), uint32('a'+i), true); err != nil {
			t.Fatalf("send key %d: %v", i, err)
		}
		views[i] = lv
	}

	// Searchers and playback streamers work concurrently with the
	// desktop and with each other.
	var wg sync.WaitGroup
	errs := make(chan error, 2*clients)
	driveDone := make(chan struct{})
	for i := 0; i < searchClients; i++ {
		c := conns[liveClients+i]
		q := sc.Queries[i%len(sc.Queries)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				res, err := c.Search(q)
				if err != nil {
					errs <- fmt.Errorf("concurrent search: %w", err)
					return
				}
				if len(res) == 0 {
					errs <- fmt.Errorf("concurrent search: no hits for %+v", q)
					return
				}
				select {
				case <-driveDone:
					return
				default:
					time.Sleep(2 * time.Millisecond)
				}
			}
		}()
	}
	for i := 0; i < playClients; i++ {
		c := conns[liveClients+searchClients+i]
		mode := remote.PlayCommands
		if i == playClients-1 {
			mode = remote.PlayKeyframes
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ps, err := c.Playback(remote.PlaybackRequest{Source: remote.SourceSession, Mode: mode})
				if err != nil {
					errs <- fmt.Errorf("concurrent playback: %w", err)
					return
				}
				if err := ps.Wait(); err != nil {
					errs <- fmt.Errorf("concurrent playback: %w", err)
					return
				}
				if ps.Screen() == nil {
					errs <- fmt.Errorf("concurrent playback produced no screen")
					return
				}
				select {
				case <-driveDone:
					return
				default:
				}
			}
		}()
	}

	// The desktop keeps running while every client is at work.
	for i := 0; i < 12; i++ {
		if err := s.Display().Submit(display.SolidFill(s.Clock().Now(),
			display.NewRect((i*37)%512, (i*53)%600, 256, 96), display.Pixel(i*2654435761+7))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Display().Flush(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Tick(); err != nil {
			t.Fatal(err)
		}
		s.Clock().Advance(simclock.Second)
		time.Sleep(2 * time.Millisecond)
	}
	close(driveDone)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Every live replica converges on the session's final screen.
	s.Recorder().Flush()
	want := s.Display().Screen().Hash()
	for i, lv := range views {
		deadline := time.Now().Add(10 * time.Second)
		for lv.Screen().Hash() != want {
			if time.Now().After(deadline) {
				t.Fatalf("live viewer %d never converged on the session screen", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Remote search agrees with the session's own index — over a
	// connection that is simultaneously streaming a live view.
	for qi, q := range sc.Queries {
		got, err := conns[0].Search(q)
		if err != nil {
			t.Fatalf("final search %d: %v", qi, err)
		}
		direct, err := s.SearchIndex(q)
		if err != nil {
			t.Fatalf("direct search %d: %v", qi, err)
		}
		if len(got) == 0 || len(got) != len(direct) {
			t.Fatalf("query %d: remote %d hits, direct %d", qi, len(got), len(direct))
		}
		for i := range got {
			if got[i].Time != direct[i].Time || got[i].Matches != direct[i].Matches {
				t.Errorf("query %d hit %d: remote %+v, direct %+v", qi, i, got[i], direct[i])
			}
		}
	}

	// A full server-driven replay lands on the same final screen.
	ps, err := conns[0].Playback(remote.PlaybackRequest{Source: remote.SourceSession, Mode: remote.PlayCommands})
	if err != nil {
		t.Fatalf("final playback: %v", err)
	}
	if err := ps.Wait(); err != nil {
		t.Fatalf("final playback: %v", err)
	}
	if ps.Screen().Hash() != want {
		t.Error("remote playback diverges from the live screen")
	}

	// Aggregate stats reflect the mixed workload; input frames race the
	// stats request, so poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _, err := conns[0].ServerStats()
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st.ActiveClients == clients && st.TotalClients == clients &&
			st.InputEvents >= liveClients && st.Searches > 0 && st.Playbacks > 0 &&
			st.FramesSent > 0 && st.BytesSent > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Graceful shutdown reaches every client as a wrapped ErrShutdown.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i, c := range conns {
		deadline := time.Now().Add(5 * time.Second)
		for !errors.Is(c.Err(), remote.ErrShutdown) {
			if time.Now().After(deadline) {
				t.Fatalf("client %d error %v, want ErrShutdown", i, c.Err())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Serving changed nothing about what was recorded: the session still
	// archives to a WYSIWYS-equivalent fingerprint (the unserved
	// round-trip invariant, after nine concurrent network clients).
	dir := filepath.Join(t.TempDir(), "archive")
	if err := s.SaveArchive(dir); err != nil {
		t.Fatalf("SaveArchive: %v", err)
	}
	live, err := Snapshot(Live(s), sc.Queries)
	if err != nil {
		t.Fatalf("live snapshot: %v", err)
	}
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatalf("OpenArchive: %v", err)
	}
	archived, err := Snapshot(Archived(a), sc.Queries)
	if err != nil {
		t.Fatalf("archive snapshot: %v", err)
	}
	if !reflect.DeepEqual(live, archived) {
		t.Errorf("served session's archive diverges from live:\n live: %+v\n arch: %+v", live, archived)
	}
}

// TestRemoteFailureMatrix re-runs the networked workload under armed
// remote/conn failpoints — hard connection errors, short writes, and a
// silently flipped bit — and asserts the remote layer's fail-closed
// contract: established clients surface wrapped terminal errors (never a
// panic or a hang), the daemon keeps serving fresh clients, and the
// session behind it is not perturbed (its archive fingerprint is
// identical before and after the whole matrix).
func TestRemoteFailureMatrix(t *testing.T) {
	defer failpoint.Reset()
	sc := Scenarios()[0]
	s, err := Build(sc, core.Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// The pre-matrix fingerprint, taken through a saved archive.
	goodDir := filepath.Join(t.TempDir(), "good")
	if err := s.SaveArchive(goodDir); err != nil {
		t.Fatalf("SaveArchive: %v", err)
	}
	good, err := core.OpenArchive(goodDir)
	if err != nil {
		t.Fatalf("OpenArchive: %v", err)
	}
	want, err := Snapshot(Archived(good), sc.Queries)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	srv := serveSession(t, s, remote.Options{DrainTimeout: 500 * time.Millisecond})
	addr := srv.Addr().String()

	// The conn failpoint's byte counter spans every connection's reads
	// and writes: the budgets leave room for three handshakes and trip
	// inside the op traffic. The corrupt budget is large enough that the
	// flipped bit lands in bulk stream payload, where the client either
	// shrugs it off or fails with a decode error — never hangs.
	points := []struct {
		pol     failpoint.Policy
		wantErr bool // error modes must surface; a flipped bit may be silent
	}{
		{failpoint.Policy{Mode: failpoint.ModeError, AfterBytes: 256}, true},
		{failpoint.Policy{Mode: failpoint.ModeError, AfterBytes: 4096}, true},
		{failpoint.Policy{Mode: failpoint.ModeShortWrite, AfterBytes: 1024}, true},
		{failpoint.Policy{Mode: failpoint.ModeCorrupt, AfterBytes: 8192}, false},
	}
	for _, fp := range points {
		t.Run("remote-conn/"+fp.pol.String(), func(t *testing.T) {
			defer failpoint.Reset()
			failpoint.Arm("remote/conn", fp.pol)

			type outcome struct {
				dialed bool
				err    error
			}
			outcomes := make([]outcome, 3)
			var wg sync.WaitGroup
			for i := range outcomes {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					c, err := remote.Dial(addr)
					if err != nil {
						outcomes[i] = outcome{err: err}
						return
					}
					defer c.Close()
					outcomes[i].dialed = true
					// Watchdog: a corrupted length field could leave an op
					// blocked; force the connection down rather than hang.
					watchdog := time.AfterFunc(20*time.Second, func() { c.Close() })
					defer watchdog.Stop()

					// A mixed workload: one live view plus search and
					// playback rounds until the fault surfaces (error
					// modes) or the flip has fired (corrupt mode).
					if _, err := c.AttachLive(); err != nil {
						outcomes[i].err = err
						return
					}
					deadline := time.Now().Add(15 * time.Second)
					for time.Now().Before(deadline) {
						if _, err := c.Search(index.Query{All: []string{"alpha"}}); err != nil {
							outcomes[i].err = err
							return
						}
						ps, err := c.Playback(remote.PlaybackRequest{Source: remote.SourceSession, Mode: remote.PlayCommands})
						if err != nil {
							outcomes[i].err = err
							return
						}
						if err := ps.Wait(); err != nil {
							outcomes[i].err = err
							return
						}
						if !fp.wantErr && failpoint.Fired("remote/conn") > 0 {
							return
						}
					}
				}(i)
			}
			wg.Wait()

			if failpoint.Calls("remote/conn") == 0 {
				t.Fatal("remote/conn failpoint never evaluated")
			}
			if failpoint.Fired("remote/conn") == 0 {
				t.Fatal("remote/conn failpoint never fired")
			}
			if fp.wantErr {
				for i, o := range outcomes {
					if o.err == nil {
						t.Errorf("client %d saw no error with %s armed", i, fp.pol)
						continue
					}
					if !o.dialed {
						continue // a handshake killed by the fault is fine
					}
					if !errors.Is(o.err, remote.ErrConnClosed) && !errors.Is(o.err, remote.ErrShutdown) {
						t.Errorf("client %d: fault surfaced unwrapped: %v", i, o.err)
					}
				}
			}
			failpoint.Reset()

			// The daemon survives its faulted connections: a fresh client
			// gets full, correct service immediately.
			c, err := remote.Dial(addr)
			if err != nil {
				t.Fatalf("daemon unreachable after fault: %v", err)
			}
			defer c.Close()
			res, err := c.Search(sc.Queries[0])
			if err != nil || len(res) == 0 {
				t.Fatalf("daemon unhealthy after fault: %d hits, err %v", len(res), err)
			}
			ps, err := c.Playback(remote.PlaybackRequest{Source: remote.SourceSession, Mode: remote.PlayCommands})
			if err != nil {
				t.Fatalf("playback after fault: %v", err)
			}
			if err := ps.Wait(); err != nil {
				t.Fatalf("playback after fault: %v", err)
			}
		})
	}

	// The served session was never perturbed: archiving it again after
	// the whole matrix yields the identical fingerprint.
	afterDir := filepath.Join(t.TempDir(), "after")
	if err := s.SaveArchive(afterDir); err != nil {
		t.Fatalf("SaveArchive after matrix: %v", err)
	}
	after, err := core.OpenArchive(afterDir)
	if err != nil {
		t.Fatalf("OpenArchive after matrix: %v", err)
	}
	got, err := Snapshot(Archived(after), sc.Queries)
	if err != nil {
		t.Fatalf("snapshot after matrix: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("session perturbed by the conn-fault matrix:\n want: %+v\n got:  %+v", want, got)
	}
}
