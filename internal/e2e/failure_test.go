package e2e

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dejaview/internal/core"
	"dejaview/internal/failpoint"
)

// The fault-injection matrix runs over the richest scripted scenario
// (screentrack: three applications, file writes, an annotation, and live
// visual-history browsing), asserting the invariant *fail-closed, never
// corrupt* —
// a failed save leaves no partial record visible (no temp litter, a
// previous archive survives intact), a failed open or revive returns a
// wrapped error, and nothing ever panics or silently yields a shorter
// session.

// savePoints are the failpoints that can fire while writing an archive.
var savePoints = []struct {
	name string
	pol  failpoint.Policy
}{
	{"core/archive.save", failpoint.Policy{}},
	{"core/archive.save:index.dv", failpoint.Policy{}},
	{"core/archive.save:images.dv", failpoint.Policy{}},
	{"core/archive.save:fs.dv", failpoint.Policy{}},
	{"core/archive.save:archive.dv", failpoint.Policy{}},
	{"record/save:commands.dv", failpoint.Policy{}},
	{"record/save:screens.dv", failpoint.Policy{}},
	{"record/save:timeline.dv", failpoint.Policy{}},
	{"record/save:meta.dv", failpoint.Policy{}},
	{"vexec/images.save", failpoint.Policy{}},
	// Disk-level failures mid-stream: the write fails after some bytes
	// already landed in the temp file, fails with a short write, the
	// rename into place fails, or creating the second temp file fails.
	{"atomicfile/write", failpoint.Policy{AfterBytes: 512}},
	{"atomicfile/write", failpoint.Policy{Mode: failpoint.ModeShortWrite, Nth: 2}},
	{"atomicfile/rename", failpoint.Policy{}},
	{"atomicfile/rename", failpoint.Policy{Nth: 3}},
	{"atomicfile/create", failpoint.Policy{Nth: 2}},
	{"compress/writer", failpoint.Policy{AfterBytes: 256}},
}

// openPoints are the failpoints that can fire while reopening one.
var openPoints = []struct {
	name string
	pol  failpoint.Policy
}{
	{"core/archive.open", failpoint.Policy{}},
	{"core/archive.open:index.dv", failpoint.Policy{}},
	{"core/archive.open:images.dv", failpoint.Policy{}},
	{"core/archive.open:fs.dv", failpoint.Policy{}},
	{"record/open:meta.dv", failpoint.Policy{}},
	{"record/open:commands.dv", failpoint.Policy{}},
	{"record/open:timeline.dv", failpoint.Policy{}},
	{"record/open:screens.dv", failpoint.Policy{}},
	{"vexec/images.load", failpoint.Policy{}},
	// Disk-level read failures: hard error mid-stream, a flipped bit in
	// the compressed container (CRC must catch it), and a silently
	// truncated stream (the frame terminator must catch it).
	{"vexec/images.read", failpoint.Policy{AfterBytes: 128}},
	{"compress/reader", failpoint.Policy{AfterBytes: 64}},
	{"compress/reader", failpoint.Policy{Mode: failpoint.ModeCorrupt, AfterBytes: 96}},
	{"compress/reader", failpoint.Policy{Mode: failpoint.ModeShortWrite, AfterBytes: 512}},
}

// noTempLitter fails the test if any staging temp file survived under
// dir.
func noTempLitter(t *testing.T, dir string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", path)
		}
		return nil
	})
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("walk %s: %v", dir, err)
	}
}

// TestSaveFailClosed arms each save-side failpoint and asserts a failed
// SaveArchive (a) reports the injected error, (b) leaves no temp litter,
// (c) leaves nothing a later OpenArchive would mistake for an archive,
// and (d) when re-saving over a previous good archive, leaves that
// archive fully intact and equivalent.
func TestSaveFailClosed(t *testing.T) {
	sc, err := ScenarioByName("screentrack")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(sc, core.Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// A known-good archive to re-save over, and its fingerprint.
	goodDir := filepath.Join(t.TempDir(), "good")
	if err := s.SaveArchive(goodDir); err != nil {
		t.Fatalf("SaveArchive: %v", err)
	}
	a, err := core.OpenArchive(goodDir)
	if err != nil {
		t.Fatalf("OpenArchive: %v", err)
	}
	want, err := Snapshot(Archived(a), sc.Queries)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	for _, fp := range savePoints {
		t.Run(fp.name+"/"+fp.pol.String(), func(t *testing.T) {
			defer failpoint.Reset()

			// Fresh-directory save must fail closed and leave nothing
			// openable behind.
			failpoint.Arm(fp.name, fp.pol)
			dir := filepath.Join(t.TempDir(), "archive")
			err := s.SaveArchive(dir)
			if err == nil {
				t.Fatalf("SaveArchive succeeded with %s armed", fp.name)
			}
			// ModeShortWrite surfaces as io.ErrShortWrite (a real disk
			// short write carries no sentinel); error mode must keep the
			// injected sentinel visible through every wrap layer.
			if fp.pol.Mode == failpoint.ModeError && !errors.Is(err, failpoint.ErrInjected) {
				t.Fatalf("error does not wrap ErrInjected: %v", err)
			}
			if failpoint.Fired(fp.name) == 0 {
				t.Fatalf("failpoint %s never fired", fp.name)
			}
			failpoint.Reset()
			noTempLitter(t, dir)
			if _, err := core.OpenArchive(dir); err == nil {
				t.Error("partial archive opened successfully")
			}

			// Re-save over the good archive must leave it intact.
			failpoint.Arm(fp.name, fp.pol)
			if err := s.SaveArchive(goodDir); err == nil {
				t.Fatalf("re-save succeeded with %s armed", fp.name)
			}
			failpoint.Reset()
			noTempLitter(t, goodDir)
			a2, err := core.OpenArchive(goodDir)
			if err != nil {
				t.Fatalf("good archive no longer opens after failed re-save: %v", err)
			}
			got, err := Snapshot(Archived(a2), sc.Queries)
			if err != nil {
				t.Fatalf("snapshot after failed re-save: %v", err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("good archive changed under failed re-save:\n want: %+v\n got:  %+v", want, got)
			}
		})
	}
}

// TestOpenFailClosed arms each open-side failpoint against a good
// archive and asserts OpenArchive reports a non-nil error — never a
// panic, never a silently shorter or emptier session.
func TestOpenFailClosed(t *testing.T) {
	sc, err := ScenarioByName("screentrack")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(sc, core.Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "archive")
	if err := s.SaveArchive(dir); err != nil {
		t.Fatalf("SaveArchive: %v", err)
	}

	for _, fp := range openPoints {
		t.Run(fp.name+"/"+fp.pol.String(), func(t *testing.T) {
			defer failpoint.Reset()
			failpoint.Arm(fp.name, fp.pol)
			a, err := core.OpenArchive(dir)
			if err == nil {
				t.Fatalf("OpenArchive succeeded with %s armed (checkpoints=%d)",
					fp.name, a.Checkpoints())
			}
			if failpoint.Fired(fp.name) == 0 {
				t.Fatalf("failpoint %s never fired", fp.name)
			}
			// Error modes must surface the injected sentinel through the
			// wrap chain; corruption modes surface as format errors
			// instead (the CRC or terminator catches them), so only the
			// error modes assert the chain.
			if fp.pol.Mode == failpoint.ModeError && !errors.Is(err, failpoint.ErrInjected) {
				t.Errorf("error does not wrap ErrInjected: %v", err)
			}
		})
	}

	// Unarmed control: the same archive still opens fine afterwards.
	failpoint.Reset()
	if _, err := core.OpenArchive(dir); err != nil {
		t.Fatalf("archive does not open after matrix: %v", err)
	}
}

// TestReviveFailClosed arms the revive failpoint and asserts TakeMeBack
// fails with a wrapped error on both the live session and the archive.
func TestReviveFailClosed(t *testing.T) {
	sc, err := ScenarioByName("screentrack")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(sc, core.Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "archive")
	if err := s.SaveArchive(dir); err != nil {
		t.Fatalf("SaveArchive: %v", err)
	}
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatalf("OpenArchive: %v", err)
	}

	defer failpoint.Reset()
	failpoint.Arm("core/revive", failpoint.Policy{})
	if _, err := s.TakeMeBack(s.Clock().Now()); !errors.Is(err, failpoint.ErrInjected) {
		t.Errorf("live revive: error does not wrap ErrInjected: %v", err)
	}
	if _, err := a.TakeMeBack(a.End); !errors.Is(err, failpoint.ErrInjected) {
		t.Errorf("archive revive: error does not wrap ErrInjected: %v", err)
	}
	failpoint.Reset()
	if _, err := a.TakeMeBack(a.End); err != nil {
		t.Errorf("revive still failing after disarm: %v", err)
	}
}

// TestRecordSaveFailClosed exercises the record store's own two-phase
// commit below the archive layer: a mid-write disk failure during
// record.Store.Save must leave the previous record directory fully
// readable and byte-identical.
func TestRecordSaveFailClosed(t *testing.T) {
	sc, err := ScenarioByName("screentrack")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(sc, core.Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "rec")
	st := s.Recorder().Store()
	if err := st.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	before := readAll(t, dir)

	defer failpoint.Reset()
	for _, name := range []string{"atomicfile/write", "atomicfile/rename"} {
		failpoint.Arm(name, failpoint.Policy{AfterBytes: 256})
		if err := st.Save(dir); !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("%s: Save error = %v, want ErrInjected", name, err)
		}
		failpoint.Reset()
		noTempLitter(t, dir)
		if got := readAll(t, dir); !reflect.DeepEqual(before, got) {
			t.Errorf("%s: record files changed under failed re-save", name)
		}
	}
}

// readAll returns dir's regular files as name→contents.
func readAll(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		out[e.Name()] = string(b)
	}
	return out
}
