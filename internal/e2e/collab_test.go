package e2e

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/remote"
	"dejaview/internal/simclock"
)

// The collaborative workload: one session, many concurrent writers all
// driving it through the remote input path while its desktop keeps
// running and checkpointing. This is the shared-desktop shape from the
// paper's collaboration scenario, and the test pins down the concurrency
// contract around it: every writer's events reach the session (exactly
// once, counted), writers beyond the session's client budget are shed
// with the typed busy error and accounted as admission rejects — never
// as evictions — and the session's record stays WYSIWYS-equivalent
// across the save/open boundary afterwards.

func TestCollaborativeWriters(t *testing.T) {
	const (
		writers      = 8
		shedWriters  = 3
		writerRounds = 40 // per writer: key down + key up + pointer move
	)
	sc, err := ScenarioByName("editor")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(sc, core.Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	srv := serveSession(t, s, remote.Options{MaxClientsPerSession: writers})
	addr := srv.Addr().String()

	// The full writer quota connects...
	conns := make([]*remote.Client, writers)
	for i := range conns {
		c, err := remote.Dial(addr)
		if err != nil {
			t.Fatalf("writer %d dial: %v", i, err)
		}
		t.Cleanup(func() { c.Close() })
		conns[i] = c
	}
	// ...and every writer past it is shed with the typed busy error at
	// the handshake, before it can block anyone's display path.
	for i := 0; i < shedWriters; i++ {
		c, err := remote.Dial(addr)
		if err == nil {
			c.Close()
			t.Fatalf("writer %d over quota was admitted", writers+i)
		}
		if !errors.Is(err, remote.ErrBusy) {
			t.Fatalf("writer %d over quota: got %v, want ErrBusy", writers+i, err)
		}
	}

	// All writers hammer the input path concurrently. Event times are
	// writer-local (remote collaborators do not share the session's
	// clock, which the desktop below is advancing).
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i, c := range conns {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < writerRounds; k++ {
				at := simclock.Time(k) * simclock.Second
				if err := c.SendKey(at, uint32('a'+i), true); err != nil {
					errs <- fmt.Errorf("writer %d key down: %w", i, err)
					return
				}
				if err := c.SendKey(at, uint32('a'+i), false); err != nil {
					errs <- fmt.Errorf("writer %d key up: %w", i, err)
					return
				}
				if err := c.SendPointerMove(at, int32(i*80+k), int32(k)); err != nil {
					errs <- fmt.Errorf("writer %d pointer: %w", i, err)
					return
				}
			}
		}()
	}

	// Meanwhile the session keeps rendering, ticking its checkpoint
	// policy (which reads the very input state the writers are noting),
	// and advancing time.
	for i := 0; i < 10; i++ {
		if err := s.Display().Submit(display.SolidFill(s.Clock().Now(),
			display.NewRect((i*61)%512, (i*41)%600, 200, 120), display.Pixel(i*2654435761+13))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Display().Flush(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Tick(); err != nil {
			t.Fatal(err)
		}
		s.Clock().Advance(simclock.Second)
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Input frames are fire-and-forget, so poll until the daemon has
	// counted every event; then the counters must match expectations
	// exactly: all events delivered, the shed writers accounted as
	// admission rejects, and nobody evicted (input never queues toward a
	// slow reader).
	const wantEvents = writers * writerRounds * 3
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st.InputEvents == wantEvents {
			if st.AdmissionRejects != shedWriters {
				t.Errorf("AdmissionRejects %d, want %d", st.AdmissionRejects, shedWriters)
			}
			if st.Evicted != 0 {
				t.Errorf("Evicted %d, want 0", st.Evicted)
			}
			if st.ActiveClients != writers {
				t.Errorf("ActiveClients %d, want %d", st.ActiveClients, writers)
			}
			break
		}
		if st.InputEvents > wantEvents {
			t.Fatalf("InputEvents %d, want exactly %d", st.InputEvents, wantEvents)
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v (want %d input events)", st, wantEvents)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The collaborative session still archives to a WYSIWYS-equivalent
	// fingerprint: input drove checkpointing but never entered the
	// record.
	dir := filepath.Join(t.TempDir(), "archive")
	if err := s.SaveArchive(dir); err != nil {
		t.Fatalf("SaveArchive: %v", err)
	}
	live, err := Snapshot(Live(s), sc.Queries)
	if err != nil {
		t.Fatalf("live snapshot: %v", err)
	}
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatalf("OpenArchive: %v", err)
	}
	archived, err := Snapshot(Archived(a), sc.Queries)
	if err != nil {
		t.Fatalf("archive snapshot: %v", err)
	}
	if !reflect.DeepEqual(live, archived) {
		t.Errorf("collaborative session's archive diverges from live:\n live: %+v\n arch: %+v", live, archived)
	}
}
