package index

import (
	"reflect"
	"testing"
)

func TestRandomTermsDeterministic(t *testing.T) {
	ix := New()
	ix.SetItem(0, mkItem(1, "A", "w", "alpha beta gamma delta epsilon"))
	a := ix.RandomTerms(3, 7)
	b := ix.RandomTerms(3, 7)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced %v vs %v", a, b)
	}
	if len(a) != 3 {
		t.Errorf("len = %d", len(a))
	}
	all := ix.RandomTerms(100, 7)
	if len(all) != 5 {
		t.Errorf("capped sample = %d, want vocabulary size 5", len(all))
	}
	seen := map[string]bool{}
	for _, term := range all {
		if seen[term] {
			t.Errorf("duplicate term %q", term)
		}
		seen[term] = true
	}
}

func TestRandomTermsEmptyIndex(t *testing.T) {
	ix := New()
	if got := ix.RandomTerms(5, 1); len(got) != 0 {
		t.Errorf("empty index returned %v", got)
	}
}
