package index

import (
	"reflect"
	"testing"

	"dejaview/internal/access"
	"dejaview/internal/simclock"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"", nil},
		{"   ", nil},
		{"SOSP'07 paper-review", []string{"sosp", "07", "paper", "review"}},
		{"x86_64", []string{"x86", "64"}},
		{"Déjà Vu", []string{"déjà", "vu"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenSet(t *testing.T) {
	s := TokenSet("the cat and the hat")
	if len(s) != 4 {
		t.Errorf("TokenSet size = %d, want 4", len(s))
	}
	if _, ok := s["the"]; !ok {
		t.Error("missing term")
	}
}

// mkItem builds a TextItem for tests.
func mkItem(id access.ComponentID, app, window, text string) access.TextItem {
	return access.TextItem{
		Component: id,
		App:       app,
		AppKind:   app + "-kind",
		Window:    window,
		Role:      access.RoleParagraph,
		Text:      text,
	}
}

const sec = simclock.Second

func TestIndexVisibilityIntervals(t *testing.T) {
	ix := New()
	// "budget report" visible from 10s to 50s in OpenOffice.
	ix.SetItem(10*sec, mkItem(1, "OpenOffice", "report.odt", "budget report draft"))
	ix.RemoveItem(50*sec, 1)

	res, err := ix.Search(Query{All: []string{"budget"}}, 100*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	if res[0].Interval != iv(10*sec, 50*sec) {
		t.Errorf("interval = %v, want [10s, 50s)", res[0].Interval)
	}
	if res[0].Persistence != 40*sec {
		t.Errorf("persistence = %v, want 40s", res[0].Persistence)
	}
}

func TestIndexOpenOccurrenceSearchable(t *testing.T) {
	ix := New()
	ix.SetItem(5*sec, mkItem(1, "Firefox", "news", "breaking headline"))
	// Still on screen at query time 30s.
	res, err := ix.Search(Query{All: []string{"headline"}}, 30*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	if res[0].Interval.Start != 5*sec {
		t.Errorf("start = %v", res[0].Interval.Start)
	}
	if res[0].Interval.End < 30*sec {
		t.Errorf("open occurrence should extend to now, end = %v", res[0].Interval.End)
	}
}

func TestIndexTextChangeClosesOldInterval(t *testing.T) {
	ix := New()
	ix.SetItem(0, mkItem(1, "Terminal", "bash", "make all"))
	ix.SetItem(20*sec, mkItem(1, "Terminal", "bash", "make test"))

	res, err := ix.Search(Query{All: []string{"all"}}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval != iv(0, 20*sec) {
		t.Fatalf("old text interval = %+v", res)
	}
	res, err = ix.Search(Query{All: []string{"test"}}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval.Start != 20*sec {
		t.Fatalf("new text interval = %+v", res)
	}
	// "make" spans both occurrences contiguously → single substream.
	res, err = ix.Search(Query{All: []string{"make"}}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval.Start != 0 {
		t.Fatalf("contiguous term = %+v", res)
	}
}

func TestIndexRedundantSetItemIgnored(t *testing.T) {
	ix := New()
	item := mkItem(1, "App", "w", "same text")
	ix.SetItem(0, item)
	ix.SetItem(10*sec, item)
	st := ix.Stats()
	if st.Occurrences != 1 {
		t.Errorf("Occurrences = %d, want 1", st.Occurrences)
	}
	if st.Redundant != 1 {
		t.Errorf("Redundant = %d, want 1", st.Redundant)
	}
}

func TestIndexTemporalConjunction(t *testing.T) {
	// The paper's example: find when the paper was being read while a
	// particular web page was open.
	ix := New()
	ix.SetItem(0, mkItem(1, "Firefox", "conference site", "sosp program page"))
	ix.RemoveItem(100*sec, 1)
	ix.SetItem(60*sec, mkItem(2, "Acrobat", "paper.pdf", "dejaview virtual computer recorder"))
	ix.RemoveItem(200*sec, 2)

	res, err := ix.Search(Query{All: []string{"sosp", "dejaview"}}, 300*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	if res[0].Interval != iv(60*sec, 100*sec) {
		t.Errorf("overlap = %v, want [60s, 100s)", res[0].Interval)
	}
}

func TestIndexAnyOrQuery(t *testing.T) {
	ix := New()
	ix.SetItem(0, mkItem(1, "A", "w", "alpha only"))
	ix.RemoveItem(10*sec, 1)
	ix.SetItem(20*sec, mkItem(2, "B", "w", "beta only"))
	ix.RemoveItem(30*sec, 2)

	res, err := ix.Search(Query{Any: []string{"alpha", "beta"}}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2 substreams", len(res))
	}
}

func TestIndexNotQuery(t *testing.T) {
	ix := New()
	ix.SetItem(0, mkItem(1, "A", "w", "target phrase"))
	ix.RemoveItem(100*sec, 1)
	// Distractor visible 40-60s anywhere on the desktop.
	ix.SetItem(40*sec, mkItem(2, "B", "w2", "distractor"))
	ix.RemoveItem(60*sec, 2)

	res, err := ix.Search(Query{All: []string{"target"}, None: []string{"distractor"}}, 200*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2 (hole cut by NOT)", len(res))
	}
	if res[0].Interval != iv(0, 40*sec) || res[1].Interval != iv(60*sec, 100*sec) {
		t.Errorf("intervals = %v, %v", res[0].Interval, res[1].Interval)
	}
}

func TestIndexAppConstraint(t *testing.T) {
	ix := New()
	ix.SetItem(0, mkItem(1, "Firefox", "page", "meeting notes"))
	ix.RemoveItem(10*sec, 1)
	ix.SetItem(20*sec, mkItem(2, "OpenOffice", "doc", "meeting notes"))
	ix.RemoveItem(30*sec, 2)

	res, err := ix.Search(Query{All: []string{"meeting"}, App: "Firefox"}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval != iv(0, 10*sec) {
		t.Fatalf("app-constrained results = %+v", res)
	}
	// Kind constraint.
	res, err = ix.Search(Query{All: []string{"meeting"}, AppKind: "OpenOffice-kind"}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval.Start != 20*sec {
		t.Fatalf("kind-constrained results = %+v", res)
	}
}

func TestIndexWindowSubstringConstraint(t *testing.T) {
	ix := New()
	ix.SetItem(0, mkItem(1, "Firefox", "SOSP 2007 - Mozilla Firefox", "paper deadline"))
	ix.RemoveItem(10*sec, 1)
	res, err := ix.Search(Query{All: []string{"deadline"}, Window: "SOSP"}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("window-constrained results = %d", len(res))
	}
	res, err = ix.Search(Query{All: []string{"deadline"}, Window: "OSDI"}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("mismatched window returned %d results", len(res))
	}
}

func TestIndexFocusedConstraint(t *testing.T) {
	ix := New()
	unfocused := mkItem(1, "A", "w", "secret word")
	ix.SetItem(0, unfocused)
	ix.RemoveItem(10*sec, 1)
	focused := mkItem(2, "B", "w2", "secret word")
	focused.Focused = true
	ix.SetItem(20*sec, focused)
	ix.RemoveItem(30*sec, 2)

	res, err := ix.Search(Query{All: []string{"secret"}, FocusedOnly: true}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval.Start != 20*sec {
		t.Fatalf("focused-only results = %+v", res)
	}
}

func TestIndexTimeRange(t *testing.T) {
	ix := New()
	ix.SetItem(0, mkItem(1, "A", "w", "recurring word"))
	ix.RemoveItem(10*sec, 1)
	ix.SetItem(50*sec, mkItem(2, "A", "w", "recurring word"))
	ix.RemoveItem(60*sec, 2)

	res, err := ix.Search(Query{All: []string{"recurring"}, From: 40 * sec, To: 70 * sec}, 100*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval.Start != 50*sec {
		t.Fatalf("time-ranged results = %+v", res)
	}
}

func TestIndexAnnotations(t *testing.T) {
	ix := New()
	ix.SetItem(0, mkItem(1, "Editor", "notes", "remember the milk"))
	ix.Annotate(30*sec, mkItem(1, "Editor", "notes", "remember the milk"))

	res, err := ix.Search(Query{All: []string{"milk"}, AnnotatedOnly: true}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("annotated results = %d, want 1", len(res))
	}
	if res[0].Time != 30*sec {
		t.Errorf("annotation time = %v, want 30s", res[0].Time)
	}
	if ix.Stats().Annotations != 1 {
		t.Errorf("Annotations stat = %d", ix.Stats().Annotations)
	}
}

func TestIndexContextOnlyQuery(t *testing.T) {
	ix := New()
	ix.SetItem(0, mkItem(1, "Firefox", "w", "something"))
	ix.RemoveItem(10*sec, 1)
	res, err := ix.Search(Query{App: "Firefox"}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("context-only results = %d, want 1", len(res))
	}
}

func TestIndexEmptyQueryRejected(t *testing.T) {
	ix := New()
	if _, err := ix.Search(Query{}, 0); err != ErrEmptyQuery {
		t.Errorf("err = %v, want ErrEmptyQuery", err)
	}
	if _, err := ix.SearchConjunction(nil, 0); err != ErrEmptyQuery {
		t.Errorf("conjunction err = %v, want ErrEmptyQuery", err)
	}
}

func TestIndexSearchConjunction(t *testing.T) {
	// "words in a Firefox window AND other words visible anywhere".
	ix := New()
	ix.SetItem(0, mkItem(1, "Firefox", "wiki", "checkpoint restart"))
	ix.RemoveItem(100*sec, 1)
	ix.SetItem(50*sec, mkItem(2, "Terminal", "bash", "kernel build output"))
	ix.RemoveItem(150*sec, 2)

	res, err := ix.SearchConjunction([]Query{
		{All: []string{"checkpoint"}, App: "Firefox"},
		{All: []string{"kernel"}},
	}, 300*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval != iv(50*sec, 100*sec) {
		t.Fatalf("conjunction results = %+v", res)
	}
}

func TestIndexCaseInsensitive(t *testing.T) {
	ix := New()
	ix.SetItem(0, mkItem(1, "A", "w", "MixedCase Words"))
	ix.RemoveItem(10*sec, 1)
	res, err := ix.Search(Query{All: []string{"MIXEDCASE"}}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("case-insensitive search failed: %d results", len(res))
	}
}

func TestIndexOrderings(t *testing.T) {
	ix := New()
	// Long-lived occurrence: 0-100s. Brief: 200-201s.
	ix.SetItem(0, mkItem(1, "A", "w", "hint always visible"))
	ix.RemoveItem(100*sec, 1)
	ix.SetItem(200*sec, mkItem(2, "B", "w", "hint brief"))
	ix.RemoveItem(201*sec, 2)

	res, err := ix.Search(Query{All: []string{"hint"}, Order: OrderChronological}, 300*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Time != 0 {
		t.Fatalf("chronological = %+v", res)
	}
	res, err = ix.Search(Query{All: []string{"hint"}, Order: OrderPersistence}, 300*sec)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Time != 200*sec {
		t.Errorf("persistence order should put the brief match first: %+v", res)
	}
}

func TestIndexLimit(t *testing.T) {
	ix := New()
	for i := 0; i < 10; i++ {
		id := access.ComponentID(i + 1)
		t0 := simclock.Time(i*20) * sec
		ix.SetItem(t0, mkItem(id, "A", "w", "periodic beep"))
		ix.RemoveItem(t0+5*sec, id)
	}
	res, err := ix.Search(Query{All: []string{"beep"}, Limit: 3}, 1000*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Errorf("limited results = %d, want 3", len(res))
	}
}

func TestIndexSnippetsAndMatches(t *testing.T) {
	ix := New()
	ix.SetItem(0, mkItem(1, "A", "w", "needle in the haystack"))
	ix.RemoveItem(10*sec, 1)
	res, err := ix.Search(Query{All: []string{"needle"}}, 60*sec)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Matches != 1 {
		t.Errorf("Matches = %d", res[0].Matches)
	}
	if len(res[0].Snippets) != 1 || res[0].Snippets[0] != "needle in the haystack" {
		t.Errorf("Snippets = %v", res[0].Snippets)
	}
}

func TestIndexCloseAll(t *testing.T) {
	ix := New()
	ix.SetItem(0, mkItem(1, "A", "w", "open text"))
	ix.CloseAll(42 * sec)
	if ix.Stats().OpenOccurrences != 0 {
		t.Error("CloseAll left open occurrences")
	}
	res, err := ix.Search(Query{All: []string{"open"}}, 100*sec)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Interval.End != 42*sec {
		t.Errorf("closed end = %v, want 42s", res[0].Interval.End)
	}
}

func TestIndexStatsGrow(t *testing.T) {
	ix := New()
	b0 := ix.Bytes()
	ix.SetItem(0, mkItem(1, "A", "w", "words grow the database size"))
	if ix.Bytes() <= b0 {
		t.Error("Bytes should grow on insert")
	}
	st := ix.Stats()
	if st.Terms == 0 || st.Occurrences != 1 {
		t.Errorf("stats = %+v", st)
	}
}
