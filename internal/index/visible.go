package index

// Visual-history browsing support: the time-machine browser shows a
// thumbnail timeline and, for a chosen thumbnail, answers "what
// document/app was I looking at here?" (ScreenTrack, arXiv 2001.10898).
// The answer comes straight from the visibility intervals the index
// already stores for search — no extra state is recorded.

import (
	"sort"

	"dejaview/internal/access"
	"dejaview/internal/simclock"
)

// VisibleItem is one piece of on-screen text at a browse instant: the
// captured item with its context (app, window, role, focus) plus the
// full visibility interval it belongs to, so a browser can show how long
// the document stayed on screen around the chosen moment.
type VisibleItem struct {
	Item       access.TextItem
	Interval   Interval
	Annotation bool
}

// VisibleAt returns every text item visible at time t, focused items
// first, then ordered by app, window, and component for a deterministic
// listing. Annotations active at t are included and flagged.
func (ix *Index) VisibleAt(t simclock.Time) []VisibleItem {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var out []VisibleItem
	for i := range ix.occs {
		o := &ix.occs[i]
		if !o.interval().Contains(t) {
			continue
		}
		out = append(out, VisibleItem{
			Item:       o.item,
			Interval:   o.interval(),
			Annotation: o.annotation,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Item.Focused != b.Item.Focused {
			return a.Item.Focused
		}
		if a.Item.App != b.Item.App {
			return a.Item.App < b.Item.App
		}
		if a.Item.Window != b.Item.Window {
			return a.Item.Window < b.Item.Window
		}
		if a.Item.Component != b.Item.Component {
			return a.Item.Component < b.Item.Component
		}
		return a.Interval.Start < b.Interval.Start
	})
	return out
}

// FocusedAt returns the focused items visible at t — the browser's best
// answer to "which document was the user working in?".
func (ix *Index) FocusedAt(t simclock.Time) []VisibleItem {
	all := ix.VisibleAt(t)
	n := 0
	for _, v := range all {
		if !v.Item.Focused {
			break // focused items sort first
		}
		n++
	}
	return all[:n]
}
