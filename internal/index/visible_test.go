package index

import (
	"testing"

	"dejaview/internal/access"
	"dejaview/internal/simclock"
)

func TestVisibleAt(t *testing.T) {
	ix := New()
	sec := func(n int) simclock.Time { return simclock.Time(n) * simclock.Second }
	ix.SetItem(sec(0), access.TextItem{
		Component: 1, App: "editor", Window: "draft.txt", Focused: true,
		Text: "the quick brown fox",
	})
	ix.SetItem(sec(2), access.TextItem{
		Component: 2, App: "browser", Window: "news", Text: "daily headlines",
	})
	ix.RemoveItem(sec(5), 2) // browser page closes at 5s
	ix.SetItem(sec(6), access.TextItem{
		Component: 3, App: "terminal", Window: "shell", Text: "make all",
	})
	ix.Annotate(sec(3), access.TextItem{
		Component: 9, App: "editor", Window: "draft.txt", Text: "todo revise",
	})

	// At 3s: editor (focused, listed first), browser, and the annotation.
	vis := ix.VisibleAt(sec(3))
	if len(vis) != 3 {
		t.Fatalf("VisibleAt(3s) = %d items, want 3", len(vis))
	}
	if !vis[0].Item.Focused || vis[0].Item.App != "editor" {
		t.Errorf("first visible item = %+v, want the focused editor", vis[0].Item)
	}
	var annotated int
	for _, v := range vis {
		if v.Annotation {
			annotated++
		}
	}
	if annotated != 1 {
		t.Errorf("%d annotations visible, want 1", annotated)
	}

	// At 7s the browser page is gone and the terminal is on screen.
	for _, v := range ix.VisibleAt(sec(7)) {
		if v.Item.App == "browser" {
			t.Error("closed browser page still visible at 7s")
		}
		if v.Item.App == "terminal" && !v.Interval.Contains(sec(7)) {
			t.Errorf("terminal interval %v does not contain 7s", v.Interval)
		}
	}

	// Before anything appeared, nothing is visible.
	if got := ix.VisibleAt(sec(0) - 1); len(got) != 0 {
		t.Errorf("VisibleAt before start = %d items, want 0", len(got))
	}

	// FocusedAt is the focused prefix.
	foc := ix.FocusedAt(sec(3))
	if len(foc) != 1 || foc[0].Item.App != "editor" {
		t.Errorf("FocusedAt(3s) = %+v, want just the editor", foc)
	}
}

// TestVisibleAtDeterministic: repeated calls return identical ordering
// (the browser's listing must be stable for fingerprints).
func TestVisibleAtDeterministic(t *testing.T) {
	ix := New()
	for i := 0; i < 20; i++ {
		ix.SetItem(0, access.TextItem{
			Component: access.ComponentID(i),
			App:       string(rune('a' + i%5)),
			Window:    "w",
			Focused:   i%4 == 0,
			Text:      "text",
		})
	}
	a := ix.VisibleAt(simclock.Second)
	b := ix.VisibleAt(simclock.Second)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("got %d/%d items, want 20", len(a), len(b))
	}
	for i := range a {
		if a[i].Item.Component != b[i].Item.Component {
			t.Fatalf("ordering unstable at %d: %v vs %v", i, a[i].Item.Component, b[i].Item.Component)
		}
		if i > 0 && a[i-1].Item.Focused != a[i].Item.Focused && !a[i-1].Item.Focused {
			t.Fatalf("unfocused item at %d precedes focused", i)
		}
	}
}
