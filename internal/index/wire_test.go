package index

import (
	"encoding/binary"
	"errors"
	"testing"

	"dejaview/internal/simclock"
)

func TestWireQueryRoundTrip(t *testing.T) {
	queries := []Query{
		{All: []string{"alpha", "beta"}},
		{Any: []string{"x"}, None: []string{"y", "z"}, App: "Firefox",
			AppKind: "browser", Window: "inbox", FocusedOnly: true,
			AnnotatedOnly: true, From: 3 * simclock.Second,
			To: simclock.Minute, Order: OrderFrequency, Limit: 7},
		{},
	}
	for _, q := range queries {
		got, err := DecodeQuery(EncodeQuery(q))
		if err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		if len(got.All) != len(q.All) || len(got.Any) != len(q.Any) ||
			len(got.None) != len(q.None) {
			t.Fatalf("term counts changed: got %+v want %+v", got, q)
		}
		for i := range q.All {
			if got.All[i] != q.All[i] {
				t.Errorf("All[%d] = %q want %q", i, got.All[i], q.All[i])
			}
		}
		if got.App != q.App || got.AppKind != q.AppKind || got.Window != q.Window ||
			got.FocusedOnly != q.FocusedOnly || got.AnnotatedOnly != q.AnnotatedOnly ||
			got.From != q.From || got.To != q.To || got.Order != q.Order ||
			got.Limit != q.Limit {
			t.Errorf("round trip: got %+v want %+v", got, q)
		}
	}
}

func TestWireResultsRoundTrip(t *testing.T) {
	rs := []Result{
		{Interval: Interval{Start: 1, End: 9}, Time: 1, Persistence: 8,
			Matches: 3, Snippets: []string{"a note", "b note"}},
		{Interval: Interval{Start: 20, End: 21}, Time: 20, Matches: 1},
	}
	got, err := DecodeResults(EncodeResults(rs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rs) {
		t.Fatalf("len = %d want %d", len(got), len(rs))
	}
	for i := range rs {
		if got[i].Interval != rs[i].Interval || got[i].Time != rs[i].Time ||
			got[i].Persistence != rs[i].Persistence || got[i].Matches != rs[i].Matches ||
			len(got[i].Snippets) != len(rs[i].Snippets) {
			t.Errorf("result %d: got %+v want %+v", i, got[i], rs[i])
		}
	}
	if empty, err := DecodeResults(EncodeResults(nil)); err != nil || len(empty) != 0 {
		t.Errorf("empty results = %v, %v", empty, err)
	}
}

func TestWireDecodeRejectsCorruption(t *testing.T) {
	// Truncated query.
	if _, err := DecodeQuery([]byte{1}); !errors.Is(err, ErrCorruptWire) {
		t.Errorf("truncated query err = %v", err)
	}
	// Implausible term count.
	bad := make([]byte, 2)
	binary.LittleEndian.PutUint16(bad, maxWireTerms+1)
	if _, err := DecodeQuery(bad); !errors.Is(err, ErrCorruptWire) {
		t.Errorf("term-bomb query err = %v", err)
	}
	// Implausible result count does not allocate maxWireResults entries.
	huge := make([]byte, 4)
	binary.LittleEndian.PutUint32(huge, maxWireResults+1)
	if _, err := DecodeResults(huge); !errors.Is(err, ErrCorruptWire) {
		t.Errorf("result-bomb err = %v", err)
	}
	// A declared-but-missing result body is corruption, not a panic.
	binary.LittleEndian.PutUint32(huge, 5)
	if _, err := DecodeResults(huge); !errors.Is(err, ErrCorruptWire) {
		t.Errorf("truncated results err = %v", err)
	}
	// Bad order byte.
	q := EncodeQuery(Query{All: []string{"a"}})
	q[len(q)-5] = 99 // order byte precedes the u32 limit
	if _, err := DecodeQuery(q); !errors.Is(err, ErrCorruptWire) {
		t.Errorf("bad order err = %v", err)
	}
}
