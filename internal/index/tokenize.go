package index

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase search terms: maximal runs of
// letters and digits. It mirrors a simple full-text stemmerless analyzer
// (Tsearch2's default behaviour is richer; keyword matching is what the
// paper's queries need).
func Tokenize(text string) []string {
	var terms []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			terms = append(terms, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return terms
}

// TokenSet returns the distinct terms of text.
func TokenSet(text string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, t := range Tokenize(text) {
		set[t] = struct{}{}
	}
	return set
}
