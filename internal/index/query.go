package index

import (
	"errors"
	"sort"
	"strings"

	"dejaview/internal/obs"
	"dejaview/internal/simclock"
)

// Registry instruments for query evaluation.
var (
	obsSearches = obs.Default.Counter("index.searches")
	obsSearchMS = obs.Default.Histogram("index.search_ms", obs.LatencyBuckets...)
)

// Order selects result ranking (§4.4: "ordered according to several
// user-defined criteria").
type Order int

// Result orderings.
const (
	// OrderChronological sorts by interval start time, earliest first.
	OrderChronological Order = iota
	// OrderPersistence sorts briefly-visible matches first: the paper
	// observes that a user may be less interested in text that was
	// always visible and more in text that appeared only briefly.
	OrderPersistence
	// OrderFrequency sorts by number of contributing occurrences,
	// highest first.
	OrderFrequency
)

// Query is one boolean keyword search over the record, with the
// contextual constraints §4.4 describes: terms tied to an application, a
// window, focus state, annotations, or a time range.
type Query struct {
	// All lists terms that must all be visible simultaneously.
	All []string
	// Any lists alternative terms; at least one must be visible.
	Any []string
	// None lists terms that must not be visible anywhere on the desktop
	// at the matching times.
	None []string
	// App restricts matching occurrences to an application name
	// (e.g. "Firefox"); empty matches all.
	App string
	// AppKind restricts by application type (e.g. "browser").
	AppKind string
	// Window restricts by substring match on the window title.
	Window string
	// FocusedOnly restricts to text in applications that had the
	// window focus.
	FocusedOnly bool
	// AnnotatedOnly restricts to explicitly annotated text.
	AnnotatedOnly bool
	// From/To restrict the time range; To == 0 means "until now".
	From, To simclock.Time
	// Order selects the ranking; Limit truncates results (0 = all).
	Order Order
	Limit int
}

// Result is one match: a substream of the record over which the query is
// continuously satisfied, represented by its first-last interval (§4.4,
// borrowing "substream" from Lifestreams).
type Result struct {
	// Interval is the contiguous period during which the query held.
	Interval Interval
	// Time is the representative timestamp used to generate the result
	// screenshot (the substream start).
	Time simclock.Time
	// Persistence is how long the matching text stayed on screen.
	Persistence simclock.Time
	// Matches counts contributing occurrences.
	Matches int
	// Snippets holds up to three contributing text fragments.
	Snippets []string
}

// ErrEmptyQuery reports a query with no terms and no constraints.
var ErrEmptyQuery = errors.New("index: empty query")

// Search evaluates q against the index as of time now. It returns the
// matching substreams ranked per q.Order.
func (ix *Index) Search(q Query, now simclock.Time) ([]Result, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(q.All) == 0 && len(q.Any) == 0 && q.App == "" && q.AppKind == "" &&
		q.Window == "" && !q.FocusedOnly && !q.AnnotatedOnly {
		return nil, ErrEmptyQuery
	}
	sp := obs.DefaultTracer.Start("index.search")
	defer sp.Finish()
	t0 := obs.StartTimer()
	defer t0.Done(obsSearchMS)
	obsSearches.Inc()
	sat := ix.satisfiedLocked(q, now)
	return ix.resultsLocked(q, sat, now), nil
}

// SearchConjunction intersects several independently-constrained clauses:
// e.g. one clause's words limited to a Firefox window while another
// clause's words are visible anywhere on the desktop (§4.4). Ordering and
// limits are taken from the first clause.
func (ix *Index) SearchConjunction(clauses []Query, now simclock.Time) ([]Result, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(clauses) == 0 {
		return nil, ErrEmptyQuery
	}
	sp := obs.DefaultTracer.Start("index.search")
	defer sp.Finish()
	t0 := obs.StartTimer()
	defer t0.Done(obsSearchMS)
	obsSearches.Inc()
	sat := ix.satisfiedLocked(clauses[0], now)
	for _, q := range clauses[1:] {
		sat = sat.Intersect(ix.satisfiedLocked(q, now))
	}
	return ix.resultsLocked(clauses[0], sat, now), nil
}

// satisfiedLocked computes the time set over which q is satisfied.
func (ix *Index) satisfiedLocked(q Query, now simclock.Time) Set {
	var sat Set
	switch {
	case len(q.All) > 0:
		sat = ix.termSetLocked(q, q.All[0], now)
		for _, term := range q.All[1:] {
			if sat.IsEmpty() {
				break
			}
			sat = sat.Intersect(ix.termSetLocked(q, term, now))
		}
	case len(q.Any) > 0:
		// handled below
	default:
		// Context-only query: every matching occurrence contributes.
		sat = ix.contextSetLocked(q, now)
	}
	if len(q.Any) > 0 {
		var any Set
		for _, term := range q.Any {
			any = any.Union(ix.termSetLocked(q, term, now))
		}
		if len(q.All) > 0 {
			sat = sat.Intersect(any)
		} else {
			sat = any
		}
	}
	// NOT terms exclude times when the term is visible anywhere.
	for _, term := range q.None {
		free := Query{} // no context constraints
		sat = sat.Subtract(ix.termSetLocked(free, term, now))
		if sat.IsEmpty() {
			break
		}
	}
	window := Interval{Start: q.From, End: now + 1}
	if q.To > 0 {
		window.End = q.To
	}
	return sat.Clip(window)
}

// termSetLocked returns the set of times when term was visible in an
// occurrence matching q's context constraints.
func (ix *Index) termSetLocked(q Query, term string, now simclock.Time) Set {
	term = strings.ToLower(term)
	var s Set
	for _, id := range ix.postings[term] {
		o := &ix.occs[id]
		if !ix.contextMatch(q, o) {
			continue
		}
		s = s.Add(clipOpen(o.interval(), now))
	}
	return s
}

// contextSetLocked returns the visibility set of all occurrences matching
// q's context constraints, for term-less queries.
func (ix *Index) contextSetLocked(q Query, now simclock.Time) Set {
	var s Set
	for i := range ix.occs {
		o := &ix.occs[i]
		if !ix.contextMatch(q, o) {
			continue
		}
		s = s.Add(clipOpen(o.interval(), now))
	}
	return s
}

// clipOpen bounds a still-open interval at the query time.
func clipOpen(iv Interval, now simclock.Time) Interval {
	if iv.End == Forever {
		iv.End = now + 1
	}
	return iv
}

func (ix *Index) contextMatch(q Query, o *occurrence) bool {
	if q.App != "" && o.item.App != q.App {
		return false
	}
	if q.AppKind != "" && o.item.AppKind != q.AppKind {
		return false
	}
	if q.Window != "" && !strings.Contains(o.item.Window, q.Window) {
		return false
	}
	if q.FocusedOnly && !o.item.Focused {
		return false
	}
	if q.AnnotatedOnly && !o.annotation {
		return false
	}
	return true
}

// resultsLocked converts a satisfaction set into ranked substream results.
func (ix *Index) resultsLocked(q Query, sat Set, now simclock.Time) []Result {
	terms := make(map[string]struct{})
	for _, t := range q.All {
		terms[strings.ToLower(t)] = struct{}{}
	}
	for _, t := range q.Any {
		terms[strings.ToLower(t)] = struct{}{}
	}
	var out []Result
	for _, iv := range sat.Intervals() {
		r := Result{Interval: iv, Time: iv.Start, Persistence: iv.Duration()}
		for i := range ix.occs {
			o := &ix.occs[i]
			if !ix.contextMatch(q, o) {
				continue
			}
			if !overlapsTerms(o, terms) {
				continue
			}
			if clipOpen(o.interval(), now).Intersect(iv).Empty() {
				continue
			}
			r.Matches++
			if len(r.Snippets) < 3 {
				r.Snippets = append(r.Snippets, snippet(o.item.Text))
			}
		}
		out = append(out, r)
	}
	switch q.Order {
	case OrderPersistence:
		sort.SliceStable(out, func(i, j int) bool {
			return out[i].Persistence < out[j].Persistence
		})
	case OrderFrequency:
		sort.SliceStable(out, func(i, j int) bool {
			return out[i].Matches > out[j].Matches
		})
	default:
		sort.SliceStable(out, func(i, j int) bool {
			return out[i].Interval.Start < out[j].Interval.Start
		})
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// overlapsTerms reports whether the occurrence contains any query term
// (or whether the query is term-less).
func overlapsTerms(o *occurrence, terms map[string]struct{}) bool {
	if len(terms) == 0 {
		return true
	}
	for _, t := range o.terms {
		if _, ok := terms[t]; ok {
			return true
		}
	}
	return false
}

// snippet truncates text for result presentation.
func snippet(text string) string {
	const maxLen = 80
	if len(text) <= maxLen {
		return text
	}
	return text[:maxLen-3] + "..."
}
