package index

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dejaview/internal/access"
	"dejaview/internal/simclock"
)

// Property suite over random event streams: the index's query results
// must satisfy structural invariants regardless of input order.

func randomStream(rng *rand.Rand, ix *Index, steps int) simclock.Time {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	apps := []string{"Firefox", "Editor", "Terminal"}
	var now simclock.Time
	for i := 0; i < steps; i++ {
		now += simclock.Time(rng.Intn(5)+1) * simclock.Second
		id := access.ComponentID(rng.Intn(6) + 1)
		switch rng.Intn(3) {
		case 0, 1:
			n := rng.Intn(3) + 1
			text := ""
			for w := 0; w < n; w++ {
				text += words[rng.Intn(len(words))] + " "
			}
			ix.SetItem(now, access.TextItem{
				Component: id,
				App:       apps[rng.Intn(len(apps))],
				Text:      text,
			})
		case 2:
			ix.RemoveItem(now, id)
		}
	}
	return now
}

// Invariants: results are chronologically sorted, non-overlapping,
// non-empty, within [0, now], and every reported interval actually
// satisfies the query at its midpoint (spot-check via Contains).
func TestSearchResultInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := New()
		now := randomStream(rng, ix, 60) + simclock.Second
		for _, term := range []string{"alpha", "beta", "gamma"} {
			res, err := ix.Search(Query{All: []string{term}}, now)
			if err != nil {
				return false
			}
			var prevEnd simclock.Time = -1
			for _, r := range res {
				iv := r.Interval
				if iv.Empty() {
					return false
				}
				if iv.Start < 0 || iv.Start > now+1 {
					return false
				}
				if iv.Start <= prevEnd {
					return false // overlapping or unsorted substreams
				}
				prevEnd = iv.End
				if r.Persistence != iv.Duration() {
					return false
				}
				if r.Matches <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: AND results are always a subset (interval-wise) of each
// term's individual results, and NOT never adds time.
func TestSearchBooleanInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := New()
		now := randomStream(rng, ix, 60) + simclock.Second
		and, err := ix.Search(Query{All: []string{"alpha", "beta"}}, now)
		if err != nil {
			return false
		}
		alpha, err := ix.Search(Query{All: []string{"alpha"}}, now)
		if err != nil {
			return false
		}
		alphaSet := NewSet()
		for _, r := range alpha {
			alphaSet = alphaSet.Add(r.Interval)
		}
		for _, r := range and {
			// Every AND interval must lie within alpha's visibility.
			mid := r.Interval.Start + r.Interval.Duration()/2
			if !alphaSet.Contains(mid) || !alphaSet.Contains(r.Interval.Start) {
				return false
			}
		}
		// NOT: alpha AND NOT beta ⊆ alpha.
		not, err := ix.Search(Query{All: []string{"alpha"}, None: []string{"beta"}}, now)
		if err != nil {
			return false
		}
		for _, r := range not {
			if !alphaSet.Contains(r.Interval.Start) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: serialization never changes query results on random streams.
func TestSerializePreservesQueries(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := New()
		now := randomStream(rng, ix, 40) + simclock.Second
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		for _, term := range []string{"alpha", "zeta"} {
			a, err1 := ix.Search(Query{All: []string{term}}, now)
			b, err2 := got.Search(Query{All: []string{term}}, now)
			if (err1 == nil) != (err2 == nil) || len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i].Interval != b[i].Interval || a[i].Matches != b[i].Matches {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
