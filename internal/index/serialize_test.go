package index

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	ix := New()
	item1 := mkItem(1, "Firefox", "SOSP page", "checkpoint restart paper")
	item1.Focused = true
	ix.SetItem(10*sec, item1)
	ix.RemoveItem(50*sec, 1)
	ix.SetItem(20*sec, mkItem(2, "Editor", "notes", "still open on screen"))
	ix.Annotate(30*sec, mkItem(2, "Editor", "notes", "tagged text"))

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Identical query behaviour.
	for _, q := range []Query{
		{All: []string{"checkpoint"}},
		{All: []string{"checkpoint"}, FocusedOnly: true},
		{All: []string{"open"}},
		{All: []string{"tagged"}, AnnotatedOnly: true},
		{App: "Firefox"},
	} {
		want, err1 := ix.Search(q, 100*sec)
		have, err2 := got.Search(q, 100*sec)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%+v: errs %v vs %v", q, err1, err2)
		}
		if !reflect.DeepEqual(want, have) {
			t.Errorf("%+v: results diverge:\n want %+v\n have %+v", q, want, have)
		}
	}

	// Open occurrences stay open: the reloaded index keeps accepting
	// updates for them.
	st := got.Stats()
	if st.OpenOccurrences != 1 {
		t.Errorf("OpenOccurrences = %d, want 1", st.OpenOccurrences)
	}
	got.RemoveItem(200*sec, 2)
	res, err := got.Search(Query{All: []string{"open"}}, 300*sec)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Interval.End != 200*sec {
		t.Errorf("post-reload close did not apply: %v", res[0].Interval)
	}
	if st.Annotations != 1 {
		t.Errorf("Annotations = %d", st.Annotations)
	}
	if st.Occurrences != ix.Stats().Occurrences {
		t.Error("occurrence count changed")
	}
}

func TestIndexLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Error("garbage accepted")
	}
	ix := New()
	ix.SetItem(0, mkItem(1, "A", "w", "text"))
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 20, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte("12345678"), full[8:]...)
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptIndex) {
		t.Errorf("bad magic err = %v", err)
	}
}
