package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dejaview/internal/simclock"
)

func iv(a, b simclock.Time) Interval { return Interval{Start: a, End: b} }

func TestIntervalBasics(t *testing.T) {
	x := iv(5, 10)
	if x.Empty() {
		t.Error("non-empty interval reported empty")
	}
	if iv(5, 5).Empty() != true || iv(7, 3).Empty() != true {
		t.Error("degenerate intervals should be empty")
	}
	if !x.Contains(5) || x.Contains(10) || !x.Contains(9) {
		t.Error("half-open containment wrong")
	}
	if x.Duration() != 5 {
		t.Errorf("Duration = %v", x.Duration())
	}
	if iv(0, Forever).Duration() != Forever {
		t.Error("open interval duration should be Forever")
	}
}

func TestIntervalIntersect(t *testing.T) {
	got := iv(0, 10).Intersect(iv(5, 20))
	if got != iv(5, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if !iv(0, 5).Intersect(iv(5, 10)).Empty() {
		t.Error("adjacent intervals should not intersect")
	}
}

func TestSetAddMerges(t *testing.T) {
	s := NewSet(iv(0, 5), iv(10, 15))
	if len(s.Intervals()) != 2 {
		t.Fatalf("len = %d", len(s.Intervals()))
	}
	// Bridging interval merges all three.
	s = s.Add(iv(4, 11))
	ivs := s.Intervals()
	if len(ivs) != 1 || ivs[0] != iv(0, 15) {
		t.Errorf("merged set = %v", ivs)
	}
	// Adjacent intervals merge too.
	s2 := NewSet(iv(0, 5)).Add(iv(5, 8))
	if len(s2.Intervals()) != 1 || s2.Intervals()[0] != iv(0, 8) {
		t.Errorf("adjacent merge = %v", s2.Intervals())
	}
}

func TestSetAddEmptyNoop(t *testing.T) {
	s := NewSet(iv(0, 5))
	s = s.Add(Interval{})
	if len(s.Intervals()) != 1 {
		t.Error("adding empty interval changed the set")
	}
}

func TestSetIntersect(t *testing.T) {
	a := NewSet(iv(0, 10), iv(20, 30))
	b := NewSet(iv(5, 25))
	got := a.Intersect(b).Intervals()
	want := []Interval{iv(5, 10), iv(20, 25)}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersect(Set{}).IsEmpty() {
		t.Error("intersect with empty should be empty")
	}
}

func TestSetSubtract(t *testing.T) {
	a := NewSet(iv(0, 10))
	b := NewSet(iv(3, 5), iv(7, 8))
	got := a.Subtract(b).Intervals()
	want := []Interval{iv(0, 3), iv(5, 7), iv(8, 10)}
	if len(got) != 3 {
		t.Fatalf("Subtract = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("piece %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Subtracting everything leaves nothing.
	if !a.Subtract(NewSet(iv(0, 100))).IsEmpty() {
		t.Error("full subtraction should empty the set")
	}
}

func TestSetClipAndContains(t *testing.T) {
	s := NewSet(iv(0, 10), iv(20, 30))
	c := s.Clip(iv(5, 25))
	if got := c.Intervals(); len(got) != 2 || got[0] != iv(5, 10) || got[1] != iv(20, 25) {
		t.Errorf("Clip = %v", got)
	}
	if !s.Contains(25) || s.Contains(15) || s.Contains(30) {
		t.Error("Contains wrong")
	}
}

func TestSetTotalDuration(t *testing.T) {
	s := NewSet(iv(0, 10), iv(20, 25))
	if got := s.TotalDuration(); got != 15 {
		t.Errorf("TotalDuration = %v, want 15", got)
	}
	if NewSet(iv(0, Forever)).TotalDuration() != Forever {
		t.Error("open set duration should saturate at Forever")
	}
}

func randSet(rng *rand.Rand) Set {
	var s Set
	for i := 0; i < rng.Intn(6); i++ {
		a := simclock.Time(rng.Intn(100))
		s = s.Add(iv(a, a+simclock.Time(rng.Intn(20))))
	}
	return s
}

// checkNormalized verifies set invariants: sorted, disjoint, non-empty,
// non-adjacent members.
func checkNormalized(t *testing.T, s Set) {
	t.Helper()
	ivs := s.Intervals()
	for i, x := range ivs {
		if x.Empty() {
			t.Fatalf("set member %d empty: %v", i, ivs)
		}
		if i > 0 && ivs[i-1].End >= x.Start {
			t.Fatalf("set not normalized: %v", ivs)
		}
	}
}

// Property: all set operations preserve normalization and agree with
// pointwise membership semantics.
func TestSetOperationsPointwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSet(rng), randSet(rng)
		u := a.Union(b)
		n := a.Intersect(b)
		d := a.Subtract(b)
		checkNormalized(t, u)
		checkNormalized(t, n)
		checkNormalized(t, d)
		for p := simclock.Time(0); p < 130; p++ {
			inA, inB := a.Contains(p), b.Contains(p)
			if u.Contains(p) != (inA || inB) {
				return false
			}
			if n.Contains(p) != (inA && inB) {
				return false
			}
			if d.Contains(p) != (inA && !inB) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: union is commutative and intersection distributes over union.
func TestSetAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randSet(rng), randSet(rng), randSet(rng)
		lhs := a.Intersect(b.Union(c))
		rhs := a.Intersect(b).Union(a.Intersect(c))
		for p := simclock.Time(0); p < 130; p++ {
			if lhs.Contains(p) != rhs.Contains(p) {
				return false
			}
		}
		ab, ba := a.Union(b), b.Union(a)
		for p := simclock.Time(0); p < 130; p++ {
			if ab.Contains(p) != ba.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
