package index

import (
	"bytes"
	"errors"
	"fmt"

	"dejaview/internal/binio"
	"dejaview/internal/simclock"
)

// Wire encoding for the remote search RPC (internal/remote): a Query and
// its Results travel framed between a viewer client and the DejaView
// daemon. Decoders treat their input as untrusted network bytes: every
// count is validated before allocation and string allocations are capped.

// ErrCorruptWire reports a structurally invalid wire query or result set.
var ErrCorruptWire = errors.New("index: corrupt wire encoding")

// Wire-decoding caps: a query is typed by a human, a result set is
// bounded by the record; anything past these is an attack or corruption.
const (
	maxWireTerms    = 256
	maxWireSnippets = 16
	maxWireResults  = 1 << 20
	maxWireString   = 1 << 20
)

// EncodeQuery serializes a query for the search RPC.
func EncodeQuery(q Query) []byte {
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	writeTerms := func(ts []string) {
		bw.U16(uint16(len(ts)))
		for _, t := range ts {
			bw.String(t)
		}
	}
	writeTerms(q.All)
	writeTerms(q.Any)
	writeTerms(q.None)
	bw.String(q.App)
	bw.String(q.AppKind)
	bw.String(q.Window)
	bw.Bool(q.FocusedOnly)
	bw.Bool(q.AnnotatedOnly)
	bw.U64(uint64(q.From))
	bw.U64(uint64(q.To))
	bw.U8(uint8(q.Order))
	bw.U32(uint32(q.Limit))
	bw.Flush()
	return buf.Bytes()
}

// DecodeQuery deserializes a query received from the network.
func DecodeQuery(b []byte) (Query, error) {
	br := binio.NewReader(bytes.NewReader(b))
	br.Limit = maxWireString
	readTerms := func(what string) []string {
		n := int(br.U16())
		if br.Err() != nil {
			return nil
		}
		if n > maxWireTerms {
			br.Fail(fmt.Errorf("%w: %d %s terms", ErrCorruptWire, n, what))
			return nil
		}
		ts := make([]string, 0, n)
		for i := 0; i < n && br.Err() == nil; i++ {
			ts = append(ts, br.String())
		}
		return ts
	}
	var q Query
	q.All = readTerms("all")
	q.Any = readTerms("any")
	q.None = readTerms("none")
	q.App = br.String()
	q.AppKind = br.String()
	q.Window = br.String()
	q.FocusedOnly = br.Bool()
	q.AnnotatedOnly = br.Bool()
	q.From = simclock.Time(br.U64())
	q.To = simclock.Time(br.U64())
	q.Order = Order(br.U8())
	q.Limit = int(br.U32())
	if err := br.Err(); err != nil {
		return Query{}, fmt.Errorf("%w: query: %v", ErrCorruptWire, err)
	}
	if q.Order < OrderChronological || q.Order > OrderFrequency {
		return Query{}, fmt.Errorf("%w: order %d", ErrCorruptWire, q.Order)
	}
	if q.Limit < 0 || q.Limit > maxWireResults {
		return Query{}, fmt.Errorf("%w: limit %d", ErrCorruptWire, q.Limit)
	}
	return q, nil
}

// EncodeResults serializes search hits for the search RPC: the interval,
// timing, and text context (snippets) of each substream — the portal
// metadata a remote client renders into its hit list. Screenshots are not
// shipped; clients fetch visuals through playback streaming.
func EncodeResults(rs []Result) []byte {
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	bw.U32(uint32(len(rs)))
	for _, r := range rs {
		bw.U64(uint64(r.Interval.Start))
		bw.U64(uint64(r.Interval.End))
		bw.U64(uint64(r.Time))
		bw.U64(uint64(r.Persistence))
		bw.U32(uint32(r.Matches))
		bw.U8(uint8(len(r.Snippets)))
		for _, s := range r.Snippets {
			bw.String(s)
		}
	}
	bw.Flush()
	return buf.Bytes()
}

// DecodeResults deserializes a search RPC response.
func DecodeResults(b []byte) ([]Result, error) {
	br := binio.NewReader(bytes.NewReader(b))
	br.Limit = maxWireString
	n := int(br.U32())
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("%w: results: %v", ErrCorruptWire, err)
	}
	if n > maxWireResults {
		return nil, fmt.Errorf("%w: %d results", ErrCorruptWire, n)
	}
	rs := make([]Result, 0, minInt(n, 1024))
	for i := 0; i < n; i++ {
		var r Result
		r.Interval.Start = simclock.Time(br.U64())
		r.Interval.End = simclock.Time(br.U64())
		r.Time = simclock.Time(br.U64())
		r.Persistence = simclock.Time(br.U64())
		r.Matches = int(br.U32())
		ns := int(br.U8())
		if br.Err() == nil && ns > maxWireSnippets {
			return nil, fmt.Errorf("%w: %d snippets", ErrCorruptWire, ns)
		}
		for j := 0; j < ns && br.Err() == nil; j++ {
			r.Snippets = append(r.Snippets, br.String())
		}
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("%w: result %d: %v", ErrCorruptWire, i, err)
		}
		rs = append(rs, r)
	}
	return rs, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
