package index

import (
	"errors"
	"fmt"
	"io"

	"dejaview/internal/access"
	"dejaview/internal/binio"
	"dejaview/internal/simclock"
)

// Index serialization for session archives: occurrences (with their
// visibility intervals, context, and annotation flags) round-trip; the
// inverted postings and the open-occurrence map are rebuilt
// deterministically from the text on load.

const idxMagic = 0x3158444956414A44 // "DJAVIDX1"

// ErrCorruptIndex reports a structurally invalid index stream.
var ErrCorruptIndex = errors.New("index: corrupt serialized index")

// Save serializes the index.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	bw := binio.NewWriter(w)
	bw.U64(idxMagic)
	bw.U64(ix.stats.SinkUpdates)
	bw.U64(ix.stats.Redundant)
	bw.U32(uint32(len(ix.occs)))
	for i := range ix.occs {
		o := &ix.occs[i]
		bw.U64(uint64(o.item.Component))
		bw.String(o.item.App)
		bw.String(o.item.AppKind)
		bw.String(o.item.Window)
		bw.U8(uint8(o.item.Role))
		bw.Bool(o.item.Focused)
		bw.Blob([]byte(o.item.Text))
		bw.U64(uint64(o.start))
		bw.U64(uint64(o.end))
		bw.Bool(o.annotation)
	}
	return bw.Flush()
}

// Load reconstructs an index saved with Save.
func Load(r io.Reader) (*Index, error) {
	br := binio.NewReader(r)
	if magic := br.U64(); br.Err() != nil || magic != idxMagic {
		if err := br.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptIndex)
	}
	ix := New()
	sinkUpdates := br.U64()
	redundant := br.U64()
	n := br.U32()
	if br.Err() == nil && n > 1<<26 {
		return nil, fmt.Errorf("%w: %d occurrences", ErrCorruptIndex, n)
	}
	for i := uint32(0); i < n && br.Err() == nil; i++ {
		item := access.TextItem{
			Component: access.ComponentID(br.U64()),
			App:       br.String(),
			AppKind:   br.String(),
			Window:    br.String(),
			Role:      access.Role(br.U8()),
		}
		item.Focused = br.Bool()
		item.Text = string(br.Blob())
		start := simclock.Time(br.U64())
		end := simclock.Time(br.U64())
		annotation := br.Bool()
		if br.Err() != nil {
			break
		}
		o := occurrence{
			item:       item,
			start:      start,
			end:        end,
			annotation: annotation,
			terms:      Tokenize(item.Text),
		}
		id := ix.newOccLocked(o)
		if annotation {
			ix.stats.Annotations++
		}
		if end == Forever {
			ix.open[item.Component] = id
		}
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	ix.stats.SinkUpdates = sinkUpdates
	ix.stats.Redundant = redundant
	return ix, nil
}
