package index

import (
	"math/rand"
	"sort"
	"sync"

	"dejaview/internal/access"
	"dejaview/internal/simclock"
)

// occID identifies one stored occurrence.
type occID int

// occurrence is one visibility interval of one text item: the text, its
// context, and [Start, End) during which it was on screen.
type occurrence struct {
	item       access.TextItem
	start, end simclock.Time // end == Forever while still visible
	annotation bool
	terms      []string // tokenized text, kept for snippets/frequency
}

func (o *occurrence) interval() Interval { return Interval{Start: o.start, End: o.end} }

// Stats summarizes index contents for storage accounting (Figure 4).
type Stats struct {
	// Occurrences is the total number of stored visibility intervals.
	Occurrences int
	// OpenOccurrences counts text currently on screen.
	OpenOccurrences int
	// Terms is the vocabulary size.
	Terms int
	// Annotations counts explicit annotations.
	Annotations int
	// Bytes approximates the database size: text plus per-occurrence
	// context metadata plus postings.
	Bytes int64
	// SinkUpdates counts SetItem/RemoveItem/Annotate calls received.
	SinkUpdates uint64
	// Redundant counts SetItem calls that changed nothing (same text
	// and context), which are not re-indexed.
	Redundant uint64
}

// Index is the temporal full-text index. It implements access.TextSink so
// the capture daemon can feed it directly, and serves the queries in
// query.go.
//
// Index is safe for concurrent use.
type Index struct {
	mu       sync.Mutex
	occs     []occurrence
	open     map[access.ComponentID]occID
	postings map[string][]occID
	stats    Stats
}

// occMetaBytes approximates the fixed per-occurrence row cost (times,
// ids, context columns) in the simulated database.
const occMetaBytes = 64

// New creates an empty index.
func New() *Index {
	return &Index{
		open:     make(map[access.ComponentID]occID),
		postings: make(map[string][]occID),
	}
}

var _ access.TextSink = (*Index)(nil)

// SetItem implements access.TextSink: it opens a visibility interval for
// the item's text, closing any previous interval for the same component.
// Identical consecutive states are not re-indexed.
func (ix *Index) SetItem(t simclock.Time, item access.TextItem) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.stats.SinkUpdates++
	if id, ok := ix.open[item.Component]; ok {
		prev := &ix.occs[id]
		if prev.item == item {
			ix.stats.Redundant++
			return
		}
		prev.end = t
	}
	ix.insertLocked(t, item, false)
}

// RemoveItem implements access.TextSink: the component's text left the
// screen, so its open interval closes at t.
func (ix *Index) RemoveItem(t simclock.Time, id access.ComponentID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.stats.SinkUpdates++
	if oid, ok := ix.open[id]; ok {
		ix.occs[oid].end = t
		delete(ix.open, id)
	}
}

// Annotate implements access.TextSink: it stores the selected text as a
// punctual occurrence carrying the annotation attribute (§4.4).
func (ix *Index) Annotate(t simclock.Time, item access.TextItem) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.stats.SinkUpdates++
	id := ix.newOccLocked(occurrence{
		item:       item,
		start:      t,
		end:        t + 1, // a single instant
		annotation: true,
		terms:      Tokenize(item.Text),
	})
	_ = id
	ix.stats.Annotations++
}

func (ix *Index) insertLocked(t simclock.Time, item access.TextItem, annotation bool) {
	id := ix.newOccLocked(occurrence{
		item:       item,
		start:      t,
		end:        Forever,
		annotation: annotation,
		terms:      Tokenize(item.Text),
	})
	ix.open[item.Component] = id
}

func (ix *Index) newOccLocked(o occurrence) occID {
	id := occID(len(ix.occs))
	ix.occs = append(ix.occs, o)
	seen := make(map[string]struct{}, len(o.terms))
	for _, term := range o.terms {
		if _, dup := seen[term]; dup {
			continue
		}
		seen[term] = struct{}{}
		if _, ok := ix.postings[term]; !ok {
			ix.stats.Terms++
		}
		ix.postings[term] = append(ix.postings[term], id)
		ix.stats.Bytes += int64(len(term)) + 8
	}
	ix.stats.Occurrences++
	ix.stats.Bytes += int64(len(o.item.Text)) + int64(len(o.item.App)) +
		int64(len(o.item.Window)) + occMetaBytes
	return id
}

// CloseAll closes every open occurrence at time t (session shutdown).
func (ix *Index) CloseAll(t simclock.Time) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for id, oid := range ix.open {
		ix.occs[oid].end = t
		delete(ix.open, id)
	}
}

// Stats returns a copy of the index counters.
func (ix *Index) Stats() Stats {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	st := ix.stats
	st.OpenOccurrences = len(ix.open)
	return st
}

// Bytes reports the approximate database size.
func (ix *Index) Bytes() int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.stats.Bytes
}

// RandomTerms samples up to n distinct indexed terms deterministically
// from seed; the search-latency experiment issues queries drawn from the
// recorded vocabulary, as the paper did.
func (ix *Index) RandomTerms(n int, seed int64) []string {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	terms := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(terms), func(i, j int) { terms[i], terms[j] = terms[j], terms[i] })
	if n > len(terms) {
		n = len(terms)
	}
	return terms[:n]
}
