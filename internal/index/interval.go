// Package index implements DejaView's text index and search engine
// (§4.2, §4.4): the stand-in for the paper's PostgreSQL/Tsearch2 database.
//
// The index stores *visibility intervals*: each captured text item is
// visible from the time it appeared (or changed) until it changed again or
// left the screen. Indexing the full state of the desktop's text over time
// is what gives DejaView access to temporal relationships ("the time when
// she started reading a paper while a particular web page was open") and
// persistence information for ranking.
package index

import (
	"fmt"
	"sort"

	"dejaview/internal/simclock"
)

// Interval is a half-open time range [Start, End). An open occurrence
// (text still on screen) is represented by End = Forever.
type Interval struct {
	Start, End simclock.Time
}

// Forever marks an interval with no end yet.
const Forever = simclock.Time(1<<63 - 1)

// Empty reports whether the interval contains no time points.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Contains reports whether t lies inside the interval.
func (iv Interval) Contains(t simclock.Time) bool {
	return t >= iv.Start && t < iv.End
}

// Duration reports the interval length (Forever-ended intervals report
// Forever).
func (iv Interval) Duration() simclock.Time {
	if iv.End == Forever {
		return Forever
	}
	return iv.End - iv.Start
}

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	out := Interval{Start: max(iv.Start, other.Start), End: min(iv.End, other.End)}
	if out.Empty() {
		return Interval{}
	}
	return out
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	if iv.End == Forever {
		return fmt.Sprintf("[%v, now)", iv.Start)
	}
	return fmt.Sprintf("[%v, %v)", iv.Start, iv.End)
}

// Set is a normalized set of disjoint, sorted, non-empty intervals.
// The zero value is the empty set. Operations return normalized sets.
type Set struct {
	ivs []Interval
}

// NewSet builds a normalized set from arbitrary intervals.
func NewSet(ivs ...Interval) Set {
	var s Set
	for _, iv := range ivs {
		s = s.Add(iv)
	}
	return s
}

// Intervals returns the member intervals in order.
func (s Set) Intervals() []Interval { return s.ivs }

// IsEmpty reports whether the set has no intervals.
func (s Set) IsEmpty() bool { return len(s.ivs) == 0 }

// Add unions one interval into the set.
func (s Set) Add(iv Interval) Set {
	if iv.Empty() {
		return s
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	inserted := false
	for _, x := range s.ivs {
		switch {
		case x.End < iv.Start: // strictly before, no touch
			out = append(out, x)
		case iv.End < x.Start: // strictly after
			if !inserted {
				out = append(out, iv)
				inserted = true
			}
			out = append(out, x)
		default: // overlapping or adjacent: merge into iv
			iv = Interval{Start: min(iv.Start, x.Start), End: max(iv.End, x.End)}
		}
	}
	if !inserted {
		out = append(out, iv)
	}
	return Set{ivs: out}
}

// Union returns the union of two sets.
func (s Set) Union(t Set) Set {
	out := s
	for _, iv := range t.ivs {
		out = out.Add(iv)
	}
	return out
}

// Intersect returns the intersection of two sets.
func (s Set) Intersect(t Set) Set {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(t.ivs) {
		a, b := s.ivs[i], t.ivs[j]
		ov := a.Intersect(b)
		if !ov.Empty() {
			out = append(out, ov)
		}
		if a.End <= b.End {
			i++
		} else {
			j++
		}
	}
	return Set{ivs: out}
}

// Subtract returns s minus t.
func (s Set) Subtract(t Set) Set {
	var out []Interval
	for _, a := range s.ivs {
		pieces := []Interval{a}
		for _, b := range t.ivs {
			var next []Interval
			for _, p := range pieces {
				if b.End <= p.Start || b.Start >= p.End {
					next = append(next, p)
					continue
				}
				if b.Start > p.Start {
					next = append(next, Interval{Start: p.Start, End: b.Start})
				}
				if b.End < p.End {
					next = append(next, Interval{Start: b.End, End: p.End})
				}
			}
			pieces = next
		}
		out = append(out, pieces...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return Set{ivs: out}
}

// Clip intersects the set with a single window interval.
func (s Set) Clip(window Interval) Set {
	return s.Intersect(Set{ivs: []Interval{window}})
}

// Contains reports whether any member interval contains t.
func (s Set) Contains(t simclock.Time) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > t })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// TotalDuration sums member durations; Forever-ended members saturate.
func (s Set) TotalDuration() simclock.Time {
	var sum simclock.Time
	for _, iv := range s.ivs {
		d := iv.Duration()
		if d == Forever || sum > Forever-d {
			return Forever
		}
		sum += d
	}
	return sum
}
