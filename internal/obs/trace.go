package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a tracer. IDs are never reused; 0
// means "no parent".
type SpanID uint64

// Span is one finished operation: a name, a parent (0 for roots), the
// wall-clock start, and a monotonic-clock duration (Go's time.Since uses
// the monotonic reading, so Dur is immune to wall-clock steps).
type Span struct {
	ID     SpanID        `json:"id"`
	Parent SpanID        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
}

// SpanSink receives every finished span. Tests install a sink to capture
// exact span trees; production leaves it nil and reads the ring.
type SpanSink interface {
	SpanFinished(Span)
}

// SpanSinkFunc adapts a function to SpanSink.
type SpanSinkFunc func(Span)

// SpanFinished implements SpanSink.
func (f SpanSinkFunc) SpanFinished(s Span) { f(s) }

// Tracer hands out spans and retains the last `retain` finished spans in
// a ring buffer. All methods are safe for concurrent use.
type Tracer struct {
	nextID atomic.Uint64

	mu   sync.Mutex
	ring []Span
	next int // ring write cursor
	n    int // spans currently retained
	sink SpanSink
}

// DefaultTracer is the process-wide tracer the instrumented packages use.
var DefaultTracer = NewTracer(256)

// NewTracer creates a tracer retaining the last retain finished spans
// (minimum 1).
func NewTracer(retain int) *Tracer {
	if retain < 1 {
		retain = 1
	}
	return &Tracer{ring: make([]Span, retain)}
}

// SetSink installs (or with nil, removes) the finished-span sink.
func (t *Tracer) SetSink(s SpanSink) {
	t.mu.Lock()
	t.sink = s
	t.mu.Unlock()
}

// ActiveSpan is a started, unfinished span. Start children with Child and
// close it with Finish; a nil ActiveSpan is inert, so call sites need no
// guards.
type ActiveSpan struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
}

// Start opens a root span.
func (t *Tracer) Start(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{
		t:     t,
		id:    SpanID(t.nextID.Add(1)),
		name:  name,
		start: time.Now(),
	}
}

// Child opens a span parented under a.
func (a *ActiveSpan) Child(name string) *ActiveSpan {
	if a == nil {
		return nil
	}
	return &ActiveSpan{
		t:      a.t,
		id:     SpanID(a.t.nextID.Add(1)),
		parent: a.id,
		name:   name,
		start:  time.Now(),
	}
}

// Finish closes the span, records it in the ring, and delivers it to the
// sink (outside the tracer lock, so sinks may call back into the tracer).
func (a *ActiveSpan) Finish() {
	if a == nil {
		return
	}
	sp := Span{
		ID:     a.id,
		Parent: a.parent,
		Name:   a.name,
		Start:  a.start,
		Dur:    time.Since(a.start),
	}
	t := a.t
	t.mu.Lock()
	t.ring[t.next] = sp
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink.SpanFinished(sp)
	}
}

// Recent returns the retained finished spans, oldest first.
func (t *Tracer) Recent() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := (t.next - t.n + len(t.ring)) % len(t.ring)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}
