package obs

import (
	"sync"
	"testing"
)

// TestTracerRingRetention: the ring keeps exactly the last `retain`
// finished spans, oldest first.
func TestTracerRingRetention(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start("op").Finish()
	}
	got := tr.Recent()
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	// IDs are assigned 1..10 in finish order here; the ring must hold
	// 7,8,9,10 oldest-first.
	for i, sp := range got {
		if want := SpanID(7 + i); sp.ID != want {
			t.Errorf("ring[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
}

// TestTracerPartialRing: fewer finishes than capacity returns only what
// exists.
func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8)
	tr.Start("a").Finish()
	tr.Start("b").Finish()
	got := tr.Recent()
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("Recent() = %+v, want [a b]", got)
	}
}

// TestTracerSinkAndParentage: the sink receives every finished span with
// well-formed fields, and Child records its parent's ID.
func TestTracerSinkAndParentage(t *testing.T) {
	tr := NewTracer(16)
	var mu sync.Mutex
	var seen []Span
	tr.SetSink(SpanSinkFunc(func(s Span) {
		mu.Lock()
		seen = append(seen, s)
		mu.Unlock()
	}))

	root := tr.Start("parent")
	child := root.Child("child")
	grand := child.Child("grandchild")
	grand.Finish()
	child.Finish()
	root.Finish()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("sink saw %d spans, want 3", len(seen))
	}
	// Finish order is leaf-first.
	g, c, r := seen[0], seen[1], seen[2]
	if r.Parent != 0 {
		t.Errorf("root has parent %d", r.Parent)
	}
	if c.Parent != r.ID || g.Parent != c.ID {
		t.Errorf("parent chain broken: %d<-%d<-%d (IDs %d,%d,%d)",
			r.ID, c.Parent, g.Parent, r.ID, c.ID, g.ID)
	}
	for _, sp := range seen {
		if sp.ID == 0 || sp.Name == "" || sp.Dur < 0 || sp.Start.IsZero() {
			t.Errorf("malformed span: %+v", sp)
		}
	}
	// Removing the sink stops delivery.
	tr.SetSink(nil)
	tr.Start("after").Finish()
	if len(seen) != 3 {
		t.Errorf("sink called after removal")
	}
}

// TestNilTracerAndSpanInert: a nil tracer or span is a no-op at every
// call site, so instrumented code needs no guards.
func TestNilTracerAndSpanInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	sp.Child("y").Finish() // must not panic
	sp.Finish()
}

// TestTracerConcurrent: concurrent span creation yields unique IDs and a
// full ring, race-clean under -race.
func TestTracerConcurrent(t *testing.T) {
	const goroutines, perG = 16, 200
	tr := NewTracer(goroutines * perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := tr.Start("op")
				sp.Child("sub").Finish()
				sp.Finish()
			}
		}()
	}
	wg.Wait()
	got := tr.Recent()
	if len(got) != goroutines*perG {
		t.Fatalf("retained %d spans, want %d", len(got), goroutines*perG)
	}
	ids := make(map[SpanID]bool, len(got))
	for _, sp := range got {
		if ids[sp.ID] {
			t.Fatalf("duplicate span ID %d", sp.ID)
		}
		ids[sp.ID] = true
	}
}
