package obs

import "time"

// Timer bounds one wall-clock measurement taken on behalf of an
// instrumented package. Instrumented code must not read the host clock
// directly — dvlint's wallclock rule forbids time.Now outside this
// package and the other timing-exempt layers (see DESIGN.md, "Static
// analysis") so that record/playback paths stay deterministic under
// virtual time. StartTimer/Done keeps the only clock reads here, where
// they feed histograms and never influence control flow.
type Timer struct {
	t0 time.Time
}

// StartTimer reads the host clock once and returns a timer anchored at
// that instant.
func StartTimer() Timer { return Timer{t0: time.Now()} }

// Done records the elapsed time since StartTimer into h, in
// milliseconds. It is defer-friendly: the receiver is a value, so the
// anchor is fixed at StartTimer time no matter when the defer runs.
func (t Timer) Done(h *Histogram) { h.ObserveSince(t.t0) }

// Elapsed reports the wall-clock time since StartTimer.
func (t Timer) Elapsed() time.Duration { return time.Since(t.t0) }
