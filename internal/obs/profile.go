package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	rpprof "runtime/pprof"
)

// Handler serves the observability surface for one registry/tracer pair:
//
//	/metrics       registry snapshot as JSON
//	/spans         recent finished spans as JSON
//	/debug/pprof/  the standard live profiling endpoints
//	/debug/dump    write heap+goroutine profiles into dumpDir on demand
//
// dvserve mounts it behind the -metrics listener; dumpDir is typically
// the served archive directory, so profile dumps land next to the data
// they explain.
func Handler(r *Registry, t *Tracer, dumpDir string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t.Recent())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/dump", func(w http.ResponseWriter, _ *http.Request) {
		paths, err := DumpProfiles(dumpDir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(paths)
	})
	return mux
}

// DumpProfiles writes heap and goroutine profiles into dir (creating it
// if needed) and returns the written paths. The heap profile is taken
// after a GC so it reflects live objects, not garbage.
func DumpProfiles(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: dump profiles: %w", err)
	}
	runtime.GC()
	var paths []string
	for _, name := range []string{"heap", "goroutine"} {
		p := rpprof.Lookup(name)
		if p == nil {
			return nil, fmt.Errorf("obs: dump profiles: unknown profile %q", name)
		}
		path := filepath.Join(dir, name+".pprof")
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("obs: dump profiles: %w", err)
		}
		if err := p.WriteTo(f, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: dump %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("obs: dump %s: %w", name, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}
