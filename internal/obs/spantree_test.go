// Span-tree integration test: drives a scripted record -> save -> open ->
// search cycle through the real instrumented packages and asserts the
// default tracer's sink sees a well-formed span forest — every span
// complete, every parent reference resolving to a captured span, and the
// save operation's per-stream children attached to their root. Lives in
// the external test package so it can import the instrumented packages
// without a cycle.
package obs_test

import (
	"path/filepath"
	"sync"
	"testing"

	"dejaview/internal/access"
	"dejaview/internal/display"
	"dejaview/internal/index"
	"dejaview/internal/obs"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

func TestSpanTreeRecordSaveSearchCycle(t *testing.T) {
	var mu sync.Mutex
	var seen []obs.Span
	obs.DefaultTracer.SetSink(obs.SpanSinkFunc(func(s obs.Span) {
		mu.Lock()
		seen = append(seen, s)
		mu.Unlock()
	}))
	defer obs.DefaultTracer.SetSink(nil)

	// Record: a keyframe plus a few commands, saved and reopened.
	st := record.NewStore(64, 64)
	fb := display.NewFramebuffer(64, 64)
	st.AppendScreenshot(simclock.Second, fb)
	for i := 0; i < 4; i++ {
		cmd := display.SolidFill(simclock.Time(i+2)*simclock.Second,
			display.NewRect(i*8, i*8, 16, 16), display.Pixel(uint32(i)))
		if _, err := st.AppendCommand(&cmd); err != nil {
			t.Fatal(err)
		}
	}
	dir := filepath.Join(t.TempDir(), "rec")
	if err := st.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := record.Open(dir); err != nil {
		t.Fatalf("Open: %v", err)
	}

	// Search: one indexed item, one query.
	ix := index.New()
	ix.SetItem(2*simclock.Second, access.TextItem{
		Component: 1, App: "editor", Window: "notes", Text: "hello span world",
	})
	res, err := ix.Search(index.Query{All: []string{"hello"}}, 10*simclock.Second)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("search found nothing; the cycle did not run")
	}

	mu.Lock()
	defer mu.Unlock()

	// Every span is complete and every parent reference resolves to a
	// span we captured: no orphans.
	ids := make(map[obs.SpanID]obs.Span, len(seen))
	for _, sp := range seen {
		if sp.ID == 0 || sp.Name == "" || sp.Start.IsZero() || sp.Dur < 0 {
			t.Errorf("malformed span: %+v", sp)
		}
		if _, dup := ids[sp.ID]; dup {
			t.Errorf("duplicate span ID %d (%s)", sp.ID, sp.Name)
		}
		ids[sp.ID] = sp
	}
	for _, sp := range seen {
		if sp.Parent != 0 {
			if _, ok := ids[sp.Parent]; !ok {
				t.Errorf("span %q (%d) has orphan parent %d", sp.Name, sp.ID, sp.Parent)
			}
		}
	}

	// The cycle produced exactly the expected operations.
	byName := make(map[string][]obs.Span)
	for _, sp := range seen {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, want := range []string{"record.save", "record.open", "index.search"} {
		if n := len(byName[want]); n != 1 {
			t.Errorf("captured %d %q spans, want 1", n, want)
		}
	}
	// Save's per-stream children hang off the save root.
	if saves := byName["record.save"]; len(saves) == 1 {
		saveID := saves[0].ID
		for _, stream := range []string{"commands", "screenshots", "timeline"} {
			name := "record.save." + stream
			children := byName[name]
			if len(children) != 1 {
				t.Errorf("captured %d %q spans, want 1", len(children), name)
				continue
			}
			if children[0].Parent != saveID {
				t.Errorf("%q parented under %d, want save root %d", name, children[0].Parent, saveID)
			}
		}
	}
	// Roots are roots.
	for _, name := range []string{"record.save", "record.open", "index.search"} {
		for _, sp := range byName[name] {
			if sp.Parent != 0 {
				t.Errorf("%q should be a root span, has parent %d", name, sp.Parent)
			}
		}
	}

	// The ring retained the same spans the sink saw (sink and ring are
	// fed from one Finish path).
	recent := obs.DefaultTracer.Recent()
	inRing := make(map[obs.SpanID]bool, len(recent))
	for _, sp := range recent {
		inRing[sp.ID] = true
	}
	for _, sp := range seen {
		if !inRing[sp.ID] {
			t.Errorf("span %q (%d) delivered to sink but missing from ring", sp.Name, sp.ID)
		}
	}
}
