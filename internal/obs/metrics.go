// Package obs is DejaView's unified observability layer: typed metrics
// (atomic counters, gauges, and fixed-bucket latency histograms behind a
// named registry with JSON export), lightweight span tracing with a
// bounded ring of recent spans and a pluggable sink, and profiling hooks
// (net/http/pprof wiring plus on-demand heap/goroutine dumps).
//
// The package is stdlib-only and deliberately cheap: an instrument
// operation is one or two atomic adds, so the hot paths (display command
// submission, compression worker pools, remote fan-out) can stay
// instrumented always-on, the way rr keeps its record/replay hot paths
// measured in production.
//
// Instruments are named `<pkg>.<op>` (e.g. "compress.blocks_packed",
// "remote.rpc_ms"); histogram names carry their unit as a suffix
// ("_ms" for milliseconds, "_depth" for queue occupancy).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-wide registry the instrumented packages use.
var Default = NewRegistry()

// LatencyBuckets is the standard latency bucket policy, in milliseconds:
// roughly logarithmic from 50µs to 10s. Sub-bucket resolution is not the
// point — the point is that two snapshots of the same workload land in
// the same buckets, so regressions show up as mass moving right.
var LatencyBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000,
}

// DepthBuckets is the standard queue-occupancy bucket policy: powers of
// two up to a typical bounded-queue capacity.
var DepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// Registry holds named instruments. Lookup is get-or-create and safe for
// concurrent use; instrumented packages resolve their instruments once
// into package-level variables so the hot path never touches the map.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (ascending; an implicit +Inf bucket is appended) on
// first use. A later call with different bounds returns the existing
// histogram unchanged: the first registration wins.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, bytes in flight).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Observe finds the first bucket
// whose upper bound is >= v (the last bucket is +Inf) and increments it;
// the total count is always derived from the buckets, so "bucket counts
// sum to the count" holds on every snapshot, concurrent or not.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sumBits atomic.Uint64   // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveSince records the elapsed host time since t0, in milliseconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
}

// Count reads the total number of observations (the sum of all buckets).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum reads the accumulated observed value.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot reads the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = h.Sum()
	return s
}

// HistogramSnapshot is one histogram's state at snapshot time. Counts has
// one entry per bound plus the trailing +Inf overflow bucket, and Count
// is the sum of Counts by construction.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean reports the average observed value (0 with no observations).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// where the cumulative count crosses the rank and interpolating linearly
// within it. Observations in the +Inf overflow bucket clamp to the
// highest finite bound — a deliberate underestimate, since the histogram
// carries no upper limit for them. Returns 0 with no observations.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*(rank-(cum-float64(c)))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// and the expvar-style JSON document /metrics serves.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads every instrument. Each value is read atomically;
// counters and histogram buckets are monotone across successive
// snapshots.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Delta subtracts an earlier snapshot, instrument by instrument: tests
// and per-server stats use it to measure one window of activity against
// a shared registry. Instruments missing from prev count from zero;
// gauges keep their current value (a level, not a rate).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p, ok := prev.Histograms[name]
		if !ok || len(p.Counts) != len(h.Counts) {
			d.Histograms[name] = h
			continue
		}
		dh := HistogramSnapshot{
			Bounds: h.Bounds,
			Counts: make([]uint64, len(h.Counts)),
			Sum:    h.Sum - p.Sum,
		}
		for i := range h.Counts {
			dh.Counts[i] = h.Counts[i] - p.Counts[i]
			dh.Count += dh.Counts[i]
		}
		d.Histograms[name] = dh
	}
	return d
}

// MarshalJSON emits the snapshot with deterministically ordered keys.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // avoid recursing into this method
	return json.Marshal(alias(s))
}

// WriteJSON writes the registry's current snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ParseSnapshot decodes a snapshot previously produced by WriteJSON or
// MarshalJSON (e.g. the body of a StatsSnapshot remote frame).
func ParseSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parse snapshot: %w", err)
	}
	for name, h := range s.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return Snapshot{}, fmt.Errorf("obs: parse snapshot: histogram %q has %d counts for %d bounds",
				name, len(h.Counts), len(h.Bounds))
		}
	}
	return s, nil
}
