package obs

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

// TestRegistryGetOrCreate locks in the get-or-create contract: the same
// name always resolves to the same instrument, and the three instrument
// namespaces are independent.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter(x) resolved to two instruments")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge(x) resolved to two instruments")
	}
	if r.Histogram("x", 1, 2) != r.Histogram("x", 99) {
		t.Error("Histogram(x) resolved to two instruments")
	}
	if r.Counter("x") == r.Counter("y") {
		t.Error("distinct names resolved to one counter")
	}
	// First registration wins: the second Histogram call above must not
	// have replaced the bounds.
	if got := r.Histogram("x").snapshot().Bounds; !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Errorf("histogram bounds = %v, want [1 2] (first registration wins)", got)
	}
}

// TestHistogramBucketPlacement pins the bucket rule: a value lands in the
// first bucket whose upper bound is >= v, with an implicit +Inf overflow.
func TestHistogramBucketPlacement(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0, 0.5, 1} { // <= 1
		h.Observe(v)
	}
	h.Observe(5)    // (1, 10]
	h.Observe(10)   // boundary: still the 10 bucket
	h.Observe(50)   // (10, 100]
	h.Observe(1000) // overflow
	s := h.snapshot()
	want := []uint64{3, 2, 1, 1}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 7 || h.Count() != 7 {
		t.Errorf("Count = %d/%d, want 7", s.Count, h.Count())
	}
	if got := s.Sum; got != 0+0.5+1+5+10+50+1000 {
		t.Errorf("Sum = %v", got)
	}
	if got, want := s.Mean(), s.Sum/7; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Error("empty histogram Mean should be 0")
	}
}

// TestHistogramInvariantConcurrent is the core histogram invariant under
// contention: with 16 goroutines observing concurrently, every snapshot —
// taken mid-flight, at any interleaving — has bucket counts that sum to
// its Count, and successive snapshots are monotone. Run under -race this
// also proves Observe/snapshot are race-clean.
func TestHistogramInvariantConcurrent(t *testing.T) {
	const (
		goroutines = 16
		perG       = 2000
	)
	r := NewRegistry()
	h := r.Histogram("test.lat_ms", LatencyBuckets...)
	c := r.Counter("test.events")

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				h.Observe(float64((g*perG + i) % 3000))
				c.Inc()
			}
		}(g)
	}
	close(start)

	// Snapshot continuously while observers run.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var prev Snapshot
	for {
		s := r.Snapshot()
		hs := s.Histograms["test.lat_ms"]
		var sum uint64
		for _, n := range hs.Counts {
			sum += n
		}
		if sum != hs.Count {
			t.Fatalf("bucket counts sum to %d, Count says %d", sum, hs.Count)
		}
		if hs.Count < prev.Histograms["test.lat_ms"].Count {
			t.Fatalf("histogram count went backwards: %d -> %d",
				prev.Histograms["test.lat_ms"].Count, hs.Count)
		}
		if s.Counters["test.events"] < prev.Counters["test.events"] {
			t.Fatalf("counter went backwards: %d -> %d",
				prev.Counters["test.events"], s.Counters["test.events"])
		}
		prev = s
		select {
		case <-done:
			final := r.Snapshot()
			if got := final.Histograms["test.lat_ms"].Count; got != goroutines*perG {
				t.Fatalf("final histogram count = %d, want %d", got, goroutines*perG)
			}
			if got := final.Counters["test.events"]; got != goroutines*perG {
				t.Fatalf("final counter = %d, want %d", got, goroutines*perG)
			}
			return
		default:
		}
	}
}

// TestGauge covers the signed instantaneous instrument.
func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("q.depth")
	g.Set(5)
	g.Add(-7)
	if got := g.Value(); got != -2 {
		t.Errorf("gauge = %d, want -2", got)
	}
	if got := r.Snapshot().Gauges["q.depth"]; got != -2 {
		t.Errorf("snapshot gauge = %d, want -2", got)
	}
}

// TestSnapshotDelta checks windowed measurement against a shared
// registry: counters and histogram buckets subtract, gauges stay levels.
func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h", 1, 10)
	g := r.Gauge("g")
	c.Add(3)
	h.Observe(0.5)
	g.Set(7)
	before := r.Snapshot()

	c.Add(2)
	h.Observe(5)
	h.Observe(100)
	g.Set(9)
	d := r.Snapshot().Delta(before)

	if got := d.Counters["n"]; got != 2 {
		t.Errorf("delta counter = %d, want 2", got)
	}
	if got := d.Gauges["g"]; got != 9 {
		t.Errorf("delta gauge = %d, want 9 (level, not rate)", got)
	}
	dh := d.Histograms["h"]
	if dh.Count != 2 {
		t.Errorf("delta histogram count = %d, want 2", dh.Count)
	}
	if want := []uint64{0, 1, 1}; !reflect.DeepEqual(dh.Counts, want) {
		t.Errorf("delta buckets = %v, want %v", dh.Counts, want)
	}
	if dh.Sum != 105 {
		t.Errorf("delta sum = %v, want 105", dh.Sum)
	}
	// Instruments absent from prev count from zero.
	r2 := NewRegistry()
	r2.Counter("fresh").Add(4)
	if got := r2.Snapshot().Delta(before).Counters["fresh"]; got != 4 {
		t.Errorf("fresh counter delta = %d, want 4", got)
	}
}

// TestSnapshotJSONRoundTrip locks in the wire format the /metrics
// endpoint and the StatsSnapshot remote frame carry: MarshalJSON followed
// by ParseSnapshot reproduces the snapshot exactly.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.ops").Add(42)
	r.Gauge("a.depth").Set(-3)
	h := r.Histogram("a.ms", LatencyBuckets...)
	h.Observe(0.07)
	h.Observe(12.5)
	h.Observe(1e6) // overflow bucket

	s := r.Snapshot()
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round trip diverged:\n got:  %+v\n want: %+v", got, s)
	}
}

// TestParseSnapshotRejects covers the structural checks on untrusted
// snapshot payloads (these arrive over the remote protocol).
func TestParseSnapshotRejects(t *testing.T) {
	if _, err := ParseSnapshot([]byte("not json")); err == nil {
		t.Error("non-JSON accepted")
	}
	// A histogram whose counts disagree with its bounds is malformed.
	bad := []byte(`{"counters":{},"gauges":{},"histograms":{"h":{"bounds":[1,2],"counts":[0],"count":0,"sum":0}}}`)
	if _, err := ParseSnapshot(bad); err == nil {
		t.Error("histogram with mismatched counts accepted")
	}
}

// TestHistogramSumCAS checks the float accumulation path stays exact
// under concurrency for values that are exactly representable.
func TestHistogramSumCAS(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if want := 16 * 1000 * 0.25; h.Sum() != want {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
	if h.Count() != 16000 {
		t.Errorf("count = %d, want 16000", h.Count())
	}
}

// TestHistogramUnsortedBounds: bounds are sorted at construction, so a
// caller listing them out of order gets the same histogram.
func TestHistogramUnsortedBounds(t *testing.T) {
	h := newHistogram([]float64{100, 1, 10})
	h.Observe(5)
	s := h.snapshot()
	if !reflect.DeepEqual(s.Bounds, []float64{1, 10, 100}) {
		t.Fatalf("bounds not sorted: %v", s.Bounds)
	}
	if !reflect.DeepEqual(s.Counts, []uint64{0, 1, 0, 0}) {
		t.Fatalf("counts = %v", s.Counts)
	}
}

// TestLatencyBucketsSane guards the shared bucket policy itself: sorted,
// positive, finite — two snapshots of one workload must bucket alike.
func TestLatencyBucketsSane(t *testing.T) {
	for name, bounds := range map[string][]float64{"latency": LatencyBuckets, "depth": DepthBuckets} {
		for i, b := range bounds {
			if math.IsNaN(b) || math.IsInf(b, 0) {
				t.Errorf("%s bucket %d not finite: %v", name, i, b)
			}
			if i > 0 && bounds[i-1] >= b {
				t.Errorf("%s buckets not strictly ascending at %d: %v >= %v", name, i, bounds[i-1], b)
			}
		}
	}
}

// TestHistogramQuantile pins the bucket-interpolation estimator: exact
// crossings, interior interpolation, overflow clamping, and the empty
// case.
func TestHistogramQuantile(t *testing.T) {
	var s HistogramSnapshot
	if got := s.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}

	// Bounds [10, 20, 30]; 10 observations uniformly in (0, 10].
	s = HistogramSnapshot{
		Bounds: []float64{10, 20, 30},
		Counts: []uint64{10, 0, 0, 0},
		Count:  10,
	}
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("uniform p50 = %v, want 5", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Errorf("uniform p100 = %v, want 10", got)
	}

	// Observations split across buckets: rank lands inside the second.
	s = HistogramSnapshot{
		Bounds: []float64{10, 20, 30},
		Counts: []uint64{4, 4, 0, 0},
		Count:  8,
	}
	if got := s.Quantile(0.75); got != 15 {
		t.Errorf("split p75 = %v, want 15", got)
	}

	// Overflow observations clamp to the highest finite bound.
	s = HistogramSnapshot{
		Bounds: []float64{10, 20, 30},
		Counts: []uint64{0, 0, 0, 5},
		Count:  5,
	}
	if got := s.Quantile(0.99); got != 30 {
		t.Errorf("overflow p99 = %v, want 30", got)
	}

	// Out-of-range q clamps rather than panics.
	if got := s.Quantile(-1); got != 30 {
		t.Errorf("q<0 = %v, want 30", got)
	}
}
