package vexec

import (
	"bytes"
	"errors"
	"testing"

	"dejaview/internal/compress"
	"dejaview/internal/lfs"
	"dejaview/internal/simclock"
	"dejaview/internal/unionfs"
)

func TestImageSerializationRoundTrip(t *testing.T) {
	c, fs, ck, clk := newCkptSession(t, 3)
	p, _ := c.Spawn(0, "app")
	q, _ := c.Spawn(p.PID(), "child")
	q.SetRegs(Registers{PC: 0x1234, GPR: [8]uint64{9, 8, 7}})
	addr, _ := p.Mem().Mmap(8*PageSize, PermRead|PermWrite)
	if err := fs.WriteFile("/doc", []byte("archived content")); err != nil {
		t.Fatal(err)
	}
	fd, _ := q.Open("/doc")
	if _, err := c.Connect(q, ProtoTCP, "127.0.0.1:1", "127.0.0.1:2"); err != nil {
		t.Fatal(err)
	}
	// A short incremental chain with page changes.
	for i := 0; i < 5; i++ {
		if err := p.Mem().Write(addr+uint64(i)*PageSize, []byte{byte(0x50 + i)}); err != nil {
			t.Fatal(err)
		}
		clk.Advance(simclock.Second)
		if _, err := ck.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := ck.SaveImages(&buf); err != nil {
		t.Fatal(err)
	}

	// Load into a fresh checkpointer over the same kernel/FS.
	clk2 := simclock.New()
	clk2.Set(clk.Now())
	k2 := NewKernel(clk2)
	c2 := k2.NewContainer(fs)
	ck2 := NewCheckpointer(c2, fs, fs, DefaultCostModel(), 3)
	if err := ck2.LoadImages(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if ck2.Counter() != ck.Counter() {
		t.Errorf("counter %d vs %d", ck2.Counter(), ck.Counter())
	}
	// Image metadata survives.
	img, err := ck2.Image(3)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Full { // fullEvery=3: counters 1 and 4 are full
		// counter%3==0 -> full when counter was 0 or 3... fullEvery=3
		// makes checkpoints 1 and 4 full (counter%3==0 before increment).
		t.Log("image 3 incremental as expected")
	}

	// Revive the last checkpoint from the reloaded chain and verify
	// everything.
	last := ck2.Latest()
	view, err := fs.At(last.FSEpoch)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ck2.Restore(last.Counter, unionfs.New(view))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := rr.Container.Process(p.PID())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := rp.Mem().Read(addr+uint64(i)*PageSize, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(0x50+i) {
			t.Errorf("page %d = %#x, want %#x", i, got[0], 0x50+i)
		}
	}
	rq, err := rr.Container.Process(q.PID())
	if err != nil {
		t.Fatal(err)
	}
	if rq.Regs().PC != 0x1234 || rq.Regs().GPR[2] != 7 {
		t.Errorf("registers lost: %+v", rq.Regs())
	}
	if rq.PPID() != p.PID() {
		t.Error("forest lost")
	}
	rf, err := rq.FileByFD(fd)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rf.Read(rr.Container.FS())
	if err != nil || string(data) != "archived content" {
		t.Errorf("file read = %q, %v", data, err)
	}
	if len(rq.Sockets()) != 1 {
		t.Error("socket lost")
	}
}

func TestImagePageDeduplication(t *testing.T) {
	// A page unchanged across checkpoints must serialize once.
	c, _, ck, _ := newCkptSession(t, 100)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(64*PageSize, PermRead|PermWrite)
	for i := uint64(0); i < 64; i++ {
		if err := p.Mem().Write(addr+i*PageSize, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ck.Checkpoint(); err != nil { // full: 64 pages
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // idle incrementals: 0 new pages
		if _, err := ck.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ck.SaveImages(&buf); err != nil {
		t.Fatal(err)
	}
	// 64 pages * 4KiB = 256 KiB; anything far beyond means duplication.
	if buf.Len() > 300*1024 {
		t.Errorf("serialized %d bytes for 64 distinct pages", buf.Len())
	}
}

func TestLoadImagesRejectsGarbage(t *testing.T) {
	clk := simclock.New()
	k := NewKernel(clk)
	fs := lfs.New()
	c := k.NewContainer(fs)
	ck := NewCheckpointer(c, fs, fs, DefaultCostModel(), 10)
	if err := ck.LoadImages(bytes.NewReader([]byte("garbage stream"))); err == nil {
		t.Error("garbage accepted")
	}

	// Truncations of a real stream fail cleanly.
	c2, _, ck2, _ := newCkptSession(t, 10)
	p, _ := c2.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(PageSize, PermRead|PermWrite)
	if err := p.Mem().Write(addr, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ck2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ck2.SaveImages(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// The block table sits past the frame terminator; truncations inside
	// the logical stream must fail, measured against the table-less end.
	logical := len(compress.TrimTable(full))
	for _, cut := range []int{4, 20, logical / 2, logical - 2} {
		if err := ck.LoadImages(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Losing only table bytes leaves a complete logical stream: the
	// sequential loader still accepts it (lazy opens fall back instead).
	if err := ck.LoadImages(bytes.NewReader(full[:len(full)-2])); err != nil {
		t.Errorf("table-only truncation rejected: %v", err)
	}
	if err := ck.LoadImages(bytes.NewReader(full)); err != nil {
		t.Errorf("valid stream rejected after failures: %v", err)
	}
	if !errors.Is(ck.LoadImages(bytes.NewReader(append([]byte("BADMAGIC"), full[8:]...))), ErrCorruptImages) {
		t.Error("bad magic not reported as corruption")
	}
}
