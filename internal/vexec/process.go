package vexec

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dejaview/internal/lfs"
	"dejaview/internal/simclock"
)

// PID is a virtual process ID, private to a container's namespace.
type PID int

// ProcState is a process run state.
type ProcState uint8

// Process states.
const (
	StateRunning ProcState = iota + 1
	StateSleeping
	// StateUninterruptible models a process blocked in an
	// uninterruptible operation (e.g. disk I/O); it cannot handle
	// signals until the operation completes, which is why the
	// checkpointer pre-quiesces (§5.1.2).
	StateUninterruptible
	StateStopped
	StateZombie
)

var procStateNames = [...]string{
	StateRunning:         "running",
	StateSleeping:        "sleeping",
	StateUninterruptible: "uninterruptible",
	StateStopped:         "stopped",
	StateZombie:          "zombie",
}

// String implements fmt.Stringer.
func (s ProcState) String() string {
	if int(s) < len(procStateNames) && procStateNames[s] != "" {
		return procStateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Signal numbers (the subset the engine needs).
type Signal uint8

// Signals.
const (
	SIGHUP  Signal = 1
	SIGINT  Signal = 2
	SIGKILL Signal = 9
	SIGSEGV Signal = 11
	SIGTERM Signal = 15
	SIGCHLD Signal = 17
	SIGCONT Signal = 18
	SIGSTOP Signal = 19
	SIGUSR1 Signal = 10
	SIGUSR2 Signal = 12
)

// SignalSet is a bitmask of signals.
type SignalSet uint64

// Has reports whether the set contains sig.
func (s SignalSet) Has(sig Signal) bool { return s&(1<<sig) != 0 }

// Add returns the set with sig added.
func (s SignalSet) Add(sig Signal) SignalSet { return s | 1<<sig }

// Remove returns the set with sig removed.
func (s SignalSet) Remove(sig Signal) SignalSet { return s &^ (1 << sig) }

// Registers is the simulated CPU/FPU state saved in checkpoints.
type Registers struct {
	PC, SP uint64
	GPR    [8]uint64
	FPCR   uint32
}

// Credentials are the process identity saved in checkpoints.
type Credentials struct {
	UID, GID int
}

// OpenFile is one open file descriptor. Unlinked-but-open files are the
// §5.1.2 relinking case: their contents survive only while open, so the
// checkpointer relinks them into a hidden directory before snapshots.
type OpenFile struct {
	FD       int
	Path     string
	Offset   int64
	Unlinked bool

	// ino pins the inode when the file system can relink by inode.
	ino lfs.Ino
	// saved holds a copy of the contents captured at unlink time, the
	// fallback used when no relinker is available. It also models the
	// kernel keeping the inode's data alive while the file stays open.
	saved []byte
}

// Read returns the file's contents: through the file system while the
// file has a name, from the kept-alive inode data once unlinked.
func (f *OpenFile) Read(fs FileSystem) ([]byte, error) {
	if f.Unlinked {
		return append([]byte(nil), f.saved...), nil
	}
	return fs.ReadFile(f.Path)
}

// SockProto distinguishes socket protocols, which revive treats
// differently (§5.2).
type SockProto uint8

// Socket protocols.
const (
	ProtoTCP SockProto = iota + 1
	ProtoUDP
)

// SockState is a socket connection state.
type SockState uint8

// Socket states.
const (
	SockEstablished SockState = iota + 1
	SockClosed
	SockReset
)

// String implements fmt.Stringer.
func (s SockState) String() string {
	switch s {
	case SockEstablished:
		return "established"
	case SockClosed:
		return "closed"
	case SockReset:
		return "reset"
	}
	return fmt.Sprintf("sockstate(%d)", uint8(s))
}

// String implements fmt.Stringer.
func (p SockProto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// Socket is one network endpoint owned by a process.
type Socket struct {
	FD         int
	Proto      SockProto
	LocalAddr  string
	RemoteAddr string
	State      SockState
}

// External reports whether the socket's peer is outside the session
// (not localhost); external stateful connections are dropped on revive.
func (s *Socket) External() bool {
	return !strings.HasPrefix(s.RemoteAddr, "127.") &&
		!strings.HasPrefix(s.RemoteAddr, "localhost")
}

// Process is one simulated process (with Threads counting its threads —
// a multithreaded process checkpoints as a unit).
type Process struct {
	container *Container
	pid       PID
	ppid      PID
	name      string
	state     ProcState
	prevState ProcState // state before SIGSTOP, restored on SIGCONT
	threads   int
	mem       *AddressSpace
	files     map[int]*OpenFile
	sockets   map[int]*Socket
	nextFD    int
	pending   SignalSet
	blocked   SignalSet
	regs      Registers
	creds     Credentials
	prio      int
	// tracer is the PID of a debugger attached via ptrace (0 = none);
	// §5.2 lists ptrace information among the restored state.
	tracer PID
	// uninterruptibleUntil is when the blocking operation completes.
	uninterruptibleUntil simclock.Time
	exitCode             int
}

// Process errors.
var (
	ErrNoProcess = errors.New("vexec: no such process")
	ErrBadFD     = errors.New("vexec: bad file descriptor")
)

// PID returns the process's virtual PID.
func (p *Process) PID() PID { return p.pid }

// PPID returns the parent PID.
func (p *Process) PPID() PID { return p.ppid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// State returns the run state.
func (p *Process) State() ProcState {
	p.container.kernel.mu.Lock()
	defer p.container.kernel.mu.Unlock()
	return p.state
}

// Threads returns the thread count.
func (p *Process) Threads() int { return p.threads }

// Mem returns the process address space. Callers in workloads drive it
// directly; the kernel lock is not required because each process is
// driven by one goroutine in the simulation.
func (p *Process) Mem() *AddressSpace { return p.mem }

// Regs returns a copy of the register state.
func (p *Process) Regs() Registers { return p.regs }

// SetRegs updates the register state (workloads advance PC etc.).
func (p *Process) SetRegs(r Registers) { p.regs = r }

// Creds returns the credentials.
func (p *Process) Creds() Credentials { return p.creds }

// Priority returns the scheduling priority.
func (p *Process) Priority() int { return p.prio }

// SetPriority sets the scheduling priority.
func (p *Process) SetPriority(n int) { p.prio = n }

// Open opens a file through the container's file system, returning a
// descriptor.
func (p *Process) Open(path string) (int, error) {
	if !p.container.FS().Exists(path) {
		if err := p.container.FS().WriteFile(path, nil); err != nil {
			return 0, err
		}
	}
	fd := p.nextFD
	p.nextFD++
	p.files[fd] = &OpenFile{FD: fd, Path: path}
	return fd, nil
}

// Close releases a descriptor.
func (p *Process) Close(fd int) error {
	if _, ok := p.files[fd]; ok {
		delete(p.files, fd)
		return nil
	}
	if _, ok := p.sockets[fd]; ok {
		delete(p.sockets, fd)
		return nil
	}
	return fmt.Errorf("%w: %d", ErrBadFD, fd)
}

// FileByFD returns the open file behind fd.
func (p *Process) FileByFD(fd int) (*OpenFile, error) {
	f, ok := p.files[fd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return f, nil
}

// OpenFiles snapshots the open file list, in FD order: the snapshot is
// serialized into checkpoint images, so map iteration order must not
// leak into the bytes.
func (p *Process) OpenFiles() []*OpenFile {
	fds := make([]int, 0, len(p.files))
	for fd := range p.files {
		fds = append(fds, fd)
	}
	sort.Ints(fds)
	out := make([]*OpenFile, 0, len(fds))
	for _, fd := range fds {
		out = append(out, p.files[fd])
	}
	return out
}

// Unlink removes the file's name from the file system while the process
// keeps it open — the classic /tmp scratch-file pattern (§5.1.2).
func (p *Process) Unlink(fd int) error {
	f, err := p.FileByFD(fd)
	if err != nil {
		return err
	}
	// Keep the inode's contents reachable while the file stays open:
	// capture the inode number when the file system supports relinking,
	// and a data copy as the universal fallback.
	if data, err := p.container.FS().ReadFile(f.Path); err == nil {
		f.saved = data
	}
	if r, ok := p.container.FS().(interface {
		InoOf(string) (lfs.Ino, error)
	}); ok {
		if ino, err := r.InoOf(f.Path); err == nil {
			f.ino = ino
		}
	}
	if err := p.container.FS().Remove(f.Path); err != nil {
		return err
	}
	f.Unlinked = true
	return nil
}

// Connect creates a socket to remoteAddr.
func (p *Process) Connect(proto SockProto, localAddr, remoteAddr string) *Socket {
	fd := p.nextFD
	p.nextFD++
	s := &Socket{
		FD:         fd,
		Proto:      proto,
		LocalAddr:  localAddr,
		RemoteAddr: remoteAddr,
		State:      SockEstablished,
	}
	p.sockets[fd] = s
	return s
}

// Sockets snapshots the socket list, in FD order (see OpenFiles).
func (p *Process) Sockets() []*Socket {
	fds := make([]int, 0, len(p.sockets))
	for fd := range p.sockets {
		fds = append(fds, fd)
	}
	sort.Ints(fds)
	out := make([]*Socket, 0, len(fds))
	for _, fd := range fds {
		out = append(out, p.sockets[fd])
	}
	return out
}

// Signal queues a signal. SIGSTOP and SIGCONT act immediately (they
// cannot be blocked); a process in uninterruptible sleep defers handling
// until the blocking operation completes, which is what pre-quiescing
// works around.
func (p *Process) Signal(sig Signal) {
	p.container.kernel.mu.Lock()
	defer p.container.kernel.mu.Unlock()
	p.signalLocked(sig)
}

func (p *Process) signalLocked(sig Signal) {
	switch sig {
	case SIGSTOP:
		if p.state == StateUninterruptible {
			// Delivered when the operation completes.
			p.pending = p.pending.Add(sig)
			return
		}
		if p.state != StateStopped && p.state != StateZombie {
			p.prevState = p.state
			p.state = StateStopped
		}
	case SIGCONT:
		if p.state == StateStopped {
			p.state = p.prevState
			if p.state == 0 {
				p.state = StateRunning
			}
		}
		p.pending = p.pending.Remove(SIGSTOP)
	case SIGKILL:
		p.state = StateZombie
		p.exitCode = -int(SIGKILL)
	default:
		if !p.blocked.Has(sig) {
			p.pending = p.pending.Add(sig)
		}
	}
}

// BlockSignals adds signals to the process's blocked mask.
func (p *Process) BlockSignals(set SignalSet) { p.blocked |= set }

// PendingSignals returns the pending set.
func (p *Process) PendingSignals() SignalSet { return p.pending }

// BlockedSignals returns the blocked mask.
func (p *Process) BlockedSignals() SignalSet { return p.blocked }

// EnterUninterruptible puts the process into uninterruptible sleep until
// the given virtual time (e.g. disk I/O completing).
func (p *Process) EnterUninterruptible(until simclock.Time) {
	p.container.kernel.mu.Lock()
	defer p.container.kernel.mu.Unlock()
	p.state = StateUninterruptible
	p.uninterruptibleUntil = until
}

// completeBlockingLocked finishes an uninterruptible operation if its
// deadline has passed, delivering any deferred SIGSTOP.
func (p *Process) completeBlockingLocked(now simclock.Time) {
	if p.state != StateUninterruptible || now < p.uninterruptibleUntil {
		return
	}
	p.state = StateRunning
	if p.pending.Has(SIGSTOP) {
		p.pending = p.pending.Remove(SIGSTOP)
		p.prevState = StateRunning
		p.state = StateStopped
	}
}

// Ptrace attaches a tracer process (0 detaches).
func (p *Process) Ptrace(tracer PID) {
	p.container.kernel.mu.Lock()
	defer p.container.kernel.mu.Unlock()
	p.tracer = tracer
}

// Tracer reports the attached tracer PID (0 = none).
func (p *Process) Tracer() PID {
	p.container.kernel.mu.Lock()
	defer p.container.kernel.mu.Unlock()
	return p.tracer
}

// Exit terminates the process.
func (p *Process) Exit(code int) {
	p.container.kernel.mu.Lock()
	defer p.container.kernel.mu.Unlock()
	p.state = StateZombie
	p.exitCode = code
}
