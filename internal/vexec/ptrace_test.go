package vexec

import (
	"bytes"
	"testing"

	"dejaview/internal/unionfs"
)

func TestPtraceStateRoundTrips(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 10)
	gdb, _ := c.Spawn(0, "gdb")
	app, _ := c.Spawn(gdb.PID(), "app")
	app.Ptrace(gdb.PID())
	if app.Tracer() != gdb.PID() {
		t.Fatal("ptrace attach lost")
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Direct revive.
	view, _ := fs.At(res.Image.FSEpoch)
	rr, err := ck.Restore(res.Image.Counter, unionfs.New(view))
	if err != nil {
		t.Fatal(err)
	}
	rApp, _ := rr.Container.Process(app.PID())
	if rApp.Tracer() != gdb.PID() {
		t.Error("ptrace information lost across revive")
	}

	// Through serialization too.
	var buf bytes.Buffer
	if err := ck.SaveImages(&buf); err != nil {
		t.Fatal(err)
	}
	ck2 := NewCheckpointer(c, fs, fs, DefaultCostModel(), 10)
	if err := ck2.LoadImages(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	img, err := ck2.Image(res.Image.Counter)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, pi := range img.Procs {
		if pi.PID == app.PID() && pi.Tracer == gdb.PID() {
			found = true
		}
	}
	if !found {
		t.Error("ptrace information lost across serialization")
	}
	// Detach works.
	app.Ptrace(0)
	if app.Tracer() != 0 {
		t.Error("detach failed")
	}
}
