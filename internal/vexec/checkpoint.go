package vexec

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dejaview/internal/lfs"
	"dejaview/internal/obs"
	"dejaview/internal/simclock"
)

// Registry instruments for the checkpoint engine. Durations are virtual
// (simclock) milliseconds, matching the paper's Figure 3 breakdown.
var (
	obsCheckpoints = obs.Default.Counter("vexec.checkpoints")
	obsDowntimeMS  = obs.Default.Histogram("vexec.checkpoint_downtime_ms", obs.LatencyBuckets...)
	obsQuiesceMS   = obs.Default.Histogram("vexec.quiesce_ms", obs.LatencyBuckets...)
)

func virtualMS(t simclock.Time) float64 {
	return t.Seconds() * 1e3
}

// Checkpoint errors.
var (
	ErrNoCheckpoint = errors.New("vexec: no such checkpoint")
)

// RegionImage is the saved layout of one memory region.
type RegionImage struct {
	Start  uint64
	Length uint64
	Perms  Perm
}

// FileImage is the saved state of one open file descriptor.
type FileImage struct {
	FD         int
	Path       string
	Offset     int64
	Unlinked   bool
	RelinkPath string // where the unlinked file was relinked pre-snapshot
	SavedData  []byte // fallback contents when no relinker was available
}

// SocketImage is the saved state of one socket.
type SocketImage struct {
	FD         int
	Proto      SockProto
	LocalAddr  string
	RemoteAddr string
	State      SockState
}

// ProcImage is the saved state of one process: run state, program name,
// scheduling parameters, credentials, pending and blocked signals, CPU
// registers, open files, sockets, and the memory layout (§5.2).
type ProcImage struct {
	PID      PID
	PPID     PID
	Name     string
	State    ProcState
	Threads  int
	Tracer   PID
	Regs     Registers
	Creds    Credentials
	Priority int
	Pending  SignalSet
	Blocked  SignalSet
	Files    []FileImage
	Sockets  []SocketImage
	Regions  []RegionImage
}

// imagePage locates one captured page within a checkpoint image.
type imagePage struct {
	pid  PID
	addr uint64
	pg   *page
}

// Image is one checkpoint: process metadata plus captured memory pages
// (all pages for a full checkpoint, only modified pages for an
// incremental one) and the associated file-system snapshot epoch.
type Image struct {
	Counter uint64
	Time    simclock.Time
	Full    bool
	Parent  *Image // previous image in the incremental chain
	FSEpoch lfs.Epoch
	Procs   []ProcImage

	pages []imagePage
	// MemBytes is the captured page payload; MetaBytes the per-process
	// metadata; CompressedBytes the (estimated) gzip size of the image.
	MemBytes        int64
	MetaBytes       int64
	CompressedBytes int64

	// cached models page-cache residency for revive experiments.
	cached bool
}

// TotalBytes reports the on-disk image size.
func (im *Image) TotalBytes() int64 { return im.MemBytes + im.MetaBytes }

// Pages reports the number of captured pages.
func (im *Image) Pages() int { return len(im.pages) }

// CheckpointResult is the per-checkpoint latency breakdown of Figure 3.
// Downtime — the window during which processes are stopped — is
// Quiesce + Capture + FSSnapshot; PreCheckpoint and Writeback overlap
// normal execution.
type CheckpointResult struct {
	Image *Image
	// PreSnapshot is the pre-quiesce file-system sync time.
	PreSnapshot simclock.Time
	// PreQuiesce is the time spent waiting for uninterruptible
	// processes to become signalable.
	PreQuiesce simclock.Time
	// Quiesce is the time to stop every process.
	Quiesce simclock.Time
	// Capture is the COW capture of memory and process state.
	Capture simclock.Time
	// FSSnapshot is the file-system snapshot time.
	FSSnapshot simclock.Time
	// Writeback is the deferred image write-out time.
	Writeback simclock.Time
}

// Downtime is the user-visible stall.
func (r *CheckpointResult) Downtime() simclock.Time {
	return r.Quiesce + r.Capture + r.FSSnapshot
}

// Total is the end-to-end checkpoint cost including overlapped phases.
func (r *CheckpointResult) Total() simclock.Time {
	return r.PreSnapshot + r.PreQuiesce + r.Downtime() + r.Writeback
}

// CkptStats aggregates checkpointer activity, including the per-phase
// latency sums behind Figure 3's breakdown.
type CkptStats struct {
	Checkpoints      uint64
	FullCheckpoints  uint64
	TotalBytes       int64
	CompressedBytes  int64
	TotalDowntime    simclock.Time
	MaxDowntime      simclock.Time
	Relinks          uint64
	BufferPrealloc   int64 // current preallocated buffer estimate
	BufferExpansions uint64

	TotalPreSnapshot simclock.Time
	TotalPreQuiesce  simclock.Time
	TotalQuiesce     simclock.Time
	TotalCapture     simclock.Time
	TotalFSSnapshot  simclock.Time
	TotalWriteback   simclock.Time
}

// Checkpointer continuously checkpoints one container.
//
// Checkpointer is safe for concurrent use: the paper's usage model runs
// revives (and searches over the image chain) concurrently with the
// session's ongoing once-per-second checkpointing.
type Checkpointer struct {
	mu     sync.Mutex
	cont   *Container
	snapfs SnapshotFS
	relink Relinker
	costs  CostModel
	// fullEvery forces a full checkpoint every N checkpoints (§5.1.2:
	// periodic fulls bound the incremental chain length).
	fullEvery int

	counter uint64
	lastGen uint64
	images  map[uint64]*Image
	order   []uint64
	last    *Image
	stats   CkptStats
	bufEst  int64
	recent  []int64 // recent image sizes for buffer estimation

	// Lazy-open state (LoadImagesLazy): pages whose data has not been
	// read yet, keyed to their pool index, plus the demand-load source.
	// materializeLocked drains lazyIdx as pages are touched.
	lazyIdx     map[*page]int
	pageFetch   func(off int64, dst []byte) error
	payloadBase int64
}

// NewCheckpointer creates a checkpointer over a container, its snapshot
// layer, and an optional relinker for unlinked-but-open files. fullEvery
// <= 0 defaults to 100.
func NewCheckpointer(cont *Container, snapfs SnapshotFS, relink Relinker, costs CostModel, fullEvery int) *Checkpointer {
	if fullEvery <= 0 {
		fullEvery = 100
	}
	return &Checkpointer{
		cont:      cont,
		snapfs:    snapfs,
		relink:    relink,
		costs:     costs,
		fullEvery: fullEvery,
		images:    make(map[uint64]*Image),
		bufEst:    1 << 20,
	}
}

// Costs exposes the model (benchmarks tweak it).
func (ck *Checkpointer) Costs() *CostModel { return &ck.costs }

// Checkpoint takes one coordinated, globally consistent checkpoint of the
// container using the paper's four steps — quiesce, save execution state,
// file-system snapshot, resume — with all §5.1.2 optimizations. The
// kernel clock advances by the downtime (overlapped phases do not stall
// the session).
func (ck *Checkpointer) Checkpoint() (*CheckpointResult, error) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	k := ck.cont.kernel
	res := &CheckpointResult{}
	full := ck.counter%uint64(ck.fullEvery) == 0

	// Phase 1 (overlapped): pre-snapshot file-system sync.
	flushed := ck.snapfs.Sync()
	res.PreSnapshot = ck.costs.writeTime(flushed)

	// Phase 2 (overlapped): pre-quiesce — wait for processes to be able
	// to handle signals promptly, up to PreQuiesceMax.
	res.PreQuiesce = ck.preQuiesce()

	// Phase 3 (downtime): quiesce — stop all processes.
	k.mu.Lock()
	nProcs := 0
	for _, p := range ck.cont.procs {
		if p.state != StateZombie {
			p.signalLocked(SIGSTOP)
			nProcs++
		}
	}
	res.Quiesce = simclock.Time(nProcs) * ck.costs.PerProcQuiesce

	// Phase 4 (downtime): capture process metadata and COW page refs.
	ck.counter++
	img := &Image{
		Counter: ck.counter,
		Time:    k.clock.Now(),
		Full:    full,
		Parent:  ck.last,
	}
	var regions, pages int
	maxGen := ck.lastGen
	for _, p := range ck.cont.procs {
		if p.state == StateZombie {
			continue
		}
		pi, relinks := ck.captureProcLocked(p, img)
		img.Procs = append(img.Procs, pi)
		ck.stats.Relinks += relinks
		regions += len(pi.Regions)
		cap := p.mem.capture(full, ck.lastGen)
		for _, cp := range cap {
			img.pages = append(img.pages, imagePage{pid: p.pid, addr: cp.addr, pg: cp.pg})
			if cp.pg.gen > maxGen {
				maxGen = cp.pg.gen
			}
		}
		pages += len(cap)
		// Arm dirty tracking for the next incremental checkpoint.
		p.mem.protectAll()
	}
	sort.Slice(img.Procs, func(i, j int) bool { return img.Procs[i].PID < img.Procs[j].PID })
	img.MemBytes = int64(pages) * PageSize
	img.MetaBytes = int64(len(img.Procs)) * 512
	res.Capture = simclock.Time(regions)*ck.costs.PerRegionCapture +
		simclock.Time(pages)*ck.costs.PerPageCapture
	k.mu.Unlock()

	// Phase 5 (downtime): file-system snapshot, bound to the counter in
	// both directions.
	epoch, rem := ck.snapfs.Snapshot()
	_ = epoch
	img.FSEpoch = ck.snapfs.TagCheckpoint(img.Counter)
	res.FSSnapshot = ck.costs.FSSnapshotBase + ck.costs.writeTime(rem)

	// Advance the clock by the downtime, then resume.
	k.clock.Advance(res.Downtime())
	ck.cont.SignalAll(SIGCONT)

	// Phase 6 (overlapped): deferred writeback from preallocated
	// buffers. COW page immutability guarantees consistency even though
	// processes already run again.
	img.CompressedBytes = estimateCompressed(img)
	res.Writeback = ck.costs.writeTime(img.TotalBytes())
	ck.accountBuffer(img.TotalBytes())

	img.cached = true // just written: page-cache resident
	ck.images[img.Counter] = img
	ck.order = append(ck.order, img.Counter)
	ck.last = img
	ck.lastGen = maxGen
	res.Image = img

	ck.stats.Checkpoints++
	obsCheckpoints.Inc()
	obsDowntimeMS.Observe(virtualMS(res.Downtime()))
	obsQuiesceMS.Observe(virtualMS(res.Quiesce))
	if full {
		ck.stats.FullCheckpoints++
	}
	ck.stats.TotalBytes += img.TotalBytes()
	ck.stats.CompressedBytes += img.CompressedBytes
	ck.stats.TotalDowntime += res.Downtime()
	if d := res.Downtime(); d > ck.stats.MaxDowntime {
		ck.stats.MaxDowntime = d
	}
	ck.stats.TotalPreSnapshot += res.PreSnapshot
	ck.stats.TotalPreQuiesce += res.PreQuiesce
	ck.stats.TotalQuiesce += res.Quiesce
	ck.stats.TotalCapture += res.Capture
	ck.stats.TotalFSSnapshot += res.FSSnapshot
	ck.stats.TotalWriteback += res.Writeback
	return res, nil
}

// preQuiesce waits (in virtual time) until every process can promptly
// handle a stop signal, or PreQuiesceMax elapses.
func (ck *Checkpointer) preQuiesce() simclock.Time {
	k := ck.cont.kernel
	k.mu.Lock()
	now := k.clock.Now()
	var wait simclock.Time
	for _, p := range ck.cont.procs {
		if p.state == StateUninterruptible {
			w := p.uninterruptibleUntil - now
			if w > wait {
				wait = w
			}
		}
	}
	k.mu.Unlock()
	if wait <= 0 {
		return 0
	}
	if wait > ck.costs.PreQuiesceMax {
		wait = ck.costs.PreQuiesceMax
	}
	k.clock.Advance(wait)
	ck.cont.Tick() // let completed operations finish
	return wait
}

// captureProcLocked snapshots one process's metadata, relinking unlinked
// open files so the coming FS snapshot preserves their contents.
func (ck *Checkpointer) captureProcLocked(p *Process, img *Image) (ProcImage, uint64) {
	state := p.state
	if state == StateStopped && p.prevState != 0 {
		// Record the pre-quiesce state so restore resumes it correctly.
		state = p.prevState
	}
	pi := ProcImage{
		PID:      p.pid,
		PPID:     p.ppid,
		Name:     p.name,
		State:    state,
		Threads:  p.threads,
		Tracer:   p.tracer,
		Regs:     p.regs,
		Creds:    p.creds,
		Priority: p.prio,
		Pending:  p.pending.Remove(SIGSTOP),
		Blocked:  p.blocked,
	}
	var relinks uint64
	for _, f := range sortedFiles(p.files) {
		fi := FileImage{
			FD:       f.FD,
			Path:     f.Path,
			Offset:   f.Offset,
			Unlinked: f.Unlinked,
		}
		if f.Unlinked {
			if ck.relink != nil && f.ino != 0 {
				relPath := fmt.Sprintf("/.dejaview/relink-%d-%d-%d", img.Counter, p.pid, f.FD)
				if err := ck.relink.MkdirAll("/.dejaview"); err == nil {
					if err := ck.relink.LinkIno(f.ino, relPath); err == nil {
						fi.RelinkPath = relPath
						relinks++
					}
				}
			}
			if fi.RelinkPath == "" {
				// No relinker: fall back to saving contents into the
				// image (the expensive path relinking avoids).
				fi.SavedData = append([]byte(nil), f.saved...)
				img.MemBytes += int64(len(fi.SavedData))
			}
		}
		pi.Files = append(pi.Files, fi)
	}
	for _, s := range sortedSockets(p.sockets) {
		pi.Sockets = append(pi.Sockets, SocketImage{
			FD:         s.FD,
			Proto:      s.Proto,
			LocalAddr:  s.LocalAddr,
			RemoteAddr: s.RemoteAddr,
			State:      s.State,
		})
	}
	for _, r := range p.mem.regions {
		pi.Regions = append(pi.Regions, RegionImage{Start: r.start, Length: r.length, Perms: r.perms})
	}
	return pi, relinks
}

func sortedFiles(m map[int]*OpenFile) []*OpenFile {
	out := make([]*OpenFile, 0, len(m))
	for _, f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FD < out[j].FD })
	return out
}

func sortedSockets(m map[int]*Socket) []*Socket {
	out := make([]*Socket, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FD < out[j].FD })
	return out
}

// accountBuffer maintains the preallocated in-memory buffer estimate from
// the average of recent checkpoint sizes (§5.1.2).
func (ck *Checkpointer) accountBuffer(size int64) {
	if size > ck.bufEst {
		ck.stats.BufferExpansions++
	}
	ck.recent = append(ck.recent, size)
	if len(ck.recent) > 16 {
		ck.recent = ck.recent[1:]
	}
	var sum int64
	for _, s := range ck.recent {
		sum += s
	}
	ck.bufEst = sum / int64(len(ck.recent))
	if ck.bufEst < 1<<16 {
		ck.bufEst = 1 << 16
	}
	ck.stats.BufferPrealloc = ck.bufEst
}

// estimateCompressed estimates the gzip-compressed image size by
// compressing a bounded sample of the page payload and extrapolating.
func estimateCompressed(img *Image) int64 {
	const sampleCap = 32 * PageSize
	if img.MemBytes == 0 {
		return img.MetaBytes / 4
	}
	var raw bytes.Buffer
	for _, ip := range img.pages {
		//lint:ignore dropped-error bytes.Buffer.Write is documented to never return an error
		raw.Write(ip.pg.data)
		if raw.Len() >= sampleCap {
			break
		}
	}
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return img.TotalBytes()
	}
	if _, err := w.Write(raw.Bytes()); err != nil {
		return img.TotalBytes()
	}
	if err := w.Close(); err != nil {
		return img.TotalBytes()
	}
	ratio := float64(out.Len()) / float64(raw.Len())
	return int64(ratio*float64(img.MemBytes)) + img.MetaBytes/4
}

// Image returns the checkpoint image for a counter.
func (ck *Checkpointer) Image(counter uint64) (*Image, error) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.imageLocked(counter)
}

func (ck *Checkpointer) imageLocked(counter uint64) (*Image, error) {
	img, ok := ck.images[counter]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoCheckpoint, counter)
	}
	return img, nil
}

// Latest returns the most recent image, or nil.
func (ck *Checkpointer) Latest() *Image {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.last
}

// Counter reports the number of checkpoints taken.
func (ck *Checkpointer) Counter() uint64 {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.counter
}

// LatestBefore returns the last checkpoint at or before time t — the
// image "Take me back" revives for a display-record position (§5.2).
func (ck *Checkpointer) LatestBefore(t simclock.Time) (*Image, error) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	var best *Image
	for _, c := range ck.order {
		img := ck.images[c]
		if img.Time <= t && (best == nil || img.Time > best.Time) {
			best = img
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: none at or before %v", ErrNoCheckpoint, t)
	}
	return best, nil
}

// DropCaches marks every image cold, modeling page-cache eviction for the
// uncached-revive experiments.
func (ck *Checkpointer) DropCaches() {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	for _, img := range ck.images {
		img.cached = false
	}
}

// Stats returns a copy of the counters.
func (ck *Checkpointer) Stats() CkptStats {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.stats
}

// CheckpointNaive is the ablation baseline without the §5.1.2
// optimizations: it synchronously syncs the file system, copies all of
// memory, and writes the image to disk while every process stays stopped.
// The paper reports this could not sustain the once-per-second rate.
func (ck *Checkpointer) CheckpointNaive() (*CheckpointResult, error) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	k := ck.cont.kernel
	res := &CheckpointResult{}

	k.mu.Lock()
	nProcs := 0
	for _, p := range ck.cont.procs {
		if p.state != StateZombie {
			p.signalLocked(SIGSTOP)
			nProcs++
		}
	}
	res.Quiesce = simclock.Time(nProcs) * ck.costs.PerProcQuiesce

	ck.counter++
	img := &Image{Counter: ck.counter, Time: k.clock.Now(), Full: true, Parent: ck.last}
	// Capture processes in PID order: img.Procs and img.pages are
	// serialized into the image stream, and map iteration order would
	// make two identical runs write different archive bytes.
	pids := make([]PID, 0, len(ck.cont.procs))
	for pid := range ck.cont.procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	var totalBytes int64
	for _, pid := range pids {
		p := ck.cont.procs[pid]
		if p.state == StateZombie {
			continue
		}
		pi, _ := ck.captureProcLocked(p, img)
		img.Procs = append(img.Procs, pi)
		cap := p.mem.capture(true, 0)
		for _, cp := range cap {
			img.pages = append(img.pages, imagePage{pid: p.pid, addr: cp.addr, pg: cp.pg})
		}
		totalBytes += int64(len(cap)) * PageSize
	}
	img.MemBytes = totalBytes
	img.MetaBytes = int64(len(img.Procs)) * 512
	k.mu.Unlock()

	// Everything happens inside the stop window: explicit memory copy,
	// file-system sync + snapshot, and synchronous image write-out.
	memCopy := simclock.Time(0)
	if ck.costs.MemCopyBW > 0 {
		memCopy = simclock.Time(totalBytes * int64(simclock.Second) / ck.costs.MemCopyBW)
	}
	res.Capture = memCopy
	flushed := ck.snapfs.Sync()
	_, rem := ck.snapfs.Snapshot()
	img.FSEpoch = ck.snapfs.TagCheckpoint(img.Counter)
	res.FSSnapshot = ck.costs.FSSnapshotBase + ck.costs.writeTime(flushed+rem)
	syncWrite := ck.costs.writeTime(img.TotalBytes())
	res.Capture += syncWrite // write-out is part of the stall

	k.clock.Advance(res.Downtime())
	ck.cont.SignalAll(SIGCONT)

	img.CompressedBytes = estimateCompressed(img)
	img.cached = true
	ck.images[img.Counter] = img
	ck.order = append(ck.order, img.Counter)
	ck.last = img
	res.Image = img
	ck.stats.Checkpoints++
	ck.stats.FullCheckpoints++
	ck.stats.TotalBytes += img.TotalBytes()
	ck.stats.TotalDowntime += res.Downtime()
	if d := res.Downtime(); d > ck.stats.MaxDowntime {
		ck.stats.MaxDowntime = d
	}
	return res, nil
}
