package vexec

import (
	"testing"

	"dejaview/internal/lfs"
	"dejaview/internal/simclock"
	"dejaview/internal/unionfs"
)

// reviveAt restores checkpoint counter into a fresh union branch over its
// FS snapshot.
func reviveAt(t *testing.T, fs *lfs.FS, ck *Checkpointer, counter uint64) *RestoreResult {
	t.Helper()
	img, err := ck.Image(counter)
	if err != nil {
		t.Fatal(err)
	}
	view, err := fs.At(img.FSEpoch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ck.Restore(counter, unionfs.New(view))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRestoreProcessForest(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 10)
	init, _ := c.Spawn(0, "init")
	x, _ := c.Spawn(init.PID(), "xserver")
	wm, _ := c.Spawn(x.PID(), "window-manager")
	ff, _ := c.Spawn(wm.PID(), "firefox")
	c.SpawnThreads(ff, 9)
	ff.SetPriority(3)
	ff.SetRegs(Registers{PC: 0xDEAD, SP: 0xBEEF, GPR: [8]uint64{1, 2, 3}})
	ff.BlockSignals(SignalSet(0).Add(SIGUSR1))
	ff.Signal(SIGUSR2)

	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	rr := reviveAt(t, fs, ck, res.Image.Counter)
	nc := rr.Container

	if got := len(nc.Processes()); got != 4 {
		t.Fatalf("revived %d processes, want 4", got)
	}
	// Same virtual PIDs in the new namespace.
	rff, err := nc.Process(ff.PID())
	if err != nil {
		t.Fatal(err)
	}
	if rff.Name() != "firefox" || rff.PPID() != wm.PID() {
		t.Errorf("revived firefox = %s ppid %d", rff.Name(), rff.PPID())
	}
	if rff.Threads() != 10 {
		t.Errorf("threads = %d, want 10", rff.Threads())
	}
	if rff.Priority() != 3 {
		t.Errorf("priority = %d", rff.Priority())
	}
	if rff.Regs().PC != 0xDEAD || rff.Regs().GPR[2] != 3 {
		t.Errorf("registers = %+v", rff.Regs())
	}
	if !rff.BlockedSignals().Has(SIGUSR1) {
		t.Error("blocked mask lost")
	}
	if !rff.PendingSignals().Has(SIGUSR2) {
		t.Error("pending signal lost")
	}
	if rff.State() != StateRunning {
		t.Errorf("state = %v", rff.State())
	}
}

func TestRestoreMemoryExact(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 10)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(8*PageSize, PermRead|PermWrite)
	for i := uint64(0); i < 8; i++ {
		if err := p.Mem().Write(addr+i*PageSize+7, []byte{byte(0x10 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A read-only region and a hole must also be reproduced.
	roAddr, _ := p.Mem().Mmap(PageSize, PermRead)
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	rr := reviveAt(t, fs, ck, res.Image.Counter)
	rp, _ := rr.Container.Process(p.PID())
	for i := uint64(0); i < 8; i++ {
		got, err := rp.Mem().Read(addr+i*PageSize+7, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(0x10+i) {
			t.Errorf("page %d byte = %#x", i, got[0])
		}
	}
	r, _ := rp.Mem().regionAt(roAddr)
	if r == nil || r.Perms() != PermRead {
		t.Error("read-only region not reproduced")
	}
	if rr.PagesRestored != 8 {
		t.Errorf("PagesRestored = %d, want 8", rr.PagesRestored)
	}
}

func TestRestoreIncrementalChain(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 100)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(4*PageSize, PermRead|PermWrite)
	// Full checkpoint with pages A0 B0 C0 D0.
	for i := uint64(0); i < 4; i++ {
		if err := p.Mem().Write(addr+i*PageSize, []byte{byte('A' + i), '0'}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ck.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Incremental 2: page B -> B1.
	if err := p.Mem().Write(addr+PageSize, []byte{'B', '1'}); err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Incremental 3: page D -> D2.
	if err := p.Mem().Write(addr+3*PageSize, []byte{'D', '2'}); err != nil {
		t.Fatal(err)
	}
	r3, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Restore from checkpoint 3: expect A0 B1 C0 D2, read from 3 files.
	rr := reviveAt(t, fs, ck, r3.Image.Counter)
	rp, _ := rr.Container.Process(p.PID())
	want := []string{"A0", "B1", "C0", "D2"}
	for i := uint64(0); i < 4; i++ {
		got, err := rp.Mem().Read(addr+i*PageSize, 2)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want[i] {
			t.Errorf("page %d = %q, want %q", i, got, want[i])
		}
	}
	if rr.ImagesRead != 3 {
		t.Errorf("ImagesRead = %d, want 3 (chain to the full)", rr.ImagesRead)
	}
}

func TestRestoreFromEarlierCheckpoint(t *testing.T) {
	// Revive from any checkpoint, not just the latest (the contrast
	// with plain checkpoint/restart systems, §7).
	c, fs, ck, _ := newCkptSession(t, 100)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(PageSize, PermRead|PermWrite)
	if err := p.Mem().Write(addr, []byte("epoch-one")); err != nil {
		t.Fatal(err)
	}
	r1, _ := ck.Checkpoint()
	if err := p.Mem().Write(addr, []byte("epoch-two")); err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rr := reviveAt(t, fs, ck, r1.Image.Counter)
	rp, _ := rr.Container.Process(p.PID())
	got, _ := rp.Mem().Read(addr, 9)
	if string(got) != "epoch-one" {
		t.Errorf("restored = %q", got)
	}
}

func TestRestoreSocketPolicy(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 10)
	p, _ := c.Spawn(0, "apps")
	if _, err := c.Connect(p, ProtoTCP, "10.0.0.5:3000", "93.184.216.34:80"); err != nil {
		t.Fatal(err) // external TCP: must be reset
	}
	if _, err := c.Connect(p, ProtoTCP, "127.0.0.1:4000", "127.0.0.1:5432"); err != nil {
		t.Fatal(err) // localhost TCP: preserved
	}
	if _, err := c.Connect(p, ProtoUDP, "10.0.0.5:3001", "8.8.8.8:53"); err != nil {
		t.Fatal(err) // UDP: restored precisely
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	rr := reviveAt(t, fs, ck, res.Image.Counter)
	rp, _ := rr.Container.Process(p.PID())
	var ext, local, udp *Socket
	for _, s := range rp.Sockets() {
		switch {
		case s.Proto == ProtoUDP:
			udp = s
		case s.External():
			ext = s
		default:
			local = s
		}
	}
	if ext == nil || ext.State != SockReset {
		t.Errorf("external TCP = %+v, want reset", ext)
	}
	if local == nil || local.State != SockEstablished {
		t.Errorf("localhost TCP = %+v, want established", local)
	}
	if udp == nil || udp.State != SockEstablished {
		t.Errorf("UDP = %+v, want established", udp)
	}
	if rr.SocketsReset != 1 {
		t.Errorf("SocketsReset = %d, want 1", rr.SocketsReset)
	}
}

func TestRestoreNetworkDisabledByDefault(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 10)
	p, _ := c.Spawn(0, "firefox")
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	rr := reviveAt(t, fs, ck, res.Image.Counter)
	if rr.Container.NetworkEnabled() {
		t.Error("revived session should start with network disabled")
	}
	rp, _ := rr.Container.Process(p.PID())
	if _, err := rr.Container.Connect(rp, ProtoTCP, "10.0.0.5:1234", "93.184.216.34:80"); err == nil {
		t.Error("external connect should fail in revived session")
	}
	// Loopback still works; then the user re-enables the network.
	if _, err := rr.Container.Connect(rp, ProtoTCP, "127.0.0.1:1", "127.0.0.1:2"); err != nil {
		t.Errorf("loopback connect err = %v", err)
	}
	rr.Container.SetNetworkEnabled(true)
	if _, err := rr.Container.Connect(rp, ProtoTCP, "10.0.0.5:1235", "93.184.216.34:80"); err != nil {
		t.Errorf("connect after enable err = %v", err)
	}
}

func TestRestoreFilesAndFS(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 10)
	if err := fs.MkdirAll("/home"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/home/doc.txt", []byte("at checkpoint")); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Spawn(0, "editor")
	fd, _ := p.Open("/home/doc.txt")
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// The file changes and is even deleted after the checkpoint.
	if err := fs.WriteFile("/home/doc.txt", []byte("changed later")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/home/doc.txt"); err != nil {
		t.Fatal(err)
	}
	rr := reviveAt(t, fs, ck, res.Image.Counter)
	rp, _ := rr.Container.Process(p.PID())
	rf, err := rp.FileByFD(fd)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rf.Read(rr.Container.FS())
	if err != nil || string(data) != "at checkpoint" {
		t.Errorf("revived file read = %q, %v", data, err)
	}
	// The revived session's view is writable and isolated.
	if err := rr.Container.FS().WriteFile("/home/doc.txt", []byte("branch edit")); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/home/doc.txt") {
		t.Error("branch write leaked into the live FS")
	}
}

func TestRestoreUnlinkedFileThroughRelink(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 10)
	if err := fs.WriteFile("/tmp.spool", []byte("spooled")); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Spawn(0, "app")
	fd, _ := p.Open("/tmp.spool")
	if err := p.Unlink(fd); err != nil {
		t.Fatal(err)
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	rr := reviveAt(t, fs, ck, res.Image.Counter)
	rp, _ := rr.Container.Process(p.PID())
	rf, _ := rp.FileByFD(fd)
	if !rf.Unlinked {
		t.Error("file should be revived as unlinked")
	}
	data, err := rf.Read(rr.Container.FS())
	if err != nil || string(data) != "spooled" {
		t.Errorf("revived unlinked read = %q, %v", data, err)
	}
	// The relink name must be gone again in the revived namespace.
	relink := res.Image.Procs[0].Files[0].RelinkPath
	if relink == "" {
		t.Fatal("expected a relink path")
	}
	if rr.Container.FS().Exists(relink) {
		t.Error("relink name still visible in revived session")
	}
}

func TestMultipleConcurrentRevivals(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 10)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(PageSize, PermRead|PermWrite)
	if err := p.Mem().Write(addr, []byte("shared origin")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/data", []byte("base")); err != nil {
		t.Fatal(err)
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	rr1 := reviveAt(t, fs, ck, res.Image.Counter)
	rr2 := reviveAt(t, fs, ck, res.Image.Counter)

	// Diverge in memory and on disk.
	p1, _ := rr1.Container.Process(p.PID())
	p2, _ := rr2.Container.Process(p.PID())
	if err := p1.Mem().Write(addr, []byte("branch-1")); err != nil {
		t.Fatal(err)
	}
	if err := rr2.Container.FS().WriteFile("/data", []byte("branch-2")); err != nil {
		t.Fatal(err)
	}
	got2, _ := p2.Mem().Read(addr, 8)
	if string(got2) == "branch-1" {
		t.Error("memory leaked across revived sessions")
	}
	d1, _ := rr1.Container.FS().ReadFile("/data")
	if string(d1) != "base" {
		t.Errorf("branch 1 sees %q, want base", d1)
	}
}

func TestReviveCachedVsUncached(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 100)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(512*PageSize, PermRead|PermWrite)
	for i := uint64(0); i < 512; i++ {
		if err := p.Mem().Write(addr+i*PageSize, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Freshly written: cached revive.
	rrCached := reviveAt(t, fs, ck, res.Image.Counter)
	if !rrCached.Cached {
		t.Error("first revive should be cached (just written)")
	}
	ck.DropCaches()
	rrCold := reviveAt(t, fs, ck, res.Image.Counter)
	if rrCold.Cached {
		t.Error("post-drop revive should be uncached")
	}
	if rrCold.Latency <= rrCached.Latency {
		t.Errorf("uncached %v should exceed cached %v", rrCold.Latency, rrCached.Latency)
	}
	// And reading it warmed the cache again.
	rrWarm := reviveAt(t, fs, ck, res.Image.Counter)
	if !rrWarm.Cached {
		t.Error("revive after a cold read should be cached again")
	}
}

func TestReviveAdvancesClock(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 10)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(PageSize, PermRead|PermWrite)
	if err := p.Mem().Write(addr, []byte{1}); err != nil {
		t.Fatal(err)
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	before := c.Kernel().Clock().Now()
	rr := reviveAt(t, fs, ck, res.Image.Counter)
	after := c.Kernel().Clock().Now()
	if after-before != rr.Latency {
		t.Errorf("clock advanced %v, latency %v", after-before, rr.Latency)
	}
}

func TestForestOrder(t *testing.T) {
	procs := []ProcImage{
		{PID: 5, PPID: 3},
		{PID: 3, PPID: 1},
		{PID: 1, PPID: 0},
		{PID: 4, PPID: 1},
	}
	out := forestOrder(procs)
	pos := map[PID]int{}
	for i, pi := range out {
		pos[pi.PID] = i
	}
	if pos[1] > pos[3] || pos[3] > pos[5] || pos[1] > pos[4] {
		t.Errorf("forest order wrong: %v", out)
	}
}

func TestImageValidateCatchesCorruption(t *testing.T) {
	img := &Image{
		Counter: 1,
		Procs:   []ProcImage{{PID: 2, PPID: 7}},
	}
	if err := img.Validate(); err == nil {
		t.Error("unknown parent not caught")
	}
	img2 := &Image{
		Counter: 1,
		Procs:   []ProcImage{{PID: 2}, {PID: 2}},
	}
	if err := img2.Validate(); err == nil {
		t.Error("duplicate pid not caught")
	}
	img3 := &Image{
		Counter: 1,
		Procs:   []ProcImage{{PID: 2}},
		pages:   []imagePage{{pid: 2, addr: 123}},
	}
	if err := img3.Validate(); err == nil {
		t.Error("unaligned page not caught")
	}
}

var _ = simclock.Second // keep import when assertions change
