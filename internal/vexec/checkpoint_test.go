package vexec

import (
	"bytes"
	"errors"
	"testing"

	"dejaview/internal/lfs"
	"dejaview/internal/simclock"
	"dejaview/internal/unionfs"
)

// newCkptSession builds a session with a checkpointer over it.
func newCkptSession(t *testing.T, fullEvery int) (*Container, *lfs.FS, *Checkpointer, *simclock.Clock) {
	t.Helper()
	clk := simclock.New()
	k := NewKernel(clk)
	fs := lfs.New()
	c := k.NewContainer(fs)
	c.SetNetworkEnabled(true)
	ck := NewCheckpointer(c, fs, fs, DefaultCostModel(), fullEvery)
	return c, fs, ck, clk
}

func TestCheckpointBasic(t *testing.T) {
	c, _, ck, _ := newCkptSession(t, 10)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(4*PageSize, PermRead|PermWrite)
	if err := p.Mem().Write(addr, []byte("state one")); err != nil {
		t.Fatal(err)
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	img := res.Image
	if img.Counter != 1 || !img.Full {
		t.Errorf("first image: counter=%d full=%v", img.Counter, img.Full)
	}
	if img.Pages() != 1 {
		t.Errorf("pages = %d, want 1 (only one live page)", img.Pages())
	}
	if len(img.Procs) != 1 || img.Procs[0].Name != "app" {
		t.Errorf("procs = %+v", img.Procs)
	}
	if err := img.Validate(); err != nil {
		t.Error(err)
	}
	// Processes resumed.
	if p.State() != StateRunning {
		t.Errorf("state after checkpoint = %v", p.State())
	}
}

func TestCheckpointDowntimeBreakdown(t *testing.T) {
	c, _, ck, _ := newCkptSession(t, 10)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(64*PageSize, PermRead|PermWrite)
	for i := uint64(0); i < 64; i++ {
		if err := p.Mem().Write(addr+i*PageSize, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Downtime() != res.Quiesce+res.Capture+res.FSSnapshot {
		t.Error("downtime decomposition wrong")
	}
	if res.Downtime() >= 10*simclock.Millisecond {
		t.Errorf("downtime = %v, want < 10ms for a small app (paper's bound)", res.Downtime())
	}
	if res.Writeback == 0 {
		t.Error("writeback should cost time")
	}
	if res.Total() <= res.Downtime() {
		t.Error("total should include overlapped phases")
	}
}

func TestIncrementalCheckpointsShrink(t *testing.T) {
	c, _, ck, _ := newCkptSession(t, 100)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(128*PageSize, PermRead|PermWrite)
	for i := uint64(0); i < 128; i++ {
		if err := p.Mem().Write(addr+i*PageSize, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	full, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if full.Image.Pages() != 128 {
		t.Fatalf("full pages = %d", full.Image.Pages())
	}
	// Touch 3 pages.
	for i := uint64(0); i < 3; i++ {
		if err := p.Mem().Write(addr+i*PageSize, []byte{2}); err != nil {
			t.Fatal(err)
		}
	}
	inc, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if inc.Image.Full {
		t.Error("second checkpoint should be incremental")
	}
	if inc.Image.Pages() != 3 {
		t.Errorf("incremental pages = %d, want 3", inc.Image.Pages())
	}
	if inc.Image.TotalBytes() >= full.Image.TotalBytes() {
		t.Error("incremental should be smaller than full")
	}
	// Idle checkpoint: nothing dirty.
	idle, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if idle.Image.Pages() != 0 {
		t.Errorf("idle checkpoint captured %d pages", idle.Image.Pages())
	}
}

func TestPeriodicFullCheckpoints(t *testing.T) {
	c, _, ck, _ := newCkptSession(t, 4)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(PageSize, PermRead|PermWrite)
	for i := 0; i < 9; i++ {
		if err := p.Mem().Write(addr, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := ck.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	st := ck.Stats()
	// fullEvery=4: checkpoints 1, 5, 9 are full.
	if st.FullCheckpoints != 3 {
		t.Errorf("FullCheckpoints = %d, want 3", st.FullCheckpoints)
	}
	if st.Checkpoints != 9 {
		t.Errorf("Checkpoints = %d", st.Checkpoints)
	}
}

func TestCheckpointCOWConsistency(t *testing.T) {
	// State captured at checkpoint time must be immune to writes that
	// happen right after resume (deferred writeback correctness).
	c, fs, ck, _ := newCkptSession(t, 10)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(PageSize, PermRead|PermWrite)
	if err := p.Mem().Write(addr, []byte("before")); err != nil {
		t.Fatal(err)
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Session resumes and immediately overwrites.
	if err := p.Mem().Write(addr, []byte("after!")); err != nil {
		t.Fatal(err)
	}
	// Restore from the checkpoint and inspect memory.
	view, err := fs.At(res.Image.FSEpoch)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ck.Restore(res.Image.Counter, unionfs.New(view))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := rr.Container.Process(p.PID())
	if err != nil {
		t.Fatal(err)
	}
	got, err := rp.Mem().Read(addr, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "before" {
		t.Errorf("restored memory = %q, want pre-resume state", got)
	}
}

func TestCheckpointFSCounterAssociation(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 10)
	if _, err := c.Spawn(0, "app"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/doc", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	r1, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/doc", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The FS state bound to checkpoint 1 must be v1.
	epoch, err := fs.EpochForCheckpoint(r1.Image.Counter)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != r1.Image.FSEpoch {
		t.Errorf("epoch mismatch: %d vs %d", epoch, r1.Image.FSEpoch)
	}
	v, _ := fs.At(epoch)
	data, _ := v.ReadFile("/doc")
	if string(data) != "v1" {
		t.Errorf("checkpoint-1 FS sees %q", data)
	}
}

func TestPreSnapshotReducesStopWork(t *testing.T) {
	// Dirty FS data flushed in the pre-snapshot must not count against
	// the stop-window FS snapshot.
	c, fs, ck, _ := newCkptSession(t, 10)
	if _, err := c.Spawn(0, "app"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/big", make([]byte, 256*1024)); err != nil {
		t.Fatal(err)
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.PreSnapshot == 0 {
		t.Error("pre-snapshot should have flushed the dirty data")
	}
	if res.FSSnapshot > ck.costs.FSSnapshotBase {
		t.Errorf("stop-window snapshot = %v, want only the base cost (%v)",
			res.FSSnapshot, ck.costs.FSSnapshotBase)
	}
}

func TestPreQuiesceWaitsForUninterruptible(t *testing.T) {
	c, _, ck, clk := newCkptSession(t, 10)
	p, _ := c.Spawn(0, "dd")
	p.EnterUninterruptible(clk.Now() + 30*simclock.Millisecond)
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.PreQuiesce < 30*simclock.Millisecond {
		t.Errorf("PreQuiesce = %v, want >= 30ms", res.PreQuiesce)
	}
	// After the wait, the process must have been stopped and resumed.
	if p.State() != StateRunning {
		t.Errorf("state = %v", p.State())
	}
}

func TestPreQuiesceCapped(t *testing.T) {
	c, _, ck, clk := newCkptSession(t, 10)
	p, _ := c.Spawn(0, "dd")
	p.EnterUninterruptible(clk.Now() + 10*simclock.Second) // way beyond cap
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.PreQuiesce != ck.costs.PreQuiesceMax {
		t.Errorf("PreQuiesce = %v, want cap %v", res.PreQuiesce, ck.costs.PreQuiesceMax)
	}
}

func TestUnlinkedFileRelinkedIntoSnapshot(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 10)
	if err := fs.WriteFile("/tmp.work", []byte("in flight")); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Spawn(0, "app")
	fd, _ := p.Open("/tmp.work")
	if err := p.Unlink(fd); err != nil {
		t.Fatal(err)
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Stats().Relinks != 1 {
		t.Errorf("Relinks = %d, want 1", ck.Stats().Relinks)
	}
	// The snapshot must contain the relinked contents.
	view, err := fs.At(res.Image.FSEpoch)
	if err != nil {
		t.Fatal(err)
	}
	fi := res.Image.Procs[0].Files[0]
	if fi.RelinkPath == "" {
		t.Fatal("no relink path recorded")
	}
	data, err := view.ReadFile(fi.RelinkPath)
	if err != nil || string(data) != "in flight" {
		t.Errorf("snapshot relink read = %q, %v", data, err)
	}
	if len(fi.SavedData) != 0 {
		t.Error("relinked file should not be saved into the image")
	}
}

func TestUnlinkedFileFallbackWithoutRelinker(t *testing.T) {
	clk := simclock.New()
	k := NewKernel(clk)
	fs := lfs.New()
	c := k.NewContainer(fs)
	ck := NewCheckpointer(c, fs, nil, DefaultCostModel(), 10) // no relinker
	if err := fs.WriteFile("/tmp.work", []byte("fallback data")); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Spawn(0, "app")
	fd, _ := p.Open("/tmp.work")
	if err := p.Unlink(fd); err != nil {
		t.Fatal(err)
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	fi := res.Image.Procs[0].Files[0]
	if fi.RelinkPath != "" {
		t.Error("relink path without a relinker")
	}
	if string(fi.SavedData) != "fallback data" {
		t.Errorf("SavedData = %q", fi.SavedData)
	}
}

func TestCheckpointCompressedSmallerForText(t *testing.T) {
	c, _, ck, _ := newCkptSession(t, 10)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(64*PageSize, PermRead|PermWrite)
	text := bytes.Repeat([]byte("the quick brown fox "), PageSize/20+1)
	for i := uint64(0); i < 64; i++ {
		if err := p.Mem().Write(addr+i*PageSize, text[:PageSize]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Image.CompressedBytes >= res.Image.MemBytes/2 {
		t.Errorf("compressed %d vs raw %d: text should compress well",
			res.Image.CompressedBytes, res.Image.MemBytes)
	}
}

func TestNaiveCheckpointMuchSlower(t *testing.T) {
	// The ablation: the unoptimized stop-and-copy path's downtime must
	// dwarf the optimized one on identical state.
	mk := func() (*Container, *Checkpointer) {
		clk := simclock.New()
		k := NewKernel(clk)
		fs := lfs.New()
		c := k.NewContainer(fs)
		ck := NewCheckpointer(c, fs, fs, DefaultCostModel(), 100)
		p, _ := c.Spawn(0, "app")
		addr, _ := p.Mem().Mmap(1024*PageSize, PermRead|PermWrite)
		for i := uint64(0); i < 1024; i++ {
			_ = p.Mem().Write(addr+i*PageSize, []byte{byte(i)})
		}
		return c, ck
	}
	_, ckOpt := mk()
	opt, err := ckOpt.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	_, ckNaive := mk()
	naive, err := ckNaive.CheckpointNaive()
	if err != nil {
		t.Fatal(err)
	}
	if naive.Downtime() < 10*opt.Downtime() {
		t.Errorf("naive downtime %v vs optimized %v: want >= 10x gap",
			naive.Downtime(), opt.Downtime())
	}
}

func TestLatestBefore(t *testing.T) {
	c, _, ck, clk := newCkptSession(t, 10)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(PageSize, PermRead|PermWrite)
	var times []simclock.Time
	for i := 0; i < 3; i++ {
		clk.Advance(simclock.Second)
		if err := p.Mem().Write(addr, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		r, err := ck.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, r.Image.Time)
	}
	img, err := ck.LatestBefore(times[1] + simclock.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if img.Counter != 2 {
		t.Errorf("LatestBefore chose %d, want 2", img.Counter)
	}
	if _, err := ck.LatestBefore(0); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("too-early err = %v", err)
	}
	if _, err := ck.Image(99); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("missing image err = %v", err)
	}
}

func TestBufferEstimateTracksSizes(t *testing.T) {
	c, _, ck, _ := newCkptSession(t, 100)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(256*PageSize, PermRead|PermWrite)
	for i := 0; i < 5; i++ {
		for j := uint64(0); j < 32; j++ {
			_ = p.Mem().Write(addr+j*PageSize, []byte{byte(i)})
		}
		if _, err := ck.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	st := ck.Stats()
	if st.BufferPrealloc == 0 {
		t.Error("buffer estimate never set")
	}
}
