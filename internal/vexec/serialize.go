package vexec

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"dejaview/internal/binio"
	"dejaview/internal/compress"
	"dejaview/internal/failpoint"
	"dejaview/internal/lfs"
	"dejaview/internal/simclock"
)

// Checkpoint-image serialization: the paper's revive reads "checkpoint
// image files" from disk; archiving a session therefore persists the
// whole image chain — process metadata plus captured pages, with pages
// deduplicated across incremental images (a page unchanged over many
// checkpoints is stored once, exactly as the COW chain holds it in
// memory).
//
// Since storage format v2 the stream is wrapped in a parallel block
// compressor (internal/compress): memory pages dominate the image chain
// and compress extremely well, mirroring the paper's gzip'd checkpoint
// files. LoadImages sniffs the stream and still reads v1 uncompressed
// chains.
//
// The DEJVIMG2 layout splits metadata from payload: counters, page
// generations, and every image's process metadata and page references
// come first, and the raw page bytes sit in one contiguous section at
// the tail (page i at rawSize - (nPages-i)*PageSize). A lazy open reads
// only the metadata prefix and demand-loads pages through the frame's
// block table (LoadImagesLazy); a sequential reader still consumes the
// whole stream (LoadImages handles both layouts).

const (
	imgMagic  = 0x31474D49564A4544 // "DEJVIMG1" (legacy: pages inline)
	imgMagic2 = 0x32474D49564A4544 // "DEJVIMG2" (metadata first, page payload at the tail)
)

// ErrCorruptImages reports a structurally invalid image stream.
var ErrCorruptImages = errors.New("vexec: corrupt checkpoint images")

// SaveImages serializes every checkpoint image (and the checkpointer's
// counters) to w with the default compression options.
func (ck *Checkpointer) SaveImages(w io.Writer) error {
	return ck.SaveImagesOptions(w, compress.Options{})
}

// SaveImagesOptions is SaveImages with explicit compression options —
// the tier compactor forces the strongest codec when rewriting cold
// archives. The block table is always appended so the saved stream
// supports lazy opens.
func (ck *Checkpointer) SaveImagesOptions(w io.Writer, o compress.Options) error {
	if err := failpoint.Inject("vexec/images.save"); err != nil {
		return fmt.Errorf("vexec: save images: %w", err)
	}
	w = failpoint.Writer("vexec/images.write", w)
	ck.mu.Lock()
	defer ck.mu.Unlock()
	o.BlockTable = true
	zw, err := compress.NewWriter(w, o)
	if err != nil {
		return err
	}
	bw := binio.NewWriter(zw)
	bw.U64(imgMagic2)
	bw.U64(ck.counter)
	bw.U64(ck.lastGen)

	// Page pool, deduplicated by identity. Only generations live here;
	// the page bytes form the payload section at the stream's tail.
	pageID := make(map[*page]uint32)
	var pages []*page
	for _, c := range ck.order {
		for _, ip := range ck.images[c].pages {
			if _, ok := pageID[ip.pg]; !ok {
				pageID[ip.pg] = uint32(len(pages))
				pages = append(pages, ip.pg)
			}
		}
	}
	if err := ck.materializeLocked(pages); err != nil {
		//lint:ignore dropped-error error path: the materialize error is the root cause; the success path returns zw.Close()
		zw.Close()
		return fmt.Errorf("vexec: save images: %w", err)
	}
	bw.U32(uint32(len(pages)))
	for _, p := range pages {
		bw.U64(p.gen)
	}

	bw.U32(uint32(len(ck.order)))
	for _, c := range ck.order {
		img := ck.images[c]
		bw.U64(img.Counter)
		bw.U64(uint64(img.Time))
		bw.Bool(img.Full)
		if img.Parent != nil {
			bw.U64(img.Parent.Counter)
		} else {
			bw.U64(0)
		}
		bw.U64(uint64(img.FSEpoch))
		bw.U64(uint64(img.MemBytes))
		bw.U64(uint64(img.MetaBytes))
		bw.U64(uint64(img.CompressedBytes))
		bw.Bool(img.cached)

		bw.U32(uint32(len(img.Procs)))
		for i := range img.Procs {
			writeProcImage(bw, &img.Procs[i])
		}
		bw.U32(uint32(len(img.pages)))
		for _, ip := range img.pages {
			bw.U64(uint64(ip.pid))
			bw.U64(ip.addr)
			bw.U32(pageID[ip.pg])
		}
	}
	// Payload section: raw page bytes in pool order.
	for _, p := range pages {
		bw.Bytes(p.data)
	}
	if err := bw.Flush(); err != nil {
		//lint:ignore dropped-error error path: the flush error is the root cause; the success path returns zw.Close()
		zw.Close()
		return err
	}
	return zw.Close()
}

func writeProcImage(bw *binio.Writer, pi *ProcImage) {
	bw.U64(uint64(pi.PID))
	bw.U64(uint64(pi.PPID))
	bw.String(pi.Name)
	bw.U8(uint8(pi.State))
	bw.U32(uint32(pi.Threads))
	bw.U64(uint64(pi.Tracer))
	bw.U64(pi.Regs.PC)
	bw.U64(pi.Regs.SP)
	for _, g := range pi.Regs.GPR {
		bw.U64(g)
	}
	bw.U32(pi.Regs.FPCR)
	bw.U32(uint32(pi.Creds.UID))
	bw.U32(uint32(pi.Creds.GID))
	bw.U32(uint32(int32(pi.Priority)))
	bw.U64(uint64(pi.Pending))
	bw.U64(uint64(pi.Blocked))
	bw.U32(uint32(len(pi.Files)))
	for _, f := range pi.Files {
		bw.U32(uint32(f.FD))
		bw.String(f.Path)
		bw.U64(uint64(f.Offset))
		bw.Bool(f.Unlinked)
		bw.String(f.RelinkPath)
		bw.Blob(f.SavedData)
	}
	bw.U32(uint32(len(pi.Sockets)))
	for _, s := range pi.Sockets {
		bw.U32(uint32(s.FD))
		bw.U8(uint8(s.Proto))
		bw.String(s.LocalAddr)
		bw.String(s.RemoteAddr)
		bw.U8(uint8(s.State))
	}
	bw.U32(uint32(len(pi.Regions)))
	for _, r := range pi.Regions {
		bw.U64(r.Start)
		bw.U64(r.Length)
		bw.U8(uint8(r.Perms))
	}
}

// imageMeta is the decoded metadata section shared by the eager and
// lazy loaders: everything but the page payload.
type imageMeta struct {
	counter uint64
	lastGen uint64
	pages   []*page // data filled by the caller (inline read or lazy fetch)
	images  map[uint64]*Image
	order   []uint64
}

// readImageMeta decodes counters, page generations, and image entries
// (with page references resolved against the pool), re-links parents,
// and validates every image. Page data is NOT read.
func readImageMeta(br *binio.Reader) (*imageMeta, error) {
	m := &imageMeta{}
	m.counter = br.U64()
	m.lastGen = br.U64()

	nPages := br.U32()
	if br.Err() == nil && nPages > 1<<26 {
		return nil, fmt.Errorf("%w: %d pages", ErrCorruptImages, nPages)
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	m.pages = make([]*page, nPages)
	for i := range m.pages {
		m.pages[i] = &page{gen: br.U64()}
	}

	nImages := br.U32()
	if br.Err() == nil && nImages > 1<<24 {
		return nil, fmt.Errorf("%w: %d images", ErrCorruptImages, nImages)
	}
	m.images = make(map[uint64]*Image, nImages)
	parents := make(map[uint64]uint64)
	for i := uint32(0); i < nImages && br.Err() == nil; i++ {
		img := &Image{}
		img.Counter = br.U64()
		img.Time = simclock.Time(br.U64())
		img.Full = br.Bool()
		parent := br.U64()
		img.FSEpoch = lfs.Epoch(br.U64())
		img.MemBytes = int64(br.U64())
		img.MetaBytes = int64(br.U64())
		img.CompressedBytes = int64(br.U64())
		img.cached = br.Bool()

		nProcs := br.U32()
		for p := uint32(0); p < nProcs && br.Err() == nil; p++ {
			img.Procs = append(img.Procs, readProcImage(br))
		}
		nImgPages := br.U32()
		for p := uint32(0); p < nImgPages && br.Err() == nil; p++ {
			pid := PID(br.U64())
			addr := br.U64()
			ref := br.U32()
			if int(ref) >= len(m.pages) {
				return nil, fmt.Errorf("%w: page ref %d of %d", ErrCorruptImages, ref, len(m.pages))
			}
			img.pages = append(img.pages, imagePage{pid: pid, addr: addr, pg: m.pages[ref]})
		}
		m.images[img.Counter] = img
		m.order = append(m.order, img.Counter)
		if parent != 0 {
			parents[img.Counter] = parent
		}
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("vexec: load images: %w", err)
	}
	// Re-link parent pointers and validate.
	for c, pc := range parents {
		p, ok := m.images[pc]
		if !ok {
			return nil, fmt.Errorf("%w: image %d references missing parent %d", ErrCorruptImages, c, pc)
		}
		m.images[c].Parent = p
	}
	sort.Slice(m.order, func(i, j int) bool { return m.order[i] < m.order[j] })
	for _, c := range m.order {
		if err := m.images[c].Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptImages, err)
		}
	}
	return m, nil
}

// install replaces the checkpointer's chain with the loaded one.
func (ck *Checkpointer) installLocked(m *imageMeta) {
	ck.counter = m.counter
	ck.lastGen = m.lastGen
	ck.images = m.images
	ck.order = m.order
	ck.last = nil
	if len(m.order) > 0 {
		ck.last = m.images[m.order[len(m.order)-1]]
	}
}

// LoadImages restores a checkpoint image chain saved with SaveImages
// into this checkpointer (which must be freshly created: existing images
// are replaced). It reads both the DEJVIMG2 metadata-first layout and
// the legacy DEJVIMG1 inline layout, eagerly in either case.
func (ck *Checkpointer) LoadImages(r io.Reader) error {
	if err := failpoint.Inject("vexec/images.load"); err != nil {
		return fmt.Errorf("vexec: load images: %w", err)
	}
	r = failpoint.Reader("vexec/images.read", r)
	ck.mu.Lock()
	defer ck.mu.Unlock()
	zr, err := compress.MaybeReader(r)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptImages, err)
	}
	//lint:ignore dropped-error read path; decode errors surface through the stream reads, not Close
	defer zr.Close()
	br := binio.NewReader(zr)
	magic := br.U64()
	if err := br.Err(); err != nil {
		return err
	}
	switch magic {
	case imgMagic:
		return ck.loadImagesV1(br)
	case imgMagic2:
		m, err := readImageMeta(br)
		if err != nil {
			return err
		}
		// Payload section: page bytes in pool order.
		for _, p := range m.pages {
			p.data = br.Bytes(PageSize)
			if br.Err() != nil {
				return fmt.Errorf("%w: page payload: %v", ErrCorruptImages, br.Err())
			}
		}
		if err := probeEOF(br); err != nil {
			return err
		}
		ck.installLocked(m)
		return nil
	default:
		return fmt.Errorf("%w: bad magic", ErrCorruptImages)
	}
}

// LoadImagesLazy loads only the metadata section of a DEJVIMG2 stream
// from r (the decompressed sequential prefix) and registers fetch as
// the demand-load source for page bytes: rawSize is the stream's total
// uncompressed length, and page i's bytes live at raw offset
// rawSize - (nPages-i)*PageSize. Pages are materialized on first use
// (restore consults only the target's incremental chain; a full re-save
// touches everything).
func (ck *Checkpointer) LoadImagesLazy(r io.Reader, rawSize int64, fetch func(off int64, dst []byte) error) error {
	if err := failpoint.Inject("vexec/images.load"); err != nil {
		return fmt.Errorf("vexec: load images: %w", err)
	}
	r = failpoint.Reader("vexec/images.read", r)
	ck.mu.Lock()
	defer ck.mu.Unlock()
	br := binio.NewReader(r)
	if magic := br.U64(); br.Err() != nil || magic != imgMagic2 {
		if err := br.Err(); err != nil {
			return err
		}
		return fmt.Errorf("%w: not a lazy-loadable image stream", ErrCorruptImages)
	}
	m, err := readImageMeta(br)
	if err != nil {
		return err
	}
	if int64(len(m.pages))*PageSize > rawSize {
		return fmt.Errorf("%w: %d pages exceed the %d-byte stream", ErrCorruptImages, len(m.pages), rawSize)
	}
	payloadBase := rawSize - int64(len(m.pages))*PageSize
	ck.installLocked(m)
	ck.lazyIdx = make(map[*page]int, len(m.pages))
	for i, p := range m.pages {
		ck.lazyIdx[p] = i
	}
	ck.pageFetch = fetch
	ck.payloadBase = payloadBase
	return nil
}

// materializeLocked fetches the data of any still-lazy page in pgs from
// the checkpointer's page source. Pages loaded eagerly (or created
// live) pass through untouched.
func (ck *Checkpointer) materializeLocked(pgs []*page) error {
	for _, p := range pgs {
		if p.data != nil {
			continue
		}
		idx, ok := ck.lazyIdx[p]
		if !ok {
			return fmt.Errorf("%w: page has neither data nor a lazy source", ErrCorruptImages)
		}
		buf := make([]byte, PageSize)
		if err := ck.pageFetch(ck.payloadBase+int64(idx)*PageSize, buf); err != nil {
			return fmt.Errorf("vexec: lazy page %d: %w", idx, err)
		}
		p.data = buf
		delete(ck.lazyIdx, p)
	}
	return nil
}

// loadImagesV1 reads the legacy inline layout (magic already consumed).
func (ck *Checkpointer) loadImagesV1(br *binio.Reader) error {
	counter := br.U64()
	lastGen := br.U64()

	nPages := br.U32()
	if br.Err() == nil && nPages > 1<<26 {
		return fmt.Errorf("%w: %d pages", ErrCorruptImages, nPages)
	}
	pages := make([]*page, nPages)
	for i := range pages {
		gen := br.U64()
		data := br.Bytes(PageSize)
		if br.Err() != nil {
			return br.Err()
		}
		pages[i] = &page{data: data, gen: gen}
	}

	nImages := br.U32()
	if br.Err() == nil && nImages > 1<<24 {
		return fmt.Errorf("%w: %d images", ErrCorruptImages, nImages)
	}
	images := make(map[uint64]*Image, nImages)
	var order []uint64
	parents := make(map[uint64]uint64)
	for i := uint32(0); i < nImages && br.Err() == nil; i++ {
		img := &Image{}
		img.Counter = br.U64()
		img.Time = simclock.Time(br.U64())
		img.Full = br.Bool()
		parent := br.U64()
		img.FSEpoch = lfs.Epoch(br.U64())
		img.MemBytes = int64(br.U64())
		img.MetaBytes = int64(br.U64())
		img.CompressedBytes = int64(br.U64())
		img.cached = br.Bool()

		nProcs := br.U32()
		for p := uint32(0); p < nProcs && br.Err() == nil; p++ {
			img.Procs = append(img.Procs, readProcImage(br))
		}
		nImgPages := br.U32()
		for p := uint32(0); p < nImgPages && br.Err() == nil; p++ {
			pid := PID(br.U64())
			addr := br.U64()
			ref := br.U32()
			if int(ref) >= len(pages) {
				return fmt.Errorf("%w: page ref %d of %d", ErrCorruptImages, ref, len(pages))
			}
			img.pages = append(img.pages, imagePage{pid: pid, addr: addr, pg: pages[ref]})
		}
		images[img.Counter] = img
		order = append(order, img.Counter)
		if parent != 0 {
			parents[img.Counter] = parent
		}
	}
	if err := br.Err(); err != nil {
		return fmt.Errorf("vexec: load images: %w", err)
	}
	if err := probeEOF(br); err != nil {
		return err
	}
	// Re-link parent pointers and validate.
	for c, pc := range parents {
		p, ok := images[pc]
		if !ok {
			return fmt.Errorf("%w: image %d references missing parent %d", ErrCorruptImages, c, pc)
		}
		images[c].Parent = p
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, c := range order {
		if err := images[c].Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrCorruptImages, err)
		}
	}
	ck.counter = counter
	ck.lastGen = lastGen
	ck.images = images
	ck.order = order
	if len(order) > 0 {
		ck.last = images[order[len(order)-1]]
	}
	return nil
}

// probeEOF requires the stream to end exactly here. With the compressed
// container a truncated file can still decode a complete logical prefix
// (the frame terminator is what vouches for completeness), so probe one
// byte past the end and require a clean EOF.
func probeEOF(br *binio.Reader) error {
	if b := br.Bytes(1); b != nil {
		return fmt.Errorf("%w: trailing data after image stream", ErrCorruptImages)
	}
	if err := br.Err(); !errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: unterminated stream: %v", ErrCorruptImages, err)
	}
	return nil
}

func readProcImage(br *binio.Reader) ProcImage {
	pi := ProcImage{}
	pi.PID = PID(br.U64())
	pi.PPID = PID(br.U64())
	pi.Name = br.String()
	pi.State = ProcState(br.U8())
	pi.Threads = int(br.U32())
	pi.Tracer = PID(br.U64())
	pi.Regs.PC = br.U64()
	pi.Regs.SP = br.U64()
	for i := range pi.Regs.GPR {
		pi.Regs.GPR[i] = br.U64()
	}
	pi.Regs.FPCR = br.U32()
	pi.Creds.UID = int(br.U32())
	pi.Creds.GID = int(br.U32())
	pi.Priority = int(int32(br.U32()))
	pi.Pending = SignalSet(br.U64())
	pi.Blocked = SignalSet(br.U64())
	nFiles := br.U32()
	for i := uint32(0); i < nFiles && br.Err() == nil; i++ {
		f := FileImage{}
		f.FD = int(br.U32())
		f.Path = br.String()
		f.Offset = int64(br.U64())
		f.Unlinked = br.Bool()
		f.RelinkPath = br.String()
		f.SavedData = br.Blob()
		pi.Files = append(pi.Files, f)
	}
	nSockets := br.U32()
	for i := uint32(0); i < nSockets && br.Err() == nil; i++ {
		s := SocketImage{}
		s.FD = int(br.U32())
		s.Proto = SockProto(br.U8())
		s.LocalAddr = br.String()
		s.RemoteAddr = br.String()
		s.State = SockState(br.U8())
		pi.Sockets = append(pi.Sockets, s)
	}
	nRegions := br.U32()
	for i := uint32(0); i < nRegions && br.Err() == nil; i++ {
		r := RegionImage{}
		r.Start = br.U64()
		r.Length = br.U64()
		r.Perms = Perm(br.U8())
		pi.Regions = append(pi.Regions, r)
	}
	return pi
}
