package vexec

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"dejaview/internal/binio"
	"dejaview/internal/compress"
	"dejaview/internal/failpoint"
	"dejaview/internal/lfs"
	"dejaview/internal/simclock"
)

// Checkpoint-image serialization: the paper's revive reads "checkpoint
// image files" from disk; archiving a session therefore persists the
// whole image chain — process metadata plus captured pages, with pages
// deduplicated across incremental images (a page unchanged over many
// checkpoints is stored once, exactly as the COW chain holds it in
// memory).
//
// Since storage format v2 the stream is wrapped in a parallel block
// compressor (internal/compress): memory pages dominate the image chain
// and compress extremely well, mirroring the paper's gzip'd checkpoint
// files. LoadImages sniffs the stream and still reads v1 uncompressed
// chains.

const imgMagic = 0x31474D49564A4544 // "DEJVIMG1"

// ErrCorruptImages reports a structurally invalid image stream.
var ErrCorruptImages = errors.New("vexec: corrupt checkpoint images")

// SaveImages serializes every checkpoint image (and the checkpointer's
// counters) to w.
func (ck *Checkpointer) SaveImages(w io.Writer) error {
	if err := failpoint.Inject("vexec/images.save"); err != nil {
		return fmt.Errorf("vexec: save images: %w", err)
	}
	w = failpoint.Writer("vexec/images.write", w)
	ck.mu.Lock()
	defer ck.mu.Unlock()
	zw, err := compress.NewWriter(w, compress.Options{})
	if err != nil {
		return err
	}
	bw := binio.NewWriter(zw)
	bw.U64(imgMagic)
	bw.U64(ck.counter)
	bw.U64(ck.lastGen)

	// Page pool, deduplicated by identity.
	pageID := make(map[*page]uint32)
	var pages []*page
	for _, c := range ck.order {
		for _, ip := range ck.images[c].pages {
			if _, ok := pageID[ip.pg]; !ok {
				pageID[ip.pg] = uint32(len(pages))
				pages = append(pages, ip.pg)
			}
		}
	}
	bw.U32(uint32(len(pages)))
	for _, p := range pages {
		bw.U64(p.gen)
		bw.Bytes(p.data)
	}

	bw.U32(uint32(len(ck.order)))
	for _, c := range ck.order {
		img := ck.images[c]
		bw.U64(img.Counter)
		bw.U64(uint64(img.Time))
		bw.Bool(img.Full)
		if img.Parent != nil {
			bw.U64(img.Parent.Counter)
		} else {
			bw.U64(0)
		}
		bw.U64(uint64(img.FSEpoch))
		bw.U64(uint64(img.MemBytes))
		bw.U64(uint64(img.MetaBytes))
		bw.U64(uint64(img.CompressedBytes))
		bw.Bool(img.cached)

		bw.U32(uint32(len(img.Procs)))
		for i := range img.Procs {
			writeProcImage(bw, &img.Procs[i])
		}
		bw.U32(uint32(len(img.pages)))
		for _, ip := range img.pages {
			bw.U64(uint64(ip.pid))
			bw.U64(ip.addr)
			bw.U32(pageID[ip.pg])
		}
	}
	if err := bw.Flush(); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

func writeProcImage(bw *binio.Writer, pi *ProcImage) {
	bw.U64(uint64(pi.PID))
	bw.U64(uint64(pi.PPID))
	bw.String(pi.Name)
	bw.U8(uint8(pi.State))
	bw.U32(uint32(pi.Threads))
	bw.U64(uint64(pi.Tracer))
	bw.U64(pi.Regs.PC)
	bw.U64(pi.Regs.SP)
	for _, g := range pi.Regs.GPR {
		bw.U64(g)
	}
	bw.U32(pi.Regs.FPCR)
	bw.U32(uint32(pi.Creds.UID))
	bw.U32(uint32(pi.Creds.GID))
	bw.U32(uint32(int32(pi.Priority)))
	bw.U64(uint64(pi.Pending))
	bw.U64(uint64(pi.Blocked))
	bw.U32(uint32(len(pi.Files)))
	for _, f := range pi.Files {
		bw.U32(uint32(f.FD))
		bw.String(f.Path)
		bw.U64(uint64(f.Offset))
		bw.Bool(f.Unlinked)
		bw.String(f.RelinkPath)
		bw.Blob(f.SavedData)
	}
	bw.U32(uint32(len(pi.Sockets)))
	for _, s := range pi.Sockets {
		bw.U32(uint32(s.FD))
		bw.U8(uint8(s.Proto))
		bw.String(s.LocalAddr)
		bw.String(s.RemoteAddr)
		bw.U8(uint8(s.State))
	}
	bw.U32(uint32(len(pi.Regions)))
	for _, r := range pi.Regions {
		bw.U64(r.Start)
		bw.U64(r.Length)
		bw.U8(uint8(r.Perms))
	}
}

// LoadImages restores a checkpoint image chain saved with SaveImages
// into this checkpointer (which must be freshly created: existing images
// are replaced).
func (ck *Checkpointer) LoadImages(r io.Reader) error {
	if err := failpoint.Inject("vexec/images.load"); err != nil {
		return fmt.Errorf("vexec: load images: %w", err)
	}
	r = failpoint.Reader("vexec/images.read", r)
	ck.mu.Lock()
	defer ck.mu.Unlock()
	zr, err := compress.MaybeReader(r)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptImages, err)
	}
	defer zr.Close()
	br := binio.NewReader(zr)
	if magic := br.U64(); br.Err() != nil || magic != imgMagic {
		if err := br.Err(); err != nil {
			return err
		}
		return fmt.Errorf("%w: bad magic", ErrCorruptImages)
	}
	counter := br.U64()
	lastGen := br.U64()

	nPages := br.U32()
	if br.Err() == nil && nPages > 1<<26 {
		return fmt.Errorf("%w: %d pages", ErrCorruptImages, nPages)
	}
	pages := make([]*page, nPages)
	for i := range pages {
		gen := br.U64()
		data := br.Bytes(PageSize)
		if br.Err() != nil {
			return br.Err()
		}
		pages[i] = &page{data: data, gen: gen}
	}

	nImages := br.U32()
	if br.Err() == nil && nImages > 1<<24 {
		return fmt.Errorf("%w: %d images", ErrCorruptImages, nImages)
	}
	images := make(map[uint64]*Image, nImages)
	var order []uint64
	parents := make(map[uint64]uint64)
	for i := uint32(0); i < nImages && br.Err() == nil; i++ {
		img := &Image{}
		img.Counter = br.U64()
		img.Time = simclock.Time(br.U64())
		img.Full = br.Bool()
		parent := br.U64()
		img.FSEpoch = lfs.Epoch(br.U64())
		img.MemBytes = int64(br.U64())
		img.MetaBytes = int64(br.U64())
		img.CompressedBytes = int64(br.U64())
		img.cached = br.Bool()

		nProcs := br.U32()
		for p := uint32(0); p < nProcs && br.Err() == nil; p++ {
			img.Procs = append(img.Procs, readProcImage(br))
		}
		nImgPages := br.U32()
		for p := uint32(0); p < nImgPages && br.Err() == nil; p++ {
			pid := PID(br.U64())
			addr := br.U64()
			ref := br.U32()
			if int(ref) >= len(pages) {
				return fmt.Errorf("%w: page ref %d of %d", ErrCorruptImages, ref, len(pages))
			}
			img.pages = append(img.pages, imagePage{pid: pid, addr: addr, pg: pages[ref]})
		}
		images[img.Counter] = img
		order = append(order, img.Counter)
		if parent != 0 {
			parents[img.Counter] = parent
		}
	}
	if err := br.Err(); err != nil {
		return fmt.Errorf("vexec: load images: %w", err)
	}
	// The stream must end exactly here. With the compressed container a
	// truncated file can still decode a complete logical prefix (the
	// frame terminator is what vouches for completeness), so probe one
	// byte past the end and require a clean EOF.
	if b := br.Bytes(1); b != nil {
		return fmt.Errorf("%w: trailing data after image stream", ErrCorruptImages)
	}
	if err := br.Err(); !errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: unterminated stream: %v", ErrCorruptImages, err)
	}
	// Re-link parent pointers and validate.
	for c, pc := range parents {
		p, ok := images[pc]
		if !ok {
			return fmt.Errorf("%w: image %d references missing parent %d", ErrCorruptImages, c, pc)
		}
		images[c].Parent = p
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, c := range order {
		if err := images[c].Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrCorruptImages, err)
		}
	}
	ck.counter = counter
	ck.lastGen = lastGen
	ck.images = images
	ck.order = order
	if len(order) > 0 {
		ck.last = images[order[len(order)-1]]
	}
	return nil
}

func readProcImage(br *binio.Reader) ProcImage {
	pi := ProcImage{}
	pi.PID = PID(br.U64())
	pi.PPID = PID(br.U64())
	pi.Name = br.String()
	pi.State = ProcState(br.U8())
	pi.Threads = int(br.U32())
	pi.Tracer = PID(br.U64())
	pi.Regs.PC = br.U64()
	pi.Regs.SP = br.U64()
	for i := range pi.Regs.GPR {
		pi.Regs.GPR[i] = br.U64()
	}
	pi.Regs.FPCR = br.U32()
	pi.Creds.UID = int(br.U32())
	pi.Creds.GID = int(br.U32())
	pi.Priority = int(int32(br.U32()))
	pi.Pending = SignalSet(br.U64())
	pi.Blocked = SignalSet(br.U64())
	nFiles := br.U32()
	for i := uint32(0); i < nFiles && br.Err() == nil; i++ {
		f := FileImage{}
		f.FD = int(br.U32())
		f.Path = br.String()
		f.Offset = int64(br.U64())
		f.Unlinked = br.Bool()
		f.RelinkPath = br.String()
		f.SavedData = br.Blob()
		pi.Files = append(pi.Files, f)
	}
	nSockets := br.U32()
	for i := uint32(0); i < nSockets && br.Err() == nil; i++ {
		s := SocketImage{}
		s.FD = int(br.U32())
		s.Proto = SockProto(br.U8())
		s.LocalAddr = br.String()
		s.RemoteAddr = br.String()
		s.State = SockState(br.U8())
		pi.Sockets = append(pi.Sockets, s)
	}
	nRegions := br.U32()
	for i := uint32(0); i < nRegions && br.Err() == nil; i++ {
		r := RegionImage{}
		r.Start = br.U64()
		r.Length = br.U64()
		r.Perms = Perm(br.U8())
		pi.Regions = append(pi.Regions, r)
	}
	return pi
}
