package vexec

import (
	"fmt"
	"sort"

	"dejaview/internal/simclock"
)

// RestoreOptions tune a revive.
type RestoreOptions struct {
	// DemandPaging revives without reading memory pages up front: pages
	// fault in from the checkpoint images on first touch. The paper
	// names this as the improvement for uncached revive latency ("the
	// current revive implementation requires reading in all necessary
	// checkpoint data into memory before reviving", §6).
	DemandPaging bool
}

// RestoreResult reports one revive operation (Figure 7).
type RestoreResult struct {
	Container *Container
	Image     *Image
	// Latency is the end-to-end revive time from "Take me back" to a
	// usable session.
	Latency simclock.Time
	// BytesRead is the checkpoint data read from storage, across the
	// whole incremental chain consulted.
	BytesRead int64
	// ImagesRead is the number of checkpoint files accessed.
	ImagesRead int
	// Cached reports whether every image read was page-cache resident.
	Cached bool
	// PagesRestored counts memory pages reinstated eagerly.
	PagesRestored int
	// LazyPages counts pages left to demand paging.
	LazyPages int
	// SocketsReset counts external stateful connections dropped.
	SocketsReset int
}

// Restore revives the session recorded by checkpoint counter into a new
// container created over restoredFS (the union view the core assembled
// from the checkpoint's file-system snapshot). It implements §5.2:
// create the virtual execution environment, rebuild the process forest,
// reinstate memory by walking the incremental chain, restore files and
// sockets under the socket policy, and leave the network disabled.
//
// The kernel clock advances by the revive latency.
func (ck *Checkpointer) Restore(counter uint64, restoredFS FileSystem) (*RestoreResult, error) {
	return ck.RestoreOpts(counter, restoredFS, RestoreOptions{})
}

// RestoreOpts is Restore with tuning options.
func (ck *Checkpointer) RestoreOpts(counter uint64, restoredFS FileSystem, opts RestoreOptions) (*RestoreResult, error) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	img, err := ck.imageLocked(counter)
	if err != nil {
		return nil, err
	}
	k := ck.cont.kernel
	res := &RestoreResult{Image: img, Cached: true}

	// Step 1: a fresh virtual execution environment, network disabled.
	nc := k.NewContainer(restoredFS)
	nc.netEnabled = false
	res.Container = nc

	// Collect the newest version of every page along the incremental
	// chain, stopping at (and including) the most recent full image.
	pageMap, chain := collectPages(img)
	// Lazily opened chains demand-load page bytes now — only the pages
	// the consulted chain actually references, which is what makes a
	// lazy archive open cheaper than an eager one.
	if len(ck.lazyIdx) > 0 {
		var lazy []*page
		for _, m := range pageMap {
			for _, pg := range m {
				if pg.data == nil {
					//lint:ignore map-order per-page materialization is idempotent and commutative; only the fetch order varies
					lazy = append(lazy, pg)
				}
			}
		}
		if err := ck.materializeLocked(lazy); err != nil {
			return nil, err
		}
	}
	for _, ci := range chain {
		// Demand paging reads only process metadata up front; the page
		// payload streams in on faults.
		readBytes := ci.TotalBytes()
		if opts.DemandPaging {
			readBytes = ci.MetaBytes
		}
		res.BytesRead += readBytes
		res.ImagesRead++
		if !ci.cached {
			res.Cached = false
		}
		res.Latency += ck.costs.readTime(readBytes, ci.cached)
		if !ci.cached {
			res.Latency += ck.costs.Seek
			if !opts.DemandPaging {
				ci.cached = true // subsequent revives find it cached
			}
		}
	}

	// Step 3: recreate the process forest and restore per-process state.
	k.mu.Lock()
	byPID := make(map[PID]*Process, len(img.Procs))
	for _, pi := range forestOrder(img.Procs) {
		p := &Process{
			container: nc,
			pid:       pi.PID,
			ppid:      pi.PPID,
			name:      pi.Name,
			state:     pi.State,
			threads:   pi.Threads,
			tracer:    pi.Tracer,
			mem:       newAddressSpace(&k.memGen),
			files:     make(map[int]*OpenFile),
			sockets:   make(map[int]*Socket),
			nextFD:    3,
			regs:      pi.Regs,
			creds:     pi.Creds,
			prio:      pi.Priority,
			pending:   pi.Pending,
			blocked:   pi.Blocked,
		}
		nc.procs[pi.PID] = p
		if pi.PID >= nc.nextPID {
			nc.nextPID = pi.PID + 1
		}
		byPID[pi.PID] = p

		// Memory layout first, then page contents.
		for _, ri := range pi.Regions {
			r := &Region{
				start:  ri.Start,
				length: ri.Length,
				perms:  ri.Perms,
				pages:  make([]*page, ri.Length/PageSize),
				wp:     make([]bool, ri.Length/PageSize),
			}
			p.mem.insertRegion(r)
			p.mem.stats.Mapped += ri.Length
			if end := ri.Start + ri.Length; end > p.mem.nextMap {
				p.mem.nextMap = alignUp(end) + PageSize
			}
		}
		for addr, pg := range pageMap[pi.PID] {
			if r, _ := p.mem.regionAt(addr); r != nil {
				idx := (addr - r.start) / PageSize
				if opts.DemandPaging {
					if r.lazy == nil {
						r.lazy = make(map[int]*page)
					}
					r.lazy[int(idx)] = pg
					p.mem.stats.LazyResident++
					res.LazyPages++
				} else {
					r.pages[idx] = pg // immutable pages are shared safely
					res.PagesRestored++
				}
			}
		}

		// Open files: plain files reopen by name; unlinked files reopen
		// through their relink path (then vanish again) or from saved
		// image data.
		for _, fi := range pi.Files {
			of := &OpenFile{FD: fi.FD, Path: fi.Path, Offset: fi.Offset, Unlinked: fi.Unlinked}
			if fi.Unlinked {
				switch {
				case fi.RelinkPath != "":
					if data, err := restoredFS.ReadFile(fi.RelinkPath); err == nil {
						of.saved = data
						// Immediately unlink the relink name, restoring
						// the pre-checkpoint namespace (§5.1.2).
						_ = restoredFS.Remove(fi.RelinkPath)
					}
				default:
					of.saved = append([]byte(nil), fi.SavedData...)
				}
			}
			p.files[fi.FD] = of
			if fi.FD >= p.nextFD {
				p.nextFD = fi.FD + 1
			}
		}

		// Sockets under the §5.2 policy.
		for _, si := range pi.Sockets {
			s := &Socket{
				FD:         si.FD,
				Proto:      si.Proto,
				LocalAddr:  si.LocalAddr,
				RemoteAddr: si.RemoteAddr,
				State:      si.State,
			}
			if si.Proto == ProtoTCP && s.External() && si.State == SockEstablished {
				s.State = SockReset
				res.SocketsReset++
			}
			p.sockets[si.FD] = s
			if si.FD >= p.nextFD {
				p.nextFD = si.FD + 1
			}
		}
	}
	_ = byPID
	k.mu.Unlock()

	res.Latency += simclock.Time(len(img.Procs))*ck.costs.PerProcRestore +
		simclock.Time(res.PagesRestored)*ck.costs.PerPageRestore
	k.clock.Advance(res.Latency)
	return res, nil
}

// collectPages walks the chain from img back to its nearest full
// ancestor, returning the newest page per (pid, addr) and the list of
// images consulted (target first).
func collectPages(img *Image) (map[PID]map[uint64]*page, []*Image) {
	pages := make(map[PID]map[uint64]*page)
	var chain []*Image
	for ci := img; ci != nil; ci = ci.Parent {
		chain = append(chain, ci)
		for _, ip := range ci.pages {
			m := pages[ip.pid]
			if m == nil {
				m = make(map[uint64]*page)
				pages[ip.pid] = m
			}
			// Newest wins: earlier chain entries are newer.
			if _, ok := m[ip.addr]; !ok {
				m[ip.addr] = ip.pg
			}
		}
		if ci.Full {
			break
		}
	}
	return pages, chain
}

// forestOrder sorts process images parents-before-children so the forest
// can be created in one pass.
func forestOrder(procs []ProcImage) []ProcImage {
	byPID := make(map[PID]ProcImage, len(procs))
	for _, pi := range procs {
		byPID[pi.PID] = pi
	}
	var out []ProcImage
	visited := make(map[PID]bool, len(procs))
	var visit func(pi ProcImage)
	visit = func(pi ProcImage) {
		if visited[pi.PID] {
			return
		}
		if parent, ok := byPID[pi.PPID]; ok && pi.PPID != pi.PID {
			visit(parent)
		}
		visited[pi.PID] = true
		out = append(out, pi)
	}
	sorted := append([]ProcImage(nil), procs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].PID < sorted[j].PID })
	for _, pi := range sorted {
		visit(pi)
	}
	return out
}

// Validate checks an image for internal consistency (used by tests and
// the core before reviving).
func (im *Image) Validate() error {
	seen := make(map[PID]bool, len(im.Procs))
	for _, pi := range im.Procs {
		if seen[pi.PID] {
			return fmt.Errorf("vexec: image %d: duplicate pid %d", im.Counter, pi.PID)
		}
		seen[pi.PID] = true
	}
	for _, pi := range im.Procs {
		if pi.PPID != 0 && !seen[pi.PPID] {
			return fmt.Errorf("vexec: image %d: pid %d has unknown parent %d",
				im.Counter, pi.PID, pi.PPID)
		}
	}
	for _, ip := range im.pages {
		if !seen[ip.pid] {
			return fmt.Errorf("vexec: image %d: page for unknown pid %d", im.Counter, ip.pid)
		}
		if ip.addr%PageSize != 0 {
			return fmt.Errorf("vexec: image %d: unaligned page %#x", im.Counter, ip.addr)
		}
	}
	return nil
}
