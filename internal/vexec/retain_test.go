package vexec

import (
	"bytes"
	"fmt"
	"testing"

	"dejaview/internal/compress"
	"dejaview/internal/lfs"
	"dejaview/internal/simclock"
	"dejaview/internal/unionfs"
)

// buildRetainChain makes a session with a deterministic page-write
// pattern across n checkpoints and returns everything needed to revive.
func buildRetainChain(t *testing.T, n, fullEvery int) (*Container, *lfs.FS, *Checkpointer, uint64, PID) {
	t.Helper()
	c, fs, ck, clk := newCkptSession(t, fullEvery)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(uint64(n+4)*PageSize, PermRead|PermWrite)
	if err := fs.WriteFile("/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// Page i gets its final value at checkpoint i+1; page 0 is
		// rewritten every time so every image has at least one page.
		if err := p.Mem().Write(addr+uint64(i)*PageSize, []byte{byte(0xA0 + i)}); err != nil {
			t.Fatal(err)
		}
		if err := p.Mem().Write(addr, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		clk.Advance(simclock.Second)
		if _, err := ck.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	return c, fs, ck, addr, p.PID()
}

// reviveFingerprint restores checkpoint counter and fingerprints the
// restored memory contents.
func reviveFingerprint(t *testing.T, ck *Checkpointer, fs *lfs.FS, counter uint64, addr uint64, pid PID, nPages int) string {
	t.Helper()
	img, err := ck.Image(counter)
	if err != nil {
		t.Fatal(err)
	}
	view, err := fs.At(img.FSEpoch)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ck.Restore(counter, unionfs.New(view))
	if err != nil {
		t.Fatalf("restore %d: %v", counter, err)
	}
	rp, err := rr.Container.Process(pid)
	if err != nil {
		t.Fatal(err)
	}
	var fp bytes.Buffer
	for i := 0; i < nPages; i++ {
		b, err := rp.Mem().Read(addr+uint64(i)*PageSize, 1)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&fp, "%02x.", b[0])
	}
	return fp.String()
}

func TestRetainPreservesKeptCheckpoints(t *testing.T) {
	const n = 12
	_, fs, ck, addr, pid := buildRetainChain(t, n, 5)

	keep := map[uint64]bool{2: true, 7: true, 11: true, 12: true}
	before := make(map[uint64]string)
	for counter := range keep {
		before[counter] = reviveFingerprint(t, ck, fs, counter, addr, pid, n+2)
	}

	dropped := ck.Retain(func(c uint64) bool { return keep[c] })
	if dropped != n-len(keep) {
		t.Fatalf("dropped %d images, want %d", dropped, n-len(keep))
	}
	if got := len(ck.ImageInfos()); got != len(keep) {
		t.Fatalf("%d images retained, want %d", got, len(keep))
	}
	for counter := range keep {
		after := reviveFingerprint(t, ck, fs, counter, addr, pid, n+2)
		if after != before[counter] {
			t.Errorf("checkpoint %d changed after retain:\n  before %s\n  after  %s", counter, before[counter], after)
		}
	}
	// Dropped counters are gone.
	if _, err := ck.Image(3); err == nil {
		t.Error("dropped image 3 still present")
	}

	// The thinned chain must survive a save/load cycle (images whose
	// full ancestor was dropped become full themselves; parents
	// re-linked to kept ancestors only).
	var buf bytes.Buffer
	if err := ck.SaveImages(&buf); err != nil {
		t.Fatal(err)
	}
	clk2 := simclock.New()
	k2 := NewKernel(clk2)
	ck2 := NewCheckpointer(k2.NewContainer(fs), fs, fs, DefaultCostModel(), 5)
	if err := ck2.LoadImages(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if ck2.Counter() != ck.Counter() {
		t.Errorf("counter %d after reload, want %d", ck2.Counter(), ck.Counter())
	}
	for counter := range keep {
		after := reviveFingerprint(t, ck2, fs, counter, addr, pid, n+2)
		if after != before[counter] {
			t.Errorf("checkpoint %d changed after retain+reload", counter)
		}
	}
}

func TestRetainAlwaysKeepsNewest(t *testing.T) {
	_, _, ck, _, _ := buildRetainChain(t, 4, 2)
	ck.Retain(func(uint64) bool { return false })
	infos := ck.ImageInfos()
	if len(infos) != 1 || infos[0].Counter != 4 {
		t.Fatalf("retain-nothing kept %+v, want just counter 4", infos)
	}
	if !infos[0].Full {
		t.Error("sole survivor must be full")
	}
}

// TestLazyLoadImages exercises the metadata-first layout end to end:
// a lazy open must not touch page payload until restore, and a restore
// of one checkpoint must fetch only that chain's pages.
func TestLazyLoadImages(t *testing.T) {
	const n = 9
	c, fs, ck, addr, pid := buildRetainChain(t, n, 4)
	want := make(map[uint64]string)
	for _, counter := range []uint64{5, n} {
		want[counter] = reviveFingerprint(t, ck, fs, counter, addr, pid, n+2)
	}

	var buf bytes.Buffer
	if err := ck.SaveImages(&buf); err != nil {
		t.Fatal(err)
	}
	ff, err := compress.OpenFrameBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var fetched int
	fetch := func(off int64, dst []byte) error {
		fetched++
		_, err := ff.ReadAt(dst, off)
		return err
	}
	ck2 := NewCheckpointer(c.kernel.NewContainer(fs), fs, fs, DefaultCostModel(), 4)
	if err := ck2.LoadImagesLazy(ff.SequentialReader(), ff.RawSize(), fetch); err != nil {
		t.Fatal(err)
	}
	if fetched != 0 {
		t.Fatalf("lazy load fetched %d pages before any restore", fetched)
	}
	if got := reviveFingerprint(t, ck2, fs, 5, addr, pid, n+2); got != want[5] {
		t.Fatalf("lazy revive of 5 mismatch:\n  %s\n  %s", got, want[5])
	}
	mid := fetched
	if mid == 0 {
		t.Fatal("restore materialized no pages")
	}
	// Restoring checkpoint 5 must not have pulled pages only reachable
	// from newer images: the newest chain needs more fetches.
	if got := reviveFingerprint(t, ck2, fs, n, addr, pid, n+2); got != want[n] {
		t.Fatalf("lazy revive of %d mismatch", n)
	}
	if fetched == mid {
		t.Fatal("newer chain restored without fetching its extra pages")
	}

	// A re-save of the lazily opened chain materializes everything and
	// produces a loadable stream, even with a forced codec (the tier
	// compactor's recompression path).
	var buf2 bytes.Buffer
	if err := ck2.SaveImagesOptions(&buf2, compress.Options{Codec: compress.CodecFlate}); err != nil {
		t.Fatal(err)
	}
	clk3 := simclock.New()
	k3 := NewKernel(clk3)
	ck3 := NewCheckpointer(k3.NewContainer(fs), fs, fs, DefaultCostModel(), 4)
	if err := ck3.LoadImages(bytes.NewReader(buf2.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := reviveFingerprint(t, ck3, fs, n, addr, pid, n+2); got != want[n] {
		t.Fatalf("re-saved chain revive mismatch")
	}
}
