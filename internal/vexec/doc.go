// Package vexec implements DejaView's virtual execution environment
// (§3, §5): the simulated OS substrate standing in for the Zap-lineage
// loadable kernel modules of the paper's prototype.
//
// A Kernel hosts Containers — private virtual namespaces encapsulating a
// user's desktop session. Processes inside a container have virtual PIDs,
// paged virtual memory with per-page write protection and fault
// interception, open files (including unlinked-but-open files), signals
// (including uninterruptible sleep), and sockets. Because the namespace is
// private and virtual, a revived session can reuse the same resource names
// as when it was checkpointed, and multiple revived sessions can run
// concurrently without conflicting (§3).
//
// The Checkpointer implements the paper's continuous checkpointing
// algorithm with all of its §5.1.2 optimizations: file-system pre-snapshot
// sync, pre-quiescing of uninterruptible processes, copy-on-write memory
// capture, relinking of unlinked-but-open files, incremental checkpoints
// driven by page-protection dirty tracking (with mprotect/mmap/munmap/
// mremap interception), deferred writeback from preallocated buffers, and
// periodic full checkpoints. Restore rebuilds the process forest, walks
// the incremental image chain to reinstate memory, and applies the §5.2
// socket policy (external TCP reset, localhost preserved, UDP restored,
// network disabled by default).
//
// Time is virtual: every step charges a calibrated CostModel so the
// experiments reproduce the *shape* of the paper's latency breakdowns
// without 2007 hardware.
package vexec
