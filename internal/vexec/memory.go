package vexec

import (
	"errors"
	"fmt"
	"sort"
)

// PageSize is the virtual memory page size.
const PageSize = 4096

// Memory errors.
var (
	ErrSegv       = errors.New("vexec: segmentation fault")
	ErrBadAddress = errors.New("vexec: bad address or length")
	ErrNoRegion   = errors.New("vexec: no region at address")
)

// Perm is a page-protection bitmask.
type Perm uint8

// Protection bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// String implements fmt.Stringer.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// page is an immutable snapshot of one page's contents. Writes replace
// the pointer with a fresh page, so any captured pointer remains a
// consistent copy-on-write snapshot — the mechanism behind DejaView's
// deferred memory copy (§5.1.2).
type page struct {
	data []byte // len PageSize
	gen  uint64 // global modification generation, for incremental diffs
}

// Region is one mapped virtual memory area.
type Region struct {
	start  uint64 // page-aligned
	length uint64 // page-aligned
	perms  Perm
	pages  []*page
	// wp marks pages write-protected by the checkpointer. The special
	// flag distinguishes checkpoint protection from application
	// read-only mappings (§5.1.2: "marks these regions with a special
	// flag to distinguish them from regular read-only regions").
	wp []bool
	// lazy holds pages not yet faulted in from a checkpoint image — the
	// demand-paging revive the paper names as the way to improve
	// uncached revive latency (§6). The first touch of a lazy page
	// copies it in and counts a major fault.
	lazy map[int]*page
}

// Start returns the region's base address.
func (r *Region) Start() uint64 { return r.start }

// Length returns the region's byte length.
func (r *Region) Length() uint64 { return r.length }

// Perms returns the application-visible protection.
func (r *Region) Perms() Perm { return r.perms }

// PageCount returns the number of pages in the region.
func (r *Region) PageCount() int { return len(r.pages) }

// MemStats counts memory-subsystem activity.
type MemStats struct {
	// Faults counts write-protection faults intercepted by the
	// checkpointer's dirty tracking.
	Faults uint64
	// PagesCopied counts copy-on-write page replacements.
	PagesCopied uint64
	// Mapped is the current mapped size in bytes.
	Mapped uint64
	// MajorFaults counts demand-paged checkpoint pages faulted in.
	MajorFaults uint64
	// LazyResident counts checkpoint pages still waiting to be faulted.
	LazyResident uint64
}

// AddressSpace is a process's virtual memory: a sorted set of disjoint
// regions.
type AddressSpace struct {
	regions []*Region
	genSrc  *uint64 // shared generation counter (per kernel)
	stats   MemStats
	nextMap uint64 // simple bump allocator for Mmap
}

func newAddressSpace(genSrc *uint64) *AddressSpace {
	return &AddressSpace{genSrc: genSrc, nextMap: 0x4000_0000}
}

func (as *AddressSpace) nextGen() uint64 {
	*as.genSrc++
	return *as.genSrc
}

// regionAt finds the region containing addr.
func (as *AddressSpace) regionAt(addr uint64) (*Region, int) {
	i := sort.Search(len(as.regions), func(i int) bool {
		return as.regions[i].start+as.regions[i].length > addr
	})
	if i < len(as.regions) && as.regions[i].start <= addr {
		return as.regions[i], i
	}
	return nil, -1
}

func alignUp(n uint64) uint64 {
	return (n + PageSize - 1) &^ (PageSize - 1)
}

// Mmap maps a new anonymous region of at least length bytes with the
// given protection, returning its base address. Zero-filled pages are
// materialized lazily on first write; reads of untouched pages see zeros.
func (as *AddressSpace) Mmap(length uint64, perms Perm) (uint64, error) {
	if length == 0 {
		return 0, fmt.Errorf("%w: zero length", ErrBadAddress)
	}
	length = alignUp(length)
	start := as.nextMap
	as.nextMap += length + PageSize // guard gap
	r := &Region{
		start:  start,
		length: length,
		perms:  perms,
		pages:  make([]*page, length/PageSize),
		wp:     make([]bool, length/PageSize),
	}
	as.insertRegion(r)
	as.stats.Mapped += length
	return start, nil
}

func (as *AddressSpace) insertRegion(r *Region) {
	i := sort.Search(len(as.regions), func(i int) bool {
		return as.regions[i].start > r.start
	})
	as.regions = append(as.regions, nil)
	copy(as.regions[i+1:], as.regions[i:])
	as.regions[i] = r
}

// Munmap unmaps [addr, addr+length). Partial unmaps split regions, as the
// real system call does; the checkpointer's incremental state follows the
// region adjustments automatically because dirty tracking lives on the
// surviving pages (§5.1.2 interception of layout changes).
func (as *AddressSpace) Munmap(addr, length uint64) error {
	if addr%PageSize != 0 || length == 0 {
		return fmt.Errorf("%w: unaligned munmap", ErrBadAddress)
	}
	length = alignUp(length)
	end := addr + length
	var out []*Region
	for _, r := range as.regions {
		rEnd := r.start + r.length
		if rEnd <= addr || r.start >= end {
			out = append(out, r)
			continue
		}
		// Overlap: keep the pieces outside [addr, end).
		if r.start < addr {
			out = append(out, sliceRegion(r, r.start, addr))
		}
		if rEnd > end {
			out = append(out, sliceRegion(r, end, rEnd))
		}
		removed := min(rEnd, end) - max(r.start, addr)
		as.stats.Mapped -= removed
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	as.regions = out
	return nil
}

// sliceRegion builds the sub-region [from, to) of r, sharing pages.
func sliceRegion(r *Region, from, to uint64) *Region {
	fi := (from - r.start) / PageSize
	ti := (to - r.start) / PageSize
	out := &Region{
		start:  from,
		length: to - from,
		perms:  r.perms,
		pages:  r.pages[fi:ti:ti],
		wp:     r.wp[fi:ti:ti],
	}
	if r.lazy != nil {
		for i, p := range r.lazy {
			if uint64(i) >= fi && uint64(i) < ti {
				if out.lazy == nil {
					out.lazy = make(map[int]*page)
				}
				out.lazy[i-int(fi)] = p
			}
		}
	}
	return out
}

// Mprotect changes protection over [addr, addr+length), splitting regions
// as needed. Removing write permission clears the checkpointer's
// write-protect marks in the range so future faults propagate to the
// application rather than being swallowed (§5.1.2).
func (as *AddressSpace) Mprotect(addr, length uint64, perms Perm) error {
	if addr%PageSize != 0 || length == 0 {
		return fmt.Errorf("%w: unaligned mprotect", ErrBadAddress)
	}
	length = alignUp(length)
	end := addr + length
	// Verify full coverage first.
	for a := addr; a < end; {
		r, _ := as.regionAt(a)
		if r == nil {
			return fmt.Errorf("%w: %#x", ErrNoRegion, a)
		}
		a = r.start + r.length
	}
	var out []*Region
	for _, r := range as.regions {
		rEnd := r.start + r.length
		if rEnd <= addr || r.start >= end {
			out = append(out, r)
			continue
		}
		if r.start < addr {
			out = append(out, sliceRegion(r, r.start, addr))
		}
		mid := sliceRegion(r, max(r.start, addr), min(rEnd, end))
		mid.perms = perms
		if perms&PermWrite == 0 {
			for i := range mid.wp {
				mid.wp[i] = false
			}
		}
		out = append(out, mid)
		if rEnd > end {
			out = append(out, sliceRegion(r, end, rEnd))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	as.regions = out
	return nil
}

// Mremap grows (in place when possible, else by moving) a mapping,
// returning its possibly-new base address.
func (as *AddressSpace) Mremap(addr, newLength uint64) (uint64, error) {
	r, idx := as.regionAt(addr)
	if r == nil || r.start != addr {
		return 0, fmt.Errorf("%w: %#x", ErrNoRegion, addr)
	}
	newLength = alignUp(newLength)
	if newLength <= r.length {
		// Shrink via munmap of the tail.
		if newLength < r.length {
			if err := as.Munmap(addr+newLength, r.length-newLength); err != nil {
				return 0, err
			}
		}
		return addr, nil
	}
	// Grow in place when the gap to the next region allows it.
	canGrow := true
	if idx+1 < len(as.regions) && as.regions[idx+1].start < addr+newLength {
		canGrow = false
	}
	grow := newLength - r.length
	if canGrow {
		r.pages = append(r.pages, make([]*page, grow/PageSize)...)
		r.wp = append(r.wp, make([]bool, grow/PageSize)...)
		r.length = newLength
		as.stats.Mapped += grow
		return addr, nil
	}
	// Move: allocate a new region and share the existing pages.
	newAddr, err := as.Mmap(newLength, r.perms)
	if err != nil {
		return 0, err
	}
	nr, _ := as.regionAt(newAddr)
	copy(nr.pages, r.pages)
	copy(nr.wp, r.wp)
	nr.lazy = r.lazy
	if err := as.Munmap(addr, r.length); err != nil {
		return 0, err
	}
	return newAddr, nil
}

// Read copies length bytes at addr. It fails with ErrSegv outside mapped,
// readable regions.
func (as *AddressSpace) Read(addr, length uint64) ([]byte, error) {
	out := make([]byte, length)
	off := uint64(0)
	for off < length {
		r, _ := as.regionAt(addr + off)
		if r == nil {
			return nil, fmt.Errorf("%w: read at %#x", ErrSegv, addr+off)
		}
		if r.perms&PermRead == 0 {
			return nil, fmt.Errorf("%w: read of %s region at %#x", ErrSegv, r.perms, addr+off)
		}
		pi := (addr + off - r.start) / PageSize
		pOff := (addr + off - r.start) % PageSize
		n := min(PageSize-pOff, length-off)
		as.faultIn(r, int(pi))
		if p := r.pages[pi]; p != nil {
			copy(out[off:off+n], p.data[pOff:pOff+n])
		}
		off += n
	}
	return out, nil
}

// faultIn materializes a demand-paged checkpoint page on first touch.
func (as *AddressSpace) faultIn(r *Region, pi int) {
	if r.pages[pi] != nil || r.lazy == nil {
		return
	}
	if p, ok := r.lazy[pi]; ok {
		r.pages[pi] = p
		delete(r.lazy, pi)
		as.stats.MajorFaults++
		as.stats.LazyResident--
	}
}

// Write copies data to addr, replacing affected pages copy-on-write.
// Writes into checkpoint-write-protected pages fault first: the fault is
// intercepted (counted), the mark cleared, and the write retried — the
// §5.1.2 protocol. Writes into application read-only regions fail with
// ErrSegv (the signal is delivered to the application).
func (as *AddressSpace) Write(addr uint64, data []byte) error {
	length := uint64(len(data))
	off := uint64(0)
	for off < length {
		r, _ := as.regionAt(addr + off)
		if r == nil {
			return fmt.Errorf("%w: write at %#x", ErrSegv, addr+off)
		}
		if r.perms&PermWrite == 0 {
			return fmt.Errorf("%w: write to %s region at %#x", ErrSegv, r.perms, addr+off)
		}
		pi := (addr + off - r.start) / PageSize
		pOff := (addr + off - r.start) % PageSize
		n := min(PageSize-pOff, length-off)
		if r.wp[pi] {
			// Checkpoint write-protection fault: intercept, unmark,
			// make writable again, let the write proceed.
			as.stats.Faults++
			r.wp[pi] = false
		}
		as.faultIn(r, int(pi))
		np := &page{data: make([]byte, PageSize), gen: as.nextGen()}
		if old := r.pages[pi]; old != nil {
			copy(np.data, old.data)
		}
		copy(np.data[pOff:pOff+n], data[off:off+n])
		r.pages[pi] = np
		as.stats.PagesCopied++
		off += n
	}
	return nil
}

// Regions snapshots the region list (for checkpoint capture and tests).
func (as *AddressSpace) Regions() []*Region {
	return append([]*Region(nil), as.regions...)
}

// Stats returns a copy of the memory counters.
func (as *AddressSpace) Stats() MemStats { return as.stats }

// protectAll write-protects every writable page for incremental dirty
// tracking; called by the checkpointer at capture time.
func (as *AddressSpace) protectAll() {
	for _, r := range as.regions {
		if r.perms&PermWrite == 0 {
			continue
		}
		for i := range r.wp {
			r.wp[i] = true
		}
	}
}

// capturedPage pairs a page with its location for checkpoint images.
type capturedPage struct {
	addr uint64 // page base address
	pg   *page
}

// capture collects page references: every live page when full, or only
// pages with generation greater than sinceGen otherwise. Collecting
// pointers is the cheap, consistent COW capture (§5.1.2). Lazy
// (not-yet-faulted) checkpoint pages are part of the state: a full
// capture includes them, and an incremental one need not (they are by
// definition unmodified since the image they came from).
func (as *AddressSpace) capture(full bool, sinceGen uint64) []capturedPage {
	var out []capturedPage
	for _, r := range as.regions {
		for i, p := range r.pages {
			if p == nil {
				continue
			}
			if full || p.gen > sinceGen {
				out = append(out, capturedPage{addr: r.start + uint64(i)*PageSize, pg: p})
			}
		}
		if full && r.lazy != nil {
			// Iterate lazy pages in index order: the captured list feeds
			// checkpoint images, and map order would make two identical
			// runs produce different image bytes.
			idxs := make([]int, 0, len(r.lazy))
			for i := range r.lazy {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			for _, i := range idxs {
				out = append(out, capturedPage{addr: r.start + uint64(i)*PageSize, pg: r.lazy[i]})
			}
		}
	}
	return out
}

// liveBytes reports the number of materialized (non-zero-filled) bytes.
func (as *AddressSpace) liveBytes() int64 {
	var n int64
	for _, r := range as.regions {
		for _, p := range r.pages {
			if p != nil {
				n += PageSize
			}
		}
		n += int64(len(r.lazy)) * PageSize
	}
	return n
}
