package vexec

import (
	"errors"
	"testing"

	"dejaview/internal/lfs"
	"dejaview/internal/simclock"
)

// newSession builds a kernel + container over a fresh lfs.
func newSession(t *testing.T) (*Kernel, *Container, *lfs.FS, *simclock.Clock) {
	t.Helper()
	clk := simclock.New()
	k := NewKernel(clk)
	fs := lfs.New()
	c := k.NewContainer(fs)
	c.SetNetworkEnabled(true)
	return k, c, fs, clk
}

func TestSpawnAssignsVirtualPIDs(t *testing.T) {
	_, c, _, _ := newSession(t)
	p1, err := c.Spawn(0, "init")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Spawn(p1.PID(), "xserver")
	if err != nil {
		t.Fatal(err)
	}
	if p1.PID() != 1 || p2.PID() != 2 {
		t.Errorf("pids = %d, %d", p1.PID(), p2.PID())
	}
	if p2.PPID() != p1.PID() {
		t.Errorf("ppid = %d", p2.PPID())
	}
	if _, err := c.Spawn(99, "orphan"); !errors.Is(err, ErrNoProcess) {
		t.Errorf("spawn with bad parent err = %v", err)
	}
}

func TestNamespacesAreIndependent(t *testing.T) {
	k, c1, _, _ := newSession(t)
	c2 := k.NewContainer(lfs.New())
	p1, _ := c1.Spawn(0, "a")
	p2, _ := c2.Spawn(0, "b")
	// Same virtual PID in different namespaces — the property that lets
	// revived sessions coexist (§3).
	if p1.PID() != p2.PID() {
		t.Errorf("fresh containers should both start at pid 1: %d, %d", p1.PID(), p2.PID())
	}
	got1, err := c1.Process(1)
	if err != nil || got1.Name() != "a" {
		t.Error("c1 lookup wrong")
	}
	got2, err := c2.Process(1)
	if err != nil || got2.Name() != "b" {
		t.Error("c2 lookup wrong")
	}
}

func TestSignalStopCont(t *testing.T) {
	_, c, _, _ := newSession(t)
	p, _ := c.Spawn(0, "app")
	p.Signal(SIGSTOP)
	if p.State() != StateStopped {
		t.Errorf("state = %v, want stopped", p.State())
	}
	p.Signal(SIGCONT)
	if p.State() != StateRunning {
		t.Errorf("state = %v, want running", p.State())
	}
}

func TestSignalKill(t *testing.T) {
	_, c, _, _ := newSession(t)
	p, _ := c.Spawn(0, "app")
	p.Signal(SIGKILL)
	if p.State() != StateZombie {
		t.Errorf("state = %v", p.State())
	}
	if len(c.Processes()) != 0 {
		t.Error("zombie listed as live")
	}
}

func TestBlockedSignalsNotPending(t *testing.T) {
	_, c, _, _ := newSession(t)
	p, _ := c.Spawn(0, "app")
	p.BlockSignals(SignalSet(0).Add(SIGUSR1))
	p.Signal(SIGUSR1)
	if p.PendingSignals().Has(SIGUSR1) {
		t.Error("blocked signal became pending")
	}
	p.Signal(SIGUSR2)
	if !p.PendingSignals().Has(SIGUSR2) {
		t.Error("unblocked signal not pending")
	}
}

func TestUninterruptibleDefersStop(t *testing.T) {
	_, c, _, clk := newSession(t)
	p, _ := c.Spawn(0, "dd")
	p.EnterUninterruptible(50 * simclock.Millisecond)
	p.Signal(SIGSTOP)
	if p.State() != StateUninterruptible {
		t.Errorf("state = %v, want still uninterruptible", p.State())
	}
	clk.Advance(60 * simclock.Millisecond)
	c.Tick()
	if p.State() != StateStopped {
		t.Errorf("state = %v, want stopped after operation completes", p.State())
	}
}

func TestUninterruptibleCompletesWithoutSignal(t *testing.T) {
	_, c, _, clk := newSession(t)
	p, _ := c.Spawn(0, "dd")
	p.EnterUninterruptible(10 * simclock.Millisecond)
	clk.Advance(20 * simclock.Millisecond)
	c.Tick()
	if p.State() != StateRunning {
		t.Errorf("state = %v, want running", p.State())
	}
}

func TestOpenCloseFiles(t *testing.T) {
	_, c, fs, _ := newSession(t)
	if err := fs.WriteFile("/data.txt", []byte("contents")); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Spawn(0, "editor")
	fd, err := p.Open("/data.txt")
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.FileByFD(fd)
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Read(c.FS())
	if err != nil || string(data) != "contents" {
		t.Errorf("read = %q, %v", data, err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := p.FileByFD(fd); !errors.Is(err, ErrBadFD) {
		t.Errorf("after close err = %v", err)
	}
	if err := p.Close(999); !errors.Is(err, ErrBadFD) {
		t.Errorf("bad close err = %v", err)
	}
}

func TestOpenCreatesMissingFile(t *testing.T) {
	_, c, fs, _ := newSession(t)
	p, _ := c.Spawn(0, "app")
	if _, err := p.Open("/fresh.txt"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/fresh.txt") {
		t.Error("open did not create the file")
	}
}

func TestUnlinkedOpenFileKeepsContents(t *testing.T) {
	_, c, fs, _ := newSession(t)
	if err := fs.WriteFile("/tmp.scratch", []byte("scratch data")); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Spawn(0, "app")
	fd, _ := p.Open("/tmp.scratch")
	if err := p.Unlink(fd); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/tmp.scratch") {
		t.Error("file still visible after unlink")
	}
	f, _ := p.FileByFD(fd)
	if !f.Unlinked {
		t.Error("file not marked unlinked")
	}
	data, err := f.Read(c.FS())
	if err != nil || string(data) != "scratch data" {
		t.Errorf("unlinked read = %q, %v", data, err)
	}
}

func TestConnectPolicies(t *testing.T) {
	_, c, _, _ := newSession(t)
	p, _ := c.Spawn(0, "firefox")

	s, err := c.Connect(p, ProtoTCP, "10.0.0.1:5000", "93.184.216.34:80")
	if err != nil {
		t.Fatal(err)
	}
	if !s.External() {
		t.Error("internet peer should be external")
	}
	ls, err := c.Connect(p, ProtoTCP, "127.0.0.1:4000", "127.0.0.1:6000")
	if err != nil {
		t.Fatal(err)
	}
	if ls.External() {
		t.Error("loopback should be internal")
	}

	// Disable the network: external blocked, loopback still fine.
	c.SetNetworkEnabled(false)
	if _, err := c.Connect(p, ProtoTCP, "10.0.0.1:5001", "93.184.216.34:80"); !errors.Is(err, ErrNetworkDisabled) {
		t.Errorf("external connect err = %v", err)
	}
	if _, err := c.Connect(p, ProtoUDP, "127.0.0.1:4001", "localhost:6001"); err != nil {
		t.Errorf("loopback connect err = %v", err)
	}

	// Per-application override (§5.2).
	c.SetAppNetworkPolicy("firefox", true)
	if _, err := c.Connect(p, ProtoTCP, "10.0.0.1:5002", "93.184.216.34:80"); err != nil {
		t.Errorf("per-app allowed connect err = %v", err)
	}
	q, _ := c.Spawn(0, "mailer")
	if _, err := c.Connect(q, ProtoTCP, "10.0.0.1:5003", "93.184.216.34:25"); !errors.Is(err, ErrNetworkDisabled) {
		t.Errorf("other app connect err = %v", err)
	}
}

func TestSignalAllSkipsZombies(t *testing.T) {
	_, c, _, _ := newSession(t)
	p1, _ := c.Spawn(0, "a")
	p2, _ := c.Spawn(0, "b")
	p2.Exit(0)
	c.SignalAll(SIGSTOP)
	if p1.State() != StateStopped {
		t.Error("live process not stopped")
	}
	if p2.State() != StateZombie {
		t.Error("zombie state disturbed")
	}
}

func TestThreadsAndPriority(t *testing.T) {
	_, c, _, _ := newSession(t)
	p, _ := c.Spawn(0, "java")
	c.SpawnThreads(p, 7)
	if p.Threads() != 8 {
		t.Errorf("threads = %d, want 8", p.Threads())
	}
	p.SetPriority(5)
	if p.Priority() != 5 {
		t.Error("priority not set")
	}
}

func TestPermString(t *testing.T) {
	if got := (PermRead | PermWrite).String(); got != "rw-" {
		t.Errorf("String = %q", got)
	}
	if got := Perm(0).String(); got != "---" {
		t.Errorf("String = %q", got)
	}
}

func TestProcStateString(t *testing.T) {
	if StateRunning.String() != "running" || StateUninterruptible.String() != "uninterruptible" {
		t.Error("state names wrong")
	}
}
