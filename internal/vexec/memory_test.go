package vexec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestAS() *AddressSpace {
	var gen uint64
	return newAddressSpace(&gen)
}

func TestMmapReadWrite(t *testing.T) {
	as := newTestAS()
	addr, err := as.Mmap(3*PageSize, PermRead|PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if addr%PageSize != 0 {
		t.Errorf("mmap returned unaligned address %#x", addr)
	}
	data := []byte("hello virtual memory")
	if err := as.Write(addr+100, data); err != nil {
		t.Fatal(err)
	}
	got, err := as.Read(addr+100, uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q", got)
	}
	// Untouched memory reads as zero.
	z, err := as.Read(addr+2*PageSize, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(z, make([]byte, 8)) {
		t.Errorf("untouched page = %v", z)
	}
}

func TestMmapRoundsUp(t *testing.T) {
	as := newTestAS()
	addr, err := as.Mmap(100, PermRead|PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := as.regionAt(addr)
	if r.Length() != PageSize {
		t.Errorf("length = %d, want one page", r.Length())
	}
	if as.Stats().Mapped != PageSize {
		t.Errorf("Mapped = %d", as.Stats().Mapped)
	}
}

func TestWriteSpanningPages(t *testing.T) {
	as := newTestAS()
	addr, _ := as.Mmap(2*PageSize, PermRead|PermWrite)
	data := bytes.Repeat([]byte{0xAB}, PageSize)
	off := addr + PageSize/2
	if err := as.Write(off, data); err != nil {
		t.Fatal(err)
	}
	got, _ := as.Read(off, uint64(len(data)))
	if !bytes.Equal(got, data) {
		t.Error("cross-page write corrupted")
	}
}

func TestSegvOutsideMapping(t *testing.T) {
	as := newTestAS()
	if _, err := as.Read(0x1000, 4); !errors.Is(err, ErrSegv) {
		t.Errorf("read unmapped err = %v", err)
	}
	if err := as.Write(0x1000, []byte{1}); !errors.Is(err, ErrSegv) {
		t.Errorf("write unmapped err = %v", err)
	}
}

func TestSegvOnReadOnlyWrite(t *testing.T) {
	as := newTestAS()
	addr, _ := as.Mmap(PageSize, PermRead)
	if err := as.Write(addr, []byte{1}); !errors.Is(err, ErrSegv) {
		t.Errorf("write to r-- region err = %v", err)
	}
	// Application read-only faults must not be swallowed as checkpoint
	// faults.
	if as.Stats().Faults != 0 {
		t.Error("application SEGV counted as checkpoint fault")
	}
}

func TestMunmapFull(t *testing.T) {
	as := newTestAS()
	addr, _ := as.Mmap(4*PageSize, PermRead|PermWrite)
	if err := as.Munmap(addr, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Read(addr, 1); !errors.Is(err, ErrSegv) {
		t.Error("read after munmap should fault")
	}
	if as.Stats().Mapped != 0 {
		t.Errorf("Mapped = %d after full unmap", as.Stats().Mapped)
	}
}

func TestMunmapSplitsRegion(t *testing.T) {
	as := newTestAS()
	addr, _ := as.Mmap(4*PageSize, PermRead|PermWrite)
	if err := as.Write(addr, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(addr+3*PageSize, []byte{3}); err != nil {
		t.Fatal(err)
	}
	// Punch a hole in the middle.
	if err := as.Munmap(addr+PageSize, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if got, err := as.Read(addr, 1); err != nil || got[0] != 1 {
		t.Error("first page lost after hole punch")
	}
	if got, err := as.Read(addr+3*PageSize, 1); err != nil || got[0] != 3 {
		t.Error("last page lost after hole punch")
	}
	if _, err := as.Read(addr+PageSize, 1); !errors.Is(err, ErrSegv) {
		t.Error("hole should fault")
	}
	if len(as.Regions()) != 2 {
		t.Errorf("regions = %d, want 2", len(as.Regions()))
	}
}

func TestMprotectSplitsAndApplies(t *testing.T) {
	as := newTestAS()
	addr, _ := as.Mmap(3*PageSize, PermRead|PermWrite)
	if err := as.Mprotect(addr+PageSize, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(addr, []byte{1}); err != nil {
		t.Errorf("first page should stay writable: %v", err)
	}
	if err := as.Write(addr+PageSize, []byte{1}); !errors.Is(err, ErrSegv) {
		t.Errorf("protected page write err = %v", err)
	}
	if err := as.Write(addr+2*PageSize, []byte{1}); err != nil {
		t.Errorf("third page should stay writable: %v", err)
	}
	if len(as.Regions()) != 3 {
		t.Errorf("regions after split = %d, want 3", len(as.Regions()))
	}
}

func TestMprotectUnmappedFails(t *testing.T) {
	as := newTestAS()
	if err := as.Mprotect(0x5000, PageSize, PermRead); !errors.Is(err, ErrNoRegion) {
		t.Errorf("err = %v", err)
	}
}

func TestMremapGrowInPlace(t *testing.T) {
	as := newTestAS()
	addr, _ := as.Mmap(PageSize, PermRead|PermWrite)
	if err := as.Write(addr, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	newAddr, err := as.Mremap(addr, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if newAddr != addr {
		t.Errorf("grow moved the mapping: %#x -> %#x", addr, newAddr)
	}
	got, _ := as.Read(newAddr, 4)
	if string(got) != "keep" {
		t.Error("grow lost contents")
	}
	if err := as.Write(newAddr+3*PageSize, []byte{1}); err != nil {
		t.Errorf("grown tail unwritable: %v", err)
	}
}

func TestMremapShrink(t *testing.T) {
	as := newTestAS()
	addr, _ := as.Mmap(4*PageSize, PermRead|PermWrite)
	newAddr, err := as.Mremap(addr, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if newAddr != addr {
		t.Error("shrink should stay in place")
	}
	if _, err := as.Read(addr+2*PageSize, 1); !errors.Is(err, ErrSegv) {
		t.Error("shrunk tail should fault")
	}
}

func TestMremapMoveWhenBlocked(t *testing.T) {
	as := newTestAS()
	a, _ := as.Mmap(PageSize, PermRead|PermWrite)
	if err := as.Write(a, []byte("move me")); err != nil {
		t.Fatal(err)
	}
	// The bump allocator placed a guard gap of one page; a 3-page grow
	// cannot fit before the next mapping.
	if _, err := as.Mmap(PageSize, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	newAddr, err := as.Mremap(a, 3*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if newAddr == a {
		t.Fatal("expected the mapping to move")
	}
	got, _ := as.Read(newAddr, 7)
	if string(got) != "move me" {
		t.Errorf("moved contents = %q", got)
	}
	if _, err := as.Read(a, 1); !errors.Is(err, ErrSegv) {
		t.Error("old address should be unmapped after move")
	}
}

func TestCheckpointWriteProtectFaults(t *testing.T) {
	as := newTestAS()
	addr, _ := as.Mmap(2*PageSize, PermRead|PermWrite)
	if err := as.Write(addr, []byte{1}); err != nil {
		t.Fatal(err)
	}
	as.protectAll()
	if as.Stats().Faults != 0 {
		t.Fatal("protectAll should not fault")
	}
	// First write after protection faults once, then the page is free.
	if err := as.Write(addr, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if as.Stats().Faults != 1 {
		t.Errorf("Faults = %d, want 1", as.Stats().Faults)
	}
	if err := as.Write(addr, []byte{3}); err != nil {
		t.Fatal(err)
	}
	if as.Stats().Faults != 1 {
		t.Errorf("Faults after second write = %d, want still 1", as.Stats().Faults)
	}
	// The other page faults independently.
	if err := as.Write(addr+PageSize, []byte{4}); err != nil {
		t.Fatal(err)
	}
	if as.Stats().Faults != 2 {
		t.Errorf("Faults = %d, want 2", as.Stats().Faults)
	}
}

func TestMprotectReadOnlyClearsCheckpointMarks(t *testing.T) {
	// §5.1.2: "if it changes the protection of a region from read-write
	// to read-only then that region is unmarked to ensure that future
	// exceptions will be propagated to the application."
	as := newTestAS()
	addr, _ := as.Mmap(PageSize, PermRead|PermWrite)
	as.protectAll()
	if err := as.Mprotect(addr, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	err := as.Write(addr, []byte{1})
	if !errors.Is(err, ErrSegv) {
		t.Errorf("write err = %v, want application SEGV", err)
	}
	if as.Stats().Faults != 0 {
		t.Error("application fault swallowed by checkpoint tracking")
	}
}

func TestIncrementalCaptureOnlyDirty(t *testing.T) {
	as := newTestAS()
	addr, _ := as.Mmap(4*PageSize, PermRead|PermWrite)
	for i := uint64(0); i < 4; i++ {
		if err := as.Write(addr+i*PageSize, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	full := as.capture(true, 0)
	if len(full) != 4 {
		t.Fatalf("full capture = %d pages, want 4", len(full))
	}
	gen := maxGenOf(full)
	as.protectAll()
	// Dirty exactly one page.
	if err := as.Write(addr+2*PageSize, []byte{9}); err != nil {
		t.Fatal(err)
	}
	inc := as.capture(false, gen)
	if len(inc) != 1 {
		t.Fatalf("incremental capture = %d pages, want 1", len(inc))
	}
	if inc[0].addr != addr+2*PageSize {
		t.Errorf("captured wrong page %#x", inc[0].addr)
	}
}

func maxGenOf(caps []capturedPage) uint64 {
	var g uint64
	for _, c := range caps {
		if c.pg.gen > g {
			g = c.pg.gen
		}
	}
	return g
}

func TestCapturedPagesAreImmutable(t *testing.T) {
	// The COW property behind deferred writeback: captured page
	// contents must not change when the process keeps writing.
	as := newTestAS()
	addr, _ := as.Mmap(PageSize, PermRead|PermWrite)
	if err := as.Write(addr, []byte("checkpoint state")); err != nil {
		t.Fatal(err)
	}
	cap := as.capture(true, 0)
	if err := as.Write(addr, []byte("post-resume data")); err != nil {
		t.Fatal(err)
	}
	if string(cap[0].pg.data[:16]) != "checkpoint state" {
		t.Errorf("captured page mutated: %q", cap[0].pg.data[:16])
	}
}

func TestLiveBytes(t *testing.T) {
	as := newTestAS()
	addr, _ := as.Mmap(8*PageSize, PermRead|PermWrite)
	if as.liveBytes() != 0 {
		t.Error("fresh mapping should have no live pages")
	}
	if err := as.Write(addr, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if as.liveBytes() != PageSize {
		t.Errorf("liveBytes = %d", as.liveBytes())
	}
}

// Property: random mmap/write/munmap/mprotect sequences keep the region
// list sorted and disjoint, and reads agree with a shadow model.
func TestAddressSpaceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as := newTestAS()
		shadow := make(map[uint64]byte) // addr -> byte
		var mapped []uint64
		for step := 0; step < 80; step++ {
			switch rng.Intn(5) {
			case 0: // mmap
				n := uint64(1+rng.Intn(4)) * PageSize
				addr, err := as.Mmap(n, PermRead|PermWrite)
				if err != nil {
					return false
				}
				mapped = append(mapped, addr)
			case 1, 2: // write
				if len(mapped) == 0 {
					continue
				}
				base := mapped[rng.Intn(len(mapped))]
				r, _ := as.regionAt(base)
				if r == nil || r.perms&PermWrite == 0 {
					continue
				}
				off := uint64(rng.Intn(int(r.Length())))
				val := byte(rng.Intn(256))
				if err := as.Write(base+off, []byte{val}); err != nil {
					continue // may hit a split/protected area
				}
				shadow[base+off] = val
			case 3: // protectAll (checkpoint)
				as.protectAll()
			case 4: // read check
				if len(mapped) == 0 {
					continue
				}
				base := mapped[rng.Intn(len(mapped))]
				r, _ := as.regionAt(base)
				if r == nil {
					continue
				}
				off := uint64(rng.Intn(int(r.Length())))
				got, err := as.Read(base+off, 1)
				if err != nil {
					continue
				}
				if want := shadow[base+off]; got[0] != want {
					return false
				}
			}
		}
		// Region invariants.
		regs := as.Regions()
		for i := 1; i < len(regs); i++ {
			if regs[i-1].start+regs[i-1].length > regs[i].start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
