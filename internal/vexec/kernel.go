package vexec

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dejaview/internal/lfs"
	"dejaview/internal/simclock"
)

// FileSystem is the file-system interface a container exposes to its
// processes. Both the base log-structured file system (*lfs.FS) and a
// revived session's union branch (*unionfs.Union) satisfy it.
type FileSystem interface {
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte) error
	WriteAt(path string, off int64, data []byte) error
	Create(path string) error
	Mkdir(path string) error
	MkdirAll(path string) error
	Remove(path string) error
	Rename(oldPath, newPath string) error
	ReadDir(path string) ([]string, error)
	Stat(path string) (lfs.Stat, error)
	Exists(path string) bool
}

// SnapshotFS is the snapshotting layer the checkpointer coordinates with:
// the base lfs.FS for the main session, or the union's writable upper
// layer for a revived session.
type SnapshotFS interface {
	Sync() int64
	Snapshot() (lfs.Epoch, int64)
	TagCheckpoint(counter uint64) lfs.Epoch
	EpochForCheckpoint(counter uint64) (lfs.Epoch, error)
	At(e lfs.Epoch) (*lfs.View, error)
}

// Relinker is the optional capability to link an inode into a hidden
// path, used to preserve unlinked-but-open files across snapshots.
type Relinker interface {
	InoOf(path string) (lfs.Ino, error)
	LinkIno(ino lfs.Ino, path string) error
	MkdirAll(path string) error
	Remove(path string) error
}

// ContainerID identifies a container within a kernel.
type ContainerID int

// Kernel is the simulated OS instance hosting containers. One Kernel per
// DejaView deployment; the main session and every revived session are
// separate containers above it (§3: the virtualization operates above the
// OS instance, encapsulating only the desktop session).
type Kernel struct {
	clock *simclock.Clock

	mu         sync.Mutex
	containers map[ContainerID]*Container
	nextCID    ContainerID
	memGen     uint64 // global page-modification generation
}

// NewKernel creates a kernel on the given clock.
func NewKernel(clock *simclock.Clock) *Kernel {
	return &Kernel{
		clock:      clock,
		containers: make(map[ContainerID]*Container),
		nextCID:    1,
	}
}

// Clock returns the kernel's time source.
func (k *Kernel) Clock() *simclock.Clock { return k.clock }

// NewContainer creates a private virtual namespace over the given file
// system.
func (k *Kernel) NewContainer(fs FileSystem) *Container {
	k.mu.Lock()
	defer k.mu.Unlock()
	c := &Container{
		id:      k.nextCID,
		kernel:  k,
		fs:      fs,
		procs:   make(map[PID]*Process),
		nextPID: 1,
	}
	k.nextCID++
	k.containers[c.id] = c
	return c
}

// RemoveContainer tears a container down.
func (k *Kernel) RemoveContainer(c *Container) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.containers, c.id)
}

// Containers reports the number of live containers.
func (k *Kernel) Containers() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.containers)
}

// Container errors.
var ErrNetworkDisabled = errors.New("vexec: network access disabled")

// Container is a Zap-style private virtual namespace: its processes see
// virtual PIDs and their own file-system root, so sessions revived from
// different points in time can use the same resource names concurrently
// without conflict (§3).
type Container struct {
	id     ContainerID
	kernel *Kernel
	fs     FileSystem

	procs   map[PID]*Process
	nextPID PID
	// netEnabled gates new outbound connections; revived sessions start
	// with the network disabled (§5.2). The main session enables it.
	netEnabled bool
	// netPolicy optionally allows per-application overrides.
	netPolicy map[string]bool
}

// ID returns the container identifier.
func (c *Container) ID() ContainerID { return c.id }

// FS returns the container's file-system view.
func (c *Container) FS() FileSystem { return c.fs }

// Kernel returns the hosting kernel.
func (c *Container) Kernel() *Kernel { return c.kernel }

// SetNetworkEnabled toggles container-wide network access.
func (c *Container) SetNetworkEnabled(on bool) {
	c.kernel.mu.Lock()
	defer c.kernel.mu.Unlock()
	c.netEnabled = on
}

// NetworkEnabled reports the container-wide setting.
func (c *Container) NetworkEnabled() bool {
	c.kernel.mu.Lock()
	defer c.kernel.mu.Unlock()
	return c.netEnabled
}

// SetAppNetworkPolicy overrides network access for one application name
// (§5.2: "the user can configure a policy that describes the desired
// network access behavior per application").
func (c *Container) SetAppNetworkPolicy(app string, allowed bool) {
	c.kernel.mu.Lock()
	defer c.kernel.mu.Unlock()
	if c.netPolicy == nil {
		c.netPolicy = make(map[string]bool)
	}
	c.netPolicy[app] = allowed
}

// networkAllowed resolves the effective policy for a process.
func (c *Container) networkAllowed(proc *Process) bool {
	c.kernel.mu.Lock()
	defer c.kernel.mu.Unlock()
	if allowed, ok := c.netPolicy[proc.name]; ok {
		return allowed
	}
	return c.netEnabled
}

// Spawn creates a process in the container. ppid 0 makes it a root of the
// forest.
func (c *Container) Spawn(ppid PID, name string) (*Process, error) {
	c.kernel.mu.Lock()
	defer c.kernel.mu.Unlock()
	if ppid != 0 {
		if _, ok := c.procs[ppid]; !ok {
			return nil, fmt.Errorf("%w: parent %d", ErrNoProcess, ppid)
		}
	}
	p := c.newProcessLocked(ppid, name)
	return p, nil
}

func (c *Container) newProcessLocked(ppid PID, name string) *Process {
	p := &Process{
		container: c,
		pid:       c.nextPID,
		ppid:      ppid,
		name:      name,
		state:     StateRunning,
		threads:   1,
		mem:       newAddressSpace(&c.kernel.memGen),
		files:     make(map[int]*OpenFile),
		sockets:   make(map[int]*Socket),
		nextFD:    3, // 0/1/2 are stdio
		creds:     Credentials{UID: 1000, GID: 1000},
	}
	c.nextPID++
	c.procs[p.pid] = p
	return p
}

// SpawnThreads adds threads to a process (a desktop app is typically
// multithreaded; the checkpointer saves the process as a unit).
func (c *Container) SpawnThreads(p *Process, n int) {
	c.kernel.mu.Lock()
	defer c.kernel.mu.Unlock()
	p.threads += n
}

// Process looks up a PID in the container's private namespace.
func (c *Container) Process(pid PID) (*Process, error) {
	c.kernel.mu.Lock()
	defer c.kernel.mu.Unlock()
	p, ok := c.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoProcess, pid)
	}
	return p, nil
}

// Processes snapshots the live (non-zombie) process list, sorted by PID.
func (c *Container) Processes() []*Process {
	c.kernel.mu.Lock()
	defer c.kernel.mu.Unlock()
	var out []*Process
	for _, p := range c.procs {
		if p.state != StateZombie {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	return out
}

// Connect opens a socket from proc, subject to the container's network
// policy. Loopback connections are always allowed: they are fully
// contained within the session.
func (c *Container) Connect(proc *Process, proto SockProto, localAddr, remoteAddr string) (*Socket, error) {
	s := &Socket{Proto: proto, LocalAddr: localAddr, RemoteAddr: remoteAddr, State: SockEstablished}
	if s.External() && !c.networkAllowed(proc) {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNetworkDisabled, proc.name, remoteAddr)
	}
	return proc.Connect(proto, localAddr, remoteAddr), nil
}

// Tick lets processes whose uninterruptible operations have completed
// resume (and handle deferred stop signals). Session drivers call it as
// virtual time advances.
func (c *Container) Tick() {
	c.kernel.mu.Lock()
	defer c.kernel.mu.Unlock()
	now := c.kernel.clock.Now()
	for _, p := range c.procs {
		p.completeBlockingLocked(now)
	}
}

// SignalAll sends a signal to every live process in the container.
func (c *Container) SignalAll(sig Signal) {
	c.kernel.mu.Lock()
	defer c.kernel.mu.Unlock()
	for _, p := range c.procs {
		if p.state != StateZombie {
			p.signalLocked(sig)
		}
	}
}
