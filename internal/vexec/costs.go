package vexec

import "dejaview/internal/simclock"

// CostModel translates checkpoint/restore work into virtual time. The
// defaults are calibrated to the paper's 2007-class testbed (3.2 GHz
// Pentium D, SATA disk) so the experiments reproduce the magnitude and
// shape of Figures 3 and 7 — sub-10 ms downtimes against ~100 ms total
// checkpoint times and second-scale uncached revives.
type CostModel struct {
	// DiskWriteBW is the sequential log write bandwidth (bytes/s).
	DiskWriteBW int64
	// DiskReadBW is the uncached checkpoint read bandwidth (bytes/s).
	DiskReadBW int64
	// CachedReadBW is the in-page-cache read bandwidth (bytes/s).
	CachedReadBW int64
	// Seek is the per-file access latency for uncached reads.
	Seek simclock.Time
	// PerProcQuiesce is the cost of stopping/resuming one process.
	PerProcQuiesce simclock.Time
	// PerRegionCapture is the per-VMA bookkeeping cost during capture.
	PerRegionCapture simclock.Time
	// PerPageCapture is the per-page COW-mark/collect cost during
	// capture (pointer collection, not data copy).
	PerPageCapture simclock.Time
	// FSSnapshotBase is the fixed log-structured snapshot cost.
	FSSnapshotBase simclock.Time
	// PreQuiesceMax caps how long the engine waits for processes to
	// leave uninterruptible sleep before stopping the session anyway.
	PreQuiesceMax simclock.Time
	// PerProcRestore is the per-process forest reconstruction cost.
	PerProcRestore simclock.Time
	// PerPageRestore is the per-page reinstatement cost (memory copy).
	PerPageRestore simclock.Time
	// MemCopyBW is memory bandwidth, used by the naive stop-and-copy
	// baseline that copies all state while stopped.
	MemCopyBW int64
}

// DefaultCostModel returns the calibrated 2007-class model.
func DefaultCostModel() CostModel {
	return CostModel{
		DiskWriteBW:      60 << 20, // 60 MiB/s sequential
		DiskReadBW:       70 << 20, // 70 MiB/s sequential read
		CachedReadBW:     2 << 30,  // 2 GiB/s from page cache
		Seek:             8 * simclock.Millisecond,
		PerProcQuiesce:   30 * simclock.Microsecond,
		PerRegionCapture: 2 * simclock.Microsecond,
		PerPageCapture:   700 * simclock.Nanosecond,
		FSSnapshotBase:   300 * simclock.Microsecond,
		PreQuiesceMax:    100 * simclock.Millisecond,
		PerProcRestore:   150 * simclock.Microsecond,
		PerPageRestore:   1200 * simclock.Nanosecond,
		MemCopyBW:        1 << 30, // 1 GiB/s copy while stopped
	}
}

// writeTime converts a byte count into disk write latency.
func (c *CostModel) writeTime(bytes int64) simclock.Time {
	if bytes <= 0 || c.DiskWriteBW <= 0 {
		return 0
	}
	return simclock.Time(bytes * int64(simclock.Second) / c.DiskWriteBW)
}

// readTime converts a byte count into read latency, cached or not.
func (c *CostModel) readTime(bytes int64, cached bool) simclock.Time {
	if bytes <= 0 {
		return 0
	}
	bw := c.DiskReadBW
	if cached {
		bw = c.CachedReadBW
	}
	if bw <= 0 {
		return 0
	}
	return simclock.Time(bytes * int64(simclock.Second) / bw)
}
