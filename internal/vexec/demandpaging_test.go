package vexec

import (
	"testing"

	"dejaview/internal/unionfs"
)

func TestDemandPagingRevive(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 100)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(64*PageSize, PermRead|PermWrite)
	for i := uint64(0); i < 64; i++ {
		if err := p.Mem().Write(addr+i*PageSize, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	ck.DropCaches()

	view, err := fs.At(res.Image.FSEpoch)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := ck.RestoreOpts(res.Image.Counter, unionfs.New(view),
		RestoreOptions{DemandPaging: true})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.PagesRestored != 0 {
		t.Errorf("PagesRestored = %d, want 0 (all lazy)", lazy.PagesRestored)
	}
	if lazy.LazyPages != 64 {
		t.Errorf("LazyPages = %d, want 64", lazy.LazyPages)
	}

	// Memory reads see the exact checkpointed contents, faulting in.
	rp, _ := lazy.Container.Process(p.PID())
	for i := uint64(0); i < 64; i++ {
		got, err := rp.Mem().Read(addr+i*PageSize, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Fatalf("page %d = %d, want %d", i, got[0], i+1)
		}
	}
	st := rp.Mem().Stats()
	if st.MajorFaults != 64 {
		t.Errorf("MajorFaults = %d, want 64", st.MajorFaults)
	}
	if st.LazyResident != 0 {
		t.Errorf("LazyResident = %d, want 0 after touching everything", st.LazyResident)
	}
}

func TestDemandPagingFasterUncachedRevive(t *testing.T) {
	c, fs, ck, _ := newCkptSession(t, 100)
	p, _ := c.Spawn(0, "bigapp")
	addr, _ := p.Mem().Mmap(2048*PageSize, PermRead|PermWrite)
	for i := uint64(0); i < 2048; i++ {
		if err := p.Mem().Write(addr+i*PageSize, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	view, err := fs.At(res.Image.FSEpoch)
	if err != nil {
		t.Fatal(err)
	}

	ck.DropCaches()
	eager, err := ck.RestoreOpts(res.Image.Counter, unionfs.New(view), RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ck.DropCaches()
	lazy, err := ck.RestoreOpts(res.Image.Counter, unionfs.New(view),
		RestoreOptions{DemandPaging: true})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Latency*5 > eager.Latency {
		t.Errorf("demand-paged revive %v should be far below eager %v",
			lazy.Latency, eager.Latency)
	}
	if lazy.BytesRead >= eager.BytesRead {
		t.Errorf("demand-paged read %d bytes, eager %d", lazy.BytesRead, eager.BytesRead)
	}
}

func TestDemandPagedWriteFaultsFirst(t *testing.T) {
	// A partial write to a lazy page must preserve the untouched bytes
	// of the checkpointed contents.
	c, fs, ck, _ := newCkptSession(t, 100)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(PageSize, PermRead|PermWrite)
	if err := p.Mem().Write(addr, []byte("checkpointed page data")); err != nil {
		t.Fatal(err)
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	view, _ := fs.At(res.Image.FSEpoch)
	rr, err := ck.RestoreOpts(res.Image.Counter, unionfs.New(view),
		RestoreOptions{DemandPaging: true})
	if err != nil {
		t.Fatal(err)
	}
	rp, _ := rr.Container.Process(p.PID())
	// Overwrite only the first word.
	if err := rp.Mem().Write(addr, []byte("MODIFIED....")); err != nil {
		t.Fatal(err)
	}
	got, err := rp.Mem().Read(addr, 22)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "MODIFIED.... page data" {
		t.Errorf("partial write over lazy page = %q", got)
	}
}

func TestDemandPagedSessionRecheckpoint(t *testing.T) {
	// A revived-with-demand-paging session that is checkpointed again
	// must include its untouched lazy pages in the new full image.
	c, fs, ck, _ := newCkptSession(t, 100)
	p, _ := c.Spawn(0, "app")
	addr, _ := p.Mem().Mmap(8*PageSize, PermRead|PermWrite)
	for i := uint64(0); i < 8; i++ {
		if err := p.Mem().Write(addr+i*PageSize, []byte{byte(0x40 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ck.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	view, _ := fs.At(res.Image.FSEpoch)
	union := unionfs.New(view)
	rr, err := ck.RestoreOpts(res.Image.Counter, union, RestoreOptions{DemandPaging: true})
	if err != nil {
		t.Fatal(err)
	}
	// Touch only one page, then checkpoint the revived session.
	rp, _ := rr.Container.Process(p.PID())
	if _, err := rp.Mem().Read(addr, 1); err != nil {
		t.Fatal(err)
	}
	ck2 := NewCheckpointer(rr.Container, union.Upper(), union.Upper(), DefaultCostModel(), 100)
	res2, err := ck2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Image.Pages() != 8 {
		t.Errorf("re-checkpoint captured %d pages, want all 8 (lazy included)", res2.Image.Pages())
	}
	// And a revive of that image sees all contents.
	view2, _ := union.Upper().At(res2.Image.FSEpoch)
	rr2, err := ck2.Restore(res2.Image.Counter, unionfs.New(view2))
	if err != nil {
		t.Fatal(err)
	}
	rp2, _ := rr2.Container.Process(p.PID())
	for i := uint64(0); i < 8; i++ {
		got, err := rp2.Mem().Read(addr+i*PageSize, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(0x40+i) {
			t.Errorf("page %d = %#x", i, got[0])
		}
	}
}
