package vexec

// Checkpoint thinning (offline retention): the tier compactor drops
// aged checkpoints from an archived chain while keeping every surviving
// checkpoint revivable. Dropping an incremental image folds its pages
// into the nearest kept descendant (newest-wins, exactly the precedence
// collectPages applies at restore time), so the retained chain restores
// bit-identically to the original.

import "dejaview/internal/simclock"

// ImageInfo is the public summary of one checkpoint image, exposed so
// retention policy can be decided outside this package.
type ImageInfo struct {
	Counter   uint64
	Time      simclock.Time
	Full      bool
	Parent    uint64 // parent image counter, 0 for chain roots
	Pages     int    // pages referenced (not necessarily unique to this image)
	MemBytes  int64
	MetaBytes int64
}

// ImageInfos lists every checkpoint image in counter order.
func (ck *Checkpointer) ImageInfos() []ImageInfo {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	infos := make([]ImageInfo, 0, len(ck.order))
	for _, c := range ck.order {
		img := ck.images[c]
		info := ImageInfo{
			Counter:   img.Counter,
			Time:      img.Time,
			Full:      img.Full,
			Pages:     len(img.pages),
			MemBytes:  img.MemBytes,
			MetaBytes: img.MetaBytes,
		}
		if img.Parent != nil {
			info.Parent = img.Parent.Counter
		}
		infos = append(infos, info)
	}
	return infos
}

// NewArchiveCheckpointer creates a checkpointer with no live container,
// for offline manipulation of an archived image chain (load, thin,
// re-save). Restore is not supported on it.
func NewArchiveCheckpointer(costs CostModel, fullEvery int) *Checkpointer {
	return NewCheckpointer(nil, nil, nil, costs, fullEvery)
}

// Retain drops every image whose counter keep() rejects, folding
// dropped incremental state into the nearest kept descendant so all
// kept checkpoints restore exactly as before. The newest image is
// always kept regardless of keep(). Counters are never reused: the
// checkpoint counter keeps its value so future checkpoints (if the
// chain is ever resumed) stay unique. Returns the number of images
// dropped.
func (ck *Checkpointer) Retain(keep func(counter uint64) bool) int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if len(ck.order) == 0 {
		return 0
	}
	kept := make(map[uint64]bool, len(ck.order))
	for _, c := range ck.order {
		if keep(c) {
			kept[c] = true
		}
	}
	kept[ck.order[len(ck.order)-1]] = true // newest is never dropped

	// Fold in ascending counter order: a kept image's kept ancestor has
	// already absorbed its own dropped parents, and folding stops at the
	// first kept (or full) ancestor, so each dropped image folds into
	// exactly one descendant.
	for _, c := range ck.order {
		if !kept[c] {
			continue
		}
		img := ck.images[c]
		if img.Full {
			img.Parent = nearestKept(img.Parent, kept)
			continue
		}
		procs := make(map[PID]bool, len(img.Procs))
		for i := range img.Procs {
			procs[img.Procs[i].PID] = true
		}
		have := make(map[pageKey]bool, len(img.pages))
		for _, ip := range img.pages {
			have[pageKey{ip.pid, ip.addr}] = true
		}
		anc := img.Parent
		sawFull := false
		for anc != nil && !kept[anc.Counter] {
			for _, ip := range anc.pages {
				k := pageKey{ip.pid, ip.addr}
				// Newest version wins; pages of processes that exited
				// before this image are unreachable from it (restore
				// only consults pids in the image's forest).
				if have[k] || !procs[ip.pid] {
					continue
				}
				have[k] = true
				img.pages = append(img.pages, ip)
			}
			if anc.Full {
				sawFull = true
				break
			}
			anc = anc.Parent
		}
		if sawFull || anc == nil {
			img.Full = true
			img.Parent = nil
		} else {
			img.Parent = anc
		}
		img.MemBytes = int64(len(img.pages))*PageSize + savedFileBytes(img)
	}

	dropped := 0
	order := ck.order[:0]
	for _, c := range ck.order {
		if kept[c] {
			order = append(order, c)
			continue
		}
		delete(ck.images, c)
		dropped++
	}
	ck.order = order
	ck.last = ck.images[order[len(order)-1]]
	return dropped
}

type pageKey struct {
	pid  PID
	addr uint64
}

func nearestKept(img *Image, kept map[uint64]bool) *Image {
	for img != nil && !kept[img.Counter] {
		img = img.Parent
	}
	return img
}

func savedFileBytes(img *Image) int64 {
	var n int64
	for i := range img.Procs {
		for _, fi := range img.Procs[i].Files {
			n += int64(len(fi.SavedData))
		}
	}
	return n
}
