// Package bench regenerates every table and figure of the paper's
// evaluation (§6) against the simulated substrates. Each experiment
// returns a typed result with a Render method that prints the same rows
// or series the paper reports; cmd/dvbench and the root bench_test.go
// drive it.
//
// Two kinds of measurement appear:
//
//   - Virtual-time results (checkpoint latency breakdowns, storage
//     growth, revive latency) come from the calibrated cost model and the
//     workloads' virtual clocks, reproducing the paper's magnitudes.
//   - Host-time results (recording overhead, search/browse latency,
//     playback speedup) are real measurements of this implementation
//     doing real work; absolute values depend on the host, but the
//     relative shape — who costs more, who wins — is the reproduction
//     target.
package bench

import (
	"fmt"
	"strings"
	"time"

	"dejaview/internal/core"
	"dejaview/internal/policy"
	"dejaview/internal/simclock"
	"dejaview/internal/workload"
)

// benchConfig is the paper's application-benchmark configuration: full
// fidelity display recording and checkpoints whenever the display
// changed, at most once per second.
func benchConfig() core.Config {
	return core.Config{
		Policy: policy.Config{
			MaxRate:            simclock.Second,
			TextRate:           simclock.Second,
			MinDisplayFraction: 1e-9,
		},
	}
}

// appScenarios are the individual application benchmarks (Table 1 minus
// the real-usage desktop trace).
func appScenarios() []*workload.Scenario {
	return []*workload.Scenario{
		workload.Web(), workload.Video(), workload.Untar(), workload.Gzip(),
		workload.Make(), workload.Octave(), workload.Cat(),
	}
}

// allScenarios adds the desktop trace.
func allScenarios() []*workload.Scenario {
	return append(appScenarios(), workload.Desktop())
}

// filterScenarios restricts a scenario list to the given names; an empty
// name list keeps everything.
func filterScenarios(scs []*workload.Scenario, names []string) []*workload.Scenario {
	if len(names) == 0 {
		return scs
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*workload.Scenario
	for _, sc := range scs {
		if want[sc.Name] {
			out = append(out, sc)
		}
	}
	return out
}

// runScenario executes one scenario on a fresh session in the given
// configuration and returns the session plus run stats.
func runScenario(sc *workload.Scenario, cfg core.Config, seed int64) (*core.Session, workload.RunStats, error) {
	// The desktop trace runs under the paper's real policy, not the
	// benchmark policy.
	if sc.Name == "desktop" {
		cfg.Policy = policy.DefaultConfig()
	}
	s := core.NewSession(cfg)
	stats, err := workload.Run(s, sc, seed)
	return s, stats, err
}

// hostSeconds measures the host wall-clock cost of f.
func hostSeconds(f func() error) (float64, error) {
	t0 := time.Now()
	err := f()
	return time.Since(t0).Seconds(), err
}

// table is a small fixed-width text table renderer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func ms(t simclock.Time) string {
	return fmt.Sprintf("%.2f", float64(t)/float64(simclock.Millisecond))
}

func mbps(bytes int64, dur simclock.Time) float64 {
	secs := dur.Seconds()
	if secs == 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / secs
}

// Table1 renders the application-scenario inventory.
func Table1() string {
	t := &table{header: []string{"Name", "Description", "Steps", "Virtual duration"}}
	for _, sc := range allScenarios() {
		t.add(sc.Name, sc.Description, fmt.Sprint(sc.Steps), sc.Duration().String())
	}
	return "Table 1: application scenarios\n" + t.String()
}
