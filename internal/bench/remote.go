package bench

import (
	"fmt"
	"net"
	"time"

	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/e2e"
	"dejaview/internal/remote"
)

// remoteFrames is the number of display commands fanned out per client
// count, and remoteSearches the number of sequential search RPCs timed.
const (
	remoteFrames   = 150
	remoteSearches = 50
)

// RemoteRow is one client-count's measurement of the network access
// service: how fast the daemon fans live display traffic out to N
// attached viewers, and what a search RPC costs while they stay
// attached.
type RemoteRow struct {
	Clients int
	// Frames is the number of display commands submitted to the session
	// while the viewers were attached.
	Frames int
	// FanoutSeconds is the host wall clock from the first submit until
	// every remote replica converged on the session's screen.
	FanoutSeconds float64
	// FramesSent / BytesSent are the daemon's delivery counters across
	// all clients for the fan-out window.
	FramesSent uint64
	BytesSent  uint64
	// SearchAvgMs is the mean round-trip of a search RPC issued over one
	// of the live-viewing connections (multiplexed, not a dedicated
	// conn).
	SearchAvgMs float64
}

// FramesPerSec is the aggregate delivery rate across all clients.
func (r RemoteRow) FramesPerSec() float64 {
	if r.FanoutSeconds == 0 {
		return 0
	}
	return float64(r.FramesSent) / r.FanoutSeconds
}

// MBPerSec is the aggregate payload rate across all clients.
func (r RemoteRow) MBPerSec() float64 {
	if r.FanoutSeconds == 0 {
		return 0
	}
	return float64(r.BytesSent) / (1 << 20) / r.FanoutSeconds
}

// Remote is the `dvbench -remote` report.
type Remote struct {
	Rows []RemoteRow
}

// RunRemote measures the network access service over real loopback TCP:
// for each client count it serves a scripted desktop session, attaches
// that many live viewers, fans a burst of display commands out to all of
// them, and then times search RPCs over one of the same connections.
// The default ladder is 1, 2, 4, 8 clients.
func RunRemote(clientCounts ...int) (*Remote, error) {
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 2, 4, 8}
	}
	sc, err := e2e.ScenarioByName("desktop")
	if err != nil {
		return nil, err
	}
	out := &Remote{}
	for _, n := range clientCounts {
		if n <= 0 {
			return nil, fmt.Errorf("remote: invalid client count %d", n)
		}
		row, err := runRemoteOnce(sc, n)
		if err != nil {
			return nil, fmt.Errorf("remote %d clients: %w", n, err)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func runRemoteOnce(sc *e2e.Scenario, clients int) (RemoteRow, error) {
	row := RemoteRow{Clients: clients, Frames: remoteFrames}
	s, err := e2e.Build(sc, core.Config{})
	if err != nil {
		return row, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	srv := remote.Serve(ln, remote.Options{Session: s})
	defer srv.Close()

	conns := make([]*remote.Client, clients)
	views := make([]*remote.LiveView, clients)
	for i := range conns {
		c, err := remote.Dial(srv.Addr().String())
		if err != nil {
			return row, err
		}
		defer c.Close()
		lv, err := c.AttachLive()
		if err != nil {
			return row, err
		}
		if err := lv.WaitScreen(30 * time.Second); err != nil {
			return row, err
		}
		conns[i], views[i] = c, lv
	}

	// Fan-out: a burst of pattern fills (64 KiB of pixel payload each,
	// so the measurement is dominated by delivery, not bookkeeping),
	// timed until every replica has converged on the final screen.
	w, h := s.Display().Size()
	pattern := make([]display.Pixel, 128*128)
	base := srv.Stats()
	t0 := time.Now()
	for i := 0; i < remoteFrames; i++ {
		for j := range pattern {
			pattern[j] = display.Pixel(i*len(pattern) + j)
		}
		if err := s.Display().Submit(display.PatternFill(s.Clock().Now(),
			display.NewRect((i*89)%(w-128), (i*53)%(h-128), 128, 128), pattern, 128, 128)); err != nil {
			return row, err
		}
		if _, err := s.Display().Flush(); err != nil {
			return row, err
		}
	}
	want := s.Display().Screen().Hash()
	for i, lv := range views {
		deadline := time.Now().Add(60 * time.Second)
		for lv.Screen().Hash() != want {
			if time.Now().After(deadline) {
				return row, fmt.Errorf("viewer %d never converged", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	row.FanoutSeconds = time.Since(t0).Seconds()
	st := srv.Stats()
	row.FramesSent = st.FramesSent - base.FramesSent
	row.BytesSent = st.BytesSent - base.BytesSent

	// Search RPC latency over a connection that also carries a live view.
	q := sc.Queries[0]
	t0 = time.Now()
	for i := 0; i < remoteSearches; i++ {
		if _, err := conns[0].Search(q); err != nil {
			return row, err
		}
	}
	row.SearchAvgMs = time.Since(t0).Seconds() * 1e3 / remoteSearches
	return row, nil
}

// Render prints the fan-out and RPC-latency table.
func (r *Remote) Render() string {
	t := &table{header: []string{"Clients", "Frames", "Fan-out ms", "Frames/s", "MB/s", "Search RPC ms"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%d", row.Clients),
			fmt.Sprintf("%d", row.Frames),
			fmt.Sprintf("%.1f", row.FanoutSeconds*1e3),
			fmt.Sprintf("%.0f", row.FramesPerSec()),
			fmt.Sprintf("%.1f", row.MBPerSec()),
			fmt.Sprintf("%.2f", row.SearchAvgMs))
	}
	return "Remote: live fan-out throughput and search RPC latency over loopback TCP\n" + t.String()
}
