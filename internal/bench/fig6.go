package bench

import (
	"fmt"

	"dejaview/internal/playback"
	"dejaview/internal/simclock"
)

// Fig6Row is one scenario's playback speedup: recorded (virtual) session
// duration divided by the host time to replay the entire visual record
// at the fastest rate.
type Fig6Row struct {
	Scenario  string
	Recorded  simclock.Time
	ReplaySec float64
	Speedup   float64
	Commands  uint64
}

// Fig6 is the playback speedup experiment.
//
// Expected shape (paper): every record replays at least ~10x faster than
// real time; records that change data at display rates (web, cat) show
// the least speedup; the desktop trace the most (paper: >200x).
type Fig6 struct {
	Rows []Fig6Row
}

// RunFig6 executes the experiment.
func RunFig6(scenarios ...string) (*Fig6, error) {
	out := &Fig6{}
	for _, sc := range filterScenarios(allScenarios(), scenarios) {
		s, stats, err := runScenario(sc, benchConfig(), 5000)
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", sc.Name, err)
		}
		s.Recorder().Flush()
		store := s.Recorder().Store()
		end := store.Duration()
		var applied int
		secs, err := hostSeconds(func() error {
			p := playback.New(store, 8)
			if err := p.SeekTo(0); err != nil {
				return err
			}
			n, err := p.Play(end+simclock.Second, 1, nil) // nil sleeper: fastest
			applied = n
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig6 %s replay: %w", sc.Name, err)
		}
		if secs <= 0 {
			secs = 1e-9
		}
		out.Rows = append(out.Rows, Fig6Row{
			Scenario:  sc.Name,
			Recorded:  stats.VirtualDuration,
			ReplaySec: secs,
			Speedup:   stats.VirtualDuration.Seconds() / secs,
			Commands:  uint64(applied),
		})
	}
	return out, nil
}

// Render prints the speedup table.
func (f *Fig6) Render() string {
	t := &table{header: []string{"Scenario", "Recorded", "Replay (s)", "Speedup", "Commands"}}
	for _, r := range f.Rows {
		t.add(r.Scenario, r.Recorded.String(),
			fmt.Sprintf("%.3f", r.ReplaySec),
			fmt.Sprintf("%.0fx", r.Speedup),
			fmt.Sprint(r.Commands))
	}
	return "Figure 6: playback speedup over real time (fastest-rate replay of the full record)\n" + t.String()
}
