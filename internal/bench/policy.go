package bench

import (
	"fmt"

	"dejaview/internal/core"
	"dejaview/internal/policy"
	"dejaview/internal/workload"
)

// PolicyResult is the §6 checkpoint-policy effectiveness analysis over
// the desktop trace: what fraction of checkpoint opportunities were
// taken, and how the skips distribute over the policy's reasons.
//
// Paper numbers: checkpoints taken ~20% of the time; of the skipped
// time, 13% had no display activity, 69% low display activity, and 18%
// was rate-reduced text editing.
type PolicyResult struct {
	Takes, Skips  uint64
	TakenFraction float64
	// Skip distribution as fractions of all skips.
	NoActivity, LowActivity, TextRate, Fullscreen, RateLimited float64
}

// RunPolicy executes the desktop trace under the default policy.
func RunPolicy() (*PolicyResult, error) {
	s := core.NewSession(core.Config{})
	if _, err := workload.Run(s, workload.Desktop(), 7000); err != nil {
		return nil, err
	}
	st := s.Policy().Stats()
	res := &PolicyResult{Takes: st.Takes(), Skips: st.Skips()}
	total := res.Takes + res.Skips
	if total > 0 {
		res.TakenFraction = float64(res.Takes) / float64(total)
	}
	if res.Skips > 0 {
		f := func(r policy.Reason) float64 {
			return float64(st.Counts[r]) / float64(res.Skips)
		}
		res.NoActivity = f(policy.SkipNoActivity)
		res.LowActivity = f(policy.SkipLowActivity)
		res.TextRate = f(policy.SkipTextRate)
		res.Fullscreen = f(policy.SkipFullscreen)
		res.RateLimited = f(policy.SkipRateLimited)
	}
	return res, nil
}

// Render prints the analysis.
func (p *PolicyResult) Render() string {
	return fmt.Sprintf(`Checkpoint policy effectiveness (desktop trace)
checkpoints taken:    %d of %d opportunities (%.0f%%)
skip distribution:
  no display activity  %.0f%%
  low display activity %.0f%%
  reduced text rate    %.0f%%
  fullscreen/saver     %.0f%%
  rate limited         %.0f%%
`, p.Takes, p.Takes+p.Skips, p.TakenFraction*100,
		p.NoActivity*100, p.LowActivity*100, p.TextRate*100,
		p.Fullscreen*100, p.RateLimited*100)
}
