package bench

import (
	"fmt"

	"dejaview/internal/core"
)

// Fig2Row is one scenario's normalized execution time under each
// recording configuration (1.0 = no recording).
type Fig2Row struct {
	Scenario   string
	Display    float64
	Checkpoint float64
	Index      float64
	Full       float64
}

// Fig2 is the recording runtime overhead experiment: each application
// scenario runs with no recording, with each recording component alone,
// and with full recording; execution time is normalized to the
// no-recording run.
//
// Expected shape (paper): small overheads everywhere except web, whose
// full-recording overhead is dominated by indexing (Firefox regenerates
// accessibility state on demand); video's display overhead ~0 (one
// command per frame); checkpointing worst for make.
type Fig2 struct {
	Rows []Fig2Row
	// BaseSeconds records the no-recording host time per scenario, for
	// context.
	BaseSeconds map[string]float64
}

// RunFig2 executes the experiment. Each configuration runs `reps` times
// and keeps the minimum host time to suppress scheduling noise.
func RunFig2(reps int) (*Fig2, error) {
	if reps <= 0 {
		reps = 1
	}
	out := &Fig2{BaseSeconds: make(map[string]float64)}
	for _, sc := range appScenarios() {
		measure := func(cfg core.Config) (float64, error) {
			best := 0.0
			for r := 0; r < reps; r++ {
				secs, err := hostSeconds(func() error {
					_, _, err := runScenario(sc, cfg, 1000+int64(r))
					return err
				})
				if err != nil {
					return 0, err
				}
				if r == 0 || secs < best {
					best = secs
				}
			}
			return best, nil
		}

		none := benchConfig()
		none.DisableDisplayRecording = true
		none.DisableIndexing = true
		none.DisableCheckpoints = true

		displayOnly := benchConfig()
		displayOnly.DisableIndexing = true
		displayOnly.DisableCheckpoints = true

		ckptOnly := benchConfig()
		ckptOnly.DisableDisplayRecording = true
		ckptOnly.DisableIndexing = true

		indexOnly := benchConfig()
		indexOnly.DisableDisplayRecording = true
		indexOnly.DisableCheckpoints = true

		full := benchConfig()

		base, err := measure(none)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s base: %w", sc.Name, err)
		}
		if base <= 0 {
			base = 1e-9
		}
		td, err := measure(displayOnly)
		if err != nil {
			return nil, err
		}
		tc, err := measure(ckptOnly)
		if err != nil {
			return nil, err
		}
		ti, err := measure(indexOnly)
		if err != nil {
			return nil, err
		}
		tf, err := measure(full)
		if err != nil {
			return nil, err
		}
		out.BaseSeconds[sc.Name] = base
		out.Rows = append(out.Rows, Fig2Row{
			Scenario:   sc.Name,
			Display:    td / base,
			Checkpoint: tc / base,
			Index:      ti / base,
			Full:       tf / base,
		})
	}
	return out, nil
}

// Render prints the figure as a table of normalized execution times.
func (f *Fig2) Render() string {
	t := &table{header: []string{"Scenario", "Display", "Checkpoint", "Index", "Full"}}
	for _, r := range f.Rows {
		t.add(r.Scenario,
			fmt.Sprintf("%.2f", r.Display),
			fmt.Sprintf("%.2f", r.Checkpoint),
			fmt.Sprintf("%.2f", r.Index),
			fmt.Sprintf("%.2f", r.Full))
	}
	return "Figure 2: recording runtime overhead (normalized execution time, 1.00 = no recording)\n" + t.String()
}
