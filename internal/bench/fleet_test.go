package bench

import (
	"strings"
	"testing"
)

func TestRunFleetSubset(t *testing.T) {
	f, err := RunFleet(FleetConfig{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 1 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	row := f.Rows[0]
	if row.FramesSent == 0 || row.BytesSent == 0 {
		t.Errorf("nothing delivered: %+v", row)
	}
	if row.FramesPerSec() <= 0 || row.MBPerSec() <= 0 {
		t.Errorf("zero throughput: %+v", row)
	}
	// The bench dials exactly the per-session quota: admission control
	// must shed nobody.
	if row.AdmissionRejects != 0 {
		t.Errorf("admission rejects %d at exactly-quota load", row.AdmissionRejects)
	}
	// Per-session instruments observed every tenant.
	if row.SessionMinFPS <= 0 || row.SessionMaxFPS < row.SessionMinFPS {
		t.Errorf("per-session throughput not measured: %+v", row)
	}
	if row.SubmitP99Ms <= 0 {
		t.Errorf("submit p99 not measured: %+v", row)
	}
	if !strings.Contains(f.Render(), "Submit p99 ms") {
		t.Error("render header missing")
	}
	rep := f.Report()
	if err := ValidateReport(rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Metrics) != 7 {
		t.Errorf("report metrics = %d, want 7", len(rep.Metrics))
	}
}
