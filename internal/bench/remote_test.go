package bench

import (
	"strings"
	"testing"
)

func TestRunRemoteSubset(t *testing.T) {
	r, err := RunRemote(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.FramesSent == 0 || row.BytesSent == 0 {
			t.Errorf("%d clients: nothing delivered: %+v", row.Clients, row)
		}
		if row.FramesPerSec() <= 0 || row.MBPerSec() <= 0 {
			t.Errorf("%d clients: zero throughput: %+v", row.Clients, row)
		}
		if row.SearchAvgMs <= 0 {
			t.Errorf("%d clients: search latency not measured", row.Clients)
		}
	}
	// Twice the viewers must deliver more frames in aggregate.
	if r.Rows[1].FramesSent <= r.Rows[0].FramesSent {
		t.Errorf("fan-out did not scale with clients: %d vs %d frames",
			r.Rows[0].FramesSent, r.Rows[1].FramesSent)
	}
	if !strings.Contains(r.Render(), "Search RPC ms") {
		t.Error("render header missing")
	}
}
